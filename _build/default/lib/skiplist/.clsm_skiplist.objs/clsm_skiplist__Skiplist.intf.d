lib/skiplist/skiplist.mli:
