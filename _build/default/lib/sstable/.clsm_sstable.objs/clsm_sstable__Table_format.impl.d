lib/sstable/table_format.ml: Binary Block_handle Buffer Clsm_util String Varint
