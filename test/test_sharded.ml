(* The range-shard router, tested two ways:

   - directed: routing, cross-shard scan order, one-fence snapshot
     consistency over batches, SHARDING layout persistence across
     reopen, per-shard stats roll-up, repair of shard subdirectories;
   - property: a sharded store with RANDOM boundaries is observationally
     equivalent to a single Db — every operation of a random history
     (gets, scans, RMW, batches, snapshots, tombstones, compactions)
     returns the same answer from both. *)

open Clsm_core

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_sharded_%d_%d" (Unix.getpid ()) !counter)

let small_opts dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 8 * 1024;
    cache_bytes = 1 lsl 20;
    maintenance_workers = 1;
    lsm =
      {
        base.Options.lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 32 * 1024;
        target_file_size = 8 * 1024;
        block_size = 512;
        l0_compaction_trigger = 2;
      };
  }

let sharded_opts ?bounds ~shards dir =
  { (small_opts dir) with Options.shards; shard_boundaries = bounds }

(* ---------- the operation language and its interpreter ---------- *)

type op =
  | Put of string * string
  | Del of string
  | Get of string
  | Batch of (string * string option) list
  | Rmw_append of string * string
  | Rmw_remove of string
  | Put_if_absent of string * string
  | Scan of string option * string option
  | Multi of string list
  | Snap of int
  | Read_at of int * string
  | Release of int
  | Compact

let show_op = function
  | Put (k, v) -> Printf.sprintf "Put(%s,%s)" k v
  | Del k -> Printf.sprintf "Del(%s)" k
  | Get k -> Printf.sprintf "Get(%s)" k
  | Batch ops ->
      Printf.sprintf "Batch[%s]"
        (String.concat ";"
           (List.map
              (function
                | k, Some v -> Printf.sprintf "%s=%s" k v
                | k, None -> Printf.sprintf "%s=⊥" k)
              ops))
  | Rmw_append (k, s) -> Printf.sprintf "RmwAppend(%s,%s)" k s
  | Rmw_remove k -> Printf.sprintf "RmwRemove(%s)" k
  | Put_if_absent (k, v) -> Printf.sprintf "Pia(%s,%s)" k v
  | Scan (lo, hi) ->
      Printf.sprintf "Scan(%s,%s)"
        (Option.value ~default:"-" lo)
        (Option.value ~default:"-" hi)
  | Multi ks -> Printf.sprintf "Multi[%s]" (String.concat ";" ks)
  | Snap i -> Printf.sprintf "Snap(%d)" i
  | Read_at (i, k) -> Printf.sprintf "ReadAt(%d,%s)" i k
  | Release i -> Printf.sprintf "Release(%d)" i
  | Compact -> "Compact"

let show_opt = function None -> "⊥" | Some v -> v

let show_pairs ps =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) ps)

(* Every operation is reduced to a string observation, so two stores are
   equivalent iff their observation traces are equal. *)
module Interp (St : Store_sig.S) = struct
  type state = { db : St.t; snaps : (int, St.snapshot) Hashtbl.t }

  let make db = { db; snaps = Hashtbl.create 8 }

  let apply st op =
    match op with
    | Put (k, v) ->
        St.put st.db ~key:k ~value:v;
        "()"
    | Del k ->
        St.delete st.db ~key:k;
        "()"
    | Get k -> show_opt (St.get st.db k)
    | Batch ops ->
        St.write_batch st.db
          (List.map
             (function
               | k, Some v -> St.Batch_put (k, v) | k, None -> St.Batch_delete k)
             ops);
        "()"
    | Rmw_append (k, s) ->
        show_opt
          (St.rmw st.db ~key:k (function
            | Some v -> St.Set (v ^ s)
            | None -> St.Set s))
    | Rmw_remove k ->
        show_opt (St.rmw st.db ~key:k (function Some _ -> St.Remove | None -> St.Abort))
    | Put_if_absent (k, v) -> string_of_bool (St.put_if_absent st.db ~key:k ~value:v)
    | Scan (lo, hi) -> show_pairs (St.range ?start:lo ?stop:hi st.db)
    | Multi ks ->
        String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ show_opt v) (St.multi_get st.db ks))
    | Snap i ->
        Hashtbl.replace st.snaps i (St.get_snap st.db);
        "()"
    | Read_at (i, k) -> (
        match Hashtbl.find_opt st.snaps i with
        | None -> "nosnap"
        | Some s -> show_opt (St.get_at st.db s k))
    | Release i -> (
        match Hashtbl.find_opt st.snaps i with
        | None -> "nosnap"
        | Some s ->
            St.release_snapshot st.db s;
            Hashtbl.remove st.snaps i;
            "()")
    | Compact ->
        St.compact_now st.db;
        "()"

  let finish st =
    let all = show_pairs (St.range st.db) in
    Hashtbl.iter (fun _ s -> St.release_snapshot st.db s) st.snaps;
    St.close st.db;
    all
end

module Run_db = Interp (Db)
module Run_sharded = Interp (Sharded_db)

(* ---------- the equivalence property ---------- *)

let key_gen =
  QCheck.Gen.map2
    (fun c i -> Printf.sprintf "%c%02d" (Char.chr (Char.code 'a' + c)) i)
    (QCheck.Gen.int_range 0 15) (QCheck.Gen.int_range 0 9)

let value_gen = QCheck.Gen.map (Printf.sprintf "v%d") (QCheck.Gen.int_range 0 999)
let slot_gen = QCheck.Gen.int_range 0 3

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (6, map2 (fun k v -> Put (k, v)) key_gen value_gen);
      (2, map (fun k -> Del k) key_gen);
      (5, map (fun k -> Get k) key_gen);
      ( 2,
        map
          (fun kvs -> Batch kvs)
          (list_size (int_range 1 6)
             (map2
                (fun k v -> (k, if String.length v mod 3 = 0 then None else Some v))
                key_gen value_gen)) );
      (2, map2 (fun k v -> Rmw_append (k, v)) key_gen value_gen);
      (1, map (fun k -> Rmw_remove k) key_gen);
      (1, map2 (fun k v -> Put_if_absent (k, v)) key_gen value_gen);
      ( 2,
        map2
          (fun a b ->
            let lo, hi = if a <= b then (a, b) else (b, a) in
            Scan (Some lo, Some hi))
          key_gen key_gen );
      (1, return (Scan (None, None)));
      (1, map (fun ks -> Multi ks) (list_size (int_range 1 4) key_gen));
      (2, map (fun i -> Snap i) slot_gen);
      (3, map2 (fun i k -> Read_at (i, k)) slot_gen key_gen);
      (1, map (fun i -> Release i) slot_gen);
      (1, return Compact);
    ]

(* Random strictly-ascending single-byte boundaries inside the generated
   key alphabet, so every boundary actually splits live keys. *)
let bounds_gen =
  QCheck.Gen.map
    (fun cs ->
      List.sort_uniq compare
        (List.map (fun c -> String.make 1 (Char.chr (Char.code 'a' + c))) cs))
    QCheck.Gen.(list_size (int_range 0 3) (int_range 1 15))

let scenario_gen =
  QCheck.Gen.pair bounds_gen (QCheck.Gen.list_size (QCheck.Gen.int_range 20 80) op_gen)

let scenario_print (bounds, ops) =
  Printf.sprintf "boundaries=[%s]\n%s"
    (String.concat ";" bounds)
    (String.concat "\n" (List.map show_op ops))

let prop_sharded_equals_single =
  QCheck.Test.make ~count:25
    ~name:"sharded store ≡ single store (random boundaries, full op mix)"
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun (bounds, ops) ->
      let single = Run_db.make (Db.open_store (small_opts (fresh_dir ()))) in
      let sharded =
        Run_sharded.make
          (Sharded_db.open_store
             (sharded_opts
                ?bounds:(if bounds = [] then None else Some bounds)
                ~shards:(List.length bounds + 1)
                (fresh_dir ())))
      in
      let ok = ref true in
      List.iteri
        (fun i op ->
          let a = Run_db.apply single op in
          let b = Run_sharded.apply sharded op in
          if a <> b then begin
            ok := false;
            QCheck.Test.fail_reportf "op %d %s: single=%S sharded=%S" i
              (show_op op) a b
          end)
        ops;
      let fa = Run_db.finish single in
      let fb = Run_sharded.finish sharded in
      if fa <> fb then
        QCheck.Test.fail_reportf "final contents differ:\nsingle=%s\nsharded=%s"
          fa fb;
      !ok)

(* ---------- directed tests ---------- *)

let test_routing_and_scan_order () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "h"; "p" ] ~shards:3 dir)
  in
  Alcotest.(check int) "shard count" 3 (Sharded_db.shard_count db);
  Alcotest.(check (list string))
    "boundaries" [ "h"; "p" ]
    (Sharded_db.shard_boundaries db);
  (* Interleave keys across the three ranges. *)
  let keys = [ "apple"; "zebra"; "hat"; "mango"; "cat"; "pear"; "ice" ] in
  List.iter (fun k -> Sharded_db.put db ~key:k ~value:("v-" ^ k)) keys;
  (* Every shard saw only its own keys. *)
  let per_shard = Sharded_db.shard_stats db in
  Alcotest.(check int) "shard 0 puts" 2 per_shard.(0).Stats.puts (* apple cat *);
  Alcotest.(check int) "shard 1 puts" 3 per_shard.(1).Stats.puts
    (* hat mango ice *);
  Alcotest.(check int) "shard 2 puts" 2 per_shard.(2).Stats.puts (* pear zebra *);
  (* The merged scan is globally sorted and complete. *)
  Alcotest.(check (list string))
    "scan order"
    (List.sort compare keys)
    (List.map fst (Sharded_db.range db));
  (* Sub-ranges crossing a boundary work. *)
  Alcotest.(check (list string))
    "bounded scan" [ "cat"; "hat"; "ice" ]
    (List.map fst (Sharded_db.range ~start:"c" ~stop:"j" db));
  (* Roll-up counts everything. *)
  Alcotest.(check int) "rolled-up puts" 7 (Sharded_db.stats db).Stats.puts;
  Sharded_db.close db

let test_snapshot_atomic_over_batches () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "m" ] ~shards:2 dir)
  in
  (* A cross-shard batch is atomic under a router snapshot: the fence
     can never land between the two per-shard sub-batches. *)
  Sharded_db.write_batch db
    [ Sharded_db.Batch_put ("a", "1"); Sharded_db.Batch_put ("z", "1") ];
  let s = Sharded_db.get_snap db in
  Sharded_db.write_batch db
    [ Sharded_db.Batch_put ("a", "2"); Sharded_db.Batch_put ("z", "2") ];
  Alcotest.(check (option string)) "a@snap" (Some "1") (Sharded_db.get_at db s "a");
  Alcotest.(check (option string)) "z@snap" (Some "1") (Sharded_db.get_at db s "z");
  Alcotest.(check (option string)) "a now" (Some "2") (Sharded_db.get db "a");
  (* The snapshot also pins a consistent scan across both shards. *)
  Alcotest.(check (list (pair string string)))
    "scan@snap"
    [ ("a", "1"); ("z", "1") ]
    (Sharded_db.range ~snapshot:s db);
  Sharded_db.release_snapshot db s;
  Sharded_db.close db

let test_layout_persists_across_reopen () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "g"; "q" ] ~shards:3 dir)
  in
  Sharded_db.put db ~key:"alpha" ~value:"1";
  Sharded_db.put db ~key:"kilo" ~value:"2";
  Sharded_db.put db ~key:"tango" ~value:"3";
  Sharded_db.close db;
  (* Reopen asking for DIFFERENT sharding: the persisted layout wins. *)
  let db = Sharded_db.open_store (sharded_opts ~shards:1 dir) in
  Alcotest.(check int) "persisted shard count" 3 (Sharded_db.shard_count db);
  Alcotest.(check (list string))
    "persisted boundaries" [ "g"; "q" ]
    (Sharded_db.shard_boundaries db);
  Alcotest.(check (list (pair string string)))
    "data survives"
    [ ("alpha", "1"); ("kilo", "2"); ("tango", "3") ]
    (Sharded_db.range db);
  Sharded_db.close db

let test_shared_clock_orders_cross_shard_writes () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "m" ] ~shards:2 dir)
  in
  (* Writes alternating between shards draw from ONE clock, so a
     snapshot between any two of them cuts a consistent prefix. *)
  for i = 1 to 20 do
    let shard_key = if i mod 2 = 0 then "apple" else "zebra" in
    Sharded_db.put db ~key:shard_key ~value:(string_of_int i)
  done;
  let s = Sharded_db.get_snap db in
  Sharded_db.put db ~key:"apple" ~value:"late";
  Sharded_db.put db ~key:"zebra" ~value:"late";
  Alcotest.(check (option string))
    "apple@snap" (Some "20")
    (Sharded_db.get_at db s "apple");
  Alcotest.(check (option string))
    "zebra@snap" (Some "19")
    (Sharded_db.get_at db s "zebra");
  Sharded_db.release_snapshot db s;
  Sharded_db.close db

let test_shared_maintenance_flushes_all_shards () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "m" ] ~shards:2 dir)
  in
  (* Enough data in both shards to force rotations, then drain through
     the shared pool synchronously. *)
  for i = 0 to 199 do
    Sharded_db.put db
      ~key:(Printf.sprintf "a%04d" i)
      ~value:(String.make 100 'x');
    Sharded_db.put db
      ~key:(Printf.sprintf "z%04d" i)
      ~value:(String.make 100 'y')
  done;
  Sharded_db.compact_now db;
  let per_shard = Sharded_db.shard_stats db in
  Alcotest.(check bool) "shard 0 flushed" true (per_shard.(0).Stats.flushes > 0);
  Alcotest.(check bool) "shard 1 flushed" true (per_shard.(1).Stats.flushes > 0);
  Alcotest.(check int)
    "no data lost" 400
    (List.length (Sharded_db.range db));
  Alcotest.(check (list string)) "integrity" [] (Sharded_db.verify_integrity db);
  Sharded_db.close db

let test_repair_per_shard () =
  let dir = fresh_dir () in
  let db =
    Sharded_db.open_store (sharded_opts ~bounds:[ "m" ] ~shards:2 dir)
  in
  for i = 0 to 99 do
    Sharded_db.put db ~key:(Printf.sprintf "a%03d" i) ~value:"x";
    Sharded_db.put db ~key:(Printf.sprintf "z%03d" i) ~value:"y"
  done;
  Sharded_db.compact_now db;
  Sharded_db.close db;
  (* Lose one shard's manifest; RepairDB must rebuild only from that
     shard's tables while the other shard is untouched. *)
  let victim = Filename.concat dir "shard-1" in
  Array.iter
    (fun name ->
      if String.length name >= 8 && String.sub name 0 8 = "MANIFEST" then
        Sys.remove (Filename.concat victim name))
    (Sys.readdir victim);
  Sharded_db.repair ~dir ();
  let db = Sharded_db.open_store (sharded_opts ~shards:1 dir) in
  Alcotest.(check int) "all rows back" 200 (List.length (Sharded_db.range db));
  Alcotest.(check (option string)) "z row" (Some "y") (Sharded_db.get db "z042");
  Sharded_db.close db

let suites =
  [
    ( "sharded",
      [
        Alcotest.test_case "routing, per-shard stats, scan order" `Quick
          test_routing_and_scan_order;
        Alcotest.test_case "snapshot is atomic over cross-shard batches" `Quick
          test_snapshot_atomic_over_batches;
        Alcotest.test_case "SHARDING layout wins on reopen" `Quick
          test_layout_persists_across_reopen;
        Alcotest.test_case "one clock orders cross-shard writes" `Quick
          test_shared_clock_orders_cross_shard_writes;
        Alcotest.test_case "shared pool maintains every shard" `Quick
          test_shared_maintenance_flushes_all_shards;
        Alcotest.test_case "repair rebuilds shard subdirectories" `Quick
          test_repair_per_shard;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_sharded_equals_single ] );
  ]
