test/test_core.ml: Alcotest Array Atomic Buffer Clsm_core Clsm_lsm Clsm_wal Db Domain Entry Filename In_channel List Log_record Lsm_config Memtable Options Out_channel Printf Stats String Sys Unix
