(* Crash-recovery torture harness.

   For each seed: run a mixed workload against a store whose IO goes
   through a fault-injecting environment armed with a crash point at a
   seed-chosen mutating operation; crash; reconstruct the on-disk image a
   real machine crash would have left (synced prefixes + a torn slice of
   any unsynced tail); reopen with a clean environment and check

   - every synchronously acknowledged write is present with its last
     acknowledged value (sync WAL mode: append+fsync before ack);
   - a key whose later, unacknowledged write may have partially reached
     disk holds either the acked value or one of those pending values;
   - the directory is consistent: no temp files, every table file is
     referenced by the manifest, integrity checks pass;
   - the store still orders writes correctly (fresh puts win).

   Each seed is deterministic end to end: the workload, the crash point
   and the torn-tail slices all derive from it. *)

open Clsm_core
open Clsm_lsm
open Clsm_env

let base_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_torture_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let opts_for ~env dir =
  let base = Options.default ~dir in
  {
    base with
    Options.env;
    wal_sync = `Per_write;
    wal_enabled = true;
    memtable_bytes = 4 * 1024;
    cache_bytes = 1 lsl 18;
    maintenance_workers = 1;
    maintenance_tick = 0.005;
    lsm =
      {
        base.Options.lsm with
        Lsm_config.level1_max_bytes = 16 * 1024;
        target_file_size = 2 * 1024;
        l0_compaction_trigger = 3;
        block_size = 256;
      };
  }

let key_of i = Printf.sprintf "key%02d" i
let num_keys = 80

(* The workload model: [acked] is the last synchronously acknowledged
   state per key ([Some v] value, [None] tombstone, absent = never
   touched); [pending] collects per-key states attempted after the last
   ack — any of them may have reached the log before the crash. *)
type model = {
  acked : (string, string option) Hashtbl.t;
  pending : (string, string option list) Hashtbl.t;
}

let ack m key state =
  Hashtbl.replace m.acked key state;
  Hashtbl.remove m.pending key

let attempt m key state =
  let prev = Option.value ~default:[] (Hashtbl.find_opt m.pending key) in
  Hashtbl.replace m.pending key (state :: prev)

let run_one_seed seed =
  let dir = Filename.concat base_dir (Printf.sprintf "seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed |] in
  let fault = Faulty_env.create ~seed () in
  let opts = opts_for ~env:(Faulty_env.env fault) dir in
  let db = Db.open_store opts in
  let m = { acked = Hashtbl.create 64; pending = Hashtbl.create 16 } in
  Faulty_env.arm fault ~crash_after:(20 + Random.State.int rng 600);
  let crashed = ref false in
  let ops = ref 0 in
  while (not !crashed) && !ops < 400 do
    incr ops;
    let key = key_of (Random.State.int rng num_keys) in
    match Random.State.int rng 10 with
    | 0 | 1 -> (
        (* delete *)
        attempt m key None;
        match Db.delete db ~key with
        | () -> ack m key None
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
    | 2 -> (
        (* small atomic batch *)
        let key2 = key_of (Random.State.int rng num_keys) in
        let v1 = Printf.sprintf "b%d-%d" seed !ops
        and v2 = Printf.sprintf "b%d-%d'" seed !ops in
        attempt m key (Some v1);
        attempt m key2 (Some v2);
        match
          Db.write_batch db
            [ Db.Batch_put (key, v1); Db.Batch_put (key2, v2) ]
        with
        | () ->
            (* Both or neither: the batch is one WAL record. The model
               cannot express cross-key atomicity, so track each key
               individually — presence checks still apply. *)
            ack m key (Some v1);
            ack m key2 (Some v2)
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
    | 3 ->
        (* read back a key the model knows; pending writes make the
           expected value ambiguous, so only check fully-acked keys *)
        if not (Hashtbl.mem m.pending key) then begin
          let expect =
            Option.value ~default:None (Hashtbl.find_opt m.acked key)
          in
          match Db.get db key with
          | got ->
              if got <> expect then
                Alcotest.failf "seed %d: live read of %s: got %s, want %s"
                  seed key
                  (Option.value ~default:"<none>" got)
                  (Option.value ~default:"<none>" expect)
          | exception (Env.Crashed | Env.Error _) -> crashed := true
        end
    | _ -> (
        (* put *)
        let v = Printf.sprintf "v%d-%d" seed !ops in
        attempt m key (Some v);
        match Db.put db ~key ~value:v with
        | () -> ack m key (Some v)
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
  done;
  Db.simulate_crash db;
  Faulty_env.install_crash_image fault;
  (* ---- restart on the crash image with a healthy environment ---- *)
  let clean_opts = { opts with Options.env = Env.unix } in
  let db = Db.open_store clean_opts in
  (* Quiesce background maintenance: a live flush legitimately stages a
     .sst.tmp and publishes tables moments before the manifest save, so
     the directory is only required to be consistent at rest. *)
  Db.compact_now db;
  (* Directory consistency: no staged temp files survive recovery, and
     every table file on disk is referenced by the manifest. *)
  let listing = Sys.readdir dir |> Array.to_list in
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        Alcotest.failf "seed %d: stray temp file after recovery: %s" seed name)
    listing;
  (match Manifest.load ~dir () with
  | None -> Alcotest.failf "seed %d: no manifest after recovery" seed
  | Some man ->
      let live = List.map snd man.Manifest.files in
      List.iter
        (fun name ->
          match String.split_on_char '.' name with
          | [ num; "sst" ] ->
              if not (List.mem (int_of_string num) live) then
                Alcotest.failf "seed %d: orphan table after recovery: %s" seed
                  name
          | _ -> ())
        listing);
  (match Db.verify_integrity db with
  | [] -> ()
  | problems ->
      Alcotest.failf "seed %d: integrity violations: %s" seed
        (String.concat "; " problems));
  (* Durability: acked state must be exact; keys with pending writes may
     hold the acked value or any pending one (an unacked record can
     legally have reached the synced or torn region of the log). *)
  Hashtbl.iter
    (fun key expect ->
      let got = Db.get db key in
      let allowed =
        expect :: Option.value ~default:[] (Hashtbl.find_opt m.pending key)
      in
      if not (List.mem got allowed) then
        Alcotest.failf "seed %d: key %s: got %s, allowed {%s}" seed key
          (Option.value ~default:"<none>" got)
          (String.concat ", "
             (List.map (Option.value ~default:"<none>") allowed)))
    m.acked;
  (* Keys never acked can only be absent or hold a pending value. *)
  Hashtbl.iter
    (fun key states ->
      if not (Hashtbl.mem m.acked key) then
        let got = Db.get db key in
        if not (List.mem got (None :: states)) then
          Alcotest.failf "seed %d: unacked key %s holds foreign value %s" seed
            key
            (Option.value ~default:"<none>" got))
    m.pending;
  (* Timestamp sanity: fresh writes must win over everything recovered. *)
  Db.put db ~key:(key_of 0) ~value:"fresh";
  Db.put db ~key:(key_of 1) ~value:"fresh";
  if Db.get db (key_of 0) <> Some "fresh" || Db.get db (key_of 1) <> Some "fresh"
  then Alcotest.failf "seed %d: recovered timestamps shadow new writes" seed;
  Db.close db;
  (* A second clean restart must also work (recovery is idempotent). *)
  let db = Db.open_store clean_opts in
  if Db.get db (key_of 0) <> Some "fresh" then
    Alcotest.failf "seed %d: second reopen lost data" seed;
  Db.close db;
  rm_rf dir

(* ---------- the sharded store under the same torture ---------- *)

(* Directory-consistency-at-rest for one store directory: no staged temp
   files, every table referenced by the manifest. *)
let check_dir_consistent ~seed ~label dir =
  let listing = Sys.readdir dir |> Array.to_list in
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        Alcotest.failf "seed %d: %s: stray temp file after recovery: %s" seed
          label name)
    listing;
  match Manifest.load ~dir () with
  | None -> Alcotest.failf "seed %d: %s: no manifest after recovery" seed label
  | Some man ->
      let live = List.map snd man.Manifest.files in
      List.iter
        (fun name ->
          match String.split_on_char '.' name with
          | [ num; "sst" ] ->
              if not (List.mem (int_of_string num) live) then
                Alcotest.failf "seed %d: %s: orphan table after recovery: %s"
                  seed label name
          | _ -> ())
        listing

let shard_bounds = [ "key27"; "key54" ]

let sharded_opts_for ~env dir =
  {
    (opts_for ~env dir) with
    Options.shards = 3;
    shard_boundaries = Some shard_bounds;
    (* two pool workers so one shard's flush runs WHILE another shard
       compacts — the crash point can land in the middle of that *)
    maintenance_workers = 2;
  }

(* The single-store torture, re-run against the 3-shard router: the
   crash point lands in whichever shard happens to be doing IO (its
   flush, another's compaction, a WAL append of a third), and recovery
   must restore every shard — per-shard directory consistency, the
   SHARDING layout, the durability model across all ranges, and a shared
   clock that still outranks everything recovered. *)
let run_one_sharded_seed seed =
  let dir = Filename.concat base_dir (Printf.sprintf "sharded_seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed; 7 |] in
  let fault = Faulty_env.create ~seed () in
  let opts = sharded_opts_for ~env:(Faulty_env.env fault) dir in
  let db = Sharded_db.open_store opts in
  let m = { acked = Hashtbl.create 64; pending = Hashtbl.create 16 } in
  (* A deeper budget than the single-store harness: the router's
     mutating-IO rate is ~3x (three WALs, three flush pipelines), and
     the interesting crashes are the ones that catch two shards
     mid-maintenance. *)
  Faulty_env.arm fault ~crash_after:(60 + Random.State.int rng 900);
  let crashed = ref false in
  let ops = ref 0 in
  while (not !crashed) && !ops < 600 do
    incr ops;
    let key = key_of (Random.State.int rng num_keys) in
    match Random.State.int rng 10 with
    | 0 | 1 -> (
        attempt m key None;
        match Sharded_db.delete db ~key with
        | () -> ack m key None
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
    | 2 -> (
        (* a batch that deliberately crosses shard boundaries *)
        let key2 = key_of (Random.State.int rng num_keys) in
        let v1 = Printf.sprintf "b%d-%d" seed !ops
        and v2 = Printf.sprintf "b%d-%d'" seed !ops in
        attempt m key (Some v1);
        attempt m key2 (Some v2);
        match
          Sharded_db.write_batch db
            [ Sharded_db.Batch_put (key, v1); Sharded_db.Batch_put (key2, v2) ]
        with
        | () ->
            ack m key (Some v1);
            ack m key2 (Some v2)
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
    | 3 ->
        if not (Hashtbl.mem m.pending key) then begin
          let expect =
            Option.value ~default:None (Hashtbl.find_opt m.acked key)
          in
          match Sharded_db.get db key with
          | got ->
              if got <> expect then
                Alcotest.failf "seed %d: live read of %s: got %s, want %s" seed
                  key
                  (Option.value ~default:"<none>" got)
                  (Option.value ~default:"<none>" expect)
          | exception (Env.Crashed | Env.Error _) -> crashed := true
        end
    | _ -> (
        let v = Printf.sprintf "v%d-%d" seed !ops in
        attempt m key (Some v);
        match Sharded_db.put db ~key ~value:v with
        | () -> ack m key (Some v)
        | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
            crashed := true)
  done;
  Sharded_db.simulate_crash db;
  Faulty_env.install_crash_image fault;
  (* ---- restart on the crash image with a healthy environment ---- *)
  let clean_opts = { opts with Options.env = Env.unix } in
  let db = Sharded_db.open_store clean_opts in
  (* The persisted layout survived the crash. *)
  if Sharded_db.shard_count db <> 3 then
    Alcotest.failf "seed %d: SHARDING layout lost (count=%d)" seed
      (Sharded_db.shard_count db);
  if Sharded_db.shard_boundaries db <> shard_bounds then
    Alcotest.failf "seed %d: SHARDING boundaries changed" seed;
  (* With a clean environment every shard must come back writable. *)
  (match Sharded_db.health db with
  | `Ok -> ()
  | `Partial reason ->
      Alcotest.failf "seed %d: partial after clean recovery: %s" seed reason
  | `Degraded reason ->
      Alcotest.failf "seed %d: degraded after clean recovery: %s" seed reason);
  Sharded_db.compact_now db;
  for i = 0 to 2 do
    check_dir_consistent ~seed
      ~label:(Printf.sprintf "shard-%d" i)
      (Filename.concat dir (Printf.sprintf "shard-%d" i))
  done;
  (match Sharded_db.verify_integrity db with
  | [] -> ()
  | problems ->
      Alcotest.failf "seed %d: integrity violations: %s" seed
        (String.concat "; " problems));
  Hashtbl.iter
    (fun key expect ->
      let got = Sharded_db.get db key in
      let allowed =
        expect :: Option.value ~default:[] (Hashtbl.find_opt m.pending key)
      in
      if not (List.mem got allowed) then
        Alcotest.failf "seed %d: key %s: got %s, allowed {%s}" seed key
          (Option.value ~default:"<none>" got)
          (String.concat ", "
             (List.map (Option.value ~default:"<none>") allowed)))
    m.acked;
  Hashtbl.iter
    (fun key states ->
      if not (Hashtbl.mem m.acked key) then
        let got = Sharded_db.get db key in
        if not (List.mem got (None :: states)) then
          Alcotest.failf "seed %d: unacked key %s holds foreign value %s" seed
            key
            (Option.value ~default:"<none>" got))
    m.pending;
  (* Fresh writes win in EVERY shard: the shared clock recovered the max
     timestamp across all of them. *)
  List.iter
    (fun i ->
      let key = key_of i in
      Sharded_db.put db ~key ~value:"fresh";
      if Sharded_db.get db key <> Some "fresh" then
        Alcotest.failf
          "seed %d: recovered timestamps shadow new writes in shard of %s" seed
          key)
    [ 0; 30; 60 ];
  Sharded_db.close db;
  let db = Sharded_db.open_store clean_opts in
  if Sharded_db.get db (key_of 0) <> Some "fresh" then
    Alcotest.failf "seed %d: second reopen lost data" seed;
  Sharded_db.close db;
  rm_rf dir

(* Failure isolation: persistent fsync failures degrade the shard whose
   maintenance hits them — and ONLY that shard. The others must keep
   accepting writes, and the combined health report must name the hit
   shards individually. *)
let run_degrade_isolation seed =
  let dir = Filename.concat base_dir (Printf.sprintf "degrade_seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed; 13 |] in
  let fault = Faulty_env.create ~seed () in
  (* This test is about what ISOLATION looks like once a shard is down,
     so the self-healing that would mask it is switched off: no retry
     (first fsync failure degrades, as before the retry layer) and no
     auto-repair (the shard stays down for the assertions below). *)
  let opts =
    {
      (sharded_opts_for ~env:(Faulty_env.env fault) dir) with
      Options.retry = Clsm_env.Retry_policy.none;
      auto_repair = false;
    }
  in
  let db = Sharded_db.open_store opts in
  (* Arm only after the open: a fault during layout/recovery IO is the
     crash campaign's business; here the store must be healthy first. *)
  Faulty_env.set_fault_rates fault ~fsync_fail_1_in:25 ();
  (* Hammer all three ranges until some shard degrades (or give up —
     fault schedules are seed-dependent, and a seed that never trips a
     maintenance fsync is a vacuous pass, not a failure). *)
  let ops = ref 0 in
  (try
     while Sharded_db.health db = `Ok && !ops < 3000 do
       incr ops;
       let key = key_of (Random.State.int rng num_keys) in
       let v = Printf.sprintf "v%d" !ops in
       try Sharded_db.put db ~key ~value:v
       with Store_sig.Degraded _ | Env.Error _ -> ()
     done
   with Env.Crashed -> ());
  (match Sharded_db.health db with
  | `Ok -> ()
  | `Partial reason ->
      (* no corruption is injected here; quarantines would be a bug *)
      Alcotest.failf "seed %d: unexpected partial health: %s" seed reason
  | `Degraded reason ->
      let healths = Sharded_db.shard_healths db in
      let degraded_shards =
        List.filter
          (fun i -> healths.(i) <> `Ok)
          [ 0; 1; 2 ]
      in
      (* The combined report names each hit shard. *)
      List.iter
        (fun i ->
          let tag = Printf.sprintf "shard %d:" i in
          let present =
            let tl = String.length tag and rl = String.length reason in
            let rec scan o =
              o + tl <= rl && (String.sub reason o tl = tag || scan (o + 1))
            in
            scan 0
          in
          if not present then
            Alcotest.failf "seed %d: health report %S omits %S" seed reason tag)
        degraded_shards;
      (* Some shard survived (the fault rate cannot plausibly kill all
         three here) and it must still accept writes and serve reads. *)
      (match
         List.find_opt (fun i -> healths.(i) = `Ok) [ 0; 1; 2 ]
       with
      | None -> ()
      | Some survivor ->
          let key = key_of ((survivor * 30) + 5) in
          (try Sharded_db.put db ~key ~value:"alive"
           with e ->
             Alcotest.failf "seed %d: healthy shard %d refused a write: %s"
               seed survivor (Printexc.to_string e));
          if Sharded_db.get db key <> Some "alive" then
            Alcotest.failf "seed %d: healthy shard %d lost a write" seed
              survivor));
  (try Sharded_db.close db
   with Env.Error _ | Store_sig.Degraded _ -> () (* degraded WAL close *));
  rm_rf dir

(* ---------- bit-rot torture ---------- *)

(* Seeded silent-corruption campaign. The environment flips one random
   bit on seeded sstable reads; the invariant is NO WRONG ANSWERS: a
   read may return the key's newest committed value, an older committed
   value (the newest copy's table is in quarantine — health says
   [`Partial]), or nothing, but never bytes that were not written. The
   injected rot is transient (the platter stays clean), so once it
   stops, a scrub + repair round-trip must readmit every quarantined
   table and restore BOTH the full data and [`Ok] health — online,
   without reopening the store. *)
let run_bitrot_seed seed =
  let dir = Filename.concat base_dir (Printf.sprintf "bitrot_seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed; 29 |] in
  let fault = Faulty_env.create ~seed () in
  let opts =
    {
      (opts_for ~env:(Faulty_env.env fault) dir) with
      Options.wal_sync = `Async;
      (* an eager background scrub keeps re-reading blocks the cache
         would otherwise hide from the rot *)
      scrub_interval = 0.02;
      (* repair runs explicitly AFTER the rot stops: under ongoing rot a
         background repair would re-verify a quarantined table through
         the same lying reads, conclude "persistently damaged" and
         discard a file whose platter is actually clean. (A real disk
         that fails a re-verify IS damaged — transient flips on the wire
         are this injector's fiction.) *)
      auto_repair = false;
    }
  in
  let db = Db.open_store opts in
  let gens = 4 in
  let value_of k g = Printf.sprintf "%s:g%d" (key_of k) g in
  for g = 1 to gens do
    for k = 0 to num_keys - 1 do
      Db.put db ~key:(key_of k) ~value:(value_of k g)
    done;
    (* each generation lands in its own set of tables *)
    Db.compact_now db
  done;
  let check_answer ~ctx k = function
    | None -> ()
    | Some v ->
        let committed = ref false in
        for g = 1 to gens do
          if String.equal v (value_of k g) then committed := true
        done;
        if not !committed then
          Alcotest.failf "seed %d: %s returned fabricated data for %s: %S"
            seed ctx (key_of k) v
  in
  Faulty_env.set_fault_rates fault ~corrupt_read_1_in:12 ();
  for _round = 1 to 3 do
    for _ = 1 to 150 do
      let k = Random.State.int rng num_keys in
      match Db.get db (key_of k) with
      | ans -> check_answer ~ctx:"get" k ans
      | exception Table_file.Corruption _ ->
          (* surfaced through an iterator-backed path; the table is
             queued for quarantine *)
          ()
    done;
    (* A scan must not fabricate data either. It may abort on a rotten
       block (typed Corruption) — acceptable: the table is quarantined
       and a retry answers from survivors. *)
    (match Db.range ~limit:(num_keys * 2) db with
    | kvs ->
        List.iter
          (fun (k, v) ->
            match int_of_string_opt (String.sub k 3 (String.length k - 3)) with
            | Some i -> check_answer ~ctx:"scan" i (Some v)
            | None -> Alcotest.failf "seed %d: scan fabricated key %S" seed k)
          kvs
    | exception Table_file.Corruption _ -> ());
    (* Foreground scrub: reads every block past the cache, so the rot
       cannot hide behind cache hits. Its report may or may not be
       empty — the campaign only requires detection to be sound. *)
    ignore (Db.scrub_now db : string list)
  done;
  (* The rot stops. Self-healing must now converge to [`Ok] with no
     data loss: every quarantined table re-verifies clean off the disk
     and is readmitted. *)
  Faulty_env.set_fault_rates fault ~corrupt_read_1_in:0 ();
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec heal () =
    match Db.repair_now db with
    | `Ok -> ()
    | (`Partial _ | `Degraded _) when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        heal ()
    | `Partial reason | `Degraded reason ->
        Alcotest.failf "seed %d: failed to heal online: %s" seed reason
  in
  heal ();
  for k = 0 to num_keys - 1 do
    match Db.get db (key_of k) with
    | Some v when String.equal v (value_of k gens) -> ()
    | other ->
        Alcotest.failf "seed %d: after repair %s = %s, want %S" seed (key_of k)
          (match other with Some v -> Printf.sprintf "%S" v | None -> "<none>")
          (value_of k gens)
  done;
  let snap = Db.stats db in
  if
    Faulty_env.injected_corruptions fault > 0
    && snap.Stats.corruptions_detected = 0
  then
    Alcotest.failf "seed %d: %d corruption(s) injected but none detected" seed
      (Faulty_env.injected_corruptions fault);
  (match Db.verify_integrity db with
  | [] -> ()
  | errs ->
      Alcotest.failf "seed %d: integrity after heal: %s" seed
        (String.concat "; " errs));
  Db.close db;
  rm_rf dir

(* ---------- group-commit torture ---------- *)

(* The crash campaign re-run against [`Group] WAL mode with genuinely
   concurrent committers, so the crash point can land anywhere in the
   leader/rider protocol:

   - before the batch write: no record of the batch reaches the log —
     every rider raises, nothing was acked, nothing may surface;
   - between write and fsync ([Faulty_env] ticks the two separately):
     the batch bytes are unsynced, so the crash image keeps at most a
     torn slice of them — still unacked, may legally surface or not;
   - after fsync, before the riders wake: the batch is durable but
     unacknowledged (the ack raced the crash) — it may surface, and
     riders observe [Env.Crashed] from their own later operations.

   Each writer domain owns a disjoint key partition and its own
   acked/pending model (group commit batches across writers, but each
   key's history stays single-writer, so "acked state is exact" remains
   well-defined). The invariant is the campaign's usual one: everything
   acknowledged survives recovery exactly; nothing unacknowledged
   resurrects as a value that was never attempted. *)
let run_group_commit_seed seed =
  let dir = Filename.concat base_dir (Printf.sprintf "group_seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed; 53 |] in
  let fault = Faulty_env.create ~seed () in
  (* Sweep the policy space deterministically per seed: tiny batches
     (leaders outnumber riders), wide batches, no/short accumulation
     windows. *)
  let max_batch = [| 1; 2; 4; 8 |].(Random.State.int rng 4) in
  let max_delay_us = [| 0; 100; 500 |].(Random.State.int rng 3) in
  let opts =
    {
      (opts_for ~env:(Faulty_env.env fault) dir) with
      Options.wal_sync = `Group { Options.max_batch; max_delay_us };
    }
  in
  let db = Db.open_store opts in
  let writers = 3 in
  let models =
    Array.init writers (fun _ ->
        { acked = Hashtbl.create 64; pending = Hashtbl.create 16 })
  in
  Faulty_env.arm fault ~crash_after:(20 + Random.State.int rng 400);
  let crashed = Atomic.make false in
  let writer d () =
    let m = models.(d) in
    let rng = Random.State.make [| seed; d; 97 |] in
    (* keys of this writer's partition only *)
    let my_key () =
      let i = Random.State.int rng (num_keys / writers) in
      key_of ((i * writers) + d)
    in
    let ops = ref 0 in
    while (not (Atomic.get crashed)) && !ops < 200 do
      incr ops;
      let key = my_key () in
      match Random.State.int rng 10 with
      | 0 | 1 -> (
          attempt m key None;
          match Db.delete db ~key with
          | () -> ack m key None
          | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
              Atomic.set crashed true)
      | 2 -> (
          let key2 = my_key () in
          let v1 = Printf.sprintf "b%d-%d-%d" seed d !ops
          and v2 = Printf.sprintf "b%d-%d-%d'" seed d !ops in
          attempt m key (Some v1);
          attempt m key2 (Some v2);
          match
            Db.write_batch db [ Db.Batch_put (key, v1); Db.Batch_put (key2, v2) ]
          with
          | () ->
              (* key2 may equal key: ack in write order *)
              ack m key (Some v1);
              ack m key2 (Some v2)
          | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
              Atomic.set crashed true)
      | _ -> (
          let v = Printf.sprintf "v%d-%d-%d" seed d !ops in
          attempt m key (Some v);
          match Db.put db ~key ~value:v with
          | () -> ack m key (Some v)
          | exception (Env.Crashed | Env.Error _ | Store_sig.Degraded _) ->
              Atomic.set crashed true)
    done
  in
  List.init writers (fun d -> Domain.spawn (writer d)) |> List.iter Domain.join;
  Db.simulate_crash db;
  Faulty_env.install_crash_image fault;
  (* ---- restart on the crash image with a healthy environment ---- *)
  let clean_opts = { opts with Options.env = Env.unix } in
  let db = Db.open_store clean_opts in
  Db.compact_now db;
  check_dir_consistent ~seed ~label:"group" dir;
  (match Db.verify_integrity db with
  | [] -> ()
  | problems ->
      Alcotest.failf "seed %d: integrity violations: %s" seed
        (String.concat "; " problems));
  Array.iteri
    (fun d m ->
      (* Acked writes survive exactly; keys with pending (unacked)
         attempts may hold the acked value or any attempted one. *)
      Hashtbl.iter
        (fun key expect ->
          let got = Db.get db key in
          let allowed =
            expect :: Option.value ~default:[] (Hashtbl.find_opt m.pending key)
          in
          if not (List.mem got allowed) then
            Alcotest.failf "seed %d: writer %d key %s: got %s, allowed {%s}"
              seed d key
              (Option.value ~default:"<none>" got)
              (String.concat ", "
                 (List.map (Option.value ~default:"<none>") allowed)))
        m.acked;
      (* Never-acked keys can only be absent or hold an attempted value:
         an unacknowledged batch member must not resurrect as anything
         else. *)
      Hashtbl.iter
        (fun key states ->
          if not (Hashtbl.mem m.acked key) then
            let got = Db.get db key in
            if not (List.mem got (None :: states)) then
              Alcotest.failf
                "seed %d: writer %d unacked key %s holds foreign value %s" seed
                d key
                (Option.value ~default:"<none>" got))
        m.pending)
    models;
  (* Fresh writes must win over everything recovered. *)
  Db.put db ~key:(key_of 0) ~value:"fresh";
  if Db.get db (key_of 0) <> Some "fresh" then
    Alcotest.failf "seed %d: recovered timestamps shadow new writes" seed;
  Db.close db;
  let db = Db.open_store clean_opts in
  if Db.get db (key_of 0) <> Some "fresh" then
    Alcotest.failf "seed %d: second reopen lost data" seed;
  Db.close db;
  rm_rf dir

(* Post-crash scribble: the torn tail of any file with unsynced appends
   is overwritten with garbage instead of just truncated — the disk that
   lies about what it wrote. Sync-WAL acked writes live in the synced
   prefix, so recovery (CRC-guarded, salvage mode) must keep every one
   of them and come up healthy despite the scribbled tail. *)
let run_scribble_seed seed =
  let dir = Filename.concat base_dir (Printf.sprintf "scribble_seed%d" seed) in
  rm_rf dir;
  let rng = Random.State.make [| seed; 41 |] in
  let fault = Faulty_env.create ~seed () in
  let opts = opts_for ~env:(Faulty_env.env fault) dir in
  let db = Db.open_store opts in
  let acked : (string, string) Hashtbl.t = Hashtbl.create 64 in
  Faulty_env.arm fault ~crash_after:(20 + Random.State.int rng 200);
  (try
     for i = 0 to 2999 do
       let k = key_of (Random.State.int rng num_keys) in
       let v = Printf.sprintf "s%d-%d" seed i in
       Db.put db ~key:k ~value:v;
       Hashtbl.replace acked k v
     done
   with Env.Crashed | Env.Error _ | Store_sig.Degraded _ -> ());
  Db.simulate_crash db;
  Faulty_env.install_crash_image ~scribble:true fault;
  let db = Db.open_store { opts with Options.env = Env.unix } in
  Hashtbl.iter
    (fun k v ->
      match Db.get db k with
      | Some v' when String.equal v v' -> ()
      | Some v' ->
          Alcotest.failf "seed %d: acked %s=%S read back %S" seed k v v'
      | None -> Alcotest.failf "seed %d: acked %s=%S lost" seed k v)
    acked;
  (match Db.health db with
  | `Ok -> ()
  | `Partial r | `Degraded r ->
      Alcotest.failf "seed %d: unhealthy after scribbled recovery: %s" seed r);
  (match Db.verify_integrity db with
  | [] -> ()
  | errs ->
      Alcotest.failf "seed %d: integrity after scribbled recovery: %s" seed
        (String.concat "; " errs));
  Db.close db;
  rm_rf dir

(* Seed count: TORTURE_SEEDS (default 200). CI pins a smaller budget to
   stay fast; local runs can go as deep as patience allows. The seed
   formula is unchanged from the original 50-seed harness, so the first 50
   schedules are the ones every previous CI run has passed. *)
let num_seeds =
  match Sys.getenv_opt "TORTURE_SEEDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> failwith "TORTURE_SEEDS must be a positive integer")
  | None -> 200

let seeds = List.init num_seeds (fun i -> 1000 + (i * 77))

(* The sharded campaign reuses the seed stream at a quarter of the
   budget (each sharded cycle opens/recovers three stores). *)
let sharded_seeds =
  List.filteri (fun i _ -> i < max 2 (num_seeds / 4)) seeds

(* The silent-corruption campaign has its own budget knob (BITROT_SEEDS,
   default 50 — the acceptance bar: 50 seeds, zero wrong answers). *)
let bitrot_seeds =
  let n =
    match Sys.getenv_opt "BITROT_SEEDS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> failwith "BITROT_SEEDS must be a positive integer")
    | None -> 50
  in
  List.init n (fun i -> 9000 + (i * 31))

let scribble_seeds =
  List.filteri (fun i _ -> i < max 3 (List.length bitrot_seeds / 5)) bitrot_seeds

(* The group-commit campaign has its own budget knob (GROUP_COMMIT_SEEDS,
   default 50 — the acceptance bar: 50 seeds, acked writes survive, no
   resurrections). *)
let group_commit_seeds =
  let n =
    match Sys.getenv_opt "GROUP_COMMIT_SEEDS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n > 0 -> n
        | _ -> failwith "GROUP_COMMIT_SEEDS must be a positive integer")
    | None -> 50
  in
  List.init n (fun i -> 17000 + (i * 53))

let () =
  Alcotest.run "clsm-torture"
    [
      ( "torture",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_one_seed seed))
          seeds );
      ( "torture-sharded",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_one_sharded_seed seed))
          sharded_seeds );
      ( "degrade-isolation",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_degrade_isolation seed))
          [ 4242; 4319; 4396 ] );
      ( "bitrot",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_bitrot_seed seed))
          bitrot_seeds );
      ( "crash-scribble",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_scribble_seed seed))
          scribble_seeds );
      ( "group-commit",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Slow
              (fun () -> run_group_commit_seed seed))
          group_commit_seeds );
    ]
