lib/primitives/refcounted.ml: Atomic
