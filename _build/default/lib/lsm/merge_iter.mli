(** K-way merging iterator — the heart of the merge procedure that
    "incorporates the contents of the memory component into the disk, and
    the contents of each component into the next one" (paper §2.3), and of
    multi-component scans.

    Ties (equal keys across sources) are broken by source order: earlier
    sources (newer components) win, and the duplicate from the older source
    is still emitted afterwards — callers that need deduplication (e.g.
    compaction) skip repeated internal keys. *)

val merge : cmp:(string -> string -> int) -> Iter.t list -> Iter.t
