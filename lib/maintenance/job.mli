(** The maintenance job model.

    Background work on an LSM store is not uniform: a memtable flush
    releases write-ahead log space and unblocks stalled writers, an
    L0→L1 compaction bounds read amplification and the L0 stall/slowdown
    triggers, and deeper compactions only reshape cold data. Following
    Luo & Carey's stability analysis, jobs are totally ordered:

    flush > L0→L1 compaction > deeper-level compactions (shallower first). *)

type t =
  | Flush  (** rotate the memtable if needed and merge [C'm] to L0 *)
  | Repair
      (** self-healing: apply pending quarantines, finalize quarantined
          files, and attempt the online transition out of [`Degraded] *)
  | Compact of { src_level : int; target_level : int }
      (** merge one unit of [src_level] into [target_level];
          [src_level = 0] is the L0→L1 merge *)
  | Scrub
      (** incremental background media check: re-verify sstable blocks
          and the WAL tail at a configurable IO budget *)
  | In_shard of { shard : int; job : t }
      (** [job], claimed from shard [shard] of a range-sharded store:
          how one shared worker pool arbitrates jobs across shards while
          claim bookkeeping stays per shard *)

val priority : t -> int
(** Smaller is more urgent. [Flush] is [0]; [Repair] is [1]; [Compact]
    of level [l] is [l + 2]; [Scrub] yields to everything; [In_shard] is
    transparent (its inner job's priority). *)

val compare : t -> t -> int
(** Orders by {!priority}. *)

val levels : t -> (int * int) option
(** The [(src, target)] level range a compaction occupies; [None] for a
    flush. Two compactions may run in parallel iff their ranges are
    disjoint. *)

val pp : Format.formatter -> t -> unit
