open Clsm_primitives
module Env = Clsm_env.Env

type mode = Sync | Async

type t = {
  mode : mode;
  file_path : string;
  writer : Env.writer;
  queue : string Mpmc_queue.t;
  io_mutex : Mutex.t; (* serializes the drain/write path *)
  mutable closed : bool;
  mutable poisoned : exn option;
      (* first IO failure; written under [io_mutex], monotonic None->Some *)
  mutable written : int;
      (* bytes fully handed to the env writer, advanced under [io_mutex]
         only AFTER a physical append returns: the file prefix
         [0, written) contains whole records and no in-flight bytes, so
         a concurrent reader (scrub's WAL-tail check) that stops there
         can never misread a half-written record as corruption *)
}

let create ?(mode = Async) ?(env = Env.unix) file_path =
  {
    mode;
    file_path;
    writer = env.Env.create_writer file_path;
    queue = Mpmc_queue.create ();
    io_mutex = Mutex.create ();
    closed = false;
    poisoned = None;
    written = 0;
  }

(* Fsync-gate semantics: after any append or fsync failure the durability
   of previously acknowledged bytes is unknown, so the writer is
   permanently poisoned — every later operation re-raises the original
   failure instead of silently retrying over a gap. *)
let check_poisoned t = match t.poisoned with Some e -> raise e | None -> ()

(* Must hold [io_mutex]. *)
let poison_locked t e = if t.poisoned = None then t.poisoned <- Some e

(* Must hold [io_mutex]. *)
let drain_locked t =
  let buf = Buffer.create 4096 in
  let rec pump () =
    match Mpmc_queue.pop t.queue with
    | Some payload ->
        Wal_record.encode buf payload;
        pump ()
    | None -> ()
  in
  pump ();
  if Buffer.length buf > 0 then begin
    t.writer.Env.w_append (Buffer.contents buf);
    t.written <- t.written + Buffer.length buf
  end

let append t payload =
  if t.closed then invalid_arg "Wal_writer.append: closed";
  check_poisoned t;
  match t.mode with
  | Sync ->
      Mutex.lock t.io_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.io_mutex)
        (fun () ->
          check_poisoned t;
          let buf =
            Buffer.create (String.length payload + Wal_record.header_length)
          in
          Wal_record.encode buf payload;
          try
            t.writer.Env.w_append (Buffer.contents buf);
            t.written <- t.written + Buffer.length buf;
            t.writer.Env.w_fsync ()
          with e ->
            poison_locked t e;
            raise e)
  | Async ->
      Mpmc_queue.push t.queue payload;
      (* Opportunistic group commit: whoever gets the lock drains for all.
         A failure here poisons the writer; it surfaces on the next
         [append] or [flush] (an async append itself acknowledges
         nothing). *)
      if Mutex.try_lock t.io_mutex then begin
        (match t.poisoned with
        | Some _ -> ()
        | None -> ( try drain_locked t with e -> poison_locked t e));
        Mutex.unlock t.io_mutex
      end

let flush t =
  Mutex.lock t.io_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_mutex)
    (fun () ->
      check_poisoned t;
      try
        drain_locked t;
        t.writer.Env.w_fsync ()
      with e ->
        poison_locked t e;
        raise e)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* The descriptor is released even when the final flush fails; the
       failure still propagates (a swallowed fsync error here would
       silently drop acknowledged-durable guarantees). *)
    Fun.protect ~finally:(fun () -> t.writer.Env.w_close ()) (fun () -> flush t)
  end

let abandon t =
  if not t.closed then begin
    t.closed <- true;
    (* Crash simulation: bytes already handed to the OS survive (the env
       writer is unbuffered); the queue's unacknowledged records are
       dropped, modeling the loss. *)
    try t.writer.Env.w_close () with _ -> ()
  end

let path t = t.file_path
let queued t = Mpmc_queue.length t.queue
let poisoned t = t.poisoned <> None
let written_bytes t = t.written
