(* Positive fixture: the gm/io_mutex group-commit protocol as the real
   Wal_writer implements it.  The leader drops gm around the
   accumulation sleep and around the IO (which runs under io_mutex),
   riders park on gcond.  Must produce zero diagnostics; also compiled
   with -bin-annot by the test rules to exercise --cmt mode. *)

type w = { w_append : string -> unit; w_fsync : unit -> unit }

type t = {
  gm : Mutex.t;
  gcond : Condition.t;
  io_mutex : Mutex.t;
  writer : w;
  gpending : string Queue.t;
  mutable gleader : bool;
  mutable gdurable : int;
  mutable gnext : int;
}

let lead_round t =
  t.gleader <- true;
  Mutex.unlock t.gm;
  Unix.sleepf 0.0001;
  Mutex.lock t.gm;
  let batch = ref [] in
  while not (Queue.is_empty t.gpending) do
    batch := Queue.pop t.gpending :: !batch
  done;
  let durable_upto = t.gnext - 1 in
  Mutex.unlock t.gm;
  (match !batch with
  | [] -> ()
  | payloads ->
      Mutex.lock t.io_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.io_mutex)
        (fun () ->
          List.iter (fun p -> t.writer.w_append p) payloads;
          t.writer.w_fsync ()));
  Mutex.lock t.gm;
  t.gdurable <- durable_upto;
  t.gleader <- false;
  Condition.broadcast t.gcond
[@@requires_lock gm] [@@drops_lock gm]

let append t payload =
  Mutex.lock t.gm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.gm)
    (fun () ->
      let my = t.gnext in
      t.gnext <- my + 1;
      Queue.push payload t.gpending;
      let rec wait_durable () =
        if t.gdurable < my then begin
          if t.gleader then Condition.wait t.gcond t.gm else lead_round t;
          wait_durable ()
        end
      in
      wait_durable ())
