(** Durable description of the store's disk state, rewritten atomically
    (write-temp + fsync + rename) on every version installation. Together
    with the write-ahead logs this is everything recovery needs. *)

type t = {
  next_file_number : int;
  last_ts : int; (** highest timestamp issued before the save *)
  wal_number : int; (** active write-ahead log to replay on recovery *)
  files : (int * int) list; (** (level, table number); level 0 newest first *)
  quarantined : int list;
      (** table numbers pulled from the read view after a corruption
          verdict: recovery neither opens nor garbage-collects them *)
}

val save : ?env:Clsm_env.Env.t -> dir:string -> t -> unit
(** Raises {!Clsm_env.Env.Error} on IO failure; the previous manifest is
    then still in place (the temp file never replaces it). *)

val load : ?env:Clsm_env.Env.t -> dir:string -> unit -> t option
(** [None] when no manifest exists (fresh store). Raises [Failure] on a
    corrupt manifest (CRC mismatch or malformed contents). *)
