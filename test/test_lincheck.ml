(* Multicore linearizability torture harness: `dune build @lincheck`.

   For each seed, a multi-domain stress schedule (small contended key
   space, mixed get/put/delete/rmw/put_if_absent, scans, concurrent
   flush+compaction through the maintenance scheduler) is recorded into a
   concurrent history and decided by the Wing–Gong checker plus the scan
   validator:

   - the real cLSM store (`Db`, skip-list memtable) under the default
     serializable snapshots and under `linearizable_snapshots`;
   - its algorithmic twin `Cow_store`;
   - the bare lock-free memtable (Algorithm 3 RMW with no store around);
   - the lock-striping baseline (`Striped_rmw`, known good);
   - the deliberately-broken store, which the checker MUST flag — the
     negative control proving the harness can fail.

   Seed count: LINCHECK_SEEDS (default 24, min 1). On an unexpected
   violation the full history and the minimized witness are dumped to
   lincheck-failure-<target>-seed<N>.txt (directory: LINCHECK_DUMP_DIR or
   cwd) so CI can upload it as an artifact. *)

open Clsm_core
open Clsm_lincheck

let num_seeds =
  match Sys.getenv_opt "LINCHECK_SEEDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> failwith "LINCHECK_SEEDS must be a positive integer")
  | None -> 24

let seeds = List.init num_seeds (fun i -> 9000 + (i * 13))

let base_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_lincheck_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Tiny components so the schedule crosses memtable rotations, flushes and
   level compactions while the workers run. *)
let opts ?(linearizable = false) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 2 * 1024;
    cache_bytes = 1 lsl 18;
    wal_sync = `Async;
    wal_enabled = true;
    linearizable_snapshots = linearizable;
    maintenance_workers = 2;
    maintenance_tick = 0.01;
    lsm =
      {
        base.Options.lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 16 * 1024;
        target_file_size = 2 * 1024;
        l0_compaction_trigger = 3;
        block_size = 256;
      };
  }

(* Rotate key-popularity shapes across seeds (reusing the benchmark
   harness's generators): uniform churns the whole space, Zipf and the
   §5.2 heavy tail pile onto a couple of keys, skewed blocks sit in
   between. *)
let cfg seed =
  let dist =
    match seed mod 4 with
    | 0 -> `Uniform
    | 1 -> `Zipf
    | 2 -> `Skewed_blocks
    | _ -> `Heavy_tail
  in
  { Stress.default with Stress.seed; domains = 4; dist }

let dump_dir =
  match Sys.getenv_opt "LINCHECK_DUMP_DIR" with
  | Some d when d <> "" -> d
  | _ -> Sys.getcwd ()

let dump_failure ~target ~seed (h : History.t) (r : Checker.result)
    scan_violations =
  let path =
    Filename.concat dump_dir
      (Printf.sprintf "lincheck-failure-%s-seed%d.txt" target seed)
  in
  let oc = open_out path in
  Printf.fprintf oc "target=%s seed=%d domains=%d\n\n%s\n\n" target seed
    (cfg seed).Stress.domains (Checker.pp_result r);
  List.iter
    (fun v -> Printf.fprintf oc "%s\n" (Scan_checker.pp_violation v))
    scan_violations;
  Printf.fprintf oc "\n--- full history (%d events, %d scans) ---\n"
    (List.length h.History.events)
    (List.length h.History.scans);
  List.iter
    (fun e -> Printf.fprintf oc "%s\n" (History.pp_event e))
    h.History.events;
  List.iter
    (fun (s : History.scan) ->
      Printf.fprintf oc "[d%d] scan inv=%d res=%d ts=%s {%s}\n"
        s.History.scan_domain s.History.scan_inv s.History.scan_res
        (match s.History.snap_ts with
        | None -> "-"
        | Some t -> string_of_int t)
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
              s.History.result)))
    h.History.scans;
  close_out oc;
  path

let assert_clean ~target ~seed ~scan_mode h =
  let r = Checker.check h in
  let sv = Scan_checker.check ~mode:scan_mode h in
  if (not (Checker.ok r)) || sv <> [] then begin
    let path = dump_failure ~target ~seed h r sv in
    Alcotest.failf "%s seed %d: %s%s\n(history dumped to %s)" target seed
      (Checker.pp_result r)
      (String.concat "\n" (List.map Scan_checker.pp_violation sv))
      path
  end

(* ---------- targets ---------- *)

module Db_target = Target.Of_store (Db)
module Cow_target = Target.Of_store (Cow_store)
module Sharded_target = Target.Of_store (Sharded_db)

let run_clsm ~linearizable seed () =
  let dir =
    Filename.concat base_dir
      (Printf.sprintf "clsm%s_seed%d"
         (if linearizable then "_lin" else "")
         seed)
  in
  rm_rf dir;
  let db = Db.open_store (opts ~linearizable dir) in
  let h =
    Fun.protect
      ~finally:(fun () ->
        Db.close db;
        rm_rf dir)
      (fun () -> Stress.run (cfg seed) (Db_target.ops ~name:"clsm" db))
  in
  assert_clean
    ~target:(if linearizable then "clsm-lin" else "clsm")
    ~seed
    ~scan_mode:(if linearizable then `Linearizable else `Serializable)
    h

(* The same store with the WAL in leader-batched group-commit mode: every
   put/delete/rmw parks on the group condvar until a leader publishes its
   LSN as durable, so the commit path the checker observes includes the
   leader election, the batched fsync and the rider wakeup. A tiny
   max_batch with a nonzero accumulation window maximizes leader/rider
   interleavings. Linearizability must be indistinguishable from the
   async-WAL store. *)
let run_clsm_group seed () =
  let dir =
    Filename.concat base_dir (Printf.sprintf "clsm_group_seed%d" seed)
  in
  rm_rf dir;
  let o =
    {
      (opts dir) with
      Options.wal_sync = `Group { Options.max_batch = 4; max_delay_us = 50 };
    }
  in
  let db = Db.open_store o in
  let h =
    Fun.protect
      ~finally:(fun () ->
        Db.close db;
        rm_rf dir)
      (fun () ->
        Stress.run
          { (cfg seed) with Stress.ops_per_domain = 120 }
          (Db_target.ops ~name:"clsm-group" db))
  in
  assert_clean ~target:"store-group" ~seed ~scan_mode:`Serializable h

(* The shard router over 4 Db instances sharing one clock: boundaries
   split the stress key space k00..k07 so every domain's schedule
   crosses shards constantly, and every scan is a cross-shard merge
   under one fenced snapshot timestamp. The same Wing–Gong check plus
   the dual-mode scan validator apply unchanged — the router must be
   indistinguishable from one store. *)
let run_sharded ~linearizable seed () =
  let dir =
    Filename.concat base_dir
      (Printf.sprintf "sharded%s_seed%d"
         (if linearizable then "_lin" else "")
         seed)
  in
  rm_rf dir;
  let o =
    {
      (opts ~linearizable dir) with
      Options.shards = 4;
      shard_boundaries = Some [ "k02"; "k04"; "k06" ];
    }
  in
  let db = Sharded_db.open_store o in
  let h =
    Fun.protect
      ~finally:(fun () ->
        Sharded_db.close db;
        rm_rf dir)
      (fun () -> Stress.run (cfg seed) (Sharded_target.ops ~name:"sharded" db))
  in
  assert_clean
    ~target:(if linearizable then "sharded-lin" else "sharded")
    ~seed
    ~scan_mode:(if linearizable then `Linearizable else `Serializable)
    h

let run_cow seed () =
  let dir = Filename.concat base_dir (Printf.sprintf "cow_seed%d" seed) in
  rm_rf dir;
  let db = Cow_store.open_store (opts dir) in
  let h =
    Fun.protect
      ~finally:(fun () ->
        Cow_store.close db;
        rm_rf dir)
      (fun () -> Stress.run (cfg seed) (Cow_target.ops ~name:"cow" db))
  in
  assert_clean ~target:"cow" ~seed ~scan_mode:`Serializable h

let run_striped seed () =
  let dir = Filename.concat base_dir (Printf.sprintf "striped_seed%d" seed) in
  rm_rf dir;
  let base = Clsm_baselines.Single_writer_store.open_store (opts dir) in
  let st = Clsm_baselines.Striped_rmw.create base in
  let h =
    Fun.protect
      ~finally:(fun () ->
        Clsm_baselines.Single_writer_store.close base;
        rm_rf dir)
      (fun () -> Stress.run (cfg seed) (Target.of_striped st))
  in
  assert_clean ~target:"striped" ~seed ~scan_mode:`Serializable h

let run_memtable seed () =
  let h =
    Stress.run
      { (cfg seed) with Stress.ops_per_domain = 500; scan_every = 0 }
      (Target.of_memtable ())
  in
  assert_clean ~target:"memtable" ~seed ~scan_mode:`Serializable h

(* ---------- negative control ---------- *)

let broken_flagged () =
  (* The stale-read and lost-update bugs are timing-dependent; retry a few
     seeds before declaring the checker blind. In practice the first seed
     is flagged. *)
  let cfg seed =
    {
      (cfg seed) with
      Stress.ops_per_domain = 120;
      read_pct = 40;
      put_pct = 25;
      delete_pct = 5;
      rmw_pct = 25;
      scan_every = 0;
      compact_every = 0;
    }
  in
  let rec attempt tries seed =
    let bs = Clsm_baselines.Broken_store.create () in
    let h = Stress.run (cfg seed) (Target.of_broken bs) in
    let r = Checker.check h in
    if not (Checker.ok r) then begin
      (* show what a failing run looks like: the minimized witness *)
      print_newline ();
      print_endline (Checker.pp_result r);
      List.iter
        (fun v ->
          Alcotest.(check bool) "witness nonempty" true
            (v.Checker.witness <> []))
        r.Checker.violations
    end
    else if tries > 0 then attempt (tries - 1) (seed + 1)
    else
      Alcotest.fail
        "the deliberately-broken store passed the checker — the harness \
         cannot fail"
  in
  attempt 4 31337

let cases name f seeds =
  ( name,
    List.map
      (fun seed ->
        Alcotest.test_case (Printf.sprintf "seed %d" seed) `Slow (f seed))
      seeds )

let take n l = List.filteri (fun i _ -> i < n) l

let () =
  let half = max 1 (num_seeds / 2) in
  let small = max 2 (num_seeds / 6) in
  Alcotest.run "clsm-lincheck"
    [
      cases "clsm" (run_clsm ~linearizable:false) (take half seeds);
      cases "clsm-linearizable-snapshots"
        (run_clsm ~linearizable:true)
        (take (num_seeds - half) (List.rev seeds));
      cases "store-group" run_clsm_group (take small seeds);
      cases "sharded" (run_sharded ~linearizable:false) (take small seeds);
      cases "sharded-linearizable-snapshots"
        (run_sharded ~linearizable:true)
        (take small (List.rev seeds));
      cases "memtable" run_memtable (take small seeds);
      cases "cow-store" run_cow (take small seeds);
      cases "striped-rmw" run_striped (take small seeds);
      ( "self-test",
        [ Alcotest.test_case "broken store is flagged" `Slow broken_flagged ]
      );
    ]
