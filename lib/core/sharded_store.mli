(** Range-shard router: N cLSM instances behind one {!Store_sig.S}.

    [Make (S)] composes [Options.shards] instances of [S] — each owning
    a contiguous key range and the subdirectory [shard-<i>] — into one
    store. All shards draw timestamps from one shared {!Clock}, so their
    union is a single serializable history:

    - point operations route to the owning shard (binary search over the
      boundary keys) and keep the shard's lock-free paths;
    - [get_snap] runs one clock fence valid across every shard, and
      cross-shard scans merge the per-shard snapshot iterators on
      user-key order ({!Clsm_lsm.Merge_iter} over {!Clsm_lsm.Iter.clamp}
      views);
    - [write_batch] groups operations by shard and excludes snapshot
      fences for the duration (router-level shared-exclusive lock:
      batches shared, [get_snap] exclusive), so a router snapshot sees
      all of a batch or none of it;
    - one shared maintenance pool arbitrates flush/compaction across all
      shards ([Job.In_shard] claims, round-robin), replacing the shards'
      private schedulers.

    The boundary keys are persisted in a [SHARDING] file in the root
    directory (version header, hex-encoded keys); on reopen the file
    wins over [Options.shards]/[shard_boundaries] — data already placed
    under the old boundaries cannot move. Boundaries default to a
    byte-uniform split of the keyspace ([shards <= 256]).

    [repair] rebuilds each shard directory independently; [health]
    reports the union of per-shard degradations, so one shard's IO
    failure leaves the other ranges writable. *)

module Make (S : Store_sig.EXTENDED) : sig
  include Store_sig.S

  (** {1 Router introspection} *)

  val shard_count : t -> int

  val shard_boundaries : t -> string list
  (** The [shards - 1] ascending boundary keys in effect (persisted or
      derived); shard [i] owns [[b_(i-1), b_i)]. *)

  val shard_stats : t -> Stats.snapshot array
  (** Per-shard counters, index-aligned with the shard directories.
      {!Store_sig.S.stats} returns their {!Stats.merge_all} roll-up plus
      the router's own fence counters. *)

  val shard_healths : t -> [ `Ok | `Partial of string | `Degraded of string ] array
  (** Per-shard health, index-aligned: corruption quarantines and IO
      degradations stay isolated to the shard that hit them. *)
end
