(** LevelDB-style baseline: the same LSM substrate as cLSM (memtable,
    SSTables, leveled compaction, WAL) under LevelDB's concurrency control —
    "coarse-grained synchronization that forces all puts to be executed
    sequentially" (paper §6). A single global mutex serializes every write
    and every component-pointer access; reads take it briefly to pin the
    components (as LevelDB's [GetApproximate...] path does) and release it
    before searching.

    Semantically equivalent to {!Clsm_core.Db} (multi-versioned reads,
    snapshots, recovery); only the synchronization differs. This is the
    competitor for the write/read scalability comparisons (Figures 5–8)
    and, via {!Striped_rmw}, the lock-striping RMW baseline of Figure 9. *)

type t

val open_store : Clsm_core.Options.t -> t
val close : t -> unit

val put : t -> key:string -> value:string -> unit
val delete : t -> key:string -> unit
val get : t -> string -> string option

type snapshot

val get_snap : t -> snapshot
val snapshot_ts : snapshot -> int
val release_snapshot : t -> snapshot -> unit
val get_at : t -> snapshot -> string -> string option

val range :
  ?snapshot:snapshot ->
  ?start:string ->
  ?stop:string ->
  ?limit:int ->
  t ->
  (string * string) list

val compact_now : t -> unit
val stats : t -> Clsm_core.Stats.snapshot
val level_file_counts : t -> int list
