(** The store signature produced by {!Store.Make} — see {!Db} (the
    skip-list instantiation, the paper's cLSM) for the full story; the
    per-item documentation lives here. *)

exception Degraded of string
(** Raised by write operations after an unrecoverable IO failure (failed
    fsync, out of disk space) has switched the store to read-only mode.
    The payload describes the original failure. Reads keep working; close
    the store, fix the environment and reopen to resume writing. *)

module type S = sig
  type t

  val open_store : Options.t -> t
  (** Open (or create) the store, running crash recovery: load the manifest,
      delete orphaned files, replay live write-ahead logs (re-sorted by
      timestamp), and start the compaction domain.
      Raises on unrecoverable corruption. *)

  val close : t -> unit
  (** Stop maintenance, flush the WAL, persist the manifest and release all
      components. Idempotent. The memtable is {e not} flushed — like
      LevelDB, reopening recovers it from the log. *)

  (** {1 Point operations} *)

  val put : t -> key:string -> value:string -> unit
  val delete : t -> key:string -> unit
  (** Put of the deletion marker ⊥ (paper §2.1). *)

  val get : t -> string -> string option
  (** Latest value, or [None] if absent or deleted. Never blocks. *)

  (** {1 Read-modify-write} *)

  type rmw_decision =
    | Set of string  (** store this value *)
    | Remove  (** store a deletion marker *)
    | Abort  (** change nothing *)

  val rmw : t -> key:string -> (string option -> rmw_decision) -> string option
  (** [rmw t ~key f] atomically applies [f] to the current value of [key]
      (with [None] for absent/deleted) and installs its decision. [f] may be
      re-invoked after a conflict with a concurrent writer — only the final
      invocation's decision takes effect, so side effects inside [f] must be
      overwriting, not cumulative. The returned value is the pre-image read
      by the successful attempt. Lock-free: failure of one attempt implies
      another operation progressed. *)

  val put_if_absent : t -> key:string -> value:string -> bool
  (** The Figure 9 RMW flavor: atomically install [value] unless [key] is
      present. [true] if this call installed it. *)

  (** {1 Atomic write batches} *)

  type batch_op =
    | Batch_put of string * string  (** key, value *)
    | Batch_delete of string

  val write_batch : t -> batch_op list -> unit
  (** Apply all operations atomically: the shared-exclusive lock is held in
      exclusive mode for the duration (the paper inherits LevelDB's blocking
      batch implementation, §4), so no writer, RMW or snapshot can interleave,
      and the batch is logged as a single WAL record (durable
      all-or-nothing). Plain {!get}s do not take the lock and may observe a
      prefix of an in-flight batch; use snapshots for consistent reads. *)

  (** {1 Snapshots and scans} *)

  type snapshot

  val get_snap : ?ttl:float -> t -> snapshot
  (** Consistent point-in-time view (serializable; linearizable when the
      store was opened with [linearizable_snapshots]). Release it with
      {!release_snapshot}, or pass [ttl] (seconds) to have the handle expire
      automatically — the paper's two removal paths for unused snapshot
      handles (§3.2.1). Reading through an expired snapshot is not checked;
      its pinned versions may be garbage-collected. *)

  val snapshot_ts : snapshot -> int
  val release_snapshot : t -> snapshot -> unit
  (** Unpin the snapshot so compactions may GC versions it held (the
      paper's explicit API-call removal from the active snapshot list).
      Idempotent. *)

  val get_at : t -> snapshot -> string -> string option
  (** Snapshot read of a single key (§3.2.2). *)

  val multi_get : t -> string list -> (string * string option) list
  (** Read several keys from one internal snapshot, so the results are
      mutually consistent. *)

  (** Forward iterator over live user keys: the snapshot-filtered merge of
      all components. Holds references on its components — {!iter_close} it. *)
  type iterator

  val iterator : ?snapshot:snapshot -> t -> iterator
  (** Without [snapshot], an internal snapshot is taken and released on
      close. *)

  val iter_seek_first : iterator -> unit
  val iter_seek : iterator -> string -> unit
  (** Position at the first visible key [>= target]. *)

  val iter_valid : iterator -> bool
  val iter_key : iterator -> string
  val iter_value : iterator -> string
  val iter_next : iterator -> unit
  val iter_close : iterator -> unit

  val range :
    ?snapshot:snapshot ->
    ?start:string ->
    ?stop:string ->
    ?limit:int ->
    t ->
    (string * string) list
  (** Collect visible bindings with [start <= key < stop] (both optional),
      at most [limit]. A range query in the paper's sense (§3.2.2). *)

  val fold :
    ?snapshot:snapshot -> (string -> string -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  (** Full snapshot scan. *)

  (** {1 Maintenance and introspection} *)

  val compact_now : t -> unit
  (** Synchronously rotate the memtable, flush it, and run level compactions
      to quiescence. For tests, benchmarks and bulk-load flows. *)

  val simulate_crash : t -> unit
  (** Testing hook: abandon the store without flushing the asynchronous WAL
      queue or persisting the manifest — the on-disk state is what a process
      crash would leave. The handle must not be used afterwards; reopen the
      directory with {!open_store} to run recovery. *)

  val flush_wal : t -> unit
  val stats : t -> Stats.snapshot
  val options : t -> Options.t

  val health : t -> [ `Ok | `Partial of string | `Degraded of string ]
  (** [`Degraded reason] once an IO failure has switched the store to
      read-only mode — writes raise {!Degraded}, reads still work.
      [`Partial reason] while corrupt table files sit in quarantine:
      reads and writes both work, but quarantined key ranges answer from
      the surviving overlapping data only. [`Ok] means neither. *)

  val scrub_now : t -> string list
  (** Synchronously re-verify every sstable block (checksums, structural
      decode, bloom/index/properties blocks — bypassing the block cache)
      and the active WAL tail. Corrupt tables are quarantined before
      returning. Empty list = clean media. The background [Scrub] job
      runs the same pass incrementally every [scrub_interval] seconds. *)

  val repair_now : t -> [ `Ok | `Partial of string | `Degraded of string ]
  (** Synchronously run the self-healing pass the background [Repair]
      job performs (regardless of [auto_repair]): apply pending
      quarantines, finalize quarantined files whose surviving data
      re-verifies clean, and attempt the online [`Degraded] → [`Ok]
      transition by re-proving the write path. Returns the resulting
      health. *)

  val level_file_counts : t -> int list
  (** Files per level, L0 first. *)

  val memtable_bytes : t -> int
  val cache_stats : t -> Clsm_sstable.Cache.stats

  val repair : ?env:Clsm_env.Env.t -> dir:string -> unit -> unit
  (** LevelDB-style RepairDB: rebuild the manifest of a store whose manifest
      was lost or corrupted, from the table files present. Damaged tables are
      renamed aside ([.damaged]); surviving tables are installed at level 0,
      where timestamp order keeps reads correct. Run on a closed store, then
      {!open_store} as usual (WAL replay still applies). *)

  val verify_integrity : t -> string list
  (** Verify every table file (checksums, ordering, properties) and the
      level invariants of the current disk component. Empty list = healthy.
      Safe on a live store (operates on a pinned version). *)

end

(** The extended surface a store exposes so a router (e.g.
    {!Sharded_store}) can compose several instances into one: access to
    the logical clock, snapshot views at an externally fenced timestamp,
    and the maintenance claim/run pair so one shared worker pool can
    arbitrate flush/compaction jobs across instances. *)
module type EXTENDED = sig
  include S

  val clock : t -> Clock.t
  (** The store's logical-time domain — shared when the store was opened
      with [Options.clock = Some c]. *)

  val snapshot_at : t -> ts:int -> snapshot
  (** A snapshot view at a timestamp the {e caller} has already fenced
      (via {!Clock.snap_ts} on this store's clock) and keeps registered:
      no fence is run and no registry entry is taken, so releasing it is
      a no-op. Reading through a timestamp that was never fenced on this
      clock is unsound. *)

  val maintenance_next : t -> Clsm_maintenance.Job.t option
  (** Claim this store's highest-priority runnable maintenance job
      ([None] when idle, stopped or degraded). Thread-safe; the claim
      must be discharged with {!maintenance_run}. *)

  val maintenance_run : t -> Clsm_maintenance.Job.t -> unit
  (** Execute a job claimed by {!maintenance_next} and release its claim
      (exceptions are degraded into read-only mode, never propagated). *)

  val set_wake_hook : t -> (unit -> unit) -> unit
  (** Where "maintenance work exists" signals go when the store was
      opened with [Options.external_maintenance] (no private scheduler):
      the router points this at its shared scheduler's wake. *)
end
