module Env = Clsm_env.Env

type t = {
  number : int;
  table : Clsm_sstable.Table.t;
  size : int;
  smallest : string;
  largest : string;
  obsolete : bool Atomic.t;
  env : Env.t;
}

let table_path ~dir number = Filename.concat dir (Printf.sprintf "%06d.sst" number)
let wal_path ~dir number = Filename.concat dir (Printf.sprintf "%06d.log" number)
let manifest_path ~dir = Filename.concat dir "MANIFEST"

let open_number ?cache ?(env = Env.unix) ~dir number =
  let path = table_path ~dir number in
  let table =
    Clsm_sstable.Table.open_file ?cache ~env ~cmp:Internal_key.comparator path
  in
  let props = Clsm_sstable.Table.properties table in
  {
    number;
    table;
    size = Clsm_sstable.Table.file_size table;
    smallest = props.Clsm_sstable.Table_format.smallest;
    largest = props.Clsm_sstable.Table_format.largest;
    obsolete = Atomic.make false;
    env;
  }

let mark_obsolete t = Atomic.set t.obsolete true

let release t =
  let path = Clsm_sstable.Table.path t.table in
  Clsm_sstable.Table.close t.table;
  if Atomic.get t.obsolete then
    (* Best effort: the file is already unreferenced by any manifest, so a
       failed delete only leaves an orphan for recovery to collect. *)
    try t.env.Env.remove path with _ -> ()
