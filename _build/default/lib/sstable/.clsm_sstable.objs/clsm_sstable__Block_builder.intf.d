lib/sstable/block_builder.mli:
