(* The lock-discipline analyzer core.

   Two passes over every parsed compilation unit:

   Pass A (extraction): a flat traversal of each top-level binding
   collecting a per-function summary — locks acquired anywhere in the
   body, whether the body can block (Env IO, sleeps, joins,
   Condition.wait), outgoing calls, and the declared annotation
   contracts ([@@requires_lock l], [@@excludes_locks ...],
   [@@drops_lock l]). A call-graph fixpoint then propagates transitive
   acquisitions and blockingness through resolved calls.

   Pass C (checking): an intraprocedural walk tracking the set of held
   locks along control flow — Mutex.lock/unlock/protect, Fun.protect
   (body before ~finally), Mutex.try_lock in an if condition,
   Shared_lock shared/exclusive ops, and the spec's with-style
   wrappers. Branches are joined by intersecting their exit held-sets.
   Each acquisition is checked against the spec's partial order (LC001)
   and reentrancy (LC008); blocking calls against the no-block set
   (LC002); call sites against callee contracts (LC003/LC004);
   Condition.wait against its declared mutex (LC007); Atomic/Domain use
   against the module allowlist (LC005); and bare Mutex.lock not
   immediately covered by Fun.protect is flagged (LC006) unless the
   function is on the spec's hand-over-hand allowlist.

   Lambdas are analyzed inline where they appear, under the held-set of
   that program point (plus the wrapper's lock when passed to a
   with-style wrapper), which is how closure bodies like the cache's
   fill protocol get checked under the right lock. *)

open Parsetree
module SS = Set.Make (String)

type excludes = NoExcl | ExclAll | ExclSome of string list
type mode = Plain | Shared | Exclusive

type fenv = {
  f_file : string;
  f_module : string; (* capitalized basename: summary-key namespace *)
  mutable f_aliases : (string * string) list; (* module X = Y *)
  mutable f_opens : string list;
}

type summary = {
  s_key : string;
  mutable s_acquires : SS.t; (* transitive after fixpoint, minus drops *)
  mutable s_blocking : bool;
  s_requires : string list;
  s_excludes : excludes;
  s_drops : SS.t; (* locks this function may release internally *)
  mutable s_calls : (string option * string) list; (* module hint, name *)
  s_fenv : fenv;
}

type genv = {
  spec : Lockspec.t;
  summaries : (string, summary) Hashtbl.t;
  mutable diags : Diag.t list;
}

type wstate = {
  genv : genv;
  fenv : fenv;
  fn_key : string;
  mutable held : (string * mode) list; (* innermost first *)
}

(* ---------- small utilities ---------- *)

let rec list_last = function [] -> "" | [ x ] -> x | _ :: tl -> list_last tl

let last_two parts =
  match List.rev parts with
  | b :: a :: _ -> Some (a ^ "." ^ b)
  | _ -> None

let rec unwrap e =
  match e.pexp_desc with
  | Pexp_open (_, e') | Pexp_constraint (e', _) -> unwrap e'
  | _ -> e

let head_parts f =
  match (unwrap f).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let is_lambda e =
  match (unwrap e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let add_diag genv fenv loc code msg =
  genv.diags <-
    { Diag.file = fenv.f_file; line = line_of loc; code; msg } :: genv.diags

let canon fenv m =
  let rec go m n =
    if n = 0 then m
    else
      match List.assoc_opt m fenv.f_aliases with
      | Some t when t <> m -> go t (n - 1)
      | _ -> m
  in
  go m 5

(* ---------- lock / wrapper / annotation resolution ---------- *)

let lock_matches fenv (l : Lockspec.lock_decl) ~field ~var =
  (l.l_modules = [] || List.mem fenv.f_module l.l_modules)
  && ((match field with Some f -> List.mem f l.l_fields | None -> false)
     || match var with Some v -> List.mem v l.l_vars | None -> false)

let lock_of_expr genv fenv e =
  let field, var =
    match (unwrap e).pexp_desc with
    | Pexp_field (_, lid) -> (Some (Longident.last lid.txt), None)
    | Pexp_ident { txt; _ } -> (
        match Longident.flatten txt with [ v ] -> (None, Some v) | _ -> (None, None))
    | _ -> (None, None)
  in
  if field = None && var = None then None
  else
    List.find_opt (fun l -> lock_matches fenv l ~field ~var) genv.spec.locks
    |> Option.map (fun (l : Lockspec.lock_decl) -> l.l_name)

let find_wrapper genv fenv parts =
  let last = list_last parts in
  let hint =
    match List.rev parts with _ :: m :: _ -> Some (canon fenv m) | _ -> None
  in
  List.find_opt
    (fun (w : Lockspec.wrapper) ->
      w.w_name = last
      &&
      match (w.w_module, hint) with
      | None, _ -> true
      | Some wm, Some h -> wm = h
      | Some wm, None -> wm = fenv.f_module)
    genv.spec.wrappers

let wrapper_lock genv fenv (w : Lockspec.wrapper) args =
  match w.w_lock with
  | Some l -> Some l
  | None -> (
      match w.w_lock_arg with
      | Some i -> (
          match List.nth_opt args (i - 1) with
          | Some (_, e) -> lock_of_expr genv fenv e
          | None -> None)
      | None -> None)

let payload_idents = function
  | PStr items ->
      List.concat_map
        (fun it ->
          match it.pstr_desc with
          | Pstr_eval (e, _) ->
              let rec ids e =
                match e.pexp_desc with
                | Pexp_ident { txt; _ } -> [ Longident.last txt ]
                | Pexp_apply (f, args) ->
                    ids f @ List.concat_map (fun (_, a) -> ids a) args
                | Pexp_tuple es -> List.concat_map ids es
                | Pexp_sequence (a, b) -> ids a @ ids b
                | _ -> []
              in
              ids e
          | _ -> [])
        items
  | _ -> []

let binding_name vb =
  let rec pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p', _) -> pat p'
    | _ -> None
  in
  pat vb.pvb_pat

let rec module_structure me =
  match me.pmod_desc with
  | Pmod_structure s -> Some s
  | Pmod_functor (_, me') | Pmod_constraint (me', _) -> module_structure me'
  | _ -> None

(* module State = Store_state.Make (M)  =>  State -> Store_state
   module Env = Clsm_env.Env           =>  Env -> Env (last component) *)
let rec alias_target me =
  match me.pmod_desc with
  | Pmod_ident lid -> Some (Longident.last lid.txt)
  | Pmod_constraint (me', _) -> alias_target me'
  | Pmod_apply (f, _) -> (
      match f.pmod_desc with
      | Pmod_ident lid -> (
          match List.rev (Longident.flatten lid.txt) with
          | _functor :: owner :: _ -> Some owner
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---------- pass A: summary extraction ---------- *)

let validate_lock_names genv fenv (attr : attribute) names =
  List.filter
    (fun n ->
      if Lockspec.find_lock_decl genv.spec n = None then begin
        add_diag genv fenv attr.attr_loc "LC009"
          (Printf.sprintf "annotation [@%s] names unknown lock %s"
             attr.attr_name.txt n);
        false
      end
      else true)
    names

let extract_expr genv fenv sum e0 =
  let spec = genv.spec in
  let add_lock = function
    | Some l -> sum.s_acquires <- SS.add l sum.s_acquires
    | None -> ()
  in
  let first_arg_lock args =
    match args with (_, m) :: _ -> lock_of_expr genv fenv m | [] -> None
  in
  let rec it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun _ e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match head_parts f with
              | Some parts -> (
                  let two = last_two parts in
                  let dotted = String.concat "." parts in
                  match two with
                  | Some ("Mutex.lock" | "Mutex.try_lock" | "Mutex.protect") ->
                      add_lock (first_arg_lock args)
                  | Some ("Shared_lock.lock_shared" | "Shared_lock.lock_exclusive")
                    ->
                      add_lock (first_arg_lock args)
                  | Some "Condition.wait" -> sum.s_blocking <- true
                  | _ ->
                      if
                        SS.mem dotted spec.blocking_calls
                        || match two with
                           | Some t -> SS.mem t spec.blocking_calls
                           | None -> false
                      then sum.s_blocking <- true
                      else (
                        match find_wrapper genv fenv parts with
                        | Some w -> add_lock (wrapper_lock genv fenv w args)
                        | None ->
                            let hint =
                              match List.rev parts with
                              | [ _ ] -> None
                              | _ :: m :: _ -> Some m
                              | [] -> None
                            in
                            (match parts with
                            | ("Atomic" | "Domain" | "Mutex" | "Condition"
                              | "Fun" | "Unix" | "Sys" | "Printf" | "Format")
                              :: _ :: _ ->
                                ()
                            | _ ->
                                sum.s_calls <-
                                  (hint, list_last parts) :: sum.s_calls)))
              | None -> (
                  match (unwrap f).pexp_desc with
                  | Pexp_field (_, lid)
                    when SS.mem (Longident.last lid.txt) spec.blocking_fields ->
                      sum.s_blocking <- true
                  | _ -> ()))
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e0

let extract_binding genv fenv vb =
  match binding_name vb with
  | None -> ()
  | Some name ->
      let key = fenv.f_module ^ "." ^ name in
      let requires = ref [] and drops = ref [] and excludes = ref NoExcl in
      List.iter
        (fun (a : attribute) ->
          let ids () =
            validate_lock_names genv fenv a (payload_idents a.attr_payload)
          in
          match a.attr_name.txt with
          | "requires_lock" -> requires := !requires @ ids ()
          | "drops_lock" -> drops := !drops @ ids ()
          | "excludes_locks" -> (
              match payload_idents a.attr_payload with
              | [] -> excludes := ExclAll
              | _ -> excludes := ExclSome (ids ()))
          | _ -> ())
        vb.pvb_attributes;
      let sum =
        {
          s_key = key;
          s_acquires = SS.empty;
          s_blocking = false;
          s_requires = !requires;
          s_excludes = !excludes;
          s_drops = SS.of_list !drops;
          s_calls = [];
          s_fenv = fenv;
        }
      in
      extract_expr genv fenv sum vb.pvb_expr;
      Hashtbl.replace genv.summaries key sum

let rec extract_str genv fenv str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (extract_binding genv fenv) vbs
      | Pstr_module mb ->
          (match mb.pmb_name.txt with
          | Some name -> (
              match alias_target mb.pmb_expr with
              | Some tgt when tgt <> name ->
                  fenv.f_aliases <- (name, tgt) :: fenv.f_aliases
              | _ -> ())
          | None -> ());
          (match module_structure mb.pmb_expr with
          | Some s -> extract_str genv fenv s
          | None -> ())
      | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match module_structure mb.pmb_expr with
              | Some s -> extract_str genv fenv s
              | None -> ())
            mbs
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid ->
              fenv.f_opens <- Longident.last lid.txt :: fenv.f_opens
          | _ -> ())
      | Pstr_include inc -> (
          match module_structure inc.pincl_mod with
          | Some s -> extract_str genv fenv s
          | None -> ())
      | _ -> ())
    str

(* ---------- call resolution + fixpoint ---------- *)

let resolve_call genv fenv (hint, name) =
  match hint with
  | Some h -> Hashtbl.find_opt genv.summaries (canon fenv h ^ "." ^ name)
  | None -> (
      match Hashtbl.find_opt genv.summaries (fenv.f_module ^ "." ^ name) with
      | Some s -> Some s
      | None ->
          List.find_map
            (fun o -> Hashtbl.find_opt genv.summaries (canon fenv o ^ "." ^ name))
            fenv.f_opens)

let fixpoint genv =
  let resolved =
    Hashtbl.fold
      (fun _ sum acc ->
        (sum, List.filter_map (resolve_call genv sum.s_fenv) sum.s_calls) :: acc)
      genv.summaries []
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (sum, callees) ->
        List.iter
          (fun c ->
            let add =
              SS.diff (SS.diff c.s_acquires c.s_drops) sum.s_acquires
            in
            if not (SS.is_empty add) then begin
              sum.s_acquires <- SS.union sum.s_acquires add;
              changed := true
            end;
            if c.s_blocking && not sum.s_blocking then begin
              sum.s_blocking <- true;
              changed := true
            end)
          callees)
      resolved
  done

(* ---------- pass C: intraprocedural checking ---------- *)

let held_names st = List.map fst st.held

let acquire st loc lock _mode =
  if List.mem_assoc lock st.held then
    add_diag st.genv st.fenv loc "LC008"
      (Printf.sprintf "re-acquisition of %s, already held" lock)
  else begin
    List.iter
      (fun (h, _) ->
        if not (Lockspec.order_allows st.genv.spec h lock) then
          add_diag st.genv st.fenv loc "LC001"
            (Printf.sprintf
               "acquires %s while holding %s: not permitted by the declared \
                lock order"
               lock h))
      st.held;
    st.held <- (lock, _mode) :: st.held
  end

let release st lock =
  let rec rm = function
    | [] -> []
    | (n, _) :: tl when n = lock -> tl
    | h :: tl -> h :: rm tl
  in
  st.held <- rm st.held

let blocking_check st loc what =
  List.iter
    (fun (h, _) ->
      if SS.mem h st.genv.spec.no_block then
        add_diag st.genv st.fenv loc "LC002"
          (Printf.sprintf "%s may block while holding %s" what h))
    st.held

let call_check st loc name (c : summary) =
  let held = held_names st in
  List.iter
    (fun r ->
      if not (List.mem r held) then
        add_diag st.genv st.fenv loc "LC003"
          (Printf.sprintf "call to %s requires lock %s, which is not held"
             name r))
    c.s_requires;
  (match c.s_excludes with
  | NoExcl -> ()
  | ExclAll ->
      if held <> [] then
        add_diag st.genv st.fenv loc "LC004"
          (Printf.sprintf
             "call to %s, which must be entered with no locks held (holding \
              %s)"
             name
             (String.concat ", " held))
  | ExclSome ls ->
      List.iter
        (fun l ->
          if List.mem l held then
            add_diag st.genv st.fenv loc "LC004"
              (Printf.sprintf "call to %s while holding excluded lock %s" name
                 l))
        ls);
  let held' = List.filter (fun (n, _) -> not (SS.mem n c.s_drops)) st.held in
  let acqs = SS.diff c.s_acquires c.s_drops in
  SS.iter
    (fun a ->
      if List.mem_assoc a held' then
        add_diag st.genv st.fenv loc "LC008"
          (Printf.sprintf "call to %s (re)acquires %s, already held" name a)
      else
        List.iter
          (fun (h, _) ->
            if not (Lockspec.order_allows st.genv.spec h a) then
              add_diag st.genv st.fenv loc "LC001"
                (Printf.sprintf
                   "call to %s acquires %s while holding %s: not permitted by \
                    the declared lock order"
                   name a h))
          held')
    acqs;
  if c.s_blocking then
    List.iter
      (fun (h, _) ->
        if SS.mem h st.genv.spec.no_block then
          add_diag st.genv st.fenv loc "LC002"
            (Printf.sprintf "call to %s may block while holding %s" name h))
      held'

let intersect a b = List.filter (fun (n, _) -> List.mem_assoc n b) a

(* Run each branch from the same entry held-set; join by intersection. *)
let with_branches st branches =
  let entry = st.held in
  let exits =
    List.map
      (fun f ->
        st.held <- entry;
        f ();
        st.held)
      branches
  in
  st.held <-
    (match exits with
    | [] -> entry
    | e0 :: rest -> List.fold_left intersect e0 rest)

let rec walk st e =
  let spec = st.genv.spec in
  match e.pexp_desc with
  | Pexp_sequence (e1, e2) ->
      (match mutex_lock_parts st e1 with
      | Some (loc, lockarg) ->
          do_mutex_lock st loc lockarg ~bare_ok:(is_fun_protect e2)
      | None -> walk st e1);
      walk st e2
  | Pexp_apply (f, args) -> handle_apply st e f args
  | Pexp_ifthenelse (cond, then_, else_) ->
      let trylock =
        match (unwrap cond).pexp_desc with
        | Pexp_apply (cf, [ (_, m) ])
          when head_parts cf
               |> Option.fold ~none:false ~some:(fun p ->
                      last_two p = Some "Mutex.try_lock") ->
            lock_of_expr st.genv st.fenv m
        | _ -> None
      in
      if trylock = None then walk st cond;
      with_branches st
        [
          (fun () ->
            (match trylock with
            | Some l -> st.held <- (l, Plain) :: st.held
            | None -> ());
            walk st then_);
          (fun () -> match else_ with Some e' -> walk st e' | None -> ());
        ]
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      walk st scrut;
      with_branches st
        ((fun () -> ())
        :: List.map
             (fun c () ->
               (match c.pc_guard with Some g -> walk st g | None -> ());
               walk st c.pc_rhs)
             cases)
  | Pexp_while (cond, body) ->
      walk st cond;
      with_branches st [ (fun () -> walk st body); (fun () -> ()) ]
  | Pexp_for (_, lo, hi, _, body) ->
      walk st lo;
      walk st hi;
      with_branches st [ (fun () -> walk st body); (fun () -> ()) ]
  | Pexp_fun (_, default, _, body) ->
      (match default with Some d -> walk st d | None -> ());
      let entry = st.held in
      walk st body;
      st.held <- entry
  | Pexp_function cases ->
      let entry = st.held in
      List.iter
        (fun c ->
          st.held <- entry;
          (match c.pc_guard with Some g -> walk st g | None -> ());
          walk st c.pc_rhs)
        cases;
      st.held <- entry
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | ("Atomic" | "Domain") :: _ :: _
        when not (SS.mem st.fenv.f_module spec.atomics_modules) ->
          add_diag st.genv st.fenv e.pexp_loc "LC005"
            (Printf.sprintf
               "%s used outside the atomics-allowlisted module set"
               (String.concat "." (Longident.flatten txt)))
      | _ -> ())
  | _ -> dflt st e

and dflt st e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e' -> walk st e');
    }
  in
  Ast_iterator.default_iterator.expr it e

and mutex_lock_parts st e =
  match (unwrap e).pexp_desc with
  | Pexp_apply (f, [ (_, m) ])
    when head_parts f
         |> Option.fold ~none:false ~some:(fun p ->
                last_two p = Some "Mutex.lock") ->
      ignore st;
      Some (e.pexp_loc, m)
  | _ -> None

and is_fun_protect e =
  let is_protect e' =
    match (unwrap e').pexp_desc with
    | Pexp_apply (f, _) ->
        head_parts f
        |> Option.fold ~none:false ~some:(fun p ->
               last_two p = Some "Fun.protect")
    | _ -> false
  in
  match (unwrap e).pexp_desc with
  | Pexp_sequence (e1, _) -> is_protect e1
  | Pexp_let (_, vb :: _, _) -> is_protect vb.pvb_expr
  | _ -> is_protect e

and do_mutex_lock st loc lockarg ~bare_ok =
  walk st lockarg;
  if (not bare_ok) && not (SS.mem st.fn_key st.genv.spec.allow_bare) then
    add_diag st.genv st.fenv loc "LC006"
      "bare Mutex.lock: a raise before the matching unlock leaks the lock; \
       use Mutex.protect or follow immediately with Fun.protect";
  match lock_of_expr st.genv st.fenv lockarg with
  | Some l -> acquire st loc l Plain
  | None -> ()

(* Walk a wrapper invocation: non-lambda arguments first, then the body
   lambdas under the wrapper's lock. *)
and apply_wrapper st loc lock ~shared args =
  let lams, others = List.partition (fun (_, a) -> is_lambda a) args in
  List.iter (fun (_, a) -> walk st a) others;
  (match lock with
  | Some l -> acquire st loc l (if shared then Shared else Plain)
  | None -> ());
  List.iter (fun (_, a) -> walk st a) lams;
  match lock with Some l -> release st l | None -> ()

(* ~finally must be walked transparently (no held restore) so that an
   unlock inside it releases the lock in the caller's continuation. *)
and walk_transparent st e =
  match (unwrap e).pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk_transparent st body
  | _ -> walk st e

and handle_apply st e f args =
  let spec = st.genv.spec in
  let loc = e.pexp_loc in
  let walk_args () = List.iter (fun (_, a) -> walk st a) args in
  match head_parts f with
  | None ->
      (match (unwrap f).pexp_desc with
      | Pexp_field (obj, lid) ->
          walk st obj;
          let field = Longident.last lid.txt in
          if SS.mem field spec.blocking_fields then
            blocking_check st loc (Printf.sprintf "Env IO call (.%s)" field)
      | _ -> walk st f);
      walk_args ()
  | Some parts -> (
      let two = last_two parts in
      let dotted = String.concat "." parts in
      match (parts, two) with
      | ("Atomic" | "Domain") :: _ :: _, _ ->
          if not (SS.mem st.fenv.f_module spec.atomics_modules) then
            add_diag st.genv st.fenv loc "LC005"
              (Printf.sprintf
                 "%s used outside the atomics-allowlisted module set" dotted);
          walk_args ()
      | _, Some "Mutex.lock" -> (
          match args with
          | [ (_, m) ] -> do_mutex_lock st loc m ~bare_ok:false
          | _ -> walk_args ())
      | _, Some "Mutex.unlock" -> (
          walk_args ();
          match args with
          | [ (_, m) ] -> (
              match lock_of_expr st.genv st.fenv m with
              | Some l -> release st l
              | None -> ())
          | _ -> ())
      | _, Some "Mutex.try_lock" ->
          (* outside an if-condition: treated as not acquiring *)
          walk_args ()
      | _, Some "Mutex.protect" -> (
          match args with
          | [ (_, m); (_, body) ] ->
              walk st m;
              apply_wrapper st loc
                (lock_of_expr st.genv st.fenv m)
                ~shared:false
                [ (Asttypes.Nolabel, body) ]
          | _ -> walk_args ())
      | _, Some "Fun.protect" ->
          let fin, rest =
            List.partition
              (fun (l, _) -> l = Asttypes.Labelled "finally")
              args
          in
          List.iter (fun (_, a) -> walk st a) rest;
          List.iter (fun (_, a) -> walk_transparent st a) fin
      | _, Some "Condition.wait" -> handle_wait st loc args
      | _, Some ("Condition.signal" | "Condition.broadcast") -> walk_args ()
      | _, Some "Shared_lock.lock_shared" -> (
          walk_args ();
          match args with
          | [ (_, m) ] -> (
              match lock_of_expr st.genv st.fenv m with
              | Some l -> acquire st loc l Shared
              | None -> ())
          | _ -> ())
      | _, Some "Shared_lock.lock_exclusive" -> (
          walk_args ();
          match args with
          | [ (_, m) ] -> (
              match lock_of_expr st.genv st.fenv m with
              | Some l -> acquire st loc l Exclusive
              | None -> ())
          | _ -> ())
      | _, Some ("Shared_lock.unlock_shared" | "Shared_lock.unlock_exclusive")
        -> (
          walk_args ();
          match args with
          | [ (_, m) ] -> (
              match lock_of_expr st.genv st.fenv m with
              | Some l -> release st l
              | None -> ())
          | _ -> ())
      | _ ->
          if
            SS.mem dotted spec.blocking_calls
            || match two with
               | Some t -> SS.mem t spec.blocking_calls
               | None -> false
          then begin
            blocking_check st loc (Printf.sprintf "blocking call %s" dotted);
            walk_args ()
          end
          else (
            match find_wrapper st.genv st.fenv parts with
            | Some w ->
                apply_wrapper st loc
                  (wrapper_lock st.genv st.fenv w args)
                  ~shared:w.w_shared args
            | None -> (
                walk_args ();
                let hint =
                  match List.rev parts with
                  | [ _ ] -> None
                  | _ :: m :: _ -> Some m
                  | [] -> None
                in
                match resolve_call st.genv st.fenv (hint, list_last parts) with
                | Some c when c.s_key <> st.fn_key ->
                    call_check st loc dotted c
                | _ -> ())))

and handle_wait st loc args =
  List.iter (fun (_, a) -> walk st a) args;
  match args with
  | [ (_, c); (_, m) ] -> (
      let cfield =
        match (unwrap c).pexp_desc with
        | Pexp_field (_, lid) -> Some (Longident.last lid.txt)
        | Pexp_ident { txt; _ } -> (
            match Longident.flatten txt with [ v ] -> Some v | _ -> None)
        | _ -> None
      in
      match lock_of_expr st.genv st.fenv m with
      | None ->
          add_diag st.genv st.fenv loc "LC007"
            "Condition.wait on a mutex not declared in the lock spec"
      | Some l ->
          if not (List.mem_assoc l st.held) then
            add_diag st.genv st.fenv loc "LC007"
              (Printf.sprintf "Condition.wait on %s, which is not held" l);
          (match
             List.find_opt
               (fun (cv : Lockspec.condvar) ->
                 Some cv.c_field = cfield
                 &&
                 match cv.c_module with
                 | None -> true
                 | Some m' -> m' = st.fenv.f_module)
               st.genv.spec.condvars
           with
          | None ->
              add_diag st.genv st.fenv loc "LC007"
                "Condition.wait on a condvar with no declared mutex \
                 association in the lock spec"
          | Some cv ->
              if cv.c_lock <> l then
                add_diag st.genv st.fenv loc "LC007"
                  (Printf.sprintf
                     "Condition.wait pairs condvar %s with foreign mutex %s \
                      (declared mutex: %s)"
                     cv.c_field l cv.c_lock));
          List.iter
            (fun (h, _) ->
              if h <> l then
                add_diag st.genv st.fenv loc "LC007"
                  (Printf.sprintf
                     "Condition.wait on %s while also holding %s" l h))
            st.held)
  | _ -> ()

let check_binding genv fenv vb =
  let key =
    match binding_name vb with
    | Some n -> fenv.f_module ^ "." ^ n
    | None -> fenv.f_module ^ "._toplevel"
  in
  let requires =
    match Hashtbl.find_opt genv.summaries key with
    | Some s -> s.s_requires
    | None -> []
  in
  let st =
    { genv; fenv; fn_key = key; held = List.map (fun r -> (r, Plain)) requires }
  in
  walk st vb.pvb_expr

let rec check_str genv fenv str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter (check_binding genv fenv) vbs
      | Pstr_module mb -> (
          match module_structure mb.pmb_expr with
          | Some s -> check_str genv fenv s
          | None -> ())
      | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match module_structure mb.pmb_expr with
              | Some s -> check_str genv fenv s
              | None -> ())
            mbs
      | Pstr_include inc -> (
          match module_structure inc.pincl_mod with
          | Some s -> check_str genv fenv s
          | None -> ())
      | Pstr_eval (e, _) ->
          let st =
            {
              genv;
              fenv;
              fn_key = fenv.f_module ^ "._toplevel";
              held = [];
            }
          in
          walk st e
      | _ -> ())
    str

(* ---------- driver ---------- *)

let module_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let run spec units =
  let genv = { spec; summaries = Hashtbl.create 256; diags = [] } in
  let units =
    List.map
      (fun (file, str) ->
        let fenv =
          { f_file = file; f_module = module_of_file file; f_aliases = []; f_opens = [] }
        in
        (fenv, str))
      units
  in
  List.iter (fun (fenv, str) -> extract_str genv fenv str) units;
  fixpoint genv;
  List.iter (fun (fenv, str) -> check_str genv fenv str) units;
  List.sort_uniq
    (fun (a : Diag.t) b ->
      match Diag.compare a b with 0 -> String.compare a.msg b.msg | c -> c)
    genv.diags
