(* The event-driven maintenance layer: the Wakeup primitive, the job
   model, the scheduler, the graduated backpressure curve, and — against
   the real store — the regression the refactor exists for: a memtable
   rotation triggers a flush through a condvar signal, not a poll tick,
   plus a multi-domain stress test of writers, scanners and forced
   churn under the worker pool. *)

open Clsm_core
open Clsm_primitives
open Clsm_maintenance

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clsm_test_maint_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm d;
    d

(* ---------- Wakeup primitive ---------- *)

let wakeup_signal_then_wait () =
  let w = Wakeup.create () in
  let seen = Wakeup.current w in
  Wakeup.signal w;
  (* Signal already issued: wait must return immediately, not block. *)
  let g = Wakeup.wait w ~seen in
  Alcotest.(check bool) "generation advanced" true (g > seen)

let wakeup_wakes_sleeping_waiter () =
  let w = Wakeup.create () in
  let woke = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        let seen = Wakeup.current w in
        ignore (Wakeup.wait w ~seen);
        Atomic.set woke true)
  in
  (* Give the waiter time to park, then signal. *)
  let rec park_wait n =
    if n > 0 && Wakeup.waiters w = 0 then begin
      Unix.sleepf 0.005;
      park_wait (n - 1)
    end
  in
  park_wait 200;
  Alcotest.(check int) "one parked waiter" 1 (Wakeup.waiters w);
  Wakeup.signal w;
  Domain.join waiter;
  Alcotest.(check bool) "waiter woke" true (Atomic.get woke)

(* ---------- Job model ---------- *)

let job_priorities () =
  let flush = Job.Flush in
  let l0 = Job.Compact { src_level = 0; target_level = 1 } in
  let deep = Job.Compact { src_level = 3; target_level = 4 } in
  Alcotest.(check bool) "flush beats L0 merge" true (Job.compare flush l0 < 0);
  Alcotest.(check bool) "L0 merge beats deep" true (Job.compare l0 deep < 0);
  Alcotest.(check (option (pair int int))) "flush occupies no levels" None
    (Job.levels flush);
  Alcotest.(check (option (pair int int))) "compact range" (Some (3, 4))
    (Job.levels deep)

(* ---------- Scheduler ---------- *)

(* With an effectively infinite tick, only the wake signal can run the
   job: the scheduler is event-driven, not polling. *)
let scheduler_runs_on_wake_not_tick () =
  let pending = Atomic.make 0 in
  let ran = Atomic.make 0 in
  let next () =
    let rec claim () =
      let n = Atomic.get pending in
      if n <= 0 then None
      else if Atomic.compare_and_set pending n (n - 1) then Some Job.Flush
      else claim ()
    in
    claim ()
  in
  let run _job = Atomic.incr ran in
  let s =
    Scheduler.create ~num_workers:2 ~tick_interval:3600.0 ~next ~run ()
  in
  Scheduler.start s;
  Unix.sleepf 0.05;
  Alcotest.(check int) "idle until work exists" 0 (Atomic.get ran);
  Atomic.set pending 3;
  Scheduler.wake s;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get ran < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Scheduler.stop s;
  Alcotest.(check int) "all jobs ran without a tick" 3 (Atomic.get ran);
  Alcotest.(check int) "jobs counted" 3 (Scheduler.jobs_run s)

let scheduler_stop_joins_quickly () =
  let s =
    Scheduler.create ~num_workers:1 ~tick_interval:3600.0
      ~next:(fun () -> None)
      ~run:(fun _ -> ())
      ()
  in
  Scheduler.start s;
  Unix.sleepf 0.02;
  let t0 = Unix.gettimeofday () in
  Scheduler.stop s;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "stop returned in %.3fs despite 1h tick" elapsed)
    true (elapsed < 2.0)

(* ---------- Backpressure curve ---------- *)

let backpressure_curve () =
  let config =
    { Backpressure.soft_l0 = 8; hard_l0 = 12; max_delay_ns = 1_000_000 }
  in
  Alcotest.(check int) "no delay below soft" 0
    (Backpressure.delay_ns config ~l0_files:7);
  let d8 = Backpressure.delay_ns config ~l0_files:8 in
  let d10 = Backpressure.delay_ns config ~l0_files:10 in
  let d11 = Backpressure.delay_ns config ~l0_files:11 in
  Alcotest.(check bool) "positive at soft" true (d8 > 0);
  Alcotest.(check bool) "monotone" true (d8 < d10 && d10 < d11);
  Alcotest.(check int) "max at hard-1" config.max_delay_ns d11;
  Alcotest.(check int) "capped past hard" config.max_delay_ns
    (Backpressure.delay_ns config ~l0_files:20);
  (* Degenerate config (soft = hard) must not divide by zero. *)
  let tight = { config with Backpressure.soft_l0 = 12 } in
  Alcotest.(check int) "soft=hard still capped" tight.max_delay_ns
    (Backpressure.delay_ns tight ~l0_files:12)

(* ---------- Stats JSON ---------- *)

let stats_json_shape () =
  let s = Stats.create () in
  Stats.incr_puts s;
  Stats.incr_compactions s ~src_level:0 ();
  Stats.incr_compactions s ~src_level:2 ();
  Stats.add_slowdown s ~delay_ns:1234;
  let json = Stats.to_json (Stats.read s) in
  let has sub =
    let n = String.length json and m = String.length sub in
    let rec at i = i + m <= n && (String.sub json i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "puts" true (has "\"puts\":1");
  Alcotest.(check bool) "per-level array" true
    (has "\"compactions_per_level\":[1,0,1");
  Alcotest.(check bool) "slowdown ns" true (has "\"slowdown_delay_ns\":1234");
  Alcotest.(check bool) "valid object" true
    (String.length json > 2
    && json.[0] = '{'
    && json.[String.length json - 1] = '}')

(* Counters are plain Atomics: domains hammering them concurrently must
   lose no increments, the fan-out high-watermark must converge to the
   true maximum, and a JSON snapshot taken afterwards must reflect the
   exact totals. *)
let stats_concurrent_updates () =
  let s = Stats.create () in
  let domains = 4 and per_domain = 5_000 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      Stats.incr_flushes s;
      (* Fanouts cycle 1..4 so the true max is exactly 4. *)
      Stats.record_compaction_run s
        ~fanout:((i mod 4) + 1)
        ~duration_ns:10;
      Stats.add_stall_ns s (d + 1)
    done
  in
  let doms = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join doms;
  let st = Stats.read s in
  let n = domains * per_domain in
  Alcotest.(check int) "flushes" n st.Stats.flushes;
  (* Each run records max 1 fanout subranges: cycle 1+2+3+4 per 4 runs. *)
  Alcotest.(check int) "subcompactions" (n / 4 * 10) st.Stats.subcompactions;
  Alcotest.(check int) "parallel runs" (n / 4 * 3) st.Stats.parallel_compactions;
  Alcotest.(check int) "fanout high-watermark" 4 st.Stats.max_compaction_fanout;
  Alcotest.(check int) "compaction ns" (n * 10) st.Stats.compaction_ns;
  Alcotest.(check int) "stall ns"
    (per_domain * (1 + 2 + 3 + 4))
    st.Stats.stall_ns;
  let json = Stats.to_json st in
  let has sub =
    let n = String.length json and m = String.length sub in
    let rec at i = i + m <= n && (String.sub json i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "json subcompactions" true
    (has (Printf.sprintf "\"subcompactions\":%d" st.Stats.subcompactions));
  Alcotest.(check bool) "json fanout" true (has "\"max_compaction_fanout\":4");
  Alcotest.(check bool) "json stall_ns" true
    (has (Printf.sprintf "\"stall_ns\":%d" st.Stats.stall_ns))

(* ---------- Store-level: event-driven flush regression ---------- *)

(* The seed's background loop slept between polls, so flush latency was
   bounded below by the poll interval. With the scheduler, a rotation
   signals a condvar: set the fallback tick to 30 s and require the flush
   to land orders of magnitude sooner. *)
let flush_without_poll_tick () =
  let dir = fresh_dir () in
  let base = Options.default ~dir in
  let opts =
    {
      base with
      Options.memtable_bytes = 4 * 1024;
      cache_bytes = 1 lsl 20;
      maintenance_tick = 30.0;
      lsm =
        {
          base.Options.lsm with
          Clsm_lsm.Lsm_config.level1_max_bytes = 64 * 1024;
          target_file_size = 16 * 1024;
          block_size = 1024;
        };
    }
  in
  let db = Db.open_store opts in
  Fun.protect
    ~finally:(fun () -> Db.close db)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      for i = 0 to 199 do
        Db.put db
          ~key:(Printf.sprintf "key-%04d" i)
          ~value:(String.make 64 'v')
      done;
      let deadline = t0 +. 10.0 in
      while
        (Db.stats db).Stats.flushes = 0 && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.002
      done;
      let elapsed = Unix.gettimeofday () -. t0 in
      let st = Db.stats db in
      Alcotest.(check bool) "rotation happened" true
        (st.Stats.memtable_rotations >= 1);
      Alcotest.(check bool) "flush happened" true (st.Stats.flushes >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "flush in %.3fs, far below the 30s tick" elapsed)
        true
        (elapsed < 5.0);
      Alcotest.(check bool) "writes signalled the scheduler" true
        (st.Stats.maintenance_wakeups >= 1);
      (* Data must remain readable across rotation + flush. *)
      Alcotest.(check (option string)) "read-back" (Some (String.make 64 'v'))
        (Db.get db "key-0199"))

(* End-to-end through the real store with [max_subcompactions = 4]: the
   L0→L1 merge must fan out (stats record the parallelism), and reads,
   level invariants and recovery must be indistinguishable from the
   sequential path. *)
let parallel_subcompactions_e2e () =
  let dir = fresh_dir () in
  let base = Options.default ~dir in
  let opts =
    {
      base with
      Options.memtable_bytes = 1 lsl 20;
      cache_bytes = 1 lsl 20;
      max_subcompactions = 4;
      lsm =
        {
          base.Options.lsm with
          Clsm_lsm.Lsm_config.level1_max_bytes = 64 * 1024;
          target_file_size = 32 * 1024;
          l0_compaction_trigger = 3;
          block_size = 1024;
        };
    }
  in
  let db = Db.open_store opts in
  let value round i = Printf.sprintf "r%d-%06d" round i in
  for round = 1 to 4 do
    for i = 1 to 300 do
      Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(value round i)
    done;
    (* Rotate + flush each round; round 3 reaches the L0 trigger and runs
       the fanned-out L0→L1 merge inside this call. *)
    Db.compact_now db
  done;
  for i = 1 to 300 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%04d newest version" i)
      (Some (value 4 i))
      (Db.get db (Printf.sprintf "k%04d" i))
  done;
  Alcotest.(check (list string)) "level invariants hold" []
    (Db.verify_integrity db);
  let st = Db.stats db in
  Alcotest.(check bool) "a compaction ran" true (st.Stats.compactions >= 1);
  Alcotest.(check bool) "it fanned out" true
    (st.Stats.parallel_compactions >= 1 && st.Stats.max_compaction_fanout >= 2);
  Alcotest.(check bool) "subranges counted" true
    (st.Stats.subcompactions > st.Stats.compactions);
  Alcotest.(check bool) "duration recorded" true (st.Stats.compaction_ns > 0);
  Db.close db;
  (* Recovery over the parallel-written level must be seamless. *)
  let db2 = Db.open_store opts in
  Fun.protect
    ~finally:(fun () -> Db.close db2)
    (fun () ->
      Alcotest.(check (option string)) "survives reopen"
        (Some (value 4 123))
        (Db.get db2 "k0123");
      Alcotest.(check (list string)) "healthy after reopen" []
        (Db.verify_integrity db2))

(* ---------- Store-level: concurrency stress under the scheduler ---------- *)

let stress_writers_readers_churn () =
  let dir = fresh_dir () in
  let base = Options.default ~dir in
  let opts =
    {
      base with
      Options.memtable_bytes = 8 * 1024;
      cache_bytes = 1 lsl 20;
      maintenance_workers = 2;
      maintenance_tick = 0.05;
      lsm =
        {
          base.Options.lsm with
          Clsm_lsm.Lsm_config.level1_max_bytes = 32 * 1024;
          target_file_size = 8 * 1024;
          block_size = 1024;
        };
    }
  in
  let db = Db.open_store opts in
  let writers = 3 and per_writer = 300 in
  let value w i = Printf.sprintf "w%d-value-%06d" w i in
  let key w i = Printf.sprintf "w%d-key-%04d" w i in
  (* Seed the atomic pair scanners assert on. *)
  Db.write_batch db
    [ Db.Batch_put ("pair-a", "0"); Db.Batch_put ("pair-b", "0") ];
  let stop_readers = Atomic.make false in
  let failures : string list Atomic.t = Atomic.make [] in
  let fail msg = Atomic.set failures (msg :: Atomic.get failures) in
  let writer w () =
    for i = 0 to per_writer - 1 do
      Db.put db ~key:(key w i) ~value:(value w i);
      (* Batches keep the pair equal at every snapshot. *)
      if i mod 50 = 0 then begin
        let v = string_of_int ((w * per_writer) + i) in
        Db.write_batch db [ Db.Batch_put ("pair-a", v); Db.Batch_put ("pair-b", v) ]
      end
    done
  in
  let reader () =
    while not (Atomic.get stop_readers) do
      let s = Db.get_snap db in
      (* Atomic-batch invariant under a snapshot. *)
      let a = Db.get_at db s "pair-a" and b = Db.get_at db s "pair-b" in
      if a <> b then
        fail
          (Printf.sprintf "pair diverged under snapshot: %s vs %s"
             (Option.value a ~default:"-")
             (Option.value b ~default:"-"));
      (* Snapshot scans must be stable while compactions churn beneath. *)
      let r1 = Db.range ~snapshot:s ~start:"w0-" ~stop:"w1-" db in
      let r2 = Db.range ~snapshot:s ~start:"w0-" ~stop:"w1-" db in
      if r1 <> r2 then fail "snapshot scan not repeatable";
      List.iter
        (fun (k, v) ->
          if not (String.length v >= 3 && String.sub v 0 3 = "w0-") then
            fail (Printf.sprintf "foreign value %s under key %s" v k))
        r1;
      Db.release_snapshot db s
    done
  in
  let churn () =
    for _ = 1 to 3 do
      Db.compact_now db;
      Unix.sleepf 0.01
    done
  in
  let reader_doms = List.init 2 (fun _ -> Domain.spawn reader) in
  let writer_doms = List.init writers (fun w -> Domain.spawn (writer w)) in
  let churn_dom = Domain.spawn churn in
  List.iter Domain.join writer_doms;
  Domain.join churn_dom;
  Atomic.set stop_readers true;
  List.iter Domain.join reader_doms;
  (* Everything written must be readable: no lost updates. *)
  Db.compact_now db;
  for w = 0 to writers - 1 do
    for i = 0 to per_writer - 1 do
      match Db.get db (key w i) with
      | Some v when v = value w i -> ()
      | Some v -> fail (Printf.sprintf "%s: wrong value %s" (key w i) v)
      | None -> fail (Printf.sprintf "%s: lost" (key w i))
    done
  done;
  Alcotest.(check (list string)) "no consistency violations" []
    (Atomic.get failures);
  Alcotest.(check (list string)) "level invariants hold" []
    (Db.verify_integrity db);
  let st = Db.stats db in
  Alcotest.(check bool) "maintenance actually churned" true
    (st.Stats.flushes >= 1 && st.Stats.memtable_rotations >= 1);
  Db.close db;
  (* Reopen: recovery must see every key (WAL + manifest consistent). *)
  let db2 = Db.open_store opts in
  Fun.protect
    ~finally:(fun () -> Db.close db2)
    (fun () ->
      Alcotest.(check (option string)) "survives reopen"
        (Some (value 2 (per_writer - 1)))
        (Db.get db2 (key 2 (per_writer - 1))))

let suites =
  [
    ( "maintenance.wakeup",
      [
        Alcotest.test_case "signal then wait" `Quick wakeup_signal_then_wait;
        Alcotest.test_case "wakes sleeping waiter" `Quick
          wakeup_wakes_sleeping_waiter;
      ] );
    ( "maintenance.job",
      [ Alcotest.test_case "priorities" `Quick job_priorities ] );
    ( "maintenance.scheduler",
      [
        Alcotest.test_case "event-driven, not polling" `Quick
          scheduler_runs_on_wake_not_tick;
        Alcotest.test_case "stop joins despite long tick" `Quick
          scheduler_stop_joins_quickly;
      ] );
    ( "maintenance.backpressure",
      [ Alcotest.test_case "graduated delay curve" `Quick backpressure_curve ] );
    ( "maintenance.stats",
      [
        Alcotest.test_case "to_json shape" `Quick stats_json_shape;
        Alcotest.test_case "concurrent counter updates" `Quick
          stats_concurrent_updates;
      ] );
    ( "maintenance.store",
      [
        Alcotest.test_case "flush without poll tick" `Quick
          flush_without_poll_tick;
        Alcotest.test_case "parallel subcompactions end-to-end" `Quick
          parallel_subcompactions_e2e;
        Alcotest.test_case "writers/readers/churn stress" `Slow
          stress_writers_readers_churn;
      ] );
  ]
