bench/real_check.ml: Array Clsm_core Clsm_workload Driver Filename Format List Printf Store_ops Sys Unix Workload_spec
