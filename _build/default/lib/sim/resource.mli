(** Multi-server FIFO resource: [servers] units of a hardware capacity
    (CPU hardware contexts, a disk's channel, the memory bus). A process
    [use]s the resource for a known service duration; excess demand queues
    in FIFO order. Utilization statistics feed the experiment reports. *)

type t

val create : Engine.t -> servers:int -> t

val use : t -> float -> unit Proc.t
(** Occupy one server for the given virtual duration. *)

val busy : t -> int
val queue_length : t -> int

val busy_time : t -> float
(** Accumulated server-seconds of service. *)

val utilization : t -> horizon:float -> float
(** [busy_time / (servers * horizon)]. *)
