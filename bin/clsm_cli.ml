(* clsm-cli: command-line shell over a cLSM store directory.

   Examples:
     clsm_cli put  --dir /tmp/db mykey myvalue
     clsm_cli get  --dir /tmp/db mykey
     clsm_cli scan --dir /tmp/db --start a --stop z --limit 20
     clsm_cli incr --dir /tmp/db counter
     clsm_cli put  --dir /tmp/db --shards 4 mykey myvalue
     clsm_cli bench --dir /tmp/db --threads 2 --ops 20000 --workload mixed
     clsm_cli stats --dir /tmp/db *)

open Cmdliner
open Clsm_core

let dir_arg =
  let doc = "Store directory (created if missing)." in
  Arg.(value & opt string "./clsm-data" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let shards_arg =
  let doc =
    "Open as a range-sharded store with $(docv) shards (one cLSM instance \
     per contiguous key range, all sharing one logical clock). A directory \
     that already holds a sharded store is detected automatically and its \
     persisted layout wins over this flag."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let boundaries_arg =
  let doc =
    "Comma-separated ascending shard boundary keys (length shards - 1); \
     default is a byte-uniform split of the keyspace."
  in
  Arg.(value & opt (some string) None & info [ "boundaries" ] ~docv:"K1,K2" ~doc)

(* "async" | "per-write" | "group" | "group:BATCH:DELAY_US" *)
let wal_sync_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "async" -> Ok `Async
    | "per-write" | "per_write" | "sync" -> Ok `Per_write
    | "group" -> Ok (`Group Options.default_group_commit)
    | g -> (
        match String.split_on_char ':' g with
        | [ "group"; batch; delay ] -> (
            match (int_of_string_opt batch, int_of_string_opt delay) with
            | Some max_batch, Some max_delay_us
              when max_batch > 0 && max_delay_us >= 0 ->
                Ok (`Group { Options.max_batch; max_delay_us })
            | _ ->
                Error
                  (`Msg
                     "group:BATCH:DELAY_US needs a positive batch and a \
                      non-negative delay"))
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown WAL sync policy %S (expected async, per-write, \
                     group or group:BATCH:DELAY_US)"
                    s)))
  in
  let print ppf (w : Options.wal_sync) =
    match w with
    | `Async -> Format.pp_print_string ppf "async"
    | `Per_write -> Format.pp_print_string ppf "per-write"
    | `Group { Options.max_batch; max_delay_us } ->
        Format.fprintf ppf "group:%d:%d" max_batch max_delay_us
  in
  Arg.conv (parse, print)

let wal_sync_arg =
  let doc =
    "WAL durability policy: $(b,async) (queue only, fsync on flush), \
     $(b,per-write) (one fsync per operation), $(b,group) (leader-batched \
     group commit; optionally $(b,group:BATCH:DELAY_US) to set the batch \
     bound and accumulation window)."
  in
  Arg.(
    value
    & opt wal_sync_conv `Async
    & info [ "wal-sync" ] ~docv:"POLICY" ~doc)

let cache_bytes_arg =
  let doc =
    "Block cache budget in bytes (default 64 MiB). Shared by all shards \
     of a sharded store; open-table index/filter pins are charged against \
     it."
  in
  Arg.(value & opt (some int) None & info [ "cache-bytes" ] ~docv:"BYTES" ~doc)

(* The store-selection flags travel together. *)
let store_args =
  Term.(
    const (fun dir shards boundaries wal_sync cache_bytes ->
        (dir, shards, boundaries, wal_sync, cache_bytes))
    $ dir_arg $ shards_arg $ boundaries_arg $ wal_sync_arg $ cache_bytes_arg)

(* Commands are written once against [Store_sig.S] and run against either
   [Db] or the [Sharded_db] router, picked at open time. *)
type 'r app = {
  apply : 'a. (module Store_sig.S with type t = 'a) -> 'a -> 'r;
}

let with_store (dir, shards, boundaries, wal_sync, cache_bytes) { apply } =
  let base = Options.default ~dir in
  let opts =
    {
      base with
      Options.shards;
      shard_boundaries = Option.map (String.split_on_char ',') boundaries;
      wal_sync;
      cache_bytes = Option.value cache_bytes ~default:base.Options.cache_bytes;
    }
  in
  let sharded =
    shards > 1 || Sys.file_exists (Filename.concat dir "SHARDING")
  in
  if sharded then begin
    let db = Sharded_db.open_store opts in
    Fun.protect
      ~finally:(fun () -> Sharded_db.close db)
      (fun () -> apply (module Sharded_db) db)
  end
  else begin
    let db = Db.open_store opts in
    Fun.protect
      ~finally:(fun () -> Db.close db)
      (fun () -> apply (module Db) db)
  end

(* ---------- point ops ---------- *)

let put_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE") in
  let run st key value =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            S.put db ~key ~value);
      }
  in
  Cmd.v (Cmd.info "put" ~doc:"Store a key-value pair.")
    Term.(const run $ store_args $ key $ value)

let get_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let run st key =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            match S.get db key with
            | Some v ->
                print_endline v;
                0
            | None ->
                prerr_endline "(not found)";
                1);
      }
    |> exit
  in
  Cmd.v (Cmd.info "get" ~doc:"Print a key's value.")
    Term.(const run $ store_args $ key)

let del_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let run st key =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            S.delete db ~key);
      }
  in
  Cmd.v (Cmd.info "del" ~doc:"Delete a key (writes a deletion marker).")
    Term.(const run $ store_args $ key)

let scan_cmd =
  let start =
    Arg.(value & opt (some string) None & info [ "start" ] ~docv:"KEY")
  in
  let stop = Arg.(value & opt (some string) None & info [ "stop" ] ~docv:"KEY") in
  let limit = Arg.(value & opt int 100 & info [ "limit" ] ~docv:"N") in
  let run st start stop limit =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            List.iter
              (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
              (S.range ?start ?stop ~limit db));
      }
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Consistent snapshot range scan in key order (cross-shard scans \
          merge under one snapshot timestamp).")
    Term.(const run $ store_args $ start $ stop $ limit)

let incr_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let by = Arg.(value & opt int 1 & info [ "by" ] ~docv:"N") in
  let run st key by =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            let result = ref 0 in
            ignore
              (S.rmw db ~key (fun v ->
                   let n =
                     match v with Some s -> int_of_string s | None -> 0
                   in
                   result := n + by;
                   S.Set (string_of_int (n + by))));
            Printf.printf "%d\n" !result);
      }
  in
  Cmd.v
    (Cmd.info "incr"
       ~doc:"Atomically increment an integer value (non-blocking RMW).")
    Term.(const run $ store_args $ key $ by)

(* ---------- maintenance / introspection ---------- *)

let compact_cmd =
  let run st =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            S.compact_now db);
      }
  in
  Cmd.v
    (Cmd.info "compact" ~doc:"Flush the memtable and compact all levels.")
    Term.(const run $ store_args)

let verify_cmd =
  let run st =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            match S.verify_integrity db with
            | [] ->
                print_endline
                  "ok: all table files verify; level invariants hold";
                0
            | problems ->
                List.iter (Printf.eprintf "problem: %s\n") problems;
                1);
      }
    |> exit
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check every table file and the disk-component invariants.")
    Term.(const run $ store_args)

let repair_cmd =
  let run dir =
    (* [Sharded_db.repair] rebuilds each shard-* subdirectory and falls
       back to single-store repair when the directory never was sharded. *)
    Sharded_db.repair ~dir ();
    print_endline "manifest rebuilt; damaged tables (if any) renamed *.damaged"
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Rebuild a lost/corrupt manifest from the table files present \
          (per shard on a sharded directory).")
    Term.(const run $ dir_arg)

let stats_cmd =
  let run st =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            Format.printf "%a@." Stats.pp (S.stats db);
            Format.printf "memtable bytes: %d@." (S.memtable_bytes db);
            let c = S.cache_stats db in
            Format.printf
              "block cache: hits=%d misses=%d evictions=%d weight=%d pins=%d \
               singleflight_waits=%d readaheads=%d readahead_blocks=%d@."
              c.Clsm_sstable.Cache.hits c.misses c.evictions c.weight c.pins
              c.singleflight_waits c.readaheads c.readahead_blocks;
            Format.printf "files per level:";
            List.iter (Format.printf " %d") (S.level_file_counts db);
            Format.printf "@.";
            match S.health db with
            | `Ok -> ()
            | `Partial reason -> Format.printf "PARTIAL: %s@." reason
            | `Degraded reason -> Format.printf "DEGRADED: %s@." reason);
      }
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print store statistics (per-shard roll-up on a sharded store).")
    Term.(const run $ store_args)

(* ---------- self-healing ---------- *)

let health_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Also print the full counter set as JSON.")
  in
  let run st json =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            let code =
              match S.health db with
              | `Ok ->
                  Format.printf "ok@.";
                  0
              | `Partial reason ->
                  Format.printf "partial: %s@." reason;
                  1
              | `Degraded reason ->
                  Format.printf "degraded: %s@." reason;
                  2
            in
            if json then print_endline (Stats.to_json (S.stats db));
            code);
      }
    |> exit
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Print store health (per-shard roll-up on a sharded store): 'ok', \
          'partial' (corrupt tables quarantined, reads served from \
          surviving data) or 'degraded' (write path down). Exit code 0/1/2 \
          respectively.")
    Term.(const run $ store_args $ json)

let scrub_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "After scrubbing, run the repair pass: finalize quarantines \
             whose surviving data verifies clean and attempt the online \
             degraded-to-ok transition.")
  in
  let run st repair =
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            let problems = S.scrub_now db in
            List.iter (Format.printf "CORRUPT %s@.") problems;
            let health =
              if repair then S.repair_now db else S.health db
            in
            (match health with
            | `Ok -> Format.printf "health: ok@."
            | `Partial reason -> Format.printf "health: partial: %s@." reason
            | `Degraded reason ->
                Format.printf "health: degraded: %s@." reason);
            print_endline (Stats.to_json (S.stats db));
            if problems = [] then 0 else 1);
      }
    |> exit
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Re-verify every sstable block and the WAL tail (every shard on a \
          sharded store), quarantining corrupt tables. Prints the problems \
          found, the resulting health and the counter set as JSON; exit \
          code 1 if anything was corrupt.")
    Term.(const run $ store_args $ repair)

let batch_cmd =
  let doc =
    "Apply an atomic batch read from stdin: lines are 'put <key> <value>' \
     or 'del <key>'."
  in
  let run st =
    let rec read acc =
      match input_line stdin with
      | line -> (
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> read acc
          | [ "put"; k; v ] -> read (`Put (k, v) :: acc)
          | [ "del"; k ] -> read (`Del k :: acc)
          | _ -> failwith ("batch: malformed line: " ^ line))
      | exception End_of_file -> List.rev acc
    in
    let ops = read [] in
    with_store st
      {
        apply =
          (fun (type a) (module S : Store_sig.S with type t = a) (db : a) ->
            S.write_batch db
              (List.map
                 (function
                   | `Put (k, v) -> S.Batch_put (k, v)
                   | `Del k -> S.Batch_delete k)
                 ops));
      };
    Printf.printf "applied %d operations atomically\n" (List.length ops)
  in
  Cmd.v (Cmd.info "batch" ~doc) Term.(const run $ store_args)

(* ---------- traces ---------- *)

let trace_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE_FILE")

let trace_synth_cmd =
  let count = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N") in
  let space = Arg.(value & opt int 100_000 & info [ "space" ] ~docv:"KEYS") in
  let read_ratio =
    Arg.(value & opt float 0.9 & info [ "read-ratio" ] ~docv:"R")
  in
  let run file count space read_ratio =
    let open Clsm_workload in
    let spec = Workload_spec.production ~read_ratio ~space in
    Trace.synthesize ~spec ~count file;
    Format.printf "%a@." Trace.pp_stats (Trace.stats_of (Trace.load file))
  in
  Cmd.v
    (Cmd.info "trace-synth"
       ~doc:
         "Write a synthetic production-profile trace (heavy-tail keys, 40B \
          keys / 1KB values) to a file.")
    Term.(const run $ trace_file_arg $ count $ space $ read_ratio)

let trace_replay_cmd =
  let run dir file =
    let open Clsm_workload in
    let ops = Trace.load file in
    Format.printf "replaying: %a@." Trace.pp_stats (Trace.stats_of ops);
    let store = Store_ops.open_clsm (Options.default ~dir) in
    let r = Trace.replay store ops in
    Format.printf "%a@." Driver.pp_result r;
    store.Store_ops.close ()
  in
  Cmd.v
    (Cmd.info "trace-replay" ~doc:"Replay a trace file against the store.")
    Term.(const run $ dir_arg $ trace_file_arg)

(* ---------- workload bench ---------- *)

let bench_cmd =
  let threads = Arg.(value & opt int 2 & info [ "threads" ] ~docv:"N") in
  let ops = Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N") in
  let workload =
    let doc =
      "One of: write, read, mixed, scan, rmw, production, ycsb-a .. ycsb-f."
    in
    Arg.(value & opt string "mixed" & info [ "workload" ] ~doc)
  in
  let space = Arg.(value & opt int 50_000 & info [ "space" ] ~docv:"KEYS") in
  let run dir threads ops workload space =
    let open Clsm_workload in
    let spec =
      match workload with
      | "write" -> Workload_spec.write_only ~space
      | "read" -> Workload_spec.read_only_skewed ~space
      | "mixed" -> Workload_spec.mixed_read_write ~space
      | "scan" -> Workload_spec.mixed_scan_write ~space
      | "rmw" -> Workload_spec.rmw_only ~space
      | "production" -> Workload_spec.production ~read_ratio:0.9 ~space
      | "ycsb-a" -> Ycsb.workload_a ~space
      | "ycsb-b" -> Ycsb.workload_b ~space
      | "ycsb-c" -> Ycsb.workload_c ~space
      | "ycsb-d" -> Ycsb.workload_d ~space
      | "ycsb-e" -> Ycsb.workload_e ~space
      | "ycsb-f" -> Ycsb.workload_f ~space
      | other -> failwith ("unknown workload: " ^ other)
    in
    let store = Store_ops.open_clsm (Options.default ~dir) in
    if spec.Workload_spec.read_ratio > 0.0 then
      Driver.preload store spec ~count:space;
    let r = Driver.run ~threads ~ops_per_thread:(ops / max 1 threads) store spec in
    Format.printf "%a@." Driver.pp_result r;
    store.Store_ops.close ()
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run a workload against the store and report.")
    Term.(const run $ dir_arg $ threads $ ops $ workload $ space)

let () =
  let info =
    Cmd.info "clsm_cli" ~version:"1.0.0"
      ~doc:"Concurrent log-structured data store (cLSM, EuroSys '15) shell"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            put_cmd;
            get_cmd;
            del_cmd;
            batch_cmd;
            scan_cmd;
            incr_cmd;
            compact_cmd;
            verify_cmd;
            repair_cmd;
            stats_cmd;
            health_cmd;
            scrub_cmd;
            trace_synth_cmd;
            trace_replay_cmd;
            bench_cmd;
          ]))
