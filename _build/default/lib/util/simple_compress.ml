let min_match = 4
let max_match = 67 (* 4 + 63 *)
let max_offset = 0xffff
let hash_bits = 14
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let v =
    Char.code (String.unsafe_get s i)
    lor (Char.code (String.unsafe_get s (i + 1)) lsl 8)
    lor (Char.code (String.unsafe_get s (i + 2)) lsl 16)
    lor (Char.code (String.unsafe_get s (i + 3)) lsl 24)
  in
  (v * 0x9e3779b1) lsr (30 - hash_bits) land (hash_size - 1)

let compress input =
  let n = String.length input in
  let out = Buffer.create (n / 2) in
  let table = Array.make hash_size (-1) in
  (* literals pending emission: [lit_start, pos) *)
  let flush_literals lit_start pos =
    let rec emit start =
      let remaining = pos - start in
      if remaining > 0 then begin
        let run = min remaining 128 in
        Buffer.add_char out (Char.chr (run - 1));
        Buffer.add_substring out input start run;
        emit (start + run)
      end
    in
    emit lit_start
  in
  let rec step pos lit_start =
    if pos + min_match > n then flush_literals lit_start n
    else begin
      let h = hash4 input pos in
      let candidate = table.(h) in
      table.(h) <- pos;
      let match_len =
        if
          candidate >= 0
          && pos - candidate <= max_offset
          && String.unsafe_get input candidate = String.unsafe_get input pos
        then begin
          let limit = min max_match (n - pos) in
          let rec extend l =
            if
              l < limit
              && String.unsafe_get input (candidate + l)
                 = String.unsafe_get input (pos + l)
            then extend (l + 1)
            else l
          in
          extend 0
        end
        else 0
      in
      if match_len >= min_match then begin
        flush_literals lit_start pos;
        let offset = pos - candidate in
        Buffer.add_char out (Char.chr (0x80 lor (match_len - min_match)));
        Buffer.add_char out (Char.chr (offset land 0xff));
        Buffer.add_char out (Char.chr (offset lsr 8));
        step (pos + match_len) (pos + match_len)
      end
      else step (pos + 1) lit_start
    end
  in
  step 0 0;
  Buffer.contents out

let decompress input =
  let n = String.length input in
  let out = Buffer.create (n * 3) in
  let rec go pos =
    if pos = n then Buffer.contents out
    else begin
      let token = Char.code input.[pos] in
      if token < 0x80 then begin
        let run = token + 1 in
        if pos + 1 + run > n then invalid_arg "Simple_compress: truncated run";
        Buffer.add_substring out input (pos + 1) run;
        go (pos + 1 + run)
      end
      else begin
        if pos + 3 > n then invalid_arg "Simple_compress: truncated match";
        let len = (token land 0x3f) + min_match in
        let offset =
          Char.code input.[pos + 1] lor (Char.code input.[pos + 2] lsl 8)
        in
        let produced = Buffer.length out in
        if offset = 0 || offset > produced then
          invalid_arg "Simple_compress: bad offset";
        (* byte-by-byte so overlapping matches replicate correctly *)
        for i = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (produced - offset + i))
        done;
        go (pos + 3)
      end
    end
  in
  go 0
