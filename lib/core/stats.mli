(** Operation and maintenance counters (all atomic; cheap enough to keep on
    in production), including backpressure observability: how often and
    for how long the graduated write controller delayed or stalled
    writers, and compaction counts broken down by source level. *)

type t

type snapshot = {
  puts : int;
  gets : int;
  deletes : int;
  rmws : int;
  rmw_conflicts : int;
  snapshots_taken : int;
  scans : int;
  memtable_rotations : int;
  flushes : int;
  compactions : int;
  compactions_per_level : int array;
      (** indexed by source level: [.(0)] counts L0→L1 merges *)
  subcompactions : int;
      (** subrange merges executed; equals [compactions] when every job
          ran sequentially *)
  parallel_compactions : int;  (** jobs that fanned out to > 1 subranges *)
  max_compaction_fanout : int;  (** high-watermark subranges of one job *)
  compaction_ns : int;  (** cumulative compaction job wall-clock, ns *)
  bytes_flushed : int;
  bytes_compacted : int;
  write_stalls : int;  (** hard stops (L0 at [l0_stall_limit] or memtable full) *)
  stall_ns : int;  (** cumulative time writers spent hard-stalled, ns *)
  write_slowdowns : int;  (** puts delayed by the graduated controller *)
  slowdown_delay_ns : int;  (** cumulative injected delay, nanoseconds *)
  maintenance_wakeups : int;  (** scheduler signals sent by foreground paths *)
  scrubbed_blocks : int;  (** blocks re-verified by the scrub job *)
  corruptions_detected : int;  (** checksum/structure failures classified *)
  quarantined_tables : int;  (** sstables pulled from the read view *)
  io_retries : int;  (** transient-fault retries by {!Retry_policy} *)
  auto_repairs : int;  (** online repairs back to [`Ok] health *)
  wal_group_commits : int;  (** durable WAL write+fsync rounds *)
  wal_group_records : int;  (** records those rounds acknowledged *)
  wal_fsyncs_saved : int;
      (** fsyncs amortized away by batching, vs. per-write durability *)
  commit_waits : int;  (** durable appends with a measured commit wait *)
  commit_wait_ns : int;  (** cumulative commit-wait time, nanoseconds *)
  commit_wait_hist : int array;
      (** log2 buckets: [.(i)] counts waits in [2^i, 2^(i+1)) ns *)
  get_ns : int;  (** cumulative point-read latency, nanoseconds *)
  get_hist : int array;
      (** log2 buckets of point-read latency, same scheme as
          [commit_wait_hist]; the timed-read count is the bucket sum *)
}

val create : unit -> t
val incr_puts : t -> unit
val incr_gets : t -> unit
val incr_deletes : t -> unit
val incr_rmws : t -> unit
val incr_rmw_conflicts : t -> unit
val incr_snapshots : t -> unit
val incr_scans : t -> unit
val incr_rotations : t -> unit
val incr_flushes : t -> unit

val incr_compactions : t -> ?src_level:int -> unit -> unit
(** Count a compaction, attributed to [src_level] when given. *)

val record_compaction_run : t -> fanout:int -> duration_ns:int -> unit
(** Account one finished compaction job: [fanout] subrange merges
    (1 = sequential) taking [duration_ns] of wall-clock. Safe from any
    worker domain. *)

val add_bytes_flushed : t -> int -> unit
val add_bytes_compacted : t -> int -> unit
val incr_write_stalls : t -> unit

val add_stall_ns : t -> int -> unit
(** Add one writer's hard-stall wait duration (nanoseconds). *)

val add_slowdown : t -> delay_ns:int -> unit
(** Record one graduated-backpressure delay of [delay_ns]. *)

val incr_maintenance_wakeups : t -> unit

val add_scrubbed_blocks : t -> int -> unit
(** Count blocks re-verified by one scrub slice. *)

val incr_corruptions_detected : t -> unit
val incr_quarantined_tables : t -> unit
val incr_io_retries : t -> unit
val incr_auto_repairs : t -> unit

val record_group_commit : t -> records:int -> unit
(** Account one durable WAL write+fsync round covering [records] records
    ([records - 1] fsyncs saved vs. per-write durability). *)

val record_commit_wait : t -> ns:int -> unit
(** Account one durable append's commit-wait latency. *)

val record_get_latency : t -> ns:int -> unit
(** Account one point read's end-to-end latency. *)

val wal_observer : t -> Clsm_wal.Wal_writer.observer
(** The {!Clsm_wal.Wal_writer.observer} feeding this registry; pass it to
    every WAL writer the store opens. *)

val read : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Aggregate two stores' snapshots (the per-shard roll-up of a
    range-sharded store): counters and durations sum, the
    [max_compaction_fanout] high-watermark takes the maximum, and the
    per-level compaction arrays add element-wise. *)

val merge_all : snapshot list -> snapshot
(** [merge]d over the list; all-zero for [[]]. *)

val commit_wait_percentile_us : snapshot -> pct:float -> int
(** Percentile of the commit-wait histogram in microseconds (the matched
    log2 bucket's upper bound, so within 2x of the true value); 0 when no
    waits were recorded. [to_json] exports p50/p99 via this. *)

val get_percentile_us : snapshot -> pct:float -> int
(** Same resolution over the point-read latency histogram. *)

val pp : Format.formatter -> snapshot -> unit
(** Renders every counter of the catalogue that {!to_json} also walks —
    the two representations cannot drift apart. *)

val to_json : snapshot -> string
(** One-line JSON object, for benchmark output and scraping. *)
