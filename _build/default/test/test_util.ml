open Clsm_util

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ---------- Varint ---------- *)

let varint_roundtrip_buffer () =
  let values = [ 0; 1; 127; 128; 300; 16384; max_int; max_int - 1 ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.write buf) values;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  List.iter
    (fun expected ->
      let v, next = Varint.read s ~pos:!pos in
      Alcotest.(check int) "value" expected v;
      pos := next)
    values;
  Alcotest.(check int) "consumed all" (String.length s) !pos

let varint_encoded_length () =
  Alcotest.(check int) "0" 1 (Varint.encoded_length 0);
  Alcotest.(check int) "127" 1 (Varint.encoded_length 127);
  Alcotest.(check int) "128" 2 (Varint.encoded_length 128);
  Alcotest.(check int) "max_int" 9 (Varint.encoded_length max_int)

let varint_put_matches_write () =
  let v = 987654321 in
  let buf = Buffer.create 16 in
  Varint.write buf v;
  let b = Bytes.make 16 '\xff' in
  let next = Varint.put b ~pos:0 v in
  Alcotest.(check string)
    "same bytes" (Buffer.contents buf)
    (Bytes.sub_string b 0 next)

let varint_truncated () =
  let buf = Buffer.create 16 in
  Varint.write buf 300;
  let s = String.sub (Buffer.contents buf) 0 1 in
  Alcotest.check_raises "truncated" (Varint.Corrupt "varint truncated")
    (fun () -> ignore (Varint.read s ~pos:0))

let varint_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint: negative value")
    (fun () -> ignore (Varint.encoded_length (-1)))

let varint_too_long () =
  let s = String.make 12 '\x80' in
  match Varint.read s ~pos:0 with
  | exception Varint.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(map abs int)
    (fun v ->
      let buf = Buffer.create 16 in
      Varint.write buf v;
      let s = Buffer.contents buf in
      let v', next = Varint.read s ~pos:0 in
      v = v' && next = String.length s && next = Varint.encoded_length v)

(* ---------- Binary ---------- *)

let fixed32_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 8 in
      Binary.write_fixed32 buf v;
      Alcotest.(check int) "fixed32" v
        (Binary.get_fixed32 (Buffer.contents buf) ~pos:0))
    [ 0; 1; 0xffffffff; 0xdeadbeef; 0x7fffffff ]

let fixed64_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 8 in
      Binary.write_fixed64 buf v;
      Alcotest.(check int) "fixed64" v
        (Binary.get_fixed64 (Buffer.contents buf) ~pos:0))
    [ 0; 1; max_int; 0x123456789abcdef ]

let prop_fixed64_put_get =
  QCheck.Test.make ~name:"fixed64 put/get" ~count:500
    QCheck.(map abs int)
    (fun v ->
      let b = Bytes.create 8 in
      Binary.put_fixed64 b ~pos:0 v;
      Binary.get_fixed64 (Bytes.to_string b) ~pos:0 = v)

(* ---------- Crc32c ---------- *)

let crc_known_vector () =
  (* Standard CRC-32C check value for "123456789". *)
  Alcotest.(check int) "check value" 0xE3069283 (Crc32c.string "123456789")

let crc_empty () = Alcotest.(check int) "empty" 0 (Crc32c.string "")

let crc_incremental () =
  let s = "hello, log-structured world" in
  let mid = 10 in
  let part = Crc32c.sub s ~pos:0 ~len:mid in
  let full = Crc32c.sub ~init:part s ~pos:mid ~len:(String.length s - mid) in
  Alcotest.(check int) "incremental = one-shot" (Crc32c.string s) full

let crc_mask_roundtrip () =
  List.iter
    (fun s ->
      let crc = Crc32c.string s in
      Alcotest.(check int) "unmask(mask)" crc (Crc32c.unmask (Crc32c.mask crc));
      Alcotest.(check bool) "mask changes value" true (Crc32c.mask crc <> crc))
    [ "a"; "ab"; "payload"; String.make 1000 'x' ]

let crc_detects_flip () =
  let s = Bytes.of_string "some record payload" in
  let before = Crc32c.string (Bytes.to_string s) in
  Bytes.set s 3 'X';
  Alcotest.(check bool) "differs" true
    (before <> Crc32c.string (Bytes.to_string s))

(* ---------- Hashing ---------- *)

let hash_deterministic () =
  Alcotest.(check int) "same input same hash" (Hashing.hash "abc")
    (Hashing.hash "abc");
  Alcotest.(check bool) "different seeds differ" true
    (Hashing.hash ~seed:1 "abc" <> Hashing.hash ~seed:2 "abc")

let hash_in_range () =
  List.iter
    (fun s ->
      let h = Hashing.hash s in
      Alcotest.(check bool) "32-bit" true (h >= 0 && h <= 0xffffffff))
    [ ""; "a"; "ab"; "abc"; "abcd"; "abcde"; String.make 100 'z' ]

let mix64_spreads () =
  (* Consecutive inputs should land in different buckets most of the time. *)
  let buckets = Array.make 16 0 in
  for i = 0 to 999 do
    let b = Hashing.mix64 i land 15 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "bucket roughly uniform" true (c > 20))
    buckets

let prop_hash64_nonnegative =
  QCheck.Test.make ~name:"hash64 nonnegative" ~count:300
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hashing.hash64 s >= 0)

let suites =
  [
    ( "util.varint",
      [
        Alcotest.test_case "roundtrip via buffer" `Quick varint_roundtrip_buffer;
        Alcotest.test_case "encoded_length" `Quick varint_encoded_length;
        Alcotest.test_case "put matches write" `Quick varint_put_matches_write;
        Alcotest.test_case "truncated input" `Quick varint_truncated;
        Alcotest.test_case "negative rejected" `Quick varint_negative;
        Alcotest.test_case "over-long rejected" `Quick varint_too_long;
      ] );
    qsuite "util.varint.props" [ prop_varint_roundtrip ];
    ( "util.binary",
      [
        Alcotest.test_case "fixed32 roundtrip" `Quick fixed32_roundtrip;
        Alcotest.test_case "fixed64 roundtrip" `Quick fixed64_roundtrip;
      ] );
    qsuite "util.binary.props" [ prop_fixed64_put_get ];
    ( "util.crc32c",
      [
        Alcotest.test_case "known vector" `Quick crc_known_vector;
        Alcotest.test_case "empty" `Quick crc_empty;
        Alcotest.test_case "incremental" `Quick crc_incremental;
        Alcotest.test_case "mask roundtrip" `Quick crc_mask_roundtrip;
        Alcotest.test_case "detects bit flip" `Quick crc_detects_flip;
      ] );
    ( "util.hashing",
      [
        Alcotest.test_case "deterministic" `Quick hash_deterministic;
        Alcotest.test_case "32-bit range" `Quick hash_in_range;
        Alcotest.test_case "mix64 spreads" `Quick mix64_spreads;
      ] );
    qsuite "util.hashing.props" [ prop_hash64_nonnegative ];
  ]
