(* Sharded CLOCK cache with a lock-free hit path.

   Each shard publishes its key -> entry map as an immutable snapshot in
   an [Atomic.t]; readers only do [Atomic.get] + [Map.find_opt] +
   [Refcounted.try_incr] + an atomic reference-bit store. All structural
   mutation (insert, evict, pin, clear) happens under the shard mutex and
   republishes the snapshot.

   Eviction order is CLOCK (second chance): resident unpinned entries sit
   in a compact array swept by a hand; a set reference bit buys one more
   lap. Eviction drops only the cache's owner reference — outstanding
   handles keep the payload alive, so a reader racing an eviction never
   observes a freed block.

   The retry in [find]/[acquire] terminates: [try_incr] can only fail
   after an evictor's final [decr], which (program order on the evicting
   domain, seq-cst atomics) happens after the entry was removed from the
   published snapshot — so the re-read snapshot no longer contains that
   entry. *)

module SMap = Map.Make (String)
module Refcounted = Clsm_primitives.Refcounted

type 'a entry = {
  ekey : string;
  cell : 'a Refcounted.t;
  w : int;
  refbit : bool Atomic.t;
  pinned : bool;
  mutable slot : int; (* index in the CLOCK ring; -1 = not resident *)
}

type 'a handle = { h_entry : 'a entry; mutable h_alive : bool }

type 'a flight = {
  mutable done_ : bool;
  mutable failed : exn option; (* meaningful once [done_] *)
}

type 'a shard = {
  mutex : Mutex.t;
  cond : Condition.t;
  map : 'a entry SMap.t Atomic.t;
  mutable ring : 'a entry option array;
  mutable count : int; (* live prefix of [ring] *)
  mutable hand : int;
  mutable used : int;
  capacity : int;
  reservations : (string, int) Hashtbl.t;
  inflight : (string, 'a flight) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  pin_count : int Atomic.t;
  sf_waits : int Atomic.t;
}

type 'a t = {
  shards : 'a shard array;
  weight_of : 'a -> int;
  release : 'a -> unit;
  ra_blocks : int;
  readaheads : int Atomic.t;
  readahead_blocks_total : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  weight : int;
  pins : int;
  singleflight_waits : int;
  readaheads : int;
  readahead_blocks : int;
}

let create ?(shards = 16) ?(release = fun _ -> ()) ?(readahead = 0)
    ~capacity ~weight () =
  if shards < 1 || capacity < 0 || readahead < 0 then
    invalid_arg "Cache.create";
  let per_shard = max 1 (capacity / shards) in
  let make_shard _ =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      map = Atomic.make SMap.empty;
      ring = Array.make 16 None;
      count = 0;
      hand = 0;
      used = 0;
      capacity = per_shard;
      reservations = Hashtbl.create 8;
      inflight = Hashtbl.create 8;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      pin_count = Atomic.make 0;
      sf_waits = Atomic.make 0;
    }
  in
  {
    shards = Array.init shards make_shard;
    weight_of = weight;
    release;
    ra_blocks = readahead;
    readaheads = Atomic.make 0;
    readahead_blocks_total = Atomic.make 0;
  }

let shard_of t key =
  t.shards.(Clsm_util.Hashing.hash ~seed:0x5bd1e995 key
            mod Array.length t.shards)

let with_locked sh f = Mutex.protect sh.mutex f

(* --- ring management (under the shard mutex) --- *)

let ring_entry sh i =
  match sh.ring.(i) with Some e -> e | None -> assert false
[@@requires_lock cache_shard]

let ring_add sh e =
  if sh.count = Array.length sh.ring then begin
    let bigger = Array.make (2 * sh.count) None in
    Array.blit sh.ring 0 bigger 0 sh.count;
    sh.ring <- bigger
  end;
  sh.ring.(sh.count) <- Some e;
  e.slot <- sh.count;
  sh.count <- sh.count + 1
[@@requires_lock cache_shard]

(* Swap-remove keeps the ring compact; CLOCK order is approximate anyway
   and the reference bits carry the recency information. *)
let ring_remove sh e =
  let i = e.slot in
  assert (i >= 0 && i < sh.count);
  let last = sh.count - 1 in
  if i <> last then begin
    let moved = ring_entry sh last in
    sh.ring.(i) <- Some moved;
    moved.slot <- i
  end;
  sh.ring.(last) <- None;
  sh.count <- last;
  e.slot <- -1;
  if sh.hand >= sh.count then sh.hand <- 0
[@@requires_lock cache_shard]

(* Remove [e] from the published snapshot, then drop the cache's owner
   reference. Publication must precede the [decr]: readers whose
   [try_incr] loses to the final decrement re-read the snapshot and must
   no longer find [e] (see the retry-termination note above). *)
let drop_entry sh e =
  Atomic.set sh.map (SMap.remove e.ekey (Atomic.get sh.map));
  if e.slot >= 0 then ring_remove sh e;
  sh.used <- sh.used - e.w;
  Refcounted.decr e.cell
[@@requires_lock cache_shard]

let evict_until_fits sh =
  let budget = ref (2 * sh.count + 1) in
  while sh.used > sh.capacity && sh.count > 0 && !budget > 0 do
    decr budget;
    let e = ring_entry sh sh.hand in
    if Atomic.get e.refbit then begin
      Atomic.set e.refbit false;
      sh.hand <- (sh.hand + 1) mod sh.count
    end
    else begin
      drop_entry sh e;
      Atomic.incr sh.evictions
    end
  done
[@@requires_lock cache_shard]

(* --- lock-free hit path --- *)

let rec acquire t key =
  let sh = shard_of t key in
  match SMap.find_opt key (Atomic.get sh.map) with
  | None ->
      Atomic.incr sh.misses;
      None
  | Some e ->
      if Refcounted.try_incr e.cell then begin
        Atomic.set e.refbit true;
        Atomic.incr sh.hits;
        Some { h_entry = e; h_alive = true }
      end
      else acquire t key

let handle_value h = Refcounted.value h.h_entry.cell

let release h =
  if h.h_alive then begin
    h.h_alive <- false;
    Refcounted.decr h.h_entry.cell
  end

let find t key =
  match acquire t key with
  | None -> None
  | Some h ->
      let v = handle_value h in
      release h;
      Some v

let mem t key =
  let sh = shard_of t key in
  SMap.mem key (Atomic.get sh.map)

(* --- writes (shard mutex) --- *)

(* Install a fresh entry. [extra_ref] takes the caller's handle
   reference *before* eviction runs, so the brand-new entry surviving or
   not, the caller's payload stays valid. *)
let install_locked t sh key v ~extra_ref =
  (match SMap.find_opt key (Atomic.get sh.map) with
  | Some old when not old.pinned -> drop_entry sh old
  | _ -> ());
  match SMap.find_opt key (Atomic.get sh.map) with
  | Some pinned_entry ->
      (* A pin owns this key; hand out a reference to it instead. *)
      if extra_ref then begin
        let ok = Refcounted.try_incr pinned_entry.cell in
        assert ok;
        Some { h_entry = pinned_entry; h_alive = true }
      end
      else None
  | None ->
      let w = t.weight_of v in
      let cell = Refcounted.create ~release:t.release v in
      let e =
        { ekey = key; cell; w; refbit = Atomic.make false; pinned = false;
          slot = -1 }
      in
      let h =
        if extra_ref then begin
          let ok = Refcounted.try_incr cell in
          assert ok;
          Some { h_entry = e; h_alive = true }
        end
        else None
      in
      if w <= sh.capacity then begin
        Atomic.set sh.map (SMap.add key e (Atomic.get sh.map));
        ring_add sh e;
        sh.used <- sh.used + w;
        evict_until_fits sh
      end
      else
        (* Oversized entries are never resident: drop the owner ref, so
           the payload's lifetime is the caller's handle (if any). *)
        Refcounted.decr cell;
      h
[@@requires_lock cache_shard]

let insert t key v =
  let sh = shard_of t key in
  with_locked sh (fun () -> ignore (install_locked t sh key v ~extra_ref:false))

let remove t key =
  let sh = shard_of t key in
  with_locked sh (fun () ->
      match SMap.find_opt key (Atomic.get sh.map) with
      | Some e when not e.pinned -> drop_entry sh e
      | _ -> ())

let clear t =
  Array.iter
    (fun sh ->
      with_locked sh (fun () ->
          SMap.iter
            (fun _ e -> if not e.pinned then drop_entry sh e)
            (Atomic.get sh.map)))
    t.shards

(* Eager invalidation for a retiring key namespace (a closing table's
   blocks). Without it, dead blocks linger with their reference bits set
   and CLOCK's second chance makes them evict live data first — unlike
   strict LRU, the hand can't tell "recently used, then orphaned" from
   "hot". O(entries) per call; namespace retirement is rare. *)
let remove_matching t ~prefix =
  let plen = String.length prefix in
  let matches k = String.length k >= plen && String.sub k 0 plen = prefix in
  Array.iter
    (fun sh ->
      with_locked sh (fun () ->
          SMap.iter
            (fun k e -> if (not e.pinned) && matches k then drop_entry sh e)
            (Atomic.get sh.map)))
    t.shards

(* --- singleflight miss path --- *)

let rec acquire_or_add t key f =
  match acquire t key with
  | Some h -> h
  | None -> (
      let sh = shard_of t key in
      Mutex.lock sh.mutex;
      (* Re-check under the lock: someone may have installed while we
         were acquiring the mutex. *)
      let resident =
        match SMap.find_opt key (Atomic.get sh.map) with
        | Some e when Refcounted.try_incr e.cell ->
            Atomic.set e.refbit true;
            Some { h_entry = e; h_alive = true }
        | _ -> None
      in
      match resident with
      | Some h ->
          Mutex.unlock sh.mutex;
          h
      | None -> (
          match Hashtbl.find_opt sh.inflight key with
          | Some fl ->
              (* Loser: wait for the winner, then share its entry. *)
              Atomic.incr sh.sf_waits;
              while not fl.done_ do
                Condition.wait sh.cond sh.mutex
              done;
              Mutex.unlock sh.mutex;
              (match fl.failed with
              | Some e -> raise e
              | None ->
                  (* The winner installed (or its entry was already
                     evicted); retry from the top — never install our
                     own copy over the winner's. *)
                  acquire_or_add t key f)
          | None ->
              let fl = { done_ = false; failed = None } in
              Hashtbl.add sh.inflight key fl;
              Mutex.unlock sh.mutex;
              (* Whatever happens inside — including [install_locked]
                 raising out of the user's weight callback — the flight
                 must be marked done and waiters woken, or losers park on
                 [cond] forever. *)
              let finish outcome =
                Mutex.protect sh.mutex (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        fl.done_ <- true;
                        Hashtbl.remove sh.inflight key;
                        Condition.broadcast sh.cond)
                      (fun () ->
                        match outcome with
                        | Ok v -> (
                            match install_locked t sh key v ~extra_ref:true with
                            | r -> r
                            | exception e ->
                                fl.failed <- Some e;
                                raise e)
                        | Error e ->
                            fl.failed <- Some e;
                            None))
              in
              (match f () with
              | v -> (
                  match finish (Ok v) with
                  | Some h -> h
                  | None -> assert false)
              | exception e ->
                  ignore (finish (Error e));
                  raise e)))

let find_or_add t key f =
  let h = acquire_or_add t key f in
  let v = handle_value h in
  release h;
  v

(* --- pinning and reservations --- *)

let pin t key v =
  let sh = shard_of t key in
  with_locked sh (fun () ->
      (match SMap.find_opt key (Atomic.get sh.map) with
      | Some old when not old.pinned -> drop_entry sh old
      | Some _ -> invalid_arg "Cache.pin: key already pinned"
      | None -> ());
      let w = t.weight_of v in
      let cell = Refcounted.create ~release:t.release v in
      let e =
        { ekey = key; cell; w; refbit = Atomic.make true; pinned = true;
          slot = -1 }
      in
      let ok = Refcounted.try_incr cell in
      assert ok;
      Atomic.set sh.map (SMap.add key e (Atomic.get sh.map));
      sh.used <- sh.used + w;
      Atomic.incr sh.pin_count;
      evict_until_fits sh;
      { h_entry = e; h_alive = true })

let unpin t h =
  let e = h.h_entry in
  if e.pinned then begin
    let sh = shard_of t e.ekey in
    with_locked sh (fun () ->
        match SMap.find_opt e.ekey (Atomic.get sh.map) with
        | Some resident when resident == e ->
            Atomic.set sh.map (SMap.remove e.ekey (Atomic.get sh.map));
            sh.used <- sh.used - e.w;
            Atomic.decr sh.pin_count;
            Refcounted.decr e.cell
        | _ -> ())
  end;
  release h

let reserve t key w =
  if w < 0 then invalid_arg "Cache.reserve";
  let sh = shard_of t key in
  with_locked sh (fun () ->
      (match Hashtbl.find_opt sh.reservations key with
      | Some old -> sh.used <- sh.used - old
      | None -> ());
      Hashtbl.replace sh.reservations key w;
      sh.used <- sh.used + w;
      evict_until_fits sh)

let unreserve t key =
  let sh = shard_of t key in
  with_locked sh (fun () ->
      match Hashtbl.find_opt sh.reservations key with
      | Some old ->
          Hashtbl.remove sh.reservations key;
          sh.used <- sh.used - old
      | None -> ())

(* --- readahead policy and counters --- *)

let readahead_blocks (t : _ t) = t.ra_blocks

let note_readahead (t : _ t) ~blocks =
  Atomic.incr t.readaheads;
  ignore (Atomic.fetch_and_add t.readahead_blocks_total blocks)

(* --- observability --- *)

let stats (t : _ t) =
  Array.fold_left
    (fun acc (sh : _ shard) ->
      {
        acc with
        hits = acc.hits + Atomic.get sh.hits;
        misses = acc.misses + Atomic.get sh.misses;
        evictions = acc.evictions + Atomic.get sh.evictions;
        weight = acc.weight + sh.used;
        pins = acc.pins + Atomic.get sh.pin_count;
        singleflight_waits = acc.singleflight_waits + Atomic.get sh.sf_waits;
      })
    {
      hits = 0;
      misses = 0;
      evictions = 0;
      weight = 0;
      pins = 0;
      singleflight_waits = 0;
      readaheads = Atomic.get t.readaheads;
      readahead_blocks = Atomic.get t.readahead_blocks_total;
    }
    t.shards

let cardinal t =
  Array.fold_left
    (fun acc sh -> acc + SMap.cardinal (Atomic.get sh.map))
    0 t.shards

let with_shard_locked t key f =
  let sh = shard_of t key in
  with_locked sh f
