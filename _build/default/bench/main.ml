(* Benchmark harness entry point.

   Default: run every paper figure through the simulator.
   --figure <id>   one figure (fig1 fig5a fig5b fig6a fig6b fig7a fig7b
                   fig8 fig9 fig10 fig11)
   --calibrate     Bechamel microbenchmarks of the real implementation
   --real [quick]  real-execution cross-checks (multi-domain driver)
   --ablations     design-choice ablation sweeps *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] | [ "--figures" ] ->
      print_endline
        "cLSM benchmark harness: regenerating all paper figures (simulated \
         multicore; see DESIGN.md)";
      Figures.run_all ()
  | [ "--figure"; name ] -> Figures.run name
  | [ "--calibrate" ] -> Calibrate.run ()
  | [ "--real" ] -> Real_check.run ~quick:false
  | [ "--real"; "quick" ] -> Real_check.run ~quick:true
  | [ "--ablations" ] -> Ablations.run ()
  | [ "--sensitivity" ] -> Sensitivity.run ()
  | [ "--all" ] ->
      Calibrate.run ();
      Figures.run_all ();
      Ablations.run ();
      Sensitivity.run ();
      Real_check.run ~quick:true
  | _ ->
      prerr_endline
        "usage: main.exe [--figure <id> | --calibrate | --real [quick] | \
         --ablations | --sensitivity | --all]";
      exit 1
