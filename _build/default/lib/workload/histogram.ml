(* Buckets: latency in nanoseconds mapped to floor(log2(ns) * 8) — eight
   sub-buckets per octave, ~9 % resolution, range 1 ns .. ~8 s. *)

let per_octave = 8.0
let bucket_count = 264 (* 33 octaves * 8 *)

type t = {
  buckets : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create () =
  { buckets = Array.make bucket_count 0; total = 0; sum = 0.0; max_seen = 0.0 }

let bucket_of_ns ns =
  if ns <= 1 then 0
  else
    min (bucket_count - 1)
      (int_of_float (Float.log2 (float_of_int ns) *. per_octave))

(* Upper edge of the bucket, in seconds. *)
let seconds_of_bucket b =
  Float.pow 2.0 (float_of_int (b + 1) /. per_octave) *. 1e-9

let record t seconds =
  let ns = int_of_float (seconds *. 1e9) in
  let b = bucket_of_ns ns in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. seconds;
  if seconds > t.max_seen then t.max_seen <- seconds

let count t = t.total

let merge hs =
  let out = create () in
  List.iter
    (fun h ->
      Array.iteri (fun i c -> out.buckets.(i) <- out.buckets.(i) + c) h.buckets;
      out.total <- out.total + h.total;
      out.sum <- out.sum +. h.sum;
      if h.max_seen > out.max_seen then out.max_seen <- h.max_seen)
    hs;
  out

let percentile t p =
  if t.total = 0 then 0.0
  else begin
    let threshold =
      max 1 (int_of_float (Float.ceil (float_of_int t.total *. p /. 100.0)))
    in
    let acc = ref 0 and result = ref 0.0 and found = ref false in
    Array.iteri
      (fun i c ->
        if not !found then begin
          acc := !acc + c;
          if !acc >= threshold then begin
            result := seconds_of_bucket i;
            found := true
          end
        end)
      t.buckets;
    !result
  end

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_value t = t.max_seen
