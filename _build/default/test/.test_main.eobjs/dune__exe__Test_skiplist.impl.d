test/test_skiplist.ml: Alcotest Atomic Clsm_skiplist Domain Gen List Map Option Printf QCheck QCheck_alcotest String
