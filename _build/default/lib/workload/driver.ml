type result = {
  ops : int;
  keys_touched : int;
  elapsed : float;
  throughput : float;
  keys_per_sec : float;
  p50 : float;
  p90 : float;
  p99 : float;
  mean_latency : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%d ops in %.2fs: %.0f ops/s (%.0f keys/s), p50=%.1fus p90=%.1fus p99=%.1fus"
    r.ops r.elapsed r.throughput r.keys_per_sec (r.p50 *. 1e6) (r.p90 *. 1e6)
    (r.p99 *. 1e6)

let preload ?(seed = 42) (store : Store_ops.t) (spec : Workload_spec.t) ~count =
  let rng = Rng.create seed in
  let space = Key_dist.space spec.Workload_spec.keys in
  for i = 0 to count - 1 do
    let key =
      Key_dist.key_of_index ~key_len:spec.Workload_spec.key_len (i mod space)
    in
    store.Store_ops.put ~key ~value:(Workload_spec.value_for spec rng)
  done;
  store.Store_ops.compact ()

let run ?(seed = 7) ~threads ~ops_per_thread (store : Store_ops.t)
    (spec : Workload_spec.t) =
  if threads < 1 || ops_per_thread < 1 then invalid_arg "Driver.run";
  let base_rng = Rng.create seed in
  let worker_seeds = List.init threads (fun _ -> Rng.next base_rng) in
  let keys_touched = Atomic.make 0 in
  let worker wseed () =
    let rng = Rng.create wseed in
    let hist = Histogram.create () in
    let rmw_pad = ref 0 in
    for _ = 1 to ops_per_thread do
      let op = Workload_spec.next_op spec rng in
      let t0 = Unix.gettimeofday () in
      (match op with
      | Workload_spec.Read ->
          ignore (store.Store_ops.get (Workload_spec.next_key spec rng));
          Atomic.incr keys_touched
      | Workload_spec.Write ->
          store.Store_ops.put
            ~key:(Workload_spec.next_key spec rng)
            ~value:(Workload_spec.value_for spec rng);
          Atomic.incr keys_touched
      | Workload_spec.Scan ->
          let len = Workload_spec.scan_len spec rng in
          let result =
            store.Store_ops.scan ~start:(Workload_spec.next_key spec rng)
              ~limit:len
          in
          ignore (Atomic.fetch_and_add keys_touched (List.length result))
      | Workload_spec.Rmw ->
          (* put-if-absent flavor: vary the key with a per-worker pad so
             conflicts stay plausible but inserts keep succeeding *)
          incr rmw_pad;
          ignore
            (store.Store_ops.put_if_absent
               ~key:(Workload_spec.next_key spec rng)
               ~value:(Workload_spec.value_for spec rng));
          Atomic.incr keys_touched);
      Histogram.record hist (Unix.gettimeofday () -. t0)
    done;
    hist
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.map (fun s -> Domain.spawn (worker s)) worker_seeds in
  let hists = List.map Domain.join domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let hist = Histogram.merge hists in
  let ops = threads * ops_per_thread in
  {
    ops;
    keys_touched = Atomic.get keys_touched;
    elapsed;
    throughput = float_of_int ops /. elapsed;
    keys_per_sec = float_of_int (Atomic.get keys_touched) /. elapsed;
    p50 = Histogram.percentile hist 50.0;
    p90 = Histogram.percentile hist 90.0;
    p99 = Histogram.percentile hist 99.0;
    mean_latency = Histogram.mean hist;
  }
