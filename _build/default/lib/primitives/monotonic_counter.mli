(** Non-blocking monotone counter — the paper's [timeCounter], and (via
    {!advance_to}) the CAS-max update of [snapTime] in Algorithm 2. *)

type t

val create : int -> t
(** [create v0] starts the counter at [v0]. *)

val get : t -> int

val inc_and_get : t -> int
(** Atomically increment and return the new value. *)

val advance_to : t -> int -> int
(** [advance_to t v] atomically assigns [max v (get t)] (CAS-max loop) and
    returns the resulting value. The counter never moves backward. *)
