lib/sim_lsm/costs.ml:
