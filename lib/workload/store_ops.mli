(** Uniform store interface for benchmarks and examples: the paper's
    key-value API (§2.1) as a record of closures, so cLSM and the baseline
    stores are interchangeable in the harness. *)

type t = {
  name : string;
  put : key:string -> value:string -> unit;
  get : string -> string option;
  delete : key:string -> unit;
  scan : start:string -> limit:int -> (string * string) list;
      (** snapshot range query of [limit] keys from [start] *)
  put_if_absent : key:string -> value:string -> bool;
      (** atomic RMW (put-if-absent flavor, Figure 9) *)
  compact : unit -> unit;
  close : unit -> unit;
  stats_json : unit -> string option;
      (** store counters (including backpressure observability) as a
          one-line JSON object; [None] when the store keeps none *)
}

val of_clsm : Clsm_core.Db.t -> t
val of_single_writer : Clsm_baselines.Single_writer_store.t -> t

val of_striped : Clsm_baselines.Striped_rmw.t -> t
(** Lock-striped writes/RMW over the single-writer store. *)

val open_clsm : Clsm_core.Options.t -> t
val open_single_writer : Clsm_core.Options.t -> t
val open_striped : Clsm_core.Options.t -> t
