lib/workload/rng.ml: Clsm_util
