lib/util/binary.mli: Buffer
