(** Write-ahead-log writer.

    In [Async] mode (the common configuration, paper §2.3/§4) [append] only
    pushes the record onto a non-blocking queue — "a write only queues the
    request for logging" — so writes proceed at memory speed and a handful
    of recent writes may be lost on a crash. Queued records are drained to
    the file opportunistically by whichever appender wins a try-lock (group
    commit), or synchronously by {!flush}.

    In [Sync] mode every [append] writes and fsyncs before returning.

    {b Failure model (fsync-gate).} All IO goes through the store's
    {!Clsm_env.Env.t}. The first append or fsync failure {e poisons} the
    writer permanently: the failing operation raises, and every later
    [append]/[flush]/[close] re-raises the original exception instead of
    silently retrying — once an fsync has failed, the durability of
    earlier acknowledged bytes is unknown and no further write may be
    acknowledged on this log. *)

type t
type mode = Sync | Async

val create : ?mode:mode -> ?env:Clsm_env.Env.t -> string -> t
(** Open (create/truncate) the log file at the given path.
    Default mode: [Async]; default env: {!Clsm_env.Env.unix}. *)

val append : t -> string -> unit
(** Log one record. Thread-safe; non-blocking in [Async] mode except for an
    opportunistic drain attempt. Raises {!Clsm_env.Env.Error} (or the
    original poisoning exception) on IO failure — in [Sync] mode the
    record is then {e not} acknowledged. *)

val flush : t -> unit
(** Drain the queue, write everything out and [fsync]. Raises on failure
    and poisons the writer. *)

val close : t -> unit
(** {!flush} then close the file. The descriptor is always released, but a
    flush/fsync failure still propagates. *)

val poisoned : t -> bool
(** True once an IO failure has permanently disabled the writer. *)

val path : t -> string
val queued : t -> int
(** Records still in the in-memory queue (test/stats). *)

val written_bytes : t -> int
(** Bytes fully appended to the file so far. The prefix
    [0, written_bytes t) consists of whole records with no append in
    flight, so a concurrent reader that stops there (scrub's WAL-tail
    check passes it as [max_bytes] to {!Wal_reader.read_records}) cannot
    observe a half-written record. Monotonic; reading it races only
    benignly (a stale value under-reports). *)

val abandon : t -> unit
(** Close the file without draining the queue or syncing — test hook that
    leaves the file exactly as a crash would. Never raises. *)
