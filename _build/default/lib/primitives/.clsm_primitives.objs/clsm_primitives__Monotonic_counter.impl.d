lib/primitives/monotonic_counter.ml: Atomic
