open Clsm_sstable

let tmp_dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "clsm_test_sstable" in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let tmp_path name = Filename.concat tmp_dir name

(* ---------- Bloom ---------- *)

let bloom_no_false_negatives () =
  let keys = List.init 500 (fun i -> Printf.sprintf "key-%d" i) in
  let f = Bloom.create keys in
  List.iter
    (fun k -> Alcotest.(check bool) ("member " ^ k) true (Bloom.mem f k))
    keys

let bloom_false_positive_rate () =
  let keys = List.init 2000 (fun i -> Printf.sprintf "present-%d" i) in
  let f = Bloom.create ~bits_per_key:10 keys in
  let fps = ref 0 in
  let probes = 10_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem f (Printf.sprintf "absent-%d" i) then incr fps
  done;
  let rate = float_of_int !fps /. float_of_int probes in
  Alcotest.(check bool)
    (Printf.sprintf "fp rate %.4f < 0.03" rate)
    true (rate < 0.03)

let bloom_encode_decode () =
  let keys = [ "a"; "b"; "c"; "longer-key-here" ] in
  let f = Bloom.create keys in
  let f' = Bloom.decode (Bloom.encode f) in
  List.iter
    (fun k -> Alcotest.(check bool) "decoded member" true (Bloom.mem f' k))
    keys;
  Alcotest.(check int) "size" (String.length (Bloom.encode f))
    (Bloom.size_bytes f)

let bloom_empty () =
  let f = Bloom.create [] in
  (* No guarantees either way, but must not crash and must roundtrip. *)
  ignore (Bloom.mem f "anything");
  ignore (Bloom.decode (Bloom.encode f))

(* ---------- Block ---------- *)

let sorted_pairs n =
  List.init n (fun i -> (Printf.sprintf "key%06d" i, Printf.sprintf "val%d" i))

let build_block ?restart_interval pairs =
  let b = Block_builder.create ?restart_interval () in
  List.iter (fun (k, v) -> Block_builder.add b ~key:k ~value:v) pairs;
  Block.parse Comparator.bytewise (Block_builder.finish b)

let block_roundtrip () =
  let pairs = sorted_pairs 100 in
  let block = build_block pairs in
  Alcotest.(check (list (pair string string)))
    "all entries in order" pairs
    (List.rev (Block.Iter.fold (fun k v acc -> (k, v) :: acc) block []))

let block_seek () =
  let pairs = [ ("b", "1"); ("d", "2"); ("f", "3") ] in
  let block = build_block pairs in
  let it = Block.Iter.make block in
  let check_seek target expected =
    Block.Iter.seek it target;
    let got =
      if Block.Iter.valid it then Some (Block.Iter.key it) else None
    in
    Alcotest.(check (option string)) ("seek " ^ target) expected got
  in
  check_seek "a" (Some "b");
  check_seek "b" (Some "b");
  check_seek "c" (Some "d");
  check_seek "f" (Some "f");
  check_seek "g" None

let block_restart_compression () =
  (* Keys sharing long prefixes compress: serialized block should be much
     smaller than raw key bytes. *)
  let prefix = String.make 64 'p' in
  let pairs = List.init 64 (fun i -> (Printf.sprintf "%s%06d" prefix i, "v")) in
  let b = Block_builder.create ~restart_interval:16 () in
  List.iter (fun (k, v) -> Block_builder.add b ~key:k ~value:v) pairs;
  let serialized = Block_builder.finish b in
  let raw_bytes = List.fold_left (fun a (k, _) -> a + String.length k) 0 pairs in
  Alcotest.(check bool) "compressed" true
    (String.length serialized < raw_bytes / 2);
  (* And still decodes correctly. *)
  let block = Block.parse Comparator.bytewise serialized in
  Alcotest.(check (list (pair string string)))
    "decodes" pairs
    (List.rev (Block.Iter.fold (fun k v acc -> (k, v) :: acc) block []))

let block_single_entry_and_corrupt () =
  let block = build_block [ ("only", "v") ] in
  let it = Block.Iter.make block in
  Block.Iter.seek_to_first it;
  Alcotest.(check string) "only key" "only" (Block.Iter.key it);
  Block.Iter.next it;
  Alcotest.(check bool) "exhausted" false (Block.Iter.valid it);
  (match Block.parse Comparator.bytewise "" with
  | exception Block.Corrupt _ -> ()
  | _ -> Alcotest.fail "empty block should be corrupt");
  match Block.parse Comparator.bytewise "\xff\xff\xff\xff" with
  | exception Block.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad restart count should be corrupt"

let prop_block_matches_list =
  QCheck.Test.make ~name:"block roundtrip (random sorted keys)" ~count:100
    QCheck.(list (pair (string_of_size Gen.(1 -- 12)) (string_of_size Gen.(0 -- 20))))
    (fun pairs ->
      let module M = Map.Make (String) in
      let pairs =
        M.bindings (List.fold_left (fun m (k, v) -> M.add k v m) M.empty pairs)
      in
      QCheck.assume (pairs <> []);
      let block = build_block ~restart_interval:4 pairs in
      let got = List.rev (Block.Iter.fold (fun k v a -> (k, v) :: a) block []) in
      got = pairs)

let prop_block_seek_matches_model =
  QCheck.Test.make ~name:"block seek = first >= target" ~count:200
    QCheck.(
      pair
        (list (string_of_size Gen.(1 -- 6)))
        (string_of_size Gen.(1 -- 6)))
    (fun (keys, target) ->
      let keys = List.sort_uniq String.compare keys in
      QCheck.assume (keys <> []);
      let block = build_block ~restart_interval:3 (List.map (fun k -> (k, k)) keys) in
      let it = Block.Iter.make block in
      Block.Iter.seek it target;
      let got = if Block.Iter.valid it then Some (Block.Iter.key it) else None in
      let expected = List.find_opt (fun k -> k >= target) keys in
      got = expected)

let block_seek_le () =
  let pairs = [ ("b", "1"); ("d", "2"); ("f", "3") ] in
  let block = build_block pairs in
  let it = Block.Iter.make block in
  let check_seek_le target expected =
    Block.Iter.seek_le it target;
    let got = if Block.Iter.valid it then Some (Block.Iter.key it) else None in
    Alcotest.(check (option string)) ("seek_le " ^ target) expected got
  in
  check_seek_le "a" None;
  check_seek_le "b" (Some "b");
  check_seek_le "c" (Some "b");
  check_seek_le "e" (Some "d");
  check_seek_le "f" (Some "f");
  check_seek_le "z" (Some "f");
  Block.Iter.seek_last it;
  Alcotest.(check string) "seek_last" "f" (Block.Iter.key it)

let prop_block_seek_le_matches_model =
  QCheck.Test.make ~name:"block seek_le = last <= target" ~count:300
    QCheck.(
      pair
        (list (string_of_size Gen.(1 -- 6)))
        (string_of_size Gen.(1 -- 6)))
    (fun (keys, target) ->
      let keys = List.sort_uniq String.compare keys in
      QCheck.assume (keys <> []);
      let block =
        build_block ~restart_interval:3 (List.map (fun k -> (k, k)) keys)
      in
      let it = Block.Iter.make block in
      Block.Iter.seek_le it target;
      let got = if Block.Iter.valid it then Some (Block.Iter.key it) else None in
      let expected =
        List.fold_left
          (fun acc k -> if k <= target then Some k else acc)
          None keys
      in
      got = expected)

(* ---------- Cache ---------- *)

let cache_lru_eviction () =
  let c = Cache.create ~shards:1 ~capacity:3 ~weight:(fun _ -> 1) () in
  Cache.insert c "a" 1;
  Cache.insert c "b" 2;
  Cache.insert c "c" 3;
  ignore (Cache.find c "a");
  (* a is now MRU *)
  Cache.insert c "d" 4;
  (* evicts b (LRU) *)
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  Alcotest.(check (option int)) "d kept" (Some 4) (Cache.find c "d");
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions

let cache_weighted () =
  let c = Cache.create ~shards:1 ~capacity:10 ~weight:String.length () in
  Cache.insert c "k1" "aaaa";
  Cache.insert c "k2" "bbbb";
  Cache.insert c "k3" "cccccc";
  (* 6 bytes; 4+4+6 > 10 evicts until fit *)
  Alcotest.(check bool) "total weight within capacity" true
    ((Cache.stats c).Cache.weight <= 10);
  Cache.insert c "huge" (String.make 100 'x');
  Alcotest.(check (option string)) "oversized not cached" None
    (Cache.find c "huge")

let cache_find_or_add () =
  let c = Cache.create ~capacity:100 ~weight:(fun _ -> 1) () in
  let calls = ref 0 in
  let load () = incr calls; 42 in
  Alcotest.(check int) "computed" 42 (Cache.find_or_add c "k" load);
  Alcotest.(check int) "cached" 42 (Cache.find_or_add c "k" load);
  Alcotest.(check int) "loaded once" 1 !calls;
  Cache.remove c "k";
  Alcotest.(check int) "reloaded" 42 (Cache.find_or_add c "k" load);
  Alcotest.(check int) "loaded twice" 2 !calls

let cache_concurrent () =
  let c = Cache.create ~shards:4 ~capacity:64 ~weight:(fun _ -> 1) () in
  let worker seed () =
    for i = 0 to 5_000 do
      let k = Printf.sprintf "key%d" ((i * seed) mod 128) in
      match Cache.find c k with
      | Some v -> assert (v = k)
      | None -> Cache.insert c k k
    done;
    true
  in
  let results =
    List.map Domain.spawn [ worker 3; worker 5; worker 7 ]
    |> List.map Domain.join
  in
  List.iter (fun ok -> Alcotest.(check bool) "worker ok" true ok) results;
  Alcotest.(check bool) "capacity respected" true
    ((Cache.stats c).Cache.weight <= 64)

(* ---------- Mmap_file ---------- *)

let mmap_roundtrip () =
  let path = tmp_path "mmap_test" in
  let oc = open_out_bin path in
  output_string oc "hello mmap world";
  close_out oc;
  let f = Mmap_file.open_ro path in
  Alcotest.(check int) "length" 16 (Mmap_file.length f);
  Alcotest.(check string) "middle read" "mmap" (Mmap_file.read f ~pos:6 ~len:4);
  Alcotest.(check string) "empty read" "" (Mmap_file.read f ~pos:0 ~len:0);
  (match Mmap_file.read f ~pos:10 ~len:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds should raise");
  Mmap_file.close f;
  Mmap_file.close f (* idempotent *)

(* ---------- Table ---------- *)

let build_table ?(block_size = 256) ?filter_key_of name pairs =
  let path = tmp_path name in
  let b =
    Table_builder.create ~block_size ?filter_key_of ~cmp:Comparator.bytewise
      ~path ()
  in
  List.iter (fun (k, v) -> Table_builder.add b ~key:k ~value:v) pairs;
  let props = Table_builder.finish b in
  (path, props)

let table_roundtrip () =
  let pairs = sorted_pairs 1000 in
  let path, props = build_table "t_roundtrip" pairs in
  Alcotest.(check int) "props entries" 1000 props.Table_format.num_entries;
  Alcotest.(check string) "smallest" "key000000" props.Table_format.smallest;
  Alcotest.(check string) "largest" "key000999" props.Table_format.largest;
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  Alcotest.(check int) "reader sees props" 1000
    (Table.properties t).Table_format.num_entries;
  Alcotest.(check (list (pair string string))) "contents" pairs (Table.to_list t);
  Table.close t

let table_seek_and_bloom () =
  let pairs = sorted_pairs 500 in
  let path, _ = build_table "t_seek" pairs in
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  Alcotest.(check (option (pair string string)))
    "seek exact"
    (Some ("key000123", "val123"))
    (Table.find_first_ge t "key000123");
  Alcotest.(check (option (pair string string)))
    "seek between"
    (Some ("key000124", "val124"))
    (Table.find_first_ge t "key000123x");
  Alcotest.(check (option (pair string string)))
    "seek past end" None
    (Table.find_first_ge t "zzz");
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool) "bloom hit" true (Table.may_contain t k))
    pairs;
  let false_positives = ref 0 in
  for i = 0 to 999 do
    if Table.may_contain t (Printf.sprintf "nokey-%d" i) then
      incr false_positives
  done;
  Alcotest.(check bool) "bloom filters most absentees" true
    (!false_positives < 50);
  Table.close t

let table_with_cache () =
  let pairs = sorted_pairs 2000 in
  let path, _ = build_table "t_cache" pairs in
  let cache = Cache.create ~capacity:(1 lsl 20) ~weight:Block.size_bytes () in
  let t = Table.open_file ~cache ~cmp:Comparator.bytewise path in
  (* Two passes: the second should be served from cache. *)
  ignore (Table.to_list t);
  let s1 = Cache.stats cache in
  ignore (Table.to_list t);
  let s2 = Cache.stats cache in
  Alcotest.(check bool) "second pass hits cache" true
    (s2.Cache.hits > s1.Cache.hits);
  Alcotest.(check int) "no extra misses" s1.Cache.misses s2.Cache.misses;
  Table.close t

let table_corruption_detected () =
  let pairs = sorted_pairs 100 in
  let path, _ = build_table "t_corrupt" pairs in
  (* Flip a byte inside the first data block. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  (match Table.to_list t with
  | exception Table.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt");
  Table.close t

let table_truncated_rejected () =
  let path = tmp_path "t_trunc" in
  let oc = open_out_bin path in
  output_string oc "short";
  close_out oc;
  match Table.open_file ~cmp:Comparator.bytewise path with
  | exception Table.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let table_filter_key_extractor () =
  (* Simulates internal keys "user|ts": the bloom filter indexes user keys. *)
  let filter_key_of k = List.hd (String.split_on_char '|' k) in
  let pairs =
    [ ("alice|001", "v1"); ("alice|002", "v2"); ("bob|001", "v3") ]
  in
  let path, _ = build_table ~filter_key_of "t_fkey" pairs in
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  Alcotest.(check bool) "user key member" true (Table.may_contain t "alice");
  Alcotest.(check bool) "user key member 2" true (Table.may_contain t "bob");
  Table.close t

let table_single_and_empty_block_boundaries () =
  (* Tiny block size forces one entry per block: exercises the two-level
     iterator's block-skipping logic. *)
  let pairs = sorted_pairs 60 in
  let path, _ = build_table ~block_size:64 "t_tiny_blocks" pairs in
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  Alcotest.(check (list (pair string string))) "contents" pairs (Table.to_list t);
  let it = Table.Iter.make t in
  Table.Iter.seek it "key000049x";
  Alcotest.(check bool) "valid after seek across blocks" true
    (Table.Iter.valid it);
  Alcotest.(check string) "lands on next block" "key000050" (Table.Iter.key it);
  Table.close t

let table_find_last_le () =
  (* Small blocks so the probe exercises the cross-block fallback paths. *)
  let pairs = sorted_pairs 200 in
  let path, _ = build_table ~block_size:128 "t_seek_le" pairs in
  let t = Table.open_file ~cmp:Comparator.bytewise path in
  let check probe expected =
    Alcotest.(check (option string)) ("find_last_le " ^ probe) expected
      (Option.map fst (Table.find_last_le t probe))
  in
  check "key000000" (Some "key000000");
  check "a" None;
  check "key000100" (Some "key000100");
  check "key000100x" (Some "key000100");
  check "zzz" (Some "key000199");
  (* Every key finds itself; every key+suffix finds the key. *)
  List.iter
    (fun (k, _) ->
      Alcotest.(check (option string)) "exact" (Some k)
        (Option.map fst (Table.find_last_le t k));
      Alcotest.(check (option string)) "with suffix" (Some k)
        (Option.map fst (Table.find_last_le t (k ^ "\x01"))))
    pairs;
  Table.close t

let prop_table_find_last_le =
  QCheck.Test.make ~name:"table find_last_le = last <= probe" ~count:30
    QCheck.(
      pair
        (list (string_of_size Gen.(1 -- 8)))
        (string_of_size Gen.(1 -- 8)))
    (fun (keys, probe) ->
      let keys = List.sort_uniq String.compare keys in
      QCheck.assume (keys <> []);
      let path, _ =
        build_table ~block_size:96 "t_prop_le" (List.map (fun k -> (k, k)) keys)
      in
      let t = Table.open_file ~cmp:Comparator.bytewise path in
      let got = Option.map fst (Table.find_last_le t probe) in
      Table.close t;
      let expected =
        List.fold_left (fun acc k -> if k <= probe then Some k else acc) None keys
      in
      got = expected)

let prop_table_roundtrip =
  QCheck.Test.make ~name:"table roundtrip (random sorted keys)" ~count:25
    QCheck.(list (pair (string_of_size Gen.(1 -- 16)) (string_of_size Gen.(0 -- 32))))
    (fun pairs ->
      let module M = Map.Make (String) in
      let pairs =
        M.bindings (List.fold_left (fun m (k, v) -> M.add k v m) M.empty pairs)
      in
      QCheck.assume (pairs <> []);
      let path, _ = build_table ~block_size:128 "t_prop" pairs in
      let t = Table.open_file ~cmp:Comparator.bytewise path in
      let got = Table.to_list t in
      Table.close t;
      got = pairs)

let suites =
  [
    ( "sstable.bloom",
      [
        Alcotest.test_case "no false negatives" `Quick bloom_no_false_negatives;
        Alcotest.test_case "false positive rate" `Quick bloom_false_positive_rate;
        Alcotest.test_case "encode/decode" `Quick bloom_encode_decode;
        Alcotest.test_case "empty filter" `Quick bloom_empty;
      ] );
    ( "sstable.block",
      [
        Alcotest.test_case "roundtrip" `Quick block_roundtrip;
        Alcotest.test_case "seek" `Quick block_seek;
        Alcotest.test_case "prefix compression" `Quick block_restart_compression;
        Alcotest.test_case "single entry / corrupt" `Quick
          block_single_entry_and_corrupt;
        Alcotest.test_case "seek_le / seek_last" `Quick block_seek_le;
      ] );
    ( "sstable.block.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_block_matches_list;
          prop_block_seek_matches_model;
          prop_block_seek_le_matches_model;
        ] );
    ( "sstable.cache",
      [
        Alcotest.test_case "lru eviction" `Quick cache_lru_eviction;
        Alcotest.test_case "weighted entries" `Quick cache_weighted;
        Alcotest.test_case "find_or_add" `Quick cache_find_or_add;
        Alcotest.test_case "concurrent" `Quick cache_concurrent;
      ] );
    ( "sstable.mmap",
      [ Alcotest.test_case "roundtrip" `Quick mmap_roundtrip ] );
    ( "sstable.table",
      [
        Alcotest.test_case "roundtrip" `Quick table_roundtrip;
        Alcotest.test_case "seek and bloom" `Quick table_seek_and_bloom;
        Alcotest.test_case "block cache" `Quick table_with_cache;
        Alcotest.test_case "corruption detected" `Quick table_corruption_detected;
        Alcotest.test_case "truncated rejected" `Quick table_truncated_rejected;
        Alcotest.test_case "filter key extractor" `Quick table_filter_key_extractor;
        Alcotest.test_case "tiny blocks" `Quick
          table_single_and_empty_block_boundaries;
        Alcotest.test_case "find_last_le" `Quick table_find_last_le;
      ] );
    ( "sstable.table.props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_table_roundtrip; prop_table_find_last_le ] );
  ]
