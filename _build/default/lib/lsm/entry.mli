(** Stored values: either user data or the deletion marker ⊥ — "deleting
    [a key] is performed by putting a deletion marker as the key's value"
    (paper §2.1). *)

type t = Value of string | Tombstone

val encode : t -> string
val decode : string -> t
(** Raises [Invalid_argument] on an unknown tag. *)

val is_tombstone : t -> bool

val to_option : t -> string option
(** [Value v ↦ Some v], [Tombstone ↦ None]. *)
