open Clsm_util

type t = { user_key : string; ts : int }

let ts_size = 8
let max_ts = max_int

let encode { user_key; ts } =
  let buf = Buffer.create (String.length user_key + ts_size) in
  Buffer.add_string buf user_key;
  Binary.write_fixed64 buf ts;
  Buffer.contents buf

let check s =
  if String.length s < ts_size then invalid_arg "Internal_key: too short"

let decode s =
  check s;
  let n = String.length s - ts_size in
  { user_key = String.sub s 0 n; ts = Binary.get_fixed64 s ~pos:n }

let make user_key ts = encode { user_key; ts }
let probe user_key = make user_key max_ts

let user_key_of s =
  check s;
  String.sub s 0 (String.length s - ts_size)

let ts_of s =
  check s;
  Binary.get_fixed64 s ~pos:(String.length s - ts_size)

let compare a b =
  let c = String.compare a.user_key b.user_key in
  if c <> 0 then c else Int.compare a.ts b.ts

let compare_encoded a b =
  let la = String.length a - ts_size and lb = String.length b - ts_size in
  if la < 0 || lb < 0 then invalid_arg "Internal_key.compare_encoded";
  let n = min la lb in
  let rec go i =
    if i = n then
      if la <> lb then Int.compare la lb
      else Int.compare (Binary.get_fixed64 a ~pos:la) (Binary.get_fixed64 b ~pos:lb)
    else
      let ca = String.unsafe_get a i and cb = String.unsafe_get b i in
      if Char.equal ca cb then go (i + 1) else Char.compare ca cb
  in
  go 0

let comparator =
  { Clsm_sstable.Comparator.name = "clsm-internal-key"; compare = compare_encoded }
