type t = Clsm | Leveldb | Hyperleveldb | Rocksdb | Blsm | Striped_rmw

let name = function
  | Clsm -> "cLSM"
  | Leveldb -> "LevelDB"
  | Hyperleveldb -> "HyperLevelDB"
  | Rocksdb -> "RocksDB"
  | Blsm -> "bLSM"
  | Striped_rmw -> "LevelDB+striping"

let all = [ Rocksdb; Blsm; Leveldb; Hyperleveldb; Clsm ]

let of_name s =
  match String.lowercase_ascii s with
  | "clsm" -> Some Clsm
  | "leveldb" -> Some Leveldb
  | "hyperleveldb" | "hyper" -> Some Hyperleveldb
  | "rocksdb" -> Some Rocksdb
  | "blsm" -> Some Blsm
  | "striped" | "striped_rmw" -> Some Striped_rmw
  | _ -> None
