(** Virtual-time model of one LSM store instance under a given
    concurrency discipline.

    The model executes, per operation, exactly the serialization structure
    of the system (which lock is held around what, for how long) over the
    shared machine resources, and maintains the LSM state machine: memtable
    fill → rotation (with the discipline's critical sections) → flush
    consuming disk bandwidth → L0 accumulation → background compaction,
    with write stalls and (optionally) RocksDB-style debt throttling. *)

open Clsm_sim
open Clsm_workload

type machine = {
  engine : Engine.t;
  cpu : Resource.t;  (** hardware contexts *)
  bus : Resource.t;  (** serialized memory-system slice *)
  disk : Resource.t;  (** sequential write channel (flush + compaction) *)
}

val machine_of : Costs.t -> Engine.t -> machine

type t

val create :
  machine:machine ->
  costs:Costs.t ->
  system:System.t ->
  threads:int ->
  ?machine_threads:int ->
  ?per_op_overhead:float ->
  workload:Workload_spec.t ->
  memtable_bytes:int ->
  ?compaction_threads:int ->
  ?write_amplification:float ->
  ?throttle:bool ->
  ?stop_at:float ->
  ?prefill:float ->
  ?initial_l0:int ->
  seed:int ->
  unit ->
  t
(** [prefill] starts the memtable at that fraction of its limit (steady
    state for short simulations); [initial_l0] seeds pre-existing level-0
    files (heavy-compaction scenarios, Figure 11); [machine_threads] is the
    total worker count on the machine when several partitioned stores share
    it (drives the hyperthreading/cross-chip factors; defaults to
    [threads]); [per_op_overhead] charges each operation a fixed routing /
    partition-metadata cost (the §2.2 penalty of running many partitions). *)

val do_op : t -> Workload_spec.op -> int Proc.t
(** Execute one operation in virtual time; returns the number of keys it
    touched (scan length for scans, 1 otherwise). *)

val start_background : t -> unit
(** Spawn the compaction worker process(es). *)

val stalls : t -> int
val rotations : t -> int
val l0_files : t -> int
