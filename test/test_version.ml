(* Direct unit tests of the disk-component substrate: Version.get across
   constructed level layouts, compaction picking, and apply. *)

open Clsm_lsm
open Clsm_primitives

let tmp_dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "clsm_test_version" in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let next_number = ref 1000

(* Build a table file of (user_key, ts, value-or-tombstone) triples. *)
let make_file entries =
  incr next_number;
  let number = !next_number in
  let b =
    Clsm_sstable.Table_builder.create ~block_size:512
      ~filter_key_of:Internal_key.user_key_of ~cmp:Internal_key.comparator
      ~path:(Table_file.table_path ~dir:tmp_dir number)
      ()
  in
  List.iter
    (fun (k, ts, v) ->
      let entry = match v with Some s -> Entry.Value s | None -> Entry.Tombstone in
      Clsm_sstable.Table_builder.add b ~key:(Internal_key.make k ts)
        ~value:(Entry.encode entry))
    (List.sort
       (fun (k1, t1, _) (k2, t2, _) -> compare (k1, t1) (k2, t2))
       entries);
  ignore (Clsm_sstable.Table_builder.finish b);
  Refcounted.create ~release:Table_file.release
    (Table_file.open_number ~dir:tmp_dir number)

let entry_testable =
  Alcotest.testable
    (fun ppf -> function
      | Some (ts, Entry.Value v) -> Format.fprintf ppf "Some(%d, %S)" ts v
      | Some (ts, Entry.Tombstone) -> Format.fprintf ppf "Some(%d, ⊥)" ts
      | None -> Format.fprintf ppf "None")
    ( = )

let get_l0_overlap () =
  (* L0 files overlap; the newest version across files must win. *)
  let f_old = make_file [ ("k", 5, Some "old"); ("other", 1, Some "x") ] in
  let f_new = make_file [ ("k", 9, Some "new") ] in
  let v = Version.create ~l0:[ f_new; f_old ] ~levels:(Array.make 2 []) in
  Alcotest.check entry_testable "newest wins"
    (Some (9, Entry.Value "new"))
    (Version.get v ~user_key:"k" ~snap_ts:Internal_key.max_ts);
  Alcotest.check entry_testable "snapshot picks old"
    (Some (5, Entry.Value "old"))
    (Version.get v ~user_key:"k" ~snap_ts:7);
  Alcotest.check entry_testable "below all" None
    (Version.get v ~user_key:"k" ~snap_ts:3);
  Alcotest.check entry_testable "other key" (Some (1, Entry.Value "x"))
    (Version.get v ~user_key:"other" ~snap_ts:Internal_key.max_ts);
  Version.release v;
  List.iter Refcounted.retire [ f_old; f_new ]

let get_level_order () =
  (* L0 shadows L1; L1 shadows L2 for the same key. *)
  let l0 = make_file [ ("k", 30, Some "l0") ] in
  let l1 = make_file [ ("k", 20, Some "l1") ] in
  let l2 = make_file [ ("k", 10, Some "l2") ] in
  let levels = Array.make 3 [] in
  levels.(0) <- [ l1 ];
  levels.(1) <- [ l2 ];
  let v = Version.create ~l0:[ l0 ] ~levels in
  Alcotest.check entry_testable "l0 wins" (Some (30, Entry.Value "l0"))
    (Version.get v ~user_key:"k" ~snap_ts:Internal_key.max_ts);
  Alcotest.check entry_testable "l1 for snap 25" (Some (20, Entry.Value "l1"))
    (Version.get v ~user_key:"k" ~snap_ts:25);
  Alcotest.check entry_testable "l2 for snap 15" (Some (10, Entry.Value "l2"))
    (Version.get v ~user_key:"k" ~snap_ts:15);
  Version.release v;
  List.iter Refcounted.retire [ l0; l1; l2 ]

let get_key_straddles_files () =
  (* Versions of one key split across two adjacent files of a level. *)
  let fa = make_file [ ("j", 1, Some "ja"); ("k", 5, Some "ka") ] in
  let fb = make_file [ ("k", 9, Some "kb"); ("m", 1, Some "ma") ] in
  let levels = Array.make 2 [] in
  levels.(0) <- [ fa; fb ];
  let v = Version.create ~l0:[] ~levels in
  Alcotest.check entry_testable "newest in later file"
    (Some (9, Entry.Value "kb"))
    (Version.get v ~user_key:"k" ~snap_ts:Internal_key.max_ts);
  Alcotest.check entry_testable "older in earlier file"
    (Some (5, Entry.Value "ka"))
    (Version.get v ~user_key:"k" ~snap_ts:7);
  Version.release v;
  List.iter Refcounted.retire [ fa; fb ]

let get_tombstone_shadows () =
  let f = make_file [ ("k", 5, Some "v"); ("k", 8, None) ] in
  let v = Version.create ~l0:[ f ] ~levels:(Array.make 2 []) in
  Alcotest.check entry_testable "tombstone returned"
    (Some (8, Entry.Tombstone))
    (Version.get v ~user_key:"k" ~snap_ts:Internal_key.max_ts);
  Version.release v;
  Refcounted.retire f

let iters_cover_everything () =
  let f1 = make_file [ ("a", 1, Some "1") ] in
  let f2 = make_file [ ("b", 2, Some "2") ] in
  let f3 = make_file [ ("c", 3, Some "3") ] in
  let levels = Array.make 2 [] in
  levels.(0) <- [ f2; f3 ];
  let v = Version.create ~l0:[ f1 ] ~levels in
  let merged =
    Merge_iter.merge ~cmp:Internal_key.compare_encoded (Version.iters v)
  in
  let keys =
    Iter.fold (fun k _ acc -> Internal_key.user_key_of k :: acc) merged []
    |> List.rev
  in
  Alcotest.(check (list string)) "all user keys" [ "a"; "b"; "c" ] keys;
  Version.release v;
  List.iter Refcounted.retire [ f1; f2; f3 ]

let refcount_lifecycle () =
  let f = make_file [ ("k", 1, Some "v") ] in
  let path = Clsm_sstable.Table.path (Refcounted.value f).Table_file.table in
  let v1 = Version.create ~l0:[ f ] ~levels:(Array.make 2 []) in
  let v2 = Version.create ~l0:[ f ] ~levels:(Array.make 2 []) in
  Refcounted.retire f;
  (* Both versions hold the file. *)
  Version.release v1;
  Alcotest.(check bool) "file alive under v2" true (Sys.file_exists path);
  Table_file.mark_obsolete (Refcounted.value f);
  Version.release v2;
  Alcotest.(check bool) "file deleted after last release" false
    (Sys.file_exists path)

(* ---------- Compaction.pick / apply ---------- *)

let small_cfg =
  {
    Lsm_config.default with
    Lsm_config.l0_compaction_trigger = 2;
    level1_max_bytes = 1024;
    level_size_multiplier = 10;
  }

let pick_l0 () =
  let f1 = make_file [ ("a", 1, Some "1") ] in
  let f2 = make_file [ ("b", 2, Some "2") ] in
  let l1f = make_file [ ("a", 0, Some "old"); ("z", 0, Some "zz") ] in
  let levels = Array.make 3 [] in
  levels.(0) <- [ l1f ];
  let v = Version.create ~l0:[ f2; f1 ] ~levels in
  (match Compaction.pick ~cfg:small_cfg v with
  | Some task ->
      Alcotest.(check int) "src level" 0 task.Compaction.src_level;
      Alcotest.(check int) "both l0 files" 2
        (List.length task.Compaction.inputs_lo);
      Alcotest.(check int) "overlapping l1" 1
        (List.length task.Compaction.inputs_hi);
      Alcotest.(check int) "target" 1 task.Compaction.target_level;
      Alcotest.(check bool) "not bottom (l1 occupied is target, deeper empty)"
        true task.Compaction.drop_tombstones
  | None -> Alcotest.fail "expected a task");
  Version.release v;
  List.iter Refcounted.retire [ f1; f2; l1f ]

let pick_none_when_quiet () =
  let f1 = make_file [ ("a", 1, Some "1") ] in
  let v = Version.create ~l0:[ f1 ] ~levels:(Array.make 3 []) in
  Alcotest.(check bool) "no task" true (Compaction.pick ~cfg:small_cfg v = None);
  Version.release v;
  Refcounted.retire f1

let run_and_apply_l0_merge () =
  let f1 = make_file [ ("k", 5, Some "old"); ("a", 1, Some "a1") ] in
  let f2 = make_file [ ("k", 9, Some "new") ] in
  let v = Version.create ~l0:[ f2; f1 ] ~levels:(Array.make 3 []) in
  match Compaction.pick ~cfg:small_cfg v with
  | None -> Alcotest.fail "expected task"
  | Some task ->
      let n = ref 9000 in
      let outputs =
        Compaction.run ~cfg:small_cfg ~dir:tmp_dir
          ~alloc_number:(fun () -> incr n; !n)
          ~snapshots:[] task
      in
      let v' = Compaction.apply v task ~outputs in
      List.iter Refcounted.retire outputs;
      Alcotest.(check int) "l0 emptied" 0 (Version.level_file_count v' 0);
      Alcotest.(check bool) "l1 populated" true
        (Version.level_file_count v' 1 > 0);
      (* Only the newest version of k survives (no snapshots). *)
      Alcotest.check entry_testable "k newest" (Some (9, Entry.Value "new"))
        (Version.get v' ~user_key:"k" ~snap_ts:Internal_key.max_ts);
      Alcotest.check entry_testable "old version GCed" None
        (Version.get v' ~user_key:"k" ~snap_ts:6);
      Alcotest.check entry_testable "a survives" (Some (1, Entry.Value "a1"))
        (Version.get v' ~user_key:"a" ~snap_ts:Internal_key.max_ts);
      Version.release v';
      Version.release v;
      List.iter Refcounted.retire [ f1; f2 ]

let apply_preserves_new_l0 () =
  (* Files flushed between pick and apply must survive the apply. *)
  let f1 = make_file [ ("a", 1, Some "1") ] in
  let f2 = make_file [ ("b", 2, Some "2") ] in
  let v = Version.create ~l0:[ f2; f1 ] ~levels:(Array.make 3 []) in
  match Compaction.pick ~cfg:small_cfg v with
  | None -> Alcotest.fail "expected task"
  | Some task ->
      (* a flush lands while the compaction "runs" *)
      let f3 = make_file [ ("c", 3, Some "3") ] in
      let v2 = Version.with_new_l0 v f3 in
      let n = ref 9500 in
      let outputs =
        Compaction.run ~cfg:small_cfg ~dir:tmp_dir
          ~alloc_number:(fun () -> incr n; !n)
          ~snapshots:[] task
      in
      let v3 = Compaction.apply v2 task ~outputs in
      List.iter Refcounted.retire outputs;
      Alcotest.(check int) "new flush kept in l0" 1 (Version.level_file_count v3 0);
      Alcotest.check entry_testable "c readable" (Some (3, Entry.Value "3"))
        (Version.get v3 ~user_key:"c" ~snap_ts:Internal_key.max_ts);
      Version.release v;
      Version.release v2;
      Version.release v3;
      List.iter Refcounted.retire [ f1; f2; f3 ]

let prop_write_sorted_run_roundtrip =
  (* Random multi-version histories through the GC'ing table writer: with
     no snapshots, reading the outputs back must yield exactly the newest
     non-tombstone version of each key, in order. *)
  QCheck.Test.make ~name:"write_sorted_run = newest visible version" ~count:40
    QCheck.(
      list_of_size
        Gen.(1 -- 60)
        (triple (int_range 0 15) (int_range 1 200) bool))
    (fun raw ->
      let entries =
        List.sort_uniq
          (fun (k1, t1, _) (k2, t2, _) -> compare (k1, t1) (k2, t2))
          raw
      in
      QCheck.assume (entries <> []);
      let iter_input =
        Iter.of_sorted_list ~cmp:Internal_key.compare_encoded
          (List.map
             (fun (k, ts, tomb) ->
               ( Internal_key.make (Printf.sprintf "k%02d" k) ts,
                 Entry.encode
                   (if tomb then Entry.Tombstone
                    else Entry.Value (Printf.sprintf "v%d" ts)) ))
             entries)
      in
      let n = ref 60000 in
      let outputs =
        Compaction.write_sorted_run ~cfg:small_cfg ~dir:tmp_dir
          ~alloc_number:(fun () -> incr n; !n)
          ~snapshots:[] ~drop_tombstones:true iter_input
      in
      (* expected: newest version per user key, tombstones dropped *)
      let module SM = Map.Make (String) in
      let newest =
        List.fold_left
          (fun m (k, ts, tomb) ->
            let key = Printf.sprintf "k%02d" k in
            match SM.find_opt key m with
            | Some (ts', _) when ts' > ts -> m
            | _ -> SM.add key (ts, tomb) m)
          SM.empty entries
      in
      let expected =
        SM.bindings newest
        |> List.filter_map (fun (k, (ts, tomb)) ->
               if tomb then None else Some (k, ts))
      in
      let got =
        List.concat_map
          (fun f ->
            Clsm_sstable.Table.fold
              (fun ik _ acc ->
                (Internal_key.user_key_of ik, Internal_key.ts_of ik) :: acc)
              (Refcounted.value f).Table_file.table [])
          outputs
        |> List.rev
      in
      List.iter
        (fun f ->
          Table_file.mark_obsolete (Refcounted.value f);
          Refcounted.retire f)
        outputs;
      got = expected)

(* ---------- range-partitioned subcompactions ---------- *)

let mk_task files =
  {
    Compaction.src_level = 0;
    inputs_lo = files;
    inputs_hi = [];
    target_level = 1;
    drop_tombstones = true;
  }

let drop_files files =
  List.iter
    (fun f ->
      Table_file.mark_obsolete (Refcounted.value f);
      Refcounted.retire f)
    files

(* Four fully-overlapping input files (keys dealt round-robin) with a
   512-byte block size, so the planner has plenty of anchors. *)
let overlapping_inputs ~per_file =
  List.init 4 (fun fi ->
      make_file
        (List.init per_file (fun e ->
             let idx = (e * 4) + fi in
             (Printf.sprintf "k%05d" idx, idx + 1, Some (String.make 24 'v')))))

let plan_subranges_invariants () =
  let files = overlapping_inputs ~per_file:120 in
  let task = mk_task files in
  let check_plan n =
    let plan = Compaction.plan_subranges ~max_subcompactions:n task in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d: non-empty, at most n" n)
      true
      (List.length plan >= 1 && List.length plan <= max 1 n);
    (match (List.hd plan, List.nth plan (List.length plan - 1)) with
    | (None, _), (_, None) -> ()
    | _ -> Alcotest.failf "n=%d: plan does not cover the whole space" n);
    let rec adjacent = function
      | (_, Some hi) :: ((Some lo, _) :: _ as rest) ->
          Alcotest.(check string)
            (Printf.sprintf "n=%d: adjacent boundaries" n)
            hi lo;
          adjacent rest
      | (_, Some _) :: _ ->
          Alcotest.failf "n=%d: interior subrange missing lo" n
      | [ _ ] | [] -> ()
      | (_, None) :: _ :: _ ->
          Alcotest.failf "n=%d: unbounded hi before the last subrange" n
    in
    adjacent plan;
    let boundaries = List.filter_map snd plan in
    let rec ascending = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d: boundaries ascend" n)
            true
            (String.compare a b < 0);
          ascending rest
      | [ _ ] | [] -> ()
    in
    ascending boundaries
  in
  List.iter check_plan [ 0; 1; 2; 4; 64 ];
  Alcotest.(check (list (pair (option string) (option string))))
    "n=1 is the whole space"
    [ (None, None) ]
    (Compaction.plan_subranges ~max_subcompactions:1 task);
  drop_files files

let entry_stream outputs =
  List.concat_map
    (fun f -> Clsm_sstable.Table.to_list (Refcounted.value f).Table_file.table)
    outputs

let run_parallel_matches_sequential () =
  let files = overlapping_inputs ~per_file:120 in
  let task = mk_task files in
  let n = Atomic.make 70000 in
  let alloc () = Atomic.fetch_and_add n 1 in
  let seq =
    Compaction.run ~cfg:small_cfg ~dir:tmp_dir ~alloc_number:alloc
      ~snapshots:[] task
  in
  let expected = entry_stream seq in
  List.iter
    (fun m ->
      let outputs, fanout =
        Compaction.run_parallel ~cfg:small_cfg ~dir:tmp_dir
          ~alloc_number:alloc ~snapshots:[]
          ~fan_out:Clsm_maintenance.Scheduler.fan_out ~max_subcompactions:m
          task
      in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d: fanout in [1, m]" m)
        true
        (fanout >= 1 && fanout <= m);
      if m >= 2 then
        Alcotest.(check bool)
          (Printf.sprintf "m=%d: actually fanned out" m)
          true (fanout > 1);
      Alcotest.(check bool)
        (Printf.sprintf "m=%d: identical entry stream" m)
        true
        (entry_stream outputs = expected);
      drop_files outputs)
    [ 2; 4 ];
  drop_files seq;
  drop_files files

let prop_parallel_equals_sequential =
  (* Random histories with tombstones and live snapshots, dealt into 3
     overlapping files, merged sequentially and with N ∈ {1,2,4}
     subcompactions on real domains: the resulting level contents must
     be identical entry for entry. *)
  QCheck.Test.make ~name:"parallel subcompaction = sequential merge" ~count:30
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 120)
           (triple (int_range 0 40) (int_range 1 300) bool))
        (list_of_size Gen.(0 -- 3) (int_range 0 300))
        (int_range 0 2))
    (fun (raw, snapshots, log_n) ->
      let entries =
        List.sort_uniq
          (fun (k1, t1, _) (k2, t2, _) -> compare (k1, t1) (k2, t2))
          raw
      in
      QCheck.assume (entries <> []);
      let buckets = [| []; []; [] |] in
      List.iteri
        (fun i e -> buckets.(i mod 3) <- e :: buckets.(i mod 3))
        entries;
      let files =
        Array.to_list buckets
        |> List.filter (fun b -> b <> [])
        |> List.map (fun b ->
               make_file
                 (List.map
                    (fun (k, ts, tomb) ->
                      ( Printf.sprintf "k%03d" k,
                        ts,
                        if tomb then None else Some (Printf.sprintf "v%d" ts) ))
                    b))
      in
      let task = mk_task files in
      let n = Atomic.make 80000 in
      let alloc () = Atomic.fetch_and_add n 1 in
      let seq =
        Compaction.run ~cfg:small_cfg ~dir:tmp_dir ~alloc_number:alloc
          ~snapshots task
      in
      let par, fanout =
        Compaction.run_parallel ~cfg:small_cfg ~dir:tmp_dir
          ~alloc_number:alloc ~snapshots
          ~fan_out:Clsm_maintenance.Scheduler.fan_out
          ~max_subcompactions:(1 lsl log_n) task
      in
      let ok = entry_stream par = entry_stream seq && fanout <= 1 lsl log_n in
      drop_files seq;
      drop_files par;
      drop_files files;
      ok)

let suites =
  [
    ( "lsm.version",
      [
        Alcotest.test_case "L0 overlap resolution" `Quick get_l0_overlap;
        Alcotest.test_case "level search order" `Quick get_level_order;
        Alcotest.test_case "key straddles files" `Quick get_key_straddles_files;
        Alcotest.test_case "tombstone shadows" `Quick get_tombstone_shadows;
        Alcotest.test_case "iters cover everything" `Quick iters_cover_everything;
        Alcotest.test_case "refcount lifecycle" `Quick refcount_lifecycle;
      ] );
    ( "lsm.compaction",
      [
        Alcotest.test_case "pick L0" `Quick pick_l0;
        Alcotest.test_case "pick none when quiet" `Quick pick_none_when_quiet;
        Alcotest.test_case "run + apply L0 merge" `Quick run_and_apply_l0_merge;
        Alcotest.test_case "apply preserves new L0" `Quick apply_preserves_new_l0;
      ] );
    ( "lsm.compaction.subranges",
      [
        Alcotest.test_case "plan_subranges invariants" `Quick
          plan_subranges_invariants;
        Alcotest.test_case "run_parallel = sequential" `Quick
          run_parallel_matches_sequential;
      ] );
    ( "lsm.compaction.props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_write_sorted_run_roundtrip; prop_parallel_equals_sequential ] );
  ]
