lib/util/binary.ml: Buffer Bytes Char String
