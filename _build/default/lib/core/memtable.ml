open Clsm_lsm

module SL = Clsm_skiplist.Skiplist.Make (struct
  type t = string

  let compare = Internal_key.compare_encoded
end)

type t = { map : Entry.t SL.t; bytes : int Atomic.t; count : int Atomic.t }

(* Rough per-entry footprint of skip-list node + atomics, used only to
   decide when the component is "full". *)
let entry_overhead = 64

let create () =
  { map = SL.create (); bytes = Atomic.make 0; count = Atomic.make 0 }

let entry_size user_key entry =
  String.length user_key + Internal_key.ts_size + entry_overhead
  + (match entry with Entry.Value v -> String.length v | Entry.Tombstone -> 0)

let add t ~user_key ~ts entry =
  let ik = Internal_key.make user_key ts in
  if SL.insert t.map ik entry then begin
    ignore (Atomic.fetch_and_add t.bytes (entry_size user_key entry));
    Atomic.incr t.count
  end

let get t ~user_key ~snap_ts =
  match SL.find_le t.map (Internal_key.make user_key snap_ts) with
  | Some (ik, entry) when String.equal (Internal_key.user_key_of ik) user_key ->
      Some (Internal_key.ts_of ik, entry)
  | Some _ | None -> None

let latest_ts t ~user_key =
  match get t ~user_key ~snap_ts:Internal_key.max_ts with
  | Some (ts, _) -> Some ts
  | None -> None

type rmw_location = Entry.t SL.Raw.location

let locate_rmw t ~user_key =
  let loc = SL.Raw.locate t.map (Internal_key.probe user_key) in
  let prev_ts =
    match SL.Raw.prev_binding loc with
    | Some (ik, _) when String.equal (Internal_key.user_key_of ik) user_key ->
        Some (Internal_key.ts_of ik)
    | Some _ | None -> None
  in
  (prev_ts, loc)

let try_install t loc ~user_key ~ts entry =
  let ik = Internal_key.make user_key ts in
  if SL.Raw.try_insert t.map loc ik entry then begin
    ignore (Atomic.fetch_and_add t.bytes (entry_size user_key entry));
    Atomic.incr t.count;
    true
  end
  else false

let approximate_bytes t = Atomic.get t.bytes
let entry_count t = Atomic.get t.count
let is_empty t = SL.is_empty t.map

let iter t =
  let c = SL.Cursor.make t.map in
  {
    Iter.seek_to_first = (fun () -> SL.Cursor.seek_first c);
    seek = (fun target -> SL.Cursor.seek c target);
    valid = (fun () -> SL.Cursor.valid c);
    key =
      (fun () ->
        match SL.Cursor.current c with
        | Some (k, _) -> k
        | None -> invalid_arg "Memtable.iter: invalid");
    value =
      (fun () ->
        match SL.Cursor.current c with
        | Some (_, e) -> Entry.encode e
        | None -> invalid_arg "Memtable.iter: invalid");
    next = (fun () -> SL.Cursor.next c);
  }

let fold_entries f t acc =
  SL.fold
    (fun ik entry acc ->
      f (Internal_key.user_key_of ik) (Internal_key.ts_of ik) entry acc)
    t.map acc
