lib/workload/trace.mli: Driver Format Store_ops Workload_spec
