type t = {
  puts : int Atomic.t;
  gets : int Atomic.t;
  deletes : int Atomic.t;
  rmws : int Atomic.t;
  rmw_conflicts : int Atomic.t;
  snapshots_taken : int Atomic.t;
  scans : int Atomic.t;
  memtable_rotations : int Atomic.t;
  flushes : int Atomic.t;
  compactions : int Atomic.t;
  bytes_flushed : int Atomic.t;
  bytes_compacted : int Atomic.t;
  write_stalls : int Atomic.t;
}

type snapshot = {
  puts : int;
  gets : int;
  deletes : int;
  rmws : int;
  rmw_conflicts : int;
  snapshots_taken : int;
  scans : int;
  memtable_rotations : int;
  flushes : int;
  compactions : int;
  bytes_flushed : int;
  bytes_compacted : int;
  write_stalls : int;
}

let create () : t =
  {
    puts = Atomic.make 0;
    gets = Atomic.make 0;
    deletes = Atomic.make 0;
    rmws = Atomic.make 0;
    rmw_conflicts = Atomic.make 0;
    snapshots_taken = Atomic.make 0;
    scans = Atomic.make 0;
    memtable_rotations = Atomic.make 0;
    flushes = Atomic.make 0;
    compactions = Atomic.make 0;
    bytes_flushed = Atomic.make 0;
    bytes_compacted = Atomic.make 0;
    write_stalls = Atomic.make 0;
  }

let incr_puts (t : t) = Atomic.incr t.puts
let incr_gets (t : t) = Atomic.incr t.gets
let incr_deletes (t : t) = Atomic.incr t.deletes
let incr_rmws (t : t) = Atomic.incr t.rmws
let incr_rmw_conflicts (t : t) = Atomic.incr t.rmw_conflicts
let incr_snapshots (t : t) = Atomic.incr t.snapshots_taken
let incr_scans (t : t) = Atomic.incr t.scans
let incr_rotations (t : t) = Atomic.incr t.memtable_rotations
let incr_flushes (t : t) = Atomic.incr t.flushes
let incr_compactions (t : t) = Atomic.incr t.compactions
let add_bytes_flushed (t : t) n = ignore (Atomic.fetch_and_add t.bytes_flushed n)
let add_bytes_compacted (t : t) n = ignore (Atomic.fetch_and_add t.bytes_compacted n)
let incr_write_stalls (t : t) = Atomic.incr t.write_stalls

let read (t : t) : snapshot =
  {
    puts = Atomic.get t.puts;
    gets = Atomic.get t.gets;
    deletes = Atomic.get t.deletes;
    rmws = Atomic.get t.rmws;
    rmw_conflicts = Atomic.get t.rmw_conflicts;
    snapshots_taken = Atomic.get t.snapshots_taken;
    scans = Atomic.get t.scans;
    memtable_rotations = Atomic.get t.memtable_rotations;
    flushes = Atomic.get t.flushes;
    compactions = Atomic.get t.compactions;
    bytes_flushed = Atomic.get t.bytes_flushed;
    bytes_compacted = Atomic.get t.bytes_compacted;
    write_stalls = Atomic.get t.write_stalls;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>puts=%d gets=%d deletes=%d rmws=%d (conflicts=%d)@,\
     snapshots=%d scans=%d@,\
     rotations=%d flushes=%d compactions=%d@,\
     bytes_flushed=%d bytes_compacted=%d stalls=%d@]"
    s.puts s.gets s.deletes s.rmws s.rmw_conflicts s.snapshots_taken s.scans
    s.memtable_rotations s.flushes s.compactions s.bytes_flushed
    s.bytes_compacted s.write_stalls
