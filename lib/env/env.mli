(** Pluggable storage environment.

    All file IO the store performs — WAL appends, table builds, manifest
    saves, recovery reads, directory listing — goes through a value of
    type {!t}. The default {!unix} implementation does plain [Unix] IO;
    {!Faulty_env} wraps it to inject failures and crash points on a
    deterministic seeded schedule, which is how the crash-recovery
    torture harness exercises every IO site. *)

exception Error of { op : string; path : string; message : string }
(** Unified IO failure: which operation, on which path, and why. Raised in
    place of [Unix.Unix_error] / [Sys_error] by every operation. *)

exception Crashed
(** The environment hit a hard crash point. All further operations raise;
    the on-disk image is frozen as the crash left it. *)

(** Append-only output file. Durability comes only from [w_fsync];
    [w_close] releases the descriptor without syncing and never raises. *)
type writer = {
  w_append : string -> unit;
  w_fsync : unit -> unit;
  w_close : unit -> unit;
}

(** Random-access input file. [rf_read] raises [Invalid_argument] on
    out-of-bounds requests (the table reader maps that to [Corrupt]). *)
type random_file = {
  rf_length : int;
  rf_read : pos:int -> len:int -> string;
  rf_close : unit -> unit;
}

type t = {
  create_writer : string -> writer;  (** create or truncate for appending *)
  open_random : string -> random_file;
  read_file : string -> string;  (** read the whole file *)
  rename : src:string -> dst:string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  file_exists : string -> bool;
  list_dir : string -> string list;
}

val unix : t
(** The production environment: direct [Unix] IO, tables read through
    [mmap]. *)
