open Clsm_util

type t = { offset : int; size : int }

let encode buf t =
  Varint.write buf t.offset;
  Varint.write buf t.size

let decode s ~pos =
  let offset, pos = Varint.read s ~pos in
  let size, pos = Varint.read s ~pos in
  ({ offset; size }, pos)

let max_encoded_length = 2 * Varint.max_length
