(* Annotations must name declared locks. *)

let f () = () [@@requires_lock no_such_lock] (* BAD: LC009 *)
