lib/workload/key_dist.ml: Atomic Clsm_util Float Printf Rng String
