lib/lsm/merge_iter.ml: Array Iter
