lib/baselines/striped_rmw.mli: Clsm_core Single_writer_store
