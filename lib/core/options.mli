(** Store configuration. Defaults mirror the paper's evaluation setup where
    applicable (128 MB memory component §5; Bloom filters and a block cache
    inherited from LevelDB §4). *)

type group_commit = { max_batch : int; max_delay_us : int }
(** Group-commit batching policy: a leader's batch closes at [max_batch]
    records or when the [max_delay_us] accumulation window (0 = commit
    immediately) expires with fewer committers waiting. *)

type wal_sync = [ `Per_write | `Group of group_commit | `Async ]
(** WAL durability policy for the commit points ([put]/[write_batch]/
    [rmw]): [`Per_write] fsyncs each record before acknowledging;
    [`Group g] acknowledges after a leader-batched write+fsync shared
    with concurrent committers (same crash guarantees as [`Per_write],
    amortized fsync cost); [`Async] acknowledges immediately and may lose
    the latest few writes on a crash. *)

type t = {
  dir : string;  (** data directory (created if missing) *)
  memtable_bytes : int;  (** soft size limit of [Cm] (default 128 MB) *)
  wal_sync : wal_sync;
      (** commit durability policy (default [`Async], the paper's
          queue-the-log-request configuration §2.3) *)
  wal_enabled : bool;  (** disable only for benchmarks *)
  cache_bytes : int;  (** block cache budget (default 64 MB) *)
  readahead_blocks : int;
      (** forward-scan readahead depth in data blocks (default 8): once a
          table iterator advances sequentially, up to this many physically
          contiguous blocks are fetched in one pread and decoded into the
          block cache ahead of the scan; 0 disables *)
  linearizable_snapshots : bool;
      (** use the linearizable [getSnap] variant (§3.2.1: omit lines 10–11)
          instead of the default serializable one *)
  unsafe_naive_snapshots : bool;
      (** ABLATION ONLY: take snapshot timestamps straight from
          [timeCounter], skipping the Active-set protocol — reintroduces the
          Figure 3/4 races (scans may observe inconsistent states) *)
  active_set_capacity : int;  (** slots for in-flight timestamps *)
  maintenance_workers : int;
      (** background worker domains for flush/compaction (default 2);
          flushes and deep-level compactions proceed in parallel on
          disjoint level ranges *)
  maintenance_tick : float;
      (** scheduler fallback-tick interval in seconds (default 0.25);
          maintenance is normally event-driven — write paths signal the
          scheduler — and the tick only bounds the staleness of work
          nobody signalled for *)
  max_subcompactions : int;
      (** ceiling on range-partitioned subcompactions per compaction job
          (default 1 — sequential merge). With [n > 1] a picked
          compaction's key space is split into up to [n] byte-balanced
          disjoint subranges, each merged on its own domain, and the
          per-subrange outputs are committed as one manifest edit; set
          to ~the machine's spare cores to cut large L0→L1 merge
          wall-clock and the L0 write stalls it causes *)
  backpressure_max_delay_us : int;
      (** ceiling of the per-put delay injected by the graduated write
          controller as L0 approaches [l0_stall_limit] (default 1000 µs) *)
  lsm : Clsm_lsm.Lsm_config.t;  (** disk component tuning *)
  env : Clsm_env.Env.t;
      (** storage environment all file IO goes through (default
          {!Clsm_env.Env.unix}); replace with a {!Clsm_env.Faulty_env}
          wrapper to inject failures in tests *)
  strict_wal : bool;
      (** fail recovery on a torn or corrupt WAL tail instead of salvaging
          the valid prefix (default false) *)
  clock : Clock.t option;
      (** logical-time domain to draw timestamps from (default [None] —
          the store creates a private one). The shard router injects one
          shared clock into every shard so a single fenced snapshot
          timestamp is consistent across all of them *)
  shards : int;
      (** number of range shards for {!Sharded_db.open_store} (default 1);
          ignored by the single-instance stores *)
  shard_boundaries : string list option;
      (** explicit ascending split keys (length [shards - 1]) for the
          shard router; [None] derives byte-uniform boundaries. On reopen
          the directory's persisted sharding layout wins *)
  external_maintenance : bool;
      (** do not start a private maintenance scheduler (default false);
          set by the shard router, which drives every shard's flush and
          compaction claims from one shared worker pool *)
  retry : Clsm_env.Retry_policy.t;
      (** backoff policy wrapped around maintenance-path IO commit points
          (sorted-run writes, compaction merges, manifest saves) so a
          transient fault does not degrade the store on first touch —
          only exhausted retries do (default {!Clsm_env.Retry_policy.default}) *)
  scrub_interval : float;
      (** seconds between background scrub passes over the disk component
          (default 30.0); [<= 0] disables scheduled scrubbing (explicit
          [scrub_now] still works) *)
  scrub_block_budget : int;
      (** blocks one scrub slice re-verifies before yielding the worker
          (default 256); the cursor persists across slices *)
  auto_repair : bool;
      (** run the [Repair] maintenance job automatically: apply pending
          quarantines, finalize quarantined files, and attempt the online
          [`Degraded]→[`Ok] transition (default true) *)
}

val default : dir:string -> t

val default_group_commit : group_commit
(** [{ max_batch = 64; max_delay_us = 50 }]. The window is adaptive: a
    leader only sleeps when new records arrived during the previous
    round's write+fsync, so an uncontended writer never pays the delay,
    while under contention a sub-fsync-length window lets every
    concurrent committer board one batch instead of oscillating between
    small ones. *)

val wal_mode : t -> Clsm_wal.Wal_writer.mode
(** The {!Clsm_wal.Wal_writer.mode} this policy maps to (used everywhere
    a store layer opens a WAL writer, so all writers of one store agree). *)
