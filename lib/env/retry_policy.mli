(** Deadline-bounded capped exponential backoff for maintenance-path IO.

    Distinct from the spin-loop [Primitives.Backoff]: this policy sleeps
    wall-clock time between attempts at storage operations. Both the
    clock ([now]) and [sleep] are injectable so tests can run it under a
    fake clock deterministically.

    Only {!Env.Error} is retried. {!Env.Crashed} and all other
    exceptions propagate on first occurrence. *)

type t = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  initial_delay : float;  (** seconds before the second attempt *)
  max_delay : float;  (** per-attempt delay cap, seconds *)
  multiplier : float;  (** exponential growth factor *)
  jitter : float;
      (** symmetric jitter fraction in [0,1]: each delay is scaled by a
          deterministic factor in [1-jitter, 1+jitter] derived from the
          attempt number *)
  deadline : float option;
      (** give up (re-raise) once elapsed-plus-next-delay would exceed
          this many seconds since the first attempt *)
  sleep : float -> unit;
  now : unit -> float;
}

val default : t
(** 5 attempts, 5ms initial, x2 growth, 100ms cap, 20% jitter, 2s
    deadline, real [Unix.sleepf]/[Unix.gettimeofday]. *)

val none : t
(** Single attempt — retries disabled. *)

val delay_for : t -> attempt:int -> float
(** The (deterministic) delay that follows failed attempt [attempt]
    (1-based). *)

val run :
  t -> ?on_retry:(attempt:int -> delay:float -> exn -> unit) -> (unit -> 'a) -> 'a
(** [run t f] calls [f] up to [t.max_attempts] times, sleeping between
    attempts, while [f] raises {!Env.Error} and the deadline allows
    another try. [on_retry] fires before each sleep (e.g. to bump a
    stats counter). The last exception is re-raised on exhaustion. *)
