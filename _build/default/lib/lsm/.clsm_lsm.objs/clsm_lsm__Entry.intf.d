lib/lsm/entry.mli:
