lib/core/memtable.ml: Atomic Clsm_lsm Clsm_skiplist Entry Internal_key Iter String
