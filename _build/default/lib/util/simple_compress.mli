(** Small self-contained LZSS compressor for table blocks — standing in
    for the Snappy compression LevelDB applies per block (no external
    codecs in this build). Greedy matching over a 64 KB window with a
    4-byte hash table; format:

    {v
    token := 0x00-0x7f  literal run of (token+1) bytes, bytes follow
           | 0x80|L     match: length L+4 (4..67), 2-byte LE offset follows
    v} *)

val compress : string -> string
(** Never fails; output may be larger than the input for incompressible
    data (callers compare sizes and keep the original in that case). *)

val decompress : string -> string
(** Raises [Invalid_argument] on malformed input. *)
