(** A deliberately non-linearizable in-memory store — the lincheck
    harness's negative control. A checker that cannot fail proves nothing;
    this store plants two classic synchronization bugs for it to find:

    - {b stale reads}: [get] (and [scan]) serve from a cached snapshot of
      the map that is only refreshed every [refresh_every] reads, so a read
      can return a value that a completed write already overwrote — the
      observable effect of skipping the shared lock on the read path;
    - {b lost updates}: [rmw] reads the map, computes the decision, sleeps
      through an artificial race window and then installs with a blind
      store instead of a CAS, so two concurrent RMWs can both act on the
      same pre-image (and clobber concurrent puts wholesale).

    The lincheck self-test asserts that the checker reports histories from
    this store as non-linearizable. Never use it for anything else. *)

type t

val create : ?refresh_every:int -> ?race_window:float -> unit -> t
(** [refresh_every] (default 4): reads between snapshot refreshes.
    [race_window] (default 200 µs): sleep between an RMW's read and its
    blind install. *)

val put : t -> key:string -> value:string -> unit
val delete : t -> key:string -> unit
val get : t -> string -> string option

type rmw_decision = Clsm_core.Db.rmw_decision = Set of string | Remove | Abort

val rmw : t -> key:string -> (string option -> rmw_decision) -> string option
val put_if_absent : t -> key:string -> value:string -> bool

val scan : t -> (string * string) list
(** Bindings of the stale snapshot — a torn, lagging view. *)
