lib/sstable/table_builder.mli: Comparator Table_format
