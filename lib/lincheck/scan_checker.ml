type violation = { scan : History.scan; reason : string }

type write = { winv : int; wres : int; effect : string option }

let effect_of (op : History.op) =
  match op with
  | History.Put v -> Some (Some v)
  | History.Delete -> Some None
  | History.Rmw { decision = History.Set v; _ } -> Some (Some v)
  | History.Rmw { decision = History.Remove; _ } -> Some None
  | History.Rmw { decision = History.Abort; _ } -> None
  | History.Put_if_absent { value; won = true } -> Some (Some value)
  | History.Put_if_absent { won = false; _ } -> None
  | History.Get _ -> None

let writes_by_key (h : History.t) =
  let tbl : (string, write list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : History.event) ->
      match effect_of e.History.op with
      | None -> ()
      | Some effect ->
          let w =
            { winv = e.History.inv; wres = e.History.res; effect }
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt tbl e.History.key)
          in
          Hashtbl.replace tbl e.History.key (w :: prev))
    h.History.events;
  tbl

(* Cuts at which [v] is a possible value of the key: one interval per
   write of [v] — from its invocation until just before the first distinct
   write that started after it finished completes — plus, for [None], the
   initial segment before any write completes. *)
let intervals writes v =
  let supersede_bound w =
    List.fold_left
      (fun acc w' ->
        if w' != w && w'.winv >= w.wres then min acc w'.wres else acc)
      max_int writes
  in
  let from_writes =
    List.filter_map
      (fun w ->
        if w.effect = v then
          let hi =
            let s = supersede_bound w in
            if s = max_int then max_int else s - 1
          in
          if hi >= w.winv then Some (w.winv, hi) else None
        else None)
      writes
  in
  if v = None then
    let first_res =
      List.fold_left (fun acc w -> min acc w.wres) max_int writes
    in
    (min_int, if first_res = max_int then max_int else first_res - 1)
    :: from_writes
  else from_writes

let check_one_scan ~mode by_key (s : History.scan) =
  let lo_bound =
    match mode with `Serializable -> min_int | `Linearizable -> s.History.scan_inv
  in
  let hi_bound = s.History.scan_res in
  let universe =
    let keys = Hashtbl.create 32 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) by_key;
    List.iter (fun (k, _) -> Hashtbl.replace keys k ()) s.History.result;
    Hashtbl.fold (fun k () acc -> k :: acc) keys []
  in
  (* Per key: the clipped cut intervals at which the reported value is
     possible. *)
  let per_key =
    List.map
      (fun k ->
        let reported = List.assoc_opt k s.History.result in
        let writes = Option.value ~default:[] (Hashtbl.find_opt by_key k) in
        let ivals =
          intervals writes reported
          |> List.filter_map (fun (lo, hi) ->
                 let lo = max lo lo_bound and hi = min hi hi_bound in
                 if lo <= hi then Some (lo, hi) else None)
        in
        (k, reported, ivals))
      universe
  in
  match List.find_opt (fun (_, _, ivals) -> ivals = []) per_key with
  | Some (k, reported, _) ->
      Some
        {
          scan = s;
          reason =
            Printf.sprintf
              "key %S: reported value %s is impossible at every cut in \
               [%s, %d]"
              k
              (History.pp_value reported)
              (if lo_bound = min_int then "-inf" else string_of_int lo_bound)
              hi_bound;
        }
  | None ->
      (* A common cut exists iff one of the interval lower bounds (or the
         window floor) lies in every key's interval union. *)
      let candidates =
        lo_bound
        :: List.concat_map (fun (_, _, ivals) -> List.map fst ivals) per_key
      in
      let covers t (_, _, ivals) =
        List.exists (fun (lo, hi) -> lo <= t && t <= hi) ivals
      in
      if
        List.exists (fun t -> List.for_all (covers t) per_key) candidates
      then None
      else
        Some
          {
            scan = s;
            reason =
              "no single cut makes every reported value possible (torn \
               snapshot)";
          }

let check_ts_monotone (scans : History.scan list) =
  (* scans are sorted by invocation; compare each against every earlier
     scan that finished before it started *)
  let rec go acc = function
    | [] -> []
    | (s : History.scan) :: rest ->
        let bad =
          List.exists
            (fun (p : History.scan) ->
              p.History.scan_res < s.History.scan_inv
              &&
              match (p.History.snap_ts, s.History.snap_ts) with
              | Some tp, Some ts -> tp > ts
              | _ -> false)
            acc
        in
        let acc' = s :: acc in
        if bad then
          { scan = s; reason = "snapshot timestamp moved backwards" }
          :: go acc' rest
        else go acc' rest
  in
  go [] scans

let check ?(mode = `Serializable) (h : History.t) =
  let by_key = writes_by_key h in
  let torn =
    List.filter_map (check_one_scan ~mode by_key) h.History.scans
  in
  torn @ check_ts_monotone h.History.scans

let pp_violation v =
  Printf.sprintf "scan [d%d] inv=%d res=%d ts=%s: %s" v.scan.History.scan_domain
    v.scan.History.scan_inv v.scan.History.scan_res
    (match v.scan.History.snap_ts with
    | None -> "-"
    | Some t -> string_of_int t)
    v.reason
