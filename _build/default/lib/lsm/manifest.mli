(** Durable description of the store's disk state, rewritten atomically
    (write-temp + fsync + rename) on every version installation. Together
    with the write-ahead logs this is everything recovery needs. *)

type t = {
  next_file_number : int;
  last_ts : int; (** highest timestamp issued before the save *)
  wal_number : int; (** active write-ahead log to replay on recovery *)
  files : (int * int) list; (** (level, table number); level 0 newest first *)
}

val save : dir:string -> t -> unit
val load : dir:string -> t option
(** [None] when no manifest exists (fresh store). Raises [Failure] on a
    corrupt manifest (CRC mismatch or malformed contents). *)
