lib/sim/sim_shared_lock.mli: Engine Proc
