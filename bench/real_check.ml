(* Real-execution cross-check: drives the actual OCaml stores (cLSM vs the
   single-writer and lock-striping baselines) with the paper's workloads
   through real domains. On this container (1 hardware core) the absolute
   scaling is not meaningful — the simulator regenerates the figures — but
   relative single-thread costs and correctness under concurrency are. *)

open Clsm_workload

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_real_%s_%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm d;
  d

let small_opts dir =
  {
    (Clsm_core.Options.default ~dir) with
    Clsm_core.Options.memtable_bytes = 8 * 1024 * 1024;
    cache_bytes = 32 * 1024 * 1024;
  }

let stores =
  [
    ("clsm", fun dir -> Store_ops.open_clsm (small_opts dir));
    ("single-writer", fun dir -> Store_ops.open_single_writer (small_opts dir));
    ("striped-rmw", fun dir -> Store_ops.open_striped (small_opts dir));
  ]

let scenario ~name ~spec ~preload_count ~ops_per_thread ~threads_list =
  Printf.printf "\n-- real:%s --\n%!" name;
  List.iter
    (fun (sname, open_store) ->
      let store = open_store (tmp_dir (name ^ "_" ^ sname)) in
      if preload_count > 0 then
        Driver.preload store spec ~count:preload_count;
      List.iter
        (fun threads ->
          let r = Driver.run ~threads ~ops_per_thread store spec in
          Format.printf "%-14s threads=%-2d %a@." sname threads
            Driver.pp_result r)
        threads_list;
      (match store.Store_ops.stats_json () with
      | Some json -> Printf.printf "%-14s stats %s\n%!" sname json
      | None -> ());
      store.Store_ops.close ())
    stores

let run ~quick =
  let space = 50_000 in
  let n = if quick then 8_000 else 40_000 in
  let threads_list = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  scenario ~name:"write-only"
    ~spec:(Workload_spec.write_only ~space)
    ~preload_count:0 ~ops_per_thread:n ~threads_list;
  scenario ~name:"read-skewed"
    ~spec:(Workload_spec.read_only_skewed ~space)
    ~preload_count:space ~ops_per_thread:n ~threads_list;
  scenario ~name:"mixed-50-50"
    ~spec:(Workload_spec.mixed_read_write ~space)
    ~preload_count:space ~ops_per_thread:n ~threads_list;
  scenario ~name:"rmw"
    ~spec:(Workload_spec.rmw_only ~space)
    ~preload_count:0 ~ops_per_thread:(n / 2) ~threads_list
