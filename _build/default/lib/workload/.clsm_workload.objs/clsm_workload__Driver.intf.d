lib/workload/driver.mli: Format Store_ops Workload_spec
