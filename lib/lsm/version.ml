open Clsm_primitives

type file = Table_file.t Refcounted.t

type t = { l0 : file list; levels : file list array }

let empty ~num_levels =
  if num_levels < 2 then invalid_arg "Version.empty";
  { l0 = []; levels = Array.make (num_levels - 1) [] }

let addref file =
  (* Files listed in a live version always have a positive count: the
     caller holds a reference while constructing the new version. *)
  let ok = Refcounted.try_incr file in
  assert ok

let create ~l0 ~levels =
  List.iter addref l0;
  Array.iter (List.iter addref) levels;
  { l0; levels = Array.copy levels }

let release t =
  List.iter Refcounted.decr t.l0;
  Array.iter (List.iter Refcounted.decr) t.levels

let with_new_l0 t file = create ~l0:(file :: t.l0) ~levels:t.levels

let num_files t =
  List.length t.l0 + Array.fold_left (fun a l -> a + List.length l) 0 t.levels

let level_file_count t level =
  if level = 0 then List.length t.l0 else List.length t.levels.(level - 1)

let file_bytes files =
  List.fold_left (fun a f -> a + (Refcounted.value f).Table_file.size) 0 files

let level_bytes t level =
  if level = 0 then file_bytes t.l0 else file_bytes t.levels.(level - 1)

let total_bytes t =
  file_bytes t.l0 + Array.fold_left (fun a l -> a + file_bytes l) 0 t.levels

let user_range_contains tf user_key =
  let open Table_file in
  tf.smallest <> ""
  && String.compare (Internal_key.user_key_of tf.smallest) user_key <= 0
  && String.compare user_key (Internal_key.user_key_of tf.largest) <= 0

(* Newest entry for [user_key] with ts <= probe's ts inside one file.
   Raises {!Table_file.Corruption} on a checksum/decode failure. *)
let search_file file ~user_key ~probe =
  let tf = Refcounted.value file in
  if not (user_range_contains tf user_key) then None
  else if not (Clsm_sstable.Table.may_contain tf.Table_file.table user_key)
  then None
  else
    match
      Table_file.with_table tf (fun table ->
          Clsm_sstable.Table.find_last_le table probe)
    with
    | Some (ik, v) when String.equal (Internal_key.user_key_of ik) user_key ->
        Some (Internal_key.ts_of ik, Entry.decode v)
    | Some _ | None -> None

let get ?on_corrupt t ~user_key ~snap_ts =
  (* With [on_corrupt], a file that fails its checksum is reported and
     then treated as a miss: the remaining overlapping data still
     answers, possibly with an older committed version — that is the
     containment contract, surfaced as [`Partial] health by the store.
     Without it, the typed {!Table_file.Corruption} propagates. *)
  let search_file file ~user_key ~probe =
    match on_corrupt with
    | None -> search_file file ~user_key ~probe
    | Some report -> (
        try search_file file ~user_key ~probe
        with Table_file.Corruption { detail; _ } ->
          report (Refcounted.value file) detail;
          None)
  in
  let probe = Internal_key.make user_key snap_ts in
  (* L0 files may overlap, so every file is consulted and the newest
     matching version wins. *)
  let best =
    List.fold_left
      (fun acc file ->
        match (search_file file ~user_key ~probe, acc) with
        | (Some (ts, _) as hit), Some (best_ts, _) when ts > best_ts -> hit
        | Some _, Some _ -> acc
        | hit, None -> hit
        | None, acc -> acc)
      None t.l0
  in
  match best with
  | Some _ as hit -> hit
  | None ->
      (* Deeper levels are disjoint, but versions of one user key can
         straddle two adjacent files; the later file holds the newer
         versions, so candidates are scanned newest-range-first. *)
      let rec search_levels i =
        if i >= Array.length t.levels then None
        else
          let candidates =
            List.filter
              (fun f -> user_range_contains (Refcounted.value f) user_key)
              t.levels.(i)
          in
          let rec try_files = function
            | [] -> search_levels (i + 1)
            | f :: rest -> (
                match search_file f ~user_key ~probe with
                | Some _ as hit -> hit
                | None -> try_files rest)
          in
          try_files (List.rev candidates)
      in
      search_levels 0

(* Table iterator that translates the sstable layer's stringly Corrupt
   into the typed {!Table_file.Corruption}. Scans do NOT transparently
   skip a rotten file — silently dropping a key range is a wrong answer;
   the caller gets the typed signal and the store quarantines. *)
let iter_of_file file =
  let tf = Refcounted.value file in
  let it = Iter.of_table tf.Table_file.table in
  let guard f x =
    try f x
    with Clsm_sstable.Table.Corrupt m -> raise (Table_file.typed_corruption tf m)
  in
  {
    Iter.seek_to_first = guard it.Iter.seek_to_first;
    seek = guard it.Iter.seek;
    valid = guard it.Iter.valid;
    key = guard it.Iter.key;
    value = guard it.Iter.value;
    next = guard it.Iter.next;
  }

let iters t =
  let l0_iters = List.map iter_of_file t.l0 in
  let level_iters =
    Array.to_list t.levels
    |> List.filter_map (fun files ->
           match files with
           | [] -> None
           | _ -> Some (Iter.concat (List.map iter_of_file files)))
  in
  l0_iters @ level_iters

let find_file t number =
  let in_list l =
    List.find_opt (fun f -> (Refcounted.value f).Table_file.number = number) l
  in
  match in_list t.l0 with
  | Some _ as hit -> hit
  | None ->
      Array.fold_left
        (fun acc l -> match acc with Some _ -> acc | None -> in_list l)
        None t.levels

let remove_file t number =
  match find_file t number with
  | None -> None
  | Some _ ->
      let keep f = (Refcounted.value f).Table_file.number <> number in
      Some
        (create ~l0:(List.filter keep t.l0)
           ~levels:(Array.map (List.filter keep) t.levels))

let overlapping files ~smallest ~largest =
  let cmp = Internal_key.compare_encoded in
  List.filter
    (fun f ->
      let tf = Refcounted.value f in
      tf.Table_file.smallest <> ""
      && not
           (cmp tf.Table_file.largest smallest < 0
           || cmp tf.Table_file.smallest largest > 0))
    files

let files_range files =
  let cmp = Internal_key.compare_encoded in
  List.fold_left
    (fun acc f ->
      let tf = Refcounted.value f in
      if tf.Table_file.smallest = "" then acc
      else
        match acc with
        | None -> Some (tf.Table_file.smallest, tf.Table_file.largest)
        | Some (lo, hi) ->
            let lo =
              if cmp tf.Table_file.smallest lo < 0 then tf.Table_file.smallest
              else lo
            in
            let hi =
              if cmp tf.Table_file.largest hi > 0 then tf.Table_file.largest
              else hi
            in
            Some (lo, hi))
    None files

let validate t =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let check_file level f =
    let tf = Refcounted.value f in
    match Clsm_sstable.Table.verify tf.Table_file.table with
    | Ok _ -> ()
    | Error msg ->
        problem "level %d file %06d: %s" level tf.Table_file.number msg
  in
  List.iter (check_file 0) t.l0;
  Array.iteri
    (fun i files ->
      let level = i + 1 in
      List.iter (check_file level) files;
      (* sorted and disjoint *)
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            let ta = Refcounted.value a and tb = Refcounted.value b in
            if
              Internal_key.compare_encoded ta.Table_file.largest
                tb.Table_file.smallest >= 0
            then
              problem "level %d files %06d and %06d overlap" level
                ta.Table_file.number tb.Table_file.number;
            pairs rest
        | [ _ ] | [] -> ()
      in
      pairs files)
    t.levels;
  List.rev !problems
