(** Writer-preference shared-exclusive lock in virtual time — the model of
    cLSM's put/merge synchronization. Shared acquisition is immediate
    unless an exclusive holder or waiter exists (the paper's
    merge-starvation-avoidance rule); exclusive acquisition waits for all
    shared holders to drain. *)

type t

val create : Engine.t -> t
val lock_shared : t -> unit Proc.t
val unlock_shared : t -> unit
val lock_exclusive : t -> unit Proc.t
val unlock_exclusive : t -> unit
val shared_wait_time : t -> float
(** Summed virtual seconds shared lockers (puts) spent blocked — the cost
    the merge's exclusive sections impose on writers. *)
