lib/core/snapshot_registry.mli:
