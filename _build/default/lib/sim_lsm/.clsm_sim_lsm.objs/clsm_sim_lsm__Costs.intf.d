lib/sim_lsm/costs.mli:
