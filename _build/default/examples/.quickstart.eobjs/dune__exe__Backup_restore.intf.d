examples/backup_restore.mli:
