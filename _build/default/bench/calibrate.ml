(* Bechamel microbenchmarks of the real OCaml implementation. These are the
   measured single-thread service times backing the simulator's cost table
   (Costs.default documents the paper-derived values; rerun this to re-fit
   on new hardware). One Test.make per operation of interest. *)

open Bechamel
open Toolkit

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_bench_%s_%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm d;
  d

module SL = Clsm_skiplist.Skiplist.Make (String)

let skiplist_tests () =
  let n = 100_000 in
  let filled = SL.create () in
  for i = 0 to n - 1 do
    ignore (SL.insert filled (Printf.sprintf "key%08d" i) i)
  done;
  let counter = ref n in
  let probe = ref 0 in
  [
    Test.make ~name:"skiplist/insert-100k"
      (Staged.stage (fun () ->
           incr counter;
           ignore (SL.insert filled (Printf.sprintf "key%08d" !counter) 0)));
    Test.make ~name:"skiplist/find-100k"
      (Staged.stage (fun () ->
           probe := (!probe + 7919) mod n;
           ignore (SL.find filled (Printf.sprintf "key%08d" !probe))));
  ]

let memtable_tests () =
  let module M = Clsm_core.Memtable in
  let m = M.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    M.add m ~user_key:(Printf.sprintf "key%08d" i) ~ts:(i + 1)
      (Clsm_lsm.Entry.Value "payload-256-bytes")
  done;
  let ts = ref n in
  let probe = ref 0 in
  [
    Test.make ~name:"memtable/add"
      (Staged.stage (fun () ->
           incr ts;
           M.add m ~user_key:(Printf.sprintf "key%08d" (!ts mod n)) ~ts:!ts
             (Clsm_lsm.Entry.Value "payload-256-bytes")));
    Test.make ~name:"memtable/get"
      (Staged.stage (fun () ->
           probe := (!probe + 104729) mod n;
           ignore
             (M.get m
                ~user_key:(Printf.sprintf "key%08d" !probe)
                ~snap_ts:max_int)));
  ]

let bloom_test () =
  let keys = List.init 10_000 (Printf.sprintf "key%08d") in
  let filter = Clsm_sstable.Bloom.create keys in
  let probe = ref 0 in
  [
    Test.make ~name:"bloom/mem"
      (Staged.stage (fun () ->
           incr probe;
           ignore (Clsm_sstable.Bloom.mem filter (Printf.sprintf "key%08d" !probe))));
  ]

let wal_test () =
  let dir = tmp_dir "wal" in
  Unix.mkdir dir 0o755;
  let w = Clsm_wal.Wal_writer.create (Filename.concat dir "bench.log") in
  let payload = String.make 264 'x' in
  [
    Test.make ~name:"wal/append-async"
      (Staged.stage (fun () -> Clsm_wal.Wal_writer.append w payload));
  ]

let db_tests () =
  let dir = tmp_dir "db" in
  let opts =
    {
      (Clsm_core.Options.default ~dir) with
      Clsm_core.Options.memtable_bytes = 1 lsl 30 (* avoid rotation mid-bench *);
      wal_enabled = true;
    }
  in
  let db = Clsm_core.Db.open_store opts in
  for i = 0 to 99_999 do
    Clsm_core.Db.put db ~key:(Printf.sprintf "key%08d" i) ~value:(String.make 256 'v')
  done;
  let i = ref 0 in
  let value = String.make 256 'w' in
  [
    Test.make ~name:"clsm/put"
      (Staged.stage (fun () ->
           incr i;
           Clsm_core.Db.put db
             ~key:(Printf.sprintf "key%08d" (!i mod 100_000))
             ~value));
    Test.make ~name:"clsm/get"
      (Staged.stage (fun () ->
           i := (!i + 104729) mod 100_000;
           ignore (Clsm_core.Db.get db (Printf.sprintf "key%08d" !i))));
    Test.make ~name:"clsm/rmw-counter"
      (Staged.stage (fun () ->
           ignore
             (Clsm_core.Db.rmw db ~key:"counter" (fun v ->
                  let n = match v with Some s -> int_of_string s | None -> 0 in
                  Clsm_core.Db.Set (string_of_int (n + 1))))));
  ]

let run () =
  let tests =
    skiplist_tests () @ memtable_tests () @ bloom_test () @ wal_test ()
    @ db_tests ()
  in
  let grouped = Test.make_grouped ~name:"calibrate" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Calibration: measured single-thread service times ==\n";
  Printf.printf "%-28s %14s\n" "operation" "ns/op";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "%-28s %14.1f\n" name est) rows;
  Printf.printf
    "(feed these into Clsm_sim_lsm.Costs to re-fit the simulator)\n%!"
