(** LEB128 variable-length encoding of non-negative integers.

    Used throughout the SSTable and WAL formats. Encodes 7 bits per byte,
    least-significant group first, with the high bit of each byte marking
    continuation. OCaml's native [int] (63-bit) is supported in full. *)

exception Corrupt of string
(** Raised when decoding runs off the end of the input or the encoding is
    longer than {!max_length} bytes. *)

val max_length : int
(** Maximum number of bytes a 63-bit value can occupy (9). *)

val encoded_length : int -> int
(** [encoded_length v] is the number of bytes {!write} emits for [v].
    Raises [Invalid_argument] if [v < 0]. *)

val write : Buffer.t -> int -> unit
(** [write buf v] appends the encoding of [v] to [buf].
    Raises [Invalid_argument] if [v < 0]. *)

val put : bytes -> pos:int -> int -> int
(** [put b ~pos v] writes the encoding of [v] at offset [pos] and returns
    the offset one past the last byte written. *)

val read : string -> pos:int -> int * int
(** [read s ~pos] decodes a value starting at [pos] and returns
    [(value, next_pos)]. Raises {!Corrupt} on malformed input. *)
