(** Specification of an operation mix plus key/value shapes — one per
    paper experiment. *)

type op = Read | Write | Scan | Rmw

type t = {
  name : string;
  read_ratio : float;
  write_ratio : float;
  scan_ratio : float;
  rmw_ratio : float;  (** ratios sum to 1 *)
  keys : Key_dist.t;
  key_len : int;
  value_len : int;
  scan_min : int;
  scan_max : int;  (** scan length uniform in [scan_min, scan_max] *)
}

val make :
  ?read:float ->
  ?write:float ->
  ?scan:float ->
  ?rmw:float ->
  ?key_len:int ->
  ?value_len:int ->
  ?scan_min:int ->
  ?scan_max:int ->
  name:string ->
  Key_dist.t ->
  t
(** Ratios are normalized; defaults give a 100 % read workload with the
    paper's synthetic sizes (8-byte keys, 256-byte values, scans of
    10–20 keys). *)

val next_op : t -> Rng.t -> op
val next_key : t -> Rng.t -> string
val value_for : t -> Rng.t -> string
val scan_len : t -> Rng.t -> int

(** The paper's named workloads (§5). *)

val write_only : space:int -> t (* Figure 5 *)
val read_only_skewed : space:int -> t (* Figure 6 *)
val mixed_read_write : space:int -> t (* Figures 7a, 8 *)
val mixed_scan_write : space:int -> t (* Figure 7b *)
val rmw_only : space:int -> t (* Figure 9 *)
val production : read_ratio:float -> space:int -> t (* Figures 1, 10 *)
val disk_heavy : space:int -> t (* Figure 11 *)
