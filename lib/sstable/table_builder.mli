(** Streaming writer of sorted table files (the SSTables forming the disk
    component). Keys must be added in strictly increasing comparator order;
    data blocks are cut at [block_size], an index entry records the last key
    of each block, and one Bloom filter covers the whole table.

    The table is built at [path ^ ".tmp"] and atomically renamed to [path]
    by {!finish} after an fsync, so a table file that exists under its
    final name is always complete; a crash mid-build leaves only the
    [.tmp] file, which recovery deletes. *)

type t

val create :
  ?block_size:int ->
  ?restart_interval:int ->
  ?bits_per_key:int ->
  ?compress:bool ->
  ?filter_key_of:(string -> string) ->
  ?env:Clsm_env.Env.t ->
  cmp:Comparator.t ->
  path:string ->
  unit ->
  t
(** Defaults: [block_size] 4096 bytes, [restart_interval] 16,
    [bits_per_key] 10, [compress] false (data blocks LZSS-compressed when it
    shrinks them), [filter_key_of] identity, [env] {!Clsm_env.Env.unix}.
    [filter_key_of] maps each stored key to the key the Bloom filter
    indexes — the LSM layer passes the user-key extractor so probes by
    user key work across versions. *)

val add : t -> key:string -> value:string -> unit
(** Raises [Invalid_argument] if keys are not strictly increasing, and
    {!Clsm_env.Env.Error} on IO failure. *)

val num_entries : t -> int

val estimated_file_size : t -> int
(** Bytes written so far plus the pending block: used by compactions to cut
    output files at the target size. *)

val finish : t -> Table_format.properties
(** Flush all blocks, write filter/props/index/footer, fsync, close and
    rename into place. Returns the table's properties. The builder must
    not be reused. Raises {!Clsm_env.Env.Error} on IO failure (the [.tmp]
    file is then left for recovery to delete). *)

val abandon : t -> unit
(** Close and delete the partially written [.tmp] file (best effort). *)
