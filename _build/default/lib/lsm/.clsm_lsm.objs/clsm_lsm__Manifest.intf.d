lib/lsm/manifest.mli:
