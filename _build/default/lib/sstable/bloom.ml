open Clsm_util

type t = { bits : Bytes.t; k : int }

let bloom_hash key = Hashing.hash ~seed:0xbc9f1d34 key

let create ?(bits_per_key = 10) keys =
  (* k = bits_per_key * ln 2, clamped to [1, 30] as in LevelDB. *)
  let k = max 1 (min 30 (bits_per_key * 69 / 100)) in
  let n = max 1 (List.length keys) in
  let nbits = max 64 (n * bits_per_key) in
  let nbytes = (nbits + 7) / 8 in
  let nbits = nbytes * 8 in
  let bits = Bytes.make nbytes '\000' in
  let add key =
    let h = ref (bloom_hash key) in
    let delta = ((!h lsr 17) lor (!h lsl 15)) land 0xffffffff in
    for _ = 1 to k do
      let bit = !h mod nbits in
      let byte = Char.code (Bytes.get bits (bit / 8)) in
      Bytes.set bits (bit / 8) (Char.chr (byte lor (1 lsl (bit mod 8))));
      h := (!h + delta) land 0xffffffff
    done
  in
  List.iter add keys;
  { bits; k }

let mem t key =
  let nbits = Bytes.length t.bits * 8 in
  let h = ref (bloom_hash key) in
  let delta = ((!h lsr 17) lor (!h lsl 15)) land 0xffffffff in
  let rec probe remaining =
    if remaining = 0 then true
    else
      let bit = !h mod nbits in
      let byte = Char.code (Bytes.get t.bits (bit / 8)) in
      if byte land (1 lsl (bit mod 8)) = 0 then false
      else begin
        h := (!h + delta) land 0xffffffff;
        probe (remaining - 1)
      end
  in
  probe t.k

let encode t = Bytes.to_string t.bits ^ String.make 1 (Char.chr t.k)

let decode s =
  let n = String.length s in
  if n < 2 then invalid_arg "Bloom.decode: too short";
  { bits = Bytes.of_string (String.sub s 0 (n - 1)); k = Char.code s.[n - 1] }

let size_bytes t = Bytes.length t.bits + 1
