lib/core/options.ml: Clsm_lsm
