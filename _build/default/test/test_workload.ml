open Clsm_workload

(* ---------- Rng ---------- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next (Rng.create 42) <> Rng.next c)

let rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let rng_split_independent () =
  let parent = Rng.create 1 in
  let a = Rng.split parent and b = Rng.split parent in
  Alcotest.(check bool) "split streams differ" true (Rng.next a <> Rng.next b)

(* ---------- Key_dist ---------- *)

let frequencies dist rng ~draws ~space =
  let counts = Array.make space 0 in
  for _ = 1 to draws do
    let i = Key_dist.next_index dist rng in
    counts.(i) <- counts.(i) + 1
  done;
  counts

let uniform_covers_space () =
  let space = 1000 in
  let counts =
    frequencies (Key_dist.uniform space) (Rng.create 3) ~draws:50_000 ~space
  in
  let hit = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
  Alcotest.(check bool) "most keys hit" true (hit > 900);
  let mx = Array.fold_left max 0 counts in
  Alcotest.(check bool) "no huge spike" true (mx < 200)

let skewed_blocks_concentrates () =
  let space = 100_000 in
  let dist = Key_dist.skewed_blocks space in
  let counts = frequencies dist (Rng.create 5) ~draws:100_000 ~space in
  (* Top 10% of keys by frequency should hold ~90% of draws. *)
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let top = Array.sub sorted 0 (space / 10) in
  let top_mass = Array.fold_left ( + ) 0 top in
  Alcotest.(check bool)
    (Printf.sprintf "top 10%% of keys draw %d/100000" top_mass)
    true
    (top_mass > 85_000)

let heavy_tail_statistics () =
  let space = 100_000 in
  let dist = Key_dist.heavy_tail space in
  let counts = frequencies dist (Rng.create 11) ~draws:200_000 ~space in
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let mass n =
    let sub = Array.sub sorted 0 n in
    Array.fold_left ( + ) 0 sub
  in
  (* §5.2: ~10% of keys ≥ 75% of requests; top 2% ≥ 50%. *)
  Alcotest.(check bool) "top 10% >= 70% of mass" true
    (mass (space / 10) >= 140_000);
  Alcotest.(check bool) "top 2% >= 45% of mass" true
    (mass (space / 50) >= 90_000)

let zipf_is_skewed_and_in_range () =
  let space = 10_000 in
  let dist = Key_dist.zipf space in
  let rng = Rng.create 13 in
  let counts = frequencies dist rng ~draws:50_000 ~space in
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check bool) "hottest key is hot" true (sorted.(0) > 500)

let sequential_in_order () =
  let dist = Key_dist.sequential 100 in
  let rng = Rng.create 1 in
  let first = List.init 5 (fun _ -> Key_dist.next_index dist rng) in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2; 3; 4 ] first

let key_encoding_sorted () =
  let k1 = Key_dist.key_of_index 5 and k2 = Key_dist.key_of_index 50 in
  Alcotest.(check bool) "sortable" true (k1 < k2);
  Alcotest.(check int) "default len" 8 (String.length k1);
  Alcotest.(check int) "custom len" 40 (String.length (Key_dist.key_of_index ~key_len:40 7))

(* ---------- Histogram ---------- *)

let histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.record h (float_of_int i *. 1e-6)
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let p50 = Histogram.percentile h 50.0 in
  let p90 = Histogram.percentile h 90.0 in
  let p99 = Histogram.percentile h 99.0 in
  let close name got expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s %.1fus ~ %.1fus" name (got *. 1e6) (expected *. 1e6))
      true
      (got > expected *. 0.8 && got < expected *. 1.25)
  in
  close "p50" p50 500e-6;
  close "p90" p90 900e-6;
  close "p99" p99 990e-6;
  Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
  close "mean" (Histogram.mean h) 500.5e-6;
  Alcotest.(check bool) "max" true (Histogram.max_value h = 1000e-6)

let histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 1e-6;
  Histogram.record b 100e-6;
  let m = Histogram.merge [ a; b ] in
  Alcotest.(check int) "merged count" 2 (Histogram.count m);
  Alcotest.(check bool) "p99 from b" true (Histogram.percentile m 99.0 > 50e-6)

let histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Histogram.percentile h 90.0);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Histogram.mean h)

(* ---------- Workload_spec ---------- *)

let spec_ratios () =
  let spec =
    Workload_spec.make ~name:"t" ~read:1.0 ~write:1.0 ~scan:2.0
      (Key_dist.uniform 10)
  in
  let rng = Rng.create 17 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let op = Workload_spec.next_op spec rng in
    Hashtbl.replace counts op (1 + Option.value ~default:0 (Hashtbl.find_opt counts op))
  done;
  let get op = Option.value ~default:0 (Hashtbl.find_opt counts op) in
  Alcotest.(check bool) "reads ~25%" true
    (abs (get Workload_spec.Read - 2500) < 300);
  Alcotest.(check bool) "scans ~50%" true
    (abs (get Workload_spec.Scan - 5000) < 400);
  Alcotest.(check int) "no rmw" 0 (get Workload_spec.Rmw)

let spec_value_sizes () =
  let spec = Workload_spec.production ~read_ratio:0.9 ~space:100 in
  let rng = Rng.create 19 in
  Alcotest.(check int) "1KB values" 1024
    (String.length (Workload_spec.value_for spec rng));
  Alcotest.(check int) "40B keys" 40
    (String.length (Workload_spec.next_key spec rng));
  let len = Workload_spec.scan_len spec rng in
  Alcotest.(check bool) "scan len in range" true (len >= 10 && len <= 20)

(* ---------- Driver over a real store ---------- *)

let driver_end_to_end () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_driver_%d" (Unix.getpid ()))
  in
  let opts =
    {
      (Clsm_core.Options.default ~dir) with
      Clsm_core.Options.memtable_bytes = 1 lsl 20;
    }
  in
  let store = Store_ops.open_clsm opts in
  let spec = Workload_spec.mixed_read_write ~space:2_000 in
  Driver.preload store spec ~count:2_000;
  let r = Driver.run ~threads:2 ~ops_per_thread:2_000 store spec in
  Alcotest.(check int) "ops" 4_000 r.Driver.ops;
  Alcotest.(check bool) "throughput positive" true (r.Driver.throughput > 0.0);
  Alcotest.(check bool) "latencies ordered" true (r.Driver.p50 <= r.Driver.p99);
  store.Store_ops.close ()

let suites =
  [
    ( "workload.rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "ranges" `Quick rng_ranges;
        Alcotest.test_case "split" `Quick rng_split_independent;
      ] );
    ( "workload.key_dist",
      [
        Alcotest.test_case "uniform coverage" `Quick uniform_covers_space;
        Alcotest.test_case "skewed blocks 90/10" `Quick skewed_blocks_concentrates;
        Alcotest.test_case "heavy tail stats (production)" `Quick
          heavy_tail_statistics;
        Alcotest.test_case "zipf skew" `Quick zipf_is_skewed_and_in_range;
        Alcotest.test_case "sequential" `Quick sequential_in_order;
        Alcotest.test_case "key encoding" `Quick key_encoding_sorted;
      ] );
    ( "workload.histogram",
      [
        Alcotest.test_case "percentiles" `Quick histogram_percentiles;
        Alcotest.test_case "merge" `Quick histogram_merge;
        Alcotest.test_case "empty" `Quick histogram_empty;
      ] );
    ( "workload.spec",
      [
        Alcotest.test_case "op ratios" `Quick spec_ratios;
        Alcotest.test_case "sizes" `Quick spec_value_sizes;
      ] );
    ( "workload.driver",
      [ Alcotest.test_case "end to end" `Quick driver_end_to_end ] );
  ]
