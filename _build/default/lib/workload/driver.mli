(** Multi-domain benchmark driver: real concurrent execution of a
    workload against a store (this is the "measured" mode; the paper-shape
    figures come from the simulator, calibrated by these numbers). *)

type result = {
  ops : int;
  keys_touched : int;  (** scans count every key they return *)
  elapsed : float;
  throughput : float;  (** ops/s *)
  keys_per_sec : float;
  p50 : float;
  p90 : float;
  p99 : float;
  mean_latency : float;
}

val pp_result : Format.formatter -> result -> unit

val preload : ?seed:int -> Store_ops.t -> Workload_spec.t -> count:int -> unit
(** Sequentially insert [count] keys drawn from the spec's distribution
    indices 0.. so reads have something to hit; compacts afterwards. *)

val run :
  ?seed:int ->
  threads:int ->
  ops_per_thread:int ->
  Store_ops.t ->
  Workload_spec.t ->
  result
(** Spawn [threads] domains each executing [ops_per_thread] operations
    drawn from the spec, recording per-op latency. *)
