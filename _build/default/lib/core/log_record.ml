open Clsm_util
open Clsm_lsm

type t = { ts : int; user_key : string; entry : Entry.t }

let encode_into buf { ts; user_key; entry } =
  Varint.write buf ts;
  Varint.write buf (String.length user_key);
  Buffer.add_string buf user_key;
  let e = Entry.encode entry in
  Varint.write buf (String.length e);
  Buffer.add_string buf e

let encode r =
  let buf = Buffer.create (String.length r.user_key + 24) in
  encode_into buf r;
  Buffer.contents buf

let encode_batch rs =
  let buf = Buffer.create 256 in
  List.iter (encode_into buf) rs;
  Buffer.contents buf

let decode_one s pos =
  let ts, pos = Varint.read s ~pos in
  let klen, pos = Varint.read s ~pos in
  if pos + klen > String.length s then invalid_arg "Log_record.decode";
  let user_key = String.sub s pos klen in
  let pos = pos + klen in
  let elen, pos = Varint.read s ~pos in
  if pos + elen > String.length s then invalid_arg "Log_record.decode";
  let entry = Entry.decode (String.sub s pos elen) in
  ({ ts; user_key; entry }, pos + elen)

let decode_all s =
  let n = String.length s in
  let rec go pos acc =
    if pos = n then List.rev acc
    else
      let r, pos = decode_one s pos in
      go pos (r :: acc)
  in
  go 0 []

let decode s =
  match decode_all s with
  | [ r ] -> r
  | _ -> invalid_arg "Log_record.decode: not a single record"
