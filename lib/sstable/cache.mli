(** Sharded CLOCK cache for decoded table blocks, with a lock-free hit
    path.

    The disk component of an LSM-DS "utilizes a large RAM cache" (paper
    §2.3); with locality most reads that reach the disk component are
    served from here, so the hit path must scale with reader domains. Each
    shard publishes an immutable map snapshot through an [Atomic.t]: a hit
    is a map lookup, a [Refcounted.try_incr], and an atomic reference-bit
    store — no mutex. The shard mutex is taken only on miss, insertion,
    eviction and pin management.

    {2 Entries and handles}

    Entries are reference counted ({!Clsm_primitives.Refcounted}): the
    cache holds one owner reference, every outstanding {!handle} holds one
    more. Eviction drops the owner reference; the payload stays alive (and
    [release] does not fire) until the last handle is released, so a reader
    can never observe a freed block.

    {2 Pinned entries}

    Open tables pin their hot auxiliary blocks (index, filter) so every
    get does not re-look them up by string key. Pinned entries are charged
    to the shard budget but are never touched by the CLOCK hand, [clear],
    or a racing {!insert}. {!reserve} charges weight for auxiliary data
    that lives outside the cache's value type (e.g. bloom filters), so
    accounting stays honest without widening ['a].

    {2 Singleflight}

    {!find_or_add} and {!acquire_or_add} deduplicate concurrent misses:
    one caller (the winner) runs the loader, everyone else waits on the
    shard condition variable and reuses the winner's entry. A loser never
    installs anything, so it can never overwrite a winner's entry — in
    particular not one that already has pinned or outstanding handles. If
    the winner's loader raises, the waiters re-raise the same exception
    and the next caller retries the load. *)

type 'a t

type 'a handle
(** A counted reference to a cache entry. The payload obtained through
    {!handle_value} is valid until {!release}; releasing twice is a no-op.
    Handles are owned by a single reader and are not thread-safe
    themselves. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  weight : int;  (** resident + pinned + reserved weight *)
  pins : int;  (** currently pinned entries across all shards *)
  singleflight_waits : int;
      (** times a reader waited for another reader's in-flight load *)
  readaheads : int;  (** readahead batches issued by table iterators *)
  readahead_blocks : int;  (** blocks fetched by those batches *)
}

val create :
  ?shards:int ->
  ?release:('a -> unit) ->
  ?readahead:int ->
  capacity:int ->
  weight:('a -> int) ->
  unit ->
  'a t
(** [capacity] is the total weight budget across all shards (e.g. bytes);
    [weight] measures each entry. Default [shards] is 16. [release] runs
    when an entry's last reference drops (eviction with no outstanding
    handles, or the last {!release} after eviction). [readahead] is the
    forward-scan readahead depth in blocks advertised through
    {!readahead_blocks} (default 0 = disabled); the cache only carries the
    policy and counters — table iterators implement the fetch. *)

val find : 'a t -> string -> 'a option
(** Lock-free on hit. The returned value stays reachable through the GC
    even if the entry is evicted immediately after. *)

val insert : 'a t -> string -> 'a -> unit
(** Insert or refresh; runs the CLOCK hand until the shard fits its
    budget. Entries heavier than a whole shard are not cached. Inserting
    over a pinned entry is a no-op (the pin wins). *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t k f] returns the cached value or computes, caches and
    returns [f ()]. Concurrent callers on the same missing key run [f]
    exactly once per generation: one winner loads, losers wait and share
    the result. A loser never installs its own entry (see the singleflight
    notes above). *)

val remove : 'a t -> string -> unit
(** Drop the cache's reference to [key]'s entry if present and not
    pinned. Outstanding handles keep the payload alive. *)

val clear : 'a t -> unit
(** Evict every unpinned entry. Pinned entries and reservations
    survive. *)

val remove_matching : 'a t -> prefix:string -> unit
(** Drop every unpinned entry whose key starts with [prefix]. Used to
    retire a closing table's blocks eagerly: CLOCK's second chance cannot
    distinguish "recently used, then orphaned" from "hot", so without
    eager invalidation dead blocks would push live data out first.
    O(entries); meant for rare namespace retirement, not the hot path. *)

val stats : 'a t -> stats
val cardinal : 'a t -> int

(** {2 Handles} *)

val acquire : 'a t -> string -> 'a handle option
(** Lock-free on hit: like {!find} but returns a counted handle the
    caller must {!release}. *)

val acquire_or_add : 'a t -> string -> (unit -> 'a) -> 'a handle
(** Handle-returning {!find_or_add}; same singleflight contract. *)

val handle_value : 'a handle -> 'a
val release : 'a handle -> unit

(** {2 Pinning} *)

val pin : 'a t -> string -> 'a -> 'a handle
(** Insert [key] as a pinned entry (evicting any unpinned entry under the
    same key) and return a handle to it. The entry is charged to the
    budget but never evicted until {!unpin}. *)

val unpin : 'a t -> 'a handle -> unit
(** Remove the pinned entry and release the handle. Idempotent. *)

val reserve : 'a t -> string -> int -> unit
(** Charge [weight] against [key]'s shard without storing a value.
    Re-reserving the same key replaces the previous charge. *)

val unreserve : 'a t -> string -> unit

(** {2 Readahead support} *)

val mem : 'a t -> string -> bool
(** Lock-free membership probe that does not touch hit/miss counters or
    reference bits — used by readahead to skip already-resident blocks. *)

val readahead_blocks : 'a t -> int
(** The configured forward-scan readahead depth (0 = disabled). *)

val note_readahead : 'a t -> blocks:int -> unit
(** Record one readahead batch that fetched [blocks] blocks. *)

(** {2 Test hooks} *)

val with_shard_locked : 'a t -> string -> (unit -> 'b) -> 'b
(** Run [f] while holding the mutex of [key]'s shard. Used by tests to
    prove the hit path never takes the shard lock: a concurrent {!find}
    on a resident key must complete while [f] is still running. *)
