examples/quickstart.mli:
