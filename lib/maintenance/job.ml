type t = Flush | Compact of { src_level : int; target_level : int }

let priority = function
  | Flush -> 0
  | Compact { src_level; _ } -> src_level + 1

let compare a b = Int.compare (priority a) (priority b)

let levels = function
  | Flush -> None
  | Compact { src_level; target_level } -> Some (src_level, target_level)

let pp ppf = function
  | Flush -> Format.fprintf ppf "flush"
  | Compact { src_level; target_level } ->
      Format.fprintf ppf "compact(L%d->L%d)" src_level target_level
