open Clsm_lsm

module IKMap = Map.Make (struct
  type t = string

  let compare = Internal_key.compare_encoded
end)

type t = {
  map : Entry.t IKMap.t Atomic.t;
  write_mutex : Mutex.t;
  bytes : int Atomic.t;
  count : int Atomic.t;
}

let entry_overhead = 64

let create () =
  {
    map = Atomic.make IKMap.empty;
    write_mutex = Mutex.create ();
    bytes = Atomic.make 0;
    count = Atomic.make 0;
  }

let entry_size user_key entry =
  String.length user_key + Internal_key.ts_size + entry_overhead
  + (match entry with Entry.Value v -> String.length v | Entry.Tombstone -> 0)

let locked t f = Mutex.protect t.write_mutex f

let add t ~user_key ~ts entry =
  let ik = Internal_key.make user_key ts in
  locked t (fun () ->
      let m = Atomic.get t.map in
      if not (IKMap.mem ik m) then begin
        Atomic.set t.map (IKMap.add ik entry m);
        ignore (Atomic.fetch_and_add t.bytes (entry_size user_key entry));
        Atomic.incr t.count
      end)

let find_le m probe =
  IKMap.find_last_opt (fun k -> Internal_key.compare_encoded k probe <= 0) m

let get t ~user_key ~snap_ts =
  match find_le (Atomic.get t.map) (Internal_key.make user_key snap_ts) with
  | Some (ik, entry) when String.equal (Internal_key.user_key_of ik) user_key ->
      Some (Internal_key.ts_of ik, entry)
  | Some _ | None -> None

let latest_ts t ~user_key =
  match get t ~user_key ~snap_ts:Internal_key.max_ts with
  | Some (ts, _) -> Some ts
  | None -> None

(* The location is the observed snapshot: any intervening write publishes
   a new map, which the install detects by physical identity. Coarser than
   the skip-list's per-key conflict detection, but atomic. *)
type rmw_location = Entry.t IKMap.t

let locate_rmw t ~user_key =
  let m = Atomic.get t.map in
  let prev_ts =
    match find_le m (Internal_key.probe user_key) with
    | Some (ik, _) when String.equal (Internal_key.user_key_of ik) user_key ->
        Some (Internal_key.ts_of ik)
    | Some _ | None -> None
  in
  (prev_ts, m)

let try_install t loc ~user_key ~ts entry =
  locked t (fun () ->
      if Atomic.get t.map != loc then false
      else begin
        let ik = Internal_key.make user_key ts in
        Atomic.set t.map (IKMap.add ik entry loc);
        ignore (Atomic.fetch_and_add t.bytes (entry_size user_key entry));
        Atomic.incr t.count;
        true
      end)

let approximate_bytes t = Atomic.get t.bytes
let entry_count t = Atomic.get t.count
let is_empty t = IKMap.is_empty (Atomic.get t.map)

let iter t =
  (* Each (re)positioning captures a fresh snapshot; advancing walks the
     captured one — the same weak-consistency contract as the skip-list
     cursor. *)
  let seq = ref Seq.empty in
  let current = ref None in
  let step () =
    match !seq () with
    | Seq.Nil -> current := None
    | Seq.Cons (binding, rest) ->
        current := Some binding;
        seq := rest
  in
  {
    Iter.seek_to_first =
      (fun () ->
        seq := IKMap.to_seq (Atomic.get t.map);
        step ());
    seek =
      (fun target ->
        seq := IKMap.to_seq_from target (Atomic.get t.map);
        step ());
    valid = (fun () -> !current <> None);
    key =
      (fun () ->
        match !current with
        | Some (k, _) -> k
        | None -> invalid_arg "Cow_memtable.iter: invalid");
    value =
      (fun () ->
        match !current with
        | Some (_, e) -> Entry.encode e
        | None -> invalid_arg "Cow_memtable.iter: invalid");
    next = (fun () -> if !current <> None then step ());
  }

let fold_entries f t acc =
  IKMap.fold
    (fun ik entry acc ->
      f (Internal_key.user_key_of ik) (Internal_key.ts_of ik) entry acc)
    (Atomic.get t.map) acc
