lib/wal/wal_writer.mli:
