(** Lock-free concurrent skip-list, insert-only.

    This is the in-memory map data structure assumed by the paper (§3):
    thread-safe, non-blocking, sorted, supporting weakly-consistent
    iteration. Items are never removed (obsolete versions disappear only
    when a whole memory component is discarded after its merge), which is
    exactly the cLSM usage and is what makes the lock-free algorithm simple:
    insertion publishes a node with a single CAS on the bottom-level
    predecessor link and then links upper levels best-effort, as in
    Herlihy & Shavit's lazy skip-list restricted to inserts.

    The {!module-type:S.Raw} sub-interface exposes the bottom-level
    predecessor search and CAS used to implement the paper's Algorithm 3
    (non-blocking atomic read-modify-write). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type key
  type 'v t

  val create : ?max_height:int -> ?seed:int -> unit -> 'v t
  (** [max_height] bounds the tower height (default 20, branching factor 4 —
      ample beyond 10^12 entries); [seed] fixes the height PRNG for
      reproducible tests. *)

  val insert : 'v t -> key -> 'v -> bool
  (** [insert t k v] links a new node. Returns [false] (and changes nothing)
      if [k] is already present — cLSM memtables never overwrite because
      every version gets a fresh timestamped key. Lock-free. *)

  val find : 'v t -> key -> 'v option
  (** Exact lookup. Wait-free (traversal only). *)

  val find_le : 'v t -> key -> (key * 'v) option
  (** Greatest binding [<= k], e.g. the newest version of a user key when
      versions are ordered by ascending timestamp and probed at [(k, ∞)]. *)

  val find_ge : 'v t -> key -> (key * 'v) option
  (** Least binding [>= k] (range-scan seek). *)

  val is_empty : 'v t -> bool

  val length : 'v t -> int
  (** O(n): counts bottom-level nodes. *)

  val iter : (key -> 'v -> unit) -> 'v t -> unit
  (** In-order, weakly consistent: every binding present for the whole
      traversal is visited exactly once. *)

  val fold : (key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
  val to_list : 'v t -> (key * 'v) list

  (** Weakly-consistent forward cursor over the bottom level. *)
  module Cursor : sig
    type 'v cursor

    val make : 'v t -> 'v cursor
    (** Positioned before the first binding; call {!seek_first} or {!seek}. *)

    val seek_first : 'v cursor -> unit
    val seek : 'v cursor -> key -> unit
    (** Position at the least binding [>= k] (invalid if none). *)

    val valid : 'v cursor -> bool
    val current : 'v cursor -> (key * 'v) option
    val next : 'v cursor -> unit
    (** Advance; no-op if already invalid. *)
  end

  (** Bottom-level internals for Algorithm 3 (atomic read-modify-write). *)
  module Raw : sig
    type 'v location

    val locate : 'v t -> key -> 'v location
    (** [locate t k] finds the bottom-level insertion point for [k]: the
        node with the greatest key [<= k] (the paper's [prev], line 5 of
        Algorithm 3) and its successor (line 7). *)

    val prev_binding : 'v location -> (key * 'v) option
    (** Binding of [prev], or [None] if [prev] is the head sentinel. *)

    val succ_binding : 'v location -> (key * 'v) option
    (** Binding of the successor, or [None] at the end of the list. *)

    val try_insert : 'v t -> 'v location -> key -> 'v -> bool
    (** [try_insert t loc k v] publishes [(k, v)] between the located
        predecessor and successor with a single CAS on the predecessor's
        bottom link (line 12 of Algorithm 3), then links upper levels.
        Fails (returning [false]) iff the predecessor's link changed since
        {!locate} — the caller re-runs its conflict detection and retries.
        The key must satisfy [prev < k < succ]; checked with assertions. *)
  end
end

module Make (Key : ORDERED) : S with type key = Key.t
