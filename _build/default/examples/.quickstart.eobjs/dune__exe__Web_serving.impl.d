examples/web_serving.ml: Clsm_core Clsm_sstable Clsm_workload Driver Filename Format List Store_ops Workload_spec
