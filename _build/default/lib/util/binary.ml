let write_fixed32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let write_fixed64 buf v =
  write_fixed32 buf (v land 0xffffffff);
  write_fixed32 buf ((v lsr 32) land 0xffffffff)

let get_fixed32 s ~pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let get_fixed64 s ~pos =
  let lo = get_fixed32 s ~pos in
  let hi = get_fixed32 s ~pos:(pos + 4) in
  if hi land 0x80000000 <> 0 then failwith "Binary.get_fixed64: overflow";
  lo lor (hi lsl 32)

let put_fixed32 b ~pos v =
  Bytes.set b pos (Char.chr (v land 0xff));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (pos + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (pos + 3) (Char.chr ((v lsr 24) land 0xff))

let put_fixed64 b ~pos v =
  put_fixed32 b ~pos (v land 0xffffffff);
  put_fixed32 b ~pos:(pos + 4) ((v lsr 32) land 0xffffffff)
