lib/sim/engine.mli:
