lib/lsm/manifest.ml: Buffer Clsm_util Crc32c List Printf String Sys Table_file Unix
