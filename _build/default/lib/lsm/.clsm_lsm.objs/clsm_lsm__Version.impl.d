lib/lsm/version.ml: Array Clsm_primitives Clsm_sstable Entry Internal_key Iter List Printf Refcounted String Table_file
