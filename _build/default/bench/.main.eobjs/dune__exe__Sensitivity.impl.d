bench/sensitivity.ml: Clsm_sim_lsm Clsm_workload Costs Experiment Float Fun List Printf System Workload_spec
