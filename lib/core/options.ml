type group_commit = { max_batch : int; max_delay_us : int }
type wal_sync = [ `Per_write | `Group of group_commit | `Async ]

type t = {
  dir : string;
  memtable_bytes : int;
  wal_sync : wal_sync;
  wal_enabled : bool;
  cache_bytes : int;
  readahead_blocks : int;
  linearizable_snapshots : bool;
  unsafe_naive_snapshots : bool;
  active_set_capacity : int;
  maintenance_workers : int;
  maintenance_tick : float;
  max_subcompactions : int;
  backpressure_max_delay_us : int;
  lsm : Clsm_lsm.Lsm_config.t;
  env : Clsm_env.Env.t;
  strict_wal : bool;
  clock : Clock.t option;
  shards : int;
  shard_boundaries : string list option;
  external_maintenance : bool;
  retry : Clsm_env.Retry_policy.t;
  scrub_interval : float;
  scrub_block_budget : int;
  auto_repair : bool;
}

let default ~dir =
  {
    dir;
    memtable_bytes = 128 * 1024 * 1024;
    wal_sync = `Async;
    wal_enabled = true;
    cache_bytes = 64 * 1024 * 1024;
    readahead_blocks = 8;
    linearizable_snapshots = false;
    unsafe_naive_snapshots = false;
    active_set_capacity = 4096;
    maintenance_workers = 2;
    maintenance_tick = 0.25;
    max_subcompactions = 1;
    backpressure_max_delay_us = 1000;
    lsm = Clsm_lsm.Lsm_config.default;
    env = Clsm_env.Env.unix;
    strict_wal = false;
    clock = None;
    shards = 1;
    shard_boundaries = None;
    external_maintenance = false;
    retry = Clsm_env.Retry_policy.default;
    scrub_interval = 30.0;
    scrub_block_budget = 256;
    auto_repair = true;
  }

let default_group_commit = { max_batch = 64; max_delay_us = 50 }

let wal_mode t =
  match t.wal_sync with
  | `Async -> Clsm_wal.Wal_writer.Async
  | `Per_write -> Clsm_wal.Wal_writer.Sync
  | `Group { max_batch; max_delay_us } ->
      Clsm_wal.Wal_writer.Group { max_batch; max_delay_us }
