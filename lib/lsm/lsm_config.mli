(** Tunables of the disk component and merge policy. Defaults follow the
    paper's evaluation setup (§5.3): 6 disk levels, 64 MB level-1 target
    file size scaled down to container scale, 64 KB blocks in the
    disk-bound benchmark, 4 KB otherwise. *)

type t = {
  num_levels : int;  (** disk levels including L0 (default 7) *)
  l0_compaction_trigger : int;  (** L0 file count that starts a merge (4) *)
  l0_slowdown_trigger : int;
      (** L0 file count where graduated write slowdown begins (8); see
          {!Clsm_core.Backpressure}. Delays ramp from here up to
          [l0_stall_limit], where writers stop. *)
  l0_stall_limit : int;  (** L0 file count that stalls writers (12) *)
  level1_max_bytes : int;  (** byte budget of L1; deeper levels ×[multiplier] *)
  level_size_multiplier : int;
  target_file_size : int;  (** compaction output file cut size *)
  block_size : int;
  bits_per_key : int;  (** Bloom bits per user key; 0 disables filters *)
  compress : bool;  (** LZSS-compress data blocks (LevelDB compresses with
                        Snappy by default; off here by default) *)
}

val default : t

val max_bytes_for_level : t -> int -> int
(** [max_bytes_for_level cfg level] for [level >= 1]. *)
