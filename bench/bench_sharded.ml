(* Range-sharded store benchmark: the same mixed workload (multi-domain
   writers, 10% reads, periodic cross-shard scans) against the router at
   shards ∈ {1, 2, 4}, emitting the clsm-bench/1 JSON schema
   (BENCH_sharded.json checked in, BENCH_sharded_smoke.json as a CI
   artifact).

   Shard boundaries split the bench's numeric "user%08d" keyspace evenly
   — the byte-uniform default would park every key in one shard.

   CAVEAT baked into the JSON: on the single-core CI container the
   sharded rows measure routing + shared-clock overhead, not scaling;
   the paper's Figure-5-style speedups need real parallelism (shards
   multiply the memtables, WAL tails and flush pipelines, which only
   helps when domains actually run in parallel). *)

module Histogram = Clsm_workload.Histogram
module Sharded_db = Clsm_core.Sharded_db
module Options = Clsm_core.Options
module Stats = Clsm_core.Stats
module J = Bench_store.J

let bound_keys ~shards ~key_space =
  List.init (shards - 1) (fun j ->
      Printf.sprintf "user%08d" ((j + 1) * key_space / shards))

let sharded_opts ~dir ~shards ~key_space =
  let base = Bench_store.mixed_opts ~dir ~max_subcompactions:1 in
  {
    base with
    Options.shards;
    shard_boundaries =
      (if shards = 1 then None else Some (bound_keys ~shards ~key_space));
  }

let run_one ~scale ~shards =
  let writers = 2 in
  let ops_per_writer =
    match scale with Bench_store.Smoke -> 4_000 | Full -> 30_000
  in
  let key_space =
    match scale with Bench_store.Smoke -> 10_000 | Full -> 100_000
  in
  let value = String.make 256 'v' in
  let dir = Bench_store.fresh_dir () in
  let db = Sharded_db.open_store (sharded_opts ~dir ~shards ~key_space) in
  let scan_rows = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker w =
    let h = Histogram.create () in
    let state = ref (w * 7919) in
    for i = 1 to ops_per_writer do
      let k =
        Printf.sprintf "user%08d" (Bench_store.next_key state ~key_space)
      in
      let op_start = Unix.gettimeofday () in
      if i mod 500 = 0 then
        (* a bounded cross-shard scan: one fence, merged shard iterators *)
        ignore
          (Atomic.fetch_and_add scan_rows
             (List.length (Sharded_db.range ~start:k ~limit:100 db)))
      else if i mod 10 = 0 then ignore (Sharded_db.get db k)
      else Sharded_db.put db ~key:k ~value;
      Histogram.record h (Unix.gettimeofday () -. op_start)
    done;
    h
  in
  let domains =
    List.init (writers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  let h0 = worker 0 in
  let hists = h0 :: List.map Domain.join domains in
  let wall = Unix.gettimeofday () -. t0 in
  let h = Histogram.merge hists in
  let s = Sharded_db.stats db in
  let per_shard = Sharded_db.shard_stats db in
  Sharded_db.close db;
  Bench_store.rm_rf dir;
  let ops = writers * ops_per_writer in
  J.Obj
    [
      ("shards", J.Int shards);
      ("writers", J.Int writers);
      ("ops", J.Int ops);
      ("wall_s", J.Float wall);
      ("ops_per_s", J.Float (float_of_int ops /. wall));
      ("op_p50_us", J.Float (Histogram.percentile h 50.0 *. 1e6));
      ("op_p99_us", J.Float (Histogram.percentile h 99.0 *. 1e6));
      ("scan_rows", J.Int (Atomic.get scan_rows));
      ("stall_s", J.Float (float_of_int s.Stats.stall_ns /. 1e9));
      ("write_stalls", J.Int s.Stats.write_stalls);
      ("slowdown_s", J.Float (float_of_int s.Stats.slowdown_delay_ns /. 1e9));
      ("compaction_s", J.Float (float_of_int s.Stats.compaction_ns /. 1e9));
      ("compactions", J.Int s.Stats.compactions);
      ("flushes", J.Int s.Stats.flushes);
      ("bytes_flushed", J.Int s.Stats.bytes_flushed);
      ("bytes_compacted", J.Int s.Stats.bytes_compacted);
      ("snapshots", J.Int s.Stats.snapshots_taken);
      ( "puts_per_shard",
        J.List
          (Array.to_list (Array.map (fun p -> J.Int p.Stats.puts) per_shard)) );
    ]

let run ~scale ~out =
  Printf.printf "clsm sharded-store bench (%s scale, %d core(s))\n%!"
    (Bench_store.scale_name scale)
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun shards ->
        let row = run_one ~scale ~shards in
        Printf.printf "  shards=%d done\n%!" shards;
        row)
      [ 1; 2; 4 ]
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str "clsm-bench/1");
        ("bench", J.Str "sharded");
        ("scale", J.Str (Bench_store.scale_name scale));
        ( "host",
          J.Obj
            [
              ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
            ] );
        ( "caveat",
          J.Str
            "single-core containers measure routing + shared-clock overhead \
             only; shard scaling requires real multicore parallelism" );
        ("sharded_mixed_workload", J.List rows);
      ]
  in
  let oc = open_out out in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out
