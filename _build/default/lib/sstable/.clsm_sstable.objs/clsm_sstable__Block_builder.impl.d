lib/sstable/block_builder.ml: Binary Buffer Clsm_util List String Varint
