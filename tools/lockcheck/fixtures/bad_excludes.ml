(* Entering an [@@excludes_locks] function while holding a declared
   lock: the maintenance entry points' "caller must hold no locks". *)

type t = { cm : Mutex.t }

let entry _t = () [@@excludes_locks]

let ok t = entry t

let bad t =
  Mutex.protect t.cm (fun () ->
      entry t (* BAD: LC004 *))
