type 'a t = { payload : 'a; refs : int Atomic.t; release : 'a -> unit }

let create ?(release = fun _ -> ()) payload =
  { payload; refs = Atomic.make 1; release }

let value t = t.payload

let rec try_incr t =
  let c = Atomic.get t.refs in
  if c = 0 then false
  else if Atomic.compare_and_set t.refs c (c + 1) then true
  else try_incr t

let decr t =
  let old = Atomic.fetch_and_add t.refs (-1) in
  assert (old >= 1);
  if old = 1 then t.release t.payload

let retire = decr
let count t = Atomic.get t.refs
