bench/calibrate.ml: Analyze Array Bechamel Benchmark Clsm_core Clsm_lsm Clsm_skiplist Clsm_sstable Clsm_wal Filename Hashtbl Instance List Measure Printf Staged String Sys Test Time Toolkit Unix
