open Clsm_primitives

type config = { soft_l0 : int; hard_l0 : int; max_delay_ns : int }

let config_of_options (opts : Options.t) =
  {
    soft_l0 = opts.lsm.Clsm_lsm.Lsm_config.l0_slowdown_trigger;
    hard_l0 = opts.lsm.Clsm_lsm.Lsm_config.l0_stall_limit;
    max_delay_ns = opts.backpressure_max_delay_us * 1000;
  }

type observation = {
  stopped : bool;
  mem_full : bool;
  imm_busy : bool;
  l0_files : int;
}

type t = { config : config; stats : Stats.t }

let create ~config ~stats = { config; stats }

(* Quadratic ramp: gentle just past the soft threshold, steep near the
   hard stop, where every additional L0 file matters most. *)
let delay_ns config ~l0_files =
  if l0_files < config.soft_l0 || config.max_delay_ns <= 0 then 0
  else begin
    let span = max 1 (config.hard_l0 - config.soft_l0) in
    let depth = min (l0_files - config.soft_l0 + 1) span in
    config.max_delay_ns * depth * depth / (span * span)
  end

let hard_blocked o config =
  (o.mem_full && o.imm_busy) || o.l0_files >= config.hard_l0

let admit t ~observe ~wake =
  let b = Backoff.create ~max_spins:4096 () in
  (* [since] is the wall-clock instant this writer first found itself
     hard-blocked (None while unblocked); the elapsed stall is accounted
     once, when the writer gets through (or gives up on a stopped
     store), so stall seconds in stats are real writer-observed time. *)
  let record_stall = function
    | None -> ()
    | Some t0 ->
        Stats.add_stall_ns t.stats
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  let rec wait_hard since =
    let o = observe () in
    if o.stopped then record_stall since
    else if hard_blocked o t.config then begin
      let since =
        match since with
        | None ->
            Stats.incr_write_stalls t.stats;
            wake ();
            Some (Unix.gettimeofday ())
        | Some _ -> since
      in
      Backoff.once b;
      wait_hard since
    end
    else begin
      record_stall since;
      let d = delay_ns t.config ~l0_files:o.l0_files in
      if d > 0 then begin
        Stats.add_slowdown t.stats ~delay_ns:d;
        (* The delay buys compaction time only if compaction is running. *)
        wake ();
        Unix.sleepf (float_of_int d /. 1e9)
      end
    end
  in
  wait_hard None
