lib/sim/proc.ml: Engine
