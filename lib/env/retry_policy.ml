(* Deadline-bounded capped exponential backoff for maintenance-path IO.

   This is deliberately distinct from [Primitives.Backoff]: that one is a
   CPU spin/yield loop for lock-free retry on the fast path; this one
   sleeps real wall-clock time between attempts at disk operations, and
   both the clock and the sleep are injectable so unit tests can drive it
   under a fake clock with zero real delay.

   Only {!Env.Error} is retried: that is the transient-fault class
   (EIO fsync, ENOSPC append, ...). {!Env.Crashed} and every other
   exception propagate immediately — a crash point is a hard stop, and
   corruption/logic errors must never be papered over by retries. *)

type t = {
  max_attempts : int;
  initial_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  deadline : float option;
  sleep : float -> unit;
  now : unit -> float;
}

let default =
  {
    max_attempts = 5;
    initial_delay = 0.005;
    max_delay = 0.100;
    multiplier = 2.0;
    jitter = 0.2;
    deadline = Some 2.0;
    sleep = Unix.sleepf;
    now = Unix.gettimeofday;
  }

let none =
  { default with max_attempts = 1; deadline = None; sleep = (fun _ -> ()) }

(* Deterministic pseudo-random fraction in [0,1) derived from the attempt
   number alone (Knuth multiplicative hash), so a given policy always
   produces the same delay sequence — reproducible tests, no shared RNG. *)
let jitter_fraction ~attempt =
  float_of_int ((attempt * 2654435761) land 0xFFFF) /. 65536.0

let delay_for t ~attempt =
  if attempt < 1 then invalid_arg "Retry_policy.delay_for: attempt < 1";
  let base =
    t.initial_delay *. (t.multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min t.max_delay base in
  let j = Float.max 0.0 (Float.min 1.0 t.jitter) in
  (* symmetric jitter: capped * (1 ± j) *)
  let factor = 1.0 +. (j *. ((2.0 *. jitter_fraction ~attempt) -. 1.0)) in
  Float.max 0.0 (capped *. factor)

let run t ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f =
  let start = t.now () in
  let deadline_exceeded ~after_delay =
    match t.deadline with
    | None -> false
    | Some d -> t.now () -. start +. after_delay > d
  in
  let rec go attempt =
    match f () with
    | v -> v
    | exception (Env.Error _ as e) ->
        if attempt >= t.max_attempts then raise e;
        let delay = delay_for t ~attempt in
        if deadline_exceeded ~after_delay:delay then raise e;
        on_retry ~attempt ~delay e;
        if delay > 0.0 then t.sleep delay;
        go (attempt + 1)
  in
  go 1
