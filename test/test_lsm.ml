open Clsm_lsm

let qtests = List.map QCheck_alcotest.to_alcotest

(* ---------- Internal_key ---------- *)

let ikey_roundtrip () =
  List.iter
    (fun (k, ts) ->
      let enc = Internal_key.make k ts in
      Alcotest.(check string) "user key" k (Internal_key.user_key_of enc);
      Alcotest.(check int) "ts" ts (Internal_key.ts_of enc);
      let d = Internal_key.decode enc in
      Alcotest.(check string) "decode uk" k d.Internal_key.user_key;
      Alcotest.(check int) "decode ts" ts d.Internal_key.ts)
    [ ("", 0); ("a", 1); ("key", 123456789); ("\x00\xff", Internal_key.max_ts) ]

let ikey_ordering () =
  let le a b = Internal_key.compare_encoded a b < 0 in
  (* user key dominates *)
  Alcotest.(check bool) "a < b" true
    (le (Internal_key.make "a" 100) (Internal_key.make "b" 1));
  (* same user key: ts ascending *)
  Alcotest.(check bool) "ts asc" true
    (le (Internal_key.make "k" 1) (Internal_key.make "k" 2));
  (* prefix keys: "a" < "ab" regardless of ts bytes *)
  Alcotest.(check bool) "prefix" true
    (le (Internal_key.make "a" Internal_key.max_ts) (Internal_key.make "ab" 1));
  (* probe is the supremum of a key's versions *)
  Alcotest.(check bool) "probe above" true
    (le (Internal_key.make "k" 999999) (Internal_key.probe "k"));
  Alcotest.(check bool) "probe below next key" true
    (le (Internal_key.probe "k") (Internal_key.make "k\x00" 1))

let prop_ikey_order_matches_pairs =
  QCheck.Test.make ~name:"encoded order = (user_key, ts) order" ~count:500
    QCheck.(
      pair
        (pair (string_of_size Gen.(0 -- 6)) (map abs small_int))
        (pair (string_of_size Gen.(0 -- 6)) (map abs small_int)))
    (fun ((k1, t1), (k2, t2)) ->
      let c_enc =
        Internal_key.compare_encoded (Internal_key.make k1 t1)
          (Internal_key.make k2 t2)
      in
      let c_pair = compare (k1, t1) (k2, t2) in
      compare c_enc 0 = compare c_pair 0)

(* ---------- Entry ---------- *)

let entry_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "roundtrip" true (Entry.decode (Entry.encode e) = e))
    [ Entry.Value ""; Entry.Value "hello"; Entry.Tombstone ];
  Alcotest.(check bool) "tombstone" true (Entry.is_tombstone Entry.Tombstone);
  Alcotest.(check (option string)) "to_option" (Some "x")
    (Entry.to_option (Entry.Value "x"));
  match Entry.decode "\x07bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad tag accepted"

(* ---------- Iter / Merge_iter ---------- *)

let sorted l = List.sort compare l

let iter_concat () =
  let a = Iter.of_sorted_list ~cmp:String.compare [ ("a", "1"); ("b", "2") ] in
  let b = Iter.of_sorted_list ~cmp:String.compare [] in
  let c = Iter.of_sorted_list ~cmp:String.compare [ ("x", "3"); ("y", "4") ] in
  let it = Iter.concat [ a; b; c ] in
  Alcotest.(check (list (pair string string)))
    "all entries"
    [ ("a", "1"); ("b", "2"); ("x", "3"); ("y", "4") ]
    (Iter.to_list it);
  it.Iter.seek "c";
  Alcotest.(check string) "seek across gap" "x" (it.Iter.key ());
  it.Iter.seek "y";
  Alcotest.(check string) "seek into last" "y" (it.Iter.key ());
  it.Iter.seek "z";
  Alcotest.(check bool) "seek past end" false (it.Iter.valid ())

let merge_basic () =
  let a = Iter.of_sorted_list ~cmp:String.compare [ ("a", "A"); ("c", "C") ] in
  let b = Iter.of_sorted_list ~cmp:String.compare [ ("b", "B"); ("d", "D") ] in
  let m = Merge_iter.merge ~cmp:String.compare [ a; b ] in
  Alcotest.(check (list (pair string string)))
    "interleaved"
    [ ("a", "A"); ("b", "B"); ("c", "C"); ("d", "D") ]
    (Iter.to_list m)

let merge_tie_break () =
  (* Equal keys: the earlier (newer) source is emitted first. *)
  let newer = Iter.of_sorted_list ~cmp:String.compare [ ("k", "new") ] in
  let older = Iter.of_sorted_list ~cmp:String.compare [ ("k", "old") ] in
  let m = Merge_iter.merge ~cmp:String.compare [ newer; older ] in
  Alcotest.(check (list (pair string string)))
    "newer first"
    [ ("k", "new"); ("k", "old") ]
    (Iter.to_list m)

let prop_merge_equals_sort =
  QCheck.Test.make ~name:"merge = sorted union" ~count:200
    QCheck.(
      list_of_size
        Gen.(0 -- 8)
        (list_of_size Gen.(0 -- 30) (string_of_size Gen.(1 -- 4))))
    (fun keylists ->
      let lists =
        List.map
          (fun keys ->
            List.sort_uniq compare (List.map (fun k -> (k, k)) keys))
          keylists
      in
      let iters = List.map (Iter.of_sorted_list ~cmp:String.compare) lists in
      let merged = Iter.to_list (Merge_iter.merge ~cmp:String.compare iters) in
      sorted merged = sorted (List.concat lists))

let prop_merge_seek =
  QCheck.Test.make ~name:"merge seek = first >= target" ~count:200
    QCheck.(
      pair
        (list_of_size
           Gen.(0 -- 6)
           (list_of_size Gen.(0 -- 20) (string_of_size Gen.(1 -- 3))))
        (string_of_size Gen.(1 -- 3)))
    (fun (keylists, target) ->
      let lists =
        List.map
          (fun keys -> List.sort_uniq compare (List.map (fun k -> (k, k)) keys))
          keylists
      in
      let m =
        Merge_iter.merge ~cmp:String.compare
          (List.map (Iter.of_sorted_list ~cmp:String.compare) lists)
      in
      m.Iter.seek target;
      let got = if m.Iter.valid () then Some (m.Iter.key ()) else None in
      let all = sorted (List.concat_map (List.map fst) lists) in
      let expected = List.find_opt (fun k -> k >= target) all in
      got = expected)

(* ---------- heap merge ≡ linear merge ≡ naive merge ---------- *)

(* The naive reference: concatenate in source order, stable-sort by key —
   equal keys keep source order (newer source first), duplicates are all
   emitted, exactly the documented merge semantics. *)
let naive_merge lists =
  List.stable_sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.concat lists)

let mk_lists keylists =
  List.map
    (fun keys -> List.sort_uniq compare (List.map (fun k -> (k, k)) keys))
    keylists

let engines =
  [
    ("linear", Merge_iter.merge_linear);
    ("heap", Merge_iter.merge_heap);
    ("auto", Merge_iter.merge);
  ]

let prop_merge_engines_agree =
  QCheck.Test.make ~name:"heap merge = linear merge = naive merge" ~count:300
    QCheck.(
      list_of_size
        Gen.(0 -- 10)
        (list_of_size Gen.(0 -- 15) (string_of_size Gen.(1 -- 3))))
    (fun keylists ->
      let lists = mk_lists keylists in
      let expected = naive_merge lists in
      List.for_all
        (fun (_, engine) ->
          let iters =
            List.map (Iter.of_sorted_list ~cmp:String.compare) lists
          in
          Iter.to_list (engine ~cmp:String.compare iters) = expected)
        engines)

(* Repeated seeks interleaved with nexts must agree across engines and
   with the naive model — this is what exercises the exhaustion-bound
   bookkeeping (a seek whose target a dead source's bound covers skips the
   physical re-seek, and a later lower seek must revive the source). *)
let prop_merge_engines_agree_on_seeks =
  QCheck.Test.make ~name:"merge engines agree under seek/next sequences"
    ~count:300
    QCheck.(
      pair
        (list_of_size
           Gen.(0 -- 7)
           (list_of_size Gen.(0 -- 12) (string_of_size Gen.(1 -- 2))))
        (list_of_size Gen.(1 -- 12) (string_of_size Gen.(1 -- 2))))
    (fun (keylists, targets) ->
      let lists = mk_lists keylists in
      let all = naive_merge lists in
      List.for_all
        (fun (_, engine) ->
          let iters =
            List.map (Iter.of_sorted_list ~cmp:String.compare) lists
          in
          let m = engine ~cmp:String.compare iters in
          List.for_all
            (fun target ->
              m.Iter.seek target;
              (* after the seek, drain two entries and compare with the
                 naive remainder *)
              let got = ref [] in
              for _ = 1 to 2 do
                if m.Iter.valid () then begin
                  got := (m.Iter.key (), m.Iter.value ()) :: !got;
                  m.Iter.next ()
                end
              done;
              let expected =
                List.filter (fun (k, _) -> k >= target) all |> fun l ->
                List.filteri (fun i _ -> i < 2) l
              in
              List.rev !got = expected)
            targets)
        engines)

(* An exhausted source must not be physically re-seeked while the learned
   bound proves the target empty, and must revive on a lower seek. *)
let merge_skips_dead_source_seeks () =
  List.iter
    (fun (name, engine) ->
      let seeks = ref 0 in
      let base = Iter.of_sorted_list ~cmp:String.compare [ ("a", "1") ] in
      let counted = { base with Iter.seek = (fun t -> incr seeks; base.Iter.seek t) } in
      let other = Iter.of_sorted_list ~cmp:String.compare [ ("c", "3") ] in
      let m = engine ~cmp:String.compare [ counted; other ] in
      m.Iter.seek "b";
      Alcotest.(check int) (name ^ ": first dead seek hits the source") 1 !seeks;
      Alcotest.(check string) (name ^ ": other source answers") "c" (m.Iter.key ());
      m.Iter.seek "bb";
      Alcotest.(check int) (name ^ ": covered re-seek skipped") 1 !seeks;
      m.Iter.seek "d";
      Alcotest.(check int) (name ^ ": still skipped") 1 !seeks;
      Alcotest.(check bool) (name ^ ": all dead") false (m.Iter.valid ());
      m.Iter.seek "a";
      Alcotest.(check int) (name ^ ": lower seek revives") 2 !seeks;
      Alcotest.(check string) (name ^ ": revived key") "a" (m.Iter.key ()))
    engines

(* A next() that runs a source dry teaches a strict bound: seeking exactly
   the last emitted key must still re-seek (entries = that key exist), but
   seeking past it must not. *)
let merge_next_exhaustion_bound () =
  List.iter
    (fun (name, engine) ->
      let seeks = ref 0 in
      let base = Iter.of_sorted_list ~cmp:String.compare [ ("a", "1"); ("b", "2") ] in
      let counted = { base with Iter.seek = (fun t -> incr seeks; base.Iter.seek t) } in
      let m = engine ~cmp:String.compare [ counted ] in
      m.Iter.seek_to_first ();
      m.Iter.next ();
      m.Iter.next ();
      Alcotest.(check bool) (name ^ ": drained") false (m.Iter.valid ());
      Alcotest.(check int) (name ^ ": no seeks so far") 0 !seeks;
      m.Iter.seek "b";
      Alcotest.(check int) (name ^ ": seek at last key is real") 1 !seeks;
      Alcotest.(check string) (name ^ ": finds it") "b" (m.Iter.key ());
      m.Iter.next ();
      m.Iter.seek "bb";
      Alcotest.(check int) (name ^ ": seek past last key skipped") 1 !seeks)
    engines

(* ---------- Iter.clamp (half-open range views) ---------- *)

let simple_iter entries = Iter.of_sorted_list ~cmp:String.compare entries

let clamp_keys ?lo ?hi entries =
  let it = Iter.clamp ?lo ?hi ~cmp:String.compare (simple_iter entries) in
  List.map fst (Iter.to_list it)

let abc = [ ("a", "1"); ("b", "2"); ("c", "3"); ("d", "4"); ("e", "5") ]

let clamp_basic () =
  Alcotest.(check (list string)) "unclamped" [ "a"; "b"; "c"; "d"; "e" ]
    (clamp_keys abc);
  Alcotest.(check (list string)) "lo only" [ "c"; "d"; "e" ]
    (clamp_keys ~lo:"c" abc);
  Alcotest.(check (list string)) "hi only" [ "a"; "b" ] (clamp_keys ~hi:"c" abc);
  Alcotest.(check (list string)) "both" [ "b"; "c" ]
    (clamp_keys ~lo:"b" ~hi:"d" abc);
  Alcotest.(check (list string)) "lo between keys" [ "c"; "d"; "e" ]
    (clamp_keys ~lo:"bb" abc);
  Alcotest.(check (list string)) "hi between keys" [ "a"; "b"; "c" ]
    (clamp_keys ~hi:"cc" abc);
  Alcotest.(check (list string)) "empty window" [] (clamp_keys ~lo:"c" ~hi:"c" abc);
  Alcotest.(check (list string)) "window past end" []
    (clamp_keys ~lo:"x" ~hi:"z" abc);
  Alcotest.(check (list string)) "empty source" [] (clamp_keys ~lo:"a" ~hi:"z" [])

let clamp_seek () =
  let it = Iter.clamp ~lo:"b" ~hi:"d" ~cmp:String.compare (simple_iter abc) in
  (* seek below lo lands on lo *)
  it.Iter.seek "a";
  Alcotest.(check string) "seek below lo" "b" (it.Iter.key ());
  (* seek inside the window *)
  it.Iter.seek "c";
  Alcotest.(check string) "seek inside" "c" (it.Iter.key ());
  (* seek at/above hi is invalid *)
  it.Iter.seek "d";
  Alcotest.(check bool) "seek at hi invalid" false (it.Iter.valid ());
  (* next stops at hi and never advances the view past it *)
  it.Iter.seek_to_first ();
  it.Iter.next ();
  Alcotest.(check string) "next inside" "c" (it.Iter.key ());
  it.Iter.next ();
  Alcotest.(check bool) "next hits hi" false (it.Iter.valid ());
  it.Iter.next ();
  Alcotest.(check bool) "next after invalid stays invalid" false (it.Iter.valid ())

let clamp_user_key_partition () =
  (* Internal-key clamping at [make uk 0] boundaries partitions by user
     key: every version of a key lands in exactly one subrange. *)
  let entries =
    List.map
      (fun (k, ts) -> (Internal_key.make k ts, Printf.sprintf "%s@%d" k ts))
      [ ("a", 1); ("a", 9); ("b", 2); ("b", 7); ("c", 3) ]
  in
  let src () = Iter.of_sorted_list ~cmp:Internal_key.compare_encoded entries in
  let keys_of it =
    List.map
      (fun (ik, _) -> (Internal_key.user_key_of ik, Internal_key.ts_of ik))
      (Iter.to_list it)
  in
  let left =
    Iter.clamp ~hi:(Internal_key.make "b" 0) ~cmp:Internal_key.compare_encoded
      (src ())
  in
  let right =
    Iter.clamp ~lo:(Internal_key.make "b" 0) ~cmp:Internal_key.compare_encoded
      (src ())
  in
  Alcotest.(check (list (pair string int)))
    "left has every a-version" [ ("a", 1); ("a", 9) ] (keys_of left);
  Alcotest.(check (list (pair string int)))
    "right has every b- and c-version"
    [ ("b", 2); ("b", 7); ("c", 3) ]
    (keys_of right)

let prop_clamp_equals_filter =
  QCheck.Test.make ~name:"clamp = filter on [lo, hi)" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 30) (string_of_size Gen.(0 -- 4)))
        (string_of_size Gen.(0 -- 4))
        (string_of_size Gen.(0 -- 4)))
    (fun (raw, lo, hi) ->
      let entries =
        List.sort_uniq compare (List.map (fun k -> (k, k)) raw)
      in
      let got = clamp_keys ~lo ~hi entries in
      let expected =
        List.filter (fun (k, _) -> k >= lo && k < hi) entries |> List.map fst
      in
      got = expected)

(* ---------- Compaction.filter_group (GC policy) ---------- *)

let v ts = (ts, Entry.Value (string_of_int ts))
let tomb ts = (ts, Entry.Tombstone)

let check_filter name ~snapshots ~drop versions expected =
  Alcotest.(check (list int))
    name expected
    (Compaction.filter_group ~snapshots ~drop_tombstones:drop versions)

let gc_no_snapshots () =
  (* Only the newest survives. *)
  check_filter "plain" ~snapshots:[] ~drop:false [ v 1; v 5; v 9 ] [ 9 ];
  check_filter "single" ~snapshots:[] ~drop:false [ v 3 ] [ 3 ];
  check_filter "empty" ~snapshots:[] ~drop:false [] []

let gc_snapshot_pins () =
  (* Snapshot 5 pins version 5; snapshot 6 pins version 5 too. *)
  check_filter "pin exact" ~snapshots:[ 5 ] ~drop:false [ v 1; v 5; v 9 ] [ 5; 9 ];
  check_filter "pin between" ~snapshots:[ 6 ] ~drop:false [ v 1; v 5; v 9 ] [ 5; 9 ];
  check_filter "pin old" ~snapshots:[ 2 ] ~drop:false [ v 1; v 5; v 9 ] [ 1; 9 ];
  check_filter "pin below all" ~snapshots:[ 0 ] ~drop:false [ v 1; v 5 ] [ 5 ];
  check_filter "two snapshots" ~snapshots:[ 2; 6 ] ~drop:false
    [ v 1; v 5; v 9 ] [ 1; 5; 9 ];
  check_filter "same window" ~snapshots:[ 5; 6; 7 ] ~drop:false
    [ v 1; v 5; v 9 ] [ 5; 9 ]

let gc_tombstones () =
  (* Newest tombstone dropped at the bottom only when oldest survivor. *)
  check_filter "kept off bottom" ~snapshots:[] ~drop:false [ v 1; tomb 9 ] [ 9 ];
  check_filter "dropped at bottom" ~snapshots:[] ~drop:true [ v 1; tomb 9 ] [];
  (* A pinned older value blocks elision of nothing — the tombstone is not
     the oldest survivor, so it must stay to shadow the value. *)
  check_filter "value pinned, tombstone stays" ~snapshots:[ 1 ] ~drop:true
    [ v 1; tomb 9 ] [ 1; 9 ];
  (* Leading tombstones all go. *)
  check_filter "leading chain" ~snapshots:[ 3 ] ~drop:true
    [ tomb 2; tomb 3; v 9 ]
    [ 9 ];
  check_filter "tomb then value kept off bottom" ~snapshots:[ 3 ] ~drop:false
    [ tomb 2; tomb 3; v 9 ]
    [ 3; 9 ]

let prop_gc_keeps_snapshot_views =
  (* For every snapshot, the visible version before and after GC match. *)
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) (pair (int_range 1 30) bool))
        (list_of_size Gen.(0 -- 4) (int_range 0 35)))
  in
  QCheck.Test.make ~name:"GC preserves snapshot-visible versions" ~count:500 gen
    (fun (raw_versions, snapshots) ->
      let versions =
        List.sort_uniq (fun a b -> compare (fst a) (fst b)) raw_versions
        |> List.map (fun (ts, is_tomb) ->
               if is_tomb then tomb ts else v ts)
      in
      QCheck.assume (versions <> []);
      let kept =
        Compaction.filter_group ~snapshots ~drop_tombstones:false versions
      in
      let visible vs snap =
        List.fold_left
          (fun acc (ts, e) -> if ts <= snap then Some (ts, e) else acc)
          None vs
      in
      let kept_versions = List.filter (fun (ts, _) -> List.mem ts kept) versions in
      List.for_all
        (fun snap -> visible versions snap = visible kept_versions snap)
        (Internal_key.max_ts :: snapshots))

(* ---------- Manifest ---------- *)

let tmp_dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "clsm_test_lsm" in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let manifest_roundtrip () =
  let m =
    {
      Manifest.next_file_number = 42;
      last_ts = 99999;
      wal_number = 17;
      files = [ (0, 5); (0, 3); (1, 2); (2, 1) ];
      quarantined = [ 9; 4 ];
    }
  in
  Manifest.save ~dir:tmp_dir m;
  (match Manifest.load ~dir:tmp_dir () with
  | Some m' ->
      Alcotest.(check int) "next_file" 42 m'.Manifest.next_file_number;
      Alcotest.(check int) "last_ts" 99999 m'.Manifest.last_ts;
      Alcotest.(check int) "wal" 17 m'.Manifest.wal_number;
      Alcotest.(check (list (pair int int))) "files (order preserved)"
        m.Manifest.files m'.Manifest.files;
      Alcotest.(check (list int)) "quarantined (order preserved)"
        m.Manifest.quarantined m'.Manifest.quarantined
  | None -> Alcotest.fail "manifest missing");
  (* corruption detected *)
  let path = Table_file.manifest_path ~dir:tmp_dir in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let tampered = String.map (fun c -> if c = '4' then '5' else c) contents in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc tampered);
  (match Manifest.load ~dir:tmp_dir () with
  | exception Failure _ -> ()
  | Some _ -> Alcotest.fail "tampered manifest accepted"
  | None -> Alcotest.fail "tampered manifest vanished");
  Sys.remove path;
  Alcotest.(check bool) "absent manifest" true (Manifest.load ~dir:tmp_dir () = None)

(* ---------- Lsm_config ---------- *)

let level_budgets () =
  let cfg = Lsm_config.default in
  Alcotest.(check int) "L1" cfg.Lsm_config.level1_max_bytes
    (Lsm_config.max_bytes_for_level cfg 1);
  Alcotest.(check int) "L2"
    (cfg.Lsm_config.level1_max_bytes * cfg.Lsm_config.level_size_multiplier)
    (Lsm_config.max_bytes_for_level cfg 2);
  Alcotest.(check int) "L3"
    (cfg.Lsm_config.level1_max_bytes * 100)
    (Lsm_config.max_bytes_for_level cfg 3)

let suites =
  [
    ( "lsm.internal_key",
      [
        Alcotest.test_case "roundtrip" `Quick ikey_roundtrip;
        Alcotest.test_case "ordering" `Quick ikey_ordering;
      ] );
    ("lsm.internal_key.props", qtests [ prop_ikey_order_matches_pairs ]);
    ("lsm.entry", [ Alcotest.test_case "roundtrip" `Quick entry_roundtrip ]);
    ( "lsm.iter",
      [
        Alcotest.test_case "concat" `Quick iter_concat;
        Alcotest.test_case "merge basic" `Quick merge_basic;
        Alcotest.test_case "merge tie-break" `Quick merge_tie_break;
        Alcotest.test_case "merge skips dead-source seeks" `Quick
          merge_skips_dead_source_seeks;
        Alcotest.test_case "merge next-exhaustion bound" `Quick
          merge_next_exhaustion_bound;
      ] );
    ( "lsm.iter.props",
      qtests
        [
          prop_merge_equals_sort;
          prop_merge_seek;
          prop_merge_engines_agree;
          prop_merge_engines_agree_on_seeks;
        ] );
    ( "lsm.iter.clamp",
      [
        Alcotest.test_case "windows" `Quick clamp_basic;
        Alcotest.test_case "seek semantics" `Quick clamp_seek;
        Alcotest.test_case "user-key partition" `Quick clamp_user_key_partition;
      ] );
    ("lsm.iter.clamp.props", qtests [ prop_clamp_equals_filter ]);
    ( "lsm.gc",
      [
        Alcotest.test_case "no snapshots" `Quick gc_no_snapshots;
        Alcotest.test_case "snapshot pinning" `Quick gc_snapshot_pins;
        Alcotest.test_case "tombstone elision" `Quick gc_tombstones;
      ] );
    ("lsm.gc.props", qtests [ prop_gc_keeps_snapshot_views ]);
    ( "lsm.manifest",
      [ Alcotest.test_case "roundtrip + corruption" `Quick manifest_roundtrip ] );
    ("lsm.config", [ Alcotest.test_case "level budgets" `Quick level_budgets ]);
  ]
