(* Multi-site update reconciliation with vector clocks — the use case the
   paper cites for atomic read-modify-write (§1, §3.3, Dynamo-style [19]):
   several replication sites apply updates to the same keys concurrently;
   each update must atomically read the stored (clock, value), advance its
   site's component, and write back the merged clock. Lock-free RMW makes
   the reconciliation safe without per-key locks.

   Each stored value is "c0,c1,...,cn|payload" where ci is site i's clock
   component. The invariant checked at the end: every site's component
   equals the number of updates that site applied — impossible to maintain
   under lost updates.

   Run with:  dune exec examples/vector_clocks.exe *)

open Clsm_core

let sites = 3
let keys = 40
let updates_per_site = 2_000

let parse_clock v =
  match String.index_opt v '|' with
  | None -> (Array.make sites 0, "")
  | Some bar ->
      let clock =
        String.sub v 0 bar |> String.split_on_char ','
        |> List.map int_of_string |> Array.of_list
      in
      (clock, String.sub v (bar + 1) (String.length v - bar - 1))

let render_clock clock payload =
  String.concat "," (List.map string_of_int (Array.to_list clock))
  ^ "|" ^ payload

let site db site_id () =
  let rng = ref (site_id * 7919) in
  for u = 1 to updates_per_site do
    rng := (!rng * 1103515245) + 12345;
    let key = Printf.sprintf "item%03d" (abs !rng mod keys) in
    ignore
      (Db.rmw db ~key (fun stored ->
           let clock, _old_payload =
             match stored with
             | Some v -> parse_clock v
             | None -> (Array.make sites 0, "")
           in
           (* merge = component-wise max already stored; advance ours *)
           clock.(site_id) <- clock.(site_id) + 1;
           Db.Set
             (render_clock clock (Printf.sprintf "site%d-update%d" site_id u))))
  done;
  ()

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "clsm_vclocks" in
  let db = Db.open_store (Options.default ~dir) in
  let domains = List.init sites (fun i -> Domain.spawn (site db i)) in
  List.iter Domain.join domains;
  (* Sum each site's components across all keys. *)
  let totals = Array.make sites 0 in
  List.iter
    (fun (_, v) ->
      let clock, _ = parse_clock v in
      Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) clock)
    (Db.range ~start:"item" ~stop:"itemz" db);
  Array.iteri
    (fun i total ->
      Printf.printf "site %d: %d updates recorded (expected %d)\n" i total
        updates_per_site;
      assert (total = updates_per_site))
    totals;
  Db.close db;
  print_endline "vector_clocks: OK (no lost updates across sites)"
