(* The range-sharded skip-list store: [Options.shards] instances of
   {!Db} behind one {!Store_sig.S}, sharing one logical clock. *)

include Sharded_store.Make (Db)
