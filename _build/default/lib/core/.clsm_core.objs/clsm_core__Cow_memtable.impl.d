lib/core/cow_memtable.ml: Atomic Clsm_lsm Entry Internal_key Iter Map Mutex Seq String
