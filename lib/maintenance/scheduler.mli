(** Event-driven maintenance scheduler.

    Replaces the store's sleep-polling background domain with a pool of
    worker domains parked on a {!Clsm_primitives.Wakeup} cell. Write
    paths call {!wake} when they create work (memtable over its
    threshold, L0 pile-up, rotation); a ticker domain additionally
    signals every [tick_interval] as a fallback clock, so deferred work
    (e.g. a compaction that became eligible without any put noticing) is
    still picked up with bounded delay.

    The scheduler owns no job queue: [next] claims and returns the
    highest-priority runnable job under the caller's own bookkeeping,
    and [run] executes it and releases the claim. Workers loop
    [next]/[run] until [next] returns [None], then block on the wakeup
    cell. This keeps claim state (which levels are busy, whether a flush
    is in flight) next to the store where its invariants live, while the
    scheduler provides wakeup, parallelism and lifecycle. *)

type t

val create :
  ?num_workers:int ->
  ?tick_interval:float ->
  next:(unit -> Job.t option) ->
  run:(Job.t -> unit) ->
  unit ->
  t
(** [num_workers] defaults to [2]; [tick_interval] (seconds) defaults to
    [0.25]. [next] must be thread-safe and claim the job it returns;
    [run] must release the claim even on failure (exceptions escaping
    [run] are caught and logged by the worker). No domain is spawned
    until {!start}. *)

val start : t -> unit
(** Spawn the worker pool and the ticker. Idempotent. *)

val wake : t -> unit
(** Signal the workers that work may exist. Never blocks; safe from any
    domain; cheap when all workers are busy. *)

val stop : t -> unit
(** Ask workers to finish their current job, then join every domain.
    The ticker wakes within ~50 ms regardless of [tick_interval].
    Idempotent. After [stop], {!wake} is a no-op. *)

val jobs_run : t -> int
(** Total jobs executed (for stats and tests). *)

val wakes : t -> int
(** Total {!wake} signals delivered (for stats and tests). *)

val fan_out : (unit -> 'a) list -> ('a, exn) result list
(** Run the thunks concurrently and join them all: the first on the
    calling domain, each of the rest on a freshly spawned domain (n
    thunks cost n-1 spawns). Results are returned in input order;
    an exception inside a thunk becomes its [Error] — none is lost,
    none escapes. Used to fan a claimed compaction out into
    range-partitioned subcompactions without tying up other pool
    workers. *)
