(* Atomics outside the allowlisted module set: this module is not in
   (atomics_allowed ...). *)

let counter = Atomic.make 0 (* BAD: LC005 *)

let bump () = Atomic.incr counter (* BAD: LC005 *)
