lib/workload/ycsb.ml: Key_dist Workload_spec
