(** Key distributions used across the paper's experiments (§5.1–5.2). *)

type t

val uniform : int -> t
(** Keys drawn uniformly from [0, space): the write benchmark of Fig. 5
    ("keys are drawn uniformly at random from the entire range"). *)

val skewed_blocks : ?hot_fraction:float -> ?hot_probability:float -> int -> t
(** The read benchmark of Fig. 6: [hot_probability] (default 0.9) of keys
    come from "popular" blocks covering [hot_fraction] (default 0.1) of the
    space; the rest are uniform over the whole range. *)

val zipf : ?theta:float -> int -> t
(** Zipf(θ) over the space (default θ = 0.99, YCSB's default). *)

val sequential : int -> t
(** Monotonically increasing (bulk load). *)

val heavy_tail : int -> t
(** §5.2 production profile: ≈10 % of keys draw ≥75 % of requests, the top
    1–2 % draw ≥50 %, and ≈10 % of the space is touched once. *)

val next_index : t -> Rng.t -> int
(** Draw a key index in [0, space). *)

val space : t -> int

val key_of_index : ?key_len:int -> int -> string
(** Stable, sortable encoding of an index (zero-padded decimal, then
    repeated to [key_len] bytes — default 8, paper's synthetic key size). *)

val next_key : ?key_len:int -> t -> Rng.t -> string

val kind : t -> [ `Uniform | `Skewed_blocks | `Zipf | `Sequential | `Heavy_tail ]
(** Shape tag (used by the simulator's cache model). *)
