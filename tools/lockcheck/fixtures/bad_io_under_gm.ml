(* IO and sleeping under the group-commit mutex: gm is declared
   no-block, exactly the invariant the real leader preserves by dropping
   gm around the write. *)

type w = { w_append : string -> unit }
type t = { gm : Mutex.t; writer : w }

let bad_io t =
  Mutex.protect t.gm (fun () ->
      t.writer.w_append "payload" (* BAD: LC002 *))

let bad_sleep t =
  Mutex.protect t.gm (fun () ->
      Unix.sleepf 0.001 (* BAD: LC002 *))
