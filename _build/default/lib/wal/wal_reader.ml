type outcome = Clean | Torn_tail

let read_records path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let rec go pos acc =
    match Wal_record.decode contents ~pos with
    | `End -> (List.rev acc, Clean)
    | `Torn -> (List.rev acc, Torn_tail)
    | `Record (payload, next) -> go next (payload :: acc)
  in
  go 0 []
