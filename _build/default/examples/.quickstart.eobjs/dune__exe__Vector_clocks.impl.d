examples/vector_clocks.ml: Array Clsm_core Db Domain Filename List Options Printf String
