let () =
  Alcotest.run "clsm"
    (Test_util.suites @ Test_primitives.suites @ Test_skiplist.suites
     @ Test_sstable.suites @ Test_cache.suites @ Test_wal.suites @ Test_lsm.suites @ Test_version.suites @ Test_core.suites @ Test_features.suites @ Test_extensions.suites @ Test_db_model.suites @ Test_edge_cases.suites @ Test_cow_store.suites @ Test_misc.suites @ Test_fault.suites @ Test_selfheal.suites @ Test_baselines.suites @ Test_workload.suites @ Test_sim.suites @ Test_maintenance.suites @ Test_lincheck_unit.suites @ Test_sharded.suites)
