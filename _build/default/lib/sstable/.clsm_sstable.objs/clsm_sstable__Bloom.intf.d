lib/sstable/bloom.mli:
