type shape =
  | Uniform
  | Skewed_blocks of { hot_fraction : float; hot_probability : float }
  | Zipf of { theta : float; zeta_n : float }
  | Sequential of int Atomic.t
  | Heavy_tail

type t = { shape : shape; space : int }

let uniform space =
  if space <= 0 then invalid_arg "Key_dist.uniform";
  { shape = Uniform; space }

let skewed_blocks ?(hot_fraction = 0.1) ?(hot_probability = 0.9) space =
  if space <= 0 then invalid_arg "Key_dist.skewed_blocks";
  { shape = Skewed_blocks { hot_fraction; hot_probability }; space }

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf ?(theta = 0.99) space =
  if space <= 0 then invalid_arg "Key_dist.zipf";
  (* Exact zeta for small spaces; sampled approximation for large ones. *)
  let zeta_n =
    if space <= 1_000_000 then zeta space theta
    else
      (* Harmonic-style approximation: zeta(n) ≈ zeta(10^6) + integral tail. *)
      let base = zeta 1_000_000 theta in
      base
      +. (Float.pow (float_of_int space) (1.0 -. theta)
          -. Float.pow 1e6 (1.0 -. theta))
         /. (1.0 -. theta)
  in
  { shape = Zipf { theta; zeta_n }; space }

let sequential space = { shape = Sequential (Atomic.make 0); space }
let heavy_tail space =
  if space <= 0 then invalid_arg "Key_dist.heavy_tail";
  { shape = Heavy_tail; space }

let space t = t.space

(* Scramble so that "popular" indices are spread over the key space rather
   than clustered at the low end (popularity should not correlate with
   sort order). *)
let scramble t i = Clsm_util.Hashing.mix64 (i * 2654435761) mod t.space

(* Contiguous popular blocks (paper: "popular blocks that comprise 10% of
   the database") so hot traffic also exhibits block/cache locality. *)
let block_size = 256

let next_index t rng =
  match t.shape with
  | Uniform -> Rng.int rng t.space
  | Skewed_blocks { hot_fraction; hot_probability } ->
      if t.space <= block_size then Rng.int rng t.space
      else if Rng.bool rng hot_probability then begin
        let blocks = t.space / block_size in
        let stride = max 1 (int_of_float (1.0 /. hot_fraction)) in
        let hot_blocks = max 1 (blocks / stride) in
        let b = (Rng.int rng hot_blocks * stride) + (stride / 2) in
        min (t.space - 1) ((b * block_size) + Rng.int rng block_size)
      end
      else Rng.int rng t.space
  | Zipf { theta; zeta_n } ->
      (* YCSB's zipfian generator (Gray et al. CDF inversion). *)
      let n = float_of_int t.space in
      let alpha = 1.0 /. (1.0 -. theta) in
      let zeta2 = zeta 2 theta in
      let eta =
        (1.0 -. Float.pow (2.0 /. n) (1.0 -. theta))
        /. (1.0 -. (zeta2 /. zeta_n))
      in
      let u = Rng.float rng in
      let uz = u *. zeta_n in
      let rank =
        if uz < 1.0 then 0
        else if uz < 1.0 +. Float.pow 0.5 theta then 1
        else int_of_float (n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha)
      in
      scramble t (min rank (t.space - 1))
  | Sequential c -> Atomic.fetch_and_add c 1 mod t.space
  | Heavy_tail ->
      (* Three-band mixture matching §5.2:
         - 50% of requests hit the hottest 1.5% of keys
         - a further 27% hit the next 8.5% (top 10% ≥ 75%? 50+27=77%)
         - 13% hit the warm 30%
         - 10% hit cold keys, approximating the once-seen tail. *)
      let r = Rng.float rng in
      let band_start, band_frac =
        if r < 0.50 then (0.0, 0.015)
        else if r < 0.77 then (0.015, 0.085)
        else if r < 0.90 then (0.10, 0.30)
        else (0.40, 0.60)
      in
      let lo = int_of_float (float_of_int t.space *. band_start) in
      let width = max 1 (int_of_float (float_of_int t.space *. band_frac)) in
      scramble t (lo + Rng.int rng width)

let key_of_index ?(key_len = 8) i =
  let base = Printf.sprintf "%0*d" key_len i in
  if String.length base >= key_len then base
  else base ^ String.make (key_len - String.length base) '0'

let next_key ?key_len t rng = key_of_index ?key_len (next_index t rng)

let kind t =
  match t.shape with
  | Uniform -> `Uniform
  | Skewed_blocks _ -> `Skewed_blocks
  | Zipf _ -> `Zipf
  | Sequential _ -> `Sequential
  | Heavy_tail -> `Heavy_tail
