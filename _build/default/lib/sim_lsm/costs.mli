(** Calibration constants of the simulator (all times in seconds).

    The machine model mirrors the paper's testbed (§5): a 2-chip Xeon with
    8 physical cores / 16 hardware threads and an SSD RAID. Service times
    are fitted to the paper's single-thread rates and to microbenchmarks of
    this repository's real OCaml implementation ([bench/main.exe
    --calibrate]); what the models {e derive} (scaling knees, who wins,
    crossovers) comes from the disciplines, not from these numbers. *)

type t = {
  (* machine *)
  hw_threads : int;  (** CPU hardware contexts (16) *)
  physical_cores : int;  (** cores before hyperthread sharing (8) *)
  ht_factor : float;  (** compute-time multiplier when runnable > cores *)
  cross_chip_factor : float;
      (** memory-op multiplier when worker count spans both chips (> 8) *)
  (* in-memory operation service times (single-thread) *)
  mem_read : float;  (** skip-list / memtable search incl. Bloom checks *)
  mem_write : float;  (** skip-list insert + WAL enqueue *)
  scan_next : float;  (** per-key cost of iterator next *)
  snapshot_overhead : float;  (** getSnap bookkeeping *)
  mem_write_log_factor : float;
      (** added insert cost per doubling of memtable entries beyond 2^18 *)
  (* memory-system serialization: the part of each op that contends on the
     shared memory bus / allocator (per op + per value byte) *)
  bus_fixed_write : float;
  bus_fixed_read : float;
  bus_per_byte : float;
  (* synchronization *)
  leveldb_read_cs : float;  (** LevelDB read-path critical section *)
  leveldb_write_extra : float;  (** non-memtable work inside the writer CS *)
  hyper_write_cs : float;  (** HyperLevelDB residual serialized section *)
  rocksdb_write_cost : float;  (** RocksDB write-path service time *)
  rocksdb_read_factor : float;  (** RocksDB read slowdown vs LevelDB *)
  blsm_write_cost : float;
  handoff_penalty : float;  (** convoy cost per waiter on a mutex handoff *)
  clsm_cas_retry : float;
      (** per-concurrent-writer memory-system contention on the lock-free
          insert path (CAS retries, cache-line transfers, allocator) *)
  clsm_mv_per_byte : float;
      (** cLSM's multi-version bookkeeping cost per value byte (timestamped
          copies, version filtering) — why cLSM starts slightly behind the
          competition on large-value production workloads (Figure 10) *)
  merge_cs : float;  (** beforeMerge/afterMerge exclusive section *)
  (* storage *)
  disk_read : float;  (** one block-cache miss (SSD read) *)
  disk_write_bw : float;  (** sequential write bandwidth, bytes/s *)
  write_amplification : float;  (** long-run compaction bytes per flushed byte *)
  throttle_delay : float;  (** per-write delay under heavy compaction debt *)
  debt_threshold : float;  (** bytes of compaction debt that trigger throttling *)
}

val default : t
