(** The store's logical-time domain — the paper's [timeCounter], [Active]
    set, [snapTime] fence and active-snapshot registry — extracted from
    the store core so it can be {e shared}: several cLSM instances
    (range shards) drawing timestamps from one clock form a single
    serializable history, and one fenced snapshot timestamp is consistent
    across all of them.

    Every operation is safe from any domain; nothing here blocks except
    the bounded fence waits of {!snap_ts} and {!rmw_fence}, whose every
    wait iteration implies progress of some in-flight writer. *)

open Clsm_primitives

type t

val create : ?active_set_capacity:int -> unit -> t
(** A fresh clock at time 0 with an empty snapshot registry.
    [active_set_capacity] (default 4096) bounds concurrently in-flight
    timestamps, see {!Active_set}. *)

val now : t -> int
(** Current value of [timeCounter]. *)

val observe_recovered_ts : t -> int -> unit
(** Advance [timeCounter] to at least [ts] (CAS-max). Called by each
    store after recovery so fresh writes outrank everything persisted,
    regardless of the order shards recover in. *)

val get_ts : t -> int * Active_set.handle
(** Algorithm 2's [getTS] for RMW writers: a fresh timestamp registered
    in [Active], re-drawn while it falls at or below [snapTime]. Release
    with {!end_op}. *)

val get_put_ts : t -> int * Active_set.handle * Active_set.handle
(** [getTS] for blind writers (put/delete): additionally registered in
    the [put_active] subset that {!rmw_fence} drains. Release with
    {!end_put}. *)

val end_op : t -> Active_set.handle -> unit
val end_put : t -> active:Active_set.handle -> put:Active_set.handle -> unit

val batch_ts : t -> int
(** A bare timestamp with {e no} [Active] registration — only legal while
    the caller excludes every snapshot fence that could observe the
    written keys (the store's exclusive write-batch section; the shard
    router's lock against cross-shard [getSnap]). *)

val rmw_fence : t -> ts:int -> unit
(** The RMW in-flight fence: advance [snapTime] to [ts - 1] so any blind
    writer holding an older-but-unpublished timestamp re-draws, then
    drain [put_active] below [ts]. *)

type snapshot_mode =
  | Serializable  (** default: step below every in-flight write *)
  | Linearizable  (** §3.2.1 variant: omit lines 10–11 *)
  | Unsafe_naive  (** ABLATION ONLY: raw [timeCounter] read, racy *)

val snap_ts : t -> mode:snapshot_mode -> int
(** Algorithm 2's [getSnap] core: choose, fence and wait out a snapshot
    timestamp valid against every store on this clock. *)

val register_snapshot :
  t -> ?ttl:float -> now:float -> int -> Snapshot_registry.handle option
(** Pin [ts] in the registry compaction GC consults; [None] when
    [ts = 0] (nothing written yet — nothing to pin). *)

val release_snapshot : t -> Snapshot_registry.handle -> unit

val live_snapshots : t -> now:float -> int list
(** Live pinned timestamps, ascending — the GC floor for every store
    sharing this clock. *)
