(** Reader for table files written by {!Table_builder}: footer → index →
    Bloom-filtered, cache-backed block reads, with a seekable two-level
    iterator. Open tables are immutable and safe to share across domains. *)

exception Corrupt of string

type t

val open_file :
  ?cache:Block.t Cache.t ->
  ?env:Clsm_env.Env.t ->
  cmp:Comparator.t ->
  string ->
  t
(** Open and validate a table file through [env] (default
    {!Clsm_env.Env.unix}). The index, filter and properties blocks are
    loaded eagerly and held as direct references for the table's lifetime;
    when [cache] is provided the index block is additionally pinned into it
    and the filter/properties weight reserved, so this per-open-table RAM
    is charged to the cache budget and visible in {!Cache.stats} (released
    by {!close}). Data blocks are read on demand through [cache]. Raises
    {!Corrupt} or {!Clsm_env.Env.Error}. *)

val close : t -> unit
val path : t -> string
val properties : t -> Table_format.properties
val file_size : t -> int

val index_anchors : t -> (string * int) list
(** One [(last key, stored payload bytes)] pair per data block, in key
    order, straight from the in-memory index — no data-block IO. These
    are byte-weighted split-point candidates for range-partitioning a
    compaction's key space (RocksDB's approximate key anchors). *)

val may_contain : t -> string -> bool
(** Bloom-filter check. The argument is the {e filter key} (the value
    [filter_key_of] produced at build time, e.g. the user key). *)

val find_first_ge : t -> string -> (string * string) option
(** First binding with key [>= probe] under the table's comparator.
    Does not consult the Bloom filter (probe keys and filter keys differ);
    callers gate with {!may_contain}. *)

val find_last_le : t -> string -> (string * string) option
(** Last binding with key [<= probe] — the newest version not exceeding a
    snapshot timestamp when internal keys order timestamps ascending.
    Like {!find_first_ge}, not Bloom-gated. *)

module Iter : sig
  (** Two-level iterator with forward-scan readahead: after the first
      sequential block-to-block advance, the next K physically contiguous
      data blocks (K = [Cache.readahead_blocks] of the table's cache) are
      fetched in a single pread and decoded into the cache ahead of the
      scan. Seeks reset the sequential detector, so point reads never
      prefetch. Readahead failures are swallowed — the scan degrades to
      on-demand per-block reads, which carry their own verification and
      error reporting. *)

  type iter

  val make : t -> iter
  val seek_to_first : iter -> unit
  val seek : iter -> string -> unit
  val valid : iter -> bool
  val key : iter -> string
  val value : iter -> string
  val next : iter -> unit
end

val fold : (string -> string -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val to_list : t -> (string * string) list

val verify : t -> (int, string) result
(** Full integrity pass: re-read the index, bloom-filter and properties
    blocks from disk (bypassing the eagerly-loaded in-memory copies),
    decode every data block (checksums are validated on read), check
    strict key ordering under the comparator, and check the entry count
    and key range against the properties block. Returns the number of
    entries, or a description of the first inconsistency. *)

type scrub_progress = {
  blocks_checked : int;  (** blocks re-verified this slice *)
  next_block : int option;
      (** cursor to resume from; [None] when the pass completed *)
}

val scrub : ?from_block:int -> ?max_blocks:int -> t -> (scrub_progress, string) result
(** Incremental media check: re-read up to [max_blocks] blocks from disk
    starting at data-block cursor [from_block] (default 0), bypassing the
    block cache, verifying each CRC trailer and structural decode. A
    slice that starts at block 0 first re-verifies the footer-addressed
    auxiliary blocks (index, filter, properties — counted as three blocks
    against the budget). [Error] describes the first corrupt block,
    including its byte offset. *)
