examples/analytics_scan.ml: Atomic Clsm_core Db Domain Filename Hashtbl List Options Printf Scanf String
