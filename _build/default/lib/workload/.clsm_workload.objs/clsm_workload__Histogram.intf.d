lib/workload/histogram.mli:
