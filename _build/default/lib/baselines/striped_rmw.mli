(** The Figure 9 baseline: "a textbook RMW implementation based on lock
    striping [Gray & Reuter]. The algorithm protects each RMW and write
    operation with an exclusive granular lock to the accessed key" — here a
    fixed array of mutexes indexed by key hash, layered over the
    single-writer LevelDB-style store. Reads remain lock-free at this
    layer. *)

type t

val create : ?stripes:int -> Single_writer_store.t -> t
(** Default 1024 stripes. *)

val put : t -> key:string -> value:string -> unit
(** Write under the key's stripe lock (and then the store's global write
    mutex, as in the augmented LevelDB). *)

val delete : t -> key:string -> unit
val get : t -> string -> string option

type rmw_decision = Clsm_core.Db.rmw_decision = Set of string | Remove | Abort

val rmw : t -> key:string -> (string option -> rmw_decision) -> string option
val put_if_absent : t -> key:string -> value:string -> bool
val store : t -> Single_writer_store.t
