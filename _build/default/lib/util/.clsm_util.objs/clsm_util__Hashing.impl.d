lib/util/hashing.ml: Binary Char String
