open Clsm_util
module Env = Clsm_env.Env

type t = {
  cmp : Comparator.t;
  block_size : int;
  bits_per_key : int;
  compress : bool;
  filter_key_of : string -> string;
  path : string; (* final path; the builder writes to [tmp_path] *)
  tmp_path : string;
  env : Env.t;
  writer : Env.writer;
  data : Block_builder.t;
  index : Block_builder.t;
  mutable offset : int;
  mutable pending_index : (string * Block_handle.t) option;
  mutable filter_keys : string list; (* reversed, consecutive-deduped *)
  mutable entries : int;
  mutable smallest : string;
  mutable largest : string;
  mutable last_key : string option;
  mutable finished : bool;
}

(* Crash safety: the table is built at [path ^ ".tmp"] and renamed to its
   final name only after the full contents are fsynced, so a [.sst] that
   exists is always complete; a crash mid-build leaves only a [.tmp] file
   that recovery deletes. *)
let create ?(block_size = 4096) ?(restart_interval = 16) ?(bits_per_key = 10)
    ?(compress = false) ?(filter_key_of = Fun.id) ?(env = Env.unix) ~cmp ~path
    () =
  if block_size < 64 then invalid_arg "Table_builder.create: block_size";
  let tmp_path = path ^ ".tmp" in
  {
    cmp;
    block_size;
    bits_per_key;
    compress;
    filter_key_of;
    path;
    tmp_path;
    env;
    writer = env.Env.create_writer tmp_path;
    data = Block_builder.create ~restart_interval ();
    index = Block_builder.create ~restart_interval:1 ();
    offset = 0;
    pending_index = None;
    filter_keys = [];
    entries = 0;
    smallest = "";
    largest = "";
    last_key = None;
    finished = false;
  }

(* Write [payload] followed by the 5-byte trailer (compression type byte +
   masked CRC over payload+type); return its handle. Compression is applied
   only when it actually shrinks the block. *)
let emit_block ?(try_compress = false) t payload =
  let payload, block_type =
    if try_compress then begin
      let packed = Simple_compress.compress payload in
      if String.length packed < String.length payload then (packed, '\001')
      else (payload, '\000')
    end
    else (payload, '\000')
  in
  let handle = { Block_handle.offset = t.offset; size = String.length payload } in
  t.writer.Env.w_append payload;
  let trailer = Buffer.create Table_format.block_trailer_length in
  Buffer.add_char trailer block_type;
  let crc =
    Crc32c.string ~init:(Crc32c.string payload) (String.make 1 block_type)
  in
  Binary.write_fixed32 trailer (Crc32c.mask crc);
  t.writer.Env.w_append (Buffer.contents trailer);
  t.offset <-
    t.offset + String.length payload + Table_format.block_trailer_length;
  handle

let flush_data_block t =
  if not (Block_builder.is_empty t.data) then begin
    let last =
      match Block_builder.last_key t.data with
      | Some k -> k
      | None -> assert false
    in
    let payload = Block_builder.finish t.data in
    let handle = emit_block ~try_compress:t.compress t payload in
    Block_builder.reset t.data;
    t.pending_index <- Some (last, handle)
  end

let write_pending_index t =
  match t.pending_index with
  | None -> ()
  | Some (last, handle) ->
      let buf = Buffer.create 16 in
      Block_handle.encode buf handle;
      Block_builder.add t.index ~key:last ~value:(Buffer.contents buf);
      t.pending_index <- None

let add t ~key ~value =
  if t.finished then invalid_arg "Table_builder.add: finished";
  (match t.last_key with
  | Some last when t.cmp.Comparator.compare last key >= 0 ->
      invalid_arg "Table_builder.add: keys not strictly increasing"
  | Some _ | None -> ());
  write_pending_index t;
  if t.entries = 0 then t.smallest <- key;
  t.largest <- key;
  t.last_key <- Some key;
  t.entries <- t.entries + 1;
  let fkey = t.filter_key_of key in
  (match t.filter_keys with
  | prev :: _ when String.equal prev fkey -> ()
  | _ -> t.filter_keys <- fkey :: t.filter_keys);
  Block_builder.add t.data ~key ~value;
  if Block_builder.estimated_size t.data >= t.block_size then
    flush_data_block t

let num_entries t = t.entries

let estimated_file_size t =
  t.offset + Block_builder.estimated_size t.data

let finish t =
  if t.finished then invalid_arg "Table_builder.finish: already finished";
  t.finished <- true;
  flush_data_block t;
  write_pending_index t;
  let data_bytes = t.offset in
  let filter = Bloom.create ~bits_per_key:t.bits_per_key t.filter_keys in
  let filter_handle = emit_block t (Bloom.encode filter) in
  let props =
    {
      Table_format.num_entries = t.entries;
      data_bytes;
      smallest = t.smallest;
      largest = t.largest;
    }
  in
  let props_handle = emit_block t (Table_format.encode_properties props) in
  let index_handle = emit_block t (Block_builder.finish t.index) in
  t.writer.Env.w_append
    (Table_format.encode_footer
       { Table_format.filter_handle; props_handle; index_handle });
  (* Publish order: contents durable first, then the rename that makes the
     table visible under its final name. *)
  t.writer.Env.w_fsync ();
  t.writer.Env.w_close ();
  t.env.Env.rename ~src:t.tmp_path ~dst:t.path;
  props

let abandon t =
  t.finished <- true;
  t.writer.Env.w_close ();
  try t.env.Env.remove t.tmp_path with _ -> ()
