lib/sim_lsm/sim_store.ml: Clsm_sim Clsm_workload Costs Engine Float Key_dist Option Proc Queue Resource Rng Sim_mutex Sim_shared_lock System Workload_spec
