open Clsm_util
module Env = Clsm_env.Env

type t = {
  next_file_number : int;
  last_ts : int;
  wal_number : int;
  files : (int * int) list;
  quarantined : int list;
}

let body t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "clsm-manifest v1\n";
  Buffer.add_string buf (Printf.sprintf "next_file %d\n" t.next_file_number);
  Buffer.add_string buf (Printf.sprintf "last_ts %d\n" t.last_ts);
  Buffer.add_string buf (Printf.sprintf "wal %d\n" t.wal_number);
  List.iter
    (fun (level, number) ->
      Buffer.add_string buf (Printf.sprintf "file %d %d\n" level number))
    t.files;
  (* Quarantined tables are named so recovery neither opens them (they
     failed a checksum) nor collects them as orphans (a repair may still
     want the evidence). *)
  List.iter
    (fun number ->
      Buffer.add_string buf (Printf.sprintf "quarantine %d\n" number))
    t.quarantined;
  Buffer.contents buf

let save ?(env = Env.unix) ~dir t =
  let contents = body t in
  let contents =
    contents ^ Printf.sprintf "crc %08x\n" (Crc32c.string contents)
  in
  let path = Table_file.manifest_path ~dir in
  let tmp = path ^ ".tmp" in
  let w = env.Env.create_writer tmp in
  (* Contents must be durable before the rename publishes them; a failure
     leaves only the [.tmp] file, which recovery deletes. *)
  Fun.protect
    ~finally:(fun () -> w.Env.w_close ())
    (fun () ->
      w.Env.w_append contents;
      w.Env.w_fsync ());
  env.Env.rename ~src:tmp ~dst:path

let load ?(env = Env.unix) ~dir () =
  let path = Table_file.manifest_path ~dir in
  if not (env.Env.file_exists path) then None
  else begin
    let contents = env.Env.read_file path in
    let lines = String.split_on_char '\n' contents in
    let rec split_crc acc = function
      | [ crc_line; "" ] | [ crc_line ] -> (List.rev acc, crc_line)
      | line :: rest -> split_crc (line :: acc) rest
      | [] -> failwith "manifest: empty"
    in
    let body_lines, crc_line = split_crc [] lines in
    let body_str = String.concat "\n" body_lines ^ "\n" in
    (match String.split_on_char ' ' crc_line with
    | [ "crc"; hex ] ->
        if int_of_string ("0x" ^ hex) <> Crc32c.string body_str then
          failwith "manifest: checksum mismatch"
    | _ -> failwith "manifest: missing checksum");
    let next_file_number = ref 0
    and last_ts = ref 0
    and wal_number = ref 0
    and files = ref []
    and quarantined = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "clsm-manifest"; "v1" ] -> ()
        | [ "next_file"; n ] -> next_file_number := int_of_string n
        | [ "last_ts"; n ] -> last_ts := int_of_string n
        | [ "wal"; n ] -> wal_number := int_of_string n
        | [ "file"; level; number ] ->
            files := (int_of_string level, int_of_string number) :: !files
        | [ "quarantine"; number ] ->
            quarantined := int_of_string number :: !quarantined
        | [ "" ] | [] -> ()
        | _ -> failwith ("manifest: bad line: " ^ line))
      body_lines;
    Some
      {
        next_file_number = !next_file_number;
        last_ts = !last_ts;
        wal_number = !wal_number;
        files = List.rev !files;
        quarantined = List.rev !quarantined;
      }
  end
