type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable generation : int;
  mutable waiting : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    generation = 0;
    waiting = 0;
  }

let current t =
  Mutex.lock t.mutex;
  let g = t.generation in
  Mutex.unlock t.mutex;
  g

let signal t =
  Mutex.lock t.mutex;
  t.generation <- t.generation + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let wait t ~seen =
  Mutex.lock t.mutex;
  t.waiting <- t.waiting + 1;
  while t.generation = seen do
    Condition.wait t.cond t.mutex
  done;
  t.waiting <- t.waiting - 1;
  let g = t.generation in
  Mutex.unlock t.mutex;
  g

let waiters t =
  Mutex.lock t.mutex;
  let w = t.waiting in
  Mutex.unlock t.mutex;
  w
