lib/sstable/bloom.ml: Bytes Char Clsm_util Hashing List String
