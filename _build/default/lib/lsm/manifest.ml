open Clsm_util

type t = {
  next_file_number : int;
  last_ts : int;
  wal_number : int;
  files : (int * int) list;
}

let body t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "clsm-manifest v1\n";
  Buffer.add_string buf (Printf.sprintf "next_file %d\n" t.next_file_number);
  Buffer.add_string buf (Printf.sprintf "last_ts %d\n" t.last_ts);
  Buffer.add_string buf (Printf.sprintf "wal %d\n" t.wal_number);
  List.iter
    (fun (level, number) ->
      Buffer.add_string buf (Printf.sprintf "file %d %d\n" level number))
    t.files;
  Buffer.contents buf

let save ~dir t =
  let contents = body t in
  let contents =
    contents ^ Printf.sprintf "crc %08x\n" (Crc32c.string contents)
  in
  let path = Table_file.manifest_path ~dir in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc contents;
  flush oc;
  Unix.fsync fd;
  close_out oc;
  Unix.rename tmp path

let load ~dir =
  let path = Table_file.manifest_path ~dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' contents in
    let rec split_crc acc = function
      | [ crc_line; "" ] | [ crc_line ] -> (List.rev acc, crc_line)
      | line :: rest -> split_crc (line :: acc) rest
      | [] -> failwith "manifest: empty"
    in
    let body_lines, crc_line = split_crc [] lines in
    let body_str = String.concat "\n" body_lines ^ "\n" in
    (match String.split_on_char ' ' crc_line with
    | [ "crc"; hex ] ->
        if int_of_string ("0x" ^ hex) <> Crc32c.string body_str then
          failwith "manifest: checksum mismatch"
    | _ -> failwith "manifest: missing checksum");
    let next_file_number = ref 0
    and last_ts = ref 0
    and wal_number = ref 0
    and files = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "clsm-manifest"; "v1" ] -> ()
        | [ "next_file"; n ] -> next_file_number := int_of_string n
        | [ "last_ts"; n ] -> last_ts := int_of_string n
        | [ "wal"; n ] -> wal_number := int_of_string n
        | [ "file"; level; number ] ->
            files := (int_of_string level, int_of_string number) :: !files
        | [ "" ] | [] -> ()
        | _ -> failwith ("manifest: bad line: " ^ line))
      body_lines;
    Some
      {
        next_file_number = !next_file_number;
        last_ts = !last_ts;
        wal_number = !wal_number;
        files = List.rev !files;
      }
  end
