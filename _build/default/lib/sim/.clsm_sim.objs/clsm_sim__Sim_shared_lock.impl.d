lib/sim/sim_shared_lock.ml: Engine Queue
