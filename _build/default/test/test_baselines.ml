open Clsm_baselines
module S = Single_writer_store

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_base_%d_%d" (Unix.getpid ()) !counter)

let small_opts dir =
  {
    (Clsm_core.Options.default ~dir) with
    Clsm_core.Options.memtable_bytes = 16 * 1024;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        Clsm_core.Options.(default ~dir).lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 16 * 1024;
        block_size = 1024;
      };
  }

let with_store f =
  let dir = fresh_dir () in
  let st = S.open_store (small_opts dir) in
  match f st dir with
  | r ->
      S.close st;
      r
  | exception e ->
      S.close st;
      raise e

let basic_roundtrip () =
  with_store (fun st _ ->
      S.put st ~key:"a" ~value:"1";
      S.put st ~key:"b" ~value:"2";
      Alcotest.(check (option string)) "get a" (Some "1") (S.get st "a");
      S.delete st ~key:"a";
      Alcotest.(check (option string)) "deleted" None (S.get st "a");
      S.put st ~key:"b" ~value:"2b";
      Alcotest.(check (option string)) "overwrite" (Some "2b") (S.get st "b"))

let through_compaction () =
  with_store (fun st _ ->
      for i = 0 to 999 do
        S.put st ~key:(Printf.sprintf "k%05d" i) ~value:(string_of_int i)
      done;
      S.compact_now st;
      let missing = ref 0 in
      for i = 0 to 999 do
        if S.get st (Printf.sprintf "k%05d" i) <> Some (string_of_int i) then
          incr missing
      done;
      Alcotest.(check int) "all on disk" 0 !missing;
      Alcotest.(check bool) "files exist" true
        (List.exists (fun c -> c > 0) (S.level_file_counts st)))

let snapshots_and_ranges () =
  with_store (fun st _ ->
      S.put st ~key:"x" ~value:"old";
      let snap = S.get_snap st in
      S.put st ~key:"x" ~value:"new";
      S.put st ~key:"y" ~value:"later";
      Alcotest.(check (option string)) "snapshot value" (Some "old")
        (S.get_at st snap "x");
      Alcotest.(check (list (pair string string)))
        "snapshot range"
        [ ("x", "old") ]
        (S.range ~snapshot:snap st);
      S.release_snapshot st snap;
      Alcotest.(check (list (pair string string)))
        "live range"
        [ ("x", "new"); ("y", "later") ]
        (S.range st))

let recovery () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let st = S.open_store opts in
  for i = 0 to 299 do
    S.put st ~key:(Printf.sprintf "k%04d" i) ~value:"v"
  done;
  S.close st;
  let st = S.open_store opts in
  Alcotest.(check (option string)) "recovered" (Some "v") (S.get st "k0042");
  S.close st

let serialized_writers_are_safe () =
  with_store (fun st _ ->
      let n = 1_000 in
      let writer tag () =
        for i = 0 to n - 1 do
          S.put st ~key:(Printf.sprintf "%c%05d" tag i) ~value:(String.make 8 tag)
        done
      in
      List.map Domain.spawn [ writer 'a'; writer 'b'; writer 'c' ]
      |> List.iter Domain.join;
      let missing = ref 0 in
      List.iter
        (fun tag ->
          for i = 0 to n - 1 do
            if S.get st (Printf.sprintf "%c%05d" tag i) = None then incr missing
          done)
        [ 'a'; 'b'; 'c' ];
      Alcotest.(check int) "no lost writes" 0 !missing)

(* ---------- Striped RMW ---------- *)

let striped_counter_no_lost_updates () =
  let dir = fresh_dir () in
  let st = S.open_store (small_opts dir) in
  let striped = Striped_rmw.create st in
  let per = 600 in
  let worker () =
    for _ = 1 to per do
      ignore
        (Striped_rmw.rmw striped ~key:"ctr" (fun v ->
             let n = match v with Some s -> int_of_string s | None -> 0 in
             Striped_rmw.Set (string_of_int (n + 1))))
    done
  in
  List.map Domain.spawn [ worker; worker; worker ] |> List.iter Domain.join;
  Alcotest.(check (option string)) "counter exact"
    (Some (string_of_int (3 * per)))
    (Striped_rmw.get striped "ctr");
  S.close st

let striped_put_if_absent () =
  let dir = fresh_dir () in
  let st = S.open_store (small_opts dir) in
  let striped = Striped_rmw.create st in
  Alcotest.(check bool) "first" true
    (Striped_rmw.put_if_absent striped ~key:"k" ~value:"a");
  Alcotest.(check bool) "second" false
    (Striped_rmw.put_if_absent striped ~key:"k" ~value:"b");
  Alcotest.(check (option string)) "kept first" (Some "a")
    (Striped_rmw.get striped "k");
  Striped_rmw.delete striped ~key:"k";
  Alcotest.(check (option string)) "deleted" None (Striped_rmw.get striped "k");
  S.close st

(* ---------- cLSM vs baseline agreement ---------- *)

let stores_agree_on_random_history () =
  let dir1 = fresh_dir () and dir2 = fresh_dir () in
  let clsm = Clsm_core.Db.open_store (small_opts dir1) in
  let sw = S.open_store (small_opts dir2) in
  let rng = Clsm_workload.Rng.create 99 in
  for _ = 1 to 3_000 do
    let key = Printf.sprintf "k%03d" (Clsm_workload.Rng.int rng 200) in
    if Clsm_workload.Rng.bool rng 0.25 then begin
      Clsm_core.Db.delete clsm ~key;
      S.delete sw ~key
    end
    else begin
      let value = Printf.sprintf "v%d" (Clsm_workload.Rng.int rng 10_000) in
      Clsm_core.Db.put clsm ~key ~value;
      S.put sw ~key ~value
    end
  done;
  Clsm_core.Db.compact_now clsm;
  S.compact_now sw;
  Alcotest.(check (list (pair string string)))
    "identical contents" (S.range sw) (Clsm_core.Db.range clsm);
  Clsm_core.Db.close clsm;
  S.close sw

let suites =
  [
    ( "baselines.single_writer",
      [
        Alcotest.test_case "roundtrip" `Quick basic_roundtrip;
        Alcotest.test_case "through compaction" `Quick through_compaction;
        Alcotest.test_case "snapshots and ranges" `Quick snapshots_and_ranges;
        Alcotest.test_case "recovery" `Quick recovery;
        Alcotest.test_case "concurrent writers" `Quick serialized_writers_are_safe;
      ] );
    ( "baselines.striped_rmw",
      [
        Alcotest.test_case "no lost updates" `Quick striped_counter_no_lost_updates;
        Alcotest.test_case "put-if-absent" `Quick striped_put_if_absent;
      ] );
    ( "baselines.equivalence",
      [
        Alcotest.test_case "agrees with cLSM on random history" `Quick
          stores_agree_on_random_history;
      ] );
  ]
