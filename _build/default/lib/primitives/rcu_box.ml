type 'a t = 'a Refcounted.t Atomic.t

let create cell = Atomic.make cell

let acquire t =
  let b = Backoff.create () in
  let rec loop () =
    let cell = Atomic.get t in
    if Refcounted.try_incr cell then
      (* Re-validate: if the pointer moved while we were incrementing, the
         reference we took may be to a retired component — undo and retry. *)
      if Atomic.get t == cell then cell
      else begin
        Refcounted.decr cell;
        loop ()
      end
    else begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let peek t = Atomic.get t

let swap t cell = Atomic.exchange t cell

let with_ref t f =
  let cell = acquire t in
  match f (Refcounted.value cell) with
  | v ->
      Refcounted.decr cell;
      v
  | exception e ->
      Refcounted.decr cell;
      raise e
