lib/primitives/shared_lock.ml: Atomic Backoff
