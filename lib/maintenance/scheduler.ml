open Clsm_primitives

let src = Logs.Src.create "clsm.maintenance" ~doc:"cLSM maintenance scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  wakeup : Wakeup.t;
  stopping : bool Atomic.t;
  num_workers : int;
  tick_interval : float;
  next : unit -> Job.t option;
  run : Job.t -> unit;
  jobs : int Atomic.t;
  wake_signals : int Atomic.t;
  mutable domains : unit Domain.t list;
  lifecycle : Mutex.t; (* serializes start/stop *)
  mutable started : bool;
}

let create ?(num_workers = 2) ?(tick_interval = 0.25) ~next ~run () =
  if num_workers < 1 then invalid_arg "Scheduler.create: num_workers < 1";
  {
    wakeup = Wakeup.create ();
    stopping = Atomic.make false;
    num_workers;
    tick_interval;
    next;
    run;
    jobs = Atomic.make 0;
    wake_signals = Atomic.make 0;
    domains = [];
    lifecycle = Mutex.create ();
    started = false;
  }

let worker_loop t id =
  let rec go seen =
    if Atomic.get t.stopping then ()
    else
      match t.next () with
      | Some job ->
          Atomic.incr t.jobs;
          (try t.run job
           with e ->
             Log.err (fun m ->
                 m "worker %d: %a raised %s" id Job.pp job (Printexc.to_string e)));
          go (Wakeup.current t.wakeup)
      | None -> go (Wakeup.wait t.wakeup ~seen)
      | exception e ->
          Log.err (fun m ->
              m "worker %d: next raised %s" id (Printexc.to_string e));
          go (Wakeup.wait t.wakeup ~seen)
  in
  go (Wakeup.current t.wakeup)

(* The fallback clock. Sleeps in small slices so [stop] never waits a
   full (possibly long) tick to join this domain. *)
let ticker_loop t =
  let slice = 0.05 in
  while not (Atomic.get t.stopping) do
    let deadline = Unix.gettimeofday () +. t.tick_interval in
    let rec nap () =
      if not (Atomic.get t.stopping) then begin
        let left = deadline -. Unix.gettimeofday () in
        if left > 0. then begin
          Unix.sleepf (Float.min slice left);
          nap ()
        end
      end
    in
    nap ();
    if not (Atomic.get t.stopping) then Wakeup.signal t.wakeup
  done

let start t =
  Mutex.protect t.lifecycle (fun () ->
      if not t.started then begin
        t.started <- true;
        let workers =
          List.init t.num_workers (fun id ->
              Domain.spawn (fun () -> worker_loop t id))
        in
        let ticker = Domain.spawn (fun () -> ticker_loop t) in
        t.domains <- ticker :: workers
      end)

let wake t =
  if not (Atomic.get t.stopping) then begin
    Atomic.incr t.wake_signals;
    Wakeup.signal t.wakeup
  end

let stop t =
  Mutex.protect t.lifecycle (fun () ->
      if not (Atomic.exchange t.stopping true) then begin
        Wakeup.signal t.wakeup;
        List.iter Domain.join t.domains;
        t.domains <- []
      end)

let jobs_run t = Atomic.get t.jobs
let wakes t = Atomic.get t.wake_signals

(* Bounded fork-join for subtasks of one maintenance job (range-
   partitioned subcompactions): thunks beyond the first each get a fresh
   domain, the first runs on the calling worker domain so a fan-out of n
   costs n-1 spawns and the worker is never idle while its children
   run. Exceptions are captured per-thunk, never lost: the caller
   decides whether one failure aborts the whole job. *)
let fan_out thunks =
  let wrap f = try Ok (f ()) with e -> Error e in
  match thunks with
  | [] -> []
  | [ f ] -> [ wrap f ]
  | first :: rest ->
      let children =
        List.map (fun f -> Domain.spawn (fun () -> wrap f)) rest
      in
      let r0 = wrap first in
      r0 :: List.map Domain.join children
