open Clsm_util

exception Corrupt of string

type t = {
  data : string;
  limit : int; (* end of entry region / start of restart array *)
  num_restarts : int;
  cmp : Comparator.t;
}

let parse cmp data =
  let n = String.length data in
  if n < 4 then raise (Corrupt "block too small");
  let num_restarts = Binary.get_fixed32 data ~pos:(n - 4) in
  let trailer = 4 + (4 * num_restarts) in
  if num_restarts < 1 || trailer > n then raise (Corrupt "bad restart count");
  { data; limit = n - trailer; num_restarts; cmp }

let num_restarts t = t.num_restarts
let size_bytes t = String.length t.data

let restart_offset t i =
  Binary.get_fixed32 t.data ~pos:(String.length t.data - 4 - (4 * (t.num_restarts - i)))

module Iter = struct
  type iter = {
    block : t;
    mutable offset : int; (* start of current entry, or limit when done *)
    mutable next_offset : int;
    mutable cur_key : string;
    mutable cur_value_pos : int;
    mutable cur_value_len : int;
    mutable is_valid : bool;
  }

  let make block =
    {
      block;
      offset = block.limit;
      next_offset = block.limit;
      cur_key = "";
      cur_value_pos = 0;
      cur_value_len = 0;
      is_valid = false;
    }

  let valid it = it.is_valid

  let key it =
    if not it.is_valid then invalid_arg "Block.Iter.key: invalid iterator";
    it.cur_key

  let value it =
    if not it.is_valid then invalid_arg "Block.Iter.value: invalid iterator";
    String.sub it.block.data it.cur_value_pos it.cur_value_len

  (* Decode the entry at [it.next_offset], using [it.cur_key] as the prefix
     source. *)
  let decode_next it =
    let b = it.block in
    if it.next_offset >= b.limit then it.is_valid <- false
    else begin
      let pos = it.next_offset in
      let shared, pos =
        try Varint.read b.data ~pos with Varint.Corrupt m -> raise (Corrupt m)
      in
      let non_shared, pos = Varint.read b.data ~pos in
      let value_len, pos = Varint.read b.data ~pos in
      if pos + non_shared + value_len > b.limit then
        raise (Corrupt "entry overruns block");
      if shared > String.length it.cur_key then
        raise (Corrupt "shared prefix longer than previous key");
      it.cur_key <-
        String.sub it.cur_key 0 shared ^ String.sub b.data pos non_shared;
      it.cur_value_pos <- pos + non_shared;
      it.cur_value_len <- value_len;
      it.offset <- it.next_offset;
      it.next_offset <- it.cur_value_pos + value_len;
      it.is_valid <- true
    end

  let seek_to_restart it i =
    it.next_offset <- restart_offset it.block i;
    it.cur_key <- "";
    it.is_valid <- false

  let seek_to_first it =
    seek_to_restart it 0;
    decode_next it

  let next it = if it.is_valid then decode_next it

  (* Key at a restart point (always stored in full). *)
  let restart_key b i =
    let pos = restart_offset b i in
    let shared, pos = Varint.read b.data ~pos in
    if shared <> 0 then raise (Corrupt "restart entry has shared bytes");
    let non_shared, pos = Varint.read b.data ~pos in
    let _value_len, pos = Varint.read b.data ~pos in
    String.sub b.data pos non_shared

  let seek it target =
    let b = it.block in
    let cmp = b.cmp.Comparator.compare in
    (* Binary search: greatest restart i whose key is < target. *)
    let lo = ref 0 and hi = ref (b.num_restarts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if cmp (restart_key b mid) target < 0 then lo := mid else hi := mid - 1
    done;
    seek_to_restart it !lo;
    decode_next it;
    while it.is_valid && cmp it.cur_key target < 0 do
      decode_next it
    done

  (* Starting from the current position, keep advancing while [keep] holds
     for the decoded entry, leaving the iterator on the last entry that
     satisfied it (invalid if none did). *)
  let scan_keeping_last it keep =
    if not (it.is_valid && keep it.cur_key) then it.is_valid <- false
    else
      (* Invariant: the current entry satisfies [keep]. Step forward until
         the next entry does not, then restore the last accepted one. *)
      let rec go () =
        let offset = it.offset
        and next_offset = it.next_offset
        and key = it.cur_key
        and vpos = it.cur_value_pos
        and vlen = it.cur_value_len in
        decode_next it;
        if it.is_valid && keep it.cur_key then go ()
        else begin
          it.offset <- offset;
          it.next_offset <- next_offset;
          it.cur_key <- key;
          it.cur_value_pos <- vpos;
          it.cur_value_len <- vlen;
          it.is_valid <- true
        end
      in
      go ()

  let seek_le it target =
    let b = it.block in
    let cmp = b.cmp.Comparator.compare in
    (* Greatest restart i whose key is <= target. *)
    if cmp (restart_key b 0) target > 0 then it.is_valid <- false
    else begin
      let lo = ref 0 and hi = ref (b.num_restarts - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if cmp (restart_key b mid) target <= 0 then lo := mid else hi := mid - 1
      done;
      seek_to_restart it !lo;
      decode_next it;
      scan_keeping_last it (fun k -> cmp k target <= 0)
    end

  let seek_last it =
    seek_to_restart it (it.block.num_restarts - 1);
    decode_next it;
    scan_keeping_last it (fun _ -> true)

  let fold f block acc =
    let it = make block in
    seek_to_first it;
    let rec go acc =
      if it.is_valid then begin
        let k = key it and v = value it in
        next it;
        go (f k v acc)
      end
      else acc
    in
    go acc
end
