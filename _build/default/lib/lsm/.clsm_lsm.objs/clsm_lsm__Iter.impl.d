lib/lsm/iter.ml: Array Clsm_sstable List
