lib/workload/store_ops.ml: Clsm_baselines Clsm_core Mutex
