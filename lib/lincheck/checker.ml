type violation = {
  vkey : string;
  witness : History.event list;
  total_events : int;
}

type result = {
  keys_checked : int;
  events_checked : int;
  violations : violation list;
  inconclusive : string list;
}

(* One linearization step: [Some state'] if [op] is legal on [state]. *)
let apply state (op : History.op) =
  match op with
  | History.Get r -> if r = state then Some state else None
  | History.Put v -> Some (Some v)
  | History.Delete -> Some None
  | History.Rmw { pre; decision } ->
      if pre <> state then None
      else
        Some
          (match decision with
          | History.Set v -> Some v
          | History.Remove -> None
          | History.Abort -> state)
  | History.Put_if_absent { value; won } -> (
      match (state, won) with
      | None, true -> Some (Some value)
      | Some _, false -> Some state
      | None, false | Some _, true -> None)

exception Budget

let check_key_events ?(max_states = 1_000_000) events =
  let evs =
    Array.of_list
      (List.sort (fun a b -> compare a.History.inv b.History.inv) events)
  in
  let n = Array.length evs in
  if n = 0 then `Linearizable
  else begin
    let nbytes = (n + 7) / 8 in
    (* pending-operation bitset, mutated in place along the DFS *)
    let remaining = Bytes.make nbytes '\000' in
    let is_set i = Char.code (Bytes.get remaining (i lsr 3)) land (1 lsl (i land 7)) <> 0 in
    let set_bit i =
      Bytes.set remaining (i lsr 3)
        (Char.chr (Char.code (Bytes.get remaining (i lsr 3)) lor (1 lsl (i land 7))))
    in
    let clear_bit i =
      Bytes.set remaining (i lsr 3)
        (Char.chr
           (Char.code (Bytes.get remaining (i lsr 3)) land lnot (1 lsl (i land 7))))
    in
    for i = 0 to n - 1 do set_bit i done;
    (* memoized dead configurations: (pending set, register value) *)
    let memo = Hashtbl.create 4096 in
    let states = ref 0 in
    let rec dfs state left =
      if left = 0 then true
      else begin
        let ckey =
          Bytes.to_string remaining
          ^ (match state with None -> "\x00" | Some v -> "\x01" ^ v)
        in
        if Hashtbl.mem memo ckey then false
        else begin
          incr states;
          if !states > max_states then raise Budget;
          (* Only real-time-minimal pending ops may linearize next: op [i]
             qualifies iff no pending op responded before [i] was invoked,
             i.e. inv(i) < min res over pending ops. *)
          let min_res = ref max_int in
          for i = 0 to n - 1 do
            if is_set i && evs.(i).History.res < !min_res then
              min_res := evs.(i).History.res
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            (if is_set !i && evs.(!i).History.inv < !min_res then
               match apply state evs.(!i).History.op with
               | Some state' ->
                   clear_bit !i;
                   if dfs state' (left - 1) then ok := true else set_bit !i
               | None -> ());
            incr i
          done;
          if not !ok then Hashtbl.add memo ckey ();
          !ok
        end
      end
    in
    match dfs None n with
    | true -> `Linearizable
    | false -> `Non_linearizable
    | exception Budget -> `Inconclusive
  end

(* Greedy delta-reduction of a non-linearizable subhistory: drop every
   event whose removal keeps the remainder non-linearizable. The result is
   a small witness that still fails on its own (it may isolate a different
   facet of the same race, as delta debugging does). *)
let minimize ?(max_states = 100_000) events =
  let current = ref events in
  List.iter
    (fun (e : History.event) ->
      if List.length !current > 2 then begin
        let without =
          List.filter (fun (x : History.event) -> x.History.id <> e.History.id)
            !current
        in
        match check_key_events ~max_states without with
        | `Non_linearizable -> current := without
        | `Linearizable | `Inconclusive -> ()
      end)
    events;
  !current

let check ?max_states (h : History.t) =
  let by_key : (string, History.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : History.event) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_key e.History.key)
      in
      Hashtbl.replace by_key e.History.key (e :: prev))
    h.History.events;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_key [] |> List.sort compare
  in
  let violations = ref [] and inconclusive = ref [] and total = ref 0 in
  List.iter
    (fun key ->
      let events = Hashtbl.find by_key key in
      total := !total + List.length events;
      match check_key_events ?max_states events with
      | `Linearizable -> ()
      | `Inconclusive -> inconclusive := key :: !inconclusive
      | `Non_linearizable ->
          let witness =
            minimize events
            |> List.sort (fun a b -> compare a.History.inv b.History.inv)
          in
          violations :=
            { vkey = key; witness; total_events = List.length events }
            :: !violations)
    keys;
  {
    keys_checked = List.length keys;
    events_checked = !total;
    violations = List.rev !violations;
    inconclusive = List.rev !inconclusive;
  }

let ok r = r.violations = [] && r.inconclusive = []

let pp_violation v =
  Printf.sprintf
    "key %S is NOT linearizable — minimized witness (%d of %d events):\n%s"
    v.vkey (List.length v.witness) v.total_events
    (String.concat "\n"
       (List.map (fun e -> "  " ^ History.pp_event e) v.witness))

let pp_result r =
  if ok r then
    Printf.sprintf "linearizable: %d keys, %d events" r.keys_checked
      r.events_checked
  else
    String.concat "\n"
      (List.map pp_violation r.violations
      @ List.map
          (fun k -> Printf.sprintf "key %S: search budget exceeded" k)
          r.inconclusive)
