open Clsm_primitives

type mode = Sync | Async

type t = {
  mode : mode;
  file_path : string;
  fd : Unix.file_descr;
  oc : out_channel;
  queue : string Mpmc_queue.t;
  io_mutex : Mutex.t; (* serializes the drain/write path *)
  mutable closed : bool;
}

let create ?(mode = Async) file_path =
  let fd =
    Unix.openfile file_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  {
    mode;
    file_path;
    fd;
    oc = Unix.out_channel_of_descr fd;
    queue = Mpmc_queue.create ();
    io_mutex = Mutex.create ();
    closed = false;
  }

(* Must hold [io_mutex]. *)
let drain_locked t =
  let buf = Buffer.create 4096 in
  let rec pump () =
    match Mpmc_queue.pop t.queue with
    | Some payload ->
        Wal_record.encode buf payload;
        pump ()
    | None -> ()
  in
  pump ();
  if Buffer.length buf > 0 then begin
    output_string t.oc (Buffer.contents buf);
    flush t.oc
  end

let append t payload =
  if t.closed then invalid_arg "Wal_writer.append: closed";
  match t.mode with
  | Sync ->
      Mutex.lock t.io_mutex;
      let buf = Buffer.create (String.length payload + Wal_record.header_length) in
      Wal_record.encode buf payload;
      output_string t.oc (Buffer.contents buf);
      flush t.oc;
      Unix.fsync t.fd;
      Mutex.unlock t.io_mutex
  | Async ->
      Mpmc_queue.push t.queue payload;
      (* Opportunistic group commit: whoever gets the lock drains for all. *)
      if Mutex.try_lock t.io_mutex then begin
        drain_locked t;
        Mutex.unlock t.io_mutex
      end

let flush t =
  Mutex.lock t.io_mutex;
  drain_locked t;
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.io_mutex

let close t =
  if not t.closed then begin
    flush t;
    t.closed <- true;
    close_out_noerr t.oc
  end

let abandon t =
  if not t.closed then begin
    t.closed <- true;
    (* flush OCaml's channel buffer (bytes the OS already had in a real
       crash would be a superset; dropping the queue models the loss) *)
    (try Stdlib.flush t.oc with Sys_error _ -> ());
    close_out_noerr t.oc
  end

let path t = t.file_path
let queued t = Mpmc_queue.length t.queue
