(* The cLSM store algorithm, generic over the in-memory component — the
   paper's decoupling claim made literal: Algorithms 1-3 are written once
   against Memtable_intf.S; Algorithm 3's optimistic install is delegated
   to the component's locate/try_install pair. The subsystems live in
   their own modules and are composed here: shared state in
   {!Store_state}, crash recovery in {!Recovery}, the graduated write
   controller in {!Backpressure}, the merge hooks and job layer in
   {!Maintenance_hooks}, driven by the event-driven
   {!Clsm_maintenance.Scheduler}. *)

module Make (M : Memtable_intf.S) : Store_sig.EXTENDED = struct
  open Clsm_primitives
  open Clsm_lsm
  module State = Store_state.Make (M)
  module Hooks = Maintenance_hooks.Make (M)
  module Recover = Recovery.Make (M)
  open State

  type t = State.t

  (* ---------- reads (Algorithm 1: no blocking, Pm -> P'm -> Pd) ---------- *)

  (* Silent corruption discovered on a read path is contained, not
     fatal: the verdict is enqueued (read paths may hold the shared
     lock, so the quarantine swap itself is deferred to the Repair job)
     and the rotten file treated as a miss — overlapping data in other
     tables still answers. Health reports [`Partial] until repair. *)
  let on_corrupt t tf detail =
    ignore (enqueue_quarantine t ~number:tf.Table_file.number ~detail : bool)

  let get_entry t ~user_key ~snap_ts =
    let from_pm =
      Rcu_box.with_ref t.pm (fun mc -> M.get mc.mem ~user_key ~snap_ts)
    in
    match from_pm with
    | Some (_, entry) -> Some entry
    | None -> (
        let from_imm =
          Rcu_box.with_ref t.pimm (fun slot ->
              match slot with
              | No_imm -> None
              | Imm mc -> M.get mc.mem ~user_key ~snap_ts)
        in
        match from_imm with
        | Some (_, entry) -> Some entry
        | None -> (
            match
              Rcu_box.with_ref t.pd (fun v ->
                  Version.get ~on_corrupt:(on_corrupt t) v ~user_key ~snap_ts)
            with
            | Some (_, entry) -> Some entry
            | None -> None))

  (* Point reads are timed end to end (memtable probe through block cache
     and disk) into a log2 histogram — the paper's "gets never block"
     property is only observable as a latency distribution. *)
  let timed_get t f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    Stats.record_get_latency t.stats
      ~ns:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
    r

  let get t key =
    Stats.incr_gets t.stats;
    timed_get t (fun () ->
        match get_entry t ~user_key:key ~snap_ts:Internal_key.max_ts with
        | Some (Entry.Value v) -> Some v
        | Some Entry.Tombstone | None -> None)

  (* ---------- writes (Algorithm 1/2: shared lock + timestamp) ----------

     The timestamp machinery — getTS, the Active/put_active handshake,
     the snapTime fence — lives in {!Clock}, shared by every shard of a
     range-sharded deployment (and private to this store otherwise). *)

  (* Graduated admission control (see {!Backpressure}), checked outside the
     shared lock so a delayed or stalled writer cannot block the merge.
     A degraded store counts as stopped: the stall it is waiting out
     (e.g. a full L0 that can no longer be compacted) will never clear,
     so writers must not spin on it. *)
  let observe_pressure t () =
    {
      Backpressure.stopped = Atomic.get t.stop || is_degraded t;
      mem_full =
        M.approximate_bytes (current_pm t).mem
        > 2 * t.opts.Options.memtable_bytes;
      imm_busy = (match current_imm t with Imm _ -> true | No_imm -> false);
      l0_files = Version.level_file_count (current_version t) 0;
    }

  let throttle_writes t =
    Backpressure.admit t.backpressure
      ~observe:(observe_pressure t)
      ~wake:(fun () -> wake_bg t)

  (* Memtable over budget: hand the rotation to the maintenance workers. *)
  let maybe_wake_for_rotation t mc =
    if M.approximate_bytes mc.mem > t.opts.Options.memtable_bytes then
      wake_bg t

  let check_writable t =
    match Atomic.get t.degraded with
    | Some reason -> raise (Store_sig.Degraded reason)
    | None -> ()

  (* Append to the memory component's log. An environment failure (failed
     fsync, out of space) degrades the store to read-only before the
     exception reaches the caller: the writer is poisoned, so no later
     write could be made durable either. *)
  let wal_append t mc data =
    match mc.wal with
    | None -> ()
    | Some w -> (
        try Clsm_wal.Wal_writer.append w data
        with (Clsm_env.Env.Error _ | Clsm_env.Env.Crashed) as e ->
          degrade t ("wal append failed: " ^ Printexc.to_string e);
          raise e)

  let write_entry t ~user_key entry =
    check_writable t;
    throttle_writes t;
    Shared_lock.lock_shared t.lock;
    let mc = current_pm t in
    Fun.protect
      ~finally:(fun () -> Shared_lock.unlock_shared t.lock)
      (fun () ->
        let ts, h, hp = Clock.get_put_ts t.clock in
        (* The Active entries guard visibility (snapshots and RMWs wait
           on them), which is established by the memtable insert; holding
           them across the WAL append would only stall those on group
           commit. *)
        Fun.protect
          ~finally:(fun () -> Clock.end_put t.clock ~active:h ~put:hp)
          (fun () -> M.add mc.mem ~user_key ~ts entry);
        wal_append t mc (Log_record.encode { Log_record.ts; user_key; entry }));
    maybe_wake_for_rotation t mc

  let put t ~key ~value =
    Stats.incr_puts t.stats;
    write_entry t ~user_key:key (Entry.Value value)

  (* Atomic batches keep LevelDB's blocking implementation (paper §4): the
     shared-exclusive lock is held in exclusive mode, so the batch is atomic
     with respect to every writer and every snapshot (getSnap also takes the
     lock); it is logged as one WAL record, so it is durable
     all-or-nothing. *)
  type batch_op = Batch_put of string * string | Batch_delete of string

  let write_batch t ops =
    if ops <> [] then begin
      check_writable t;
      throttle_writes t;
      Shared_lock.lock_exclusive t.lock;
      let mc = current_pm t in
      Fun.protect
        ~finally:(fun () -> Shared_lock.unlock_exclusive t.lock)
        (fun () ->
          let records =
            List.map
              (fun op ->
                let user_key, entry =
                  match op with
                  | Batch_put (key, value) ->
                      Stats.incr_puts t.stats;
                      (key, Entry.Value value)
                  | Batch_delete key ->
                      Stats.incr_deletes t.stats;
                      (key, Entry.Tombstone)
                in
                (* No snapshot fence that could observe these keys can run
                   concurrently — a local getSnap needs this store's
                   shared lock, a cross-shard getSnap holds the router
                   lock against write batches — so bare timestamps are
                   safe here without the Active set. *)
                let ts = Clock.batch_ts t.clock in
                M.add mc.mem ~user_key ~ts entry;
                { Log_record.ts; user_key; entry })
              ops
          in
          wal_append t mc (Log_record.encode_batch records));
      maybe_wake_for_rotation t mc
    end

  let delete t ~key =
    Stats.incr_deletes t.stats;
    write_entry t ~user_key:key Entry.Tombstone

  (* ---------- read-modify-write (Algorithm 3) ---------- *)

  type rmw_decision = Set of string | Remove | Abort

  let rmw t ~key f =
    Stats.incr_rmws t.stats;
    check_writable t;
    throttle_writes t;
    Shared_lock.lock_shared t.lock;
    let pm = current_pm t in
    let rec attempt () =
      (* Line 4: newest version across Pm, P'm, Pd. Under the shared lock the
         component pointers are stable (swaps require exclusive mode). *)
      let latest =
        match M.get pm.mem ~user_key:key ~snap_ts:Internal_key.max_ts with
        | Some _ as hit -> hit
        | None -> (
            match current_imm t with
            | Imm mc -> (
                match
                  M.get mc.mem ~user_key:key ~snap_ts:Internal_key.max_ts
                with
                | Some _ as hit -> hit
                | None ->
                    Version.get ~on_corrupt:(on_corrupt t) (current_version t)
                      ~user_key:key ~snap_ts:Internal_key.max_ts)
            | No_imm ->
                Version.get ~on_corrupt:(on_corrupt t) (current_version t)
                  ~user_key:key ~snap_ts:Internal_key.max_ts)
      in
      let seen_ts = match latest with Some (ts, _) -> ts | None -> 0 in
      let pre_image =
        match latest with Some (_, Entry.Value v) -> Some v | _ -> None
      in
      match f pre_image with
      | Abort -> pre_image
      | decision -> (
          let entry =
            match decision with
            | Set v -> Entry.Value v
            | Remove -> Entry.Tombstone
            | Abort -> assert false
          in
          (* Line 9 first: the fresh timestamp, then fence out the
             blind spot the paper's line order leaves open — a put that
             drew an older timestamp but has not yet published its node
             would slot in *beneath* ours, invisible to the read above
             and to the conflict check below, and its value would be
             lost without the RMW ever observing it. The clock's
             [rmw_fence] makes any such straddling writer re-draw a newer
             timestamp (the getTS retry) and drains the ones already
             committed to theirs — the same handshake getSnap relies on.
             Only blind writers need draining: an older RMW locates after
             its own drain, so it detects our newer version as a conflict
             by itself; waiting on [active] here would needlessly
             serialize independent RMWs. Progress: the oldest active
             writer never waits, so every wait iteration implies
             system-wide progress. *)
          let ts, h = Clock.get_ts t.clock in
          Clock.rmw_fence t.clock ~ts;
          (* Lines 5-6: locate the insertion point for (k, ∞); a
             predecessor version newer than what we read is a conflict.
             Every version with a timestamp below ours has landed by
             now, so a clean check really means no intervening write. *)
          let prev_ts, loc = M.locate_rmw pm.mem ~user_key:key in
          match prev_ts with
          | Some p when p > seen_ts ->
              Clock.end_op t.clock h;
              Stats.incr_rmw_conflicts t.stats;
              attempt ()
          | _ ->
              (* Lines 10-12: publish with a CAS. *)
              if M.try_install pm.mem loc ~user_key:key ~ts entry then begin
                Clock.end_op t.clock h;
                wal_append t pm
                  (Log_record.encode { Log_record.ts; user_key = key; entry });
                pre_image
              end
              else begin
                Clock.end_op t.clock h;
                Stats.incr_rmw_conflicts t.stats;
                attempt ()
              end)
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Shared_lock.unlock_shared t.lock)
        attempt
    in
    maybe_wake_for_rotation t pm;
    result

  let put_if_absent t ~key ~value =
    (* [f] can be re-invoked after a conflict; only the decision of the final
       (successful) invocation stands, so the flag must be overwritten on
       every call rather than latched. *)
    let installed = ref false in
    ignore
      (rmw t ~key (function
        | Some _ ->
            installed := false;
            Abort
        | None ->
            installed := true;
            Set value));
    !installed

  (* ---------- snapshots (Algorithm 2) ---------- *)

  type snapshot = {
    snap_ts : int;
    handle : Snapshot_registry.handle option; (* None for the ts=0 case *)
    released : bool Atomic.t;
  }

  let snapshot_mode t =
    if t.opts.Options.unsafe_naive_snapshots then Clock.Unsafe_naive
    else if t.opts.Options.linearizable_snapshots then Clock.Linearizable
    else Clock.Serializable

  let get_snap ?ttl t =
    Stats.incr_snapshots t.stats;
    Shared_lock.lock_shared t.lock;
    let tsb = Clock.snap_ts t.clock ~mode:(snapshot_mode t) in
    let handle =
      Clock.register_snapshot t.clock ?ttl ~now:(Unix.gettimeofday ()) tsb
    in
    Shared_lock.unlock_shared t.lock;
    { snap_ts = tsb; handle; released = Atomic.make false }

  (* A view at a timestamp someone else fenced and registered (the shard
     router's cross-shard getSnap): no fence, no registry entry of its
     own — the caller's registration keeps [ts] GC-protected. *)
  let snapshot_at _t ~ts =
    { snap_ts = ts; handle = None; released = Atomic.make false }

  let snapshot_ts s = s.snap_ts

  let release_snapshot t s =
    if not (Atomic.exchange s.released true) then
      match s.handle with
      | Some h -> Clock.release_snapshot t.clock h
      | None -> ()

  let get_at t s key =
    Stats.incr_gets t.stats;
    if Atomic.get s.released then invalid_arg "Db.get_at: released snapshot";
    timed_get t (fun () ->
        match get_entry t ~user_key:key ~snap_ts:s.snap_ts with
        | Some (Entry.Value v) -> Some v
        | Some Entry.Tombstone | None -> None)

  (* Consistent multi-key read: all keys observed at one timestamp. *)
  let multi_get t keys =
    let s = get_snap t in
    let result = List.map (fun k -> (k, get_at t s k)) keys in
    release_snapshot t s;
    result

  (* ---------- iterators / scans ---------- *)

  type iterator = {
    snap : snapshot;
    own_snapshot : bool;
    merged : Iter.t;
    release_refs : unit -> unit;
    db : t;
    mutable cur : (string * string) option;
    mutable it_closed : bool;
  }

  (* Consume the group of versions of the user key at the merge cursor and
     return its visible binding under the snapshot, advancing past the
     group. *)
  let rec next_visible merged snap_ts =
    if not (merged.Iter.valid ()) then None
    else begin
      let uk = Internal_key.user_key_of (merged.Iter.key ()) in
      let best = ref None in
      let rec consume () =
        if merged.Iter.valid () then begin
          let ik = merged.Iter.key () in
          if String.equal (Internal_key.user_key_of ik) uk then begin
            if Internal_key.ts_of ik <= snap_ts then
              best := Some (merged.Iter.value ());
            merged.Iter.next ();
            consume ()
          end
        end
      in
      consume ();
      match !best with
      | Some enc -> (
          match Entry.decode enc with
          | Entry.Value v -> Some (uk, v)
          | Entry.Tombstone -> next_visible merged snap_ts)
      | None -> next_visible merged snap_ts
    end

  let iterator ?snapshot t =
    Stats.incr_scans t.stats;
    let snap, own_snapshot =
      match snapshot with Some s -> (s, false) | None -> (get_snap t, true)
    in
    (* Pin all three components for the iterator's lifetime. *)
    let pm_cell = Rcu_box.acquire t.pm in
    let imm_cell = Rcu_box.acquire t.pimm in
    let pd_cell = Rcu_box.acquire t.pd in
    let sources =
      M.iter (Refcounted.value pm_cell).mem
      ::
      (match Refcounted.value imm_cell with
      | Imm mc -> [ M.iter mc.mem ]
      | No_imm -> [])
      @ Version.iters (Refcounted.value pd_cell)
    in
    let merged = Merge_iter.merge ~cmp:Internal_key.compare_encoded sources in
    let release_refs () =
      Refcounted.decr pm_cell;
      Refcounted.decr imm_cell;
      Refcounted.decr pd_cell
    in
    {
      snap;
      own_snapshot;
      merged;
      release_refs;
      db = t;
      cur = None;
      it_closed = false;
    }

  (* A corruption surfacing mid-scan is reported for quarantine and
     re-raised: unlike a point get, a scan cannot treat a rotten file as
     a miss without silently dropping a key range from its answer. The
     caller can retry after repair — the quarantined table is gone from
     the next read view, so the retry answers from surviving data. *)
  let guard_iter it f =
    try f ()
    with Table_file.Corruption { number; detail; _ } as e ->
      ignore (enqueue_quarantine it.db ~number ~detail : bool);
      raise e

  let iter_seek_first it =
    guard_iter it (fun () ->
        it.merged.Iter.seek_to_first ();
        it.cur <- next_visible it.merged it.snap.snap_ts)

  let iter_seek it target =
    guard_iter it (fun () ->
        it.merged.Iter.seek (Internal_key.make target 0);
        it.cur <- next_visible it.merged it.snap.snap_ts)

  let iter_valid it = it.cur <> None

  let iter_key it =
    match it.cur with
    | Some (k, _) -> k
    | None -> invalid_arg "Db.iter_key: invalid iterator"

  let iter_value it =
    match it.cur with
    | Some (_, v) -> v
    | None -> invalid_arg "Db.iter_value: invalid iterator"

  let iter_next it =
    if it.cur <> None then
      guard_iter it (fun () ->
          it.cur <- next_visible it.merged it.snap.snap_ts)

  let iter_close it =
    if not it.it_closed then begin
      it.it_closed <- true;
      it.cur <- None;
      it.release_refs ();
      if it.own_snapshot then release_snapshot it.db it.snap
    end

  let range ?snapshot ?start ?stop ?(limit = max_int) t =
    let it = iterator ?snapshot t in
    (match start with
    | Some s -> iter_seek it s
    | None -> iter_seek_first it);
    let rec collect n acc =
      if n >= limit || not (iter_valid it) then List.rev acc
      else
        let k = iter_key it in
        match stop with
        | Some e when k >= e -> List.rev acc
        | Some _ | None ->
            let v = iter_value it in
            iter_next it;
            collect (n + 1) ((k, v) :: acc)
    in
    let result = collect 0 [] in
    iter_close it;
    result

  let fold ?snapshot f t acc =
    let it = iterator ?snapshot t in
    iter_seek_first it;
    let rec go acc =
      if iter_valid it then begin
        let k = iter_key it and v = iter_value it in
        iter_next it;
        go (f k v acc)
      end
      else acc
    in
    let result = go acc in
    iter_close it;
    result

  (* ---------- maintenance (delegated to the scheduler + hooks) ---------- *)

  let compact_now t = Hooks.compact_now t

  (* ---------- open / recovery / close ---------- *)

  let open_store (opts : Options.t) =
    let cache =
      Clsm_sstable.Cache.create ~capacity:opts.cache_bytes
        ~readahead:opts.readahead_blocks
        ~weight:Clsm_sstable.Block.size_bytes ()
    in
    (* Stats exist before recovery: the recovered WAL writer's observer
       feeds commit-wait/group-commit accounting into them. *)
    let stats = Stats.create () in
    let r = Recover.recover opts ~cache ~stats in
    let num_levels = opts.lsm.Lsm_config.num_levels in
    let clock =
      match opts.clock with
      | Some c -> c
      | None -> Clock.create ~active_set_capacity:opts.active_set_capacity ()
    in
    (* Fresh writes must outrank everything this directory persisted —
       with a shared clock, CAS-max across shards in any recovery order. *)
    Clock.observe_recovered_ts clock r.Recover.last_ts;
    let t =
      {
        opts;
        lock = Shared_lock.create ();
        clock;
        pm =
          Rcu_box.create
            (Refcounted.create
               {
                 mem = r.Recover.mem;
                 wal = r.Recover.wal;
                 wal_number = r.Recover.wal_number;
               });
        pimm = Rcu_box.create (Refcounted.create No_imm);
        pd =
          Rcu_box.create
            (Refcounted.create ~release:Version.release r.Recover.version);
        next_file = r.Recover.next_file;
        cache;
        stats;
        stop = Atomic.make false;
        degraded = Atomic.make None;
        heal = fresh_heal ~quarantined:r.Recover.quarantined;
        install = Mutex.create ();
        claims =
          {
            cm = Mutex.create ();
            flush_claimed = false;
            busy_levels = [];
            pending = [];
            barrier = false;
          };
        compact_pointers = Array.make (num_levels - 1) "";
        backpressure =
          Backpressure.create
            ~config:(Backpressure.config_of_options opts)
            ~stats;
        scheduler = None;
        wake_hook = None;
        closed = false;
        close_mutex = Mutex.create ();
      }
    in
    if not opts.external_maintenance then begin
      let scheduler = Hooks.make_scheduler t in
      t.scheduler <- Some scheduler;
      Clsm_maintenance.Scheduler.start scheduler
    end;
    t

  let repair = Recovery.repair

  let flush_wal t =
    match (current_pm t).wal with
    | Some w -> Clsm_wal.Wal_writer.flush w
    | None -> ()

  let stop_scheduler t =
    Atomic.set t.stop true;
    match t.scheduler with
    | Some s ->
        Clsm_maintenance.Scheduler.stop s;
        t.scheduler <- None
    | None -> ()

  (* Testing hook: die without flushing the WAL queue or saving the
     manifest — what a crash leaves on disk. The value must not be used
     afterwards (a fresh open_store on the directory performs recovery). *)
  let simulate_crash t =
    Mutex.protect t.close_mutex (fun () ->
        if not t.closed then begin
          t.closed <- true;
          stop_scheduler t;
          match (current_pm t).wal with
          | Some w -> Clsm_wal.Wal_writer.abandon w
          | None -> ()
        end)

  let close t =
    Mutex.lock t.close_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.close_mutex)
      (fun () ->
        if not t.closed then begin
          t.closed <- true;
          stop_scheduler t;
          let pm_cell = Rcu_box.peek t.pm in
          (* The component references are released even when the final
             flush or manifest save fails — the error still reaches the
             caller, and recovery replays the surviving log. *)
          Fun.protect
            ~finally:(fun () ->
              Refcounted.retire pm_cell;
              Refcounted.retire (Rcu_box.peek t.pimm);
              Refcounted.retire (Rcu_box.peek t.pd))
            (fun () ->
              (* [Wal_writer.close] flushes before closing; an IO failure
                 propagates (after the descriptor is released) instead of
                 being silently dropped. *)
              (match (Refcounted.value pm_cell).wal with
              | Some w -> Clsm_wal.Wal_writer.close w
              | None -> ());
              Mutex.lock t.install;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock t.install)
                (fun () ->
                  (* The final manifest save is an idempotent commit
                     point like every maintenance-path save: a transient
                     fault rides through the retry policy instead of
                     failing the close. *)
                  Hooks.with_retry t ~what:"manifest save (close)"
                    (fun () -> save_manifest t)))
        end)

  (* Offline-style health check runnable on a live store: validates every
     table file and the level invariants of the current version. *)
  let verify_integrity t =
    Rcu_box.with_ref t.pd Version.validate

  let stats t = Stats.read t.stats
  let options t = t.opts

  (* Degraded (write path down) dominates Partial (some key ranges
     serving from reduced redundancy); both beat Ok. *)
  let health t =
    match Atomic.get t.degraded with
    | Some reason -> `Degraded reason
    | None -> (
        match quarantine_counts t with
        | 0, 0 -> `Ok
        | pending, quarantined ->
            `Partial
              (Printf.sprintf
                 "%d table(s) quarantined for corruption (%d pending)"
                 (pending + quarantined) pending))

  let scrub_now t = Hooks.scrub_now t

  let repair_now t =
    Hooks.repair_now t;
    health t

  let level_file_counts t =
    let v = current_version t in
    List.length v.Version.l0
    :: List.map List.length (Array.to_list v.Version.levels)

  let memtable_bytes t = M.approximate_bytes (current_pm t).mem
  let cache_stats t = Clsm_sstable.Cache.stats t.cache

  (* ---------- router support (Store_sig.EXTENDED) ---------- *)

  let clock t = t.clock
  let maintenance_next t = Hooks.next t
  let maintenance_run t job = Hooks.run t job
  let set_wake_hook t f = t.wake_hook <- Some f
end
