(** Fixed-width little-endian integer codecs used by the on-disk formats. *)

val write_fixed32 : Buffer.t -> int -> unit
(** [write_fixed32 buf v] appends [v land 0xffffffff] as 4 LE bytes. *)

val write_fixed64 : Buffer.t -> int -> unit
(** [write_fixed64 buf v] appends [v] as 8 LE bytes (63-bit payload; the
    top bit is always zero). *)

val get_fixed32 : string -> pos:int -> int
(** [get_fixed32 s ~pos] reads 4 LE bytes at [pos] as a non-negative int. *)

val get_fixed64 : string -> pos:int -> int
(** [get_fixed64 s ~pos] reads 8 LE bytes at [pos]. Raises [Failure] if the
    stored value does not fit in a 63-bit OCaml int. *)

val put_fixed32 : bytes -> pos:int -> int -> unit
val put_fixed64 : bytes -> pos:int -> int -> unit
