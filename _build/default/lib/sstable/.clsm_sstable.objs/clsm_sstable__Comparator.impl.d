lib/sstable/comparator.ml: String
