lib/lsm/internal_key.mli: Clsm_sstable
