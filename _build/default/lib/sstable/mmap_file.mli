(** Read-only random-access file via [mmap] — the paper's cLSM inherits
    LevelDB's memory-mapped I/O for table reads; mapping also makes reads
    naturally thread-safe (no shared file offset). *)

type t

val open_ro : string -> t
(** Map an existing file read-only. Raises [Unix.Unix_error] on failure.
    The file descriptor is closed immediately after mapping. *)

val length : t -> int

val read : t -> pos:int -> len:int -> string
(** Copy [len] bytes starting at [pos]. Raises [Invalid_argument] if the
    range is out of bounds. *)

val close : t -> unit
(** Releases the mapping reference; actual unmap happens at GC. Safe to
    call more than once. *)
