(* Tests for the extended store features: atomic write batches, TTL
   snapshots, crash simulation, and integrity verification. *)

open Clsm_core
open Clsm_lsm

let spawn_all fns = List.map Domain.spawn fns |> List.map Domain.join

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_feat_%d_%d" (Unix.getpid ()) !counter)

let small_opts ?(memtable_bytes = 16 * 1024) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        base.Options.lsm with
        Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 16 * 1024;
        block_size = 1024;
      };
  }

let with_store ?memtable_bytes f =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts ?memtable_bytes dir) in
  match f db dir with
  | r ->
      Db.close db;
      r
  | exception e ->
      Db.close db;
      raise e

(* ---------- Log_record batches ---------- *)

let log_record_roundtrip () =
  let records =
    [
      { Log_record.ts = 1; user_key = "a"; entry = Entry.Value "va" };
      { Log_record.ts = 2; user_key = ""; entry = Entry.Tombstone };
      { Log_record.ts = 999999; user_key = "long-key"; entry = Entry.Value "" };
    ]
  in
  let payload = Log_record.encode_batch records in
  Alcotest.(check bool) "batch roundtrip" true
    (Log_record.decode_all payload = records);
  let single = Log_record.encode (List.hd records) in
  Alcotest.(check bool) "single roundtrip" true
    (Log_record.decode single = List.hd records);
  (match Log_record.decode payload with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "decode should reject multi-record payloads");
  Alcotest.(check bool) "empty batch" true (Log_record.decode_all "" = [])

let prop_log_record_batch =
  QCheck.Test.make ~name:"log batch roundtrip" ~count:200
    QCheck.(
      list_of_size
        Gen.(0 -- 10)
        (triple (map abs small_int) (string_of_size Gen.(0 -- 10))
           (option (string_of_size Gen.(0 -- 10)))))
    (fun raw ->
      let records =
        List.map
          (fun (ts, user_key, v) ->
            {
              Log_record.ts = ts + 1;
              user_key;
              entry =
                (match v with Some s -> Entry.Value s | None -> Entry.Tombstone);
            })
          raw
      in
      Log_record.decode_all (Log_record.encode_batch records) = records)

(* ---------- write_batch ---------- *)

let batch_basic () =
  with_store (fun db _ ->
      Db.put db ~key:"pre" ~value:"existing";
      Db.write_batch db
        [
          Db.Batch_put ("a", "1");
          Db.Batch_put ("b", "2");
          Db.Batch_delete "pre";
          Db.Batch_put ("a", "1b");
        ];
      Alcotest.(check (option string)) "last write in batch wins" (Some "1b")
        (Db.get db "a");
      Alcotest.(check (option string)) "b" (Some "2") (Db.get db "b");
      Alcotest.(check (option string)) "deleted in batch" None (Db.get db "pre");
      Db.write_batch db [];
      Alcotest.(check (option string)) "empty batch is a no-op" (Some "2")
        (Db.get db "b"))

let batch_atomic_vs_snapshots () =
  (* Writers apply balanced transfers as batches; every snapshot must see a
     constant total. *)
  with_store ~memtable_bytes:(1 lsl 20) (fun db _ ->
      let accounts = 8 in
      let total = 800 in
      Db.write_batch db
        (List.init accounts (fun i ->
             Db.Batch_put
               (Printf.sprintf "acct%02d" i, string_of_int (total / accounts))));
      let stop = Atomic.make false in
      let transfer rng_seed () =
        let rng = ref rng_seed in
        let next () =
          rng := (!rng * 1103515245) + 12345;
          abs !rng
        in
        while not (Atomic.get stop) do
          let a = next () mod accounts and b = next () mod accounts in
          if a <> b then begin
            let ka = Printf.sprintf "acct%02d" a
            and kb = Printf.sprintf "acct%02d" b in
            let va = int_of_string (Option.get (Db.get db ka)) in
            let vb = int_of_string (Option.get (Db.get db kb)) in
            (* not a serializable transaction — but the batch itself must
               appear atomic to snapshots, which is what we assert *)
            Db.write_batch db
              [
                Db.Batch_put (ka, string_of_int (va - 1));
                Db.Batch_put (kb, string_of_int (vb + 1));
              ]
          end
        done;
        0
      in
      let auditor () =
        let bad = ref 0 in
        for _ = 1 to 200 do
          let s = Db.get_snap db in
          let sum =
            List.fold_left
              (fun acc i ->
                acc
                + int_of_string
                    (Option.get (Db.get_at db s (Printf.sprintf "acct%02d" i))))
              0
              (List.init accounts Fun.id)
          in
          (* single-writer transfers: with one writer domain the read-
             modify-write pairs are also atomic, so the invariant holds *)
          if sum <> total then incr bad;
          Db.release_snapshot db s
        done;
        Atomic.set stop true;
        !bad
      in
      let results = spawn_all [ transfer 1; auditor ] in
      Alcotest.(check int) "snapshots never see a torn batch" 0
        (List.nth results 1))

let batch_durable_all_or_nothing () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  Db.write_batch db
    [ Db.Batch_put ("x", "1"); Db.Batch_put ("y", "2"); Db.Batch_put ("z", "3") ];
  Db.flush_wal db;
  Db.close db;
  (* Truncate into the batch's WAL record: the whole batch must vanish. *)
  let wal =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".log")
    |> List.sort compare |> List.rev |> List.hd
  in
  let path = Filename.concat dir wal in
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 2);
  Unix.close fd;
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "x gone" None (Db.get db "x");
  Alcotest.(check (option string)) "y gone" None (Db.get db "y");
  Alcotest.(check (option string)) "z gone" None (Db.get db "z");
  Db.close db

let batch_recovery () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  Db.write_batch db
    [ Db.Batch_put ("k1", "v1"); Db.Batch_delete "k1"; Db.Batch_put ("k2", "v2") ];
  Db.flush_wal db;
  Db.close db;
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "k1 deleted by batch" None (Db.get db "k1");
  Alcotest.(check (option string)) "k2 recovered" (Some "v2") (Db.get db "k2");
  Db.close db

(* ---------- TTL snapshots / Snapshot_registry ---------- *)

let registry_basics () =
  let r = Snapshot_registry.create () in
  Alcotest.(check (option int)) "empty" None
    (Snapshot_registry.min_timestamp r ~now:0.0);
  let h5 = Snapshot_registry.install r ~now:0.0 5 in
  let _h3 = Snapshot_registry.install r ~now:0.0 3 in
  let _h9 = Snapshot_registry.install r ~ttl:10.0 ~now:0.0 9 in
  Alcotest.(check (list int)) "live" [ 3; 5; 9 ]
    (Snapshot_registry.live_timestamps r ~now:1.0);
  Snapshot_registry.remove r h5;
  Alcotest.(check (list int)) "after remove" [ 3; 9 ]
    (Snapshot_registry.live_timestamps r ~now:1.0);
  Alcotest.(check (list int)) "after ttl expiry" [ 3 ]
    (Snapshot_registry.live_timestamps r ~now:11.0);
  Alcotest.(check (option int)) "min" (Some 3)
    (Snapshot_registry.min_timestamp r ~now:11.0);
  Snapshot_registry.remove r h5 (* idempotent *)

let ttl_snapshot_released_for_gc () =
  with_store (fun db _ ->
      Db.put db ~key:"k" ~value:"old";
      let s = Db.get_snap ~ttl:0.05 db in
      Db.put db ~key:"k" ~value:"new";
      (* While the TTL snapshot is live, GC must keep the old version. *)
      Db.compact_now db;
      Alcotest.(check (option string)) "pinned while live" (Some "old")
        (Db.get_at db s "k");
      Unix.sleepf 0.1;
      (* Expired: compaction may now GC the old version. *)
      Db.put db ~key:"pad" ~value:"x";
      Db.compact_now db;
      Db.compact_now db;
      Alcotest.(check (option string)) "live value unaffected" (Some "new")
        (Db.get db "k"))

(* ---------- crash simulation ---------- *)

let crash_loses_unflushed_async_tail_only () =
  let dir = fresh_dir () in
  let opts = small_opts ~memtable_bytes:(1 lsl 20) dir in
  let db = Db.open_store opts in
  for i = 0 to 199 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v"
  done;
  Db.flush_wal db;
  (* everything up to here is on disk; the rest may die with the crash *)
  for i = 200 to 249 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v"
  done;
  Db.simulate_crash db;
  let db = Db.open_store opts in
  let flushed_missing = ref 0 in
  for i = 0 to 199 do
    if Db.get db (Printf.sprintf "k%04d" i) = None then incr flushed_missing
  done;
  Alcotest.(check int) "flushed records survive the crash" 0 !flushed_missing;
  (* The async tail may or may not have made it; whatever is there must be
     readable and the store healthy. *)
  Alcotest.(check (list string)) "store verifies" [] (Db.verify_integrity db);
  Db.put db ~key:"post-crash" ~value:"ok";
  Alcotest.(check (option string)) "writable after recovery" (Some "ok")
    (Db.get db "post-crash");
  Db.close db

let crash_after_compaction () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 499 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(string_of_int i)
  done;
  Db.compact_now db;
  Db.simulate_crash db;
  let db = Db.open_store opts in
  let missing = ref 0 in
  for i = 0 to 499 do
    if Db.get db (Printf.sprintf "k%04d" i) <> Some (string_of_int i) then
      incr missing
  done;
  Alcotest.(check int) "compacted data intact" 0 !missing;
  Alcotest.(check (list string)) "verifies" [] (Db.verify_integrity db);
  Db.close db

(* ---------- verify_integrity ---------- *)

let verify_healthy_store () =
  with_store (fun db _ ->
      for i = 0 to 999 do
        Db.put db ~key:(Printf.sprintf "k%05d" i) ~value:"v"
      done;
      Db.compact_now db;
      Alcotest.(check (list string)) "healthy" [] (Db.verify_integrity db))

let verify_detects_corruption () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 999 do
    Db.put db ~key:(Printf.sprintf "k%05d" i) ~value:(String.make 64 'v')
  done;
  Db.compact_now db;
  Db.close db;
  (* Flip a byte in some table file's data region. *)
  let sst =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sst")
    |> List.sort compare |> List.hd
  in
  let path = Filename.concat dir sst in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 100 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xde\xad") 0 2);
  Unix.close fd;
  (* Hold the self-healing machinery off: with the default options the
     background scrub quarantines (and auto-repair then releases) the
     rotten table so fast that verify_integrity finds a clean store —
     here the point is that verify itself detects the damage. *)
  let db =
    Db.open_store { opts with Options.scrub_interval = 0.0; auto_repair = false }
  in
  Alcotest.(check bool) "corruption reported" true
    (Db.verify_integrity db <> []);
  Db.close db

let repair_rebuilds_manifest () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 599 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(string_of_int i)
  done;
  Db.compact_now db;
  Db.put db ~key:"k0001" ~value:"overwritten";
  Db.compact_now db;
  Db.close db;
  (* lose the manifest *)
  Sys.remove (Clsm_lsm.Table_file.manifest_path ~dir);
  Db.repair ~dir ();
  let db = Db.open_store opts in
  let missing = ref 0 in
  for i = 2 to 599 do
    if Db.get db (Printf.sprintf "k%04d" i) <> Some (string_of_int i) then
      incr missing
  done;
  Alcotest.(check int) "all values recovered" 0 !missing;
  Alcotest.(check (option string)) "newest version wins after repair"
    (Some "overwritten") (Db.get db "k0001");
  (* the repaired counter must stay ahead of recovered timestamps *)
  Db.put db ~key:"k0001" ~value:"post-repair";
  Alcotest.(check (option string)) "new writes visible" (Some "post-repair")
    (Db.get db "k0001");
  Alcotest.(check (list string)) "verifies" [] (Db.verify_integrity db);
  Db.close db

let repair_sets_aside_damaged_tables () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 599 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v"
  done;
  Db.compact_now db;
  Db.close db;
  (* corrupt one table and lose the manifest *)
  let ssts =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sst")
    |> List.sort compare
  in
  let victim = Filename.concat dir (List.hd ssts) in
  let fd = Unix.openfile victim [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 50 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 8 '\xff') 0 8);
  Unix.close fd;
  Sys.remove (Clsm_lsm.Table_file.manifest_path ~dir);
  Db.repair ~dir ();
  Alcotest.(check bool) "victim renamed aside" true
    (Sys.file_exists (victim ^ ".damaged"));
  let db = Db.open_store opts in
  Alcotest.(check (list string)) "store healthy after repair" []
    (Db.verify_integrity db);
  Db.close db

let table_verify_direct () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "direct.sst" in
  let b =
    Clsm_sstable.Table_builder.create ~block_size:256
      ~cmp:Clsm_sstable.Comparator.bytewise ~path ()
  in
  for i = 0 to 499 do
    Clsm_sstable.Table_builder.add b ~key:(Printf.sprintf "k%05d" i) ~value:"v"
  done;
  ignore (Clsm_sstable.Table_builder.finish b);
  let t = Clsm_sstable.Table.open_file ~cmp:Clsm_sstable.Comparator.bytewise path in
  (match Clsm_sstable.Table.verify t with
  | Ok n -> Alcotest.(check int) "entry count" 500 n
  | Error e -> Alcotest.fail e);
  Clsm_sstable.Table.close t

let suites =
  [
    ( "features.log_record",
      Alcotest.test_case "batch roundtrip" `Quick log_record_roundtrip
      :: List.map QCheck_alcotest.to_alcotest [ prop_log_record_batch ] );
    ( "features.batch",
      [
        Alcotest.test_case "basic" `Quick batch_basic;
        Alcotest.test_case "atomic vs snapshots" `Quick batch_atomic_vs_snapshots;
        Alcotest.test_case "durable all-or-nothing" `Quick
          batch_durable_all_or_nothing;
        Alcotest.test_case "recovery" `Quick batch_recovery;
      ] );
    ( "features.snapshots",
      [
        Alcotest.test_case "registry basics" `Quick registry_basics;
        Alcotest.test_case "ttl release" `Quick ttl_snapshot_released_for_gc;
      ] );
    ( "features.crash",
      [
        Alcotest.test_case "async tail only" `Quick
          crash_loses_unflushed_async_tail_only;
        Alcotest.test_case "after compaction" `Quick crash_after_compaction;
      ] );
    ( "features.verify",
      [
        Alcotest.test_case "healthy store" `Quick verify_healthy_store;
        Alcotest.test_case "detects corruption" `Quick verify_detects_corruption;
        Alcotest.test_case "table verify direct" `Quick table_verify_direct;
      ] );
    ( "features.repair",
      [
        Alcotest.test_case "rebuilds manifest" `Quick repair_rebuilds_manifest;
        Alcotest.test_case "sets aside damaged tables" `Quick
          repair_sets_aside_damaged_tables;
      ] );
  ]
