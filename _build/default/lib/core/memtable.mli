(** The in-memory component [Cm]: a lock-free skip-list of
    key-timestamp-value triples sorted by (user key asc, timestamp asc),
    exactly the structure Algorithms 1–3 of the paper operate on.

    All operations are thread-safe and non-blocking; obsolete versions are
    never removed (they disappear when the whole component is discarded
    after its merge, §3.2.1). *)

open Clsm_lsm

type t

val create : unit -> t

val add : t -> user_key:string -> ts:int -> Entry.t -> unit
(** Insert one version. (user_key, ts) pairs are unique because every put
    draws a fresh timestamp; a duplicate insert (WAL replay of an already
    flushed record) is silently ignored. *)

val get : t -> user_key:string -> snap_ts:int -> (int * Entry.t) option
(** Newest version of [user_key] with timestamp [<= snap_ts]. *)

val latest_ts : t -> user_key:string -> int option
(** Timestamp of the newest version of [user_key] in this component. *)

(** One optimistic attempt of Algorithm 3's install step. *)
type rmw_location

val locate_rmw : t -> user_key:string -> int option * rmw_location
(** Locate the insertion point for [(user_key, ∞)] (line 5). The first
    component is the timestamp of the predecessor when it is a version of
    [user_key] (for the line-6 conflict check), [None] otherwise. *)

val try_install : t -> rmw_location -> user_key:string -> ts:int -> Entry.t -> bool
(** CAS the new version in after the located predecessor (line 12); [false]
    means a concurrent insertion moved the insertion point — re-run the
    whole read-check-install attempt. *)

val approximate_bytes : t -> int
(** Payload bytes plus a per-entry overhead estimate; drives rotation. *)

val entry_count : t -> int
val is_empty : t -> bool

val iter : t -> Iter.t
(** Weakly-consistent iterator over (encoded internal key, encoded entry),
    suitable for merges and scans. *)

val fold_entries : (string -> int -> Entry.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
(** [f user_key ts entry acc] in internal-key order (tests, flush stats). *)
