(** Recovery-side reader: returns all intact records in file order and how
    the log ended. cLSM relaxes the single-writer constraint so records may
    be out of timestamp order on disk (paper §4); callers restore the
    correct order from the timestamps embedded in the payloads.

    Salvage semantics (the default): replay stops at the first record that
    is short ([Torn_tail]) or fails its checksum ([Corrupt_tail]); the
    valid prefix is returned. Recovery then re-logs the salvaged records
    into a fresh WAL and deletes this one, which is the logical equivalent
    of truncating at the corruption point. In [strict] mode a non-clean
    tail raises {!Corrupt} instead — for deployments where a torn tail
    should be investigated rather than repaired over. *)

type outcome = Clean | Torn_tail | Corrupt_tail

exception Corrupt of string

val read_records :
  ?env:Clsm_env.Env.t ->
  ?strict:bool ->
  ?max_bytes:int ->
  string ->
  string list * outcome
(** Raises {!Clsm_env.Env.Error} if the file cannot be read, and
    {!Corrupt} in [strict] mode (default [false]) when the log does not
    end cleanly.

    [max_bytes] bounds classification to the file's first [max_bytes]
    bytes — scrub passes the writer's {!Wal_writer.written_bytes} here
    so a racing in-flight append (a half-written record with an
    incomplete CRC) is never misclassified as [Corrupt_tail]; a record
    cut by the bound reads as [Torn_tail]. Default: the whole file. *)
