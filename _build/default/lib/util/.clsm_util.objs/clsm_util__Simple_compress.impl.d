lib/util/simple_compress.ml: Array Buffer Char String
