(** Pointer to a block within a table file: offset and (payload) size,
    varint-encoded. Stored in index entries and the footer. *)

type t = { offset : int; size : int }

val encode : Buffer.t -> t -> unit
val decode : string -> pos:int -> t * int
(** Returns the handle and the position past it. Raises
    [Clsm_util.Varint.Corrupt] on malformed input. *)

val max_encoded_length : int
