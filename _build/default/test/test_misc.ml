(* Assorted micro edge cases rounding out the per-module suites. *)

open Clsm_workload

(* ---------- skiplist degenerate shapes ---------- *)

module SL = Clsm_skiplist.Skiplist.Make (String)

let skiplist_height_one () =
  (* max_height 1 degenerates to a sorted linked list; everything must
     still work (the upper levels are only an optimization). *)
  let sl = SL.create ~max_height:1 ~seed:3 () in
  for i = 99 downto 0 do
    ignore (SL.insert sl (Printf.sprintf "k%03d" i) i)
  done;
  Alcotest.(check int) "all inserted" 100 (SL.length sl);
  Alcotest.(check (option int)) "find" (Some 42) (SL.find sl "k042");
  Alcotest.(check bool) "sorted" true
    (List.map fst (SL.to_list sl)
    = List.init 100 (Printf.sprintf "k%03d"))

let skiplist_cursor_sees_prior_inserts_after_seek () =
  let sl = SL.create ~seed:5 () in
  List.iter (fun k -> ignore (SL.insert sl k 0)) [ "b"; "d"; "f" ];
  let c = SL.Cursor.make sl in
  SL.Cursor.seek c "c";
  (* insert behind and ahead of the cursor, then walk *)
  ignore (SL.insert sl "a" 1);
  ignore (SL.insert sl "e" 1);
  let seen = ref [] in
  while SL.Cursor.valid c do
    seen := fst (Option.get (SL.Cursor.current c)) :: !seen;
    SL.Cursor.next c
  done;
  (* "d" and "f" were present at seek time and must appear; "e" may or may
     not, "a" must not (behind the cursor) *)
  let seen = List.rev !seen in
  Alcotest.(check bool) "d seen" true (List.mem "d" seen);
  Alcotest.(check bool) "f seen" true (List.mem "f" seen);
  Alcotest.(check bool) "a not seen" false (List.mem "a" seen)

(* ---------- histogram properties ---------- *)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (float_range 1e-9 1.0))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      let ps = [ 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let values = List.map (Histogram.percentile h) ps in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted values)

let prop_histogram_percentile_brackets_max =
  QCheck.Test.make ~name:"p100 within a bucket of max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_range 1e-7 0.1))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      let mx = List.fold_left Float.max 0.0 samples in
      let p100 = Histogram.percentile h 100.0 in
      p100 >= mx *. 0.85 && p100 <= mx *. 1.15)

(* ---------- wal large records ---------- *)

let wal_large_record () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_wal_large_%d" (Unix.getpid ()))
  in
  let w = Clsm_wal.Wal_writer.create ~mode:Clsm_wal.Wal_writer.Sync path in
  let big = String.init 1_000_000 (fun i -> Char.chr (i mod 256)) in
  Clsm_wal.Wal_writer.append w big;
  Clsm_wal.Wal_writer.append w "small-after-big";
  Clsm_wal.Wal_writer.close w;
  (match Clsm_wal.Wal_reader.read_records path with
  | [ r1; r2 ], Clsm_wal.Wal_reader.Clean ->
      Alcotest.(check int) "big intact" 1_000_000 (String.length r1);
      Alcotest.(check bool) "content" true (r1 = big);
      Alcotest.(check string) "small after" "small-after-big" r2
  | _ -> Alcotest.fail "unexpected records");
  Sys.remove path

(* ---------- block with restart_interval 1 ---------- *)

let block_restart_every_entry () =
  let open Clsm_sstable in
  let b = Block_builder.create ~restart_interval:1 () in
  let pairs = List.init 50 (fun i -> (Printf.sprintf "key%04d" i, string_of_int i)) in
  List.iter (fun (k, v) -> Block_builder.add b ~key:k ~value:v) pairs;
  let block = Block.parse Comparator.bytewise (Block_builder.finish b) in
  Alcotest.(check int) "one restart per entry" 50 (Block.num_restarts block);
  Alcotest.(check (list (pair string string))) "contents" pairs
    (List.rev (Block.Iter.fold (fun k v a -> (k, v) :: a) block []))

(* ---------- internal key errors ---------- *)

let internal_key_errors () =
  let open Clsm_lsm in
  (match Internal_key.decode "short" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short decode accepted");
  match Internal_key.compare_encoded "abc" (Internal_key.make "a" 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short compare accepted"

(* ---------- sim engine clamping ---------- *)

let engine_past_schedule_clamps () =
  let open Clsm_sim in
  let e = Engine.create () in
  Engine.schedule_at e 5.0 (fun () -> ());
  Engine.run_all e;
  let fired_at = ref 0.0 in
  Engine.schedule_at e 1.0 (fun () -> fired_at := Engine.now e);
  Engine.run_all e;
  Alcotest.(check bool) "past event clamps to now" true (!fired_at >= 5.0)

(* ---------- store range corner cases ---------- *)

let range_corner_cases () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_misc_range_%d" (Unix.getpid ()))
  in
  let db = Clsm_core.Db.open_store (Clsm_core.Options.default ~dir) in
  List.iter (fun k -> Clsm_core.Db.put db ~key:k ~value:k) [ "a"; "b"; "c" ];
  Alcotest.(check (list (pair string string))) "limit 0" []
    (Clsm_core.Db.range ~limit:0 db);
  Alcotest.(check (list (pair string string))) "start beyond stop" []
    (Clsm_core.Db.range ~start:"x" ~stop:"c" db);
  Alcotest.(check (list (pair string string))) "stop before first" []
    (Clsm_core.Db.range ~stop:"a" db);
  Alcotest.(check (list (pair string string))) "half-open excludes stop"
    [ ("a", "a"); ("b", "b") ]
    (Clsm_core.Db.range ~stop:"c" db);
  Clsm_core.Db.close db

(* ---------- rng statistical sanity ---------- *)

let prop_rng_uniformish =
  QCheck.Test.make ~name:"rng int roughly uniform" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let buckets = Array.make 10 0 in
      for _ = 1 to 5_000 do
        let b = Rng.int rng 10 in
        buckets.(b) <- buckets.(b) + 1
      done;
      Array.for_all (fun c -> c > 300 && c < 700) buckets)

let suites =
  [
    ( "misc.skiplist",
      [
        Alcotest.test_case "height-1 degenerates safely" `Quick skiplist_height_one;
        Alcotest.test_case "cursor weak consistency after seek" `Quick
          skiplist_cursor_sees_prior_inserts_after_seek;
      ] );
    ( "misc.histogram.props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_histogram_percentile_monotone; prop_histogram_percentile_brackets_max ] );
    ( "misc.wal",
      [ Alcotest.test_case "1MB record" `Quick wal_large_record ] );
    ( "misc.block",
      [ Alcotest.test_case "restart interval 1" `Quick block_restart_every_entry ] );
    ( "misc.internal_key",
      [ Alcotest.test_case "errors" `Quick internal_key_errors ] );
    ( "misc.sim",
      [ Alcotest.test_case "past schedule clamps" `Quick engine_past_schedule_clamps ] );
    ( "misc.store",
      [ Alcotest.test_case "range corners" `Quick range_corner_cases ] );
    ( "misc.rng.props",
      List.map QCheck_alcotest.to_alcotest [ prop_rng_uniformish ] );
  ]
