lib/lsm/merge_iter.mli: Iter
