(** Simulated processes as a continuation monad: a ['a proc] eventually
    delivers an ['a] to its continuation, possibly after virtual time has
    passed. Models read naturally:

    {[
      let op engine cpu lock =
        let* () = Sim_mutex.lock lock in
        let* () = Resource.use cpu 2e-6 in
        Sim_mutex.unlock lock;
        Proc.return ()
    ]} *)

type 'a t = ('a -> unit) -> unit

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

val delay : Engine.t -> float -> unit t
(** Pass virtual time without holding any resource. *)

val spawn : 'a t -> unit
(** Start a process, discarding its result. *)

val rec_loop : ('a -> 'a t) -> 'a -> unit
(** Tail-recursive process loop without stack growth: each iteration's
    continuation is trampolined through the scheduler only when the body
    suspends; synchronous bodies are bounded by an explicit bounce. *)

val yield : Engine.t -> unit t
(** Reschedule at the current instant (lets same-time events interleave and
    bounds the native stack in synchronous loops). *)
