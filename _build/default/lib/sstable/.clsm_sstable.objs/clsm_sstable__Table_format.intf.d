lib/sstable/table_format.mli: Block_handle
