module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type key
  type 'v t

  val create : ?max_height:int -> ?seed:int -> unit -> 'v t
  val insert : 'v t -> key -> 'v -> bool
  val find : 'v t -> key -> 'v option
  val find_le : 'v t -> key -> (key * 'v) option
  val find_ge : 'v t -> key -> (key * 'v) option
  val is_empty : 'v t -> bool
  val length : 'v t -> int
  val iter : (key -> 'v -> unit) -> 'v t -> unit
  val fold : (key -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
  val to_list : 'v t -> (key * 'v) list

  module Cursor : sig
    type 'v cursor

    val make : 'v t -> 'v cursor
    val seek_first : 'v cursor -> unit
    val seek : 'v cursor -> key -> unit
    val valid : 'v cursor -> bool
    val current : 'v cursor -> (key * 'v) option
    val next : 'v cursor -> unit
  end

  module Raw : sig
    type 'v location

    val locate : 'v t -> key -> 'v location
    val prev_binding : 'v location -> (key * 'v) option
    val succ_binding : 'v location -> (key * 'v) option
    val try_insert : 'v t -> 'v location -> key -> 'v -> bool
  end
end

module Make (Key : ORDERED) = struct
  type key = Key.t

  type 'v node = { key : key; value : 'v; next : 'v succ Atomic.t array }
  and 'v succ = Nil | Next of 'v node

  type 'v t = {
    head : 'v succ Atomic.t array;
    max_height : int;
    height : int Atomic.t;
    rand : int Atomic.t;
  }

  let create ?(max_height = 20) ?(seed = 0x1d872b41) () =
    if max_height < 1 then invalid_arg "Skiplist.create";
    {
      head = Array.init max_height (fun _ -> Atomic.make Nil);
      max_height;
      height = Atomic.make 1;
      rand = Atomic.make seed;
    }

  (* Geometric tower height with branching factor 4 (LevelDB's choice). *)
  let random_height t =
    let r =
      Clsm_util.Hashing.mix64 (Atomic.fetch_and_add t.rand 0x3504f333f9de642)
    in
    let rec go h r =
      if h >= t.max_height || r land 3 <> 0 then h else go (h + 1) (r lsr 2)
    in
    go 1 (r lsr 3)

  let rec bump_height t h =
    let cur = Atomic.get t.height in
    if cur >= h then ()
    else if Atomic.compare_and_set t.height cur h then ()
    else bump_height t h

  (* Walk one level. [cell] is the link field of [pred] at [level] (or the
     head link). Returns the last (pred, cell) with pred.key < key and the
     successor value stopped at. *)
  let rec walk_level key level pred cell =
    match Atomic.get cell with
    | Nil -> (pred, cell, Nil)
    | Next n as s ->
        if Key.compare n.key key < 0 then
          walk_level key level (Some n) n.next.(level)
        else (pred, cell, s)

  let cell_of t level pred =
    match pred with None -> t.head.(level) | Some n -> n.next.(level)

  (* Descend from the top, returning the bottom-level (pred, cell, succ). *)
  let locate_bottom t key =
    let top = Atomic.get t.height - 1 in
    let rec go level pred =
      let pred', cell, succ = walk_level key level pred (cell_of t level pred) in
      if level = 0 then (pred', cell, succ) else go (level - 1) pred'
    in
    go top None

  (* Descend from the top but stop at [level], for relinking upper levels
     after a CAS failure. *)
  let locate_at_level t key level =
    let top = max (Atomic.get t.height - 1) level in
    let rec go l pred =
      let pred', cell, succ = walk_level key l pred (cell_of t l pred) in
      if l = level then (cell, succ) else go (l - 1) pred'
    in
    go top None

  (* Link [node] at levels 1..h-1. Each level is published with a CAS; on
     failure the level is re-located and retried. Correctness only needs the
     bottom level, which is already linked. *)
  let link_upper t node h =
    for level = 1 to h - 1 do
      let rec link () =
        let cell, succ = locate_at_level t node.key level in
        Atomic.set node.next.(level) succ;
        if not (Atomic.compare_and_set cell succ (Next node)) then link ()
      in
      link ()
    done

  let insert t key value =
    let h = random_height t in
    bump_height t h;
    let rec attempt () =
      let preds = Array.make h None in
      let cells = Array.make h t.head.(0) in
      let succs = Array.make h Nil in
      let top = max (Atomic.get t.height - 1) (h - 1) in
      let rec descend level pred =
        let pred', cell, succ =
          walk_level key level pred (cell_of t level pred)
        in
        if level < h then begin
          preds.(level) <- pred';
          cells.(level) <- cell;
          succs.(level) <- succ
        end;
        if level = 0 then (cell, succ) else descend (level - 1) pred'
      in
      let bottom_cell, bottom_succ = descend top None in
      match bottom_succ with
      | Next n when Key.compare n.key key = 0 -> false (* duplicate *)
      | _ ->
          let node =
            { key; value; next = Array.init h (fun l -> Atomic.make succs.(l)) }
          in
          if Atomic.compare_and_set bottom_cell bottom_succ (Next node) then begin
            link_upper t node h;
            true
          end
          else attempt ()
    in
    attempt ()

  let find t key =
    let _, _, succ = locate_bottom t key in
    match succ with
    | Next n when Key.compare n.key key = 0 -> Some n.value
    | Next _ | Nil -> None

  let find_le t key =
    let pred, _, succ = locate_bottom t key in
    match succ with
    | Next n when Key.compare n.key key = 0 -> Some (n.key, n.value)
    | Next _ | Nil -> (
        match pred with None -> None | Some p -> Some (p.key, p.value))

  let find_ge t key =
    let _, _, succ = locate_bottom t key in
    match succ with Next n -> Some (n.key, n.value) | Nil -> None

  let is_empty t = Atomic.get t.head.(0) = Nil

  let fold f t acc =
    let rec go cell acc =
      match Atomic.get cell with
      | Nil -> acc
      | Next n -> go n.next.(0) (f n.key n.value acc)
    in
    go t.head.(0) acc

  let length t = fold (fun _ _ acc -> acc + 1) t 0
  let iter f t = fold (fun k v () -> f k v) t ()
  let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

  module Cursor = struct
    type 'v pos = Unpositioned | At of 'v node | Exhausted
    type 'v cursor = { sl : 'v t; mutable pos : 'v pos }

    let make sl = { sl; pos = Unpositioned }

    let of_succ = function Nil -> Exhausted | Next n -> At n

    let seek_first c = c.pos <- of_succ (Atomic.get c.sl.head.(0))

    let seek c key =
      let _, _, succ = locate_bottom c.sl key in
      c.pos <- of_succ succ

    let valid c = match c.pos with At _ -> true | Unpositioned | Exhausted -> false

    let current c =
      match c.pos with
      | At n -> Some (n.key, n.value)
      | Unpositioned | Exhausted -> None

    let next c =
      match c.pos with
      | At n -> c.pos <- of_succ (Atomic.get n.next.(0))
      | Unpositioned | Exhausted -> ()
  end

  module Raw = struct
    type 'v location = {
      loc_prev : 'v node option;
      loc_cell : 'v succ Atomic.t;
      loc_succ : 'v succ;
    }

    (* The predecessor is the greatest node <= key (Algorithm 3 line 5
       locates max (k', ts') <= (k, inf)), so an exact match becomes the
       predecessor rather than the successor. *)
    let locate t key =
      let pred, cell, succ = locate_bottom t key in
      match succ with
      | Next n when Key.compare n.key key = 0 ->
          {
            loc_prev = Some n;
            loc_cell = n.next.(0);
            loc_succ = Atomic.get n.next.(0);
          }
      | Next _ | Nil -> { loc_prev = pred; loc_cell = cell; loc_succ = succ }

    let prev_binding loc =
      match loc.loc_prev with None -> None | Some n -> Some (n.key, n.value)

    let succ_binding loc =
      match loc.loc_succ with Nil -> None | Next n -> Some (n.key, n.value)

    let try_insert t loc key value =
      (match loc.loc_prev with
      | Some p -> assert (Key.compare p.key key < 0)
      | None -> ());
      (match loc.loc_succ with
      | Next n -> assert (Key.compare n.key key > 0)
      | Nil -> ());
      let h = random_height t in
      bump_height t h;
      let node =
        { key; value; next = Array.init h (fun _ -> Atomic.make loc.loc_succ) }
      in
      if Atomic.compare_and_set loc.loc_cell loc.loc_succ (Next node) then begin
        link_upper t node h;
        true
      end
      else false
  end
end
