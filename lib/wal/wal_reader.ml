module Env = Clsm_env.Env

type outcome = Clean | Torn_tail | Corrupt_tail

exception Corrupt of string

let read_records ?(env = Env.unix) ?(strict = false) path =
  let contents = env.Env.read_file path in
  let rec go pos acc =
    match Wal_record.decode contents ~pos with
    | `End -> (List.rev acc, Clean)
    | `Torn -> (List.rev acc, Torn_tail)
    | `Corrupt -> (List.rev acc, Corrupt_tail)
    | `Record (payload, next) -> go next (payload :: acc)
  in
  let records, outcome = go 0 [] in
  (if strict then
     match outcome with
     | Clean -> ()
     | Torn_tail ->
         raise (Corrupt (path ^ ": torn record at tail (crash mid-write?)"))
     | Corrupt_tail ->
         raise (Corrupt (path ^ ": checksum mismatch in tail record")));
  (records, outcome)
