(** The systems compared in the paper's evaluation (§5), reduced to their
    published concurrency disciplines. *)

type t =
  | Clsm  (** shared-exclusive lock, lock-free memtable, non-blocking reads *)
  | Leveldb  (** global mutex, single writer, reads lock briefly *)
  | Hyperleveldb  (** fine-grained write locking, LevelDB-style reads *)
  | Rocksdb
      (** single writer, lock-free reads via thread-local version caching,
          multi-threaded compaction *)
  | Blsm  (** single writer with merge scheduling *)
  | Striped_rmw  (** Figure 9 baseline: LevelDB + per-key lock striping *)

val name : t -> string
val all : t list
val of_name : string -> t option
