(* The checked-in lock-discipline spec (lockspec.sexp): the declared
   locks, the global acquisition partial order, the blocking blacklist,
   condition-variable associations, the Atomic/Domain allowlist, the
   hand-over-hand functions permitted to use bare Mutex.lock, and the
   with-style wrappers the analyzer interprets.

   The spec is DATA, reviewed like code: adding a mutex to the system
   means adding a lock declaration and its order edges here. *)

module SS = Set.Make (String)

exception Spec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

type lock_decl = {
  l_name : string;
  l_fields : string list;  (* record-field names denoting this lock *)
  l_vars : string list;    (* plain variable names denoting this lock *)
  l_modules : string list; (* restrict matching to these modules; [] = any *)
}

type wrapper = {
  w_name : string;          (* function name, e.g. "protect" *)
  w_module : string option; (* module the qualified call or definition lives in *)
  w_lock_arg : int option;  (* 1-based positional argument holding the lock expr *)
  w_lock : string option;   (* or: a fixed lock name *)
  w_shared : bool;          (* acquires in shared (reader) mode *)
}

type condvar = {
  c_field : string;         (* condvar record-field name *)
  c_module : string option;
  c_lock : string;          (* the one mutex this condvar may be waited on with *)
}

type t = {
  locks : lock_decl list;
  order_edges : (string * string) list;
  order_closure : (string, SS.t) Hashtbl.t; (* a -> every lock allowed under a *)
  no_block : SS.t;       (* locks that must never be held across blocking calls *)
  blocking_calls : SS.t; (* dotted function names, e.g. Unix.sleepf *)
  blocking_fields : SS.t;(* record fields whose application blocks (Env IO) *)
  condvars : condvar list;
  atomics_modules : SS.t;(* modules allowed to touch Atomic./Domain. *)
  allow_bare : SS.t;     (* "Module.fn" allowed to use bare Mutex.lock/unlock *)
  wrappers : wrapper list;
}

let lock_names spec = List.map (fun l -> l.l_name) spec.locks

let find_lock_decl spec name =
  List.find_opt (fun l -> l.l_name = name) spec.locks

(* a may be held while acquiring b *)
let order_allows spec a b =
  match Hashtbl.find_opt spec.order_closure a with
  | Some set -> SS.mem b set
  | None -> false

(* ---------- parsing ---------- *)

let atom = function
  | Sexp.Atom a -> a
  | Sexp.List _ -> err "expected atom, found list"

let atoms = List.map atom

let parse_lock = function
  | Sexp.List (Sexp.Atom name :: props) ->
      let fields = ref [] and vars = ref [] and modules = ref [] in
      List.iter
        (function
          | Sexp.List (Sexp.Atom "fields" :: xs) -> fields := atoms xs
          | Sexp.List (Sexp.Atom "vars" :: xs) -> vars := atoms xs
          | Sexp.List (Sexp.Atom "modules" :: xs) -> modules := atoms xs
          | s -> err "lock %s: bad property %s" name (match s with Sexp.List (Sexp.Atom p :: _) -> p | _ -> "?"))
        props;
      { l_name = name; l_fields = !fields; l_vars = !vars; l_modules = !modules }
  | _ -> err "bad lock declaration"

let parse_wrapper = function
  | Sexp.List (Sexp.Atom qname :: props) ->
      let w_module, w_name =
        match String.rindex_opt qname '.' with
        | Some i ->
            ( Some (String.sub qname 0 i),
              String.sub qname (i + 1) (String.length qname - i - 1) )
        | None -> (None, qname)
      in
      let lock_arg = ref None and lock = ref None and shared = ref false in
      List.iter
        (function
          | Sexp.List [ Sexp.Atom "lock_arg"; Sexp.Atom n ] ->
              lock_arg := Some (int_of_string n)
          | Sexp.List [ Sexp.Atom "lock"; Sexp.Atom l ] -> lock := Some l
          | Sexp.Atom "shared" -> shared := true
          | _ -> err "wrapper %s: bad property" qname)
        props;
      {
        w_name;
        w_module;
        w_lock_arg = !lock_arg;
        w_lock = !lock;
        w_shared = !shared;
      }
  | _ -> err "bad wrapper declaration"

let parse_condvar = function
  | Sexp.List props ->
      let field = ref None and m = ref None and lock = ref None in
      List.iter
        (function
          | Sexp.List [ Sexp.Atom "field"; Sexp.Atom f ] -> field := Some f
          | Sexp.List [ Sexp.Atom "module"; Sexp.Atom x ] -> m := Some x
          | Sexp.List [ Sexp.Atom "lock"; Sexp.Atom l ] -> lock := Some l
          | _ -> err "bad condvar property")
        props;
      (match (!field, !lock) with
      | Some f, Some l -> { c_field = f; c_module = !m; c_lock = l }
      | _ -> err "condvar needs (field ...) and (lock ...)")
  | _ -> err "bad condvar declaration"

(* Transitive closure over the declared edges; a cycle in the declared
   order is itself a spec error (the relation must be a partial order). *)
let close_order locks edges =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace tbl l SS.empty) locks;
  List.iter
    (fun (a, b) ->
      if not (List.mem a locks) then err "order edge refers to unknown lock %s" a;
      if not (List.mem b locks) then err "order edge refers to unknown lock %s" b;
      Hashtbl.replace tbl a (SS.add b (Hashtbl.find tbl a)))
    edges;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun a succ ->
        let bigger =
          SS.fold
            (fun b acc ->
              match Hashtbl.find_opt tbl b with
              | Some sb -> SS.union acc sb
              | None -> acc)
            succ succ
        in
        if not (SS.equal bigger succ) then begin
          Hashtbl.replace tbl a bigger;
          changed := true
        end)
      tbl
  done;
  Hashtbl.iter
    (fun a succ ->
      if SS.mem a succ then err "lock order cycle through %s" a)
    tbl;
  tbl

let load path =
  let forms = Sexp.parse_file path in
  let locks = ref [] and edges = ref [] and no_block = ref [] in
  let bcalls = ref [] and bfields = ref [] in
  let condvars = ref [] and atomics = ref [] and bare = ref [] in
  let wrappers = ref [] in
  List.iter
    (function
      | Sexp.List (Sexp.Atom "locks" :: xs) ->
          locks := !locks @ List.map parse_lock xs
      | Sexp.List (Sexp.Atom "order" :: xs) ->
          List.iter
            (function
              | Sexp.List [ Sexp.Atom a; Sexp.Atom b ] ->
                  edges := (a, b) :: !edges
              | _ -> err "order edges are (before after) pairs")
            xs
      | Sexp.List (Sexp.Atom "no_block_while_holding" :: xs) ->
          no_block := !no_block @ atoms xs
      | Sexp.List (Sexp.Atom "blocking" :: xs) ->
          List.iter
            (function
              | Sexp.List (Sexp.Atom "calls" :: cs) -> bcalls := !bcalls @ atoms cs
              | Sexp.List (Sexp.Atom "fields" :: fs) ->
                  bfields := !bfields @ atoms fs
              | _ -> err "blocking takes (calls ...) and (fields ...)")
            xs
      | Sexp.List (Sexp.Atom "condvars" :: xs) ->
          condvars := !condvars @ List.map parse_condvar xs
      | Sexp.List (Sexp.Atom "atomics_allowed" :: xs) ->
          atomics := !atomics @ atoms xs
      | Sexp.List (Sexp.Atom "allow_bare" :: xs) -> bare := !bare @ atoms xs
      | Sexp.List (Sexp.Atom "wrappers" :: xs) ->
          wrappers := !wrappers @ List.map parse_wrapper xs
      | Sexp.List (Sexp.Atom kw :: _) -> err "unknown spec section %s" kw
      | _ -> err "top-level spec forms must be lists")
    forms;
  let lock_list = !locks in
  let names = List.map (fun l -> l.l_name) lock_list in
  List.iter
    (fun n ->
      if not (List.mem n names) then
        err "no_block_while_holding refers to unknown lock %s" n)
    !no_block;
  List.iter
    (fun (c : condvar) ->
      if not (List.mem c.c_lock names) then
        err "condvar refers to unknown lock %s" c.c_lock)
    !condvars;
  {
    locks = lock_list;
    order_edges = List.rev !edges;
    order_closure = close_order names (List.rev !edges);
    no_block = SS.of_list !no_block;
    blocking_calls = SS.of_list !bcalls;
    blocking_fields = SS.of_list !bfields;
    condvars = !condvars;
    atomics_modules = SS.of_list !atomics;
    allow_bare = SS.of_list !bare;
    wrappers = !wrappers;
  }
