lib/primitives/refcounted.mli:
