(* Quickstart: the cLSM public API in two minutes.

   Run with:  dune exec examples/quickstart.exe *)

open Clsm_core

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "clsm_quickstart" in
  remove_tree dir (* start from an empty store so the walkthrough is exact *);
  let db = Db.open_store (Options.default ~dir) in

  (* Atomic puts and gets. *)
  Db.put db ~key:"user:1001:name" ~value:"ada";
  Db.put db ~key:"user:1001:email" ~value:"ada@example.org";
  Db.put db ~key:"user:1002:name" ~value:"grace";
  assert (Db.get db "user:1001:name" = Some "ada");

  (* Deletes are puts of a deletion marker. *)
  Db.delete db ~key:"user:1001:email";
  assert (Db.get db "user:1001:email" = None);

  (* Consistent snapshot: later writes are invisible to it. *)
  let snap = Db.get_snap db in
  Db.put db ~key:"user:1001:name" ~value:"ada lovelace";
  assert (Db.get_at db snap "user:1001:name" = Some "ada");
  assert (Db.get db "user:1001:name" = Some "ada lovelace");

  (* Range queries iterate the snapshot in key order. *)
  let users = Db.range ~snapshot:snap ~start:"user:" ~stop:"user;" db in
  List.iter (fun (k, v) -> Printf.printf "  %s -> %s\n" k v) users;
  Db.release_snapshot db snap;

  (* Non-blocking atomic read-modify-write: a visit counter no concurrent
     writer can clobber. *)
  for _ = 1 to 10 do
    ignore
      (Db.rmw db ~key:"user:1001:visits" (fun v ->
           let n = match v with Some s -> int_of_string s | None -> 0 in
           Db.Set (string_of_int (n + 1))))
  done;
  assert (Db.get db "user:1001:visits" = Some "10");

  (* Atomic write batches: all-or-nothing against writers, snapshots and
     the log. *)
  Db.write_batch db
    [
      Db.Batch_put ("order:77:hdr", "total=30");
      Db.Batch_put ("order:77:line1", "widget x3");
      Db.Batch_delete "order:76:hdr";
    ];
  assert (Db.get db "order:77:line1" = Some "widget x3");

  (* Consistent multi-key reads. *)
  (match Db.multi_get db [ "order:77:hdr"; "order:76:hdr" ] with
  | [ (_, Some _); (_, None) ] -> ()
  | _ -> assert false);

  (* put-if-absent claims a key atomically across threads. *)
  assert (Db.put_if_absent db ~key:"lock:resource-7" ~value:"me");
  assert (not (Db.put_if_absent db ~key:"lock:resource-7" ~value:"you"));

  Format.printf "store stats: %a@." Stats.pp (Db.stats db);
  Db.close db;

  (* Everything survives a restart (WAL replay + manifest). *)
  let db = Db.open_store (Options.default ~dir) in
  assert (Db.get db "user:1001:visits" = Some "10");
  assert (Db.get db "user:1001:name" = Some "ada lovelace");
  Db.close db;
  print_endline "quickstart: OK"
