(** Builder for a sorted key-value block (LevelDB block format).

    Entries are prefix-compressed against their predecessor; every
    [restart_interval]-th entry stores its key in full and its offset is
    recorded in a trailing restart array, enabling binary search at read
    time. Layout:

    {v
    entry*   :=  shared(varint) non_shared(varint) value_len(varint)
                 key_suffix value
    trailer  :=  restart_offset(fixed32)* num_restarts(fixed32)
    v} *)

type t

val create : ?restart_interval:int -> unit -> t
(** Default restart interval: 16 entries (LevelDB's default). *)

val add : t -> key:string -> value:string -> unit
(** Keys must be added in strictly increasing order (asserted against the
    previous key bytewise only when prefix compression applies; callers are
    responsible for global ordering under their comparator). *)

val finish : t -> string
(** Serialize. The builder must not be reused afterwards. *)

val num_entries : t -> int

val estimated_size : t -> int
(** Current serialized size estimate, for block-size targeting. *)

val is_empty : t -> bool

val reset : t -> unit
(** Clear for building the next block. *)

val last_key : t -> string option
(** The most recently added key (used for index separators). *)
