bench/figures.ml: Clsm_sim_lsm Clsm_workload Experiment Lazy List Printf String System Workload_spec
