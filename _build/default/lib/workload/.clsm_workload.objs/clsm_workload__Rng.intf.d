lib/workload/rng.mli:
