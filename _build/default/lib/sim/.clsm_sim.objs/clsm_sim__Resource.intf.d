lib/sim/resource.mli: Engine Proc
