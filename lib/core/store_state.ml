(* The store's shared state, factored out of the store functor so the
   layered subsystems — Recovery, Backpressure, Maintenance_hooks and the
   algorithm core in Store — can all be written against the same record
   without living in one monolithic module. OCaml functors are
   applicative, so every [Store_state.Make (M)] names the same types. *)

module Make (M : Memtable_intf.S) = struct
  open Clsm_primitives
  open Clsm_lsm

  (* A memory component: the skip-list plus the log that covers it. *)
  type memcomp = {
    mem : M.t;
    wal : Clsm_wal.Wal_writer.t option;
    wal_number : int;
  }

  type imm_slot = No_imm | Imm of memcomp

  (* Claim ledger for the maintenance worker pool: which job slots are
     taken right now. [flush_claimed] serializes the rotate/flush path
     (the paper's beforeMerge/afterMerge pair must not race itself);
     [busy_levels] holds the (src, target) ranges of in-flight
     compactions so parallel workers only ever merge disjoint ranges.
     A claimed compaction carries its picked task and a reference on the
     version it was picked from, so input files cannot be retired
     between claim and execution. *)
  type claimed_compaction = {
    task : Compaction.task;
    pinned : Version.t Refcounted.t;
  }

  type claims = {
    cm : Mutex.t;
    mutable flush_claimed : bool;
    mutable busy_levels : (int * int) list;
    mutable pending : ((int * int) * claimed_compaction) list;
  }

  type t = {
    opts : Options.t;
    lock : Shared_lock.t;
    clock : Clock.t;
        (* the logical-time domain: timeCounter, Active/put_active,
           snapTime and the snapshot registry. Private by default;
           injected (shared) when this store is one shard of a
           range-sharded deployment *)
    pm : memcomp Rcu_box.t;
    pimm : imm_slot Rcu_box.t;
    pd : Version.t Rcu_box.t;
    next_file : int Atomic.t;
    cache : Clsm_sstable.Block.t Clsm_sstable.Cache.t;
    stats : Stats.t;
    stop : bool Atomic.t;
    install : Mutex.t;
        (* serializes component installs + manifest saves: the manifest
           written must describe a version no concurrent install is
           tearing, and must hit disk before the WAL it obsoletes is
           deleted *)
    claims : claims;
    backpressure : Backpressure.t;
    compact_pointers : string array; (* per-level round-robin cursors *)
    mutable scheduler : Clsm_maintenance.Scheduler.t option;
    mutable wake_hook : (unit -> unit) option;
        (* where maintenance-work signals go when the pool is external
           (a shard router's shared scheduler) instead of [scheduler] *)
    degraded : string option Atomic.t;
        (* Some reason once an unrecoverable IO failure (ENOSPC, failed
           fsync) hits a maintenance path: the store stops accepting
           writes and scheduling maintenance but keeps serving reads *)
    mutable closed : bool;
    close_mutex : Mutex.t;
  }

  let alloc_file_number t () = Atomic.fetch_and_add t.next_file 1

  (* First degradation reason wins; later failures are consequences. *)
  let degrade t reason =
    ignore (Atomic.compare_and_set t.degraded None (Some reason) : bool)

  let is_degraded t = Atomic.get t.degraded <> None

  let current_pm t = Refcounted.value (Rcu_box.peek t.pm)
  let current_imm t = Refcounted.value (Rcu_box.peek t.pimm)
  let current_version t = Refcounted.value (Rcu_box.peek t.pd)

  (* Signal the maintenance scheduler that work exists (memtable over
     threshold, rotation, stall). The paper's sleep-polling background
     loop is gone: this is a real Mutex+Condition wakeup. *)
  let wake_bg t =
    match (t.scheduler, t.wake_hook) with
    | Some s, _ ->
        Stats.incr_maintenance_wakeups t.stats;
        Clsm_maintenance.Scheduler.wake s
    | None, Some wake ->
        Stats.incr_maintenance_wakeups t.stats;
        wake ()
    | None, None -> ()

  (* ---------- manifest ---------- *)

  let manifest_of_state t =
    let v = current_version t in
    let l0 =
      List.map (fun f -> (0, (Refcounted.value f).Table_file.number)) v.Version.l0
    in
    let deeper =
      List.concat
        (List.mapi
           (fun i files ->
             List.map
               (fun f -> (i + 1, (Refcounted.value f).Table_file.number))
               files)
           (Array.to_list v.Version.levels))
    in
    {
      Manifest.next_file_number = Atomic.get t.next_file;
      last_ts = Clock.now t.clock;
      wal_number = (current_pm t).wal_number;
      files = l0 @ deeper;
    }

  (* Caller holds [t.install]. *)
  let save_manifest t =
    Manifest.save ~env:t.opts.Options.env ~dir:t.opts.Options.dir
      (manifest_of_state t)
end
