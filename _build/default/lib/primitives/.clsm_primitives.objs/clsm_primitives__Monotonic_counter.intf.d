lib/primitives/monotonic_counter.mli:
