(* Each shard: Hashtbl + doubly-linked LRU list under a private mutex. *)

type 'a node = {
  key : string;
  value : 'a;
  w : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a shard = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable used : int;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = { shards : 'a shard array; weight_of : 'a -> int }

type stats = { hits : int; misses : int; evictions : int; weight : int }

let create ?(shards = 16) ~capacity ~weight () =
  if shards < 1 || capacity < 0 then invalid_arg "Cache.create";
  let per_shard = max 1 (capacity / shards) in
  let make_shard _ =
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 64;
      head = None;
      tail = None;
      used = 0;
      capacity = per_shard;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  { shards = Array.init shards make_shard; weight_of = weight }

let shard_of t key =
  t.shards.(Clsm_util.Hashing.hash ~seed:0x5bd1e995 key
            mod Array.length t.shards)

let unlink sh node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> sh.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> sh.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front sh node =
  node.next <- sh.head;
  node.prev <- None;
  (match sh.head with Some h -> h.prev <- Some node | None -> sh.tail <- Some node);
  sh.head <- Some node

let evict_until_fits sh =
  while sh.used > sh.capacity && sh.tail <> None do
    match sh.tail with
    | Some lru ->
        unlink sh lru;
        Hashtbl.remove sh.table lru.key;
        sh.used <- sh.used - lru.w;
        sh.evictions <- sh.evictions + 1
    | None -> ()
  done

let with_shard t key f =
  let sh = shard_of t key in
  Mutex.lock sh.mutex;
  match f sh with
  | v ->
      Mutex.unlock sh.mutex;
      v
  | exception e ->
      Mutex.unlock sh.mutex;
      raise e

let find t key =
  with_shard t key (fun sh ->
      match Hashtbl.find_opt sh.table key with
      | Some node ->
          sh.hits <- sh.hits + 1;
          unlink sh node;
          push_front sh node;
          Some node.value
      | None ->
          sh.misses <- sh.misses + 1;
          None)

let insert_locked t sh key value =
  (match Hashtbl.find_opt sh.table key with
  | Some old ->
      unlink sh old;
      Hashtbl.remove sh.table key;
      sh.used <- sh.used - old.w
  | None -> ());
  let w = t.weight_of value in
  if w <= sh.capacity then begin
    let node = { key; value; w; prev = None; next = None } in
    Hashtbl.replace sh.table key node;
    push_front sh node;
    sh.used <- sh.used + w;
    evict_until_fits sh
  end

let insert t key value =
  with_shard t key (fun sh -> insert_locked t sh key value)

let find_or_add t key f =
  match find t key with
  | Some v -> v
  | None ->
      (* Compute outside the shard lock: block decode can be slow and must
         not serialize unrelated lookups. *)
      let v = f () in
      with_shard t key (fun sh ->
          match Hashtbl.find_opt sh.table key with
          | Some node -> node.value
          | None ->
              insert_locked t sh key v;
              v)

let remove t key =
  with_shard t key (fun sh ->
      match Hashtbl.find_opt sh.table key with
      | Some node ->
          unlink sh node;
          Hashtbl.remove sh.table key;
          sh.used <- sh.used - node.w
      | None -> ())

let clear t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.mutex;
      Hashtbl.reset sh.table;
      sh.head <- None;
      sh.tail <- None;
      sh.used <- 0;
      Mutex.unlock sh.mutex)
    t.shards

let stats t =
  Array.fold_left
    (fun acc (sh : _ shard) ->
      {
        hits = acc.hits + sh.hits;
        misses = acc.misses + sh.misses;
        evictions = acc.evictions + sh.evictions;
        weight = acc.weight + sh.used;
      })
    { hits = 0; misses = 0; evictions = 0; weight = 0 }
    t.shards

let cardinal t =
  Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.table) 0 t.shards
