type t = {
  engine : Engine.t;
  servers : int;
  mutable in_service : int;
  waiters : (float * (unit -> unit)) Queue.t;
  mutable served_time : float;
}

let create engine ~servers =
  if servers < 1 then invalid_arg "Resource.create";
  { engine; servers; in_service = 0; waiters = Queue.create (); served_time = 0.0 }

let rec start t duration k =
  t.in_service <- t.in_service + 1;
  t.served_time <- t.served_time +. duration;
  Engine.schedule_after t.engine duration (fun () ->
      t.in_service <- t.in_service - 1;
      (* Hand the freed server to the next waiter before resuming us, so
         FIFO order is preserved at equal timestamps. *)
      (if not (Queue.is_empty t.waiters) then
         let d, k' = Queue.pop t.waiters in
         start t d k');
      k ())

let use t duration k =
  if t.in_service < t.servers then start t duration k
  else Queue.push (duration, k) t.waiters

let busy t = t.in_service
let queue_length t = Queue.length t.waiters
let busy_time t = t.served_time

let utilization t ~horizon =
  if horizon <= 0.0 then 0.0
  else t.served_time /. (float_of_int t.servers *. horizon)
