(* Crash recovery and directory repair, factored out of the store
   functor. [Make (M).recover] rebuilds the full starting state of a
   store directory — disk version from the manifest, memtable from WAL
   replay, counters — and leaves the directory clean (orphans and temp
   files removed, replayed records re-logged into a fresh WAL, a
   manifest that makes the old logs redundant). The store only has to
   wrap the result in its runtime state and start maintenance. *)

open Clsm_primitives
open Clsm_lsm
module Env = Clsm_env.Env

let list_files ~env dir =
  Env.(env.list_dir) dir
  |> List.filter_map (fun name ->
         match String.split_on_char '.' name with
         | [ num; ext ] -> (
             match int_of_string_opt num with
             | Some n when ext = "sst" -> Some (`Table (n, name))
             | Some n when ext = "log" -> Some (`Wal (n, name))
             | _ -> None)
         | _ -> None)

(* Builders and the manifest writer stage output in [<name>.tmp] and
   publish by rename; a crash in between strands the temp file. Nothing
   ever reads one back, so they are all garbage on open. *)
let remove_temp_files ~env dir =
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        try Env.(env.remove) (Filename.concat dir name)
        with Env.Error _ -> ())
    (Env.(env.list_dir) dir)

(* LevelDB's RepairDB: reconstruct a usable manifest from whatever table
   files survive in the directory. Every table is installed at level 0
   (overlap is legal there); higher timestamps win on reads, so no data is
   mis-ordered. WAL files are retained for replay by the next open. *)
let repair ?(env = Env.unix) ~dir () =
  remove_temp_files ~env dir;
  let files = list_files ~env dir in
  let tables =
    List.filter_map (function `Table (n, _) -> Some n | `Wal _ -> None) files
    |> List.sort compare
  in
  let wals =
    List.filter_map (function `Wal (n, _) -> Some n | `Table _ -> None) files
  in
  (* Probe each table; drop unreadable ones (renamed aside, not deleted).
     The highest timestamp seen anywhere restores the counter so new writes
     stay newer than recovered data. *)
  let max_ts = ref 0 in
  let usable =
    List.filter
      (fun n ->
        let aside () =
          let path = Table_file.table_path ~dir n in
          try Env.(env.rename) ~src:path ~dst:(path ^ ".damaged")
          with Env.Error _ -> ()
        in
        match Table_file.open_number ~env ~dir n with
        | tf -> (
            match Clsm_sstable.Table.verify tf.Table_file.table with
            | Ok _ ->
                Clsm_sstable.Table.fold
                  (fun ik _ () ->
                    let ts = Internal_key.ts_of ik in
                    if ts > !max_ts then max_ts := ts)
                  tf.Table_file.table ();
                Clsm_sstable.Table.close tf.Table_file.table;
                true
            | Error _ ->
                Clsm_sstable.Table.close tf.Table_file.table;
                aside ();
                false)
        | exception _ ->
            aside ();
            false)
      tables
  in
  let max_number = List.fold_left max 0 (usable @ wals) in
  Manifest.save ~env ~dir
    {
      Manifest.next_file_number = max_number + 1;
      last_ts = !max_ts;
      wal_number = List.fold_left min max_int (max_int :: wals);
      (* newest tables first, like fresh flushes *)
      files = List.map (fun n -> (0, n)) (List.rev usable);
      (* offline repair starts a clean slate: unreadable tables were
         renamed aside above, so nothing is left to quarantine *)
      quarantined = [];
    }

module Make (M : Memtable_intf.S) = struct
  type recovered = {
    version : Version.t;  (** one creation reference, caller owns *)
    mem : M.t;  (** memtable rebuilt from WAL replay *)
    wal : Clsm_wal.Wal_writer.t option;  (** fresh log covering [mem] *)
    wal_number : int;
    last_ts : int;  (** highest timestamp seen anywhere *)
    next_file : int Atomic.t;
    quarantined : int list;
        (** table numbers under QUARANTINE records in the manifest:
            neither opened into the version nor collected as orphans *)
  }

  let load_version (opts : Options.t) ~cache ~disk_files =
    let env = opts.Options.env in
    let num_levels = opts.Options.lsm.Lsm_config.num_levels in
    match Manifest.load ~env ~dir:opts.dir () with
    | None -> (Version.empty ~num_levels, 1, 0, 0, [])
    | Some m ->
        (* Drop orphans: tables not in the manifest (half-finished flush or
           compaction) and logs below the manifest's replay floor.
           Quarantined tables are neither: known corrupt, excluded from
           the read view, but kept on disk as evidence until repair
           finalization renames them aside. *)
        let live = List.map snd m.Manifest.files in
        let quarantined = m.Manifest.quarantined in
        List.iter
          (fun f ->
            match f with
            | `Table (n, name)
              when (not (List.mem n live)) && not (List.mem n quarantined) ->
                Env.(env.remove) (Filename.concat opts.dir name)
            | `Wal (n, name) when n < m.Manifest.wal_number ->
                Env.(env.remove) (Filename.concat opts.dir name)
            | `Table _ | `Wal _ -> ())
          disk_files;
        let l0 = ref [] and levels = Array.make (num_levels - 1) [] in
        List.iter
          (fun (level, number) ->
            let tf = Table_file.open_number ~cache ~env ~dir:opts.dir number in
            let cell = Refcounted.create ~release:Table_file.release tf in
            if level = 0 then l0 := cell :: !l0
            else levels.(level - 1) <- cell :: levels.(level - 1))
          m.Manifest.files;
        let sort_level files =
          List.sort
            (fun a b ->
              Internal_key.compare_encoded
                (Refcounted.value a).Table_file.smallest
                (Refcounted.value b).Table_file.smallest)
            files
        in
        Array.iteri (fun i files -> levels.(i) <- sort_level files) levels;
        (* l0 was reversed by consing; manifest order is newest first *)
        let v = Version.create ~l0:(List.rev !l0) ~levels in
        (* Version.create took refs; drop the creation refs *)
        List.iter Refcounted.retire !l0;
        Array.iter (List.iter Refcounted.retire) levels;
        ( v,
          m.Manifest.next_file_number,
          m.Manifest.last_ts,
          m.Manifest.wal_number,
          quarantined )

  (* Replay surviving logs oldest-first; timestamps restore the global
     write order regardless of on-disk record order (paper §4). *)
  let replay_wals (opts : Options.t) ~min_wal ~mem ~max_ts =
    let env = opts.Options.env in
    let wals =
      List.filter_map
        (function `Wal (n, name) when n >= min_wal -> Some (n, name) | _ -> None)
        (list_files ~env opts.dir)
      |> List.sort compare
    in
    List.iter
      (fun (_, name) ->
        let records, _outcome =
          Clsm_wal.Wal_reader.read_records ~env ~strict:opts.strict_wal
            (Filename.concat opts.dir name)
        in
        List.iter
          (fun payload ->
            match Log_record.decode_all payload with
            | records ->
                List.iter
                  (fun { Log_record.ts; user_key; entry } ->
                    M.add mem ~user_key ~ts entry;
                    if ts > !max_ts then max_ts := ts)
                  records
            | exception (Clsm_util.Varint.Corrupt _ | Invalid_argument _) ->
                (* The record's CRC passed but its payload does not parse.
                   Default: skip it, like a corrupt tail. Strict mode
                   surfaces it. *)
                if opts.strict_wal then
                  raise
                    (Clsm_wal.Wal_reader.Corrupt
                       (name ^ ": undecodable record payload")))
          records)
      wals;
    wals

  let recover (opts : Options.t) ~cache ~stats =
    let env = opts.Options.env in
    if not (Env.(env.file_exists) opts.dir) then Env.(env.mkdir) opts.dir;
    remove_temp_files ~env opts.dir;
    let disk_files = list_files ~env opts.dir in
    let version, next_file, last_ts, min_wal, quarantined =
      load_version opts ~cache ~disk_files
    in
    let mem = M.create () in
    let max_ts = ref last_ts in
    let replayed = replay_wals opts ~min_wal ~mem ~max_ts in
    let next_file =
      List.fold_left
        (fun acc f -> match f with `Table (n, _) | `Wal (n, _) -> max acc (n + 1))
        (max 1 next_file) disk_files
    in
    let next_file_atomic = Atomic.make next_file in
    let wal_number = Atomic.fetch_and_add next_file_atomic 1 in
    let wal =
      if opts.wal_enabled then
        Some
          (Clsm_wal.Wal_writer.create ~mode:(Options.wal_mode opts)
             ~observer:(Stats.wal_observer stats) ~env
             (Table_file.wal_path ~dir:opts.dir wal_number))
      else None
    in
    (* Re-log replayed records into the fresh WAL so older logs can be
       ignored on the next recovery. [enqueue] + one [flush] rather than
       [append] per record: in the durable modes a blocking append would
       pay one fsync (and a group accumulation window) per
       already-recovered record. *)
    (match wal with
    | Some w ->
        M.fold_entries
          (fun user_key ts entry () ->
            Clsm_wal.Wal_writer.enqueue w
              (Log_record.encode { Log_record.ts; user_key; entry }))
          mem ();
        Clsm_wal.Wal_writer.flush w
    | None -> ());
    (* Persist a manifest that points past the replayed logs, then drop
       them: their live records are covered by the fresh WAL. *)
    let files_of_version =
      List.map
        (fun f -> (0, (Refcounted.value f).Table_file.number))
        version.Version.l0
      @ List.concat
          (List.mapi
             (fun i files ->
               List.map
                 (fun f -> (i + 1, (Refcounted.value f).Table_file.number))
                 files)
             (Array.to_list version.Version.levels))
    in
    Manifest.save ~env ~dir:opts.dir
      {
        Manifest.next_file_number = Atomic.get next_file_atomic;
        last_ts = !max_ts;
        wal_number;
        files = files_of_version;
        quarantined;
      };
    List.iter
      (fun (n, name) ->
        if n < wal_number then
          (* Best effort: a survivor is re-collected on the next open. *)
          try Env.(env.remove) (Filename.concat opts.dir name)
          with Env.Error _ -> ())
      replayed;
    {
      version;
      mem;
      wal;
      wal_number;
      last_ts = !max_ts;
      next_file = next_file_atomic;
      quarantined;
    }
end
