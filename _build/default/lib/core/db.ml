(* The flagship instantiation: the cLSM of the paper, over the lock-free
   skip-list memtable (Algorithm 3's conflict detection is the skip-list's
   bottom-level CAS). *)

include Store.Make (Memtable)
