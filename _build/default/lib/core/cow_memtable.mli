(** An alternative memory component: a persistent balanced map behind an
    atomic pointer (copy-on-write).

    Reads are wait-free — they load an immutable map snapshot and search
    it; writers serialize on a mutex, derive the successor map and publish
    it atomically. Iteration over an immutable snapshot is trivially
    weakly consistent.

    This exists to demonstrate the paper's decoupling claim (§1, §3): the
    whole store works unchanged over a completely different concurrent
    sorted map ({!Store.Make}); only write-side parallelism differs.
    [try_install] detects conflicts by snapshot identity, so RMW stays
    atomic, merely not lock-free. *)

include Memtable_intf.S
