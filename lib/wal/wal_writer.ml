open Clsm_primitives
module Env = Clsm_env.Env

type group_config = { max_batch : int; max_delay_us : int }
type mode = Sync | Async | Group of group_config

type observer = {
  on_group_commit : records:int -> unit;
  on_commit_wait : ns:int -> unit;
}

type t = {
  mode : mode;
  file_path : string;
  writer : Env.writer;
  queue : string Mpmc_queue.t;
      (* Async-mode records and non-durable [enqueue]s awaiting a drain *)
  io_mutex : Mutex.t; (* serializes the drain/write path *)
  mutable closed : bool;
  mutable poisoned : exn option;
      (* first IO failure; written under [io_mutex], monotonic None->Some *)
  mutable written : int;
      (* bytes fully handed to the env writer, advanced under [io_mutex]
         only AFTER a physical append returns: the file prefix
         [0, written) contains whole records and no in-flight bytes, so
         a concurrent reader (scrub's WAL-tail check) that stops there
         can never misread a half-written record as corruption *)
  observer : observer option;
  (* Group-commit state, all under [gm]. Neither gm nor io_mutex is
     ever held while taking the other — the leader releases [gm] before
     touching IO and re-acquires it afterwards. Both are order leaves
     and no-block locks in tools/lockcheck/lockspec.sexp; `dune build
     @lint` enforces this. *)
  gm : Mutex.t;
  gcond : Condition.t;
  gpending : (int * string) Queue.t;
      (* (ticket, payload) enqueued by riders, FIFO by ticket *)
  mutable gnext : int; (* next ticket to hand out *)
  mutable gdurable : int; (* highest ticket known durable *)
  mutable gleader : bool; (* a leader is currently committing *)
  mutable garmed : bool;
      (* true when records arrived while the previous round was doing IO:
         the concurrency signal that arms the accumulation window (see
         [lead_round_locked]) *)
}

let create ?(mode = Async) ?(env = Env.unix) ?observer file_path =
  {
    mode;
    file_path;
    writer = env.Env.create_writer file_path;
    queue = Mpmc_queue.create ();
    io_mutex = Mutex.create ();
    closed = false;
    poisoned = None;
    written = 0;
    observer;
    gm = Mutex.create ();
    gcond = Condition.create ();
    gpending = Queue.create ();
    gnext = 0;
    gdurable = -1;
    gleader = false;
    garmed = false;
  }

(* Fsync-gate semantics: after any append or fsync failure the durability
   of previously acknowledged bytes is unknown, so the writer is
   permanently poisoned — every later operation re-raises the original
   failure instead of silently retrying over a gap. *)
let check_poisoned t = match t.poisoned with Some e -> raise e | None -> ()

let poison_locked t e = if t.poisoned = None then t.poisoned <- Some e
[@@requires_lock io_mutex]

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let observe_commit t ~records ~since_ns =
  match t.observer with
  | None -> ()
  | Some o ->
      if records > 0 then o.on_group_commit ~records;
      o.on_commit_wait ~ns:(max 0 (now_ns () - since_ns))

(* Pops the async queue in one pass so a failure
   part-way through cannot leave it half-drained for the next caller:
   either way the popped records are gone (they were never acknowledged)
   and the queue itself stays structurally sound. *)
let drain_locked t =
  let buf = Buffer.create 4096 in
  let rec pump () =
    match Mpmc_queue.pop t.queue with
    | Some payload ->
        Wal_record.encode buf payload;
        pump ()
    | None -> ()
  in
  pump ();
  if Buffer.length buf > 0 then begin
    t.writer.Env.w_append (Buffer.contents buf);
    t.written <- t.written + Buffer.length buf
  end
[@@requires_lock io_mutex]

(* ---------- group commit (leader/rider) ---------- *)

(* One leader round. Called and returns with [gm] held; [gm] is released
   around the accumulation sleep and the IO so riders can keep enqueueing
   while the leader writes. On IO failure the writer is poisoned under
   [io_mutex] and every parked rider is woken to re-raise it; the round
   itself never raises (the caller's wait loop surfaces the poison). *)
let lead_round_locked t cfg ~accumulate =
  t.gleader <- true;
  if
    accumulate && cfg.max_delay_us > 0 && t.garmed
    && Queue.length t.gpending < cfg.max_batch
  then begin
    (* Accumulation window: let concurrent committers board this batch.
       OCaml's Condition has no timed wait, so the leader sleeps with the
       lock dropped; riders arriving meanwhile park on [gcond].

       The window is adaptive: it only opens when at least one record
       arrived while the previous round was inside its write+fsync —
       evidence that concurrent committers exist. An uncontended writer
       therefore never pays the delay, while under contention the window
       closes the re-arrival gap: without it, writers acknowledged by
       round k re-enqueue just after round k+1's leader drained, and the
       batch size oscillates around half the committer count instead of
       reaching it. *)
    Mutex.unlock t.gm;
    Unix.sleepf (float_of_int cfg.max_delay_us *. 1e-6);
    Mutex.lock t.gm
  end;
  let batch = ref [] and hi = ref (-1) and n = ref 0 in
  while !n < cfg.max_batch && not (Queue.is_empty t.gpending) do
    let seq, payload = Queue.pop t.gpending in
    batch := payload :: !batch;
    hi := seq;
    incr n
  done;
  let payloads = List.rev !batch in
  Mutex.unlock t.gm;
  let committed =
    match payloads with
    | [] -> true
    | _ ->
        Mutex.lock t.io_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.io_mutex)
          (fun () ->
            match t.poisoned with
            | Some _ -> false
            | None -> (
                let buf = Buffer.create 4096 in
                List.iter (Wal_record.encode buf) payloads;
                try
                  t.writer.Env.w_append (Buffer.contents buf);
                  t.written <- t.written + Buffer.length buf;
                  t.writer.Env.w_fsync ();
                  true
                with e ->
                  poison_locked t e;
                  false))
  in
  Mutex.lock t.gm;
  t.gleader <- false;
  (* Concurrency evidence, either form: records arrived while we were in
     the write+fsync, or this batch itself carried several committers
     (after a full boarding nobody is left to arrive mid-IO, so the batch
     size must keep the window armed or it would disarm every other
     round and the batch size would oscillate between 1 and full). *)
  t.garmed <- List.length payloads > 1 || not (Queue.is_empty t.gpending);
  if committed && !hi >= 0 then begin
    t.gdurable <- max t.gdurable !hi;
    match t.observer with
    | Some o -> o.on_group_commit ~records:(List.length payloads)
    | None -> ()
  end;
  (* Wake everyone: riders whose ticket is now durable return, the rest
     either elect the next leader or observe the poison and raise. *)
  Condition.broadcast t.gcond
[@@requires_lock gm] [@@drops_lock gm]

let append_group t cfg payload =
  let t0 = now_ns () in
  Mutex.lock t.gm;
  let result =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.gm)
      (fun () ->
        match t.poisoned with
        | Some e -> Error e
        | None ->
            let my = t.gnext in
            t.gnext <- my + 1;
            Queue.push (my, payload) t.gpending;
            let rec wait () =
              if t.gdurable >= my then Ok ()
              else
                match t.poisoned with
                | Some e -> Error e
                | None ->
                    if t.gleader then Condition.wait t.gcond t.gm
                    else lead_round_locked t cfg ~accumulate:true;
                    wait ()
            in
            wait ())
  in
  match result with
  | Ok () -> (
      match t.observer with
      | Some o -> o.on_commit_wait ~ns:(max 0 (now_ns () - t0))
      | None -> ())
  | Error e -> raise e

(* Drive leader rounds (no accumulation delay) until every record that
   was pending when we were called is durable, or the writer is poisoned.
   Riders parked at that point are settled on our fsync. *)
let settle_group t cfg =
  Mutex.lock t.gm;
  let result =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.gm)
      (fun () ->
        let target = t.gnext - 1 in
        let rec loop () =
          if t.gdurable >= target then Ok ()
          else
            match t.poisoned with
            | Some e -> Error e
            | None ->
                if t.gleader then Condition.wait t.gcond t.gm
                else lead_round_locked t cfg ~accumulate:false;
                loop ()
        in
        loop ())
  in
  match result with Ok () -> () | Error e -> raise e

(* ---------- public operations ---------- *)

let append t payload =
  if t.closed then invalid_arg "Wal_writer.append: closed";
  check_poisoned t;
  match t.mode with
  | Group cfg -> append_group t cfg payload
  | Sync ->
      let t0 = now_ns () in
      Mutex.lock t.io_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.io_mutex)
        (fun () ->
          check_poisoned t;
          let buf =
            Buffer.create (String.length payload + Wal_record.header_length)
          in
          Wal_record.encode buf payload;
          try
            t.writer.Env.w_append (Buffer.contents buf);
            t.written <- t.written + Buffer.length buf;
            t.writer.Env.w_fsync ()
          with e ->
            poison_locked t e;
            raise e);
      observe_commit t ~records:1 ~since_ns:t0
  | Async ->
      Mpmc_queue.push t.queue payload;
      (* Opportunistic group commit: whoever gets the lock drains for all.
         A failure here poisons the writer; it surfaces on the next
         [append] or [flush] (an async append itself acknowledges
         nothing). *)
      if Mutex.try_lock t.io_mutex then begin
        (match t.poisoned with
        | Some _ -> ()
        | None -> ( try drain_locked t with e -> poison_locked t e));
        Mutex.unlock t.io_mutex
      end

let enqueue t payload =
  if t.closed then invalid_arg "Wal_writer.enqueue: closed";
  check_poisoned t;
  (* Queue without any durability work or acknowledgement, regardless of
     mode. Recovery uses this to re-log an entire replayed memtable as
     one batch: a blocking [append] per record would pay one fsync (and,
     in [Group] mode, one accumulation window) per already-recovered
     record. A single [flush] afterwards makes the batch durable. *)
  Mpmc_queue.push t.queue payload

let flush t =
  (* Settle parked group riders first: their records live in [gpending],
     not the async queue, and must be made durable by leader rounds so
     their tickets publish. Then drain the async queue and fsync. *)
  (match t.mode with Group cfg -> settle_group t cfg | Sync | Async -> ());
  Mutex.lock t.io_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_mutex)
    (fun () ->
      (* Poison check runs under the lock: once a failure has poisoned
         the writer, every later flush — including one that was already
         blocked on the mutex while the failure happened — deterministically
         re-raises the original exception without touching the queue or
         issuing IO (flush is idempotent after poisoning). *)
      check_poisoned t;
      try
        drain_locked t;
        t.writer.Env.w_fsync ()
      with e ->
        poison_locked t e;
        raise e)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* The descriptor is released even when the final flush fails; the
       failure still propagates (a swallowed fsync error here would
       silently drop acknowledged-durable guarantees). *)
    Fun.protect ~finally:(fun () -> t.writer.Env.w_close ()) (fun () -> flush t)
  end

let abandon t =
  if not t.closed then begin
    t.closed <- true;
    (* Crash simulation: bytes already handed to the OS survive (the env
       writer is unbuffered); the queue's unacknowledged records are
       dropped, modeling the loss. Group riders parked at this point are
       in-flight unacknowledged commits: poison with [Env.Crashed] and
       wake them so they raise instead of hanging forever. *)
    Mutex.protect t.io_mutex (fun () -> poison_locked t Env.Crashed);
    Mutex.protect t.gm (fun () -> Condition.broadcast t.gcond);
    try t.writer.Env.w_close () with _ -> ()
  end

let path t = t.file_path

let queued t =
  Mpmc_queue.length t.queue
  + Mutex.protect t.gm (fun () -> Queue.length t.gpending)

let poisoned t = t.poisoned <> None
let written_bytes t = t.written
