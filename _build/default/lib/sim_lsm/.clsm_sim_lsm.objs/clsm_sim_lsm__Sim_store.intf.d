lib/sim_lsm/sim_store.mli: Clsm_sim Clsm_workload Costs Engine Proc Resource System Workload_spec
