(* Condition.wait with the wrong mutex: the spec pairs [cond] with gm,
   waiting with [other] held means the wakeup signal's mutex does not
   protect the waited-for state. *)

type t = {
  gm : Mutex.t;
  other : Mutex.t;
  cond : Condition.t;
  mutable ready : bool;
}

let bad t =
  Mutex.protect t.other (fun () ->
      while not t.ready do
        Condition.wait t.cond t.other (* BAD: LC007 *)
      done)

let ok t =
  Mutex.protect t.gm (fun () ->
      while not t.ready do
        Condition.wait t.cond t.gm
      done)
