lib/primitives/active_set.ml: Array Atomic Backoff Int List
