lib/wal/wal_record.mli: Buffer
