(* Bare Mutex.lock without Fun.protect: a raise between lock and unlock
   leaks the mutex. *)

type t = { cm : Mutex.t; mutable v : int }

let bad t =
  Mutex.lock t.cm; (* BAD: LC006 *)
  t.v <- t.v + 1;
  Mutex.unlock t.cm

let ok t = Mutex.protect t.cm (fun () -> t.v <- t.v + 1)

let ok_fun_protect t =
  Mutex.lock t.cm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cm)
    (fun () -> t.v <- t.v + 1)
