lib/core/log_record.ml: Buffer Clsm_lsm Clsm_util Entry List String Varint
