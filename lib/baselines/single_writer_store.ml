open Clsm_primitives
open Clsm_lsm
open Clsm_core

type snapshot = { snap_ts : int; released : bool Atomic.t }

type memcomp = {
  mem : Memtable.t;
  wal : Clsm_wal.Wal_writer.t option;
  wal_number : int;
}

type t = {
  opts : Options.t;
  mutex : Mutex.t; (* the LevelDB global mutex *)
  mutable pm : memcomp;
  mutable imm : memcomp option;
  mutable version : Version.t Refcounted.t;
  mutable seq : int;
  mutable snapshot_list : int list; (* active snapshot timestamps *)
  next_file : int Atomic.t;
  cache : Clsm_sstable.Block.t Clsm_sstable.Cache.t;
  stats : Stats.t;
  stop : bool Atomic.t;
  maintenance : Mutex.t;
  mutable bg_domain : unit Domain.t option;
  mutable closed : bool;
}

let with_mutex t f = Mutex.protect t.mutex f

let alloc_file_number t () = Atomic.fetch_and_add t.next_file 1

let new_memcomp t =
  let wal_number = alloc_file_number t () in
  let wal =
    if t.opts.Options.wal_enabled then
      Some
        (Clsm_wal.Wal_writer.create
           ~mode:(Options.wal_mode t.opts)
           (Table_file.wal_path ~dir:t.opts.Options.dir wal_number))
    else None
  in
  { mem = Memtable.create (); wal; wal_number }

(* ---------- manifest / recovery (same format as Clsm_core.Db) ---------- *)

let manifest_of_state t =
  let v = Refcounted.value t.version in
  let files =
    List.map (fun f -> (0, (Refcounted.value f).Table_file.number)) v.Version.l0
    @ List.concat
        (List.mapi
           (fun i fs ->
             List.map (fun f -> (i + 1, (Refcounted.value f).Table_file.number)) fs)
           (Array.to_list v.Version.levels))
  in
  {
    Manifest.next_file_number = Atomic.get t.next_file;
    last_ts = t.seq;
    wal_number = t.pm.wal_number;
    files;
    (* the baseline has no quarantine machinery *)
    quarantined = [];
  }

let save_manifest t = Manifest.save ~dir:t.opts.Options.dir (manifest_of_state t)

(* ---------- reads ---------- *)

(* LevelDB's read path: grab the component pointers under the mutex,
   search without it. *)
let pin_components t =
  with_mutex t (fun () ->
      let v = t.version in
      let ok = Refcounted.try_incr v in
      assert ok;
      (t.pm, t.imm, v))

let get_entry t ~user_key ~snap_ts =
  let pm, imm, vcell = pin_components t in
  let result =
    match Memtable.get pm.mem ~user_key ~snap_ts with
    | Some (_, e) -> Some e
    | None -> (
        match
          match imm with
          | Some mc -> Memtable.get mc.mem ~user_key ~snap_ts
          | None -> None
        with
        | Some (_, e) -> Some e
        | None -> (
            match Version.get (Refcounted.value vcell) ~user_key ~snap_ts with
            | Some (_, e) -> Some e
            | None -> None))
  in
  Refcounted.decr vcell;
  result

let get t key =
  Stats.incr_gets t.stats;
  match get_entry t ~user_key:key ~snap_ts:Internal_key.max_ts with
  | Some (Entry.Value v) -> Some v
  | Some Entry.Tombstone | None -> None

(* ---------- writes (fully serialized) ---------- *)

let throttle t =
  let b = Backoff.create ~max_spins:4096 () in
  let rec wait () =
    if Atomic.get t.stop then ()
    else begin
      let mem_full, imm_busy, l0_pile =
        with_mutex t (fun () ->
            ( Memtable.approximate_bytes t.pm.mem
              > 2 * t.opts.Options.memtable_bytes,
              t.imm <> None,
              Version.level_file_count (Refcounted.value t.version) 0
              >= t.opts.Options.lsm.Lsm_config.l0_stall_limit ))
      in
      if (mem_full && imm_busy) || l0_pile then begin
        Stats.incr_write_stalls t.stats;
        Backoff.once b;
        wait ()
      end
    end
  in
  wait ()

let write_entry t ~user_key entry =
  throttle t;
  with_mutex t (fun () ->
      t.seq <- t.seq + 1;
      let ts = t.seq in
      Memtable.add t.pm.mem ~user_key ~ts entry;
      match t.pm.wal with
      | Some w ->
          Clsm_wal.Wal_writer.append w
            (Log_record.encode { Log_record.ts; user_key; entry })
      | None -> ())

let put t ~key ~value =
  Stats.incr_puts t.stats;
  write_entry t ~user_key:key (Entry.Value value)

let delete t ~key =
  Stats.incr_deletes t.stats;
  write_entry t ~user_key:key Entry.Tombstone

(* ---------- snapshots (trivial under a single writer, §4) ---------- *)

let get_snap t =
  Stats.incr_snapshots t.stats;
  with_mutex t (fun () ->
      let ts = t.seq in
      t.snapshot_list <- ts :: t.snapshot_list;
      { snap_ts = ts; released = Atomic.make false })

let snapshot_ts s = s.snap_ts

let remove_one x l =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let release_snapshot t s =
  if not (Atomic.exchange s.released true) then
    with_mutex t (fun () -> t.snapshot_list <- remove_one s.snap_ts t.snapshot_list)

let get_at t s key =
  Stats.incr_gets t.stats;
  match get_entry t ~user_key:key ~snap_ts:s.snap_ts with
  | Some (Entry.Value v) -> Some v
  | Some Entry.Tombstone | None -> None

(* ---------- scans ---------- *)

let range ?snapshot ?start ?stop ?(limit = max_int) t =
  Stats.incr_scans t.stats;
  let snap, own =
    match snapshot with Some s -> (s, false) | None -> (get_snap t, true)
  in
  let pm, imm, vcell = pin_components t in
  let sources =
    Memtable.iter pm.mem
    :: (match imm with Some mc -> [ Memtable.iter mc.mem ] | None -> [])
    @ Version.iters (Refcounted.value vcell)
  in
  let merged = Merge_iter.merge ~cmp:Internal_key.compare_encoded sources in
  (match start with
  | Some s -> merged.Iter.seek (Internal_key.make s 0)
  | None -> merged.Iter.seek_to_first ());
  let rec next_visible () =
    if not (merged.Iter.valid ()) then None
    else begin
      let uk = Internal_key.user_key_of (merged.Iter.key ()) in
      let best = ref None in
      while
        merged.Iter.valid ()
        && String.equal (Internal_key.user_key_of (merged.Iter.key ())) uk
      do
        if Internal_key.ts_of (merged.Iter.key ()) <= snap.snap_ts then
          best := Some (merged.Iter.value ());
        merged.Iter.next ()
      done;
      match !best with
      | Some enc -> (
          match Entry.decode enc with
          | Entry.Value v -> Some (uk, v)
          | Entry.Tombstone -> next_visible ())
      | None -> next_visible ()
    end
  in
  let rec collect n acc =
    if n >= limit then List.rev acc
    else
      match next_visible () with
      | None -> List.rev acc
      | Some (k, _) when (match stop with Some e -> k >= e | None -> false) ->
          List.rev acc
      | Some kv -> collect (n + 1) (kv :: acc)
  in
  let result = collect 0 [] in
  Refcounted.decr vcell;
  if own then release_snapshot t snap;
  result

(* ---------- maintenance ---------- *)

let rotate t =
  let fresh = new_memcomp t in
  with_mutex t (fun () ->
      if t.imm <> None || Memtable.is_empty t.pm.mem then begin
        (match fresh.wal with
        | Some w ->
            Clsm_wal.Wal_writer.close w;
            (try Sys.remove (Clsm_wal.Wal_writer.path w) with Sys_error _ -> ())
        | None -> ());
        false
      end
      else begin
        t.imm <- Some t.pm;
        t.pm <- fresh;
        Stats.incr_rotations t.stats;
        true
      end)

let flush_imm t =
  match with_mutex t (fun () -> t.imm) with
  | None -> false
  | Some mc ->
      let snapshots = with_mutex t (fun () -> t.snapshot_list) in
      let bytes = Memtable.approximate_bytes mc.mem in
      let outputs =
        Compaction.write_sorted_run ~cfg:t.opts.Options.lsm
          ~dir:t.opts.Options.dir ~cache:t.cache
          ~alloc_number:(alloc_file_number t) ~snapshots ~drop_tombstones:false
          (Memtable.iter mc.mem)
      in
      with_mutex t (fun () ->
          let cur = Refcounted.value t.version in
          let next =
            Version.create ~l0:(outputs @ cur.Version.l0) ~levels:cur.Version.levels
          in
          let old = t.version in
          t.version <- Refcounted.create ~release:Version.release next;
          Refcounted.retire old;
          t.imm <- None);
      List.iter Refcounted.retire outputs;
      Stats.incr_flushes t.stats;
      Stats.add_bytes_flushed t.stats bytes;
      with_mutex t (fun () -> save_manifest t);
      (match mc.wal with
      | Some w ->
          Clsm_wal.Wal_writer.close w;
          (try Sys.remove (Clsm_wal.Wal_writer.path w) with Sys_error _ -> ())
      | None -> ());
      true

let compact_level_once t =
  let vcell = with_mutex t (fun () ->
      let v = t.version in
      let ok = Refcounted.try_incr v in
      assert ok;
      v)
  in
  let result =
    match Compaction.pick ~cfg:t.opts.Options.lsm (Refcounted.value vcell) with
    | None -> false
    | Some task ->
        let snapshots = with_mutex t (fun () -> t.snapshot_list) in
        let outputs =
          Compaction.run ~cfg:t.opts.Options.lsm ~dir:t.opts.Options.dir
            ~cache:t.cache ~alloc_number:(alloc_file_number t) ~snapshots task
        in
        with_mutex t (fun () ->
            let next = Compaction.apply (Refcounted.value t.version) task ~outputs in
            let old = t.version in
            t.version <- Refcounted.create ~release:Version.release next;
            Refcounted.retire old);
        List.iter
          (fun f -> Table_file.mark_obsolete (Refcounted.value f))
          (task.Compaction.inputs_lo @ task.Compaction.inputs_hi);
        List.iter Refcounted.retire outputs;
        Stats.incr_compactions t.stats ~src_level:task.Compaction.src_level ();
        with_mutex t (fun () -> save_manifest t);
        true
  in
  Refcounted.decr vcell;
  result

let maintenance_step t =
  Mutex.protect t.maintenance (fun () ->
      if flush_imm t then true
      else begin
        let need =
          with_mutex t (fun () ->
              Memtable.approximate_bytes t.pm.mem
              > t.opts.Options.memtable_bytes)
        in
        if need && rotate t then begin
          ignore (flush_imm t);
          true
        end
        else compact_level_once t
      end)

let compact_now t =
  Mutex.protect t.maintenance (fun () ->
      ignore (flush_imm t);
      ignore (rotate t);
      ignore (flush_imm t);
      while compact_level_once t do () done)

(* ---------- open / close ---------- *)

let open_store (opts : Options.t) =
  if not (Sys.file_exists opts.Options.dir) then Unix.mkdir opts.Options.dir 0o755;
  let cache =
    Clsm_sstable.Cache.create ~capacity:opts.Options.cache_bytes
      ~readahead:opts.Options.readahead_blocks
      ~weight:Clsm_sstable.Block.size_bytes ()
  in
  let num_levels = opts.Options.lsm.Lsm_config.num_levels in
  let dir = opts.Options.dir in
  let manifest = Manifest.load ~dir () in
  let list_files () =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match String.split_on_char '.' name with
           | [ num; ext ] -> (
               match int_of_string_opt num with
               | Some n when ext = "sst" -> Some (`Table (n, name))
               | Some n when ext = "log" -> Some (`Wal (n, name))
               | _ -> None)
           | _ -> None)
  in
  let version, next_file, last_ts, min_wal =
    match manifest with
    | None -> (Version.empty ~num_levels, 1, 0, 0)
    | Some m ->
        let live = List.map snd m.Manifest.files in
        List.iter
          (function
            | `Table (n, name) when not (List.mem n live) ->
                Sys.remove (Filename.concat dir name)
            | `Wal (n, name) when n < m.Manifest.wal_number ->
                Sys.remove (Filename.concat dir name)
            | `Table _ | `Wal _ -> ())
          (list_files ());
        let l0 = ref [] and levels = Array.make (num_levels - 1) [] in
        List.iter
          (fun (level, number) ->
            let tf = Table_file.open_number ~cache ~dir number in
            let cell = Refcounted.create ~release:Table_file.release tf in
            if level = 0 then l0 := cell :: !l0
            else levels.(level - 1) <- cell :: levels.(level - 1))
          m.Manifest.files;
        Array.iteri
          (fun i files ->
            levels.(i) <-
              List.sort
                (fun a b ->
                  Internal_key.compare_encoded
                    (Refcounted.value a).Table_file.smallest
                    (Refcounted.value b).Table_file.smallest)
                files)
          levels;
        let v = Version.create ~l0:(List.rev !l0) ~levels in
        List.iter Refcounted.retire !l0;
        Array.iter (List.iter Refcounted.retire) levels;
        (v, m.Manifest.next_file_number, m.Manifest.last_ts, m.Manifest.wal_number)
  in
  let mem = Memtable.create () in
  let max_ts = ref last_ts in
  let wals =
    List.filter_map
      (function `Wal (n, name) when n >= min_wal -> Some (n, name) | _ -> None)
      (list_files ())
    |> List.sort compare
  in
  List.iter
    (fun (_, name) ->
      let records, _ = Clsm_wal.Wal_reader.read_records (Filename.concat dir name) in
      List.iter
        (fun payload ->
          match Log_record.decode payload with
          | { Log_record.ts; user_key; entry } ->
              Memtable.add mem ~user_key ~ts entry;
              if ts > !max_ts then max_ts := ts
          | exception (Clsm_util.Varint.Corrupt _ | Invalid_argument _) -> ())
        records)
    wals;
  let next_file =
    List.fold_left
      (fun acc f -> match f with `Table (n, _) | `Wal (n, _) -> max acc (n + 1))
      (max 1 next_file) (list_files ())
  in
  let next_file_atomic = Atomic.make next_file in
  let wal_number = Atomic.fetch_and_add next_file_atomic 1 in
  let wal =
    if opts.Options.wal_enabled then
      Some
        (Clsm_wal.Wal_writer.create ~mode:(Options.wal_mode opts)
           (Table_file.wal_path ~dir wal_number))
    else None
  in
  (match wal with
  | Some w ->
      Memtable.fold_entries
        (fun user_key ts entry () ->
          Clsm_wal.Wal_writer.append w
            (Log_record.encode { Log_record.ts; user_key; entry }))
        mem ();
      Clsm_wal.Wal_writer.flush w
  | None -> ());
  let t =
    {
      opts;
      mutex = Mutex.create ();
      pm = { mem; wal; wal_number };
      imm = None;
      version = Refcounted.create ~release:Version.release version;
      seq = !max_ts;
      snapshot_list = [];
      next_file = next_file_atomic;
      cache;
      stats = Stats.create ();
      stop = Atomic.make false;
      maintenance = Mutex.create ();
      bg_domain = None;
      closed = false;
    }
  in
  save_manifest t;
  List.iter
    (fun (n, name) ->
      if n < wal_number then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    wals;
  t.bg_domain <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stop) do
             if not (maintenance_step t) then Unix.sleepf 0.002
           done));
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Atomic.set t.stop true;
    (match t.bg_domain with Some d -> Domain.join d | None -> ());
    (match t.pm.wal with
    | Some w ->
        Clsm_wal.Wal_writer.flush w;
        Clsm_wal.Wal_writer.close w
    | None -> ());
    save_manifest t;
    Refcounted.retire t.version
  end

let stats t = Stats.read t.stats

let level_file_counts t =
  let v = Refcounted.value t.version in
  List.length v.Version.l0
  :: List.map List.length (Array.to_list v.Version.levels)
