bench/main.mli:
