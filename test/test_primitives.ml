open Clsm_primitives

let spawn_all fns = List.map Domain.spawn fns |> List.map Domain.join

(* ---------- Shared_lock ---------- *)

let lock_basic () =
  let l = Shared_lock.create () in
  Alcotest.(check bool) "free" true (Shared_lock.holders l = `Free);
  Shared_lock.lock_shared l;
  Shared_lock.lock_shared l;
  Alcotest.(check bool) "two shared" true (Shared_lock.holders l = `Shared 2);
  Shared_lock.unlock_shared l;
  Shared_lock.unlock_shared l;
  Shared_lock.lock_exclusive l;
  Alcotest.(check bool) "exclusive" true (Shared_lock.holders l = `Exclusive);
  Shared_lock.unlock_exclusive l;
  Alcotest.(check bool) "free again" true (Shared_lock.holders l = `Free)

let lock_mutual_exclusion () =
  (* Exclusive sections must never overlap with each other or with shared
     sections: a plain (non-atomic) counter stays consistent iff exclusion
     holds. *)
  let l = Shared_lock.create () in
  let counter = ref 0 in
  let iterations = 5_000 in
  let writer () =
    for _ = 1 to iterations do
      Shared_lock.with_exclusive l (fun () ->
          let v = !counter in
          counter := v + 1)
    done
  in
  let reader () =
    let bad = ref 0 in
    for _ = 1 to iterations do
      Shared_lock.with_shared l (fun () ->
          let a = !counter in
          let b = !counter in
          if a <> b then incr bad)
    done;
    !bad
  in
  let results =
    spawn_all
      [
        (fun () -> writer (); 0);
        (fun () -> writer (); 0);
        (fun () -> reader ());
        (fun () -> reader ());
      ]
  in
  Alcotest.(check int) "counter" (2 * iterations) !counter;
  List.iter (fun bad -> Alcotest.(check int) "no torn read" 0 bad) results

let lock_writer_preference () =
  (* With an exclusive locker waiting, new shared acquisitions must hold
     back until it runs — the merge-starvation rule of §3.1. *)
  let l = Shared_lock.create () in
  Shared_lock.lock_shared l;
  let writer_acquired = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        Shared_lock.lock_exclusive l;
        Atomic.set writer_acquired true;
        Shared_lock.unlock_exclusive l)
  in
  (* Give the writer time to enqueue, then try a shared acquisition from
     another domain: it must not complete before the writer does. *)
  let reader =
    Domain.spawn (fun () ->
        (* wait until the writer is visibly waiting *)
        let b = Backoff.create () in
        while Shared_lock.holders l <> `Shared 1 || Atomic.get writer_acquired do
          Backoff.once b
        done;
        Unix.sleepf 0.01;
        Shared_lock.lock_shared l;
        let writer_done = Atomic.get writer_acquired in
        Shared_lock.unlock_shared l;
        writer_done)
  in
  Unix.sleepf 0.05;
  Shared_lock.unlock_shared l;
  let reader_saw_writer_done = Domain.join reader in
  Domain.join writer;
  Alcotest.(check bool) "late reader ran after the waiting writer" true
    reader_saw_writer_done

let lock_exception_safety () =
  let l = Shared_lock.create () in
  (try Shared_lock.with_shared l (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "released after raise" true
    (Shared_lock.holders l = `Free);
  (try Shared_lock.with_exclusive l (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check bool) "released after raise (excl)" true
    (Shared_lock.holders l = `Free)

(* ---------- Monotonic_counter ---------- *)

let counter_concurrent_unique () =
  let c = Monotonic_counter.create 0 in
  let per_domain = 10_000 in
  let grab () =
    let acc = ref [] in
    for _ = 1 to per_domain do
      acc := Monotonic_counter.inc_and_get c :: !acc
    done;
    !acc
  in
  let all = spawn_all [ grab; grab; grab ] |> List.concat in
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "all distinct" (3 * per_domain) (List.length sorted);
  Alcotest.(check int) "final value" (3 * per_domain) (Monotonic_counter.get c)

let counter_advance_to () =
  let c = Monotonic_counter.create 5 in
  Alcotest.(check int) "advance up" 10 (Monotonic_counter.advance_to c 10);
  Alcotest.(check int) "no backward" 10 (Monotonic_counter.advance_to c 3);
  Alcotest.(check int) "get" 10 (Monotonic_counter.get c)

(* ---------- Active_set ---------- *)

let active_set_basic () =
  let s = Active_set.create ~capacity:8 () in
  Alcotest.(check (option int)) "empty min" None (Active_set.find_min s);
  let h5 = Active_set.add s 5 in
  let _h3 = Active_set.add s 3 in
  let _h9 = Active_set.add s 9 in
  Alcotest.(check (option int)) "min 3" (Some 3) (Active_set.find_min s);
  Alcotest.(check bool) "mem 5" true (Active_set.mem s 5);
  Active_set.remove s h5;
  Alcotest.(check bool) "removed 5" false (Active_set.mem s 5);
  Alcotest.(check bool) "remove_value 3" true (Active_set.remove_value s 3);
  Alcotest.(check (option int)) "min 9" (Some 9) (Active_set.find_min s);
  Alcotest.(check int) "cardinal" 1 (Active_set.cardinal s);
  Alcotest.(check bool) "remove_value missing" false
    (Active_set.remove_value s 3)

let active_set_stress () =
  (* Concurrent add/remove; the set must end empty and find_min must never
     return a timestamp below one that is still published. *)
  let s = Active_set.create ~capacity:64 () in
  let worker seed () =
    let bad = ref 0 in
    for i = 1 to 2_000 do
      let ts = (seed * 100_000) + i in
      let h = Active_set.add s ts in
      (match Active_set.find_min s with
      | Some m when m > ts -> incr bad
      | Some _ | None -> ());
      Active_set.remove s h
    done;
    !bad
  in
  let bads = spawn_all [ worker 1; worker 2; worker 3; worker 4 ] in
  List.iter (fun b -> Alcotest.(check int) "min bound respected" 0 b) bads;
  Alcotest.(check int) "empty at end" 0 (Active_set.cardinal s)

let active_set_fills_and_drains () =
  let s = Active_set.create ~capacity:4 () in
  let hs = List.map (Active_set.add s) [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "full" 4 (Active_set.cardinal s);
  List.iter (Active_set.remove s) hs;
  Alcotest.(check int) "drained" 0 (Active_set.cardinal s)

(* ---------- Mpmc_queue ---------- *)

let queue_fifo () =
  let q = Mpmc_queue.create () in
  Alcotest.(check bool) "empty" true (Mpmc_queue.is_empty q);
  for i = 1 to 100 do Mpmc_queue.push q i done;
  Alcotest.(check int) "length" 100 (Mpmc_queue.length q);
  for i = 1 to 100 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Mpmc_queue.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Mpmc_queue.pop q)

let queue_concurrent_sum () =
  let q = Mpmc_queue.create () in
  let n = 20_000 in
  let producer lo () =
    for i = lo to lo + n - 1 do Mpmc_queue.push q i done;
    0
  in
  let consumer () =
    let sum = ref 0 in
    let seen = ref 0 in
    while !seen < n do
      match Mpmc_queue.pop q with
      | Some v ->
          sum := !sum + v;
          incr seen
      | None -> Domain.cpu_relax ()
    done;
    !sum
  in
  let results = spawn_all [ producer 0; producer n; consumer; consumer ] in
  let total = List.fold_left ( + ) 0 results in
  let expected = (2 * n * (2 * n - 1)) / 2 in
  Alcotest.(check int) "sum preserved" expected total;
  Alcotest.(check bool) "empty at end" true (Mpmc_queue.is_empty q)

let queue_per_producer_order () =
  let q = Mpmc_queue.create () in
  let n = 5_000 in
  let producer tag () =
    for i = 0 to n - 1 do Mpmc_queue.push q (tag, i) done;
    true
  in
  let watcher () =
    let last = Hashtbl.create 4 in
    let seen = ref 0 in
    let ok = ref true in
    while !seen < 2 * n do
      match Mpmc_queue.pop q with
      | Some (tag, i) ->
          (match Hashtbl.find_opt last tag with
          | Some prev when prev >= i -> ok := false
          | Some _ | None -> ());
          Hashtbl.replace last tag i;
          incr seen
      | None -> Domain.cpu_relax ()
    done;
    !ok
  in
  let results = spawn_all [ producer 1; producer 2; watcher ] in
  List.iter (fun ok -> Alcotest.(check bool) "per-producer FIFO" true ok) results

(* ---------- Refcounted / Rcu_box ---------- *)

let refcount_release_once () =
  let released = ref 0 in
  let cell = Refcounted.create ~release:(fun _ -> incr released) 42 in
  Alcotest.(check int) "initial count" 1 (Refcounted.count cell);
  Alcotest.(check bool) "incr ok" true (Refcounted.try_incr cell);
  Refcounted.decr cell;
  Alcotest.(check int) "not yet released" 0 !released;
  Refcounted.retire cell;
  Alcotest.(check int) "released once" 1 !released;
  Alcotest.(check bool) "incr after release fails" false
    (Refcounted.try_incr cell)

let rcu_swap_under_readers () =
  (* Readers must never observe a released component (the paper's RCU-like
     pointer protocol, §3.1). *)
  let make v = Refcounted.create ~release:(fun r -> r := -1) (ref v) in
  let box = Rcu_box.create (make 0) in
  let stop = Atomic.make false in
  let reader () =
    let bad = ref 0 in
    while not (Atomic.get stop) do
      let cell = Rcu_box.acquire box in
      if !(Refcounted.value cell) < 0 then incr bad;
      Refcounted.decr cell
    done;
    !bad
  in
  let writer () =
    for i = 1 to 2_000 do
      let old = Rcu_box.swap box (make i) in
      Refcounted.retire old
    done;
    Atomic.set stop true;
    0
  in
  let results = spawn_all [ reader; reader; writer ] in
  List.iter (fun bad -> Alcotest.(check int) "no released read" 0 bad) results

let rcu_with_ref () =
  let box = Rcu_box.create (Refcounted.create "hello") in
  Alcotest.(check string) "with_ref" "hello" (Rcu_box.with_ref box Fun.id);
  let cur = Rcu_box.peek box in
  Alcotest.(check int) "count back to 1" 1 (Refcounted.count cur)

(* ---------- Event_buffer ---------- *)

let event_buffer_order () =
  let b = Event_buffer.create () in
  let n = 3_000 (* crosses chunk boundaries *) in
  for i = 0 to n - 1 do Event_buffer.push b i done;
  Alcotest.(check int) "length" n (Event_buffer.length b);
  Alcotest.(check (list int)) "order preserved" (List.init n Fun.id)
    (Event_buffer.to_list b)

let event_buffer_concurrent_reader () =
  (* A reader must always observe a prefix 0..k-1 of the writer's appends,
     never a torn or reordered view. *)
  let b = Event_buffer.create () in
  let n = 10_000 in
  let writer () =
    for i = 0 to n - 1 do Event_buffer.push b i done;
    0
  in
  let reader () =
    let bad = ref 0 in
    while Event_buffer.length b < n do
      let expect = ref 0 in
      Event_buffer.iter
        (fun v ->
          if v <> !expect then incr bad;
          incr expect)
        b
    done;
    !bad
  in
  let results = spawn_all [ writer; reader; reader ] in
  List.iter (fun bad -> Alcotest.(check int) "prefix snapshots" 0 bad) results

(* ---------- qcheck model properties under 2-4 domains ---------- *)

(* Active_set vs a multiset model: each domain publishes its script's
   timestamps (offset into a private range), immediately unpublishing the
   ones not marked [keep]; the survivors must be exactly what the model
   predicts, and [find_min]/[cardinal] must agree with it. *)
let prop_active_set_model =
  let gen =
    QCheck.(
      pair (int_range 2 4)
        (list_of_size Gen.(1 -- 25) (pair (int_range 1 50_000) bool)))
  in
  QCheck.Test.make ~name:"active_set multiset model (2-4 domains)" ~count:10
    gen (fun (domains, script) ->
      let s = Active_set.create ~capacity:256 () in
      let worker d () =
        List.iter
          (fun (ts, keep) ->
            let h = Active_set.add s ((d * 1_000_000) + ts) in
            if not keep then Active_set.remove s h)
          script;
        0
      in
      ignore (spawn_all (List.init domains (fun d -> worker (d + 1))));
      let expected =
        List.concat
          (List.init domains (fun d ->
               List.filter_map
                 (fun (ts, keep) ->
                   if keep then Some (((d + 1) * 1_000_000) + ts) else None)
                 script))
        |> List.sort Int.compare
      in
      Active_set.values s = expected
      && Active_set.cardinal s = List.length expected
      && Active_set.find_min s
         = (match expected with [] -> None | m :: _ -> Some m))

type counter_op = Inc | Advance of int

(* Monotonic_counter under concurrent inc_and_get / advance_to: per-domain
   observations never go backwards, and the final value sits inside the
   model bounds (every inc adds exactly one; every advance raises the
   counter to at least its target and by at most max(0, target-initial)). *)
let prop_counter_model =
  let gen =
    QCheck.(
      triple (int_range 2 4) (int_range 0 100)
        (list_of_size Gen.(1 -- 30)
           (map
              (function None -> Inc | Some t -> Advance t)
              (option (int_range 0 5_000)))))
  in
  QCheck.Test.make ~name:"monotonic_counter CAS-max model (2-4 domains)"
    ~count:10 gen (fun (domains, initial, script) ->
      let c = Monotonic_counter.create initial in
      let worker () =
        let monotone = ref true in
        let last = ref min_int in
        List.iter
          (fun op ->
            let v =
              match op with
              | Inc -> Monotonic_counter.inc_and_get c
              | Advance t -> Monotonic_counter.advance_to c t
            in
            if v < !last then monotone := false;
            last := v)
          script;
        if !monotone then 1 else 0
      in
      let oks = spawn_all (List.init domains (fun _ -> worker)) in
      let incs =
        List.length (List.filter (function Inc -> true | _ -> false) script)
      in
      let advances =
        List.filter_map (function Advance t -> Some t | Inc -> None) script
      in
      let max_target = List.fold_left max 0 advances in
      let slack =
        domains
        * List.fold_left (fun acc t -> acc + max 0 (t - initial)) 0 advances
      in
      let final = Monotonic_counter.get c in
      List.for_all (fun ok -> ok = 1) oks
      && final >= initial + (domains * incs)
      && final >= max_target
      && final <= initial + (domains * incs) + slack)

(* Mpmc_queue: every pushed item pops exactly once, and each consumer sees
   every producer's items in push order (FIFO per producer). *)
let prop_queue_fifo_per_producer =
  let gen =
    QCheck.(triple (int_range 2 3) (int_range 1 2) (int_range 1 400))
  in
  QCheck.Test.make ~name:"mpmc_queue FIFO per producer (2-4 domains)"
    ~count:10 gen (fun (producers, consumers, n) ->
      let q = Mpmc_queue.create () in
      let total = producers * n in
      let got = Atomic.make 0 in
      let producer tag () =
        for i = 0 to n - 1 do Mpmc_queue.push q (tag, i) done;
        []
      in
      let consumer () =
        let mine = ref [] in
        let continue = ref true in
        while !continue do
          match Mpmc_queue.pop q with
          | Some item ->
              mine := item :: !mine;
              ignore (Atomic.fetch_and_add got 1)
          | None ->
              if Atomic.get got >= total then continue := false
              else Domain.cpu_relax ()
        done;
        List.rev !mine
      in
      let results =
        spawn_all
          (List.init producers (fun p -> producer p)
          @ List.init consumers (fun _ -> consumer))
      in
      let popped = List.concat results in
      let complete =
        List.sort compare popped
        = List.sort compare
            (List.concat
               (List.init producers (fun p -> List.init n (fun i -> (p, i)))))
      in
      let per_producer_fifo =
        List.for_all
          (fun stream ->
            let last = Hashtbl.create 4 in
            List.for_all
              (fun (tag, i) ->
                let ok =
                  match Hashtbl.find_opt last tag with
                  | Some prev -> prev < i
                  | None -> true
                in
                Hashtbl.replace last tag i;
                ok)
              stream)
          results
      in
      complete && per_producer_fifo)

(* ---------- Backoff ---------- *)

let backoff_progresses () =
  let b = Backoff.create ~min_spins:1 ~max_spins:8 () in
  for _ = 1 to 10 do Backoff.once b done;
  Backoff.reset b;
  Backoff.once b;
  ()

let suites =
  [
    ( "primitives.shared_lock",
      [
        Alcotest.test_case "basic transitions" `Quick lock_basic;
        Alcotest.test_case "mutual exclusion" `Quick lock_mutual_exclusion;
        Alcotest.test_case "writer preference" `Quick lock_writer_preference;
        Alcotest.test_case "exception safety" `Quick lock_exception_safety;
      ] );
    ( "primitives.counter",
      [
        Alcotest.test_case "concurrent unique" `Quick counter_concurrent_unique;
        Alcotest.test_case "advance_to monotone" `Quick counter_advance_to;
      ] );
    ( "primitives.active_set",
      [
        Alcotest.test_case "basic" `Quick active_set_basic;
        Alcotest.test_case "concurrent stress" `Quick active_set_stress;
        Alcotest.test_case "fill and drain" `Quick active_set_fills_and_drains;
      ] );
    ( "primitives.mpmc_queue",
      [
        Alcotest.test_case "fifo" `Quick queue_fifo;
        Alcotest.test_case "concurrent sum" `Quick queue_concurrent_sum;
        Alcotest.test_case "per-producer order" `Quick queue_per_producer_order;
      ] );
    ( "primitives.event_buffer",
      [
        Alcotest.test_case "order across chunks" `Quick event_buffer_order;
        Alcotest.test_case "concurrent reader sees prefix" `Quick
          event_buffer_concurrent_reader;
      ] );
    ( "primitives.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_active_set_model; prop_counter_model;
          prop_queue_fifo_per_producer;
        ] );
    ( "primitives.rcu",
      [
        Alcotest.test_case "release exactly once" `Quick refcount_release_once;
        Alcotest.test_case "swap under readers" `Quick rcu_swap_under_readers;
        Alcotest.test_case "with_ref" `Quick rcu_with_ref;
        Alcotest.test_case "backoff" `Quick backoff_progresses;
      ] );
  ]
