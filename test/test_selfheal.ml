(* Self-healing unit tests: the Retry_policy backoff schedule under a
   fake clock, the quarantine -> repair round trip for both transient
   and persistent corruption, and the transient-fsync profile that must
   complete through retries without ever degrading the store. The
   multi-seed bit-rot campaign lives in test_torture.ml. *)

open Clsm_core
open Clsm_lsm
open Clsm_env

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clsm_test_selfheal_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm d;
    d

let small_opts ?(env = Env.unix) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 16 * 1024;
    wal_enabled = true;
    wal_sync = `Async;
    env;
    cache_bytes = 1 lsl 20;
    maintenance_workers = 1;
    maintenance_tick = 0.01;
    (* tests drive scrub/repair explicitly *)
    scrub_interval = 0.0;
    auto_repair = false;
    lsm =
      {
        base.Options.lsm with
        Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 8 * 1024;
        l0_compaction_trigger = 3;
        block_size = 1024;
      };
  }

(* ---------- Retry_policy under a fake clock ---------- *)

(* A policy whose clock only advances when [sleep] is called, so every
   schedule decision is a pure function of the attempt history. *)
let fake_clock_policy ?deadline ?(jitter = 0.0) ?(max_attempts = 5)
    ?(initial_delay = 0.01) ?(max_delay = 0.08) () =
  let now = ref 0.0 in
  let slept = ref [] in
  let p =
    {
      Retry_policy.max_attempts;
      initial_delay;
      max_delay;
      multiplier = 2.0;
      jitter;
      deadline;
      sleep =
        (fun d ->
          slept := d :: !slept;
          now := !now +. d);
      now = (fun () -> !now);
    }
  in
  (p, slept)

let io_error = Env.Error { op = "fsync"; path = "x"; message = "EIO" }

let retry_until_success () =
  let p, slept = fake_clock_policy () in
  let attempts = ref 0 in
  let retries = ref 0 in
  let v =
    Retry_policy.run p
      ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retries)
      (fun () ->
        incr attempts;
        if !attempts < 3 then raise io_error;
        "ok")
  in
  Alcotest.(check string) "result" "ok" v;
  Alcotest.(check int) "attempts" 3 !attempts;
  Alcotest.(check int) "on_retry fired per sleep" 2 !retries;
  (* The recorded sleeps are exactly the published schedule. *)
  Alcotest.(check (list (float 1e-9)))
    "schedule"
    [
      Retry_policy.delay_for p ~attempt:1; Retry_policy.delay_for p ~attempt:2;
    ]
    (List.rev !slept)

let exhaustion_reraises_last () =
  let p, slept = fake_clock_policy ~max_attempts:4 () in
  let attempts = ref 0 in
  (match
     Retry_policy.run p (fun () ->
         incr attempts;
         raise io_error)
   with
  | _ -> Alcotest.fail "expected Env.Error after exhaustion"
  | exception Env.Error { op; _ } -> Alcotest.(check string) "op" "fsync" op);
  Alcotest.(check int) "all attempts used" 4 !attempts;
  Alcotest.(check int) "no sleep after the last attempt" 3 (List.length !slept)

let crashed_is_never_retried () =
  let p, slept = fake_clock_policy () in
  let attempts = ref 0 in
  (match
     Retry_policy.run p (fun () ->
         incr attempts;
         raise Env.Crashed)
   with
  | _ -> Alcotest.fail "expected Env.Crashed to propagate"
  | exception Env.Crashed -> ());
  Alcotest.(check int) "single attempt" 1 !attempts;
  Alcotest.(check int) "no sleeps" 0 (List.length !slept)

let delay_grows_then_caps () =
  let p, _ = fake_clock_policy ~max_attempts:8 () in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.01
    (Retry_policy.delay_for p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.02
    (Retry_policy.delay_for p ~attempt:2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.04
    (Retry_policy.delay_for p ~attempt:3);
  (* 0.08 cap: attempts 4, 5, ... all clamp to max_delay. *)
  Alcotest.(check (float 1e-9)) "attempt 4 capped" 0.08
    (Retry_policy.delay_for p ~attempt:4);
  Alcotest.(check (float 1e-9)) "attempt 7 capped" 0.08
    (Retry_policy.delay_for p ~attempt:7)

let jitter_is_deterministic_and_bounded () =
  let p, _ = fake_clock_policy ~jitter:0.5 ~max_attempts:8 () in
  let p0, _ = fake_clock_policy ~jitter:0.0 ~max_attempts:8 () in
  let distinct = ref false in
  for attempt = 1 to 7 do
    let d = Retry_policy.delay_for p ~attempt in
    let d' = Retry_policy.delay_for p ~attempt in
    let base = Retry_policy.delay_for p0 ~attempt in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "attempt %d reproducible" attempt)
      d d';
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d within +/-50%%" attempt)
      true
      (d >= (base *. 0.5) -. 1e-12 && d <= (base *. 1.5) +. 1e-12);
    if abs_float (d -. base) > 1e-9 then distinct := true
  done;
  Alcotest.(check bool) "jitter actually perturbs the schedule" true !distinct

let deadline_cuts_retries_short () =
  (* 10ms, 20ms, 40ms... under a 25ms deadline the third attempt's
     preceding sleep would already overrun, so run gives up after two
     attempts even though max_attempts allows ten. *)
  let p, slept = fake_clock_policy ~max_attempts:10 ~deadline:0.025 () in
  let attempts = ref 0 in
  (match
     Retry_policy.run p (fun () ->
         incr attempts;
         raise io_error)
   with
  | _ -> Alcotest.fail "expected Env.Error at the deadline"
  | exception Env.Error _ -> ());
  Alcotest.(check int) "deadline bounded the attempts" 2 !attempts;
  Alcotest.(check int) "one sleep" 1 (List.length !slept)

(* ---------- quarantine -> repair round trip ---------- *)

let fill db =
  for i = 0 to 599 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(Printf.sprintf "v%04d" i)
  done;
  Db.compact_now db

let check_all db =
  for i = 0 to 599 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%04d" i)
      (Some (Printf.sprintf "v%04d" i))
      (Db.get db (Printf.sprintf "k%04d" i))
  done

(* Transient rot: every table fails its scrub while the fault is armed,
   gets quarantined, then re-verifies clean from disk once the fault is
   gone — repair must readmit the tables and lose nothing. *)
let transient_rot_round_trip () =
  let dir = fresh_dir () in
  let f = Faulty_env.create ~seed:5 () in
  let opts = small_opts ~env:(Faulty_env.env f) dir in
  let db = Db.open_store opts in
  fill db;
  Faulty_env.set_fault_rates f ~corrupt_read_1_in:1 ();
  let problems = Db.scrub_now db in
  Alcotest.(check bool) "scrub saw the rot" true (problems <> []);
  (match Db.health db with
  | `Partial _ -> ()
  | `Ok -> Alcotest.fail "quarantine must surface as `Partial"
  | `Degraded r -> Alcotest.failf "bit-rot must not degrade: %s" r);
  let s = Db.stats db in
  Alcotest.(check bool) "corruptions counted" true
    (s.Stats.corruptions_detected > 0);
  Alcotest.(check bool) "tables quarantined" true
    (s.Stats.quarantined_tables > 0);
  (* The rot was the injector's fiction: on a clean medium every table
     re-verifies and comes back. *)
  Faulty_env.set_fault_rates f ~corrupt_read_1_in:0 ();
  (match Db.repair_now db with
  | `Ok -> ()
  | `Partial r | `Degraded r -> Alcotest.failf "repair did not heal: %s" r);
  Alcotest.(check bool) "repair counted" true
    ((Db.stats db).Stats.auto_repairs > 0);
  check_all db;
  Alcotest.(check (list string)) "verify clean" [] (Db.verify_integrity db);
  (* Nothing was set aside: readmission, not discard. *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".quarantined" then
        Alcotest.failf "transiently rotten table was discarded: %s" name)
    (Sys.readdir dir);
  Db.close db

(* Persistent rot: damage on the platter. Repair must set the table
   aside (rename, drop from the manifest) and return the store to [`Ok]
   — minus the damaged table's keys, which is the documented trade. *)
let persistent_rot_round_trip () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  fill db;
  Db.close db;
  let sst =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".sst")
    |> List.sort compare |> List.hd
  in
  let path = Filename.concat dir sst in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 64 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xde\xad\xbe\xef") 0 4);
  Unix.close fd;
  let db = Db.open_store opts in
  let problems = Db.scrub_now db in
  Alcotest.(check bool) "scrub found the damage" true (problems <> []);
  (match Db.health db with
  | `Partial _ -> ()
  | `Ok | `Degraded _ -> Alcotest.fail "expected `Partial after quarantine");
  (match Db.repair_now db with
  | `Ok -> ()
  | `Partial r | `Degraded r -> Alcotest.failf "repair did not finish: %s" r);
  (* The damaged table is out of the tree but kept on disk for forensics. *)
  Alcotest.(check bool) "set aside as .quarantined" true
    (Sys.file_exists (path ^ ".quarantined"));
  Alcotest.(check bool) "no longer a live table" false (Sys.file_exists path);
  Alcotest.(check (list string)) "store consistent" [] (Db.verify_integrity db);
  (* Scans over the full range still work; only the lost table's keys are
     gone. *)
  let n = List.length (Db.range ~limit:10_000 db) in
  Alcotest.(check bool) "surviving keys readable" true (n > 0 && n < 600);
  Db.close db;
  (* The quarantine outcome is durable: a reopen neither resurrects the
     damaged table nor trips over the set-aside file. *)
  let db = Db.open_store opts in
  Alcotest.(check int) "reopen serves the same survivors" n
    (List.length (Db.range ~limit:10_000 db));
  Alcotest.(check (list string)) "clean after reopen" []
    (Db.verify_integrity db);
  Db.close db

(* ---------- transient fsync faults ride through retry ---------- *)

let transient_fsync_completes_via_retry () =
  let dir = fresh_dir () in
  let f = Faulty_env.create ~seed:17 ~fsync_fail_1_in:4 () in
  let base = small_opts ~env:(Faulty_env.env f) dir in
  let opts =
    {
      base with
      (* The WAL's fsync gate poisons the writer on the first failure by
         design (it cannot know what reached disk), so this profile runs
         without a WAL and points squarely at the flush/compaction path.
         Sleeps are elided to keep the test fast; the schedule itself is
         covered by the fake-clock suite above. *)
      Options.wal_enabled = false;
      retry =
        {
          Retry_policy.default with
          max_attempts = 8;
          deadline = None;
          sleep = (fun _ -> ());
        };
    }
  in
  let db = Db.open_store opts in
  for i = 0 to 599 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(Printf.sprintf "v%04d" i)
  done;
  Db.compact_now db;
  (match Db.health db with
  | `Ok -> ()
  | `Partial r | `Degraded r ->
      Alcotest.failf "transient fsync faults must not stick: %s" r);
  let s = Db.stats db in
  Alcotest.(check bool)
    (Printf.sprintf "faults were injected (%d)" (Faulty_env.injected_faults f))
    true
    (Faulty_env.injected_faults f > 0);
  Alcotest.(check bool)
    (Printf.sprintf "retries absorbed them (io_retries=%d)" s.Stats.io_retries)
    true (s.Stats.io_retries > 0);
  check_all db;
  Alcotest.(check (list string)) "consistent" [] (Db.verify_integrity db);
  Db.close db

let suites =
  [
    ( "selfheal.retry",
      [
        Alcotest.test_case "retries until success" `Quick retry_until_success;
        Alcotest.test_case "exhaustion re-raises" `Quick exhaustion_reraises_last;
        Alcotest.test_case "crashed not retried" `Quick crashed_is_never_retried;
        Alcotest.test_case "delay grows then caps" `Quick delay_grows_then_caps;
        Alcotest.test_case "jitter deterministic" `Quick
          jitter_is_deterministic_and_bounded;
        Alcotest.test_case "deadline cuts short" `Quick
          deadline_cuts_retries_short;
      ] );
    ( "selfheal.quarantine",
      [
        Alcotest.test_case "transient rot round trip" `Quick
          transient_rot_round_trip;
        Alcotest.test_case "persistent rot round trip" `Quick
          persistent_rot_round_trip;
      ] );
    ( "selfheal.retry-io",
      [
        Alcotest.test_case "transient fsync rides through" `Quick
          transient_fsync_completes_via_retry;
      ] );
  ]
