test/test_util.ml: Alcotest Array Binary Buffer Bytes Clsm_util Crc32c Gen Hashing List QCheck QCheck_alcotest String Varint
