lib/lsm/entry.ml: String
