(** The active snapshot list (paper §3.2.1): getSnap installs a handle;
    merges query the list to decide which versions may be garbage-collected.
    "Handles of unused snapshots are removed from the list either by the
    application (through an API call), or based on TTL" — both removal
    paths are provided.

    The registry is read and written under the store's shared-exclusive
    lock (shared in [getSnap], exclusive in [beforeMerge]), exactly the
    paper's synchronization; internally a small mutex makes it safe for
    the auxiliary callers (stats, compaction snapshot capture). *)

type t
type handle

val create : unit -> t

val install : t -> ?ttl:float -> now:float -> int -> handle
(** Register a snapshot timestamp; with [ttl] (seconds) it is reclaimed
    automatically once [now] passes installation time + ttl. *)

val remove : t -> handle -> unit
(** Application-driven release. Idempotent. *)

val live_timestamps : t -> now:float -> int list
(** Ascending timestamps of unexpired snapshots (duplicates preserved);
    prunes expired handles as a side effect. *)

val min_timestamp : t -> now:float -> int option
val cardinal : t -> int
