lib/util/simple_compress.mli:
