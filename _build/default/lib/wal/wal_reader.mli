(** Recovery-side reader: returns all intact records in file order and
    whether the log ended cleanly. cLSM relaxes the single-writer constraint
    so records may be out of timestamp order on disk (paper §4); callers
    restore the correct order from the timestamps embedded in the
    payloads. *)

type outcome = Clean | Torn_tail

val read_records : string -> string list * outcome
(** Raises [Sys_error] if the file cannot be read. *)
