(** Shared constants and record codecs of the table file format.

    {v
    file   := (block trailer)*  filter  props  index  footer
    trailer:= type(1B, 0 = raw) crc32c(masked, fixed32) over payload+type
    footer := filter_handle props_handle index_handle pad-to-62 magic(8B)
    v} *)

val magic : int
val footer_length : int
val block_trailer_length : int

type footer = {
  filter_handle : Block_handle.t;
  props_handle : Block_handle.t;
  index_handle : Block_handle.t;
}

val encode_footer : footer -> string
val decode_footer : string -> footer
(** Raises [Failure] on bad magic or malformed handles. *)

type properties = {
  num_entries : int;
  data_bytes : int;
  smallest : string; (** first key in the table ("" when empty) *)
  largest : string; (** last key in the table ("" when empty) *)
}

val encode_properties : properties -> string
val decode_properties : string -> properties
