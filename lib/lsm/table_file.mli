(** A numbered, immutable on-disk table plus its metadata, shared between
    successive versions of the disk component through reference counting.
    When the last version referencing an obsolete file releases it, the
    reader is closed and the file deleted. *)

type t = {
  number : int;
  table : Clsm_sstable.Table.t;
  size : int;
  smallest : string; (** smallest internal key, "" when empty *)
  largest : string;
  obsolete : bool Atomic.t;
  env : Clsm_env.Env.t; (** the environment the file was opened through *)
}

val table_path : dir:string -> int -> string
val wal_path : dir:string -> int -> string
val manifest_path : dir:string -> string

val open_number :
  ?cache:Clsm_sstable.Block.t Clsm_sstable.Cache.t ->
  ?env:Clsm_env.Env.t ->
  dir:string ->
  int ->
  t
(** Open table file [number] in [dir] with the internal-key comparator. *)

val mark_obsolete : t -> unit
(** The file will be deleted once its last reference is dropped. *)

val release : t -> unit
(** Close the reader and delete the file if marked obsolete. Used as the
    [Refcounted] release hook. *)
