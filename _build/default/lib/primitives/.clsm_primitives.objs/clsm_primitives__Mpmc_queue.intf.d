lib/primitives/mpmc_queue.mli:
