lib/lsm/lsm_config.mli:
