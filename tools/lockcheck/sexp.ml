(* A tiny s-expression reader for lockspec files. sexplib is not a
   dependency of this repo; the spec grammar needs nothing beyond atoms,
   lists and line comments. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
    | _ -> ()
  in
  let is_delim c =
    match c with
    | '(' | ')' | ' ' | '\t' | '\n' | '\r' | ';' | '"' -> true
    | _ -> false
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        incr pos;
        parse_list []
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' ->
        incr pos;
        let b = Buffer.create 16 in
        let rec quoted () =
          if !pos >= n then raise (Parse_error "unterminated string");
          match src.[!pos] with
          | '"' ->
              incr pos;
              Buffer.contents b
          | '\\' when !pos + 1 < n ->
              Buffer.add_char b src.[!pos + 1];
              pos := !pos + 2;
              quoted ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              quoted ()
        in
        Atom (quoted ())
    | Some _ ->
        let start = !pos in
        while !pos < n && not (is_delim src.[!pos]) do
          incr pos
        done;
        Atom (String.sub src start (!pos - start))
  and parse_list acc =
    skip_ws ();
    match peek () with
    | Some ')' ->
        incr pos;
        List (List.rev acc)
    | None -> raise (Parse_error "unterminated list")
    | _ -> parse_list (parse_one () :: acc)
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (parse_one () :: acc)
  in
  top []

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
