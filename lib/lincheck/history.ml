open Clsm_primitives

type decision = Set of string | Remove | Abort

type op =
  | Get of string option
  | Put of string
  | Delete
  | Rmw of { pre : string option; decision : decision }
  | Put_if_absent of { value : string; won : bool }

type event = {
  id : int;
  domain : int;
  key : string;
  op : op;
  inv : int;
  res : int;
}

type scan = {
  scan_domain : int;
  scan_inv : int;
  scan_res : int;
  snap_ts : int option;
  result : (string * string) list;
}

type entry = Ev of event | Sc of scan

type recorder = {
  seq : int Atomic.t;
  next_id : int Atomic.t;
  next_dom : int Atomic.t;
  (* registration order; buffers are appended with a CAS on an immutable
     list so registration from concurrently-spawning domains is safe *)
  buffers : (int * entry Event_buffer.t) list Atomic.t;
}

type dom = { dom_idx : int; buf : entry Event_buffer.t; rec_ : recorder }

let create () =
  {
    seq = Atomic.make 0;
    next_id = Atomic.make 0;
    next_dom = Atomic.make 0;
    buffers = Atomic.make [];
  }

let register rec_ =
  let dom_idx = Atomic.fetch_and_add rec_.next_dom 1 in
  let buf = Event_buffer.create () in
  let rec link () =
    let cur = Atomic.get rec_.buffers in
    if not (Atomic.compare_and_set rec_.buffers cur ((dom_idx, buf) :: cur))
    then link ()
  in
  link ();
  { dom_idx; buf; rec_ }

let next_seq rec_ = Atomic.fetch_and_add rec_.seq 1
let dom_seq dom = next_seq dom.rec_

let record dom ~key ~inv ~res op =
  let id = Atomic.fetch_and_add dom.rec_.next_id 1 in
  Event_buffer.push dom.buf
    (Ev { id; domain = dom.dom_idx; key; op; inv; res })

let record_scan dom ~inv ~res ~snap_ts result =
  Event_buffer.push dom.buf
    (Sc
       {
         scan_domain = dom.dom_idx;
         scan_inv = inv;
         scan_res = res;
         snap_ts;
         result;
       })

type t = { events : event list; scans : scan list }

let collect rec_ =
  let events = ref [] and scans = ref [] in
  List.iter
    (fun (_, buf) ->
      Event_buffer.iter
        (function Ev e -> events := e :: !events | Sc s -> scans := s :: !scans)
        buf)
    (Atomic.get rec_.buffers);
  {
    events = List.sort (fun a b -> compare a.inv b.inv) !events;
    scans = List.sort (fun a b -> compare a.scan_inv b.scan_inv) !scans;
  }

let pp_value = function None -> "∅" | Some v -> Printf.sprintf "%S" v

let pp_decision = function
  | Set v -> Printf.sprintf "Set %S" v
  | Remove -> "Remove"
  | Abort -> "Abort"

let pp_op = function
  | Get r -> Printf.sprintf "get -> %s" (pp_value r)
  | Put v -> Printf.sprintf "put %S" v
  | Delete -> "delete"
  | Rmw { pre; decision } ->
      Printf.sprintf "rmw pre=%s -> %s" (pp_value pre) (pp_decision decision)
  | Put_if_absent { value; won } ->
      Printf.sprintf "put_if_absent %S -> %b" value won

let pp_event e =
  Printf.sprintf "[d%d] #%d inv=%d res=%d %S %s" e.domain e.id e.inv e.res
    e.key (pp_op e.op)
