lib/lsm/table_file.mli: Atomic Clsm_sstable
