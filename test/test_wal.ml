open Clsm_wal

let tmp_dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "clsm_test_wal" in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let tmp_path name = Filename.concat tmp_dir name

let record_roundtrip () =
  let buf = Buffer.create 64 in
  let payloads = [ "first"; ""; "third record with some length" ] in
  List.iter (Wal_record.encode buf) payloads;
  let s = Buffer.contents buf in
  let rec collect pos acc =
    match Wal_record.decode s ~pos with
    | `Record (p, next) -> collect next (p :: acc)
    | `End -> List.rev acc
    | `Torn -> Alcotest.fail "unexpected torn record"
    | `Corrupt -> Alcotest.fail "unexpected corrupt record"
  in
  Alcotest.(check (list string)) "roundtrip" payloads (collect 0 [])

let record_detects_corruption () =
  let buf = Buffer.create 64 in
  Wal_record.encode buf "payload";
  let s = Bytes.of_string (Buffer.contents buf) in
  Bytes.set s (Wal_record.header_length + 2) 'X';
  match Wal_record.decode (Bytes.to_string s) ~pos:0 with
  | `Corrupt -> ()
  | `Torn -> Alcotest.fail "expected Corrupt, got Torn"
  | `Record _ | `End -> Alcotest.fail "expected Corrupt"

let writer_sync_roundtrip () =
  let path = tmp_path "sync.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "one";
  Wal_writer.append w "two";
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "records" [ "one"; "two" ] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

let writer_async_flush () =
  let path = tmp_path "async.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Async path in
  for i = 1 to 100 do
    Wal_writer.append w (Printf.sprintf "record-%03d" i)
  done;
  Wal_writer.flush w;
  Alcotest.(check int) "queue drained" 0 (Wal_writer.queued w);
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check int) "all records" 100 (List.length records);
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  (* Single appender: order is preserved. *)
  Alcotest.(check (list string)) "order"
    (List.init 100 (fun i -> Printf.sprintf "record-%03d" (i + 1)))
    records

let writer_concurrent_appends () =
  let path = tmp_path "concurrent.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Async path in
  let n = 2_000 in
  let producer tag () =
    for i = 0 to n - 1 do
      Wal_writer.append w (Printf.sprintf "%c%06d" tag i)
    done
  in
  List.map Domain.spawn [ producer 'a'; producer 'b'; producer 'c' ]
  |> List.iter Domain.join;
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  Alcotest.(check int) "none lost" (3 * n) (List.length records);
  Alcotest.(check int) "all distinct" (3 * n)
    (List.length (List.sort_uniq String.compare records))

let torn_tail_recovery () =
  let path = tmp_path "torn.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.append w "will-be-torn";
  Wal_writer.close w;
  (* Simulate a crash mid-write by truncating into the last record. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 4);
  Unix.close fd;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "intact prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "torn" true (outcome = Wal_reader.Torn_tail)

let read_whole path = In_channel.with_open_bin path In_channel.input_all

let write_whole path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* Strict mode turns the salvage of a truncated final record into a hard
   failure. *)
let torn_tail_strict_raises () =
  let path = tmp_path "torn_strict.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "will-be-torn";
  Wal_writer.close w;
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 4);
  Unix.close fd;
  match Wal_reader.read_records ~strict:true path with
  | _ -> Alcotest.fail "expected Wal_reader.Corrupt"
  | exception Wal_reader.Corrupt _ -> ()

(* A bit flip inside a complete record fails its CRC: the valid prefix is
   salvaged and the outcome distinguishes corruption from tearing. *)
let bit_flip_corrupt_tail () =
  let path = tmp_path "bitflip.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.append w "victim-payload";
  Wal_writer.close w;
  let contents = read_whole path in
  let idx =
    (* locate the last record's payload and flip one of its bytes *)
    let needle = "victim-payload" in
    let rec find i =
      if String.sub contents i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let b = Bytes.of_string contents in
  Bytes.set b idx (Char.chr (Char.code (Bytes.get b idx) lxor 0x40));
  write_whole path (Bytes.to_string b);
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "corrupt tail" true (outcome = Wal_reader.Corrupt_tail);
  (match Wal_reader.read_records ~strict:true path with
  | _ -> Alcotest.fail "strict must raise on corrupt tail"
  | exception Wal_reader.Corrupt _ -> ())

(* A zero-length file is what a crash right after WAL creation leaves:
   legal, clean, no records. *)
let zero_length_file () =
  let path = tmp_path "zero.log" in
  write_whole path "";
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "no records" [] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

(* Garbage shorter than a record header after valid records reads as a
   torn (incomplete) trailer. *)
let garbage_trailer () =
  let path = tmp_path "garbage.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.close w;
  write_whole path (read_whole path ^ "\xde\xad\xbe");
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "torn" true (outcome = Wal_reader.Torn_tail)

let empty_log () =
  let path = tmp_path "empty.log" in
  let w = Wal_writer.create path in
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "no records" [] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

let prop_wal_roundtrip =
  QCheck.Test.make ~name:"wal roundtrip (random payloads)" ~count:50
    QCheck.(list (string_of_size Gen.(0 -- 100)))
    (fun payloads ->
      let path = tmp_path "prop.log" in
      let w = Wal_writer.create ~mode:Wal_writer.Sync path in
      List.iter (Wal_writer.append w) payloads;
      Wal_writer.close w;
      let records, outcome = Wal_reader.read_records path in
      records = payloads && outcome = Wal_reader.Clean)

let suites =
  [
    ( "wal",
      [
        Alcotest.test_case "record roundtrip" `Quick record_roundtrip;
        Alcotest.test_case "record corruption" `Quick record_detects_corruption;
        Alcotest.test_case "sync writer" `Quick writer_sync_roundtrip;
        Alcotest.test_case "async flush" `Quick writer_async_flush;
        Alcotest.test_case "concurrent appends" `Quick writer_concurrent_appends;
        Alcotest.test_case "torn tail recovery" `Quick torn_tail_recovery;
        Alcotest.test_case "torn tail strict" `Quick torn_tail_strict_raises;
        Alcotest.test_case "bit-flipped tail" `Quick bit_flip_corrupt_tail;
        Alcotest.test_case "zero-length file" `Quick zero_length_file;
        Alcotest.test_case "garbage trailer" `Quick garbage_trailer;
        Alcotest.test_case "empty log" `Quick empty_log;
      ] );
    ("wal.props", List.map QCheck_alcotest.to_alcotest [ prop_wal_roundtrip ]);
  ]
