lib/core/memtable.mli: Clsm_lsm Entry Iter
