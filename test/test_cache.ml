(* The read-path cache contracts: lock-free hits, epoch-style handle
   reclamation, singleflight miss dedup, pinning/reservation accounting,
   and table-iterator readahead (including degradation under injected IO
   faults). *)

open Clsm_sstable
module Env = Clsm_env.Env

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_cache_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let tmp_path name = Filename.concat tmp_dir name

(* ---------- lock-free hit path ---------- *)

(* The structural proof that hits never take the shard mutex: hold the
   (only) shard's mutex hostage on another domain and do a [find] — on the
   old mutex-per-shard design this deadlocks until the hostage releases;
   on the CLOCK design it completes immediately. *)
let hits_lock_free () =
  let c = Cache.create ~shards:1 ~capacity:100 ~weight:(fun _ -> 1) () in
  Cache.insert c "k" "v";
  let locked = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Cache.with_shard_locked c "k" (fun () ->
            Atomic.set locked true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get locked) do
    Domain.cpu_relax ()
  done;
  (* The shard mutex is held right now. *)
  let via_find = Cache.find c "k" in
  let via_mem = Cache.mem c "k" in
  let via_handle =
    match Cache.acquire c "k" with
    | None -> None
    | Some h ->
        let v = Cache.handle_value h in
        Cache.release h;
        Some v
  in
  Atomic.set release true;
  Domain.join holder;
  Alcotest.(check (option string))
    "find completed under held shard lock" (Some "v") via_find;
  Alcotest.(check bool) "mem completed under held shard lock" true via_mem;
  Alcotest.(check (option string))
    "acquire completed under held shard lock" (Some "v") via_handle

(* ---------- handles vs. eviction ---------- *)

let handle_survives_eviction () =
  let freed = ref [] in
  let c =
    Cache.create ~shards:1 ~capacity:4
      ~release:(fun v -> freed := v :: !freed)
      ~weight:(fun _ -> 1) ()
  in
  let h = Cache.acquire_or_add c "k" (fun () -> "payload-k") in
  (* Flood the shard so "k" is certainly evicted. *)
  for i = 0 to 15 do
    Cache.insert c (string_of_int i) ("v" ^ string_of_int i)
  done;
  Alcotest.(check (option string)) "k evicted" None (Cache.find c "k");
  Alcotest.(check bool)
    "payload not freed while a handle is held" false
    (List.mem "payload-k" !freed);
  Alcotest.(check string) "handle still reads the payload" "payload-k"
    (Cache.handle_value h);
  Cache.release h;
  Alcotest.(check bool) "freed after the last release" true
    (List.mem "payload-k" !freed);
  Cache.release h (* idempotent *)

(* ---------- singleflight ---------- *)

(* One generation: two domains race a cold key; the loader refuses to
   finish until the cache has registered a singleflight wait, so "loader
   ran exactly once and the loser shared the result" is deterministic,
   not a timing accident. *)
let singleflight_generation c key loads expected_loads =
  let waits_before = (Cache.stats c).Cache.singleflight_waits in
  let loader () =
    Atomic.incr loads;
    let deadline = Unix.gettimeofday () +. 10.0 in
    while
      (Cache.stats c).Cache.singleflight_waits < waits_before + 1
      && Unix.gettimeofday () < deadline
    do
      Domain.cpu_relax ()
    done;
    Printf.sprintf "value-%d" expected_loads
  in
  let d1 = Domain.spawn (fun () -> Cache.find_or_add c key loader) in
  let d2 = Domain.spawn (fun () -> Cache.find_or_add c key loader) in
  let v1 = Domain.join d1 and v2 = Domain.join d2 in
  Alcotest.(check string) "racers share one value" v1 v2;
  Alcotest.(check int) "loader ran exactly once this generation"
    expected_loads (Atomic.get loads);
  Alcotest.(check bool) "the loser waited on the flight" true
    ((Cache.stats c).Cache.singleflight_waits > waits_before)

let singleflight_once_per_generation () =
  let c = Cache.create ~shards:1 ~capacity:100 ~weight:(fun _ -> 1) () in
  let loads = Atomic.make 0 in
  singleflight_generation c "k" loads 1;
  (* New generation: drop the entry, the next racers reload once. *)
  Cache.remove c "k";
  singleflight_generation c "k" loads 2

let singleflight_failure_propagates () =
  let c = Cache.create ~shards:1 ~capacity:100 ~weight:(fun _ -> 1) () in
  (match Cache.find_or_add c "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the loader's exception"
  | exception Failure m -> Alcotest.(check string) "loader exn" "boom" m);
  (* The failed flight is cleaned up: the next caller retries the load. *)
  Alcotest.(check string) "retry succeeds" "ok"
    (Cache.find_or_add c "k" (fun () -> "ok"))

(* ---------- pinning and reservations ---------- *)

let pins_and_reservations () =
  let c = Cache.create ~shards:1 ~capacity:8 ~weight:(fun _ -> 1) () in
  let h = Cache.pin c "pin" "P" in
  Alcotest.(check int) "pins counted" 1 (Cache.stats c).Cache.pins;
  Cache.reserve c "res" 3;
  for i = 0 to 31 do
    Cache.insert c (string_of_int i) "v"
  done;
  let s = Cache.stats c in
  Alcotest.(check bool) "budget holds pin + reservation + resident" true
    (s.Cache.weight <= 8);
  Alcotest.(check bool) "reservation squeezed resident entries" true
    (Cache.cardinal c <= 5);
  Alcotest.(check (option string)) "pinned entry never evicted" (Some "P")
    (Cache.find c "pin");
  Cache.clear c;
  Alcotest.(check (option string)) "pin survives clear" (Some "P")
    (Cache.find c "pin");
  Alcotest.(check int) "only the pin survives clear" 1 (Cache.cardinal c);
  Cache.insert c "pin" "usurper";
  Alcotest.(check (option string)) "insert over a pin is a no-op" (Some "P")
    (Cache.find c "pin");
  Cache.unreserve c "res";
  Cache.unpin c h;
  Alcotest.(check int) "pins drop on unpin" 0 (Cache.stats c).Cache.pins;
  Alcotest.(check (option string)) "unpinned entry gone" None
    (Cache.find c "pin");
  Alcotest.(check int) "weight back to zero" 0 (Cache.stats c).Cache.weight;
  Cache.unpin c h (* idempotent *)

(* ---------- multi-domain stress ---------- *)

(* Heavy eviction pressure + racing handle reads + singleflight loads.
   Payloads carry their own freed flag (set by the release hook), so any
   read of a reclaimed block is caught at the moment it happens. *)
let stress_domains () =
  let c =
    Cache.create ~shards:4 ~capacity:64
      ~release:(fun (_, freed) -> freed := true)
      ~weight:(fun _ -> 1) ()
  in
  let n_keys = 512 in
  let worker seed () =
    let ok = ref true in
    for i = 0 to 10_000 do
      let k = (i * seed) mod n_keys in
      let key = Printf.sprintf "key%d" k in
      let expect = Printf.sprintf "val%d" k in
      match Cache.acquire c key with
      | Some h ->
          let v, freed = Cache.handle_value h in
          if v <> expect then ok := false;
          if !freed then ok := false;
          Cache.release h
      | None ->
          let v, freed =
            Cache.find_or_add c key (fun () -> (expect, ref false))
          in
          if v <> expect then ok := false;
          ignore freed
    done;
    !ok
  in
  let results =
    List.map Domain.spawn [ worker 3; worker 5; worker 7 ]
    |> List.map Domain.join
  in
  List.iter
    (fun ok ->
      Alcotest.(check bool) "no wrong value, no freed payload read" true ok)
    results;
  let s = Cache.stats c in
  Alcotest.(check bool) "evictions happened (pressure was real)" true
    (s.Cache.evictions > 0);
  Alcotest.(check bool) "capacity respected" true (s.Cache.weight <= 64)

(* ---------- readahead ---------- *)

let sorted_pairs n =
  List.init n (fun i -> (Printf.sprintf "key%06d" i, Printf.sprintf "val%d" i))

let build_table ?(block_size = 256) name pairs =
  let path = tmp_path name in
  let b = Table_builder.create ~block_size ~cmp:Comparator.bytewise ~path () in
  List.iter (fun (k, v) -> Table_builder.add b ~key:k ~value:v) pairs;
  ignore (Table_builder.finish b);
  path

let readahead_warms_cache () =
  let pairs = sorted_pairs 2000 in
  let path = build_table "ra_warm" pairs in
  let cache =
    Cache.create ~capacity:(1 lsl 20) ~readahead:4 ~weight:Block.size_bytes ()
  in
  let t = Table.open_file ~cache ~cmp:Comparator.bytewise path in
  let n_blocks = List.length (Table.index_anchors t) in
  Alcotest.(check bool) "enough blocks to readahead" true (n_blocks > 8);
  Alcotest.(check (list (pair string string)))
    "scan sees every pair" pairs (Table.to_list t);
  let s = Cache.stats cache in
  Alcotest.(check bool) "readahead batches issued" true (s.Cache.readaheads > 0);
  Alcotest.(check bool) "readahead fetched blocks" true
    (s.Cache.readahead_blocks > 0);
  (* Prefetched blocks are inserts, not misses: only the scan's first
     block (plus nothing else) should have missed. *)
  Alcotest.(check bool)
    (Printf.sprintf "prefetch absorbed the misses (%d misses, %d blocks)"
       s.Cache.misses n_blocks)
    true
    (s.Cache.misses < n_blocks / 4);
  (* A second scan is fully resident: no new readahead IO. *)
  let ra_before = s.Cache.readahead_blocks in
  ignore (Table.to_list t);
  let s2 = Cache.stats cache in
  Alcotest.(check int) "warm scan fetches nothing" ra_before
    s2.Cache.readahead_blocks;
  Table.close t

let readahead_point_reads_dont_prefetch () =
  let pairs = sorted_pairs 2000 in
  let path = build_table "ra_point" pairs in
  let cache =
    Cache.create ~capacity:(1 lsl 20) ~readahead:4 ~weight:Block.size_bytes ()
  in
  let t = Table.open_file ~cache ~cmp:Comparator.bytewise path in
  List.iter
    (fun probe -> ignore (Table.find_first_ge t probe))
    [ "key000100"; "key000900"; "key001500"; "key000400" ];
  Alcotest.(check int) "no readahead on point seeks" 0
    (Cache.stats cache).Cache.readaheads;
  Table.close t

(* An environment whose random files, once [armed], refuse any read
   larger than [threshold]: every multi-block readahead batch fails while
   single-block on-demand reads keep working. A scan must silently fall
   back to on-demand reads and still see everything. Arming happens after
   [Table.open_file] because metadata loads (index block) are legitimately
   large. *)
let limited_env ~armed ~threshold =
  let base = Env.unix in
  {
    base with
    Env.open_random =
      (fun path ->
        let f = base.Env.open_random path in
        {
          f with
          Env.rf_read =
            (fun ~pos ~len ->
              if !armed && len > !threshold then
                failwith "batch read refused"
              else f.Env.rf_read ~pos ~len);
        });
  }

(* Largest single read a readahead-free scan issues: the batch-refusal
   threshold. Any >=2-block batch is necessarily bigger (each data block
   payload alone is near the block size). *)
let max_on_demand_read_len path =
  let max_len = ref 0 in
  let base = Env.unix in
  let recording =
    {
      base with
      Env.open_random =
        (fun p ->
          let f = base.Env.open_random p in
          {
            f with
            Env.rf_read =
              (fun ~pos ~len ->
                if len > !max_len then max_len := len;
                f.Env.rf_read ~pos ~len);
          });
    }
  in
  let t = Table.open_file ~env:recording ~cmp:Comparator.bytewise path in
  max_len := 0;
  (* reset: only count data-block reads, not metadata *)
  ignore (Table.to_list t);
  Table.close t;
  !max_len

let readahead_failure_degrades_to_on_demand () =
  let pairs = sorted_pairs 2000 in
  let path = build_table "ra_fail" pairs in
  let threshold = ref (max_on_demand_read_len path) in
  Alcotest.(check bool) "sane single-block read size" true (!threshold > 0);
  let cache =
    Cache.create ~capacity:(1 lsl 20) ~readahead:4 ~weight:Block.size_bytes ()
  in
  let armed = ref false in
  let t =
    Table.open_file ~cache
      ~env:(limited_env ~armed ~threshold)
      ~cmp:Comparator.bytewise path
  in
  armed := true;
  Alcotest.(check (list (pair string string)))
    "scan survives readahead failure" pairs (Table.to_list t);
  Alcotest.(check int) "no batch ever succeeded" 0
    (Cache.stats cache).Cache.readaheads;
  armed := false;
  Table.close t

(* Store-level: scans with bit-rot injected under an active readahead
   policy. Rot seen by a readahead batch is swallowed (the batch is
   dropped); rot seen by an on-demand read goes through the existing
   containment path (quarantine, `Partial`). Neither may take the store
   to `Degraded`. *)
let readahead_with_bitrot_never_degrades () =
  let module Db = Clsm_core.Db in
  let module Options = Clsm_core.Options in
  List.iter
    (fun seed ->
      let dir = Filename.concat tmp_dir (Printf.sprintf "ra_rot_%d" seed) in
      let fenv = Clsm_env.Faulty_env.create ~seed () in
      let base = Options.default ~dir in
      let opts =
        {
          base with
          Options.env = Clsm_env.Faulty_env.env fenv;
          wal_enabled = false;
          readahead_blocks = 4;
          memtable_bytes = 64 * 1024;
          lsm =
            {
              base.Options.lsm with
              Clsm_lsm.Lsm_config.block_size = 256;
              target_file_size = 16 * 1024;
            };
        }
      in
      let db = Db.open_store opts in
      let pairs = sorted_pairs 2000 in
      List.iter (fun (k, v) -> Db.put db ~key:k ~value:v) pairs;
      Db.compact_now db;
      (* Arm bit-rot only now: the write/compaction path is clean, so
         every injected fault lands on the read path under test. *)
      Clsm_env.Faulty_env.set_fault_rates fenv ~corrupt_read_1_in:24 ();
      for _ = 1 to 4 do
        match Db.range db with
        | got ->
            (* A scan that succeeds must be correct: every returned
               binding is one we wrote. *)
            List.iter
              (fun (k, v) ->
                Alcotest.(check bool)
                  (Printf.sprintf "scan binding %s intact" k)
                  true
                  (List.assoc_opt k pairs = Some v))
              got
        | exception _ -> () (* rot on an on-demand read: legitimate *)
      done;
      (match Db.health db with
      | `Degraded reason ->
          Alcotest.failf "seed %d: degraded by read-path faults: %s" seed
            reason
      | `Ok | `Partial _ -> ());
      Db.close db)
    [ 1; 2; 3 ]

let suites =
  [
    ( "cache.lockfree",
      [
        Alcotest.test_case "hit path ignores a held shard lock" `Quick
          hits_lock_free;
        Alcotest.test_case "handle outlives eviction" `Quick
          handle_survives_eviction;
      ] );
    ( "cache.singleflight",
      [
        Alcotest.test_case "loader once per generation" `Quick
          singleflight_once_per_generation;
        Alcotest.test_case "failure propagates, flight cleaned" `Quick
          singleflight_failure_propagates;
      ] );
    ( "cache.pins",
      [
        Alcotest.test_case "pin + reservation accounting" `Quick
          pins_and_reservations;
      ] );
    ( "cache.stress",
      [
        Alcotest.test_case "domains race hits/loads under eviction" `Quick
          stress_domains;
      ] );
    ( "cache.readahead",
      [
        Alcotest.test_case "sequential scan warms the cache" `Quick
          readahead_warms_cache;
        Alcotest.test_case "point reads never prefetch" `Quick
          readahead_point_reads_dont_prefetch;
        Alcotest.test_case "batch failure degrades to on-demand" `Quick
          readahead_failure_degrades_to_on_demand;
        Alcotest.test_case "bit-rot under readahead never degrades" `Slow
          readahead_with_bitrot_never_degrades;
      ] );
  ]
