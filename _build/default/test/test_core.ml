open Clsm_core
open Clsm_lsm

let spawn_all fns = List.map Domain.spawn fns |> List.map Domain.join

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clsm_test_db_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm d;
    d

(* Small components so tests exercise rotation/flush/compaction quickly. *)
let small_opts ?(memtable_bytes = 16 * 1024) ?(wal_enabled = true)
    ?(linearizable = false) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes;
    wal_enabled;
    linearizable_snapshots = linearizable;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        base.Options.lsm with
        Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 16 * 1024;
        block_size = 1024;
      };
  }

let with_store ?memtable_bytes ?wal_enabled ?linearizable f =
  let dir = fresh_dir () in
  let db = Db.open_store (small_opts ?memtable_bytes ?wal_enabled ?linearizable dir) in
  match f db dir with
  | result ->
      Db.close db;
      result
  | exception e ->
      Db.close db;
      raise e

(* ---------- Memtable unit tests ---------- *)

let memtable_versions () =
  let m = Memtable.create () in
  Memtable.add m ~user_key:"k" ~ts:5 (Entry.Value "v5");
  Memtable.add m ~user_key:"k" ~ts:9 (Entry.Value "v9");
  Memtable.add m ~user_key:"k" ~ts:7 Entry.Tombstone;
  let check snap expected =
    let got =
      match Memtable.get m ~user_key:"k" ~snap_ts:snap with
      | Some (ts, Entry.Value v) -> Some (ts, Some v)
      | Some (ts, Entry.Tombstone) -> Some (ts, None)
      | None -> None
    in
    Alcotest.(check (option (pair int (option string))))
      (Printf.sprintf "snap %d" snap)
      expected got
  in
  check 4 None;
  check 5 (Some (5, Some "v5"));
  check 6 (Some (5, Some "v5"));
  check 7 (Some (7, None));
  check 8 (Some (7, None));
  check 9 (Some (9, Some "v9"));
  check 100 (Some (9, Some "v9"));
  Alcotest.(check (option int)) "latest_ts" (Some 9) (Memtable.latest_ts m ~user_key:"k");
  Alcotest.(check int) "entry count" 3 (Memtable.entry_count m)

let memtable_duplicate_ignored () =
  let m = Memtable.create () in
  Memtable.add m ~user_key:"k" ~ts:3 (Entry.Value "first");
  let bytes = Memtable.approximate_bytes m in
  Memtable.add m ~user_key:"k" ~ts:3 (Entry.Value "replayed");
  Alcotest.(check int) "bytes unchanged" bytes (Memtable.approximate_bytes m);
  match Memtable.get m ~user_key:"k" ~snap_ts:10 with
  | Some (3, Entry.Value "first") -> ()
  | _ -> Alcotest.fail "duplicate should be ignored"

let memtable_user_key_isolation () =
  let m = Memtable.create () in
  Memtable.add m ~user_key:"aa" ~ts:1 (Entry.Value "a");
  Memtable.add m ~user_key:"ab" ~ts:2 (Entry.Value "b");
  (* Probing "a" must not surface "aa"'s or "ab"'s versions. *)
  Alcotest.(check bool) "no phantom" true (Memtable.get m ~user_key:"a" ~snap_ts:10 = None);
  Alcotest.(check bool) "exact aa" true
    (match Memtable.get m ~user_key:"aa" ~snap_ts:10 with
    | Some (1, Entry.Value "a") -> true
    | _ -> false)

let memtable_rmw_protocol () =
  let m = Memtable.create () in
  Memtable.add m ~user_key:"k" ~ts:5 (Entry.Value "v5");
  let prev_ts, loc = Memtable.locate_rmw m ~user_key:"k" in
  Alcotest.(check (option int)) "prev is newest version" (Some 5) prev_ts;
  (* A concurrent writer slips in: the CAS must fail. *)
  Memtable.add m ~user_key:"k" ~ts:6 (Entry.Value "v6");
  Alcotest.(check bool) "stale install fails" false
    (Memtable.try_install m loc ~user_key:"k" ~ts:7 (Entry.Value "v7"));
  (* Retry succeeds. *)
  let prev_ts, loc = Memtable.locate_rmw m ~user_key:"k" in
  Alcotest.(check (option int)) "sees v6" (Some 6) prev_ts;
  Alcotest.(check bool) "fresh install works" true
    (Memtable.try_install m loc ~user_key:"k" ~ts:7 (Entry.Value "v7"));
  match Memtable.get m ~user_key:"k" ~snap_ts:100 with
  | Some (7, Entry.Value "v7") -> ()
  | _ -> Alcotest.fail "v7 not visible"

(* ---------- Basic store operations ---------- *)

let basic_put_get () =
  with_store (fun db _dir ->
      Alcotest.(check (option string)) "missing" None (Db.get db "absent");
      Db.put db ~key:"alpha" ~value:"1";
      Db.put db ~key:"beta" ~value:"2";
      Alcotest.(check (option string)) "alpha" (Some "1") (Db.get db "alpha");
      Alcotest.(check (option string)) "beta" (Some "2") (Db.get db "beta");
      Db.put db ~key:"alpha" ~value:"1b";
      Alcotest.(check (option string)) "overwrite" (Some "1b") (Db.get db "alpha"))

let delete_semantics () =
  with_store (fun db _dir ->
      Db.put db ~key:"k" ~value:"v";
      Db.delete db ~key:"k";
      Alcotest.(check (option string)) "deleted" None (Db.get db "k");
      Db.put db ~key:"k" ~value:"v2";
      Alcotest.(check (option string)) "reborn" (Some "v2") (Db.get db "k");
      Db.delete db ~key:"never-existed";
      Alcotest.(check (option string)) "deleting absent ok" None
        (Db.get db "never-existed"))

let read_through_all_components () =
  (* Drive data into the disk component and verify reads across Pm, P'm and
     Pd, including deletes shadowing disk values. *)
  with_store (fun db _dir ->
      for i = 0 to 499 do
        Db.put db ~key:(Printf.sprintf "key%04d" i)
          ~value:(Printf.sprintf "val%d" i)
      done;
      Db.compact_now db;
      Alcotest.(check bool) "data reached disk" true
        (List.hd (Db.level_file_counts db) > 0
        || List.exists (fun c -> c > 0) (Db.level_file_counts db));
      (* disk hit *)
      Alcotest.(check (option string)) "from disk" (Some "val123")
        (Db.get db "key0123");
      (* overwrite in memtable shadows disk *)
      Db.put db ~key:"key0123" ~value:"fresh";
      Alcotest.(check (option string)) "mem shadows disk" (Some "fresh")
        (Db.get db "key0123");
      (* delete shadows disk *)
      Db.delete db ~key:"key0200";
      Alcotest.(check (option string)) "tombstone shadows disk" None
        (Db.get db "key0200");
      (* compact again; tombstone applied *)
      Db.compact_now db;
      Alcotest.(check (option string)) "still deleted after merge" None
        (Db.get db "key0200");
      Alcotest.(check (option string)) "survivor" (Some "val300")
        (Db.get db "key0300"))

let many_keys_roundtrip () =
  with_store (fun db _dir ->
      let n = 2_000 in
      for i = 0 to n - 1 do
        Db.put db ~key:(Printf.sprintf "k%06d" i) ~value:(string_of_int (i * i))
      done;
      Db.compact_now db;
      let missing = ref 0 in
      for i = 0 to n - 1 do
        if Db.get db (Printf.sprintf "k%06d" i) <> Some (string_of_int (i * i))
        then incr missing
      done;
      Alcotest.(check int) "all readable" 0 !missing)

(* ---------- Snapshots ---------- *)

let snapshot_isolation () =
  with_store (fun db _dir ->
      Db.put db ~key:"a" ~value:"1";
      Db.put db ~key:"b" ~value:"2";
      let s = Db.get_snap db in
      Db.put db ~key:"a" ~value:"9";
      Db.delete db ~key:"b";
      Db.put db ~key:"c" ~value:"new";
      Alcotest.(check (option string)) "snap a" (Some "1") (Db.get_at db s "a");
      Alcotest.(check (option string)) "snap b" (Some "2") (Db.get_at db s "b");
      Alcotest.(check (option string)) "snap c absent" None (Db.get_at db s "c");
      Alcotest.(check (option string)) "live a" (Some "9") (Db.get db "a");
      Alcotest.(check (option string)) "live b" None (Db.get db "b");
      Db.release_snapshot db s)

let snapshot_survives_compaction () =
  with_store (fun db _dir ->
      Db.put db ~key:"k" ~value:"old";
      let s = Db.get_snap db in
      Db.put db ~key:"k" ~value:"new";
      Db.compact_now db;
      Db.compact_now db;
      Alcotest.(check (option string)) "snapshot version preserved by GC"
        (Some "old") (Db.get_at db s "k");
      Alcotest.(check (option string)) "live" (Some "new") (Db.get db "k");
      Db.release_snapshot db s;
      (* After release, a further compaction may GC the old version; the
         live value must be unaffected. *)
      Db.put db ~key:"pad" ~value:"x";
      Db.compact_now db;
      Alcotest.(check (option string)) "live after release" (Some "new")
        (Db.get db "k"))

let snapshot_scan_consistency_under_writes () =
  (* Writers mutate pairs (k, k+shadow) keeping them equal via two puts
     inside an RMW-free window; a snapshot scan must never observe a torn
     pair because it reads one timestamp. Uses the multi-key invariant:
     value("p<i>") = value("q<i>") in every snapshot... writers update both
     keys with separate puts, so we assert the snapshot sees for each i
     either both old or both... that is NOT guaranteed by two separate puts.
     Instead writers write matching values derived from the snapshot ts
     ordering: each round writes p<i> then q<i> with the same round number;
     a snapshot taken at ts sees q's round <= p's round (q written later),
     never q > p. *)
  with_store (fun db _dir ->
      let rounds = 60 in
      let pairs = 8 in
      let writer () =
        for r = 1 to rounds do
          for i = 0 to pairs - 1 do
            Db.put db ~key:(Printf.sprintf "p%02d" i) ~value:(string_of_int r);
            Db.put db ~key:(Printf.sprintf "q%02d" i) ~value:(string_of_int r)
          done
        done;
        0
      in
      let scanner () =
        let bad = ref 0 in
        for _ = 1 to 40 do
          let s = Db.get_snap db in
          for i = 0 to pairs - 1 do
            let p = Db.get_at db s (Printf.sprintf "p%02d" i) in
            let q = Db.get_at db s (Printf.sprintf "q%02d" i) in
            match (p, q) with
            | Some p, Some q when int_of_string q > int_of_string p -> incr bad
            | None, Some _ -> incr bad (* q exists only after p *)
            | _ -> ()
          done;
          Db.release_snapshot db s
        done;
        !bad
      in
      let results = spawn_all [ writer; scanner; scanner ] in
      List.iter
        (fun bad -> Alcotest.(check int) "no inversion observed" 0 bad)
        (List.tl results))

let linearizable_snapshot_sees_own_writes () =
  with_store ~linearizable:true (fun db _dir ->
      Db.put db ~key:"mine" ~value:"42";
      let s = Db.get_snap db in
      Alcotest.(check (option string))
        "linearizable snapshot includes completed own write" (Some "42")
        (Db.get_at db s "mine");
      Db.release_snapshot db s)

(* ---------- Scans ---------- *)

let range_scan_basic () =
  with_store (fun db _dir ->
      List.iter
        (fun (k, v) -> Db.put db ~key:k ~value:v)
        [ ("b", "2"); ("a", "1"); ("d", "4"); ("c", "3"); ("e", "5") ];
      Db.delete db ~key:"c";
      Alcotest.(check (list (pair string string)))
        "full scan skips tombstones"
        [ ("a", "1"); ("b", "2"); ("d", "4"); ("e", "5") ]
        (Db.range db);
      Alcotest.(check (list (pair string string)))
        "bounded range"
        [ ("b", "2"); ("d", "4") ]
        (Db.range ~start:"b" ~stop:"e" db);
      Alcotest.(check (list (pair string string)))
        "limit" [ ("a", "1"); ("b", "2") ] (Db.range ~limit:2 db))

let scan_across_components () =
  with_store (fun db _dir ->
      (* Layer 1: on disk *)
      for i = 0 to 199 do
        Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"disk"
      done;
      Db.compact_now db;
      (* Layer 2: overwrite a slice in the memtable *)
      for i = 50 to 99 do
        Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"mem"
      done;
      (* Layer 3: delete a slice *)
      for i = 100 to 149 do
        Db.delete db ~key:(Printf.sprintf "k%04d" i)
      done;
      let result = Db.range db in
      Alcotest.(check int) "count" 150 (List.length result);
      List.iter
        (fun (k, v) ->
          let i = int_of_string (String.sub k 1 4) in
          let expected = if i >= 50 && i <= 99 then "mem" else "disk" in
          Alcotest.(check string) ("value of " ^ k) expected v)
        result;
      (* iterator seek semantics *)
      let it = Db.iterator db in
      Db.iter_seek it "k0100";
      Alcotest.(check string) "seek skips deleted run" "k0150" (Db.iter_key it);
      Db.iter_close it)

let snapshot_scan_is_frozen () =
  with_store (fun db _dir ->
      for i = 0 to 49 do
        Db.put db ~key:(Printf.sprintf "k%02d" i) ~value:"before"
      done;
      let s = Db.get_snap db in
      for i = 0 to 49 do
        Db.put db ~key:(Printf.sprintf "k%02d" i) ~value:"after"
      done;
      Db.put db ~key:"zz-extra" ~value:"after";
      let snap_view = Db.range ~snapshot:s db in
      Alcotest.(check int) "snapshot key count" 50 (List.length snap_view);
      List.iter
        (fun (_, v) -> Alcotest.(check string) "frozen value" "before" v)
        snap_view;
      Db.release_snapshot db s;
      Alcotest.(check int) "live sees new key" 51 (List.length (Db.range db)))

(* ---------- RMW ---------- *)

let rmw_counter_sequential () =
  with_store (fun db _dir ->
      for _ = 1 to 100 do
        ignore
          (Db.rmw db ~key:"ctr" (fun v ->
               let n = match v with Some s -> int_of_string s | None -> 0 in
               Db.Set (string_of_int (n + 1))))
      done;
      Alcotest.(check (option string)) "count" (Some "100") (Db.get db "ctr"))

let rmw_counter_concurrent () =
  with_store ~memtable_bytes:(1 lsl 20) (fun db _dir ->
      let per_domain = 800 in
      let worker () =
        for _ = 1 to per_domain do
          ignore
            (Db.rmw db ~key:"ctr" (fun v ->
                 let n = match v with Some s -> int_of_string s | None -> 0 in
                 Db.Set (string_of_int (n + 1))))
        done;
        0
      in
      ignore (spawn_all [ worker; worker; worker; worker ]);
      Alcotest.(check (option string)) "no lost updates"
        (Some (string_of_int (4 * per_domain)))
        (Db.get db "ctr"))

let rmw_put_if_absent () =
  with_store (fun db _dir ->
      Alcotest.(check bool) "first wins" true
        (Db.put_if_absent db ~key:"k" ~value:"v1");
      Alcotest.(check bool) "second loses" false
        (Db.put_if_absent db ~key:"k" ~value:"v2");
      Alcotest.(check (option string)) "value" (Some "v1") (Db.get db "k");
      Db.delete db ~key:"k";
      Alcotest.(check bool) "after delete wins again" true
        (Db.put_if_absent db ~key:"k" ~value:"v3");
      Alcotest.(check (option string)) "value v3" (Some "v3") (Db.get db "k"))

let rmw_remove_and_abort () =
  with_store (fun db _dir ->
      Db.put db ~key:"k" ~value:"v";
      let pre = Db.rmw db ~key:"k" (fun _ -> Db.Remove) in
      Alcotest.(check (option string)) "pre-image" (Some "v") pre;
      Alcotest.(check (option string)) "removed" None (Db.get db "k");
      let pre = Db.rmw db ~key:"k" (fun v ->
          Alcotest.(check (option string)) "reads deleted as None" None v;
          Db.Abort)
      in
      Alcotest.(check (option string)) "abort pre-image" None pre;
      Alcotest.(check (option string)) "still absent" None (Db.get db "k"))

let rmw_put_if_absent_race () =
  with_store ~memtable_bytes:(1 lsl 20) (fun db _dir ->
      let n = 500 in
      let winner_count = Atomic.make 0 in
      let worker tag () =
        for i = 0 to n - 1 do
          if Db.put_if_absent db ~key:(Printf.sprintf "k%04d" i)
               ~value:(string_of_int tag)
          then Atomic.incr winner_count
        done;
        0
      in
      ignore (spawn_all [ worker 1; worker 2; worker 3 ]);
      Alcotest.(check int) "each key claimed exactly once" n
        (Atomic.get winner_count))

(* ---------- Recovery ---------- *)

let recovery_roundtrip () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 299 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(Printf.sprintf "v%d" i)
  done;
  Db.delete db ~key:"k0100";
  Db.flush_wal db;
  Db.close db;
  let db = Db.open_store opts in
  let missing = ref 0 in
  for i = 0 to 299 do
    let expected =
      if i = 100 then None else Some (Printf.sprintf "v%d" i)
    in
    if Db.get db (Printf.sprintf "k%04d" i) <> expected then incr missing
  done;
  Alcotest.(check int) "all recovered" 0 !missing;
  (* New writes still work and a second recovery still holds. *)
  Db.put db ~key:"post" ~value:"recovery";
  Db.compact_now db;
  Db.close db;
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "post" (Some "recovery") (Db.get db "post");
  Alcotest.(check (option string)) "old" (Some "v42") (Db.get db "k0042");
  Db.close db

let recovery_with_disk_and_wal_mix () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  for i = 0 to 199 do
    Db.put db ~key:(Printf.sprintf "base%04d" i) ~value:"disk"
  done;
  Db.compact_now db;
  (* these stay in the WAL only *)
  for i = 0 to 49 do
    Db.put db ~key:(Printf.sprintf "wal%04d" i) ~value:"mem"
  done;
  Db.put db ~key:"base0000" ~value:"overwritten";
  Db.flush_wal db;
  Db.close db;
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "disk survives" (Some "disk")
    (Db.get db "base0123");
  Alcotest.(check (option string)) "wal replayed" (Some "mem")
    (Db.get db "wal0042");
  Alcotest.(check (option string)) "wal overwrite wins" (Some "overwritten")
    (Db.get db "base0000");
  Db.close db

let recovery_unordered_wal () =
  (* cLSM logs may be written out of timestamp order (§4); recovery must
     restore timestamp order. Forge a log with out-of-order records. *)
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = Db.open_store opts in
  Db.put db ~key:"seed" ~value:"x";
  Db.flush_wal db;
  Db.close db;
  (* Append records with inverted timestamp order to the live WAL. *)
  let wal_file =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".log")
    |> List.sort compare |> List.rev |> List.hd
  in
  let path = Filename.concat dir wal_file in
  let existing = In_channel.with_open_bin path In_channel.input_all in
  let buf = Buffer.create 256 in
  Buffer.add_string buf existing;
  let add ts value =
    Clsm_wal.Wal_record.encode buf
      (Log_record.encode
         { Log_record.ts; user_key = "k"; entry = Entry.Value value })
  in
  add 1000 "newest";
  add 999 "older";
  add 998 "oldest";
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  let db = Db.open_store opts in
  Alcotest.(check (option string))
    "timestamp order restored (newest wins despite log order)"
    (Some "newest") (Db.get db "k");
  Db.close db

let wal_disabled_loses_memtable_only () =
  let dir = fresh_dir () in
  let opts = small_opts ~wal_enabled:false dir in
  let db = Db.open_store opts in
  for i = 0 to 99 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"flushed"
  done;
  Db.compact_now db;
  Db.put db ~key:"volatile" ~value:"lost";
  Db.close db;
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "flushed data persists" (Some "flushed")
    (Db.get db "k0050");
  Alcotest.(check (option string)) "unflushed data lost without WAL" None
    (Db.get db "volatile");
  Db.close db

(* ---------- Concurrency ---------- *)

let concurrent_put_get_during_merges () =
  with_store ~memtable_bytes:(8 * 1024) (fun db _dir ->
      let n = 1_500 in
      let writer tag () =
        for i = 0 to n - 1 do
          Db.put db
            ~key:(Printf.sprintf "%c%05d" tag i)
            ~value:(Printf.sprintf "%c%d" tag i)
        done;
        0
      in
      let reader () =
        let wrong = ref 0 in
        for round = 1 to 3 do
          ignore round;
          for i = 0 to n - 1 do
            match Db.get db (Printf.sprintf "a%05d" i) with
            | Some v when v <> Printf.sprintf "a%d" i -> incr wrong
            | Some _ | None -> ()
          done
        done;
        !wrong
      in
      let results = spawn_all [ writer 'a'; writer 'b'; reader ] in
      Alcotest.(check int) "no wrong values under merges" 0 (List.nth results 2);
      (* Everything readable afterwards, across many rotations. *)
      Alcotest.(check bool) "rotations happened" true
        ((Db.stats db).Stats.memtable_rotations > 0);
      let missing = ref 0 in
      for i = 0 to n - 1 do
        if Db.get db (Printf.sprintf "a%05d" i) = None then incr missing;
        if Db.get db (Printf.sprintf "b%05d" i) = None then incr missing
      done;
      Alcotest.(check int) "nothing lost" 0 !missing)

let concurrent_snapshots_and_writes () =
  with_store ~memtable_bytes:(8 * 1024) (fun db _dir ->
      let stop = Atomic.make false in
      let writer () =
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          Db.put db ~key:"x" ~value:(string_of_int !i);
          Db.put db ~key:"y" ~value:(string_of_int !i)
        done;
        0
      in
      let snapshotter () =
        let bad = ref 0 in
        for _ = 1 to 300 do
          let s = Db.get_snap db in
          (match (Db.get_at db s "x", Db.get_at db s "y") with
          | Some x, Some y when int_of_string y > int_of_string x -> incr bad
          | None, Some _ -> incr bad
          | _ -> ());
          Db.release_snapshot db s
        done;
        Atomic.set stop true;
        !bad
      in
      let results = spawn_all [ writer; snapshotter ] in
      Alcotest.(check int) "snapshots always consistent" 0 (List.nth results 1))

(* ---------- Maintenance behaviour ---------- *)

let tombstones_gc_at_bottom () =
  with_store (fun db _dir ->
      for i = 0 to 199 do
        Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:"v"
      done;
      Db.compact_now db;
      for i = 0 to 199 do
        Db.delete db ~key:(Printf.sprintf "k%04d" i)
      done;
      Db.compact_now db;
      Db.compact_now db;
      Alcotest.(check (list (pair string string))) "empty view" [] (Db.range db))

let stats_populated () =
  with_store (fun db _dir ->
      Db.put db ~key:"a" ~value:"1";
      ignore (Db.get db "a");
      Db.delete db ~key:"a";
      ignore (Db.rmw db ~key:"a" (fun _ -> Db.Abort));
      let s = Db.get_snap db in
      Db.release_snapshot db s;
      ignore (Db.range db);
      let st = Db.stats db in
      Alcotest.(check int) "puts" 1 st.Stats.puts;
      Alcotest.(check bool) "gets" true (st.Stats.gets >= 1);
      Alcotest.(check int) "deletes" 1 st.Stats.deletes;
      Alcotest.(check int) "rmws" 1 st.Stats.rmws;
      Alcotest.(check bool) "snapshots" true (st.Stats.snapshots_taken >= 1);
      Alcotest.(check bool) "scans" true (st.Stats.scans >= 1))

let suites =
  [
    ( "core.memtable",
      [
        Alcotest.test_case "multi-version get" `Quick memtable_versions;
        Alcotest.test_case "duplicate (ts) ignored" `Quick memtable_duplicate_ignored;
        Alcotest.test_case "user key isolation" `Quick memtable_user_key_isolation;
        Alcotest.test_case "RMW locate/install protocol" `Quick memtable_rmw_protocol;
      ] );
    ( "core.db.basic",
      [
        Alcotest.test_case "put/get/overwrite" `Quick basic_put_get;
        Alcotest.test_case "delete semantics" `Quick delete_semantics;
        Alcotest.test_case "read through components" `Quick
          read_through_all_components;
        Alcotest.test_case "2k keys roundtrip" `Quick many_keys_roundtrip;
      ] );
    ( "core.db.snapshots",
      [
        Alcotest.test_case "isolation" `Quick snapshot_isolation;
        Alcotest.test_case "survives compaction" `Quick
          snapshot_survives_compaction;
        Alcotest.test_case "no inversions under writes" `Quick
          snapshot_scan_consistency_under_writes;
        Alcotest.test_case "linearizable variant" `Quick
          linearizable_snapshot_sees_own_writes;
      ] );
    ( "core.db.scans",
      [
        Alcotest.test_case "range basics" `Quick range_scan_basic;
        Alcotest.test_case "across components" `Quick scan_across_components;
        Alcotest.test_case "snapshot scan frozen" `Quick snapshot_scan_is_frozen;
      ] );
    ( "core.db.rmw",
      [
        Alcotest.test_case "sequential counter" `Quick rmw_counter_sequential;
        Alcotest.test_case "concurrent counter (no lost updates)" `Quick
          rmw_counter_concurrent;
        Alcotest.test_case "put-if-absent" `Quick rmw_put_if_absent;
        Alcotest.test_case "remove and abort" `Quick rmw_remove_and_abort;
        Alcotest.test_case "put-if-absent race" `Quick rmw_put_if_absent_race;
      ] );
    ( "core.db.recovery",
      [
        Alcotest.test_case "roundtrip" `Quick recovery_roundtrip;
        Alcotest.test_case "disk + wal mix" `Quick recovery_with_disk_and_wal_mix;
        Alcotest.test_case "unordered wal records" `Quick recovery_unordered_wal;
        Alcotest.test_case "wal disabled" `Quick wal_disabled_loses_memtable_only;
      ] );
    ( "core.db.concurrent",
      [
        Alcotest.test_case "put/get during merges" `Quick
          concurrent_put_get_during_merges;
        Alcotest.test_case "snapshots vs writes" `Quick
          concurrent_snapshots_and_writes;
      ] );
    ( "core.db.maintenance",
      [
        Alcotest.test_case "tombstone GC at bottom" `Quick tombstones_gc_at_bottom;
        Alcotest.test_case "stats populated" `Quick stats_populated;
      ] );
  ]
