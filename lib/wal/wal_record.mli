(** Framing of write-ahead-log records:

    {v record := crc32c(masked, fixed32) length(fixed32) payload v}

    The CRC covers the payload. A torn tail (crash mid-write) shows up as
    a short record; a bit flip in a complete record shows up as a CRC
    mismatch. Recovery treats both as end-of-log but reports them
    distinctly (see {!Wal_reader.outcome}). *)

val header_length : int

val encode : Buffer.t -> string -> unit
(** Append one framed record to [buf]. *)

val decode :
  string -> pos:int -> [ `Record of string * int | `End | `Torn | `Corrupt ]
(** [decode s ~pos] reads the record starting at [pos]. [`Record (payload,
    next_pos)] on success; [`End] exactly at end of input; [`Torn] when the
    record is cut short by the end of input (crash mid-write); [`Corrupt]
    when the record is complete but its checksum does not match (bit flip /
    overwrite). *)
