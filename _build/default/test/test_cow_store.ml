(* The generic-algorithm demonstration: the identical store logic over the
   copy-on-write map component must pass the same behavioural checks as
   the skip-list cLSM. *)

open Clsm_core
module S = Cow_store

let spawn_all fns = List.map Domain.spawn fns |> List.map Domain.join

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_test_cow_%d_%d" (Unix.getpid ()) !counter)

let small_opts dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes = 16 * 1024;
    cache_bytes = 1 lsl 20;
    lsm =
      {
        base.Options.lsm with
        Clsm_lsm.Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 16 * 1024;
        block_size = 1024;
      };
  }

let with_store f =
  let dir = fresh_dir () in
  let db = S.open_store (small_opts dir) in
  match f db dir with
  | r ->
      S.close db;
      r
  | exception e ->
      S.close db;
      raise e

(* ---------- Cow_memtable unit behaviour ---------- *)

let cow_memtable_versions () =
  let open Clsm_lsm in
  let m = Cow_memtable.create () in
  Cow_memtable.add m ~user_key:"k" ~ts:5 (Entry.Value "v5");
  Cow_memtable.add m ~user_key:"k" ~ts:9 (Entry.Value "v9");
  Alcotest.(check bool) "snap 7 sees v5" true
    (Cow_memtable.get m ~user_key:"k" ~snap_ts:7 = Some (5, Entry.Value "v5"));
  Alcotest.(check bool) "snap max sees v9" true
    (Cow_memtable.get m ~user_key:"k" ~snap_ts:Internal_key.max_ts
    = Some (9, Entry.Value "v9"));
  Alcotest.(check (option int)) "latest" (Some 9)
    (Cow_memtable.latest_ts m ~user_key:"k");
  (* duplicate ts ignored *)
  let bytes = Cow_memtable.approximate_bytes m in
  Cow_memtable.add m ~user_key:"k" ~ts:9 (Entry.Value "replayed");
  Alcotest.(check int) "duplicate ignored" bytes (Cow_memtable.approximate_bytes m)

let cow_memtable_rmw_conflict () =
  let open Clsm_lsm in
  let m = Cow_memtable.create () in
  Cow_memtable.add m ~user_key:"k" ~ts:1 (Entry.Value "a");
  let prev, loc = Cow_memtable.locate_rmw m ~user_key:"k" in
  Alcotest.(check (option int)) "prev" (Some 1) prev;
  (* any intervening write invalidates the location *)
  Cow_memtable.add m ~user_key:"other" ~ts:2 (Entry.Value "x");
  Alcotest.(check bool) "stale install rejected" false
    (Cow_memtable.try_install m loc ~user_key:"k" ~ts:3 (Entry.Value "b"));
  let _, loc = Cow_memtable.locate_rmw m ~user_key:"k" in
  Alcotest.(check bool) "fresh install ok" true
    (Cow_memtable.try_install m loc ~user_key:"k" ~ts:3 (Entry.Value "b"))

(* ---------- full-store behaviour over the alternative component ---------- *)

let basic_roundtrip () =
  with_store (fun db _ ->
      S.put db ~key:"a" ~value:"1";
      S.put db ~key:"b" ~value:"2";
      S.delete db ~key:"a";
      Alcotest.(check (option string)) "deleted" None (S.get db "a");
      Alcotest.(check (option string)) "kept" (Some "2") (S.get db "b"))

let through_disk_and_recovery () =
  let dir = fresh_dir () in
  let opts = small_opts dir in
  let db = S.open_store opts in
  for i = 0 to 499 do
    S.put db ~key:(Printf.sprintf "k%04d" i) ~value:(string_of_int i)
  done;
  S.compact_now db;
  Alcotest.(check (option string)) "from disk" (Some "123") (S.get db "k0123");
  S.put db ~key:"wal-only" ~value:"recovered";
  S.flush_wal db;
  S.close db;
  let db = S.open_store opts in
  Alcotest.(check (option string)) "disk survives" (Some "321") (S.get db "k0321");
  Alcotest.(check (option string)) "wal replayed" (Some "recovered")
    (S.get db "wal-only");
  Alcotest.(check (list string)) "verifies" [] (S.verify_integrity db);
  S.close db

let snapshots_and_scans () =
  with_store (fun db _ ->
      List.iter (fun (k, v) -> S.put db ~key:k ~value:v)
        [ ("a", "1"); ("b", "2"); ("c", "3") ];
      let snap = S.get_snap db in
      S.put db ~key:"b" ~value:"2x";
      S.delete db ~key:"c";
      Alcotest.(check (list (pair string string)))
        "snapshot view"
        [ ("a", "1"); ("b", "2"); ("c", "3") ]
        (S.range ~snapshot:snap db);
      Alcotest.(check (list (pair string string)))
        "live view"
        [ ("a", "1"); ("b", "2x") ]
        (S.range db);
      S.release_snapshot db snap)

let rmw_counter_concurrent () =
  with_store (fun db _ ->
      let per = 500 in
      let worker () =
        for _ = 1 to per do
          ignore
            (S.rmw db ~key:"ctr" (fun v ->
                 let n = match v with Some s -> int_of_string s | None -> 0 in
                 S.Set (string_of_int (n + 1))))
        done;
        0
      in
      ignore (spawn_all [ worker; worker; worker ]);
      Alcotest.(check (option string)) "no lost updates"
        (Some (string_of_int (3 * per)))
        (S.get db "ctr"))

let concurrent_reads_during_writes () =
  with_store (fun db _ ->
      let n = 1_000 in
      let writer () =
        for i = 0 to n - 1 do
          S.put db ~key:(Printf.sprintf "w%05d" i) ~value:(string_of_int i)
        done;
        0
      in
      let reader () =
        let wrong = ref 0 in
        for _ = 1 to 3 do
          for i = 0 to n - 1 do
            match S.get db (Printf.sprintf "w%05d" i) with
            | Some v when v <> string_of_int i -> incr wrong
            | Some _ | None -> ()
          done
        done;
        !wrong
      in
      let results = spawn_all [ writer; reader ] in
      Alcotest.(check int) "reads never wrong" 0 (List.nth results 1))

let batches_and_multi_get () =
  with_store (fun db _ ->
      S.write_batch db
        [ S.Batch_put ("x", "1"); S.Batch_put ("y", "2"); S.Batch_delete "x" ];
      Alcotest.(check (list (pair string (option string))))
        "multi_get"
        [ ("x", None); ("y", Some "2") ]
        (S.multi_get db [ "x"; "y" ]))

let agrees_with_skiplist_store () =
  (* Both instantiations of the generic store must compute identical
     contents for the same random history. *)
  let dir1 = fresh_dir () and dir2 = fresh_dir () in
  let a = Db.open_store (small_opts dir1) in
  let b = S.open_store (small_opts dir2) in
  let rng = Clsm_workload.Rng.create 77 in
  for _ = 1 to 2_000 do
    let key = Printf.sprintf "k%03d" (Clsm_workload.Rng.int rng 150) in
    if Clsm_workload.Rng.bool rng 0.25 then begin
      Db.delete a ~key;
      S.delete b ~key
    end
    else begin
      let value = Printf.sprintf "v%d" (Clsm_workload.Rng.int rng 100_000) in
      Db.put a ~key ~value;
      S.put b ~key ~value
    end
  done;
  Db.compact_now a;
  S.compact_now b;
  Alcotest.(check (list (pair string string)))
    "identical contents" (Db.range a) (S.range b);
  Db.close a;
  S.close b

let suites =
  [
    ( "cow.memtable",
      [
        Alcotest.test_case "multi-version get" `Quick cow_memtable_versions;
        Alcotest.test_case "rmw conflict detection" `Quick
          cow_memtable_rmw_conflict;
      ] );
    ( "cow.store",
      [
        Alcotest.test_case "roundtrip" `Quick basic_roundtrip;
        Alcotest.test_case "disk + recovery" `Quick through_disk_and_recovery;
        Alcotest.test_case "snapshots and scans" `Quick snapshots_and_scans;
        Alcotest.test_case "concurrent rmw counter" `Quick rmw_counter_concurrent;
        Alcotest.test_case "reads during writes" `Quick
          concurrent_reads_during_writes;
        Alcotest.test_case "batches and multi_get" `Quick batches_and_multi_get;
        Alcotest.test_case "agrees with skip-list store" `Quick
          agrees_with_skiplist_store;
      ] );
  ]
