open Clsm_util
module Env = Clsm_env.Env

exception Corrupt of string

let next_table_id = Atomic.make 0

type t = {
  id : int;
  key_prefix : string;  (* "<id>:", the cache-key namespace of this table *)
  path : string;
  file : Env.random_file;
  cmp : Comparator.t;
  cache : Block.t Cache.t option;
  footer : Table_format.footer;
  index : Block.t;
  filter : Bloom.t;
  props : Table_format.properties;
  (* Accounting handles: the index block is pinned into the cache (direct
     reference, charged to the budget, never evicted) and the filter +
     properties weight is reserved, so the per-open-table RAM the reader
     keeps hot is visible in [Cache.stats]. *)
  index_pin : Block.t Cache.handle option;
  aux_reservation : string option;
}

(* Decode one block image ([payload ^ trailer] as laid out on disk),
   verifying the CRC trailer. Corrupt messages carry the block's byte
   offset so containment/quarantine can report exactly which block
   rotted. *)
let decode_block_image ~offset raw =
  let corrupt what =
    raise (Corrupt (Printf.sprintf "block@%d: %s" offset what))
  in
  let size = String.length raw - Table_format.block_trailer_length in
  if size < 0 then corrupt "handle out of bounds";
  let payload = String.sub raw 0 size in
  let block_type = raw.[size] in
  let stored = Crc32c.unmask (Binary.get_fixed32 raw ~pos:(size + 1)) in
  let actual = Crc32c.sub ~init:(Crc32c.string payload) raw ~pos:size ~len:1 in
  if stored <> actual then corrupt "checksum mismatch";
  match block_type with
  | '\000' -> payload
  | '\001' -> (
      try Simple_compress.decompress payload
      with Invalid_argument m -> corrupt m)
  | _ -> corrupt "unknown block type"

(* Read a block payload at [handle], verifying the CRC trailer. *)
let read_block_raw (file : Env.random_file) handle =
  let { Block_handle.offset; size } = handle in
  let raw =
    try
      file.Env.rf_read ~pos:offset
        ~len:(size + Table_format.block_trailer_length)
    with Invalid_argument _ ->
      raise (Corrupt (Printf.sprintf "block@%d: handle out of bounds" offset))
  in
  decode_block_image ~offset raw

let open_file ?cache ?(env = Env.unix) ~cmp path =
  let file = env.Env.open_random path in
  let len = file.Env.rf_length in
  if len < Table_format.footer_length then raise (Corrupt "file too short");
  let footer_str =
    file.Env.rf_read
      ~pos:(len - Table_format.footer_length)
      ~len:Table_format.footer_length
  in
  let footer =
    try Table_format.decode_footer footer_str
    with Failure m -> raise (Corrupt m)
  in
  let index =
    try Block.parse cmp (read_block_raw file footer.Table_format.index_handle)
    with Block.Corrupt m -> raise (Corrupt m)
  in
  let filter =
    try Bloom.decode (read_block_raw file footer.Table_format.filter_handle)
    with Invalid_argument m -> raise (Corrupt m)
  in
  let props =
    try
      Table_format.decode_properties
        (read_block_raw file footer.Table_format.props_handle)
    with Varint.Corrupt m | Invalid_argument m -> raise (Corrupt m)
  in
  let id = Atomic.fetch_and_add next_table_id 1 in
  let index_pin, aux_reservation =
    match cache with
    | None -> (None, None)
    | Some cache ->
        let pin_key = Printf.sprintf "%d:index" id in
        let aux_key = Printf.sprintf "%d:aux" id in
        let aux_weight =
          footer.Table_format.filter_handle.Block_handle.size
          + footer.Table_format.props_handle.Block_handle.size
          + Table_format.footer_length
        in
        let pin = Cache.pin cache pin_key index in
        Cache.reserve cache aux_key aux_weight;
        (Some pin, Some aux_key)
  in
  {
    id;
    key_prefix = string_of_int id ^ ":";
    path;
    file;
    cmp;
    cache;
    footer;
    index;
    filter;
    props;
    index_pin;
    aux_reservation;
  }

let close t =
  (match (t.cache, t.index_pin) with
  | Some cache, Some pin -> Cache.unpin cache pin
  | _ -> ());
  (match (t.cache, t.aux_reservation) with
  | Some cache, Some key -> Cache.unreserve cache key
  | _ -> ());
  (* Retire this table's data blocks so they stop competing with live
     tables for cache space (handles held by in-flight reads keep their
     blocks alive). *)
  (match t.cache with
  | Some cache -> Cache.remove_matching cache ~prefix:t.key_prefix
  | None -> ());
  t.file.Env.rf_close ()
let path t = t.path
let properties t = t.props
let file_size t = t.file.Env.rf_length
let may_contain t filter_key = Bloom.mem t.filter filter_key

let load_block t handle =
  let decode () =
    try Block.parse t.cmp (read_block_raw t.file handle)
    with Block.Corrupt m -> raise (Corrupt m)
  in
  match t.cache with
  | None -> decode ()
  | Some cache ->
      let key = t.key_prefix ^ string_of_int handle.Block_handle.offset in
      Cache.find_or_add cache key decode

let handle_of_index_value v =
  let handle, _ = Block_handle.decode v ~pos:0 in
  handle

module Iter = struct
  type iter = {
    table : t;
    index_iter : Block.Iter.iter;
    mutable data_iter : Block.Iter.iter option;
    mutable seq_blocks : int;
        (* consecutive sequential (index [next]) block advances; reset by
           any seek, so point reads never trigger readahead *)
    mutable ra_until : int;
        (* file offset already covered by a readahead batch; nothing below
           this needs another batch *)
  }

  let make table =
    {
      table;
      index_iter = Block.Iter.make table.index;
      data_iter = None;
      seq_blocks = 0;
      ra_until = 0;
    }

  let block_end h =
    h.Block_handle.offset + h.Block_handle.size
    + Table_format.block_trailer_length

  (* Fetch up to [k] physically contiguous data blocks starting at the
     iterator's current index position in one pread, decode each and warm
     the cache. Any failure (short read, rot in one of the prefetched
     blocks) is swallowed: the scan falls back to on-demand single-block
     reads, which carry their own verification and error paths. *)
  let readahead_batch it cache k cur =
    let t = it.table in
    let probe = Block.Iter.make t.index in
    Block.Iter.seek probe (Block.Iter.key it.index_iter);
    let run = ref [ cur ] in
    let run_end = ref (block_end cur) in
    let n = ref 1 in
    Block.Iter.next probe;
    let continue = ref true in
    while !continue && !n < k && Block.Iter.valid probe do
      let h = handle_of_index_value (Block.Iter.value probe) in
      if h.Block_handle.offset = !run_end then begin
        run := h :: !run;
        run_end := block_end h;
        incr n;
        Block.Iter.next probe
      end
      else continue := false
    done;
    let handles = List.rev !run in
    it.ra_until <- !run_end;
    let key_of h = t.key_prefix ^ string_of_int h.Block_handle.offset in
    let missing =
      List.filter (fun h -> not (Cache.mem cache (key_of h))) handles
    in
    if List.length handles > 1 && missing <> [] then begin
      let base = cur.Block_handle.offset in
      let span = t.file.Env.rf_read ~pos:base ~len:(!run_end - base) in
      List.iter
        (fun h ->
          let image =
            String.sub span
              (h.Block_handle.offset - base)
              (h.Block_handle.size + Table_format.block_trailer_length)
          in
          let payload =
            decode_block_image ~offset:h.Block_handle.offset image
          in
          Cache.insert cache (key_of h) (Block.parse t.cmp payload))
        missing;
      Cache.note_readahead cache ~blocks:(List.length missing)
    end

  let maybe_readahead it =
    match it.table.cache with
    | None -> ()
    | Some cache ->
        let k = Cache.readahead_blocks cache in
        if k > 0 && it.seq_blocks >= 1 && Block.Iter.valid it.index_iter
        then begin
          let cur = handle_of_index_value (Block.Iter.value it.index_iter) in
          if cur.Block_handle.offset >= it.ra_until then
            try readahead_batch it cache k cur with _ -> ()
        end

  let load_data_block it =
    if Block.Iter.valid it.index_iter then begin
      let handle = handle_of_index_value (Block.Iter.value it.index_iter) in
      it.data_iter <- Some (Block.Iter.make (load_block it.table handle))
    end
    else it.data_iter <- None

  (* Advance to the first valid entry at or after the current position,
     skipping exhausted data blocks. *)
  let rec skip_exhausted it =
    match it.data_iter with
    | Some di when Block.Iter.valid di -> ()
    | Some _ | None ->
        Block.Iter.next it.index_iter;
        if Block.Iter.valid it.index_iter then begin
          it.seq_blocks <- it.seq_blocks + 1;
          maybe_readahead it;
          load_data_block it;
          (match it.data_iter with
          | Some di -> Block.Iter.seek_to_first di
          | None -> ());
          skip_exhausted it
        end
        else it.data_iter <- None

  let seek_to_first it =
    it.seq_blocks <- 0;
    Block.Iter.seek_to_first it.index_iter;
    load_data_block it;
    (match it.data_iter with
    | Some di -> Block.Iter.seek_to_first di
    | None -> ());
    skip_exhausted it

  let seek it target =
    (* Index keys are the last key of each block, so the first index entry
       >= target points at the only block that can contain it. *)
    it.seq_blocks <- 0;
    Block.Iter.seek it.index_iter target;
    load_data_block it;
    (match it.data_iter with
    | Some di -> Block.Iter.seek di target
    | None -> ());
    skip_exhausted it

  let valid it =
    match it.data_iter with Some di -> Block.Iter.valid di | None -> false

  let key it =
    match it.data_iter with
    | Some di -> Block.Iter.key di
    | None -> invalid_arg "Table.Iter.key: invalid iterator"

  let value it =
    match it.data_iter with
    | Some di -> Block.Iter.value di
    | None -> invalid_arg "Table.Iter.value: invalid iterator"

  let next it =
    match it.data_iter with
    | Some di ->
        Block.Iter.next di;
        skip_exhausted it
    | None -> ()
end

let index_anchors t =
  let it = Block.Iter.make t.index in
  Block.Iter.seek_to_first it;
  let rec go acc =
    if Block.Iter.valid it then begin
      let k = Block.Iter.key it in
      let h = handle_of_index_value (Block.Iter.value it) in
      Block.Iter.next it;
      go ((k, h.Block_handle.size) :: acc)
    end
    else List.rev acc
  in
  go []

let find_first_ge t probe =
  let it = Iter.make t in
  Iter.seek it probe;
  if Iter.valid it then Some (Iter.key it, Iter.value it) else None

let find_last_le t probe =
  let index_it = Block.Iter.make t.index in
  let last_entry_of handle =
    let di = Block.Iter.make (load_block t handle) in
    Block.Iter.seek_last di;
    if Block.Iter.valid di then Some (Block.Iter.key di, Block.Iter.value di)
    else None
  in
  (* The first block whose last key >= probe is the only one that can hold
     entries in (prev_block.last, probe]; if it holds nothing <= probe, the
     answer is the last entry of the latest block entirely <= probe. *)
  Block.Iter.seek index_it probe;
  if Block.Iter.valid index_it then begin
    let handle = handle_of_index_value (Block.Iter.value index_it) in
    let di = Block.Iter.make (load_block t handle) in
    Block.Iter.seek_le di probe;
    if Block.Iter.valid di then Some (Block.Iter.key di, Block.Iter.value di)
    else begin
      (* Every entry of that block is > probe: fall back to the preceding
         block, i.e. the greatest index key <= probe. *)
      Block.Iter.seek_le index_it probe;
      if Block.Iter.valid index_it then
        last_entry_of (handle_of_index_value (Block.Iter.value index_it))
      else None
    end
  end
  else begin
    (* probe is past every block: answer is the last entry of the table. *)
    Block.Iter.seek_last index_it;
    if Block.Iter.valid index_it then
      last_entry_of (handle_of_index_value (Block.Iter.value index_it))
    else None
  end

let fold f t acc =
  let it = Iter.make t in
  Iter.seek_to_first it;
  let rec go acc =
    if Iter.valid it then begin
      let k = Iter.key it and v = Iter.value it in
      Iter.next it;
      go (f k v acc)
    end
    else acc
  in
  go acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

(* Re-read and re-decode the auxiliary blocks (index, bloom filter,
   properties) straight from disk. The in-memory copies were validated
   once at [open_file]; this catches rot that happened on the media since
   — the cache and the eager copies are deliberately bypassed. *)
let verify_aux_blocks t =
  try
    ignore
      (Block.parse t.cmp (read_block_raw t.file t.footer.Table_format.index_handle));
    ignore (Bloom.decode (read_block_raw t.file t.footer.Table_format.filter_handle));
    ignore
      (Table_format.decode_properties
         (read_block_raw t.file t.footer.Table_format.props_handle));
    Ok ()
  with
  | Corrupt m -> Error m
  | Block.Corrupt m -> Error ("index block: " ^ m)
  | Invalid_argument m -> Error ("filter block: " ^ m)
  | Varint.Corrupt m -> Error ("properties block: " ^ m)

(* Data-block handles in index (= key) order, straight from the in-memory
   index. *)
let data_block_handles t =
  let it = Block.Iter.make t.index in
  Block.Iter.seek_to_first it;
  let rec go acc =
    if Block.Iter.valid it then begin
      let h = handle_of_index_value (Block.Iter.value it) in
      Block.Iter.next it;
      go (h :: acc)
    end
    else Array.of_list (List.rev acc)
  in
  go []

type scrub_progress = { blocks_checked : int; next_block : int option }

let scrub ?(from_block = 0) ?max_blocks t =
  let handles = data_block_handles t in
  let n = Array.length handles in
  let from_block = max 0 from_block in
  let budget =
    match max_blocks with None -> max 1 (n + 3) | Some b -> max 1 b
  in
  try
    let checked = ref 0 in
    (* A pass starting at block 0 also re-verifies the footer-addressed
       auxiliary blocks (counted as three blocks against the budget). *)
    (if from_block = 0 then
       match verify_aux_blocks t with
       | Ok () -> checked := !checked + 3
       | Error m -> raise (Corrupt m));
    let i = ref from_block in
    while !i < n && !checked < budget do
      ignore (Block.parse t.cmp (read_block_raw t.file handles.(!i)));
      incr checked;
      incr i
    done;
    Ok
      {
        blocks_checked = !checked;
        next_block = (if !i >= n then None else Some !i);
      }
  with
  | Corrupt m -> Error m
  | Block.Corrupt m -> Error m

let verify t =
  let cmp = t.cmp.Comparator.compare in
  match
    match verify_aux_blocks t with
    | Error _ as e -> e
    | Ok () ->
        fold
          (fun k _ state ->
            match state with
            | Error _ as e -> e
            | Ok (count, prev) -> (
                match prev with
                | Some p when cmp p k >= 0 ->
                    Error (Printf.sprintf "key order violation after %S" p)
                | Some _ | None -> Ok (count + 1, Some k)))
          t
          (Ok (0, None))
  with
  | exception Corrupt msg -> Error msg
  | Error _ as e -> e
  | Ok (count, last) ->
      if count <> t.props.Table_format.num_entries then
        Error
          (Printf.sprintf "entry count %d does not match properties %d" count
             t.props.Table_format.num_entries)
      else if count > 0 && Some t.props.Table_format.largest <> last then
        Error "largest key does not match properties"
      else Ok count
