(* Deterministic unit tests for the linearizability checker and the scan
   validator: hand-built histories with known verdicts, plus a small
   single-process stress smoke through the whole pipeline. These run in
   the tier-1 suite; the seeded multi-domain campaigns live in
   test_lincheck.ml behind `dune build @lincheck`. *)

open Clsm_lincheck

let ev id domain key op inv res =
  { History.id; domain; key; op; inv; res }

let history ?(scans = []) events = { History.events; scans }

let scan ?snap_ts ~inv ~res result =
  {
    History.scan_domain = 0;
    scan_inv = inv;
    scan_res = res;
    snap_ts;
    result;
  }

let check_verdict name expected h =
  let r = Checker.check h in
  Alcotest.(check bool) name expected (Checker.ok r)

(* ---------- checker: accepting ---------- *)

let sequential_ok () =
  check_verdict "put then get" true
    (history
       [
         ev 0 0 "a" (History.Put "v1") 0 1;
         ev 1 0 "a" (History.Get (Some "v1")) 2 3;
         ev 2 0 "a" History.Delete 4 5;
         ev 3 0 "a" (History.Get None) 6 7;
       ])

let concurrent_overlap_ok () =
  (* the get overlaps the put and may linearize before it *)
  check_verdict "overlapping get sees pre-state" true
    (history
       [
         ev 0 0 "a" (History.Put "v1") 0 3;
         ev 1 1 "a" (History.Get None) 1 2;
       ])

let rmw_chain_ok () =
  check_verdict "rmw chain" true
    (history
       [
         ev 0 0 "a" (History.Put "0") 0 1;
         ev 1 0 "a"
           (History.Rmw { pre = Some "0"; decision = History.Set "1" })
           2 3;
         ev 2 1 "a"
           (History.Rmw { pre = Some "1"; decision = History.Remove })
           4 5;
         ev 3 1 "a" (History.Get None) 6 7;
       ])

(* ---------- checker: rejecting ---------- *)

let stale_read_flagged () =
  check_verdict "stale read" false
    (history
       [
         ev 0 0 "a" (History.Put "v1") 0 1;
         ev 1 0 "a" (History.Put "v2") 2 3;
         ev 2 1 "a" (History.Get (Some "v1")) 4 5;
       ])

let lost_update_flagged () =
  (* two RMWs acting on the same pre-image cannot both linearize *)
  let h =
    history
      [
        ev 0 0 "a" (History.Put "0") 0 1;
        ev 1 0 "a"
          (History.Rmw { pre = Some "0"; decision = History.Set "1" })
          2 3;
        ev 2 1 "a"
          (History.Rmw { pre = Some "0"; decision = History.Set "2" })
          4 5;
      ]
  in
  let r = Checker.check h in
  Alcotest.(check bool) "flagged" false (Checker.ok r);
  match r.Checker.violations with
  | [ v ] ->
      Alcotest.(check string) "key" "a" v.Checker.vkey;
      Alcotest.(check bool) "witness nonempty" true (v.Checker.witness <> []);
      Alcotest.(check bool) "witness minimized" true
        (List.length v.Checker.witness <= v.Checker.total_events)
  | other ->
      Alcotest.failf "expected one violation, got %d" (List.length other)

let double_pia_flagged () =
  check_verdict "two winning put_if_absent" false
    (history
       [
         ev 0 0 "a"
           (History.Put_if_absent { value = "x"; won = true })
           0 1;
         ev 1 1 "a"
           (History.Put_if_absent { value = "y"; won = true })
           2 3;
       ])

let per_key_isolation () =
  (* one bad key must not implicate the good one, and vice versa *)
  let r =
    Checker.check
      (history
         [
           ev 0 0 "good" (History.Put "g1") 0 1;
           ev 1 0 "good" (History.Get (Some "g1")) 2 3;
           ev 2 0 "bad" (History.Put "b1") 4 5;
           ev 3 0 "bad" (History.Get None) 6 7;
         ])
  in
  Alcotest.(check int) "one violation" 1 (List.length r.Checker.violations);
  Alcotest.(check string) "bad key" "bad"
    (List.hd r.Checker.violations).Checker.vkey

(* ---------- scan validator ---------- *)

let torn_scan_flagged () =
  (* the scan mixes k1's newest value (written last) with a k2 value that
     was definitely superseded before that write began: no cut, past or
     present, explains both *)
  let h =
    history
      ~scans:[ scan ~inv:8 ~res:9 [ ("k1", "x2"); ("k2", "y1") ] ]
      [
        ev 0 0 "k1" (History.Put "x1") 0 1;
        ev 1 0 "k2" (History.Put "y1") 2 3;
        ev 2 0 "k2" (History.Put "y2") 4 5;
        ev 3 0 "k1" (History.Put "x2") 6 7;
      ]
  in
  Alcotest.(check bool) "serializable flags it" true
    (Scan_checker.check ~mode:`Serializable h <> []);
  (* the consistent lagging cut (t between 2 and 4) is accepted *)
  let ok_h =
    history
      ~scans:[ scan ~inv:8 ~res:9 [ ("k1", "x1"); ("k2", "y1") ] ]
      [
        ev 0 0 "k1" (History.Put "x1") 0 1;
        ev 1 0 "k2" (History.Put "y1") 2 3;
        ev 2 0 "k2" (History.Put "y2") 4 5;
      ]
  in
  Alcotest.(check bool) "consistent past cut accepted" true
    (Scan_checker.check ~mode:`Serializable ok_h = [])

let lagging_scan_modes () =
  (* consistent but in the past: legal for the serializable getSnap,
     illegal for the linearizable one *)
  let h =
    history
      ~scans:[ scan ~inv:6 ~res:7 [ ("k2", "y1") ] ]
      [
        ev 0 0 "k2" (History.Put "y1") 0 1;
        ev 1 0 "k2" (History.Put "y2") 2 3;
      ]
  in
  Alcotest.(check bool) "serializable accepts" true
    (Scan_checker.check ~mode:`Serializable h = []);
  Alcotest.(check bool) "linearizable rejects" true
    (Scan_checker.check ~mode:`Linearizable h <> [])

let half_visible_scan_flagged () =
  (* both keys written strictly before the scan, but the scan reports one
     new value and one initial absence: no cut explains it even in the
     past *)
  let h =
    history
      ~scans:[ scan ~inv:8 ~res:9 [ ("k2", "y1") ] ]
      [
        ev 0 0 "k1" (History.Put "x1") 0 1;
        ev 1 0 "k2" (History.Put "y1") 2 3;
      ]
  in
  (* scan reports k2 present (written second) but k1 absent (written
     first): y1's interval starts at 2, k1-absent ends at 0 *)
  Alcotest.(check bool) "half-visible prefix flagged" true
    (Scan_checker.check ~mode:`Serializable h <> [])

let snap_ts_monotone () =
  let good =
    history
      ~scans:
        [
          scan ~snap_ts:5 ~inv:0 ~res:1 [];
          scan ~snap_ts:5 ~inv:2 ~res:3 [];
          scan ~snap_ts:9 ~inv:4 ~res:5 [];
        ]
      []
  in
  Alcotest.(check bool) "monotone ok" true (Scan_checker.check good = []);
  let bad =
    history
      ~scans:
        [
          scan ~snap_ts:9 ~inv:0 ~res:1 [];
          scan ~snap_ts:5 ~inv:2 ~res:3 [];
        ]
      []
  in
  Alcotest.(check bool) "backwards ts flagged" true
    (Scan_checker.check bad <> [])

(* ---------- end-to-end smoke on the bare memtable ---------- *)

let memtable_smoke () =
  let cfg =
    {
      Stress.default with
      Stress.seed = 42;
      domains = 2;
      ops_per_domain = 150;
      scan_every = 0;
      compact_every = 0;
    }
  in
  let h = Stress.run cfg (Target.of_memtable ()) in
  let r = Checker.check h in
  if not (Checker.ok r) then
    Alcotest.failf "memtable smoke: %s" (Checker.pp_result r);
  Alcotest.(check bool) "events recorded" true
    (List.length h.History.events >= 2 * 150)

let suites =
  [
    ( "lincheck-unit",
      [
        Alcotest.test_case "sequential ok" `Quick sequential_ok;
        Alcotest.test_case "concurrent overlap ok" `Quick concurrent_overlap_ok;
        Alcotest.test_case "rmw chain ok" `Quick rmw_chain_ok;
        Alcotest.test_case "stale read flagged" `Quick stale_read_flagged;
        Alcotest.test_case "lost update flagged" `Quick lost_update_flagged;
        Alcotest.test_case "double put_if_absent flagged" `Quick
          double_pia_flagged;
        Alcotest.test_case "per-key isolation" `Quick per_key_isolation;
        Alcotest.test_case "torn scan flagged" `Quick torn_scan_flagged;
        Alcotest.test_case "lagging scan: serializable vs linearizable" `Quick
          lagging_scan_modes;
        Alcotest.test_case "half-visible scan flagged" `Quick
          half_visible_scan_flagged;
        Alcotest.test_case "snap_ts monotone" `Quick snap_ts_monotone;
        Alcotest.test_case "memtable stress smoke" `Quick memtable_smoke;
      ] );
  ]
