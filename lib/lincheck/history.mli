(** Concurrent-history recording for the linearizability checker.

    A {!recorder} owns a global atomic sequence counter and one
    {!Clsm_primitives.Event_buffer} per registered domain. Each operation is
    logged as one completed event carrying the counter values read at
    invocation ([inv]) and at response ([res]): operation A really precedes
    operation B iff [A.res < B.inv], which is exactly the real-time partial
    order the checker must respect. Recording is lock-free (a fetch-and-add
    per edge plus an append to the domain-local buffer), so the recorder
    does not serialize the interleavings it observes. *)

type decision = Set of string | Remove | Abort
(** Mirror of {!Clsm_core.Store_sig.S.rmw_decision}, decoupled so the
    checker does not depend on a particular store instance. *)

type op =
  | Get of string option  (** observed value *)
  | Put of string
  | Delete
  | Rmw of { pre : string option; decision : decision }
      (** pre-image read by the successful attempt, and the decision of the
          final invocation of the user function *)
  | Put_if_absent of { value : string; won : bool }

type event = {
  id : int;  (** unique within the history *)
  domain : int;  (** registration index, not [Domain.id] *)
  key : string;
  op : op;
  inv : int;
  res : int;
}

type scan = {
  scan_domain : int;
  scan_inv : int;
  scan_res : int;
  snap_ts : int option;  (** store snapshot timestamp, when exposed *)
  result : (string * string) list;  (** full-range scan result *)
}

type recorder
type dom  (** per-domain recording handle *)

val create : unit -> recorder

val register : recorder -> dom
(** Call once from each worker domain before its first operation. *)

val next_seq : recorder -> int
(** Draw the next global sequence number (invocation / response edge). *)

val dom_seq : dom -> int
(** {!next_seq} through a per-domain handle. *)

val record : dom -> key:string -> inv:int -> res:int -> op -> unit
val record_scan : dom -> inv:int -> res:int -> snap_ts:int option ->
  (string * string) list -> unit

type t = { events : event list; scans : scan list }
(** A collected history. [events] are sorted by [inv]. *)

val collect : recorder -> t
(** Gather all per-domain buffers. Call after every worker has finished
    (joined); a concurrent call sees a consistent prefix per domain. *)

val pp_value : string option -> string
val pp_op : op -> string
val pp_event : event -> string
(** One-line rendering: [[d2] #17 inv=340 res=345 rmw "k03" pre=...]. *)
