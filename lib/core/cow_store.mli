(** {!Db}'s algorithmic twin over {!Cow_memtable} (a persistent map behind
    an atomic pointer): the generic-algorithm demonstration of §1/§3.
    Same API, same on-disk format, same recovery; only the memory
    component's concurrency differs (serialized writes, wait-free reads,
    mutex-based RMW installs). *)

include Store_sig.EXTENDED
