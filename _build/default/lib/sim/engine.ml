(* Binary min-heap of (time, seq)-keyed events. *)

type event = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; thunk = ignore }

let create () = { heap = Array.make 256 dummy; size = 0; clock = 0.0; next_seq = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let schedule_at t time thunk =
  let time = if time < t.clock then t.clock else time in
  push t { time; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1

let schedule_after t delay thunk =
  schedule_at t (t.clock +. Float.max 0.0 delay) thunk

let run_until t horizon =
  let continue = ref true in
  while !continue && t.size > 0 do
    if t.heap.(0).time > horizon then continue := false
    else begin
      let ev = pop t in
      t.clock <- ev.time;
      ev.thunk ()
    end
  done;
  if t.clock < horizon then t.clock <- horizon

let run_all t =
  while t.size > 0 do
    let ev = pop t in
    t.clock <- ev.time;
    ev.thunk ()
  done

let pending t = t.size
