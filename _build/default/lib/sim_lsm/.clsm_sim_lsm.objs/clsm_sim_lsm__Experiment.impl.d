lib/sim_lsm/experiment.ml: Clsm_sim Clsm_workload Costs Engine Histogram List Rng Sim_store System Workload_spec
