lib/sstable/block.ml: Binary Clsm_util Comparator String Varint
