(* Per-level compaction counters are a fixed-size array indexed by source
   level; 16 comfortably covers any [Lsm_config.num_levels] in use and
   keeps the counters allocation-free on the hot path. *)
let max_levels = 16

(* Commit-wait latencies land in power-of-two buckets: bucket [i] counts
   waits with ns in [2^i, 2^(i+1)) (bucket 0 absorbs sub-2ns). 40 buckets
   reach ~550 s — anything slower clamps into the last one. Log2 buckets
   cost one increment on the commit path and still resolve p50/p99 to
   within a factor of two, which is all the observability needs. *)
let wait_buckets = 40

let bucket_of_ns ns =
  let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
  min (wait_buckets - 1) (bits (max 1 ns) 0)

type t = {
  puts : int Atomic.t;
  gets : int Atomic.t;
  deletes : int Atomic.t;
  rmws : int Atomic.t;
  rmw_conflicts : int Atomic.t;
  snapshots_taken : int Atomic.t;
  scans : int Atomic.t;
  memtable_rotations : int Atomic.t;
  flushes : int Atomic.t;
  compactions : int Atomic.t;
  compactions_per_level : int Atomic.t array; (* by source level *)
  subcompactions : int Atomic.t;
  parallel_compactions : int Atomic.t;
  max_compaction_fanout : int Atomic.t;
  compaction_ns : int Atomic.t;
  bytes_flushed : int Atomic.t;
  bytes_compacted : int Atomic.t;
  write_stalls : int Atomic.t;
  stall_ns : int Atomic.t;
  write_slowdowns : int Atomic.t;
  slowdown_delay_ns : int Atomic.t;
  maintenance_wakeups : int Atomic.t;
  scrubbed_blocks : int Atomic.t;
  corruptions_detected : int Atomic.t;
  quarantined_tables : int Atomic.t;
  io_retries : int Atomic.t;
  auto_repairs : int Atomic.t;
  wal_group_commits : int Atomic.t;
  wal_group_records : int Atomic.t;
  wal_fsyncs_saved : int Atomic.t;
  commit_waits : int Atomic.t;
  commit_wait_ns : int Atomic.t;
  commit_wait_hist : int Atomic.t array; (* log2 buckets, see above *)
  get_ns : int Atomic.t;
  get_hist : int Atomic.t array; (* log2 buckets, same scheme *)
}

type snapshot = {
  puts : int;
  gets : int;
  deletes : int;
  rmws : int;
  rmw_conflicts : int;
  snapshots_taken : int;
  scans : int;
  memtable_rotations : int;
  flushes : int;
  compactions : int;
  compactions_per_level : int array;
  subcompactions : int;
  parallel_compactions : int;
  max_compaction_fanout : int;
  compaction_ns : int;
  bytes_flushed : int;
  bytes_compacted : int;
  write_stalls : int;
  stall_ns : int;
  write_slowdowns : int;
  slowdown_delay_ns : int;
  maintenance_wakeups : int;
  scrubbed_blocks : int;
  corruptions_detected : int;
  quarantined_tables : int;
  io_retries : int;
  auto_repairs : int;
  wal_group_commits : int;
  wal_group_records : int;
  wal_fsyncs_saved : int;
  commit_waits : int;
  commit_wait_ns : int;
  commit_wait_hist : int array;
  get_ns : int;
  get_hist : int array;
}

let create () : t =
  {
    puts = Atomic.make 0;
    gets = Atomic.make 0;
    deletes = Atomic.make 0;
    rmws = Atomic.make 0;
    rmw_conflicts = Atomic.make 0;
    snapshots_taken = Atomic.make 0;
    scans = Atomic.make 0;
    memtable_rotations = Atomic.make 0;
    flushes = Atomic.make 0;
    compactions = Atomic.make 0;
    compactions_per_level = Array.init max_levels (fun _ -> Atomic.make 0);
    subcompactions = Atomic.make 0;
    parallel_compactions = Atomic.make 0;
    max_compaction_fanout = Atomic.make 0;
    compaction_ns = Atomic.make 0;
    bytes_flushed = Atomic.make 0;
    bytes_compacted = Atomic.make 0;
    write_stalls = Atomic.make 0;
    stall_ns = Atomic.make 0;
    write_slowdowns = Atomic.make 0;
    slowdown_delay_ns = Atomic.make 0;
    maintenance_wakeups = Atomic.make 0;
    scrubbed_blocks = Atomic.make 0;
    corruptions_detected = Atomic.make 0;
    quarantined_tables = Atomic.make 0;
    io_retries = Atomic.make 0;
    auto_repairs = Atomic.make 0;
    wal_group_commits = Atomic.make 0;
    wal_group_records = Atomic.make 0;
    wal_fsyncs_saved = Atomic.make 0;
    commit_waits = Atomic.make 0;
    commit_wait_ns = Atomic.make 0;
    commit_wait_hist = Array.init wait_buckets (fun _ -> Atomic.make 0);
    get_ns = Atomic.make 0;
    get_hist = Array.init wait_buckets (fun _ -> Atomic.make 0);
  }

let incr_puts (t : t) = Atomic.incr t.puts
let incr_gets (t : t) = Atomic.incr t.gets
let incr_deletes (t : t) = Atomic.incr t.deletes
let incr_rmws (t : t) = Atomic.incr t.rmws
let incr_rmw_conflicts (t : t) = Atomic.incr t.rmw_conflicts
let incr_snapshots (t : t) = Atomic.incr t.snapshots_taken
let incr_scans (t : t) = Atomic.incr t.scans
let incr_rotations (t : t) = Atomic.incr t.memtable_rotations
let incr_flushes (t : t) = Atomic.incr t.flushes

let incr_compactions (t : t) ?src_level () =
  Atomic.incr t.compactions;
  match src_level with
  | Some l when l >= 0 && l < max_levels ->
      Atomic.incr t.compactions_per_level.(l)
  | Some _ | None -> ()

(* Parallelism/duration accounting for one finished compaction job, from
   whichever maintenance worker ran it; the max-fanout watermark is a CAS
   loop so concurrent jobs on disjoint level ranges cannot lose an
   update. *)
let record_compaction_run (t : t) ~fanout ~duration_ns =
  ignore (Atomic.fetch_and_add t.subcompactions (max 1 fanout));
  if fanout > 1 then Atomic.incr t.parallel_compactions;
  ignore (Atomic.fetch_and_add t.compaction_ns (max 0 duration_ns));
  let rec bump () =
    let cur = Atomic.get t.max_compaction_fanout in
    if fanout > cur && not (Atomic.compare_and_set t.max_compaction_fanout cur fanout)
    then bump ()
  in
  bump ()

let add_bytes_flushed (t : t) n = ignore (Atomic.fetch_and_add t.bytes_flushed n)
let add_bytes_compacted (t : t) n = ignore (Atomic.fetch_and_add t.bytes_compacted n)
let incr_write_stalls (t : t) = Atomic.incr t.write_stalls
let add_stall_ns (t : t) n = ignore (Atomic.fetch_and_add t.stall_ns (max 0 n))

let add_slowdown (t : t) ~delay_ns =
  Atomic.incr t.write_slowdowns;
  ignore (Atomic.fetch_and_add t.slowdown_delay_ns delay_ns)

let incr_maintenance_wakeups (t : t) = Atomic.incr t.maintenance_wakeups
let add_scrubbed_blocks (t : t) n = ignore (Atomic.fetch_and_add t.scrubbed_blocks (max 0 n))
let incr_corruptions_detected (t : t) = Atomic.incr t.corruptions_detected
let incr_quarantined_tables (t : t) = Atomic.incr t.quarantined_tables
let incr_io_retries (t : t) = Atomic.incr t.io_retries
let incr_auto_repairs (t : t) = Atomic.incr t.auto_repairs

(* One durable WAL write+fsync that covered [records] records. A batch of
   n acknowledged n commits with one fsync, so n-1 fsyncs were saved
   relative to per-write durability. *)
let record_group_commit (t : t) ~records =
  Atomic.incr t.wal_group_commits;
  ignore (Atomic.fetch_and_add t.wal_group_records (max 0 records));
  ignore (Atomic.fetch_and_add t.wal_fsyncs_saved (max 0 (records - 1)))

let record_commit_wait (t : t) ~ns =
  Atomic.incr t.commit_waits;
  ignore (Atomic.fetch_and_add t.commit_wait_ns (max 0 ns));
  Atomic.incr t.commit_wait_hist.(bucket_of_ns ns)

(* Point-read latency, same log2 scheme as commit waits; the count lives
   in the histogram (sum of buckets), so only the duration sum needs a
   second counter. *)
let record_get_latency (t : t) ~ns =
  ignore (Atomic.fetch_and_add t.get_ns (max 0 ns));
  Atomic.incr t.get_hist.(bucket_of_ns ns)

(* The hook record every store layer passes to [Wal_writer.create], so
   durable-commit accounting is identical no matter which layer (recovery,
   rotation, a baseline store) opened the log. *)
let wal_observer (t : t) : Clsm_wal.Wal_writer.observer =
  {
    Clsm_wal.Wal_writer.on_group_commit =
      (fun ~records -> record_group_commit t ~records);
    on_commit_wait = (fun ~ns -> record_commit_wait t ~ns);
  }

let read (t : t) : snapshot =
  {
    puts = Atomic.get t.puts;
    gets = Atomic.get t.gets;
    deletes = Atomic.get t.deletes;
    rmws = Atomic.get t.rmws;
    rmw_conflicts = Atomic.get t.rmw_conflicts;
    snapshots_taken = Atomic.get t.snapshots_taken;
    scans = Atomic.get t.scans;
    memtable_rotations = Atomic.get t.memtable_rotations;
    flushes = Atomic.get t.flushes;
    compactions = Atomic.get t.compactions;
    compactions_per_level = Array.map Atomic.get t.compactions_per_level;
    subcompactions = Atomic.get t.subcompactions;
    parallel_compactions = Atomic.get t.parallel_compactions;
    max_compaction_fanout = Atomic.get t.max_compaction_fanout;
    compaction_ns = Atomic.get t.compaction_ns;
    bytes_flushed = Atomic.get t.bytes_flushed;
    bytes_compacted = Atomic.get t.bytes_compacted;
    write_stalls = Atomic.get t.write_stalls;
    stall_ns = Atomic.get t.stall_ns;
    write_slowdowns = Atomic.get t.write_slowdowns;
    slowdown_delay_ns = Atomic.get t.slowdown_delay_ns;
    maintenance_wakeups = Atomic.get t.maintenance_wakeups;
    scrubbed_blocks = Atomic.get t.scrubbed_blocks;
    corruptions_detected = Atomic.get t.corruptions_detected;
    quarantined_tables = Atomic.get t.quarantined_tables;
    io_retries = Atomic.get t.io_retries;
    auto_repairs = Atomic.get t.auto_repairs;
    wal_group_commits = Atomic.get t.wal_group_commits;
    wal_group_records = Atomic.get t.wal_group_records;
    wal_fsyncs_saved = Atomic.get t.wal_fsyncs_saved;
    commit_waits = Atomic.get t.commit_waits;
    commit_wait_ns = Atomic.get t.commit_wait_ns;
    commit_wait_hist = Array.map Atomic.get t.commit_wait_hist;
    get_ns = Atomic.get t.get_ns;
    get_hist = Array.map Atomic.get t.get_hist;
  }

(* Percentile over a log2 histogram, reported as the matched bucket's
   upper bound in (ceiling) microseconds — within 2x of the true value,
   which is the resolution the buckets promise. 0 when nothing was
   recorded. *)
let percentile_us (hist : int array) ~pct =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (float_of_int total *. pct /. 100.))) in
    let idx = ref (wait_buckets - 1) and acc = ref 0 in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= rank then begin
             idx := i;
             raise Exit
           end)
         hist
     with Exit -> ());
    ((1 lsl (!idx + 1)) + 999) / 1000
  end

let commit_wait_percentile_us (s : snapshot) ~pct =
  percentile_us s.commit_wait_hist ~pct

let get_percentile_us (s : snapshot) ~pct = percentile_us s.get_hist ~pct

(* ---------- the counter catalogue ----------

   The single source of truth for every rendered representation: [pp] and
   [to_json] both walk this list, so a counter added to the snapshot
   record cannot appear in one and be silently omitted from the other
   (and [merge] below is a record construction, so the compiler forces it
   to account for new fields too). JSON field names are part of the
   scraping surface — keep them stable. *)

(* [`Max] marks high-watermarks, which aggregate by maximum (not sum)
   when several stores' snapshots are merged into one roll-up. *)
let scalar_fields : (string * [ `Sum | `Max ] * (snapshot -> int)) list =
  [
    ("puts", `Sum, fun s -> s.puts);
    ("gets", `Sum, fun s -> s.gets);
    ("deletes", `Sum, fun s -> s.deletes);
    ("rmws", `Sum, fun s -> s.rmws);
    ("rmw_conflicts", `Sum, fun s -> s.rmw_conflicts);
    ("snapshots", `Sum, fun s -> s.snapshots_taken);
    ("scans", `Sum, fun s -> s.scans);
    ("memtable_rotations", `Sum, fun s -> s.memtable_rotations);
    ("flushes", `Sum, fun s -> s.flushes);
    ("compactions", `Sum, fun s -> s.compactions);
    ("subcompactions", `Sum, fun s -> s.subcompactions);
    ("parallel_compactions", `Sum, fun s -> s.parallel_compactions);
    ("max_compaction_fanout", `Max, fun s -> s.max_compaction_fanout);
    ("compaction_ns", `Sum, fun s -> s.compaction_ns);
    ("bytes_flushed", `Sum, fun s -> s.bytes_flushed);
    ("bytes_compacted", `Sum, fun s -> s.bytes_compacted);
    ("write_stalls", `Sum, fun s -> s.write_stalls);
    ("stall_ns", `Sum, fun s -> s.stall_ns);
    ("write_slowdowns", `Sum, fun s -> s.write_slowdowns);
    ("slowdown_delay_ns", `Sum, fun s -> s.slowdown_delay_ns);
    ("maintenance_wakeups", `Sum, fun s -> s.maintenance_wakeups);
    ("scrubbed_blocks", `Sum, fun s -> s.scrubbed_blocks);
    ("corruptions_detected", `Sum, fun s -> s.corruptions_detected);
    ("quarantined_tables", `Sum, fun s -> s.quarantined_tables);
    ("io_retries", `Sum, fun s -> s.io_retries);
    ("auto_repairs", `Sum, fun s -> s.auto_repairs);
    ("wal_group_commits", `Sum, fun s -> s.wal_group_commits);
    ("wal_group_records", `Sum, fun s -> s.wal_group_records);
    ("wal_fsyncs_saved", `Sum, fun s -> s.wal_fsyncs_saved);
    ("commit_waits", `Sum, fun s -> s.commit_waits);
    ("commit_wait_ns", `Sum, fun s -> s.commit_wait_ns);
    (* derived from the histogram, so a shard roll-up ([merge] adds the
       buckets) re-resolves the percentiles over the combined population
       instead of averaging per-shard percentiles *)
    ("commit_wait_p50_us", `Max, fun s -> commit_wait_percentile_us s ~pct:50.);
    ("commit_wait_p99_us", `Max, fun s -> commit_wait_percentile_us s ~pct:99.);
    ("get_ns", `Sum, fun s -> s.get_ns);
    ("get_p50_us", `Max, fun s -> get_percentile_us s ~pct:50.);
    ("get_p99_us", `Max, fun s -> get_percentile_us s ~pct:99.);
  ]

(* Aggregate several stores' snapshots (the shard roll-up): counters sum,
   high-watermarks take the maximum. A record construction on purpose —
   adding a snapshot field without deciding its aggregation is a compile
   error here. *)
let merge (a : snapshot) (b : snapshot) : snapshot =
  let per_level =
    Array.init
      (max (Array.length a.compactions_per_level)
         (Array.length b.compactions_per_level))
      (fun i ->
        let at (arr : int array) = if i < Array.length arr then arr.(i) else 0 in
        at a.compactions_per_level + at b.compactions_per_level)
  in
  {
    puts = a.puts + b.puts;
    gets = a.gets + b.gets;
    deletes = a.deletes + b.deletes;
    rmws = a.rmws + b.rmws;
    rmw_conflicts = a.rmw_conflicts + b.rmw_conflicts;
    snapshots_taken = a.snapshots_taken + b.snapshots_taken;
    scans = a.scans + b.scans;
    memtable_rotations = a.memtable_rotations + b.memtable_rotations;
    flushes = a.flushes + b.flushes;
    compactions = a.compactions + b.compactions;
    compactions_per_level = per_level;
    subcompactions = a.subcompactions + b.subcompactions;
    parallel_compactions = a.parallel_compactions + b.parallel_compactions;
    max_compaction_fanout = max a.max_compaction_fanout b.max_compaction_fanout;
    compaction_ns = a.compaction_ns + b.compaction_ns;
    bytes_flushed = a.bytes_flushed + b.bytes_flushed;
    bytes_compacted = a.bytes_compacted + b.bytes_compacted;
    write_stalls = a.write_stalls + b.write_stalls;
    stall_ns = a.stall_ns + b.stall_ns;
    write_slowdowns = a.write_slowdowns + b.write_slowdowns;
    slowdown_delay_ns = a.slowdown_delay_ns + b.slowdown_delay_ns;
    maintenance_wakeups = a.maintenance_wakeups + b.maintenance_wakeups;
    scrubbed_blocks = a.scrubbed_blocks + b.scrubbed_blocks;
    corruptions_detected = a.corruptions_detected + b.corruptions_detected;
    quarantined_tables = a.quarantined_tables + b.quarantined_tables;
    io_retries = a.io_retries + b.io_retries;
    auto_repairs = a.auto_repairs + b.auto_repairs;
    wal_group_commits = a.wal_group_commits + b.wal_group_commits;
    wal_group_records = a.wal_group_records + b.wal_group_records;
    wal_fsyncs_saved = a.wal_fsyncs_saved + b.wal_fsyncs_saved;
    commit_waits = a.commit_waits + b.commit_waits;
    commit_wait_ns = a.commit_wait_ns + b.commit_wait_ns;
    commit_wait_hist =
      Array.init wait_buckets (fun i ->
          let at (arr : int array) =
            if i < Array.length arr then arr.(i) else 0
          in
          at a.commit_wait_hist + at b.commit_wait_hist);
    get_ns = a.get_ns + b.get_ns;
    get_hist =
      Array.init wait_buckets (fun i ->
          let at (arr : int array) =
            if i < Array.length arr then arr.(i) else 0
          in
          at a.get_hist + at b.get_hist);
  }

let merge_all = function
  | [] -> read (create ())
  | s :: rest -> List.fold_left merge s rest

let pp ppf s =
  let per_level =
    s.compactions_per_level |> Array.to_list
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) -> Printf.sprintf "L%d:%d" i n)
    |> String.concat " "
  in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, _, get) ->
      if i > 0 then
        if i mod 5 = 0 then Format.fprintf ppf "@," else Format.fprintf ppf " ";
      Format.fprintf ppf "%s=%d" name (get s);
      (* the per-level breakdown rides along with its total *)
      if name = "compactions" && per_level <> "" then
        Format.fprintf ppf " [%s]" per_level)
    scalar_fields;
  Format.fprintf ppf "@]"

let to_json (s : snapshot) =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iter
    (fun (name, _, get) ->
      Buffer.add_string b (Printf.sprintf "\"%s\":%d," name (get s));
      if name = "compactions" then begin
        Buffer.add_string b "\"compactions_per_level\":[";
        Array.iteri
          (fun i n ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int n))
          s.compactions_per_level;
        Buffer.add_string b "],"
      end)
    scalar_fields;
  (* drop the trailing comma the last field left *)
  Buffer.truncate b (Buffer.length b - 1);
  Buffer.add_char b '}';
  Buffer.contents b
