(* Order inversion: the spec says a before b; taking a under b is the
   classic ABBA half. *)

type t = { a : Mutex.t; b : Mutex.t }

let right t = Mutex.protect t.a (fun () -> Mutex.protect t.b (fun () -> ()))

let wrong t =
  Mutex.protect t.b (fun () ->
      Mutex.protect t.a (fun () -> ()) (* BAD: LC001 *))
