type t = { store : Single_writer_store.t; stripes : Mutex.t array }

let create ?(stripes = 1024) store =
  if stripes < 1 then invalid_arg "Striped_rmw.create";
  { store; stripes = Array.init stripes (fun _ -> Mutex.create ()) }

let stripe_of t key =
  t.stripes.(Clsm_util.Hashing.hash ~seed:0x517cc1b7 key
             mod Array.length t.stripes)

let with_stripe t key f =
  let m = stripe_of t key in
  Mutex.protect m f

let put t ~key ~value =
  with_stripe t key (fun () -> Single_writer_store.put t.store ~key ~value)

let delete t ~key =
  with_stripe t key (fun () -> Single_writer_store.delete t.store ~key)

let get t key = Single_writer_store.get t.store key

type rmw_decision = Clsm_core.Db.rmw_decision = Set of string | Remove | Abort

let rmw t ~key f =
  with_stripe t key (fun () ->
      let pre = Single_writer_store.get t.store key in
      (match f pre with
      | Set v -> Single_writer_store.put t.store ~key ~value:v
      | Remove -> Single_writer_store.delete t.store ~key
      | Abort -> ());
      pre)

let put_if_absent t ~key ~value =
  let installed = ref false in
  ignore
    (rmw t ~key (function
      | Some _ -> Abort
      | None ->
          installed := true;
          Set value));
  !installed

let store t = t.store
