lib/primitives/rcu_box.ml: Atomic Backoff Refcounted
