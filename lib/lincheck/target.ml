open Clsm_primitives

type ops = {
  name : string;
  get : string -> string option;
  put : key:string -> value:string -> unit;
  delete : key:string -> unit;
  rmw :
    (key:string -> (string option -> History.decision) -> string option)
    option;
  put_if_absent : (key:string -> value:string -> bool) option;
  scan : (unit -> int option * (string * string) list) option;
  compact : (unit -> unit) option;
}

module Of_store (S : Clsm_core.Store_sig.S) = struct
  let ops ?(name = "store") t =
    {
      name;
      get = (fun key -> S.get t key);
      put = (fun ~key ~value -> S.put t ~key ~value);
      delete = (fun ~key -> S.delete t ~key);
      rmw =
        Some
          (fun ~key f ->
            S.rmw t ~key (fun pre ->
                match f pre with
                | History.Set v -> S.Set v
                | History.Remove -> S.Remove
                | History.Abort -> S.Abort));
      put_if_absent = Some (fun ~key ~value -> S.put_if_absent t ~key ~value);
      scan =
        Some
          (fun () ->
            let snap = S.get_snap t in
            let bindings = S.range ~snapshot:snap t in
            let ts = S.snapshot_ts snap in
            S.release_snapshot t snap;
            (Some ts, bindings));
      compact = Some (fun () -> S.compact_now t);
    }
end

let of_memtable () =
  let open Clsm_lsm in
  let m = Clsm_core.Memtable.create () in
  let clock = Monotonic_counter.create 0 in
  (* The Active/fence pair replays the store's getTS handshake: without
     it, a put that drew a timestamp but has not yet inserted is
     invisible to a concurrent RMW, which then installs a newer version
     on top — the put lands beneath it and is lost unobserved. Only
     blind writers register (cf. [put_active] in the store): an older
     RMW detects our newer version through its own conflict check. *)
  let active = Active_set.create ~capacity:64 () in
  let fence = Monotonic_counter.create 0 in
  let get_ts () =
    let rec loop () =
      let ts = Monotonic_counter.inc_and_get clock in
      let h = Active_set.add active ts in
      if ts <= Monotonic_counter.get fence then begin
        Active_set.remove active h;
        loop ()
      end
      else (ts, h)
    in
    loop ()
  in
  let value_of = function
    | Some (_, Entry.Value v) -> Some v
    | Some (_, Entry.Tombstone) | None -> None
  in
  let write key entry =
    let ts, h = get_ts () in
    Clsm_core.Memtable.add m ~user_key:key ~ts entry;
    Active_set.remove active h
  in
  let rmw ~key f =
    (* Algorithm 3 against the bare memtable: read newest, decide, draw a
       timestamp, fence out and drain older in-flight writers, locate the
       insertion point, conflict-check the predecessor timestamp,
       CAS-install; retry on either conflict. *)
    let rec attempt () =
      let latest =
        Clsm_core.Memtable.get m ~user_key:key ~snap_ts:Internal_key.max_ts
      in
      let seen_ts = match latest with Some (ts, _) -> ts | None -> 0 in
      let pre = value_of latest in
      match f pre with
      | History.Abort -> pre
      | decision -> (
          let entry =
            match decision with
            | History.Set v -> Entry.Value v
            | History.Remove -> Entry.Tombstone
            | History.Abort -> assert false
          in
          let ts = Monotonic_counter.inc_and_get clock in
          ignore (Monotonic_counter.advance_to fence (ts - 1));
          let b = Backoff.create () in
          let rec wait () =
            match Active_set.find_min active with
            | Some mn when mn < ts ->
                Backoff.once b;
                wait ()
            | Some _ | None -> ()
          in
          wait ();
          let prev_ts, loc =
            Clsm_core.Memtable.locate_rmw m ~user_key:key
          in
          match prev_ts with
          | Some p when p > seen_ts -> attempt ()
          | _ ->
              if Clsm_core.Memtable.try_install m loc ~user_key:key ~ts entry
              then pre
              else attempt ())
    in
    attempt ()
  in
  {
    name = "memtable";
    get =
      (fun key ->
        value_of
          (Clsm_core.Memtable.get m ~user_key:key
             ~snap_ts:Internal_key.max_ts));
    put = (fun ~key ~value -> write key (Entry.Value value));
    delete = (fun ~key -> write key Entry.Tombstone);
    rmw = Some rmw;
    put_if_absent =
      Some
        (fun ~key ~value ->
          let installed = ref false in
          ignore
            (rmw ~key (function
              | Some _ ->
                  installed := false;
                  History.Abort
              | None ->
                  installed := true;
                  History.Set value));
          !installed);
    scan = None;
    compact = None;
  }

let of_striped st =
  let module R = Clsm_baselines.Striped_rmw in
  let module S = Clsm_baselines.Single_writer_store in
  let base = R.store st in
  {
    name = "striped-rmw";
    get = (fun key -> R.get st key);
    put = (fun ~key ~value -> R.put st ~key ~value);
    delete = (fun ~key -> R.delete st ~key);
    rmw =
      Some
        (fun ~key f ->
          R.rmw st ~key (fun pre ->
              match f pre with
              | History.Set v -> R.Set v
              | History.Remove -> R.Remove
              | History.Abort -> R.Abort));
    put_if_absent = Some (fun ~key ~value -> R.put_if_absent st ~key ~value);
    scan =
      Some
        (fun () ->
          let snap = S.get_snap base in
          let bindings = S.range ~snapshot:snap base in
          let ts = S.snapshot_ts snap in
          S.release_snapshot base snap;
          (Some ts, bindings));
    compact = Some (fun () -> S.compact_now base);
  }

let of_broken bs =
  let module B = Clsm_baselines.Broken_store in
  {
    name = "broken";
    get = (fun key -> B.get bs key);
    put = (fun ~key ~value -> B.put bs ~key ~value);
    delete = (fun ~key -> B.delete bs ~key);
    rmw =
      Some
        (fun ~key f ->
          B.rmw bs ~key (fun pre ->
              match f pre with
              | History.Set v -> B.Set v
              | History.Remove -> B.Remove
              | History.Abort -> B.Abort));
    put_if_absent = Some (fun ~key ~value -> B.put_if_absent bs ~key ~value);
    scan = Some (fun () -> (None, B.scan bs));
    compact = None;
  }

let instrument dom ops =
  let timed key mk_op run =
    let inv = History.dom_seq dom in
    let result = run () in
    let res = History.dom_seq dom in
    History.record dom ~key ~inv ~res (mk_op result);
    result
  in
  {
    ops with
    get = (fun key -> timed key (fun r -> History.Get r) (fun () -> ops.get key));
    put =
      (fun ~key ~value ->
        timed key (fun () -> History.Put value) (fun () -> ops.put ~key ~value));
    delete =
      (fun ~key ->
        timed key (fun () -> History.Delete) (fun () -> ops.delete ~key));
    rmw =
      Option.map
        (fun rmw ~key f ->
          let last = ref History.Abort in
          timed key
            (fun pre -> History.Rmw { pre; decision = !last })
            (fun () ->
              rmw ~key (fun pre ->
                  let d = f pre in
                  last := d;
                  d)))
        ops.rmw;
    put_if_absent =
      Option.map
        (fun pia ~key ~value ->
          timed key
            (fun won -> History.Put_if_absent { value; won })
            (fun () -> pia ~key ~value))
        ops.put_if_absent;
    scan =
      Option.map
        (fun scan () ->
          let inv = History.dom_seq dom in
          let ((snap_ts, bindings) as r) = scan () in
          let res = History.dom_seq dom in
          History.record_scan dom ~inv ~res ~snap_ts bindings;
          r)
        ops.scan;
  }
