(** Seeded multi-domain stress driver: generates adversarial concurrent
    histories for the checker.

    Each worker domain draws its operation stream from an RNG seeded by
    [(seed, domain index)], so a schedule is reproducible up to OS
    interleaving: re-running a seed replays the same operation mix onto
    the same small, contended key space. Workers start together behind a
    gate; domain 0 additionally injects scans and synchronous
    flush+compaction at fixed strides so memtable rotations and level
    merges run concurrently with the recorded operations. *)

type config = {
  seed : int;
  domains : int;
  ops_per_domain : int;
  key_space : int;  (** small on purpose: contention finds races *)
  dist : [ `Uniform | `Zipf | `Skewed_blocks | `Heavy_tail ];
      (** key popularity shape, reusing the benchmark harness's
          {!Clsm_workload.Key_dist} generators; non-uniform shapes
          concentrate even a small key space further *)
  read_pct : int;
  put_pct : int;
  delete_pct : int;
  rmw_pct : int;  (** remainder of 100 goes to [put_if_absent] *)
  scan_every : int;  (** ops between scans per domain; 0 = never *)
  compact_every : int;  (** domain-0 ops between compactions; 0 = never *)
}

val default : config
(** 4 domains × 300 ops over 8 keys, 30/25/10/20 mix, scans every 40 ops,
    compaction every 150. *)

val run : config -> Target.ops -> History.t
(** Spawn the workers, drive the instrumented target, join, and collect
    the history. Raises whatever the target raises. *)
