type t = {
  num_levels : int;
  l0_compaction_trigger : int;
  l0_slowdown_trigger : int;
  l0_stall_limit : int;
  level1_max_bytes : int;
  level_size_multiplier : int;
  target_file_size : int;
  block_size : int;
  bits_per_key : int;
  compress : bool;
}

let default =
  {
    num_levels = 7;
    l0_compaction_trigger = 4;
    l0_slowdown_trigger = 8;
    l0_stall_limit = 12;
    level1_max_bytes = 10 * 1024 * 1024;
    level_size_multiplier = 10;
    target_file_size = 2 * 1024 * 1024;
    block_size = 4096;
    bits_per_key = 10;
    compress = false;
  }

let max_bytes_for_level cfg level =
  if level < 1 then invalid_arg "max_bytes_for_level";
  let rec go l acc =
    if l = level then acc else go (l + 1) (acc * cfg.level_size_multiplier)
  in
  go 1 cfg.level1_max_bytes
