lib/core/store_sig.ml: Clsm_sstable Options Stats
