open Clsm_wal

let tmp_dir =
  let d = Filename.concat (Filename.get_temp_dir_name ()) "clsm_test_wal" in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let tmp_path name = Filename.concat tmp_dir name

let record_roundtrip () =
  let buf = Buffer.create 64 in
  let payloads = [ "first"; ""; "third record with some length" ] in
  List.iter (Wal_record.encode buf) payloads;
  let s = Buffer.contents buf in
  let rec collect pos acc =
    match Wal_record.decode s ~pos with
    | `Record (p, next) -> collect next (p :: acc)
    | `End -> List.rev acc
    | `Torn -> Alcotest.fail "unexpected torn record"
    | `Corrupt -> Alcotest.fail "unexpected corrupt record"
  in
  Alcotest.(check (list string)) "roundtrip" payloads (collect 0 [])

let record_detects_corruption () =
  let buf = Buffer.create 64 in
  Wal_record.encode buf "payload";
  let s = Bytes.of_string (Buffer.contents buf) in
  Bytes.set s (Wal_record.header_length + 2) 'X';
  match Wal_record.decode (Bytes.to_string s) ~pos:0 with
  | `Corrupt -> ()
  | `Torn -> Alcotest.fail "expected Corrupt, got Torn"
  | `Record _ | `End -> Alcotest.fail "expected Corrupt"

let writer_sync_roundtrip () =
  let path = tmp_path "sync.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "one";
  Wal_writer.append w "two";
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "records" [ "one"; "two" ] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

let writer_async_flush () =
  let path = tmp_path "async.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Async path in
  for i = 1 to 100 do
    Wal_writer.append w (Printf.sprintf "record-%03d" i)
  done;
  Wal_writer.flush w;
  Alcotest.(check int) "queue drained" 0 (Wal_writer.queued w);
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check int) "all records" 100 (List.length records);
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  (* Single appender: order is preserved. *)
  Alcotest.(check (list string)) "order"
    (List.init 100 (fun i -> Printf.sprintf "record-%03d" (i + 1)))
    records

let writer_concurrent_appends () =
  let path = tmp_path "concurrent.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Async path in
  let n = 2_000 in
  let producer tag () =
    for i = 0 to n - 1 do
      Wal_writer.append w (Printf.sprintf "%c%06d" tag i)
    done
  in
  List.map Domain.spawn [ producer 'a'; producer 'b'; producer 'c' ]
  |> List.iter Domain.join;
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  Alcotest.(check int) "none lost" (3 * n) (List.length records);
  Alcotest.(check int) "all distinct" (3 * n)
    (List.length (List.sort_uniq String.compare records))

let torn_tail_recovery () =
  let path = tmp_path "torn.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.append w "will-be-torn";
  Wal_writer.close w;
  (* Simulate a crash mid-write by truncating into the last record. *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 4);
  Unix.close fd;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "intact prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "torn" true (outcome = Wal_reader.Torn_tail)

let read_whole path = In_channel.with_open_bin path In_channel.input_all

let write_whole path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* Strict mode turns the salvage of a truncated final record into a hard
   failure. *)
let torn_tail_strict_raises () =
  let path = tmp_path "torn_strict.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "will-be-torn";
  Wal_writer.close w;
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 4);
  Unix.close fd;
  match Wal_reader.read_records ~strict:true path with
  | _ -> Alcotest.fail "expected Wal_reader.Corrupt"
  | exception Wal_reader.Corrupt _ -> ()

(* A bit flip inside a complete record fails its CRC: the valid prefix is
   salvaged and the outcome distinguishes corruption from tearing. *)
let bit_flip_corrupt_tail () =
  let path = tmp_path "bitflip.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.append w "victim-payload";
  Wal_writer.close w;
  let contents = read_whole path in
  let idx =
    (* locate the last record's payload and flip one of its bytes *)
    let needle = "victim-payload" in
    let rec find i =
      if String.sub contents i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let b = Bytes.of_string contents in
  Bytes.set b idx (Char.chr (Char.code (Bytes.get b idx) lxor 0x40));
  write_whole path (Bytes.to_string b);
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "corrupt tail" true (outcome = Wal_reader.Corrupt_tail);
  (match Wal_reader.read_records ~strict:true path with
  | _ -> Alcotest.fail "strict must raise on corrupt tail"
  | exception Wal_reader.Corrupt _ -> ())

(* A zero-length file is what a crash right after WAL creation leaves:
   legal, clean, no records. *)
let zero_length_file () =
  let path = tmp_path "zero.log" in
  write_whole path "";
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "no records" [] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

(* Garbage shorter than a record header after valid records reads as a
   torn (incomplete) trailer. *)
let garbage_trailer () =
  let path = tmp_path "garbage.log" in
  let w = Wal_writer.create ~mode:Wal_writer.Sync path in
  Wal_writer.append w "keep-1";
  Wal_writer.append w "keep-2";
  Wal_writer.close w;
  write_whole path (read_whole path ^ "\xde\xad\xbe");
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "prefix" [ "keep-1"; "keep-2" ] records;
  Alcotest.(check bool) "torn" true (outcome = Wal_reader.Torn_tail)

let empty_log () =
  let path = tmp_path "empty.log" in
  let w = Wal_writer.create path in
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records path in
  Alcotest.(check (list string)) "no records" [] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

(* ---------- group commit ---------- *)

module Faulty_env = Clsm_env.Faulty_env
module Env = Clsm_env.Env

let group ?(max_batch = 8) ?(max_delay_us = 0) () =
  Wal_writer.Group { Wal_writer.max_batch; max_delay_us }

(* Durability is immediate in group mode: no flush/close, the record must
   already be on disk when append returns — and [written_bytes] must
   bound a cleanly readable prefix, exactly like Sync mode (scrub's
   contract). *)
let group_append_is_durable () =
  let path = tmp_path "group_durable.log" in
  let w = Wal_writer.create ~mode:(group ()) path in
  Wal_writer.append w "one";
  Wal_writer.append w "two";
  let records, outcome =
    Wal_reader.read_records ~strict:true ~max_bytes:(Wal_writer.written_bytes w)
      path
  in
  Alcotest.(check (list string)) "durable before close" [ "one"; "two" ] records;
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  Alcotest.(check int) "nothing pending" 0 (Wal_writer.queued w);
  Wal_writer.close w

let group_concurrent_appends () =
  let path = tmp_path "group_concurrent.log" in
  let w =
    Wal_writer.create ~mode:(group ~max_batch:4 ~max_delay_us:200 ()) path
  in
  let n = 500 in
  let producer tag () =
    for i = 0 to n - 1 do
      Wal_writer.append w (Printf.sprintf "%c%06d" tag i)
    done
  in
  List.map Domain.spawn [ producer 'a'; producer 'b'; producer 'c' ]
  |> List.iter Domain.join;
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records ~strict:true path in
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean);
  Alcotest.(check int) "none lost" (3 * n) (List.length records);
  Alcotest.(check int) "all distinct" (3 * n)
    (List.length (List.sort_uniq String.compare records));
  (* Per-producer order survives batching: a producer's records are its
     own commit order, whatever they were grouped with. *)
  List.iter
    (fun tag ->
      let mine = List.filter (fun r -> r.[0] = tag) records in
      Alcotest.(check (list string))
        (Printf.sprintf "order of %c" tag)
        (List.init n (fun i -> Printf.sprintf "%c%06d" tag i))
        mine)
    [ 'a'; 'b'; 'c' ]

(* The leader's accumulation window actually batches concurrent
   committers: with 4 writers parked behind a 100 ms window, the run must
   need fewer fsync rounds than records. The observer is the witness. *)
let group_batches_riders () =
  let path = tmp_path "group_batches.log" in
  let commits = Atomic.make 0 and committed = Atomic.make 0 in
  let observer =
    {
      Wal_writer.on_group_commit =
        (fun ~records ->
          Atomic.incr commits;
          ignore (Atomic.fetch_and_add committed records));
      on_commit_wait = (fun ~ns:_ -> ());
    }
  in
  let w =
    Wal_writer.create
      ~mode:(group ~max_batch:8 ~max_delay_us:100_000 ())
      ~observer path
  in
  let writers = 4 in
  let producer i () = Wal_writer.append w (Printf.sprintf "w%d" i) in
  List.init writers (fun i -> Domain.spawn (producer i))
  |> List.iter Domain.join;
  Wal_writer.close w;
  Alcotest.(check int) "all committed" writers (Atomic.get committed);
  Alcotest.(check bool)
    (Printf.sprintf "batched (%d commits for %d records)" (Atomic.get commits)
       writers)
    true
    (Atomic.get commits < writers);
  let records, _ = Wal_reader.read_records ~strict:true path in
  Alcotest.(check int) "on disk" writers (List.length records)

(* [max_batch] bounds every single commit round. *)
let group_respects_max_batch () =
  let path = tmp_path "group_maxbatch.log" in
  let oversize = Atomic.make 0 in
  let observer =
    {
      Wal_writer.on_group_commit =
        (fun ~records -> if records > 2 then Atomic.incr oversize);
      on_commit_wait = (fun ~ns:_ -> ());
    }
  in
  let w =
    Wal_writer.create
      ~mode:(group ~max_batch:2 ~max_delay_us:20_000 ())
      ~observer path
  in
  let producer tag () =
    for i = 0 to 19 do
      Wal_writer.append w (Printf.sprintf "%c%03d" tag i)
    done
  in
  List.map Domain.spawn [ producer 'a'; producer 'b'; producer 'c'; producer 'd' ]
  |> List.iter Domain.join;
  Wal_writer.close w;
  Alcotest.(check int) "no batch above max_batch" 0 (Atomic.get oversize);
  let records, _ = Wal_reader.read_records ~strict:true path in
  Alcotest.(check int) "none lost" 80 (List.length records)

(* Recovery's re-log path: [enqueue] acknowledges nothing and writes
   nothing until one [flush] makes the whole batch durable. *)
let group_enqueue_then_flush () =
  let path = tmp_path "group_enqueue.log" in
  let w = Wal_writer.create ~mode:(group ()) path in
  for i = 1 to 10 do
    Wal_writer.enqueue w (Printf.sprintf "re-log-%02d" i)
  done;
  Alcotest.(check int) "queued, not written" 10 (Wal_writer.queued w);
  Alcotest.(check int) "no bytes yet" 0 (Wal_writer.written_bytes w);
  Wal_writer.flush w;
  Alcotest.(check int) "drained" 0 (Wal_writer.queued w);
  Wal_writer.close w;
  let records, outcome = Wal_reader.read_records ~strict:true path in
  Alcotest.(check int) "all durable" 10 (List.length records);
  Alcotest.(check bool) "clean" true (outcome = Wal_reader.Clean)

(* A failed batch acknowledges nothing: every rider parked on the commit
   (not just the leader that hit the fault) must raise, the writer stays
   poisoned, and nothing hangs. *)
let group_poison_wakes_all_riders () =
  let path = tmp_path "group_poison.log" in
  let f = Faulty_env.create ~seed:11 ~fsync_fail_1_in:1 () in
  let w =
    Wal_writer.create
      ~mode:(group ~max_batch:8 ~max_delay_us:50_000 ())
      ~env:(Faulty_env.env f) path
  in
  let raised = Atomic.make 0 in
  let producer i () =
    match Wal_writer.append w (Printf.sprintf "r%d" i) with
    | () -> ()
    | exception Env.Error _ -> Atomic.incr raised
  in
  List.init 3 (fun i -> Domain.spawn (producer i)) |> List.iter Domain.join;
  Alcotest.(check int) "every rider raised" 3 (Atomic.get raised);
  Alcotest.(check bool) "poisoned" true (Wal_writer.poisoned w);
  (match Wal_writer.append w "after" with
  | () -> Alcotest.fail "poisoned writer must not acknowledge"
  | exception Env.Error _ -> ());
  Wal_writer.abandon w

(* Satellite regression: [flush] after fsync-gate poisoning is idempotent
   for concurrent flushers. The second flusher must re-raise the original
   poisoning exception without touching the queue or issuing any further
   IO — not observe a half-drained queue or retry over the gap. *)
let flush_idempotent_after_poison () =
  let path = tmp_path "flush_idempotent.log" in
  let f = Faulty_env.create ~seed:5 ~fsync_fail_1_in:1 () in
  let w = Wal_writer.create ~mode:Wal_writer.Async ~env:(Faulty_env.env f) path in
  (* Async appends opportunistically write (no fsync), so the records are
     in the file and the queue is empty when the first flush's fsync
     fails. *)
  for i = 1 to 5 do
    Wal_writer.append w (Printf.sprintf "a%d" i)
  done;
  let original =
    match Wal_writer.flush w with
    | () -> Alcotest.fail "expected fsync failure"
    | exception (Env.Error _ as e) -> Printexc.to_string e
  in
  Alcotest.(check bool) "poisoned" true (Wal_writer.poisoned w);
  let ops_after_poison = Faulty_env.mutating_ops f in
  let queued_after_poison = Wal_writer.queued w in
  (* The poison gate closes the queue too: nothing can be queued behind a
     failed fsync, so no later flusher can ever find half-drained work. *)
  (match Wal_writer.enqueue w "never-queued" with
  | () -> Alcotest.fail "poisoned writer must refuse enqueue"
  | exception Env.Error _ -> ());
  (* Concurrent second and third flushers: both must deterministically
     re-raise the original exception. *)
  let reraised = Atomic.make 0 in
  let flusher () =
    match Wal_writer.flush w with
    | () -> ()
    | exception (Env.Error _ as e) ->
        if Printexc.to_string e = original then Atomic.incr reraised
  in
  List.init 2 (fun _ -> Domain.spawn flusher) |> List.iter Domain.join;
  Alcotest.(check int) "both re-raise the original exception" 2
    (Atomic.get reraised);
  Alcotest.(check int) "no further IO attempted" ops_after_poison
    (Faulty_env.mutating_ops f);
  Alcotest.(check int) "queue untouched by poisoned flushes"
    queued_after_poison (Wal_writer.queued w);
  Wal_writer.abandon w

let prop_wal_roundtrip =
  QCheck.Test.make ~name:"wal roundtrip (random payloads)" ~count:50
    QCheck.(list (string_of_size Gen.(0 -- 100)))
    (fun payloads ->
      let path = tmp_path "prop.log" in
      let w = Wal_writer.create ~mode:Wal_writer.Sync path in
      List.iter (Wal_writer.append w) payloads;
      Wal_writer.close w;
      let records, outcome = Wal_reader.read_records path in
      records = payloads && outcome = Wal_reader.Clean)

(* Satellite property: Group mode is crash-equivalent to Per_write mode.
   For any interleaving of appends and flushes and any crash point, the
   salvaged record sequence of each mode is a prefix of the issued
   sequence containing every acknowledged append (prefix-closed
   equivalence: each salvage is a prefix of the other's extension to the
   full issued list). Without a crash, both modes must produce strictly
   readable logs with identical contents. Wal_reader is used both ways:
   salvage (strict:false) on crash images, strict:true on clean logs and
   on the [written_bytes]-bounded durable prefix. *)
let prop_group_prefix_equivalent =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (1 -- 25) (string_size ~gen:printable (1 -- 12)))
        (list_size (0 -- 4) (0 -- 25))
        (0 -- 34))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"group salvage ≡ per-write salvage (prefix-closed)"
    ~count:40 arb (fun (payloads, flush_at, crash_budget) ->
      let is_prefix shorter longer =
        let rec go = function
          | [], _ -> true
          | x :: xs, y :: ys -> x = y && go (xs, ys)
          | _ :: _, [] -> false
        in
        go (shorter, longer)
      in
      (* Run the identical op sequence against one writer; returns
         (acked appends, file path, faulty handle, crashed). The crash
         budget counts the env's mutating ops, so the two modes crash at
         their own (different) protocol points — the property must hold
         at every one. [crash_budget] past the op count means no crash. *)
      let run_mode name mode =
        let path = tmp_path (Printf.sprintf "prop_group_%s.log" name) in
        (try Sys.remove path with Sys_error _ -> ());
        let f = Faulty_env.create ~seed:(Hashtbl.hash (payloads, name)) () in
        Faulty_env.arm f ~crash_after:(1 + crash_budget);
        let acked = ref [] and crashed = ref false in
        (match Wal_writer.create ~mode ~env:(Faulty_env.env f) path with
        | exception Env.Crashed -> crashed := true
        | w -> (
            try
              List.iteri
                (fun i payload ->
                  if List.mem i flush_at then Wal_writer.flush w;
                  Wal_writer.append w payload;
                  acked := payload :: !acked)
                payloads;
              Wal_writer.close w
            with Env.Crashed | Env.Error _ -> crashed := true));
        (List.rev !acked, path, f, !crashed)
      in
      let group_mode = group ~max_batch:3 ~max_delay_us:0 () in
      let acked_g, path_g, f_g, crashed_g = run_mode "g" group_mode in
      let acked_p, path_p, f_p, crashed_p = run_mode "p" Wal_writer.Sync in
      let salvage ~crashed path f =
        if crashed then Faulty_env.install_crash_image f;
        if Sys.file_exists path then fst (Wal_reader.read_records path) else []
      in
      let salvaged_g = salvage ~crashed:crashed_g path_g f_g in
      let salvaged_p = salvage ~crashed:crashed_p path_p f_p in
      (* Both salvages are prefixes of the issued sequence... *)
      is_prefix salvaged_g payloads
      && is_prefix salvaged_p payloads
      (* ...so the shorter is a prefix of the longer (prefix-closed
         equivalence of the two modes)... *)
      && (is_prefix salvaged_g salvaged_p || is_prefix salvaged_p salvaged_g)
      (* ...and every acknowledged append survived in both. *)
      && is_prefix acked_g salvaged_g
      && is_prefix acked_p salvaged_p
      (* Clean runs: both modes wrote the full sequence, strictly
         readable. *)
      &&
      if crashed_g || crashed_p then true
      else
        let strict p = fst (Wal_reader.read_records ~strict:true p) in
        strict path_g = payloads && strict path_p = payloads)

let suites =
  [
    ( "wal",
      [
        Alcotest.test_case "record roundtrip" `Quick record_roundtrip;
        Alcotest.test_case "record corruption" `Quick record_detects_corruption;
        Alcotest.test_case "sync writer" `Quick writer_sync_roundtrip;
        Alcotest.test_case "async flush" `Quick writer_async_flush;
        Alcotest.test_case "concurrent appends" `Quick writer_concurrent_appends;
        Alcotest.test_case "torn tail recovery" `Quick torn_tail_recovery;
        Alcotest.test_case "torn tail strict" `Quick torn_tail_strict_raises;
        Alcotest.test_case "bit-flipped tail" `Quick bit_flip_corrupt_tail;
        Alcotest.test_case "zero-length file" `Quick zero_length_file;
        Alcotest.test_case "garbage trailer" `Quick garbage_trailer;
        Alcotest.test_case "empty log" `Quick empty_log;
      ] );
    ( "wal.group",
      [
        Alcotest.test_case "append is durable" `Quick group_append_is_durable;
        Alcotest.test_case "concurrent appends" `Quick group_concurrent_appends;
        Alcotest.test_case "riders batch" `Quick group_batches_riders;
        Alcotest.test_case "max_batch bound" `Quick group_respects_max_batch;
        Alcotest.test_case "enqueue then flush" `Quick group_enqueue_then_flush;
        Alcotest.test_case "poison wakes riders" `Quick
          group_poison_wakes_all_riders;
        Alcotest.test_case "flush idempotent after poison" `Quick
          flush_idempotent_after_poison;
      ] );
    ( "wal.props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_wal_roundtrip; prop_group_prefix_equivalent ] );
  ]
