(* Calling a [@@requires_lock] function without the lock: the machine
   form of every "caller must hold ..." comment. *)

type t = { cm : Mutex.t; mutable v : int }

let bump_locked t = t.v <- t.v + 1 [@@requires_lock cm]

let ok t = Mutex.protect t.cm (fun () -> bump_locked t)

let bad t = bump_locked t (* BAD: LC003 *)
