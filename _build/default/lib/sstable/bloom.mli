(** Bloom filters, LevelDB-style: [k] probes derived from a single 32-bit
    hash by repeated rotation (double hashing), [bits_per_key] bits of space
    per key. Used to skip disk blocks for absent keys (paper §4 inherits
    LevelDB's Bloom filters). *)

type t

val create : ?bits_per_key:int -> string list -> t
(** Build a filter over the given keys. Default [bits_per_key] is 10
    (≈1 % false positives). *)

val mem : t -> string -> bool
(** No false negatives: [mem (create keys) k] is [true] for every
    [k ∈ keys]; for other keys it is [true] with low probability. *)

val encode : t -> string
(** Serialized form: bit array followed by a 1-byte probe count. *)

val decode : string -> t
(** Inverse of {!encode}. Raises [Invalid_argument] on empty input. *)

val size_bytes : t -> int
