(** The in-memory component interface the cLSM algorithm is generic over.

    The paper's "Generic algorithm" contribution (§1): puts, gets, snapshot
    scans and range queries only assume a thread-safe sorted multi-version
    map with weakly-consistent iteration; any such data structure can serve
    as [Cm] (§3, citing ConcurrentSkipListMap and Bronson's tree as
    examples). Atomic read-modify-write additionally needs an optimistic
    locate/install pair — Algorithm 3 obtains it from the skip-list's
    bottom-level CAS; other structures may provide it differently (see
    {!Cow_memtable}, which serializes installs instead).

    {!Store.Make} builds the full store (Algorithms 1 and 2, WAL, merge
    hooks, recovery) over any implementation of this signature. *)

module type S = sig
  type t

  val create : unit -> t

  val add : t -> user_key:string -> ts:int -> Clsm_lsm.Entry.t -> unit
  (** Insert one version. (user_key, ts) pairs are unique under normal
      operation; a duplicate insert (WAL replay) must be ignored. *)

  val get : t -> user_key:string -> snap_ts:int -> (int * Clsm_lsm.Entry.t) option
  (** Newest version of [user_key] with timestamp [<= snap_ts]. *)

  val latest_ts : t -> user_key:string -> int option

  (** One optimistic attempt of Algorithm 3's install step. *)
  type rmw_location

  val locate_rmw : t -> user_key:string -> int option * rmw_location
  (** Locate the insertion point for [(user_key, ∞)]; the first component
      is the predecessor's timestamp when it is a version of [user_key]
      (conflict detection), [None] otherwise. *)

  val try_install :
    t -> rmw_location -> user_key:string -> ts:int -> Clsm_lsm.Entry.t -> bool
  (** Publish a new version iff no conflicting insertion happened since
      {!locate_rmw}; [false] means retry the whole attempt. *)

  val approximate_bytes : t -> int
  val entry_count : t -> int
  val is_empty : t -> bool

  val iter : t -> Clsm_lsm.Iter.t
  (** Weakly-consistent iterator over (encoded internal key, encoded
      entry): every binding present for the whole traversal is visited. *)

  val fold_entries :
    (string -> int -> Clsm_lsm.Entry.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
end
