examples/backup_restore.ml: Atomic Clsm_core Db Domain Filename List Options Printf String
