(** Writer-preference shared-exclusive lock (paper §3.1).

    Put operations hold the lock in shared mode; [beforeMerge] and
    [afterMerge] hold it in exclusive mode. Shared acquisition never blocks
    unless an exclusive locker is active or waiting; exclusive acquisition is
    preferred over new shared lockers so the merge process cannot starve.

    The implementation is a single atomic word ([1] = exclusive held,
    [2k] = k shared holders) plus an atomic count of waiting exclusive
    lockers; all paths are lock-free spins with bounded backoff. *)

type t

val create : unit -> t

val lock_shared : t -> unit
val unlock_shared : t -> unit

val lock_exclusive : t -> unit
val unlock_exclusive : t -> unit

val with_shared : t -> (unit -> 'a) -> 'a
(** [with_shared t f] runs [f ()] holding the lock in shared mode,
    releasing it even if [f] raises. *)

val with_exclusive : t -> (unit -> 'a) -> 'a

val holders : t -> [ `Free | `Shared of int | `Exclusive ]
(** Instantaneous state, for tests and stats. *)
