(* Port of LevelDB's Hash(): a Murmur-style mix over 4-byte words. *)

let hash ?(seed = 0xbc9f1d34) s =
  let m = 0xc6a4a793 in
  let r = 24 in
  let n = String.length s in
  let mask32 v = v land 0xffffffff in
  let h = ref (mask32 (seed lxor mask32 (n * m))) in
  let pos = ref 0 in
  while n - !pos >= 4 do
    let w = Binary.get_fixed32 s ~pos:!pos in
    h := mask32 (!h + w);
    h := mask32 (!h * m);
    h := !h lxor (!h lsr 16);
    pos := !pos + 4
  done;
  let rest = n - !pos in
  if rest >= 3 then h := mask32 (!h + (Char.code s.[!pos + 2] lsl 16));
  if rest >= 2 then h := mask32 (!h + (Char.code s.[!pos + 1] lsl 8));
  if rest >= 1 then begin
    h := mask32 (!h + Char.code s.[!pos]);
    h := mask32 (!h * m);
    h := !h lxor (!h lsr r)
  end;
  !h

let hash64 ?(seed = 0) s =
  let h1 = hash ~seed:(seed lxor 0xbc9f1d34) s in
  let h2 = hash ~seed:(seed lxor 0x34f1d3bc) s in
  (h1 lor (h2 lsl 31)) land max_int

let mix64 v =
  let mask = (1 lsl 62) - 1 in
  (* splitmix64 constants truncated to the OCaml int domain *)
  let v = v land mask in
  let v = (v lxor (v lsr 30)) * 0x1b87c4e3d9b2ca5 land mask in
  let v = (v lxor (v lsr 27)) * 0x19d49cb5618be91 land mask in
  v lxor (v lsr 31)
