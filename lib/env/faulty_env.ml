(* Fault-injecting wrapper around a base environment (LevelDB's
   FaultInjectionTestEnv in spirit). Three mechanisms, all driven by one
   seeded PRNG so a failing run is reproducible from its seed:

   - probabilistic faults: fsync raises EIO (without syncing), append
     writes a torn prefix of the payload and raises ENOSPC;
   - silent corruption: random-access reads return the true bytes with a
     single bit flipped (bit-rot), exercising every checksum path;
   - a hard crash point: after a configured number of mutating
     operations, the environment "crashes" — every subsequent operation
     raises {!Env.Crashed};
   - crash-image reconstruction: the wrapper tracks, per written file,
     how many bytes were covered by the last fsync. After a crash,
     [install_crash_image] truncates each file to its synced prefix plus
     a random (possibly empty, possibly torn) slice of the unsynced
     tail — exactly the set of images a real crash could leave.

   Durability model: metadata operations (create, rename, remove, mkdir)
   are treated as immediately durable; only appended-but-unsynced bytes
   are at risk. That matches the store's write protocols, which fsync
   before every rename that publishes a file. *)

type file_state = {
  mutable synced : int;  (* bytes guaranteed durable *)
  mutable written : int; (* bytes handed to the OS *)
}

type t = {
  base : Env.t;
  rng : Random.State.t;
  m : Mutex.t;
  files : (string, file_state) Hashtbl.t;
  mutable remaining : int; (* mutating ops until crash; -1 = disarmed *)
  mutable crashed : bool;
  mutable fsync_fail_1_in : int; (* 0 = never *)
  mutable append_fail_1_in : int;
  mutable corrupt_read_1_in : int; (* bit-rot on random-access reads *)
  mutable mutating_ops : int;
  mutable injected_faults : int;
  mutable injected_corruptions : int;
}

let create ?(seed = 0) ?(fsync_fail_1_in = 0) ?(append_fail_1_in = 0)
    ?(corrupt_read_1_in = 0) ?(base = Env.unix) () =
  {
    base;
    rng = Random.State.make [| seed; 0x5eed |];
    m = Mutex.create ();
    files = Hashtbl.create 16;
    remaining = -1;
    crashed = false;
    fsync_fail_1_in;
    append_fail_1_in;
    corrupt_read_1_in;
    mutating_ops = 0;
    injected_faults = 0;
    injected_corruptions = 0;
  }

let arm t ~crash_after =
  if crash_after < 0 then invalid_arg "Faulty_env.arm: crash_after < 0";
  Mutex.protect t.m (fun () -> t.remaining <- crash_after)

let disarm t = Mutex.protect t.m (fun () -> t.remaining <- -1)

let set_fault_rates t ?fsync_fail_1_in ?append_fail_1_in ?corrupt_read_1_in ()
    =
  Mutex.protect t.m (fun () ->
      Option.iter (fun r -> t.fsync_fail_1_in <- r) fsync_fail_1_in;
      Option.iter (fun r -> t.append_fail_1_in <- r) append_fail_1_in;
      Option.iter (fun r -> t.corrupt_read_1_in <- r) corrupt_read_1_in)

let crashed t = Mutex.protect t.m (fun () -> t.crashed)
let mutating_ops t = Mutex.protect t.m (fun () -> t.mutating_ops)
let injected_faults t = Mutex.protect t.m (fun () -> t.injected_faults)
let injected_corruptions t = Mutex.protect t.m (fun () -> t.injected_corruptions)

(* All helpers below run with [t.m] held. *)

let check_locked t = if t.crashed then raise Env.Crashed

(* Count one mutating operation against the crash budget. The crash fires
   *before* the operation takes effect: the op raises and nothing moves. *)
let tick_locked t =
  check_locked t;
  t.mutating_ops <- t.mutating_ops + 1;
  if t.remaining = 0 then begin
    t.crashed <- true;
    raise Env.Crashed
  end
  else if t.remaining > 0 then t.remaining <- t.remaining - 1

let chance_locked t n = n > 0 && Random.State.int t.rng n = 0

let state_for_locked t path =
  match Hashtbl.find_opt t.files path with
  | Some st -> st
  | None ->
      let st = { synced = 0; written = 0 } in
      Hashtbl.replace t.files path st;
      st

let env t : Env.t =
  let base = t.base in
  let create_writer path =
    Mutex.protect t.m (fun () ->
        tick_locked t;
        let w = base.Env.create_writer path in
        (* O_TRUNC: a fresh incarnation of the file. *)
        Hashtbl.replace t.files path { synced = 0; written = 0 };
        let st = state_for_locked t path in
        {
          Env.w_append =
            (fun s ->
              Mutex.protect t.m (fun () ->
                  tick_locked t;
                  if chance_locked t t.append_fail_1_in then begin
                    t.injected_faults <- t.injected_faults + 1;
                    (* Torn write: a prefix reaches the OS, then ENOSPC. *)
                    let keep = Random.State.int t.rng (String.length s + 1) in
                    (try w.Env.w_append (String.sub s 0 keep)
                     with Env.Error _ -> ());
                    st.written <- st.written + keep;
                    raise
                      (Env.Error
                         {
                           op = "append";
                           path;
                           message = "injected fault: No space left on device";
                         })
                  end
                  else begin
                    w.Env.w_append s;
                    st.written <- st.written + String.length s
                  end));
          w_fsync =
            (fun () ->
              Mutex.protect t.m (fun () ->
                  tick_locked t;
                  if chance_locked t t.fsync_fail_1_in then begin
                    t.injected_faults <- t.injected_faults + 1;
                    (* The sync did not happen: durability unchanged. *)
                    raise
                      (Env.Error
                         {
                           op = "fsync";
                           path;
                           message = "injected fault: Input/output error";
                         })
                  end
                  else begin
                    w.Env.w_fsync ();
                    st.synced <- st.written
                  end));
          w_close = (fun () -> try w.Env.w_close () with _ -> ());
        })
  in
  let open_random path =
    Mutex.protect t.m (fun () ->
        check_locked t;
        let rf = base.Env.open_random path in
        {
          rf with
          Env.rf_read =
            (fun ~pos ~len ->
              Mutex.protect t.m (fun () ->
                  check_locked t;
                  let s = rf.Env.rf_read ~pos ~len in
                  if
                    String.length s > 0
                    && chance_locked t t.corrupt_read_1_in
                  then begin
                    (* Bit-rot: the media handed back almost the right
                       bytes. One flipped bit is the adversarial minimum —
                       anything weaker than a real checksum misses it. *)
                    t.injected_corruptions <- t.injected_corruptions + 1;
                    let b = Bytes.of_string s in
                    let i = Random.State.int t.rng (Bytes.length b) in
                    let bit = 1 lsl Random.State.int t.rng 8 in
                    Bytes.set b i
                      (Char.chr (Char.code (Bytes.get b i) lxor bit));
                    Bytes.unsafe_to_string b
                  end
                  else s));
        })
  in
  {
    Env.create_writer;
    open_random;
    read_file =
      (fun path ->
        Mutex.protect t.m (fun () ->
            check_locked t;
            base.Env.read_file path));
    rename =
      (fun ~src ~dst ->
        Mutex.protect t.m (fun () ->
            tick_locked t;
            base.Env.rename ~src ~dst;
            match Hashtbl.find_opt t.files src with
            | Some st ->
                Hashtbl.remove t.files src;
                Hashtbl.replace t.files dst st
            | None -> ()));
    remove =
      (fun path ->
        Mutex.protect t.m (fun () ->
            tick_locked t;
            base.Env.remove path;
            Hashtbl.remove t.files path));
    mkdir =
      (fun path ->
        Mutex.protect t.m (fun () ->
            tick_locked t;
            base.Env.mkdir path));
    file_exists =
      (fun path ->
        Mutex.protect t.m (fun () ->
            check_locked t;
            base.Env.file_exists path));
    list_dir =
      (fun path ->
        Mutex.protect t.m (fun () ->
            check_locked t;
            base.Env.list_dir path));
  }

(* Reconstruct the post-crash directory image: each written file keeps its
   synced prefix plus a seed-chosen slice of the unsynced tail (a torn
   final write). With [scribble] the kept torn slice is additionally
   overwritten with garbage — a disk that committed the sectors but with
   the wrong contents, which only checksums can catch. Operates on the
   real file system directly — the wrapped environment is already dead. *)
let install_crash_image ?(scribble = false) t =
  Mutex.protect t.m (fun () ->
      Hashtbl.iter
        (fun path st ->
          if Sys.file_exists path && st.written > st.synced then begin
            let torn = Random.State.int t.rng (st.written - st.synced + 1) in
            let keep = st.synced + torn in
            let actual = (Unix.stat path).Unix.st_size in
            if keep < actual then Unix.truncate path keep;
            if scribble && torn > 0 && keep <= actual then begin
              let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Fun.protect
                ~finally:(fun () -> Unix.close fd)
                (fun () ->
                  ignore (Unix.lseek fd st.synced Unix.SEEK_SET);
                  let junk =
                    Bytes.init torn (fun _ -> Char.chr (Random.State.int t.rng 256))
                  in
                  ignore (Unix.write fd junk 0 torn));
              t.injected_corruptions <- t.injected_corruptions + 1
            end
          end)
        t.files)
