lib/sstable/table.ml: Atomic Binary Block Block_handle Bloom Cache Clsm_util Comparator Crc32c List Mmap_file Printf Simple_compress String Table_format Varint
