(** Run one simulated benchmark: N worker processes driving a system model
    with a workload for a span of virtual time, reporting throughput and
    latency percentiles — one data point of a paper figure. *)

open Clsm_workload

type config = {
  system : System.t;
  threads : int;
  workload : Workload_spec.t;
  costs : Costs.t;
  memtable_bytes : int;
  duration : float;  (** virtual seconds *)
  compaction_threads : int;
  write_amplification : float option;  (** None: costs default *)
  throttle : bool;  (** RocksDB-style debt throttling (Figure 11) *)
  prefill : float;  (** initial memtable fill fraction *)
  initial_l0 : int;
  seed : int;
}

val config :
  ?costs:Costs.t ->
  ?memtable_bytes:int ->
  ?duration:float ->
  ?compaction_threads:int ->
  ?write_amplification:float ->
  ?throttle:bool ->
  ?prefill:float ->
  ?initial_l0:int ->
  ?seed:int ->
  system:System.t ->
  threads:int ->
  Workload_spec.t ->
  config
(** Defaults: 128 MB memtable (the paper's standard configuration), 2
    virtual seconds, 1 compaction thread, no throttling, seed 1. *)

type outcome = {
  system : System.t;
  threads : int;
  ops : int;
  keys : int;
  throughput : float;  (** ops per virtual second *)
  keys_per_sec : float;
  p50 : float;
  p90 : float;
  p99 : float;
  stalls : int;
  rotations : int;
}

val run : config -> outcome

val run_partitioned : partitions:int -> config -> outcome
(** Figure 1's resource-isolated setup: [partitions] independent store
    instances on the same machine, each served by [threads / partitions]
    dedicated workers; reports the aggregate. *)
