(* Online backup and restore built from the public API: a consistent
   snapshot scan (which never blocks writers — paper §3.2) streams the
   store's state into a trace file while writers keep mutating; replaying
   the trace into a fresh directory reproduces exactly the snapshot-time
   state. Demonstrates why consistent scans matter operationally, beyond
   analytics.

   Run with:  dune exec examples/backup_restore.exe *)

open Clsm_core

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ()) ("clsm_backup_" ^ name)

let backup db path =
  (* One snapshot pins the whole view; the iterator streams it. *)
  let snap = Db.get_snap db in
  let oc = open_out path in
  let it = Db.iterator ~snapshot:snap db in
  Db.iter_seek_first it;
  let count = ref 0 in
  while Db.iter_valid it do
    (* store the value inline: "B <key-len> <key><value>" would need
       framing; reuse the put trace line with an exact value payload *)
    Printf.fprintf oc "%s\t%s\n" (Db.iter_key it) (Db.iter_value it);
    incr count;
    Db.iter_next it
  done;
  Db.iter_close it;
  close_out oc;
  let ts = Db.snapshot_ts snap in
  Db.release_snapshot db snap;
  (!count, ts)

let restore path dir =
  let db = Db.open_store (Options.default ~dir) in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '\t' with
       | Some i ->
           Db.put db
             ~key:(String.sub line 0 i)
             ~value:(String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  db

let () =
  let src_dir = tmp "src" and dst_dir = tmp "dst" and file = tmp "dump.tsv" in
  let db = Db.open_store (Options.default ~dir:src_dir) in
  for i = 0 to 4_999 do
    Db.put db ~key:(Printf.sprintf "item%05d" i) ~value:(string_of_int (i * 7))
  done;

  (* writers keep going while the backup streams *)
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          Db.put db
            ~key:(Printf.sprintf "item%05d" (!i mod 5_000))
            ~value:"mutated-during-backup"
        done;
        !i)
  in
  let count, ts = backup db file in
  Atomic.set stop true;
  let writes_during_backup = Domain.join writer in
  Printf.printf "backed up %d keys at snapshot ts=%d (%d writes ran meanwhile)\n"
    count ts writes_during_backup;

  let restored = restore file dst_dir in
  (* the restored store must be internally consistent: every key present,
     and each value either the original or the mutation — exactly one
     snapshot, never a mix within one key *)
  assert (List.length (Db.range restored) = 5_000);
  let originals = ref 0 and mutated = ref 0 in
  List.iter
    (fun (k, v) ->
      let i = int_of_string (String.sub k 4 5) in
      if v = string_of_int (i * 7) then incr originals
      else if v = "mutated-during-backup" then incr mutated
      else assert false)
    (Db.range restored);
  Printf.printf "restored: %d original values, %d mutated-before-snapshot\n"
    !originals !mutated;
  Db.close restored;
  Db.close db;
  print_endline "backup_restore: OK"
