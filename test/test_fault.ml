(* Fault-injection tests: the Faulty_env wrapper itself, the WAL
   writer's fsync-gate, read-only degradation on ENOSPC, orphan cleanup
   after a mid-flush crash, and strict WAL recovery. The multi-seed
   crash-recovery torture harness lives in test_torture.ml. *)

open Clsm_core
open Clsm_lsm
open Clsm_env

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clsm_test_fault_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm d;
    d

let small_opts ?(env = Env.unix) ?(wal_enabled = true) ?(wal_sync = `Async)
    ?(strict_wal = false) ?(memtable_bytes = 16 * 1024) dir =
  let base = Options.default ~dir in
  {
    base with
    Options.memtable_bytes;
    wal_enabled;
    wal_sync;
    strict_wal;
    env;
    cache_bytes = 1 lsl 20;
    maintenance_workers = 1;
    maintenance_tick = 0.01;
    lsm =
      {
        base.Options.lsm with
        Lsm_config.level1_max_bytes = 64 * 1024;
        target_file_size = 8 * 1024;
        l0_compaction_trigger = 3;
        block_size = 1024;
      };
  }

(* ---------- Faulty_env mechanics ---------- *)

let crash_countdown () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let f = Faulty_env.create ~seed:42 () in
  let env = Faulty_env.env f in
  Faulty_env.arm f ~crash_after:2;
  let w = Env.(env.create_writer) (Filename.concat dir "a") in
  Env.(w.w_append) "survives";
  (match Env.(w.w_append) "boom" with
  | () -> Alcotest.fail "expected crash on the third mutating op"
  | exception Env.Crashed -> ());
  Alcotest.(check bool) "crashed flag" true (Faulty_env.crashed f);
  (* Every operation after the crash point raises, reads included. *)
  (match Env.(env.file_exists) dir with
  | _ -> Alcotest.fail "post-crash op must raise"
  | exception Env.Crashed -> ());
  Env.(w.w_close) ()

let crash_image_keeps_synced_prefix () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "img" in
  let f = Faulty_env.create ~seed:9 () in
  let env = Faulty_env.env f in
  let w = Env.(env.create_writer) path in
  Env.(w.w_append) "durable!";
  Env.(w.w_fsync) ();
  Env.(w.w_append) "-unsynced-tail";
  Faulty_env.arm f ~crash_after:0;
  (match Env.(w.w_append) "x" with
  | () -> Alcotest.fail "expected crash"
  | exception Env.Crashed -> ());
  Env.(w.w_close) ();
  Faulty_env.install_crash_image f;
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check bool) "synced prefix intact" true
    (String.length contents >= 8 && String.sub contents 0 8 = "durable!");
  Alcotest.(check bool) "no bytes beyond written" true
    (String.length contents <= String.length "durable!-unsynced-tail")

(* ---------- WAL fsync-gate ---------- *)

let fsync_gate_poisons_writer () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let f = Faulty_env.create ~seed:7 ~fsync_fail_1_in:1 () in
  let path = Filename.concat dir "gate.log" in
  let w =
    Clsm_wal.Wal_writer.create ~mode:Clsm_wal.Wal_writer.Sync
      ~env:(Faulty_env.env f) path
  in
  (match Clsm_wal.Wal_writer.append w "r1" with
  | () -> Alcotest.fail "expected fsync failure"
  | exception Env.Error _ -> ());
  (* The fault is gone, but the writer must stay poisoned: it cannot know
     which of its earlier acknowledgements actually reached disk. *)
  Faulty_env.set_fault_rates f ~fsync_fail_1_in:0 ();
  (match Clsm_wal.Wal_writer.append w "r2" with
  | () -> Alcotest.fail "writer must stay poisoned after an IO failure"
  | exception Env.Error _ -> ());
  Alcotest.(check bool) "poisoned" true (Clsm_wal.Wal_writer.poisoned w);
  Clsm_wal.Wal_writer.abandon w

(* ---------- read-only degradation ---------- *)

let enospc_degrades_to_read_only () =
  let dir = fresh_dir () in
  let f = Faulty_env.create ~seed:3 () in
  let opts =
    {
      (small_opts ~env:(Faulty_env.env f) ~wal_enabled:false
         ~memtable_bytes:(1 lsl 20) dir)
      with
      (* this test is about the degraded END state, not the healing
         around it: no retry, no auto-repair *)
      Options.retry = Clsm_env.Retry_policy.none;
      auto_repair = false;
    }
  in
  let db = Db.open_store opts in
  for i = 1 to 200 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(String.make 40 'v')
  done;
  (* From here every append fails: the flush inside compact_now hits
     ENOSPC, which must degrade the store, not kill it. *)
  Faulty_env.set_fault_rates f ~append_fail_1_in:1 ();
  Db.compact_now db;
  (match Db.health db with
  | `Degraded _ -> ()
  | `Ok | `Partial _ ->
      Alcotest.fail "store should be degraded after ENOSPC flush");
  (* Reads still serve from the in-memory components... *)
  Alcotest.(check (option string)) "reads survive" (Some (String.make 40 'v'))
    (Db.get db "k0001");
  (* ...writes are refused with the original failure as context. *)
  (match Db.put db ~key:"new" ~value:"x" with
  | () -> Alcotest.fail "writes must be refused when degraded"
  | exception Store_sig.Degraded _ -> ());
  (match Db.write_batch db [ Db.Batch_put ("b", "1") ] with
  | () -> Alcotest.fail "batches must be refused when degraded"
  | exception Store_sig.Degraded _ -> ());
  Faulty_env.set_fault_rates f ~append_fail_1_in:0 ();
  Db.close db;
  (* The directory reopens cleanly with a healthy environment. *)
  let db = Db.open_store { opts with Options.env = Env.unix } in
  Alcotest.(check (list string)) "consistent after reopen" []
    (Db.verify_integrity db);
  Db.close db

(* ---------- orphan cleanup after a mid-flush crash ---------- *)

let mid_flush_crash_leaves_no_orphans () =
  let dir = fresh_dir () in
  let f = Faulty_env.create ~seed:11 () in
  let opts = small_opts ~env:(Faulty_env.env f) ~wal_sync:`Per_write dir in
  let db = Db.open_store opts in
  for i = 1 to 300 do
    Db.put db ~key:(Printf.sprintf "k%04d" i) ~value:(String.make 64 'o')
  done;
  (* Crash a few IO operations into the flush: the table builder dies
     with a half-written .sst.tmp (and possibly published .sst files a
     later manifest save never recorded). *)
  Faulty_env.arm f ~crash_after:4;
  Db.compact_now db;
  Db.simulate_crash db;
  Faulty_env.install_crash_image f;
  let db = Db.open_store { opts with Options.env = Env.unix } in
  let listing = Sys.readdir dir |> Array.to_list in
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        Alcotest.failf "stray temp file survived recovery: %s" name)
    listing;
  (match Manifest.load ~dir () with
  | None -> Alcotest.fail "manifest must exist after recovery"
  | Some m ->
      let live = List.map snd m.Manifest.files in
      List.iter
        (fun name ->
          match String.split_on_char '.' name with
          | [ num; "sst" ] ->
              let n = int_of_string num in
              if not (List.mem n live) then
                Alcotest.failf "orphan table survived recovery: %s" name
          | _ -> ())
        listing);
  (* All synchronously acknowledged writes are still there. *)
  for i = 1 to 300 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%04d recovered" i)
      (Some (String.make 64 'o'))
      (Db.get db (Printf.sprintf "k%04d" i))
  done;
  Alcotest.(check (list string)) "healthy" [] (Db.verify_integrity db);
  Db.close db

(* ---------- orphan cleanup after a mid-subcompaction crash ---------- *)

let mid_subcompaction_crash_leaves_no_orphans () =
  let dir = fresh_dir () in
  let f = Faulty_env.create ~seed:23 () in
  let base = small_opts ~env:(Faulty_env.env f) ~wal_sync:`Per_write dir in
  let opts =
    {
      base with
      (* Large enough that nothing flushes until compact_now rotates, so
         each round's flush cost is deterministic and measurable; one
         flush = one L0 file (a ~21 KiB batch stays under the 32 KiB
         file-size cap), so rounds 1 and 2 are flush-only and the L0→L1
         merge fires exactly once, in round 3. *)
      Options.memtable_bytes = 1 lsl 20;
      max_subcompactions = 4;
      lsm = { base.Options.lsm with Lsm_config.target_file_size = 32 * 1024 };
    }
  in
  let db = Db.open_store opts in
  let put_batch round =
    for i = 1 to 300 do
      Db.put db
        ~key:(Printf.sprintf "k%04d" i)
        ~value:(Printf.sprintf "r%d-%s" round (String.make 60 'v'))
    done
  in
  (* Rounds 1 and 2: flush-only (l0_compaction_trigger = 3 means two L0
     files never start a compaction). The second round's mutating-op
     delta measures the cost of flushing one batch. *)
  put_batch 1;
  Db.compact_now db;
  put_batch 2;
  let before = Faulty_env.mutating_ops f in
  Db.compact_now db;
  let flush_cost = Faulty_env.mutating_ops f - before in
  (* Round 3: the flush inside compact_now produces the third L0 file and
     the drain immediately runs the L0→L1 compaction, fanned out over 4
     subranges. Crash a few IO operations past the (identical) flush:
     several subcompaction domains die mid-write, leaving half-written
     .sst.tmp files and possibly renamed tables no manifest records. *)
  put_batch 3;
  Faulty_env.arm f ~crash_after:(flush_cost + 6);
  Db.compact_now db;
  Alcotest.(check bool) "crash fired during the compaction" true
    (Faulty_env.crashed f);
  Db.simulate_crash db;
  Faulty_env.install_crash_image f;
  let db = Db.open_store { opts with Options.env = Env.unix } in
  (* The recovered L0 is back over the compaction trigger, so background
     workers restart the merge immediately; drain to quiescence before
     listing the directory or a legitimately in-flight output .tmp would
     race the stray-file check. *)
  Db.compact_now db;
  let listing = Sys.readdir dir |> Array.to_list in
  List.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        Alcotest.failf "stray temp file survived recovery: %s" name)
    listing;
  (match Manifest.load ~dir () with
  | None -> Alcotest.fail "manifest must exist after recovery"
  | Some m ->
      let live = List.map snd m.Manifest.files in
      List.iter
        (fun name ->
          match String.split_on_char '.' name with
          | [ num; "sst" ] ->
              let n = int_of_string num in
              if not (List.mem n live) then
                Alcotest.failf "orphan table survived recovery: %s" name
          | _ -> ())
        listing);
  (* Every synchronously acknowledged write is still there, at its
     newest version. *)
  for i = 1 to 300 do
    Alcotest.(check (option string))
      (Printf.sprintf "k%04d recovered" i)
      (Some (Printf.sprintf "r3-%s" (String.make 60 'v')))
      (Db.get db (Printf.sprintf "k%04d" i))
  done;
  Alcotest.(check (list string)) "healthy" [] (Db.verify_integrity db);
  Db.close db

(* ---------- strict WAL recovery ---------- *)

let strict_wal_fails_on_corrupt_tail () =
  let dir = fresh_dir () in
  let opts = small_opts ~wal_sync:`Per_write ~memtable_bytes:(1 lsl 20) dir in
  let db = Db.open_store opts in
  Db.put db ~key:"a" ~value:"1";
  Db.put db ~key:"b" ~value:"2";
  Db.put db ~key:"c" ~value:"3";
  Db.simulate_crash db;
  (* Flip a byte near the end of the live log: the final record's CRC no
     longer matches. *)
  let log =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".log")
    |> List.sort compare |> List.rev |> List.hd
  in
  let path = Filename.concat dir log in
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string contents in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  (* Strict mode refuses to open... *)
  (match Db.open_store { opts with Options.strict_wal = true } with
  | db ->
      Db.close db;
      Alcotest.fail "strict_wal open must fail on a corrupt tail"
  | exception Clsm_wal.Wal_reader.Corrupt _ -> ());
  (* ...default mode salvages the prefix. *)
  let db = Db.open_store opts in
  Alcotest.(check (option string)) "prefix salvaged" (Some "2") (Db.get db "b");
  Alcotest.(check (option string)) "torn record dropped" None (Db.get db "c");
  Db.close db

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "crash countdown" `Quick crash_countdown;
        Alcotest.test_case "crash image" `Quick crash_image_keeps_synced_prefix;
        Alcotest.test_case "fsync gate" `Quick fsync_gate_poisons_writer;
        Alcotest.test_case "enospc degrades" `Quick enospc_degrades_to_read_only;
        Alcotest.test_case "no orphans after crash" `Quick
          mid_flush_crash_leaves_no_orphans;
        Alcotest.test_case "no orphans after subcompaction crash" `Quick
          mid_subcompaction_crash_leaves_no_orphans;
        Alcotest.test_case "strict wal" `Quick strict_wal_fails_on_corrupt_tail;
      ] );
  ]
