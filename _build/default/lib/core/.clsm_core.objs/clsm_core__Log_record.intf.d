lib/core/log_record.mli: Clsm_lsm Entry
