lib/sstable/cache.ml: Array Clsm_util Hashtbl Mutex
