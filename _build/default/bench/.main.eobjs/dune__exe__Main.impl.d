bench/main.ml: Ablations Array Calibrate Figures List Real_check Sensitivity Sys
