lib/sstable/table_builder.ml: Binary Block_builder Block_handle Bloom Buffer Clsm_util Comparator Crc32c Fun Simple_compress String Sys Table_format Unix
