lib/lsm/version.mli: Clsm_primitives Entry Iter Table_file
