(* Self-deadlock: OCaml's Mutex is not reentrant. *)

type t = { cm : Mutex.t }

let bad t =
  Mutex.protect t.cm (fun () ->
      Mutex.protect t.cm (fun () -> ()) (* BAD: LC008 *))
