lib/primitives/active_set.mli:
