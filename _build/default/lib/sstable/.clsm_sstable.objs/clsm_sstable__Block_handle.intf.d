lib/sstable/block_handle.mli: Buffer
