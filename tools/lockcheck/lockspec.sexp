; Lock-discipline spec for the store. Reviewed like code: adding a mutex
; to the system means declaring it here, placing it in the order, and
; deciding whether blocking is allowed under it. DESIGN.md §15 explains
; the model; tools/lockcheck enforces it via `dune build @lint`.

(locks
 ; group-commit WAL: gm guards the group state, io_mutex the drain/write
 ; path; the leader drops gm before touching io_mutex, so the two are
 ; never nested gm-over-IO.
 (gm (fields gm) (modules Wal_writer))
 (io_mutex (fields io_mutex) (modules Wal_writer))
 ; store-wide shared/exclusive lock (readers+writers shared, rotation
 ; and install exclusive)
 (lock (fields lock) (modules Store Store_state Maintenance_hooks Sharded_store))
 ; serializes version installs + manifest saves
 (install (fields install) (modules Store Store_state Maintenance_hooks))
 ; serializes close/simulate_crash against each other
 (close_mutex (fields close_mutex) (modules Store Sharded_store))
 ; compaction claim state
 (cm (fields cm) (modules Store Store_state Maintenance_hooks))
 ; self-healing (quarantine/scrub) state
 (hm (fields hm) (modules Store Store_state Maintenance_hooks))
 ; scheduler start/stop lifecycle
 (lifecycle (fields lifecycle) (modules Scheduler))
 ; maintenance wakeup condvar's mutex
 (wakeup (fields mutex) (modules Wakeup))
 ; block-cache shard mutex (never held across a table fill)
 (cache_shard (fields mutex) (modules Cache))
 ; snapshot registry
 (registry (fields mutex) (modules Snapshot_registry))
 ; COW memtable writer mutex
 (write_mutex (fields write_mutex) (modules Cow_memtable))
 ; sharded router batch lock (shared per-op, exclusive for batches/snaps)
 (batch_lock (fields batch_lock) (modules Sharded_store))
 ; LevelDB-style baseline: global db mutex + background maintenance mutex
 (ldb_mutex (fields mutex) (modules Single_writer_store))
 (ldb_maintenance (fields maintenance) (modules Single_writer_store))
 ; striped-RMW baseline stripe mutex (bound to m in with_stripe)
 (stripe (vars m) (modules Striped_rmw)))

; (a b) = a may already be held when b is acquired. The checker takes
; the transitive closure and rejects any acquisition outside it, and
; rejects cycles in this declaration itself.
(order
 (close_mutex install)
 (close_mutex lifecycle)
 (close_mutex gm)
 (close_mutex io_mutex)
 (close_mutex lock)
 (batch_lock lock)
 (install lock)
 (install hm)
 (lock gm)
 (lock io_mutex)
 (lock cache_shard)
 (lock hm)
 (lock registry)
 (lock wakeup)
 (cm hm)
 (lifecycle wakeup)
 (stripe ldb_mutex)
 (stripe ldb_maintenance)
 (stripe cache_shard)
 (ldb_maintenance ldb_mutex)
 ; LevelDB-style baseline holds its global mutex across WAL appends and
 ; its maintenance mutex across flush/compaction IO — by design; the
 ; figure-9 comparison measures exactly that serialization.
 (ldb_mutex gm)
 (ldb_mutex io_mutex)
 (ldb_maintenance gm)
 (ldb_maintenance io_mutex)
 (ldb_maintenance cache_shard))

; Short-hold locks: no Env IO, sleeping, or joining while holding one.
; Deliberately absent: lock (write_batch does WAL IO under the exclusive
; store lock by design), install/io_mutex/ldb_* (IO under them is the
; point), lifecycle (stop joins domains), close_mutex, stripe.
(no_block_while_holding gm cm hm cache_shard registry wakeup write_mutex)

(blocking
 (calls Unix.sleep Unix.sleepf Unix.select Domain.join Thread.join
        Thread.delay)
 ; Env record fields: every IO the store performs goes through these.
 (fields w_append w_fsync rf_read create_writer open_random read_file
         rename remove mkdir list_dir))

; Each condition variable is waited on with exactly one mutex.
(condvars
 ((field gcond) (module Wal_writer) (lock gm))
 ((field cond) (module Cache) (lock cache_shard))
 ((field cond) (module Wakeup) (lock wakeup)))

; Modules allowed to touch Atomic/Domain directly. Anything else must
; build on these primitives.
(atomics_allowed
 Active_set Backoff Backpressure Broken_store Cache Cow_memtable Driver
 Event_buffer History Key_dist Maintenance_hooks Memtable
 Monotonic_counter Mpmc_queue Rcu_box Recovery Refcounted Scheduler
 Shared_lock Sharded_store Single_writer_store Skiplist Stats Store
 Store_state Stress Table Table_file)

; Hand-over-hand protocols that legitimately use bare Mutex.lock:
; the group-commit leader (drops gm around IO, re-locks to distribute
; results) and the cache fill protocol (shard mutex released across the
; fill, re-taken to install).
(allow_bare Wal_writer.lead_round_locked Cache.acquire_or_add)

; with-style wrappers the checker interprets: the lambda argument is
; analyzed with the wrapper's lock held.
(wrappers
 (Cache.with_locked (lock cache_shard))
 (Cache.with_shard_locked (lock cache_shard))
 (Shared_lock.with_shared (lock_arg 1) shared)
 (Shared_lock.with_exclusive (lock_arg 1))
 (Snapshot_registry.with_lock (lock registry))
 (Cow_memtable.locked (lock write_mutex))
 (Single_writer_store.with_mutex (lock ldb_mutex))
 (Striped_rmw.with_stripe (lock stripe)))
