lib/wal/wal_writer.ml: Buffer Clsm_primitives Mpmc_queue Mutex Stdlib String Unix Wal_record
