test/test_lsm.ml: Alcotest Clsm_lsm Compaction Entry Filename Gen In_channel Internal_key Iter List Lsm_config Manifest Merge_iter Out_channel QCheck QCheck_alcotest String Sys Table_file Unix
