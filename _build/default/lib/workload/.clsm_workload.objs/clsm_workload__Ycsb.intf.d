lib/workload/ycsb.mli: Workload_spec
