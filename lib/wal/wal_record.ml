open Clsm_util

let header_length = 8

let encode buf payload =
  Binary.write_fixed32 buf (Crc32c.mask (Crc32c.string payload));
  Binary.write_fixed32 buf (String.length payload);
  Buffer.add_string buf payload

let decode s ~pos =
  let n = String.length s in
  if pos = n then `End
  else if pos + header_length > n then `Torn
  else
    let stored = Crc32c.unmask (Binary.get_fixed32 s ~pos) in
    let len = Binary.get_fixed32 s ~pos:(pos + 4) in
    if len < 0 || pos + header_length + len > n then `Torn
    else
      let payload = String.sub s (pos + header_length) len in
      if Crc32c.string payload <> stored then `Corrupt
      else `Record (payload, pos + header_length + len)
