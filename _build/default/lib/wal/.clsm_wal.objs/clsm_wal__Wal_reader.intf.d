lib/wal/wal_reader.mli:
