(** Deterministic splittable PRNG (splitmix-style over OCaml's 63-bit
    ints). Every generator in the benchmark harness derives from explicit
    seeds so runs are reproducible. *)

type t

val create : int -> t
val split : t -> t
(** An independent stream (for per-domain generators). *)

val next : t -> int
(** Uniform non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises for [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)
