type t = Value of string | Tombstone

let encode = function Value v -> "\000" ^ v | Tombstone -> "\001"

let decode s =
  if String.length s < 1 then invalid_arg "Entry.decode: empty";
  match s.[0] with
  | '\000' -> Value (String.sub s 1 (String.length s - 1))
  | '\001' -> Tombstone
  | _ -> invalid_arg "Entry.decode: unknown tag"

let is_tombstone = function Tombstone -> true | Value _ -> false
let to_option = function Value v -> Some v | Tombstone -> None
