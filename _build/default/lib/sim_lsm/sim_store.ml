open Clsm_sim
open Clsm_workload
open Proc

type machine = {
  engine : Engine.t;
  cpu : Resource.t;
  bus : Resource.t;
  disk : Resource.t;
}

let machine_of (costs : Costs.t) engine =
  {
    engine;
    cpu = Resource.create engine ~servers:costs.Costs.hw_threads;
    bus = Resource.create engine ~servers:1;
    (* four channels: the paper's SSD RAID of four drives — this is what
       multi-threaded compaction (RocksDB, Figure 11) exploits *)
    disk = Resource.create engine ~servers:4;
  }

type t = {
  m : machine;
  c : Costs.t;
  system : System.t;
  threads : int;
  machine_threads : int; (* total workers on the machine (partitioned runs) *)
  per_op_overhead : float; (* request routing / partition metadata cost *)
  spec : Workload_spec.t;
  memtable_limit : float;
  compaction_threads : int;
  write_amplification : float;
  throttle : bool;
  stop_at : float;
  rng : Rng.t;
  lock : Sim_shared_lock.t; (* cLSM *)
  gmutex : Sim_mutex.t; (* single-writer systems; LevelDB read CS *)
  mutable mem_bytes : float;
  mutable mem_entries : float;
  mutable imm_busy : bool;
  mutable l0 : int;
  mutable writers_inside : int;
  stall_q : (unit -> unit) Queue.t;
  mutable stall_count : int;
  mutable rotation_count : int;
}

let l0_compaction_trigger = 4
let l0_stall_limit = 12

let create ~machine ~costs ~system ~threads ?machine_threads
    ?(per_op_overhead = 0.0) ~workload ~memtable_bytes ?(compaction_threads = 1)
    ?(write_amplification = costs.Costs.write_amplification)
    ?(throttle = false) ?(stop_at = infinity) ?(prefill = 0.5) ?(initial_l0 = 0)
    ~seed () =
  let machine_threads = Option.value machine_threads ~default:threads in
  let record_size =
    float_of_int
      (workload.Workload_spec.value_len + workload.Workload_spec.key_len + 64)
  in
  let start_bytes = float_of_int memtable_bytes *. prefill in
  {
    m = machine;
    c = costs;
    system;
    threads;
    machine_threads;
    per_op_overhead;
    spec = workload;
    memtable_limit = float_of_int memtable_bytes;
    compaction_threads;
    write_amplification;
    throttle;
    stop_at;
    rng = Rng.create seed;
    lock = Sim_shared_lock.create machine.engine;
    gmutex = Sim_mutex.create machine.engine;
    mem_bytes = start_bytes;
    mem_entries = start_bytes /. record_size;
    imm_busy = false;
    l0 = initial_l0;
    writers_inside = 0;
    stall_q = Queue.create ();
    stall_count = 0;
    rotation_count = 0;
  }

(* ---------- machine-level adjustments ---------- *)

(* Hyperthread sharing: with more runnable workers than physical cores,
   per-op compute stretches. *)
let cpu_time t d =
  if t.machine_threads > t.c.Costs.physical_cores then d *. t.c.Costs.ht_factor
  else d

(* Cross-chip penalty on memory-system operations once workers span both
   sockets (paper: only the 16-thread run crosses chips). *)
let bus_time t d =
  if t.machine_threads > t.c.Costs.physical_cores then
    d *. t.c.Costs.cross_chip_factor
  else d

let compute t d = Resource.use t.m.cpu (cpu_time t d)
let bus t d = Resource.use t.m.bus (bus_time t d)

let write_bus_cost t =
  t.c.Costs.bus_fixed_write
  +. (t.c.Costs.bus_per_byte
      *. float_of_int (t.spec.Workload_spec.value_len + t.spec.Workload_spec.key_len))

let read_bus_cost t =
  t.c.Costs.bus_fixed_read
  +. (t.c.Costs.bus_per_byte *. 0.25
      *. float_of_int t.spec.Workload_spec.value_len)

(* Insert cost grows with skip-list depth (Figure 8's slower in-memory
   operations at large memtables). *)
let insert_cost t =
  let base = t.c.Costs.mem_write in
  let entries = Float.max t.mem_entries 1.0 in
  let extra_levels = Float.max 0.0 (Float.log2 entries -. 18.0) in
  base +. (t.c.Costs.mem_write_log_factor *. extra_levels)

let read_cost t =
  let base = t.c.Costs.mem_read in
  let entries = Float.max t.mem_entries 1.0 in
  let extra_levels = Float.max 0.0 (Float.log2 entries -. 18.0) in
  base +. (t.c.Costs.mem_write_log_factor *. 0.5 *. extra_levels)

(* Block-cache miss probability, from the workload's locality (§5.1: the
   skewed read workload is "amenable to caching"; §5.2 production traces
   similar). *)
let miss_prob t =
  match Key_dist.kind t.spec.Workload_spec.keys with
  | `Uniform -> 0.55
  | `Skewed_blocks -> 0.045
  | `Zipf -> 0.06
  | `Heavy_tail -> 0.065
  | `Sequential -> 0.01

(* ---------- LSM state machine ---------- *)

let release_stalled t =
  while not (Queue.is_empty t.stall_q) do
    Engine.schedule_after t.m.engine 0.0 (Queue.pop t.stall_q)
  done

(* The merge of C'm into the disk component, with the discipline's
   critical sections around the pointer swaps. *)
let merge_critical t body =
  match t.system with
  | System.Clsm ->
      let* () = Sim_shared_lock.lock_exclusive t.lock in
      let* () = body in
      Sim_shared_lock.unlock_exclusive t.lock;
      return ()
  | System.Leveldb | System.Hyperleveldb | System.Rocksdb | System.Blsm
  | System.Striped_rmw ->
      let* () = Sim_mutex.lock t.gmutex in
      let* () = body in
      Sim_mutex.unlock t.gmutex;
      return ()

let start_merge t =
  t.imm_busy <- true;
  t.rotation_count <- t.rotation_count + 1;
  let frozen = t.mem_bytes in
  t.mem_bytes <- 0.0;
  t.mem_entries <- 0.0;
  Proc.spawn
    ((* beforeMerge *)
     let* () = merge_critical t (compute t t.c.Costs.merge_cs) in
     (* flush C'm sequentially *)
     let* () = Resource.use t.m.disk (frozen /. t.c.Costs.disk_write_bw) in
     (* afterMerge *)
     let* () = merge_critical t (compute t t.c.Costs.merge_cs) in
     t.l0 <- t.l0 + 1;
     t.imm_busy <- false;
     release_stalled t;
     return ())

let account_write t =
  t.mem_bytes <-
    t.mem_bytes
    +. float_of_int
         (t.spec.Workload_spec.value_len + t.spec.Workload_spec.key_len + 64);
  t.mem_entries <- t.mem_entries +. 1.0;
  if t.mem_bytes >= t.memtable_limit && not t.imm_busy then start_merge t

(* Background compaction: each L0 file costs (size * WA) of sequential
   disk I/O to ripple down the levels. *)
let start_background t =
  let rec worker () =
    if Engine.now t.m.engine >= t.stop_at then ()
    else if t.l0 > 0 then
      Proc.spawn
        (let* () =
           Resource.use t.m.disk
             (t.memtable_limit *. t.write_amplification
             /. t.c.Costs.disk_write_bw)
         in
         t.l0 <- max 0 (t.l0 - 1);
         release_stalled t;
         worker ();
         return ())
    else
      Proc.spawn
        (let* () = Proc.delay t.m.engine 0.5e-3 in
         worker ();
         return ())
  in
  for _ = 1 to t.compaction_threads do
    worker ()
  done

(* ---------- write-path building blocks ---------- *)

let maybe_stall t k =
  if
    t.l0 >= l0_stall_limit
    || (t.mem_bytes >= t.memtable_limit && t.imm_busy)
  then begin
    t.stall_count <- t.stall_count + 1;
    Queue.push k t.stall_q
  end
  else k ()

let maybe_throttle t =
  if t.throttle && t.l0 >= l0_compaction_trigger then
    (* RocksDB-style delayed writes: the per-write delay grows with the
       compaction backlog, so configurations that drain faster (more
       compaction threads) throttle less. *)
    let backlog = float_of_int (t.l0 - l0_compaction_trigger + 1) in
    Proc.delay t.m.engine
      (t.c.Costs.throttle_delay *. (1.0 +. (backlog /. 10.0)))
  else return ()

let convoy t =
  t.c.Costs.handoff_penalty
  *. float_of_int (min 6 (Sim_mutex.waiting t.gmutex))

let clsm_mv_overhead t =
  t.c.Costs.clsm_mv_per_byte *. float_of_int t.spec.Workload_spec.value_len

let clsm_write t =
  let* () = maybe_stall t in
  let* () = maybe_throttle t in
  let* () = Sim_shared_lock.lock_shared t.lock in
  t.writers_inside <- t.writers_inside + 1;
  let contention =
    t.c.Costs.clsm_cas_retry *. float_of_int (max 0 (t.writers_inside - 1))
  in
  let* () = compute t (insert_cost t +. clsm_mv_overhead t +. contention) in
  let* () = bus t (write_bus_cost t) in
  t.writers_inside <- t.writers_inside - 1;
  Sim_shared_lock.unlock_shared t.lock;
  account_write t;
  return ()

let leveldb_write t =
  let* () = maybe_stall t in
  let* () = maybe_throttle t in
  let* () = Sim_mutex.lock t.gmutex in
  let* () =
    compute t (insert_cost t +. t.c.Costs.leveldb_write_extra +. convoy t)
  in
  let* () = bus t (write_bus_cost t) in
  Sim_mutex.unlock t.gmutex;
  account_write t;
  return ()

let hyper_write t =
  let* () = maybe_stall t in
  let* () = maybe_throttle t in
  (* Fine-grained locking parallelizes roughly half of the write path; the
     rest (version bookkeeping, log sequencing) still serializes. *)
  let* () = compute t (insert_cost t *. 0.5) in
  let* () = bus t (write_bus_cost t) in
  let* () = Sim_mutex.lock t.gmutex in
  let* () = compute t (t.c.Costs.hyper_write_cs +. convoy t) in
  Sim_mutex.unlock t.gmutex;
  account_write t;
  return ()

let single_writer_write t op_cost =
  let* () = maybe_stall t in
  let* () = maybe_throttle t in
  let* () = Sim_mutex.lock t.gmutex in
  let* () = compute t (op_cost +. convoy t) in
  let* () = bus t (write_bus_cost t) in
  Sim_mutex.unlock t.gmutex;
  account_write t;
  return ()

let write_op t =
  match t.system with
  | System.Clsm -> clsm_write t
  | System.Leveldb | System.Striped_rmw -> leveldb_write t
  | System.Hyperleveldb -> hyper_write t
  | System.Rocksdb -> single_writer_write t t.c.Costs.rocksdb_write_cost
  | System.Blsm -> single_writer_write t t.c.Costs.blsm_write_cost

(* ---------- read paths ---------- *)

let maybe_miss t =
  if Rng.bool t.rng (miss_prob t) then
    (* SSD random read: pure latency, does not occupy a CPU context *)
    Proc.delay t.m.engine t.c.Costs.disk_read
  else return ()

let clsm_read t =
  let* () = compute t (read_cost t +. clsm_mv_overhead t) in
  let* () = bus t (read_bus_cost t) in
  maybe_miss t

let leveldb_read t =
  (* "read operations block even when data is available in memory" *)
  let* () = Sim_mutex.lock t.gmutex in
  let* () = compute t (t.c.Costs.leveldb_read_cs +. (convoy t /. 3.0)) in
  Sim_mutex.unlock t.gmutex;
  let* () = compute t (read_cost t) in
  let* () = bus t (read_bus_cost t) in
  maybe_miss t

let rocksdb_read t =
  let* () = compute t (read_cost t *. t.c.Costs.rocksdb_read_factor) in
  let* () = bus t (read_bus_cost t) in
  maybe_miss t

let blsm_read t =
  (* bLSM's B-tree-ish in-memory structures are a bit slower to search than
     the LevelDB family's skip list. *)
  let* () = Sim_mutex.lock t.gmutex in
  let* () = compute t (t.c.Costs.leveldb_read_cs +. (convoy t /. 3.0)) in
  Sim_mutex.unlock t.gmutex;
  let* () = compute t (read_cost t *. 1.18) in
  let* () = bus t (read_bus_cost t) in
  maybe_miss t

let read_op t =
  match t.system with
  | System.Clsm -> clsm_read t
  | System.Leveldb | System.Hyperleveldb | System.Striped_rmw -> leveldb_read t
  | System.Rocksdb -> rocksdb_read t
  | System.Blsm -> blsm_read t

(* ---------- scans ---------- *)

let scan_op t len =
  let* () =
    match t.system with
    | System.Clsm ->
        compute t t.c.Costs.snapshot_overhead
    | System.Leveldb | System.Hyperleveldb | System.Blsm | System.Striped_rmw ->
        let* () = Sim_mutex.lock t.gmutex in
        let* () = compute t (t.c.Costs.snapshot_overhead +. convoy t) in
        Sim_mutex.unlock t.gmutex;
        return ()
    | System.Rocksdb -> compute t t.c.Costs.snapshot_overhead
  in
  let* () = compute t (float_of_int len *. t.c.Costs.scan_next) in
  let* () = bus t (read_bus_cost t) in
  maybe_miss t

(* ---------- read-modify-write ---------- *)

let rmw_op t =
  match t.system with
  | System.Clsm ->
      (* Algorithm 3: optimistic read + CAS-published write, all
         non-blocking. *)
      let* () = clsm_read t in
      clsm_write t
  | System.Striped_rmw | System.Leveldb ->
      (* Figure 9 baseline: per-key stripe lock held across a LevelDB read
         and a single-writer put. Stripe conflicts are rare; the write's
         global mutex is the bottleneck. *)
      let* () = leveldb_read t in
      leveldb_write t
  | System.Hyperleveldb ->
      let* () = leveldb_read t in
      hyper_write t
  | System.Rocksdb ->
      let* () = rocksdb_read t in
      single_writer_write t t.c.Costs.rocksdb_write_cost
  | System.Blsm ->
      let* () = leveldb_read t in
      single_writer_write t t.c.Costs.blsm_write_cost

let do_op t op =
  let* () =
    if t.per_op_overhead > 0.0 then compute t t.per_op_overhead else return ()
  in
  match op with
  | Workload_spec.Read ->
      let* () = read_op t in
      return 1
  | Workload_spec.Write ->
      let* () = write_op t in
      return 1
  | Workload_spec.Scan ->
      let len = Workload_spec.scan_len t.spec t.rng in
      let* () = scan_op t len in
      return len
  | Workload_spec.Rmw ->
      let* () = rmw_op t in
      return 1

let stalls t = t.stall_count
let rotations t = t.rotation_count
let l0_files t = t.l0
