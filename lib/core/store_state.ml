(* The store's shared state, factored out of the store functor so the
   layered subsystems — Recovery, Backpressure, Maintenance_hooks and the
   algorithm core in Store — can all be written against the same record
   without living in one monolithic module. OCaml functors are
   applicative, so every [Store_state.Make (M)] names the same types. *)

module Make (M : Memtable_intf.S) = struct
  open Clsm_primitives
  open Clsm_lsm

  (* A memory component: the skip-list plus the log that covers it. *)
  type memcomp = {
    mem : M.t;
    wal : Clsm_wal.Wal_writer.t option;
    wal_number : int;
  }

  type imm_slot = No_imm | Imm of memcomp

  (* Claim ledger for the maintenance worker pool: which job slots are
     taken right now. [flush_claimed] serializes the rotate/flush path
     (the paper's beforeMerge/afterMerge pair must not race itself);
     [busy_levels] holds the (src, target) ranges of in-flight
     compactions so parallel workers only ever merge disjoint ranges.
     A claimed compaction carries its picked task and a reference on the
     version it was picked from, so input files cannot be retired
     between claim and execution. *)
  type claimed_compaction = {
    task : Compaction.task;
    pinned : Version.t Refcounted.t;
  }

  type claims = {
    cm : Mutex.t;
    mutable flush_claimed : bool;
    mutable busy_levels : (int * int) list;
    mutable pending : ((int * int) * claimed_compaction) list;
    mutable barrier : bool;
        (* repair's readmission collapse is running (or waiting to):
           no new compaction may be claimed until it clears, so the
           collapse's input files cannot be consumed under it. Flushes
           are unaffected — they only prepend strictly newer L0 files. *)
  }

  (* Self-healing state. Read paths never mutate the version or the
     manifest directly (they may hold the shared lock, which cannot be
     upgraded): a corruption verdict is only *enqueued* here, and the
     maintenance [Repair] job — which holds no locks on entry — performs
     the actual quarantine swap and manifest record. *)
  type heal = {
    hm : Mutex.t;
    mutable pending_quarantine : (int * string) list;
        (* (table number, detail) verdicts awaiting the Repair job,
           deduplicated against themselves and [quarantined] *)
    mutable quarantined : int list;
        (* dropped from the read view and recorded in the manifest;
           cleared by repair finalization *)
    mutable repair_claimed : bool;
    mutable scrub_claimed : bool;
    mutable scrub_cursor : (int * int) option;
        (* (table number, data-block index) to resume the current scrub
           pass from; [None] between passes *)
    mutable scrub_next_due : float;
    mutable repair_next_due : float;
        (* damping for repair attempts that can fail and be retried
           (degraded recovery, quarantine finalization) *)
  }

  type t = {
    opts : Options.t;
    lock : Shared_lock.t;
    clock : Clock.t;
        (* the logical-time domain: timeCounter, Active/put_active,
           snapTime and the snapshot registry. Private by default;
           injected (shared) when this store is one shard of a
           range-sharded deployment *)
    pm : memcomp Rcu_box.t;
    pimm : imm_slot Rcu_box.t;
    pd : Version.t Rcu_box.t;
    next_file : int Atomic.t;
    cache : Clsm_sstable.Block.t Clsm_sstable.Cache.t;
    stats : Stats.t;
    stop : bool Atomic.t;
    install : Mutex.t;
        (* serializes component installs + manifest saves: the manifest
           written must describe a version no concurrent install is
           tearing, and must hit disk before the WAL it obsoletes is
           deleted *)
    claims : claims;
    backpressure : Backpressure.t;
    compact_pointers : string array; (* per-level round-robin cursors *)
    mutable scheduler : Clsm_maintenance.Scheduler.t option;
    mutable wake_hook : (unit -> unit) option;
        (* where maintenance-work signals go when the pool is external
           (a shard router's shared scheduler) instead of [scheduler] *)
    degraded : string option Atomic.t;
        (* Some reason once an unrecoverable IO failure (ENOSPC, failed
           fsync) hits a maintenance path: the store stops accepting
           writes and scheduling maintenance but keeps serving reads *)
    heal : heal;
    mutable closed : bool;
    close_mutex : Mutex.t;
  }

  let alloc_file_number t () = Atomic.fetch_and_add t.next_file 1

  (* First degradation reason wins; later failures are consequences. *)
  let degrade t reason =
    ignore (Atomic.compare_and_set t.degraded None (Some reason) : bool)

  let is_degraded t = Atomic.get t.degraded <> None

  let fresh_heal ~quarantined =
    {
      hm = Mutex.create ();
      pending_quarantine = [];
      quarantined;
      repair_claimed = false;
      scrub_claimed = false;
      scrub_cursor = None;
      scrub_next_due = Unix.gettimeofday ();
      repair_next_due = 0.0;
    }

  let current_pm t = Refcounted.value (Rcu_box.peek t.pm)
  let current_imm t = Refcounted.value (Rcu_box.peek t.pimm)
  let current_version t = Refcounted.value (Rcu_box.peek t.pd)

  (* Signal the maintenance scheduler that work exists (memtable over
     threshold, rotation, stall). The paper's sleep-polling background
     loop is gone: this is a real Mutex+Condition wakeup. *)
  let wake_bg t =
    match (t.scheduler, t.wake_hook) with
    | Some s, _ ->
        Stats.incr_maintenance_wakeups t.stats;
        Clsm_maintenance.Scheduler.wake s
    | None, Some wake ->
        Stats.incr_maintenance_wakeups t.stats;
        wake ()
    | None, None -> ()

  (* Record a corruption verdict against a table file, deduplicated, and
     signal maintenance. Safe from any read path (only takes the heal
     mutex). Returns whether the verdict was fresh. *)
  let enqueue_quarantine t ~number ~detail =
    let h = t.heal in
    let fresh =
      Mutex.protect h.hm (fun () ->
          if
            List.mem_assoc number h.pending_quarantine
            || List.mem number h.quarantined
          then false
          else begin
            h.pending_quarantine <- (number, detail) :: h.pending_quarantine;
            true
          end)
    in
    if fresh then begin
      Stats.incr_corruptions_detected t.stats;
      wake_bg t
    end;
    fresh

  let quarantine_counts t =
    let h = t.heal in
    Mutex.protect h.hm (fun () ->
        (List.length h.pending_quarantine, List.length h.quarantined))

  (* ---------- manifest ---------- *)

  let manifest_of_state t =
    let v = current_version t in
    let l0 =
      List.map (fun f -> (0, (Refcounted.value f).Table_file.number)) v.Version.l0
    in
    let deeper =
      List.concat
        (List.mapi
           (fun i files ->
             List.map
               (fun f -> (i + 1, (Refcounted.value f).Table_file.number))
               files)
           (Array.to_list v.Version.levels))
    in
    {
      Manifest.next_file_number = Atomic.get t.next_file;
      last_ts = Clock.now t.clock;
      wal_number = (current_pm t).wal_number;
      files = l0 @ deeper;
      quarantined = Mutex.protect t.heal.hm (fun () -> t.heal.quarantined);
    }

  let save_manifest t =
    Manifest.save ~env:t.opts.Options.env ~dir:t.opts.Options.dir
      (manifest_of_state t)
  [@@requires_lock install]
end
