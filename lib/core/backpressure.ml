open Clsm_primitives

type config = { soft_l0 : int; hard_l0 : int; max_delay_ns : int }

let config_of_options (opts : Options.t) =
  {
    soft_l0 = opts.lsm.Clsm_lsm.Lsm_config.l0_slowdown_trigger;
    hard_l0 = opts.lsm.Clsm_lsm.Lsm_config.l0_stall_limit;
    max_delay_ns = opts.backpressure_max_delay_us * 1000;
  }

type observation = {
  stopped : bool;
  mem_full : bool;
  imm_busy : bool;
  l0_files : int;
}

type t = { config : config; stats : Stats.t }

let create ~config ~stats = { config; stats }

(* Quadratic ramp: gentle just past the soft threshold, steep near the
   hard stop, where every additional L0 file matters most. *)
let delay_ns config ~l0_files =
  if l0_files < config.soft_l0 || config.max_delay_ns <= 0 then 0
  else begin
    let span = max 1 (config.hard_l0 - config.soft_l0) in
    let depth = min (l0_files - config.soft_l0 + 1) span in
    config.max_delay_ns * depth * depth / (span * span)
  end

let hard_blocked o config =
  (o.mem_full && o.imm_busy) || o.l0_files >= config.hard_l0

let admit t ~observe ~wake =
  let b = Backoff.create ~max_spins:4096 () in
  let rec wait_hard stalled =
    let o = observe () in
    if o.stopped then ()
    else if hard_blocked o t.config then begin
      if not stalled then begin
        Stats.incr_write_stalls t.stats;
        wake ()
      end;
      Backoff.once b;
      wait_hard true
    end
    else begin
      let d = delay_ns t.config ~l0_files:o.l0_files in
      if d > 0 then begin
        Stats.add_slowdown t.stats ~delay_ns:d;
        (* The delay buys compaction time only if compaction is running. *)
        wake ();
        Unix.sleepf (float_of_int d /. 1e9)
      end
    end
  in
  wait_hard false
