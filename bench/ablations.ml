(* Ablations of the design choices called out in DESIGN.md §5: each sweep
   isolates one mechanism and reports its contribution. *)

open Clsm_sim_lsm
open Clsm_workload

let line fmt = Printf.printf (fmt ^^ "\n%!")
let kops v = v /. 1000.0

let tmp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "clsm_abl_%s_%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm d;
  d

(* 1. Shared-exclusive lock vs a global mutex around the SAME lock-free
   memtable: isolates Algorithm 1's contribution from the skip-list's.
   Modeled as the LevelDB discipline with its extra writer-side work
   removed, so the only difference from cLSM is the serialization. *)
let lock_granularity () =
  line "";
  line "== Ablation: Algorithm 1 shared lock vs global mutex (write-only) ==";
  let spec = Workload_spec.write_only ~space:10_000_000 in
  let threads = [ 1; 2; 4; 8; 16 ] in
  let mutex_costs = { Costs.default with Costs.leveldb_write_extra = 0.0 } in
  let run system costs =
    List.map
      (fun n ->
        (Experiment.run
           (Experiment.config ~costs ~duration:0.4 ~system ~threads:n spec))
          .Experiment.throughput)
      threads
  in
  line "%-26s %s" "threads ->"
    (String.concat "" (List.map (Printf.sprintf "%9d") threads));
  line "%-26s %s" "global mutex + lockfree mt"
    (String.concat ""
       (List.map (fun v -> Printf.sprintf "%9.0f" (kops v))
          (run System.Leveldb mutex_costs)));
  line "%-26s %s" "cLSM shared-exclusive"
    (String.concat ""
       (List.map (fun v -> Printf.sprintf "%9.0f" (kops v))
          (run System.Clsm Costs.default)));
  line "   (Kops/s; the gap is what non-blocking puts buy beyond the data structure)"

(* 2. Snapshot protocol: Algorithm 2's Active set vs the naive timeCounter
   read of Figure 3. A snapshot read must be repeatable: with the naive
   timestamp, a put that acquired ts <= snapTime but had not yet inserted
   when the snapshot was taken can surface mid-scan, so reading the same
   key twice inside one snapshot can yield two different values — exactly
   the Figure 3/4 hazard. Algorithm 2's Active-set wait makes this
   impossible. *)
let snapshot_protocol () =
  line "";
  line "== Ablation: Algorithm 2 snapshots vs naive timeCounter read ==";
  let run_mode ~naive =
    let dir = tmp_dir (if naive then "snap_naive" else "snap_algo2") in
    let opts =
      {
        (Clsm_core.Options.default ~dir) with
        Clsm_core.Options.memtable_bytes = 1 lsl 22;
        unsafe_naive_snapshots = naive;
      }
    in
    let db = Clsm_core.Db.open_store opts in
    let stop = Atomic.make false in
    let writer seed () =
      let i = ref seed in
      while not (Atomic.get stop) do
        incr i;
        Clsm_core.Db.put db
          ~key:(Printf.sprintf "k%02d" (!i mod 16))
          ~value:(string_of_int !i)
      done;
      0
    in
    let violations = ref 0 and snaps = ref 0 in
    let snapshotter () =
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. 6.0 in
      while Unix.gettimeofday () < deadline do
        let s = Clsm_core.Db.get_snap db in
        incr snaps;
        for k = 0 to 15 do
          let key = Printf.sprintf "k%02d" k in
          let first = Clsm_core.Db.get_at db s key in
          let second = Clsm_core.Db.get_at db s key in
          if first <> second then incr violations
        done;
        Clsm_core.Db.release_snapshot db s
      done;
      Atomic.set stop true;
      int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
    in
    let w = Domain.spawn (writer 0) in
    let w2 = Domain.spawn (writer 1_000_000) in
    let sd = Domain.spawn snapshotter in
    let elapsed_ns = Domain.join sd in
    ignore (Domain.join w);
    ignore (Domain.join w2);
    Clsm_core.Db.close db;
    (!violations, !snaps, elapsed_ns / max 1 !snaps)
  in
  let naive_inv, naive_snaps, naive_ns = run_mode ~naive:true in
  let algo_inv, algo_snaps, algo_ns = run_mode ~naive:false in
  line "%-24s %12s %20s %18s" "mode" "snapshots" "unrepeatable reads" "ns/snapshot-cycle";
  line "%-24s %12d %20d %18d" "naive timeCounter" naive_snaps naive_inv naive_ns;
  line "%-24s %12d %20d %18d" "Algorithm 2" algo_snaps algo_inv algo_ns;
  line
    "   (the naive count is racy — any nonzero value is a serializability violation;";
  line "    Algorithm 2 must always report 0)"

(* 3. Serializable vs linearizable getSnap cost under concurrent writers. *)
let snapshot_linearizability () =
  line "";
  line "== Ablation: serializable vs linearizable getSnap ==";
  let run_mode ~linearizable =
    let dir = tmp_dir (if linearizable then "lin" else "ser") in
    let opts =
      {
        (Clsm_core.Options.default ~dir) with
        Clsm_core.Options.memtable_bytes = 1 lsl 22;
        linearizable_snapshots = linearizable;
      }
    in
    let db = Clsm_core.Db.open_store opts in
    let stop = Atomic.make false in
    let writer () =
      let i = ref 0 in
      while not (Atomic.get stop) do
        incr i;
        Clsm_core.Db.put db ~key:(string_of_int (!i mod 1000)) ~value:"v"
      done;
      0
    in
    let w = Domain.spawn writer in
    let t0 = Unix.gettimeofday () in
    let n = 20_000 in
    for _ = 1 to n do
      let s = Clsm_core.Db.get_snap db in
      Clsm_core.Db.release_snapshot db s
    done;
    let per = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
    Atomic.set stop true;
    ignore (Domain.join w);
    Clsm_core.Db.close db;
    per
  in
  let ser = run_mode ~linearizable:false in
  let lin = run_mode ~linearizable:true in
  line "serializable getSnap: %8.0f ns    linearizable getSnap: %8.0f ns" ser lin

(* 4. Bloom filters on/off: negative-lookup throughput against the disk
   component. *)
let bloom_filters () =
  line "";
  line "== Ablation: Bloom filters on/off (absent-key gets vs disk component) ==";
  let run_mode ~bits =
    let dir = tmp_dir (Printf.sprintf "bloom%d" bits) in
    let opts =
      {
        (Clsm_core.Options.default ~dir) with
        Clsm_core.Options.memtable_bytes = 1 lsl 20;
        (* tiny cache so absent-key probes that pass the filter really pay
           for block loads *)
        cache_bytes = 1 lsl 18;
        lsm = { Clsm_lsm.Lsm_config.default with
                Clsm_lsm.Lsm_config.bits_per_key = bits;
                block_size = 1024 };
      }
    in
    let db = Clsm_core.Db.open_store opts in
    for i = 0 to 49_999 do
      Clsm_core.Db.put db ~key:(Printf.sprintf "present%08d" i) ~value:"v"
    done;
    Clsm_core.Db.compact_now db;
    let t0 = Unix.gettimeofday () in
    let n = 100_000 in
    for i = 0 to n - 1 do
      ignore (Clsm_core.Db.get db (Printf.sprintf "absent%08d" i))
    done;
    let rate = float_of_int n /. (Unix.gettimeofday () -. t0) in
    Clsm_core.Db.close db;
    rate
  in
  let on = run_mode ~bits:10 in
  let off = run_mode ~bits:0 in
  line "bloom 10 bits/key: %8.0f Kops/s   bloom disabled: %8.0f Kops/s (%.1fx)"
    (kops on) (kops off) (on /. off)

(* 5. Async vs group vs per-write WAL: put throughput. Single-threaded,
   so the group accumulation window is set to 0 — with one committer
   there is nobody to wait for, and the ablation isolates the protocol
   overhead rather than an idle delay. The multi-writer amortization is
   bench_store's --durability phase. *)
let wal_mode () =
  line "";
  line "== Ablation: asynchronous vs group vs per-write logging ==";
  let run_mode ~name ~wal_sync ~n =
    let dir = tmp_dir ("wal" ^ name) in
    let opts =
      {
        (Clsm_core.Options.default ~dir) with
        Clsm_core.Options.memtable_bytes = 1 lsl 24;
        wal_sync;
      }
    in
    let db = Clsm_core.Db.open_store opts in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      Clsm_core.Db.put db ~key:(Printf.sprintf "k%08d" i) ~value:(String.make 256 'v')
    done;
    let rate = float_of_int n /. (Unix.gettimeofday () -. t0) in
    Clsm_core.Db.close db;
    rate
  in
  let async = run_mode ~name:"async" ~wal_sync:`Async ~n:50_000 in
  let group =
    run_mode ~name:"group"
      ~wal_sync:(`Group { Clsm_core.Options.max_batch = 64; max_delay_us = 0 })
      ~n:2_000
  in
  let sync = run_mode ~name:"sync" ~wal_sync:`Per_write ~n:2_000 in
  line "async WAL: %8.0f Kops/s   group WAL: %8.3f Kops/s   per-write WAL: %8.3f Kops/s (async/per-write %.0fx)"
    (kops async) (kops group) (kops sync) (async /. sync)

(* 6. Generic algorithm: the same store functor over the lock-free
   skip-list (Db) vs the copy-on-write map (Cow_store) — real execution.
   Quantifies what the concurrent memtable buys inside the identical
   algorithm; on a single core the gap reflects constant factors only,
   on a multicore it reflects write-side parallelism. *)
let memory_component () =
  line "";
  line "== Ablation: memory component (skip-list vs copy-on-write map) ==";
  let run_ops name put get close =
    let n = 20_000 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      put ~key:(Printf.sprintf "k%06d" (i mod 5_000)) ~value:"payload-64-bytes"
    done;
    let wrate = float_of_int n /. (Unix.gettimeofday () -. t0) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      ignore (get (Printf.sprintf "k%06d" (i mod 5_000)))
    done;
    let rrate = float_of_int n /. (Unix.gettimeofday () -. t0) in
    close ();
    line "%-28s %10.0f Kputs/s %10.0f Kgets/s" name (kops wrate) (kops rrate)
  in
  let dir1 = tmp_dir "mc_skiplist" and dir2 = tmp_dir "mc_cow" in
  let opts dir =
    { (Clsm_core.Options.default ~dir) with
      Clsm_core.Options.memtable_bytes = 1 lsl 24 }
  in
  let a = Clsm_core.Db.open_store (opts dir1) in
  run_ops "skip-list (cLSM, Db)"
    (fun ~key ~value -> Clsm_core.Db.put a ~key ~value)
    (fun k -> Clsm_core.Db.get a k)
    (fun () -> Clsm_core.Db.close a);
  let b = Clsm_core.Cow_store.open_store (opts dir2) in
  run_ops "copy-on-write map (Cow_store)"
    (fun ~key ~value -> Clsm_core.Cow_store.put b ~key ~value)
    (fun k -> Clsm_core.Cow_store.get b k)
    (fun () -> Clsm_core.Cow_store.close b)

let run () =
  lock_granularity ();
  snapshot_protocol ();
  snapshot_linearizability ();
  bloom_filters ();
  wal_mode ();
  memory_component ()
