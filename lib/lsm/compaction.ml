open Clsm_primitives

type task = {
  src_level : int;
  inputs_lo : Version.file list;
  inputs_hi : Version.file list;
  target_level : int;
  drop_tombstones : bool;
}

let deeper_levels_empty (v : Version.t) target_level =
  (* levels.(i) is level i+1 *)
  let deepest = Array.length v.Version.levels in
  let rec go level =
    level > deepest
    || (v.Version.levels.(level - 1) = [] && go (level + 1))
  in
  go (target_level + 1)

let pick ~cfg ?(level_pointers = [||]) ?(skip = fun ~src:_ ~target:_ -> false)
    ?(pin_tombstones = false) (v : Version.t) =
  let mk ~src_level ~inputs_lo ~target_level =
    let inputs_hi =
      match Version.files_range inputs_lo with
      | None -> []
      | Some (smallest, largest) ->
          if target_level - 1 < Array.length v.Version.levels then
            Version.overlapping v.Version.levels.(target_level - 1) ~smallest
              ~largest
          else []
    in
    {
      src_level;
      inputs_lo;
      inputs_hi;
      target_level;
      drop_tombstones =
        (not pin_tombstones) && deeper_levels_empty v target_level;
    }
  in
  if
    List.length v.Version.l0 >= cfg.Lsm_config.l0_compaction_trigger
    && not (skip ~src:0 ~target:1)
  then Some (mk ~src_level:0 ~inputs_lo:v.Version.l0 ~target_level:1)
  else begin
    let num_levels = Array.length v.Version.levels + 1 in
    let rec find level =
      if level >= num_levels - 1 then None
        (* the deepest level has no deeper target; let it grow *)
      else if skip ~src:level ~target:(level + 1) then find (level + 1)
      else if
        Version.level_bytes v level > Lsm_config.max_bytes_for_level cfg level
      then
        match v.Version.levels.(level - 1) with
        | [] -> find (level + 1)
        | (first :: _) as files ->
            (* round-robin through the level's key space (LevelDB's
               compact_pointer): resume after the last compacted key. *)
            let pointer =
              if level - 1 < Array.length level_pointers then
                level_pointers.(level - 1)
              else ""
            in
            let chosen =
              if pointer = "" then first
              else
                match
                  List.find_opt
                    (fun f ->
                      Internal_key.compare_encoded
                        (Clsm_primitives.Refcounted.value f).Table_file.smallest
                        pointer
                      > 0)
                    files
                with
                | Some f -> f
                | None -> first
            in
            Some (mk ~src_level:level ~inputs_lo:[ chosen ]
                    ~target_level:(level + 1))
      else find (level + 1)
    in
    find 1
  end

let filter_group ~snapshots ~drop_tombstones versions =
  let arr = Array.of_list versions in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let keep = Array.make n false in
    (* The newest version is always visible to future reads. *)
    keep.(n - 1) <- true;
    (* Each snapshot pins the newest version at or below its timestamp. *)
    List.iter
      (fun s ->
        let rec last_le i best =
          if i = n then best
          else if fst arr.(i) <= s then last_le (i + 1) (Some i)
          else best
        in
        match last_le 0 None with
        | Some i -> keep.(i) <- true
        | None -> ())
      snapshots;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then kept := arr.(i) :: !kept
    done;
    (* With nothing below the target level, a deletion marker that is the
       oldest surviving entry denotes "never existed" and can go. *)
    let rec drop_leading = function
      | (_, Entry.Tombstone) :: rest when drop_tombstones -> drop_leading rest
      | l -> l
    in
    List.map fst (drop_leading !kept)
  end

(* Accumulates output tables, cutting at the target file size. *)
type output_state = {
  cfg : Lsm_config.t;
  dir : string;
  cache : Clsm_sstable.Block.t Clsm_sstable.Cache.t option;
  env : Clsm_env.Env.t;
  alloc_number : unit -> int;
  mutable builder : (int * Clsm_sstable.Table_builder.t) option;
  mutable files : Version.file list; (* reversed *)
}

let builder_of st =
  match st.builder with
  | Some (_, b) -> b
  | None ->
      let number = st.alloc_number () in
      let b =
        Clsm_sstable.Table_builder.create
          ~block_size:st.cfg.Lsm_config.block_size
          ~bits_per_key:st.cfg.Lsm_config.bits_per_key
          ~compress:st.cfg.Lsm_config.compress
          ~filter_key_of:Internal_key.user_key_of ~cmp:Internal_key.comparator
          ~env:st.env
          ~path:(Table_file.table_path ~dir:st.dir number)
          ()
      in
      st.builder <- Some (number, b);
      b

let finish_current st =
  match st.builder with
  | None -> ()
  | Some (number, b) ->
      st.builder <- None;
      if Clsm_sstable.Table_builder.num_entries b = 0 then
        Clsm_sstable.Table_builder.abandon b
      else begin
        ignore (Clsm_sstable.Table_builder.finish b);
        let tf =
          Table_file.open_number ?cache:st.cache ~env:st.env ~dir:st.dir number
        in
        st.files <-
          Refcounted.create ~release:Table_file.release tf :: st.files
      end

(* A merge that dies mid-run (ENOSPC, crash point) must not leak its
   partial outputs: the in-flight builder's temp file is dropped and the
   already-finished tables are closed and deleted (all best-effort — any
   survivor is an orphan the next recovery collects). *)
let cleanup_failed st =
  (match st.builder with
  | Some (_, b) -> ( try Clsm_sstable.Table_builder.abandon b with _ -> ())
  | None -> ());
  st.builder <- None;
  List.iter
    (fun f ->
      Table_file.mark_obsolete (Refcounted.value f);
      Refcounted.decr f)
    st.files;
  st.files <- []

let emit st ~key ~value =
  let b = builder_of st in
  Clsm_sstable.Table_builder.add b ~key ~value;
  if
    Clsm_sstable.Table_builder.estimated_file_size b
    >= st.cfg.Lsm_config.target_file_size
  then finish_current st

let write_sorted_run ~cfg ~dir ?cache ?(env = Clsm_env.Env.unix) ~alloc_number
    ~snapshots ~drop_tombstones iter =
  let snapshots = List.sort_uniq Int.compare snapshots in
  let st = { cfg; dir; cache; env; alloc_number; builder = None; files = [] } in
  iter.Iter.seek_to_first ();
  (* Collect one user key's versions (ascending ts), deduplicating exact
     internal-key ties from merge inputs, then GC and emit. *)
  let next_group () =
    if not (iter.Iter.valid ()) then None
    else begin
      let first_key = iter.Iter.key () in
      let user_key = Internal_key.user_key_of first_key in
      let rec collect acc last_ik =
        if not (iter.Iter.valid ()) then List.rev acc
        else
          let ik = iter.Iter.key () in
          if not (String.equal (Internal_key.user_key_of ik) user_key) then
            List.rev acc
          else begin
            let v = iter.Iter.value () in
            iter.Iter.next ();
            if last_ik <> "" && Internal_key.compare_encoded last_ik ik = 0
            then collect acc last_ik (* duplicate: first source wins *)
            else collect ((ik, v) :: acc) ik
          end
      in
      Some (user_key, collect [] "")
    end
  in
  let rec pump () =
    match next_group () with
    | None -> ()
    | Some (_user_key, versions) ->
        let decoded =
          List.map (fun (ik, v) -> (Internal_key.ts_of ik, Entry.decode v)) versions
        in
        let kept_ts = filter_group ~snapshots ~drop_tombstones decoded in
        List.iter
          (fun (ik, v) ->
            if List.mem (Internal_key.ts_of ik) kept_ts then
              emit st ~key:ik ~value:v)
          versions;
        pump ()
  in
  (try
     pump ();
     finish_current st
   with e ->
     cleanup_failed st;
     raise e);
  List.rev st.files

(* Input iterators carry the typed corruption signal: a rotten input
   aborts the whole job with {!Table_file.Corruption} so the store can
   quarantine the file instead of merging garbage forward. *)
let file_iter f = Version.iter_of_file f

let run ~cfg ~dir ?cache ?env ~alloc_number ~snapshots task =
  let inputs = task.inputs_lo @ task.inputs_hi in
  let merged =
    Merge_iter.merge ~cmp:Internal_key.compare_encoded
      (List.map file_iter inputs)
  in
  write_sorted_run ~cfg ~dir ?cache ?env ~alloc_number ~snapshots
    ~drop_tombstones:task.drop_tombstones merged

(* ---------- range-partitioned subcompactions ---------- *)

(* Split the task's key space into up to [max_subcompactions] disjoint
   half-open user-key subranges. Candidates are the per-data-block
   anchors of every input file ((last key, stored bytes) pairs off the
   in-memory indexes — no data IO), so boundaries exist even when the
   inputs are a pile of fully-overlapping L0 files. Walking the anchors
   in key order and cutting each time ~total/n bytes accumulate yields
   byte-balanced subranges. Boundaries are user keys: a subrange
   [lo, hi) holds every version of every user key in it, so the per-key
   GC (filter_group) sees complete version groups. *)
let plan_subranges ~max_subcompactions task =
  let whole = [ (None, None) ] in
  if max_subcompactions <= 1 then whole
  else begin
    let anchors =
      List.concat_map
        (fun f ->
          List.map
            (fun (ik, bytes) -> (Internal_key.user_key_of ik, bytes))
            (Clsm_sstable.Table.index_anchors
               (Refcounted.value f).Table_file.table))
        (task.inputs_lo @ task.inputs_hi)
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let total = List.fold_left (fun a (_, w) -> a + w) 0 anchors in
    if total = 0 || List.length anchors < 2 then whole
    else begin
      let target = max 1 (total / max_subcompactions) in
      let cuts, _ =
        List.fold_left
          (fun (cuts, acc) (uk, w) ->
            let acc = acc + w in
            let due = (List.length cuts + 1) * target in
            if
              List.length cuts < max_subcompactions - 1
              && acc >= due
              && (match cuts with
                 | last :: _ -> String.compare uk last > 0
                 | [] -> true)
            then (uk :: cuts, acc)
            else (cuts, acc))
          ([], 0) anchors
      in
      match List.rev cuts with
      | [] -> whole
      | firsts ->
          (* Drop a cut equal to the globally smallest anchor: it would
             leave the first subrange empty. *)
          let smallest = fst (List.hd anchors) in
          let firsts = List.filter (fun b -> String.compare b smallest > 0) firsts in
          if firsts = [] then whole
          else
            let rec ranges lo = function
              | [] -> [ (lo, None) ]
              | b :: rest -> (lo, Some b) :: ranges (Some b) rest
            in
            ranges None firsts
    end
  end

(* One subrange's merge: fresh cursors over every input, clamped to the
   internal-key image of the user-key subrange. [Internal_key.make uk 0]
   is the smallest internal key of user key [uk] (timestamps sort
   ascending), so [lo] is inclusive of every version of its boundary key
   and [hi] excludes every version of its boundary key — no user key
   ever straddles two subranges. *)
let run_subrange ~cfg ~dir ?cache ?env ~alloc_number ~snapshots task (lo, hi) =
  let inputs = task.inputs_lo @ task.inputs_hi in
  let merged =
    Merge_iter.merge ~cmp:Internal_key.compare_encoded
      (List.map file_iter inputs)
  in
  let clamped =
    Iter.clamp ~cmp:Internal_key.compare_encoded
      ?lo:(Option.map (fun uk -> Internal_key.make uk 0) lo)
      ?hi:(Option.map (fun uk -> Internal_key.make uk 0) hi)
      merged
  in
  write_sorted_run ~cfg ~dir ?cache ?env ~alloc_number ~snapshots
    ~drop_tombstones:task.drop_tombstones clamped

let sequential_fan_out thunks =
  List.map (fun f -> try Ok (f ()) with e -> Error e) thunks

let run_parallel ~cfg ~dir ?cache ?env ~alloc_number ~snapshots
    ?(fan_out = sequential_fan_out) ~max_subcompactions task =
  match plan_subranges ~max_subcompactions task with
  | [] | [ _ ] -> (run ~cfg ~dir ?cache ?env ~alloc_number ~snapshots task, 1)
  | subranges ->
      let thunks =
        List.map
          (fun r () ->
            run_subrange ~cfg ~dir ?cache ?env ~alloc_number ~snapshots task r)
          subranges
      in
      let results = fan_out thunks in
      (match
         List.find_map (function Error e -> Some e | Ok _ -> None) results
       with
      | Some e ->
          (* Whole-job abort: subranges that failed already deleted their
             partials (write_sorted_run's cleanup); finished subranges'
             outputs are unpublished, so drop them too (best-effort — a
             survivor is an orphan the next recovery collects). *)
          List.iter
            (function
              | Ok files ->
                  List.iter
                    (fun f ->
                      Table_file.mark_obsolete (Refcounted.value f);
                      Refcounted.decr f)
                    files
              | Error _ -> ())
            results;
          raise e
      | None ->
          (* Subranges are disjoint and ascending, so concatenating their
             output lists in order yields the level's sorted run. *)
          ( List.concat_map (function Ok fs -> fs | Error _ -> []) results,
            List.length subranges ))

let same_file a b =
  (Refcounted.value a).Table_file.number = (Refcounted.value b).Table_file.number

let apply (current : Version.t) task ~outputs =
  let is_input f =
    List.exists (same_file f) task.inputs_lo
    || List.exists (same_file f) task.inputs_hi
  in
  let l0 =
    if task.src_level = 0 then List.filter (fun f -> not (is_input f)) current.Version.l0
    else current.Version.l0
  in
  let levels = Array.copy current.Version.levels in
  if task.src_level >= 1 then
    levels.(task.src_level - 1) <-
      List.filter (fun f -> not (is_input f)) levels.(task.src_level - 1);
  let target_idx = task.target_level - 1 in
  let kept_target =
    List.filter (fun f -> not (is_input f)) levels.(target_idx)
  in
  let sorted =
    List.sort
      (fun a b ->
        Internal_key.compare_encoded (Refcounted.value a).Table_file.smallest
          (Refcounted.value b).Table_file.smallest)
      (kept_target @ outputs)
  in
  levels.(target_idx) <- sorted;
  Version.create ~l0 ~levels
