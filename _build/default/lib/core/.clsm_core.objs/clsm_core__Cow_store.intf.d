lib/core/cow_store.mli: Store_sig
