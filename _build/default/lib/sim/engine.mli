(** Deterministic discrete-event simulation core: a virtual clock and a
    time-ordered event heap. Events scheduled for the same instant run in
    schedule order (a monotone sequence number breaks ties), so runs are
    exactly reproducible. *)

type t

val create : unit -> t
val now : t -> float
(** Current virtual time, seconds. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Run the thunk at the given absolute virtual time (>= now). *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** Run the thunk [delay] seconds from now. Negative delays clamp to 0. *)

val run_until : t -> float -> unit
(** Process events in time order until the clock would pass the horizon;
    the clock finishes at exactly the horizon. *)

val run_all : t -> unit
(** Drain every event. *)

val pending : t -> int
