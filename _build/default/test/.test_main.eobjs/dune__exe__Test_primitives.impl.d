test/test_primitives.ml: Active_set Alcotest Atomic Backoff Clsm_primitives Domain Fun Hashtbl List Monotonic_counter Mpmc_queue Rcu_box Refcounted Shared_lock Unix
