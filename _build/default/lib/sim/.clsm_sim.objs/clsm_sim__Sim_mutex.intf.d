lib/sim/sim_mutex.mli: Engine Proc
