(** Write-ahead-log writer.

    In [Async] mode (the common configuration, paper §2.3/§4) [append] only
    pushes the record onto a non-blocking queue — "a write only queues the
    request for logging" — so writes proceed at memory speed and a handful
    of recent writes may be lost on a crash. Queued records are drained to
    the file opportunistically by whichever appender wins a try-lock (group
    commit), or synchronously by {!flush}.

    In [Sync] mode every [append] writes and fsyncs before returning.

    In [Group] mode every [append] is durable before returning, but the
    write+fsync is leader-batched (RocksDB-style group commit): concurrent
    appenders enqueue their record with a ticket and park on a condition
    variable; the first waiter elects itself leader — no dedicated domain
    is spawned, so the scheme composes with the maintenance scheduler's
    pool and simulated environments — optionally sleeps [max_delay_us] to
    let more committers board, drains up to [max_batch] records, issues
    {e one} write and {e one} fsync through the env, publishes the durable
    ticket and wakes all riders. [max_batch] bounds a single batch;
    leftover records elect the next leader immediately.

    {b Failure model (fsync-gate).} All IO goes through the store's
    {!Clsm_env.Env.t}. The first append or fsync failure {e poisons} the
    writer permanently: the failing operation raises, and every later
    [append]/[flush]/[close] re-raises the original exception instead of
    silently retrying — once an fsync has failed, the durability of
    earlier acknowledged bytes is unknown and no further write may be
    acknowledged on this log. In [Group] mode a failed batch wakes every
    parked rider and each re-raises the original poisoning exception:
    none of the batch's records is acknowledged. [flush] after poisoning
    is idempotent — concurrent or repeated flushers all observe the same
    original exception and never touch the queue or the file again. *)

type t

type group_config = { max_batch : int; max_delay_us : int }
(** Leader accumulation policy: a batch closes at [max_batch] records, or
    when the [max_delay_us] accumulation window (0 = commit immediately)
    expires with fewer waiting. The window is adaptive — a leader opens
    it only when new records arrived while the previous round was inside
    its write+fsync, so an uncontended writer commits immediately and
    never pays the delay, while concurrent committers get a boarding
    window that lets the batch reach the full committer count instead of
    oscillating around half of it. *)

type mode = Sync | Async | Group of group_config

type observer = {
  on_group_commit : records:int -> unit;
      (** one durable write+fsync covering [records] records (1 in [Sync]
          mode) just completed *)
  on_commit_wait : ns:int -> unit;
      (** one durable [append] was acknowledged after waiting [ns]
          nanoseconds (commit-wait latency, [Sync] and [Group] modes) *)
}
(** Stats hooks, injected at {!create} so this layer stays independent of
    the core's stats registry. Callbacks run on the committing caller's
    thread and must be cheap and non-raising. *)

val create : ?mode:mode -> ?env:Clsm_env.Env.t -> ?observer:observer -> string -> t
(** Open (create/truncate) the log file at the given path.
    Default mode: [Async]; default env: {!Clsm_env.Env.unix}. *)

val append : t -> string -> unit
(** Log one record. Thread-safe; non-blocking in [Async] mode except for an
    opportunistic drain attempt; blocks until durable in [Sync] and
    [Group] modes. Raises {!Clsm_env.Env.Error} (or the original
    poisoning exception) on IO failure — in [Sync]/[Group] mode the
    record is then {e not} acknowledged. *)

val enqueue : t -> string -> unit
(** Queue one record with no durability work or acknowledgement,
    regardless of mode; a later {!flush} makes it durable. Recovery uses
    this to re-log a replayed memtable as one batch instead of paying a
    per-record fsync in durable modes. *)

val flush : t -> unit
(** Settle parked group riders (leader rounds, no accumulation delay),
    then drain the queue, write everything out and [fsync]. Raises on
    failure and poisons the writer; once poisoned, idempotently re-raises
    the original exception. *)

val close : t -> unit
(** {!flush} then close the file. The descriptor is always released, but a
    flush/fsync failure still propagates. *)

val poisoned : t -> bool
(** True once an IO failure has permanently disabled the writer (or
    {!abandon} simulated a crash under it). *)

val path : t -> string
val queued : t -> int
(** Records still in memory: async queue plus unpublished group tickets
    (test/stats). *)

val written_bytes : t -> int
(** Bytes fully appended to the file so far. The prefix
    [0, written_bytes t) consists of whole records with no append in
    flight, so a concurrent reader that stops there (scrub's WAL-tail
    check passes it as [max_bytes] to {!Wal_reader.read_records}) cannot
    observe a half-written record. Monotonic; reading it races only
    benignly (a stale value under-reports). *)

val abandon : t -> unit
(** Close the file without draining the queue or syncing — test hook that
    leaves the file exactly as a crash would. Poisons the writer with
    {!Clsm_env.Env.Crashed} and wakes parked group riders so in-flight
    commits raise (unacknowledged) instead of hanging. Never raises. *)
