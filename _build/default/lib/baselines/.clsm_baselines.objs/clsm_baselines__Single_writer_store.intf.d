lib/baselines/single_writer_store.mli: Clsm_core
