type t = int Atomic.t

let create v0 = Atomic.make v0
let get = Atomic.get
let inc_and_get t = Atomic.fetch_and_add t 1 + 1

let rec advance_to t v =
  let cur = Atomic.get t in
  if cur >= v then cur
  else if Atomic.compare_and_set t cur v then v
  else advance_to t v
