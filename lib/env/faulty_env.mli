(** Fault-injecting storage environment (deterministic, seeded).

    Wraps a base {!Env.t} and injects, on a schedule derived from the
    seed:

    - [fsync] failures (EIO, without syncing — durability unchanged);
    - torn/short writes: a prefix of the payload reaches the OS, then the
      append raises ENOSPC;
    - a hard {e crash point}: after [crash_after] mutating operations
      every operation raises {!Env.Crashed} and the directory image is
      frozen.

    After a crash, {!install_crash_image} rewrites the real directory to
    what a machine crash would have left: every file keeps its
    fsync-covered prefix plus a seed-chosen (possibly empty) slice of its
    unsynced tail. Reopening the store on that image with a fresh
    environment simulates a restart. *)

type t
(** The injection handle — shared state behind the {!Env.t} returned by
    {!env}. Thread-safe. *)

val create :
  ?seed:int ->
  ?fsync_fail_1_in:int ->
  ?append_fail_1_in:int ->
  ?corrupt_read_1_in:int ->
  ?base:Env.t ->
  unit ->
  t
(** Fault rates are "1 in N" per operation; [0] (default) disables that
    fault class. [corrupt_read_1_in] is silent bit-rot: affected
    random-access reads return the true bytes with one bit flipped. No
    crash point is armed initially. *)

val env : t -> Env.t
(** The wrapped environment to hand to the store via [Options.env]. *)

val arm : t -> crash_after:int -> unit
(** Crash after [crash_after] further mutating operations (appends,
    fsyncs, creates, renames, removes). [0] crashes on the very next
    one. *)

val disarm : t -> unit

val set_fault_rates :
  t ->
  ?fsync_fail_1_in:int ->
  ?append_fail_1_in:int ->
  ?corrupt_read_1_in:int ->
  unit ->
  unit

val crashed : t -> bool
val mutating_ops : t -> int
(** Mutating operations observed so far (crashed or not). *)

val injected_faults : t -> int
(** Probabilistic faults injected so far (crash points not included). *)

val injected_corruptions : t -> int
(** Silent corruptions injected so far (bit-rot reads plus post-crash
    scribbles). *)

val install_crash_image : ?scribble:bool -> t -> unit
(** Truncate every tracked file on the real file system to its durable
    prefix (+ torn tail slice). With [scribble] (default false) the kept
    unsynced slice is overwritten with seed-chosen garbage — sectors that
    reached the platter with the wrong contents. Call after the crash,
    before reopening the directory with a fresh environment. *)
