(* Analyzer diagnostics. Codes are stable identifiers the fixture suite
   and CI grep against:

   LC001  lock-order violation (acquisition not permitted by the spec's
          partial order, observed edge would invert or extend it)
   LC002  blocking call (Env IO, sleep, join) while holding a lock the
          spec forbids blocking under
   LC003  call site does not hold a lock the callee [@@requires_lock]s
   LC004  call site holds a lock the callee [@@excludes_locks]
   LC005  Atomic/Domain use outside the spec's allowlisted module set
   LC006  bare Mutex.lock without an immediate Fun.protect (exception
          can leak the held lock); use Mutex.protect
   LC007  Condition.wait on a foreign or unheld mutex, or while holding
          an additional lock
   LC008  acquiring (or calling a function that acquires) a lock the
          caller already holds — self-deadlock
   LC009  annotation names an unknown lock *)

type t = { file : string; line : int; code : string; msg : string }

let to_string d = Printf.sprintf "%s:%d: [%s] %s" d.file d.line d.code d.msg

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.code b.code | c -> c)
  | c -> c
