lib/workload/workload_spec.ml: Bytes Char Key_dist Printf Rng
