lib/workload/key_dist.mli: Rng
