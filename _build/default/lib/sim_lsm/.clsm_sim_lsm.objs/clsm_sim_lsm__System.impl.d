lib/sim_lsm/system.ml: String
