(** Single-writer lock-free append-only buffer.

    One buffer per domain: the owning domain appends, any domain may read.
    The lincheck history recorder uses one per worker so that recording an
    operation never takes a lock (a lock in the recorder would serialize the
    very interleavings the checker is trying to observe).

    Appends publish with a release store on an atomic head; readers snapshot
    with an acquire load, so a reader sees a consistent prefix of the
    writer's appends. Only the owning domain may call {!push}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Append one element. Wait-free; owner domain only. *)

val length : 'a t -> int
(** Elements published so far. *)

val to_list : 'a t -> 'a list
(** All published elements, oldest first. Safe from any domain; reflects a
    prefix of the owner's appends. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-first iteration over the published prefix. *)
