(* Chunked single-writer log. Slots are plain writes; [published] is the
   atomic head: the writer fills a slot and then bumps [published], the
   reader loads [published] and only reads slots below it, so every slot
   read happens-after the write that filled it (no data race). *)

let chunk_size = 1024

type 'a chunk = { data : 'a option array; next : 'a chunk option Atomic.t }

let make_chunk () =
  { data = Array.make chunk_size None; next = Atomic.make None }

type 'a t = {
  head : 'a chunk;
  mutable tail : 'a chunk; (* owner-domain only *)
  published : int Atomic.t;
}

let create () =
  let c = make_chunk () in
  { head = c; tail = c; published = Atomic.make 0 }

let push t x =
  let n = Atomic.get t.published in
  let off = n mod chunk_size in
  (if off = 0 && n > 0 then begin
     let c = make_chunk () in
     Atomic.set t.tail.next (Some c);
     t.tail <- c
   end);
  t.tail.data.(off) <- Some x;
  Atomic.set t.published (n + 1)

let length t = Atomic.get t.published

let iter f t =
  let n = Atomic.get t.published in
  let rec go chunk i =
    if i < n then begin
      let off = i mod chunk_size in
      (match chunk.data.(off) with Some x -> f x | None -> assert false);
      if off = chunk_size - 1 then
        match Atomic.get chunk.next with
        | Some c -> go c (i + 1)
        | None -> assert (i + 1 >= n)
      else go chunk (i + 1)
    end
  in
  go t.head 0

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
