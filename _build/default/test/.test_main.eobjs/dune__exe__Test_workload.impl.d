test/test_workload.ml: Alcotest Array Clsm_core Clsm_workload Driver Filename Hashtbl Histogram Key_dist List Option Printf Rng Store_ops String Unix Workload_spec
