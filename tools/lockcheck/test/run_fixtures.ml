(* Fixture harness for the lockcheck analyzer.

   Each fixture under ../fixtures marks its expected diagnostics with an
   end-of-line comment [(* BAD: LCxxx *)].  We run the analyzer over all
   fixtures with the fixture spec and require the produced set of
   (file, line, code) to match the marked set exactly, in both
   directions: a missed marker means a rule stopped firing, an unmarked
   diagnostic means a false positive crept in. *)

module SS = Set.Make (struct
  type t = string * int * string

  let compare = compare
end)

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let marker = "(* BAD: "

let expected_of_file file =
  List.concat
    (List.mapi
       (fun i line ->
         let rec find acc from =
           match
             if from > String.length line - String.length marker then None
             else
               let idx = ref None in
               (try
                  for j = from to String.length line - String.length marker do
                    if String.sub line j (String.length marker) = marker then begin
                      idx := Some j;
                      raise Exit
                    end
                  done
                with Exit -> ());
               !idx
           with
           | None -> acc
           | Some j ->
               let start = j + String.length marker in
               let fin = ref start in
               while
                 !fin < String.length line
                 && line.[!fin] <> ' '
                 && line.[!fin] <> '*'
               do
                 incr fin
               done;
               let code = String.sub line start (!fin - start) in
               find ((file, i + 1, code) :: acc) (start + 1)
         in
         find [] 0)
       (read_lines file))

let parse_source file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf file;
      Parse.implementation lexbuf)

let () =
  let spec_path = ref "" in
  let files = ref [] in
  Arg.parse
    [ ("--spec", Arg.Set_string spec_path, "PATH fixture lock spec") ]
    (fun f -> files := f :: !files)
    "run_fixtures --spec SPEC fixture.ml ...";
  let files = List.sort String.compare !files in
  if !spec_path = "" || files = [] then begin
    prerr_endline "run_fixtures: need --spec and at least one fixture";
    exit 2
  end;
  let spec = Lockspec.load !spec_path in
  let expected =
    SS.of_list (List.concat_map expected_of_file files)
  in
  let units = List.map (fun f -> (f, parse_source f)) files in
  let diags = Analyze.run spec units in
  let actual =
    SS.of_list
      (List.map (fun d -> (d.Diag.file, d.Diag.line, d.Diag.code)) diags)
  in
  let missed = SS.diff expected actual in
  let spurious = SS.diff actual expected in
  SS.iter
    (fun (f, l, c) ->
      Printf.printf "MISSED: %s:%d: expected %s, analyzer silent\n" f l c)
    missed;
  SS.iter
    (fun (f, l, c) ->
      let msg =
        match
          List.find_opt
            (fun d -> d.Diag.file = f && d.Diag.line = l && d.Diag.code = c)
            diags
        with
        | Some d -> d.Diag.msg
        | None -> ""
      in
      Printf.printf "SPURIOUS: %s:%d: unexpected %s %s\n" f l c msg)
    spurious;
  if not (SS.is_empty missed && SS.is_empty spurious) then exit 1;
  Printf.printf "fixtures OK: %d expected diagnostics matched across %d files\n"
    (SS.cardinal expected) (List.length files)
