(* The same store over the copy-on-write map component: demonstrates the
   paper's claim that the algorithm is decoupled from the in-memory data
   structure. Reads and scans are identical in character; writes and RMWs
   serialize on the component's mutex. *)

include Store.Make (Cow_memtable)
