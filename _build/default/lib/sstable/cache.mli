(** Sharded LRU cache for decoded table blocks.

    The disk component of an LSM-DS "utilizes a large RAM cache" (paper
    §2.3); with locality most reads that reach the disk component are served
    from here. Shards each have their own mutex, so concurrent readers only
    contend within a shard. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; weight : int }

val create : ?shards:int -> capacity:int -> weight:('a -> int) -> unit -> 'a t
(** [capacity] is the total weight budget across all shards (e.g. bytes);
    [weight] measures each entry. Default [shards] is 16. *)

val find : 'a t -> string -> 'a option
val insert : 'a t -> string -> 'a -> unit
(** Insert or refresh; evicts least-recently-used entries of the shard
    until it fits. Entries heavier than a whole shard are not cached. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t k f] returns the cached value or computes, caches and
    returns [f ()]. [f] may run more than once across racing callers; the
    cache keeps whichever lands last. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit
val stats : 'a t -> stats
val cardinal : 'a t -> int
