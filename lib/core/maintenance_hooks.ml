(* The merge hooks (paper Algorithm 1, beforeMerge/afterMerge) and the
   job layer the maintenance scheduler drives. Expensive work — merging
   sorted runs to disk — happens outside any lock, so a flush and
   several compactions on disjoint level ranges proceed in parallel
   across worker domains. The exclusive sections the paper requires
   survive unchanged: component swaps take the shared-exclusive lock in
   exclusive mode, and installs + manifest saves are additionally
   serialized by [t.install] so the manifest always describes a settled
   version and lands before the WAL it obsoletes is deleted. *)

module Make (M : Memtable_intf.S) = struct
  open Clsm_primitives
  open Clsm_lsm
  module Job = Clsm_maintenance.Job
  module Scheduler = Clsm_maintenance.Scheduler
  module Env = Clsm_env.Env
  module State = Store_state.Make (M)
  open State

  let src = Logs.Src.create "clsm.db.maintenance" ~doc:"cLSM store maintenance"

  module Log = (val Logs.src_log src : Logs.LOG)
  module Retry = Clsm_env.Retry_policy

  (* Maintenance-path IO commit points run under the configured retry
     policy: a transient fault (EINTR-ish fsync hiccup, brief ENOSPC)
     rides through a few backed-off attempts instead of degrading the
     store on first touch. Only [Env.Error] is retried — [Env.Crashed]
     is the test harness's kill switch and corruption is never
     transient. *)
  let with_retry t ~what f =
    Retry.run t.opts.Options.retry
      ~on_retry:(fun ~attempt ~delay e ->
        Stats.incr_io_retries t.stats;
        Log.warn (fun m ->
            m "%s failed (attempt %d), retrying in %.1fms: %s" what attempt
              (delay *. 1e3) (Printexc.to_string e)))
      f

  (* An environment failure inside maintenance (failed fsync, out of
     space) that survives the retry policy must not take down the worker
     domain or be retried forever: the store degrades to read-only —
     reads keep working off the installed components — and the error is
     surfaced through [health] and the [Degraded] exception on writes.

     A corruption verdict is different: the media lied, but only about
     one table. Quarantining it (containment) keeps the store writable;
     degrading would punish every key for one rotten block. *)
  let guard_io t ~what f =
    try f () with
    | (Env.Error _ | Env.Crashed) as e ->
        degrade t (what ^ " failed: " ^ Printexc.to_string e);
        Log.err (fun m ->
            m "%s failed, store degraded to read-only: %s" what
              (Printexc.to_string e))
    | Table_file.Corruption { number; detail; _ } ->
        ignore (enqueue_quarantine t ~number ~detail : bool);
        Log.err (fun m ->
            m "%s hit corrupt table %06d (%s): quarantine queued" what number
              detail)

  (* ---------- merge hooks ---------- *)

  (* beforeMerge: freeze Cm as C'm and open a fresh Cm (Algorithm 1 lines
     8-12). Returns false when a previous immutable component is still being
     merged. Caller holds the flush claim. *)
  let rotate t =
    match current_imm t with
    | Imm _ -> false
    | No_imm ->
        if M.is_empty (current_pm t).mem then false
        else begin
          let wal_number = alloc_file_number t () in
          let wal =
            if t.opts.Options.wal_enabled then
              Some
                (with_retry t ~what:"WAL create" (fun () ->
                     Clsm_wal.Wal_writer.create
                       ~mode:(Options.wal_mode t.opts)
                       ~observer:(Stats.wal_observer t.stats)
                       ~env:t.opts.Options.env
                       (Table_file.wal_path ~dir:t.opts.Options.dir wal_number)))
            else None
          in
          let fresh = { mem = M.create (); wal; wal_number } in
          Shared_lock.lock_exclusive t.lock;
          (* P'm <- Pm, then Pm <- new: readers traversing Pm then P'm may see
             the old component twice but can never miss it. *)
          let old_pm_cell = Rcu_box.peek t.pm in
          let imm_cell =
            Refcounted.create (Imm (Refcounted.value old_pm_cell))
          in
          let old_imm_cell = Rcu_box.swap t.pimm imm_cell in
          let old_pm_cell' = Rcu_box.swap t.pm (Refcounted.create fresh) in
          Shared_lock.unlock_exclusive t.lock;
          assert (old_pm_cell == old_pm_cell');
          Refcounted.retire old_imm_cell;
          Refcounted.retire old_pm_cell';
          Stats.incr_rotations t.stats;
          true
        end

  (* Merge C'm into the disk component, then afterMerge: install the new
     version and clear P'm (Algorithm 1 lines 13-17). Caller holds the
     flush claim; the install section takes [t.install]. *)
  let flush_imm t =
    match current_imm t with
    | No_imm -> false
    | Imm mc ->
        let snapshots = Clock.live_snapshots t.clock ~now:(Unix.gettimeofday ()) in
        let bytes = M.approximate_bytes mc.mem in
        (* Safe to retry wholesale: a failed attempt cleans up its partial
           outputs (Compaction.cleanup_failed), so each retry starts from
           a blank slate. *)
        let outputs =
          with_retry t ~what:"memtable flush write" (fun () ->
              Compaction.write_sorted_run ~cfg:t.opts.Options.lsm
                ~dir:t.opts.Options.dir ~cache:t.cache ~env:t.opts.Options.env
                ~alloc_number:(alloc_file_number t) ~snapshots
                ~drop_tombstones:false (M.iter mc.mem))
        in
        Mutex.lock t.install;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.install)
          (fun () ->
            Shared_lock.lock_exclusive t.lock;
            let cur = current_version t in
            let next =
              Version.create
                ~l0:(outputs @ cur.Version.l0)
                ~levels:cur.Version.levels
            in
            let old_pd =
              Rcu_box.swap t.pd
                (Refcounted.create ~release:Version.release next)
            in
            let old_imm = Rcu_box.swap t.pimm (Refcounted.create No_imm) in
            Shared_lock.unlock_exclusive t.lock;
            Refcounted.retire old_pd;
            Refcounted.retire old_imm;
            List.iter Refcounted.retire outputs;
            Stats.incr_flushes t.stats;
            Stats.add_bytes_flushed t.stats bytes;
            (* Durability order: the manifest that stops referencing the old
               WAL must land before the WAL disappears. *)
            with_retry t ~what:"manifest save (flush)" (fun () ->
                save_manifest t));
        (match mc.wal with
        | Some w ->
            let env = t.opts.Options.env in
            (* The manifest no longer references this log: failure to close
               or delete it only leaves an orphan that the next recovery
               collects, so it must not degrade or kill the worker. *)
            (try Clsm_wal.Wal_writer.close w
             with Env.Error _ | Env.Crashed -> ());
            (try Env.(env.remove) (Clsm_wal.Wal_writer.path w)
             with Env.Error _ | Env.Crashed -> ())
        | None -> ());
        Log.debug (fun m ->
            m "flushed %d bytes into %d L0 file(s)" bytes (List.length outputs));
        true

  (* Run one claimed compaction: merge outside any lock, then install.
     Caller owns the claim on the task's level range. *)
  let run_claimed_compaction t { State.task; pinned } =
    let snapshots = Clock.live_snapshots t.clock ~now:(Unix.gettimeofday ()) in
    let started = Unix.gettimeofday () in
    (* The expensive merge, range-partitioned across domains when the
       knob allows: each subrange gets its own clamped merge cursor and
       table writer, and the combined output list is installed below in
       one version swap + manifest save, exactly like a sequential
       merge — a crash can only ever observe all of it or none of it. *)
    let outputs, fanout =
      with_retry t ~what:"compaction merge" (fun () ->
          Compaction.run_parallel ~cfg:t.opts.Options.lsm
            ~dir:t.opts.Options.dir ~cache:t.cache ~env:t.opts.Options.env
            ~alloc_number:(alloc_file_number t) ~snapshots
            ~fan_out:Scheduler.fan_out
            ~max_subcompactions:t.opts.Options.max_subcompactions task)
    in
    let merge_duration_ns =
      int_of_float ((Unix.gettimeofday () -. started) *. 1e9)
    in
    let bytes =
      List.fold_left
        (fun a f -> a + (Refcounted.value f).Table_file.size)
        0
        (task.Compaction.inputs_lo @ task.Compaction.inputs_hi)
    in
    Mutex.lock t.install;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.install)
      (fun () ->
        Shared_lock.lock_exclusive t.lock;
        let cur = current_version t in
        let next = Compaction.apply cur task ~outputs in
        let old_pd =
          Rcu_box.swap t.pd (Refcounted.create ~release:Version.release next)
        in
        Shared_lock.unlock_exclusive t.lock;
        (if task.Compaction.src_level >= 1 then
           match Version.files_range task.Compaction.inputs_lo with
           | Some (_, largest) ->
               t.compact_pointers.(task.Compaction.src_level - 1) <- largest
           | None -> ());
        List.iter Refcounted.retire outputs;
        Stats.incr_compactions t.stats ~src_level:task.Compaction.src_level ();
        Stats.record_compaction_run t.stats ~fanout
          ~duration_ns:merge_duration_ns;
        Stats.add_bytes_compacted t.stats bytes;
        with_retry t ~what:"manifest save (compaction)" (fun () ->
            save_manifest t);
        (* Only after the manifest has stopped referencing the inputs may
           they become deletable: marking them obsolete (and dropping the
           old version's references) before a successful save could delete
           files a crash-recovered manifest still points at. *)
        List.iter
          (fun f -> Table_file.mark_obsolete (Refcounted.value f))
          (task.Compaction.inputs_lo @ task.Compaction.inputs_hi);
        Refcounted.retire old_pd);
    ignore pinned;
    Log.debug (fun m ->
        m "compacted level %d (%d bytes) into %d file(s), %d subcompaction(s)"
          task.Compaction.src_level bytes (List.length outputs) fanout)

  (* ---------- claims ---------- *)

  let flush_needed t =
    (match current_imm t with Imm _ -> true | No_imm -> false)
    || M.approximate_bytes (current_pm t).mem > t.opts.Options.memtable_bytes

  let try_claim_flush t =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        if c.flush_claimed then false
        else begin
          c.flush_claimed <- true;
          true
        end)

  let release_flush t =
    let c = t.claims in
    Mutex.protect c.cm (fun () -> c.flush_claimed <- false)

  (* Pick and claim a compaction whose level range is disjoint from every
     in-flight one. The version the task was picked from is pinned so its
     input files cannot be released before the task runs.

     Tombstone dropping is pinned while the quarantine ledger is
     non-empty: a quarantined table is invisible to the version, so
     "nothing deeper than the target" may be a fiction — dropping a
     tombstone whose only covered older values live in the quarantined
     table would resurrect the deleted key on readmission. The ledger is
     populated BEFORE the quarantine swap (see
     [apply_pending_quarantines]), so any pick that sees an empty ledger
     ran against a version still containing every quarantined table's
     data, and its [deeper_levels_empty] verdict is honest. *)
  let claim_compaction_locked t =
    let c = t.claims in
    if c.barrier then None
    else begin
      let busy l = List.exists (fun (s, tg) -> l = s || l = tg) c.busy_levels in
      let skip ~src ~target = busy src || busy target in
      let pin_tombstones =
        let h = t.heal in
        Mutex.protect h.hm (fun () ->
            h.pending_quarantine <> [] || h.quarantined <> [])
      in
      let cell = Rcu_box.acquire t.pd in
      match
        Compaction.pick ~cfg:t.opts.Options.lsm
          ~level_pointers:t.compact_pointers ~skip ~pin_tombstones
          (Refcounted.value cell)
      with
      | Some task ->
          let range =
            (task.Compaction.src_level, task.Compaction.target_level)
          in
          c.busy_levels <- range :: c.busy_levels;
          c.pending <- (range, { State.task; pinned = cell }) :: c.pending;
          Some
            (Job.Compact
               {
                 src_level = task.Compaction.src_level;
                 target_level = task.Compaction.target_level;
               })
      | None ->
          Refcounted.decr cell;
          None
    end
  [@@requires_lock cm]

  let release_compaction t range =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        c.busy_levels <- List.filter (fun r -> r <> range) c.busy_levels)

  let take_pending t range =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        match List.assoc_opt range c.pending with
        | Some cc ->
            c.pending <- List.remove_assoc range c.pending;
            Some cc
        | None -> None)

  (* ---------- self-healing: quarantine, scrub, repair ---------- *)

  let try_claim_repair t =
    let h = t.heal in
    Mutex.protect h.hm (fun () ->
        if h.repair_claimed then false
        else begin
          h.repair_claimed <- true;
          true
        end)

  let release_repair t =
    let h = t.heal in
    Mutex.protect h.hm (fun () -> h.repair_claimed <- false)

  let try_claim_scrub t =
    let h = t.heal in
    Mutex.protect h.hm (fun () ->
        if h.scrub_claimed then false
        else begin
          h.scrub_claimed <- true;
          true
        end)

  let release_scrub t =
    let h = t.heal in
    Mutex.protect h.hm (fun () -> h.scrub_claimed <- false)

  (* Containment: swap every table with a pending corruption verdict out
     of the read view and record it in the manifest, so neither this
     process nor a recovery after crash ever reads the rotten file again.
     Overlapping data in other tables keeps serving the key range; the
     store's health becomes [`Partial] (reported by the store layer from
     the quarantine ledger), not [`Degraded] — writes continue.

     Runs regardless of [auto_repair] (containment is not optional).
     Takes [t.install] then the exclusive lock, the same order as every
     other install. *)
  let apply_pending_quarantines t =
    let h = t.heal in
    let pending =
      Mutex.protect h.hm (fun () ->
          let p = h.pending_quarantine in
          h.pending_quarantine <- [];
          List.rev p)
    in
    if pending <> [] then begin
      Mutex.lock t.install;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.install)
        (fun () ->
          List.iter
            (fun (number, detail) ->
              (* Ledger first, swap second: tombstone dropping is pinned
                 while the ledger is non-empty, and a window where the
                 table is out of the read view but not yet in the ledger
                 would let a concurrent compaction pick see "nothing
                 deeper" where this table's data was. *)
              Mutex.protect h.hm (fun () ->
                  h.quarantined <- number :: h.quarantined);
              Shared_lock.lock_exclusive t.lock;
              match Version.remove_file (current_version t) number with
              | Some next ->
                  let old_pd =
                    Rcu_box.swap t.pd
                      (Refcounted.create ~release:Version.release next)
                  in
                  Shared_lock.unlock_exclusive t.lock;
                  Refcounted.retire old_pd;
                  Stats.incr_quarantined_tables t.stats;
                  Log.err (fun m ->
                      m "quarantined table %06d: %s" number detail)
              | None ->
                  (* already compacted away or quarantined *)
                  Shared_lock.unlock_exclusive t.lock;
                  Mutex.protect h.hm (fun () ->
                      h.quarantined <-
                        List.filter (fun n -> n <> number) h.quarantined))
            pending;
          with_retry t ~what:"manifest save (quarantine)" (fun () ->
              save_manifest t))
    end
  [@@excludes_locks]

  (* One scrub slice: re-verify up to [budget] blocks (checksums plus
     structural decode, bypassing the block cache) starting from the
     pass cursor; corrupt tables are enqueued for quarantine and the
     pass continues with the next file. When the file set is exhausted
     the active WAL tail is checked too and the pass closes, scheduling
     the next one [scrub_interval] later. Returns the problems found.
     Caller holds the scrub claim. *)
  let scrub_slice t ~budget =
    let h = t.heal in
    let problems = ref [] in
    let cell = Rcu_box.acquire t.pd in
    Fun.protect
      ~finally:(fun () -> Refcounted.decr cell)
      (fun () ->
        let v = Refcounted.value cell in
        let files =
          v.Version.l0 @ List.concat (Array.to_list v.Version.levels)
          |> List.map Refcounted.value
          |> List.sort (fun a b ->
                 Int.compare a.Table_file.number b.Table_file.number)
        in
        let resume_file, resume_block =
          Mutex.protect h.hm (fun () ->
              match h.scrub_cursor with Some c -> c | None -> (min_int, 0))
        in
        let used = ref 0 in
        let cursor = ref None in
        (try
           List.iter
             (fun tf ->
               let number = tf.Table_file.number in
               (* Files below the cursor were verified earlier this pass
                  (or compacted away, which also re-verified them). *)
               if number >= resume_file then begin
                 let rec step from_block =
                   if !used >= budget then begin
                     cursor := Some (number, from_block);
                     raise Exit
                   end;
                   match
                     Clsm_sstable.Table.scrub ~from_block
                       ~max_blocks:(budget - !used) tf.Table_file.table
                   with
                   | Ok { Clsm_sstable.Table.blocks_checked; next_block } -> (
                       used := !used + blocks_checked;
                       Stats.add_scrubbed_blocks t.stats blocks_checked;
                       match next_block with Some nb -> step nb | None -> ())
                   | Error detail ->
                       problems :=
                         Printf.sprintf "table %06d: %s" number detail
                         :: !problems;
                       ignore (enqueue_quarantine t ~number ~detail : bool)
                 in
                 step (if number = resume_file then resume_block else 0)
               end)
             files;
           (* Whole disk component verified: check the live WAL tail. A
              corrupt tail is not fatal — the memtable still holds every
              record — but it must be surfaced and retired by a flush
              before a crash would make recovery salvage short. The
              writer may have an append in flight, so only the prefix it
              has fully written is classified ([written_bytes] is read
              BEFORE the file): a racing half-written record can never
              masquerade as corruption. *)
           (match (current_pm t).wal with
            | Some w when not (Clsm_wal.Wal_writer.poisoned w) -> (
                let path = Clsm_wal.Wal_writer.path w in
                let synced = Clsm_wal.Wal_writer.written_bytes w in
                match
                  Clsm_wal.Wal_reader.read_records ~env:t.opts.Options.env
                    ~strict:false ~max_bytes:synced path
                with
                | _, Clsm_wal.Wal_reader.Corrupt_tail ->
                    let p = path ^ ": corrupt WAL tail" in
                    problems := p :: !problems;
                    Stats.incr_corruptions_detected t.stats;
                    Log.err (fun m -> m "scrub: %s" p);
                    wake_bg t
                | _, (Clsm_wal.Wal_reader.Clean | Clsm_wal.Wal_reader.Torn_tail)
                  ->
                    ())
            | Some _ | None -> ());
           cursor := None
         with Exit -> ());
        let finished = !cursor = None in
        Mutex.protect h.hm (fun () ->
            h.scrub_cursor <- !cursor;
            if finished then
              h.scrub_next_due <-
                Unix.gettimeofday () +. t.opts.Options.scrub_interval);
        (List.rev !problems, finished))

  (* A full scrub pass, run synchronously under the scrub claim the
     caller already holds. Restarts from the beginning regardless of any
     background cursor. *)
  let scrub_full_pass t =
    Mutex.protect t.heal.hm (fun () -> t.heal.scrub_cursor <- None);
    let problems, finished = scrub_slice t ~budget:max_int in
    assert finished;
    problems

  (* Block new compaction claims and wait out the in-flight ones, so the
     files a readmission collapse merges can be neither consumed nor
     overlapped at the bottom level by a concurrent compaction install.
     Flushes keep running: they only prepend strictly newer L0 files,
     which the collapse reads nothing from — its closure is computed
     against a version snapshot taken after the barrier is up. *)
  let with_compaction_barrier t f =
    let c = t.claims in
    Fun.protect
      ~finally:(fun () -> Mutex.protect c.cm (fun () -> c.barrier <- false))
      (fun () ->
        Mutex.protect c.cm (fun () -> c.barrier <- true);
        let rec wait () =
          if not (Mutex.protect c.cm (fun () -> c.busy_levels = [])) then begin
            Unix.sleepf 0.0005;
            wait ()
          end
        in
        wait ();
        f ())

  (* Readmission by range collapse. Where a re-verified table may rejoin
     the tree is constrained by [Version.get], which answers from the
     shallowest component holding the key: a table of old values spliced
     at L0 shadows newer versions at L1+ (stale reads, and — if a
     tombstone covering its puts was since dropped as "nothing deeper" —
     resurrected deletes), while one spliced deep is shadowed by older
     versions above it. We do not know the table's age relative to
     anything still in the tree — least of all its former L0 siblings,
     which interleave with it in time. The one placement needing no such
     trust is a collapse: merge it with every file whose user-key range
     overlaps it at ANY level, L0 included (closed transitively, so the
     whole range's history is one merge), and install the output at the
     bottom level. Afterwards no snapshot-time copy of an affected key
     survives anywhere shallower to shadow the merge's winner; files
     flushed after the closure's version snapshot are strictly newer
     than everything on disk at that point and win by timestamp.
     Tombstones ride through ([drop_tombstones:false]) and keep covering
     the readmitted puts. With nothing overlapping, the table is spliced
     directly into the bottom level — same placement, no IO.

     Caller holds the repair claim and the compaction barrier, and no
     locks. Raises [Env.Error] on transient IO trouble and
     {!Table_file.Corruption} naming whichever merge input (possibly the
     readmitted table itself) turned out rotten. *)
  let readmit_collapsed t ~number qcell =
    let uk_lo tf = Internal_key.user_key_of tf.Table_file.smallest in
    let uk_hi tf = Internal_key.user_key_of tf.Table_file.largest in
    (* Gather the transitive user-key-overlap closure across the whole
       on-disk tree — L0 and every level — and pin each file past the
       version cell it was found in. The barrier guarantees the closure
       stays live (and stays the closure) until the install below;
       flushes racing us only add files newer than this snapshot, which
       need no collapsing. *)
    let overlaps =
      let vcell = Rcu_box.acquire t.pd in
      Fun.protect
        ~finally:(fun () -> Refcounted.decr vcell)
        (fun () ->
          let v = Refcounted.value vcell in
          let deep =
            v.Version.l0 @ List.concat (Array.to_list v.Version.levels)
          in
          let q = Refcounted.value qcell in
          let rec close lo hi inputs =
            let extra =
              List.filter
                (fun f ->
                  let tf = Refcounted.value f in
                  tf.Table_file.smallest <> ""
                  && (not (List.memq f inputs))
                  && String.compare (uk_hi tf) lo >= 0
                  && String.compare (uk_lo tf) hi <= 0)
                deep
            in
            if extra = [] then inputs
            else
              let lo, hi =
                List.fold_left
                  (fun (lo, hi) f ->
                    let tf = Refcounted.value f in
                    ( (if String.compare (uk_lo tf) lo < 0 then uk_lo tf
                       else lo),
                      if String.compare (uk_hi tf) hi > 0 then uk_hi tf
                      else hi ))
                  (lo, hi) extra
              in
              close lo hi (inputs @ extra)
          in
          let inputs = close (uk_lo q) (uk_hi q) [] in
          List.iter
            (fun f ->
              (* live in the pinned version, so the count is positive *)
              let ok = Refcounted.try_incr f in
              assert ok)
            inputs;
          inputs)
    in
    Fun.protect
      ~finally:(fun () -> List.iter Refcounted.decr overlaps)
      (fun () ->
        let outputs =
          if overlaps = [] then [ qcell ]
          else begin
            let snapshots =
              Clock.live_snapshots t.clock ~now:(Unix.gettimeofday ())
            in
            let merged =
              Merge_iter.merge ~cmp:Internal_key.compare_encoded
                (List.map Version.iter_of_file (qcell :: overlaps))
            in
            Compaction.write_sorted_run ~cfg:t.opts.Options.lsm
              ~dir:t.opts.Options.dir ~cache:t.cache ~env:t.opts.Options.env
              ~alloc_number:(alloc_file_number t) ~snapshots
              ~drop_tombstones:false merged
          end
        in
        let consumed =
          List.map (fun f -> (Refcounted.value f).Table_file.number) overlaps
        in
        Mutex.lock t.install;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.install)
          (fun () ->
            Shared_lock.lock_exclusive t.lock;
            let cur = current_version t in
            let keep f =
              not (List.mem (Refcounted.value f).Table_file.number consumed)
            in
            (* Consumed L0 files leave; files flushed since the closure's
               snapshot stay put, shallower than (and newer than) the
               collapsed output. *)
            let l0 = List.filter keep cur.Version.l0 in
            let levels = Array.map (List.filter keep) cur.Version.levels in
            let bottom = Array.length levels - 1 in
            levels.(bottom) <-
              List.sort
                (fun a b ->
                  Internal_key.compare_encoded
                    (Refcounted.value a).Table_file.smallest
                    (Refcounted.value b).Table_file.smallest)
                (levels.(bottom) @ outputs);
            let next = Version.create ~l0 ~levels in
            let old_pd =
              Rcu_box.swap t.pd
                (Refcounted.create ~release:Version.release next)
            in
            Shared_lock.unlock_exclusive t.lock;
            (* The manifest written below must not list this number as
               quarantined AND present in the file set. *)
            Mutex.protect t.heal.hm (fun () ->
                t.heal.quarantined <-
                  List.filter (fun n -> n <> number) t.heal.quarantined);
            with_retry t ~what:"manifest save (readmission)" (fun () ->
                save_manifest t);
            (* Only after the manifest stopped referencing them may the
               merge inputs — and the now-rewritten quarantined original
               — become deletable. *)
            List.iter
              (fun f -> Table_file.mark_obsolete (Refcounted.value f))
              overlaps;
            if overlaps <> [] then
              Table_file.mark_obsolete (Refcounted.value qcell);
            Refcounted.retire old_pd);
        if overlaps <> [] then List.iter Refcounted.retire outputs)
  [@@excludes_locks]

  (* Repair out of [`Partial]. Every quarantined table gets a second
     chance: re-opened fresh and fully re-verified from disk. Rot that
     was transient (a bit flipped on some past read, not damage on the
     platter) re-verifies clean and the table is readmitted online via
     {!readmit_collapsed}. Persistent damage gets the file renamed aside
     as evidence (never deleted); its key ranges keep answering from
     surviving overlapping data. Either way the QUARANTINE record is
     resolved. A final full scrub pass vets the whole component before
     [`Ok] is honest — fresh verdicts it finds are queued and block the
     transition until the next round. Returns [`Nothing] (no quarantined
     files), [`Repaired], or [`Blocked] (transient IO trouble or
     still-rotten data; retried after the damping interval). *)
  let finalize_quarantined t =
    let h = t.heal in
    let nums = Mutex.protect h.hm (fun () -> h.quarantined) in
    if nums = [] then `Nothing
    else begin
      let env = t.opts.Options.env in
      let dir = t.opts.Options.dir in
      let blocked = ref false in
      let drop number =
        Mutex.protect h.hm (fun () ->
            h.quarantined <- List.filter (fun n -> n <> number) h.quarantined)
      in
      with_compaction_barrier t (fun () ->
          List.iter
            (fun number ->
              let path = Table_file.table_path ~dir number in
              let discard () =
                (try Env.(env.rename) ~src:path ~dst:(path ^ ".quarantined")
                 with Env.Error _ -> ());
                Log.warn (fun m ->
                    m
                      "repair: table %06d is damaged on disk, renamed aside \
                       as %s.quarantined"
                      number (Filename.basename path));
                drop number
              in
              if not (Env.(env.file_exists) path) then
                (* compacted away in a race before the quarantine swap;
                   the record is moot *)
                drop number
              else
                let reopened =
                  (* the footer/index/filter load can hit the same rot
                     the data blocks did *)
                  try
                    `Opened
                      (Table_file.open_number ~cache:t.cache ~env ~dir number)
                  with
                  | Env.Crashed as e -> raise e
                  | Env.Error _ -> `Io
                  | _ -> `Rotten
                in
                match reopened with
                | `Io -> blocked := true
                | `Rotten -> discard ()
                | `Opened tf -> (
                    match Clsm_sstable.Table.verify tf.Table_file.table with
                    | Ok _ when tf.Table_file.smallest = "" ->
                        (* An entry-less table holds nothing to restore. *)
                        (try Clsm_sstable.Table.close tf.Table_file.table
                         with _ -> ());
                        discard ()
                    | Ok _ -> (
                        let qcell =
                          Refcounted.create ~release:Table_file.release tf
                        in
                        match readmit_collapsed t ~number qcell with
                        | () ->
                            Refcounted.decr qcell;
                            Log.info (fun m ->
                                m
                                  "repair: table %06d re-verified clean, \
                                   readmitted via bottom-level collapse"
                                  number)
                        | exception Env.Crashed ->
                            Refcounted.decr qcell;
                            raise Env.Crashed
                        | exception Env.Error _ ->
                            Refcounted.decr qcell;
                            blocked := true
                        | exception
                            Table_file.Corruption { number = n; detail; _ }
                          ->
                            Refcounted.decr qcell;
                            if n = number then begin
                              Log.warn (fun m ->
                                  m "repair: table %06d still rotten: %s"
                                    number detail);
                              discard ()
                            end
                            else begin
                              (* a surviving merge input is rotten too:
                                 queue it and retry the whole round *)
                              ignore
                                (enqueue_quarantine t ~number:n ~detail
                                  : bool);
                              blocked := true
                            end)
                    | Error detail ->
                        (try Clsm_sstable.Table.close tf.Table_file.table
                         with _ -> ());
                        Log.warn (fun m ->
                            m "repair: table %06d still rotten: %s" number
                              detail);
                        discard ()
                    | exception Env.Crashed -> raise Env.Crashed
                    | exception Env.Error _ ->
                        (try Clsm_sstable.Table.close tf.Table_file.table
                         with _ -> ());
                        blocked := true))
            nums);
      (* Persist the purely-ledger resolutions (discards, moot records);
         readmissions already saved their manifest at install time. *)
      Mutex.lock t.install;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.install)
        (fun () ->
          with_retry t ~what:"manifest save (repair)" (fun () ->
              save_manifest t));
      if !blocked then `Blocked
      else begin
        (* Vet the whole component before claiming health. *)
        let rec claim_scrub_blocking () =
          if not (try_claim_scrub t) then begin
            Unix.sleepf 0.0005;
            claim_scrub_blocking ()
          end
        in
        claim_scrub_blocking ();
        match
          Fun.protect
            ~finally:(fun () -> release_scrub t)
            (fun () -> scrub_full_pass t)
        with
        | exception Env.Error _ -> `Blocked
        | [] ->
            wake_bg t;
            `Repaired
        | _problems ->
            apply_pending_quarantines t;
            `Blocked
      end
    end
  [@@excludes_locks]

  (* Repair out of [`Degraded]: prove the failure path works again by
     pushing everything buffered out to disk — clear any stuck immutable
     component, rotate the (possibly WAL-poisoned) memtable and flush
     it so a fresh log takes over, then commit a manifest as a final
     write-path probe. Success means the fault was transient after all:
     the degraded flag is lifted online, without reopening the store. *)
  let recover_from_degraded t =
    if Atomic.get t.degraded = None then `Nothing
    else if not (try_claim_flush t) then `Blocked (* flush in flight *)
    else
      Fun.protect
        ~finally:(fun () -> release_flush t)
        (fun () ->
          match
            ignore (flush_imm t : bool);
            ignore (rotate t : bool);
            ignore (flush_imm t : bool);
            Mutex.lock t.install;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.install)
              (fun () ->
                with_retry t ~what:"manifest save (repair probe)" (fun () ->
                    save_manifest t))
          with
          | () ->
              (match Atomic.get t.degraded with
              | Some reason ->
                  Log.info (fun m ->
                      m "repair: store restored to Ok (was degraded: %s)"
                        reason)
              | None -> ());
              Atomic.set t.degraded None;
              `Repaired
          | exception Env.Error _ -> `Blocked)

  (* The [Repair] job body. Containment always runs; the healing steps
     run when [auto_repair] is on or the caller forces them
     ([repair_now]). Caller holds the repair claim. *)
  let run_repair t ~force =
    let h = t.heal in
    apply_pending_quarantines t;
    if t.opts.Options.auto_repair || force then begin
      (* Damp the next attempt up front: a repair that fails (media
         still rotten, fault still live) must not hot-loop the pool. *)
      Mutex.protect h.hm (fun () ->
          h.repair_next_due <- Unix.gettimeofday () +. 1.0);
      let finalized = finalize_quarantined t in
      let recovered = recover_from_degraded t in
      (match finalized with
      | `Repaired -> Stats.incr_auto_repairs t.stats
      | `Nothing | `Blocked -> ());
      match recovered with
      | `Repaired -> Stats.incr_auto_repairs t.stats
      | `Nothing | `Blocked -> ()
    end
  [@@excludes_locks]

  (* ---------- the scheduler's job interface ---------- *)

  (* Claim the highest-priority runnable job, in [Job.priority] order:
     an unclaimed needed flush first (it is what frees WAL space), then
     Repair, then compactions (Compaction.pick orders them L0→L1 first,
     then shallowest over-budget level), then Scrub when nothing else
     wants the worker. A degraded store skips the flush check — its
     write path is exactly what is broken — and claims nothing but
     Repair, which is the way back out. *)
  let next t =
    if Atomic.get t.stop then None
    else begin
      let h = t.heal in
      let now = Unix.gettimeofday () in
      let flush =
        if is_degraded t then None
        else begin
          let c = t.claims in
          Mutex.protect c.cm (fun () ->
              if (not c.flush_claimed) && flush_needed t then begin
                c.flush_claimed <- true;
                Some Job.Flush
              end
              else None)
        end
      in
      match flush with
      | Some _ as j -> j
      | None -> (
          let repair =
            Mutex.protect h.hm (fun () ->
                if h.repair_claimed then None
                else begin
                  let contain = h.pending_quarantine <> [] in
                  let heal =
                    t.opts.Options.auto_repair
                    && now >= h.repair_next_due
                    && (h.quarantined <> [] || is_degraded t)
                  in
                  if contain || heal then begin
                    h.repair_claimed <- true;
                    Some Job.Repair
                  end
                  else None
                end)
          in
          match repair with
          | Some _ as j -> j
          | None ->
              if is_degraded t then None
              else begin
                let c = t.claims in
                let job =
                  Mutex.protect c.cm (fun () -> claim_compaction_locked t)
                in
                match job with
                | Some _ as j -> j
                | None ->
                    Mutex.protect h.hm (fun () ->
                        if
                          (not h.scrub_claimed)
                          && t.opts.Options.scrub_interval > 0.0
                          && now >= h.scrub_next_due
                        then begin
                          h.scrub_claimed <- true;
                          Some Job.Scrub
                        end
                        else None)
              end)
    end

  let run_flush t =
    Fun.protect
      ~finally:(fun () -> release_flush t)
      (fun () ->
        (* Clear a pending immutable component first, then rotate an
           over-budget memtable and flush the result. *)
        ignore (flush_imm t);
        if
          M.approximate_bytes (current_pm t).mem
          > t.opts.Options.memtable_bytes
        then if rotate t then ignore (flush_imm t))

  let rec run t (job : Job.t) =
    match job with
    (* [In_shard] is the router's tag; a single store never claims one.
       Unwrap defensively rather than crash a worker. *)
    | Job.In_shard { job; _ } -> run t job
    | Job.Flush -> guard_io t ~what:"memtable flush" (fun () -> run_flush t)
    | Job.Repair ->
        Fun.protect
          ~finally:(fun () -> release_repair t)
          (fun () ->
            guard_io t ~what:"repair" (fun () -> run_repair t ~force:false))
    | Job.Scrub ->
        Fun.protect
          ~finally:(fun () -> release_scrub t)
          (fun () ->
            guard_io t ~what:"scrub" (fun () ->
                try
                  ignore
                    (scrub_slice t ~budget:t.opts.Options.scrub_block_budget
                      : string list * bool)
                with Env.Error _ ->
                  (* A transient read failure is not corruption and must
                     not degrade the store off a hygiene pass: abandon
                     the slice (the cursor is unchanged) and push the
                     pass out a full interval so a persistently sick
                     disk cannot hot-loop the worker. *)
                  Mutex.protect t.heal.hm (fun () ->
                      t.heal.scrub_next_due <-
                        Unix.gettimeofday ()
                        +. Float.max 1.0 t.opts.Options.scrub_interval)))
    | Job.Compact { src_level; target_level } -> (
        let range = (src_level, target_level) in
        match take_pending t range with
        | None -> release_compaction t range
        | Some cc ->
            Fun.protect
              ~finally:(fun () ->
                release_compaction t range;
                Refcounted.decr cc.State.pinned)
              (fun () ->
                guard_io t ~what:"compaction" (fun () ->
                    run_claimed_compaction t cc)))

  let make_scheduler t =
    Scheduler.create ~num_workers:t.opts.Options.maintenance_workers
      ~tick_interval:t.opts.Options.maintenance_tick
      ~next:(fun () -> next t)
      ~run:(fun job -> run t job)
      ()

  (* ---------- foreground maintenance ---------- *)

  (* Synchronously rotate, flush and compact to quiescence, cooperating
     with (not fighting) the background workers: claims are shared, and
     quiescence means no claimable work and no claim in flight. *)
  let compact_now t =
    let rec claim_flush_blocking () =
      if not (try_claim_flush t) then begin
        Unix.sleepf 0.0005;
        claim_flush_blocking ()
      end
    in
    claim_flush_blocking ();
    Fun.protect
      ~finally:(fun () -> release_flush t)
      (fun () ->
        guard_io t ~what:"foreground flush" (fun () ->
            ignore (flush_imm t);
            ignore (rotate t);
            ignore (flush_imm t)));
    let c = t.claims in
    let rec drain () =
      let claimed =
        Mutex.protect c.cm (fun () ->
            (* A degraded store must not keep re-claiming the same doomed
               task: stop draining, the directory is as compacted as it
               will get. *)
            if is_degraded t then `Idle
            else
              match claim_compaction_locked t with
              | Some job -> `Run job
              | None ->
                  if c.busy_levels <> [] || c.flush_claimed then `Wait
                  else `Idle)
      in
      match claimed with
      | `Run job ->
          run t job;
          drain ()
      | `Wait ->
          Unix.sleepf 0.0005;
          drain ()
      | `Idle -> ()
    in
    drain ()
  [@@excludes_locks]

  (* Synchronous full scrub pass (the CLI's [scrub] and the tests call
     this): verify every sstable block plus the WAL tail, queue
     quarantines for anything rotten and apply them before returning.
     Returns human-readable problem descriptions, [] when clean. *)
  let scrub_now t =
    let rec claim () =
      if not (try_claim_scrub t) then begin
        Unix.sleepf 0.0005;
        claim ()
      end
    in
    claim ();
    let problems =
      Fun.protect
        ~finally:(fun () -> release_scrub t)
        (fun () -> scrub_full_pass t)
    in
    apply_pending_quarantines t;
    problems
  [@@excludes_locks]

  (* Synchronous repair attempt (the Repair job, forced): containment,
     quarantine finalization and the degraded-recovery probe all run
     even with [auto_repair] off. *)
  let repair_now t =
    let rec claim () =
      if not (try_claim_repair t) then begin
        Unix.sleepf 0.0005;
        claim ()
      end
    in
    claim ();
    Fun.protect
      ~finally:(fun () -> release_repair t)
      (fun () ->
        guard_io t ~what:"repair" (fun () -> run_repair t ~force:true))
  [@@excludes_locks]
end
