(** An immutable snapshot of the disk component [Cd]: the set of table
    files, organized as overlapping level-0 files (memtable flushes, newest
    first) plus non-overlapping sorted runs for levels 1 and deeper.

    Versions are immutable; flushes and compactions build a {e new} version
    sharing unchanged files with the old one. Files are reference-counted:
    {!create} takes a reference on every listed file, {!release} drops
    them, and a file marked obsolete is closed and deleted when its last
    version goes away. The current version pointer lives in an
    {!Clsm_primitives.Rcu_box} at the store layer — this is the paper's
    [Pd]. *)

type file = Table_file.t Clsm_primitives.Refcounted.t

type t = {
  l0 : file list; (* newest first *)
  levels : file list array; (* [levels.(i)] is level [i+1], sorted, disjoint *)
}

val empty : num_levels:int -> t

val create : l0:file list -> levels:file list array -> t
(** Takes a reference on every file (the caller keeps its own). *)

val release : t -> unit
(** Drop this version's references. *)

val with_new_l0 : t -> file -> t
(** New version with [file] prepended to level 0 (references taken as in
    {!create}). *)

val num_files : t -> int
val level_file_count : t -> int -> int
val level_bytes : t -> int -> int
(** [level] 0-based ([0] = L0, [i] = level i). *)

val total_bytes : t -> int

val get :
  ?on_corrupt:(Table_file.t -> string -> unit) ->
  t ->
  user_key:string ->
  snap_ts:int ->
  (int * Entry.t) option
(** Newest version of [user_key] with timestamp [<= snap_ts], searching L0
    (all files, maximum timestamp wins) and then each deeper level. Returns
    the timestamp and the stored entry — [Some (_, Tombstone)] means the
    key was deleted as of [snap_ts] and deeper components must not be
    consulted.

    A checksum/decode failure raises {!Table_file.Corruption}; with
    [on_corrupt] the failure is reported to the callback instead and the
    rotten file treated as a miss, so the remaining overlapping data
    still answers — possibly with an older committed version. Note that
    if the {e tombstone} itself lived in the rotten file, that older
    version is a key the caller committed a delete for: containment
    reads may observe deleted keys as live until repair resolves the
    quarantine. Callers that rely on strict delete semantics must treat
    [`Partial] store health as a reason to fail the read instead of
    serving around the rot. *)

val iter_of_file : file -> Iter.t
(** Iterator over one file that raises the typed {!Table_file.Corruption}
    (instead of the stringly sstable error) on checksum failure. *)

val iters : t -> Iter.t list
(** One iterator per L0 file (newest first) followed by one concatenated
    iterator per non-empty level; inputs for merged scans. Iterators
    raise the typed {!Table_file.Corruption} on checksum failure — a scan
    never silently skips a rotten key range. *)

val find_file : t -> int -> file option
(** The live file with the given table number, if any. *)

val remove_file : t -> int -> t option
(** A new version (references taken) without table [number] — the
    quarantine swap. [None] when the number is not in this version. *)

val overlapping : file list -> smallest:string -> largest:string -> file list
(** Files of a sorted level whose internal-key range intersects
    [[smallest, largest]]. *)

val files_range : file list -> (string * string) option
(** Union internal-key range of the given files. *)

val validate : t -> string list
(** Structural and content checks of the whole disk component: every table
    file verifies ({!Clsm_sstable.Table.verify}), and levels 1+ are sorted
    and disjoint. Returns human-readable problems (empty = healthy). *)
