lib/lsm/compaction.ml: Array Clsm_primitives Clsm_sstable Entry Int Internal_key Iter List Lsm_config Merge_iter Refcounted String Table_file Version
