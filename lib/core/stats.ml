(* Per-level compaction counters are a fixed-size array indexed by source
   level; 16 comfortably covers any [Lsm_config.num_levels] in use and
   keeps the counters allocation-free on the hot path. *)
let max_levels = 16

type t = {
  puts : int Atomic.t;
  gets : int Atomic.t;
  deletes : int Atomic.t;
  rmws : int Atomic.t;
  rmw_conflicts : int Atomic.t;
  snapshots_taken : int Atomic.t;
  scans : int Atomic.t;
  memtable_rotations : int Atomic.t;
  flushes : int Atomic.t;
  compactions : int Atomic.t;
  compactions_per_level : int Atomic.t array; (* by source level *)
  subcompactions : int Atomic.t;
  parallel_compactions : int Atomic.t;
  max_compaction_fanout : int Atomic.t;
  compaction_ns : int Atomic.t;
  bytes_flushed : int Atomic.t;
  bytes_compacted : int Atomic.t;
  write_stalls : int Atomic.t;
  stall_ns : int Atomic.t;
  write_slowdowns : int Atomic.t;
  slowdown_delay_ns : int Atomic.t;
  maintenance_wakeups : int Atomic.t;
}

type snapshot = {
  puts : int;
  gets : int;
  deletes : int;
  rmws : int;
  rmw_conflicts : int;
  snapshots_taken : int;
  scans : int;
  memtable_rotations : int;
  flushes : int;
  compactions : int;
  compactions_per_level : int array;
  subcompactions : int;
  parallel_compactions : int;
  max_compaction_fanout : int;
  compaction_ns : int;
  bytes_flushed : int;
  bytes_compacted : int;
  write_stalls : int;
  stall_ns : int;
  write_slowdowns : int;
  slowdown_delay_ns : int;
  maintenance_wakeups : int;
}

let create () : t =
  {
    puts = Atomic.make 0;
    gets = Atomic.make 0;
    deletes = Atomic.make 0;
    rmws = Atomic.make 0;
    rmw_conflicts = Atomic.make 0;
    snapshots_taken = Atomic.make 0;
    scans = Atomic.make 0;
    memtable_rotations = Atomic.make 0;
    flushes = Atomic.make 0;
    compactions = Atomic.make 0;
    compactions_per_level = Array.init max_levels (fun _ -> Atomic.make 0);
    subcompactions = Atomic.make 0;
    parallel_compactions = Atomic.make 0;
    max_compaction_fanout = Atomic.make 0;
    compaction_ns = Atomic.make 0;
    bytes_flushed = Atomic.make 0;
    bytes_compacted = Atomic.make 0;
    write_stalls = Atomic.make 0;
    stall_ns = Atomic.make 0;
    write_slowdowns = Atomic.make 0;
    slowdown_delay_ns = Atomic.make 0;
    maintenance_wakeups = Atomic.make 0;
  }

let incr_puts (t : t) = Atomic.incr t.puts
let incr_gets (t : t) = Atomic.incr t.gets
let incr_deletes (t : t) = Atomic.incr t.deletes
let incr_rmws (t : t) = Atomic.incr t.rmws
let incr_rmw_conflicts (t : t) = Atomic.incr t.rmw_conflicts
let incr_snapshots (t : t) = Atomic.incr t.snapshots_taken
let incr_scans (t : t) = Atomic.incr t.scans
let incr_rotations (t : t) = Atomic.incr t.memtable_rotations
let incr_flushes (t : t) = Atomic.incr t.flushes

let incr_compactions (t : t) ?src_level () =
  Atomic.incr t.compactions;
  match src_level with
  | Some l when l >= 0 && l < max_levels ->
      Atomic.incr t.compactions_per_level.(l)
  | Some _ | None -> ()

(* Parallelism/duration accounting for one finished compaction job, from
   whichever maintenance worker ran it; the max-fanout watermark is a CAS
   loop so concurrent jobs on disjoint level ranges cannot lose an
   update. *)
let record_compaction_run (t : t) ~fanout ~duration_ns =
  ignore (Atomic.fetch_and_add t.subcompactions (max 1 fanout));
  if fanout > 1 then Atomic.incr t.parallel_compactions;
  ignore (Atomic.fetch_and_add t.compaction_ns (max 0 duration_ns));
  let rec bump () =
    let cur = Atomic.get t.max_compaction_fanout in
    if fanout > cur && not (Atomic.compare_and_set t.max_compaction_fanout cur fanout)
    then bump ()
  in
  bump ()

let add_bytes_flushed (t : t) n = ignore (Atomic.fetch_and_add t.bytes_flushed n)
let add_bytes_compacted (t : t) n = ignore (Atomic.fetch_and_add t.bytes_compacted n)
let incr_write_stalls (t : t) = Atomic.incr t.write_stalls
let add_stall_ns (t : t) n = ignore (Atomic.fetch_and_add t.stall_ns (max 0 n))

let add_slowdown (t : t) ~delay_ns =
  Atomic.incr t.write_slowdowns;
  ignore (Atomic.fetch_and_add t.slowdown_delay_ns delay_ns)

let incr_maintenance_wakeups (t : t) = Atomic.incr t.maintenance_wakeups

let read (t : t) : snapshot =
  {
    puts = Atomic.get t.puts;
    gets = Atomic.get t.gets;
    deletes = Atomic.get t.deletes;
    rmws = Atomic.get t.rmws;
    rmw_conflicts = Atomic.get t.rmw_conflicts;
    snapshots_taken = Atomic.get t.snapshots_taken;
    scans = Atomic.get t.scans;
    memtable_rotations = Atomic.get t.memtable_rotations;
    flushes = Atomic.get t.flushes;
    compactions = Atomic.get t.compactions;
    compactions_per_level = Array.map Atomic.get t.compactions_per_level;
    subcompactions = Atomic.get t.subcompactions;
    parallel_compactions = Atomic.get t.parallel_compactions;
    max_compaction_fanout = Atomic.get t.max_compaction_fanout;
    compaction_ns = Atomic.get t.compaction_ns;
    bytes_flushed = Atomic.get t.bytes_flushed;
    bytes_compacted = Atomic.get t.bytes_compacted;
    write_stalls = Atomic.get t.write_stalls;
    stall_ns = Atomic.get t.stall_ns;
    write_slowdowns = Atomic.get t.write_slowdowns;
    slowdown_delay_ns = Atomic.get t.slowdown_delay_ns;
    maintenance_wakeups = Atomic.get t.maintenance_wakeups;
  }

let pp ppf s =
  let per_level =
    s.compactions_per_level |> Array.to_list
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) -> Printf.sprintf "L%d:%d" i n)
    |> String.concat " "
  in
  Format.fprintf ppf
    "@[<v>puts=%d gets=%d deletes=%d rmws=%d (conflicts=%d)@,\
     snapshots=%d scans=%d@,\
     rotations=%d flushes=%d compactions=%d%s@,\
     subcompactions=%d parallel=%d max_fanout=%d compaction_ms=%.3f@,\
     bytes_flushed=%d bytes_compacted=%d@,\
     stalls=%d stall_ms=%.3f slowdowns=%d slowdown_delay_ms=%.3f wakeups=%d@]"
    s.puts s.gets s.deletes s.rmws s.rmw_conflicts s.snapshots_taken s.scans
    s.memtable_rotations s.flushes s.compactions
    (if per_level = "" then "" else " [" ^ per_level ^ "]")
    s.subcompactions s.parallel_compactions s.max_compaction_fanout
    (float_of_int s.compaction_ns /. 1e6)
    s.bytes_flushed s.bytes_compacted s.write_stalls
    (float_of_int s.stall_ns /. 1e6)
    s.write_slowdowns
    (float_of_int s.slowdown_delay_ns /. 1e6)
    s.maintenance_wakeups

let to_json (s : snapshot) =
  let b = Buffer.create 512 in
  let field name v = Buffer.add_string b (Printf.sprintf "\"%s\":%d," name v) in
  Buffer.add_char b '{';
  field "puts" s.puts;
  field "gets" s.gets;
  field "deletes" s.deletes;
  field "rmws" s.rmws;
  field "rmw_conflicts" s.rmw_conflicts;
  field "snapshots" s.snapshots_taken;
  field "scans" s.scans;
  field "memtable_rotations" s.memtable_rotations;
  field "flushes" s.flushes;
  field "compactions" s.compactions;
  Buffer.add_string b "\"compactions_per_level\":[";
  Array.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int n))
    s.compactions_per_level;
  Buffer.add_string b "],";
  field "subcompactions" s.subcompactions;
  field "parallel_compactions" s.parallel_compactions;
  field "max_compaction_fanout" s.max_compaction_fanout;
  field "compaction_ns" s.compaction_ns;
  field "bytes_flushed" s.bytes_flushed;
  field "bytes_compacted" s.bytes_compacted;
  field "write_stalls" s.write_stalls;
  field "stall_ns" s.stall_ns;
  field "write_slowdowns" s.write_slowdowns;
  field "slowdown_delay_ns" s.slowdown_delay_ns;
  Buffer.add_string b
    (Printf.sprintf "\"maintenance_wakeups\":%d}" s.maintenance_wakeups);
  Buffer.contents b
