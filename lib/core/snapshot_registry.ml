type entry = { ts : int; expires : float option; mutable live : bool }
type handle = entry
type t = { mutex : Mutex.t; mutable entries : entry list }

let create () = { mutex = Mutex.create (); entries = [] }

let with_lock t f = Mutex.protect t.mutex f

let expired now entry =
  (not entry.live)
  || match entry.expires with Some e -> now >= e | None -> false

let install t ?ttl ~now ts =
  let entry =
    { ts; expires = Option.map (fun d -> now +. d) ttl; live = true }
  in
  with_lock t (fun () -> t.entries <- entry :: t.entries);
  entry

let remove t handle =
  with_lock t (fun () -> handle.live <- false)

let prune_locked t now =
  t.entries <- List.filter (fun e -> not (expired now e)) t.entries
[@@requires_lock registry]

let live_timestamps t ~now =
  with_lock t (fun () ->
      prune_locked t now;
      List.map (fun e -> e.ts) t.entries |> List.sort Int.compare)

let min_timestamp t ~now =
  match live_timestamps t ~now with [] -> None | ts :: _ -> Some ts

let cardinal t = with_lock t (fun () -> List.length t.entries)
