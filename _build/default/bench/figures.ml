(* Regenerates every figure of the paper's evaluation (§5) from the
   discipline-level simulator, printing the same series each figure plots.
   Absolute numbers come from calibrated service times; orderings, knees
   and ratios come from the modeled synchronization structures. *)

open Clsm_sim_lsm
open Clsm_workload

let kops v = v /. 1000.0
let us v = v *. 1e6

let line fmt = Printf.printf (fmt ^^ "\n%!")

let header title note =
  line "";
  line "== %s ==" title;
  if note <> "" then line "   %s" note

(* throughput table: rows = systems, columns = thread counts *)
let throughput_table ~threads ~label rows =
  line "%-18s %s" ("threads ->")
    (String.concat "" (List.map (Printf.sprintf "%10d") threads));
  List.iter
    (fun (name, series) ->
      line "%-18s %s" name
        (String.concat ""
           (List.map (fun v -> Printf.sprintf "%10.0f" v) series)))
    rows;
  line "   (%s)" label

let latency_table rows =
  line "%-18s %10s %12s %12s" "system" "threads" "Kops/s" "p90 (us)";
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (threads, thr, p90) ->
          line "%-18s %10d %12.0f %12.1f" name threads (kops thr) (us p90))
        points)
    rows

let run_point ?duration ?memtable_bytes ?compaction_threads
    ?write_amplification ?throttle ?prefill ?initial_l0 ~system ~threads spec =
  Experiment.run
    (Experiment.config ?duration ?memtable_bytes ?compaction_threads
       ?write_amplification ?throttle ?prefill ?initial_l0 ~system ~threads
       spec)

let sweep ?duration ?memtable_bytes ?compaction_threads ?write_amplification
    ?throttle ?prefill ?initial_l0 ~threads ~systems spec =
  List.map
    (fun system ->
      ( System.name system,
        List.map
          (fun n ->
            run_point ?duration ?memtable_bytes ?compaction_threads
              ?write_amplification ?throttle ?prefill ?initial_l0 ~system
              ~threads:n spec)
          threads ))
    systems

let default_threads = [ 1; 2; 4; 8; 16 ]
let space = 10_000_000
let duration = 0.4

(* ---------- Figure 1 ---------- *)

let fig1 () =
  header "Figure 1: partitioning vs concurrency (production workload)"
    "resource-isolated: 4 partitions x (threads/4); resource-shared: cLSM, 1 partition";
  let spec = Workload_spec.production ~read_ratio:0.90 ~space in
  let threads = [ 4; 8; 16 ] in
  let partitioned system =
    List.map
      (fun n ->
        Experiment.run_partitioned ~partitions:4
          (Experiment.config ~duration ~system ~threads:n spec))
      threads
  in
  let shared =
    List.map (fun n -> run_point ~duration ~system:System.Clsm ~threads:n spec) threads
  in
  throughput_table ~threads ~label:"Kops/s"
    [
      ( "LevelDB x4",
        List.map (fun (o : Experiment.outcome) -> kops o.throughput)
          (partitioned System.Leveldb) );
      ( "HyperLevelDB x4",
        List.map (fun (o : Experiment.outcome) -> kops o.throughput)
          (partitioned System.Hyperleveldb) );
      ( "cLSM x1",
        List.map (fun (o : Experiment.outcome) -> kops o.throughput) shared );
    ]

(* ---------- Figure 5: write performance ---------- *)

let write_spec = Workload_spec.write_only ~space

let fig5_data =
  lazy (sweep ~duration ~threads:default_threads ~systems:System.all write_spec)

let fig5a () =
  header "Figure 5a: write throughput (100% writes, uniform keys)" "";
  throughput_table ~threads:default_threads ~label:"Kops/s"
    (List.map
       (fun (name, outs) ->
         (name, List.map (fun (o : Experiment.outcome) -> kops o.throughput) outs))
       (Lazy.force fig5_data))

let fig5b () =
  header "Figure 5b: write throughput vs 90th-percentile latency" "";
  latency_table
    (List.map
       (fun (name, outs) ->
         ( name,
           List.map
             (fun (o : Experiment.outcome) -> (o.threads, o.throughput, o.p90))
             outs ))
       (Lazy.force fig5_data))

(* ---------- Figure 6: read performance ---------- *)

let read_spec = Workload_spec.read_only_skewed ~space
let read_threads = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let fig6_data =
  lazy (sweep ~duration ~threads:read_threads ~systems:System.all read_spec)

let fig6a () =
  header "Figure 6a: read throughput (100% reads, 90% from popular blocks)" "";
  throughput_table ~threads:read_threads ~label:"Kops/s"
    (List.map
       (fun (name, outs) ->
         (name, List.map (fun (o : Experiment.outcome) -> kops o.throughput) outs))
       (Lazy.force fig6_data))

let fig6b () =
  header "Figure 6b: read throughput vs 90th-percentile latency" "";
  latency_table
    (List.map
       (fun (name, outs) ->
         ( name,
           List.map
             (fun (o : Experiment.outcome) -> (o.threads, o.throughput, o.p90))
             outs ))
       (Lazy.force fig6_data))

(* ---------- Figure 7: mixed workloads ---------- *)

let fig7a () =
  header "Figure 7a: mixed 50% read / 50% write throughput" "";
  let spec = Workload_spec.mixed_read_write ~space in
  throughput_table ~threads:default_threads ~label:"Kops/s"
    (List.map
       (fun (name, outs) ->
         (name, List.map (fun (o : Experiment.outcome) -> kops o.throughput) outs))
       (sweep ~duration ~threads:default_threads ~systems:System.all spec))

let fig7b () =
  header "Figure 7b: mixed 50% scan / 50% write throughput (keys/s)"
    "scan lengths U[10,20]; bLSM omitted (no consistent scans)";
  let spec = Workload_spec.mixed_scan_write ~space in
  let systems =
    [ System.Rocksdb; System.Leveldb; System.Hyperleveldb; System.Clsm ]
  in
  throughput_table ~threads:default_threads ~label:"Kkeys/s"
    (List.map
       (fun (name, outs) ->
         ( name,
           List.map (fun (o : Experiment.outcome) -> kops o.keys_per_sec) outs ))
       (sweep ~duration ~threads:default_threads ~systems spec))

(* ---------- Figure 8: memory component size ---------- *)

let fig8 () =
  header "Figure 8: mixed read/write throughput vs memtable size (8 threads)" "";
  let spec = Workload_spec.mixed_read_write ~space in
  let sizes_mb = [ 1; 16; 32; 64; 128; 256; 512 ] in
  let row system =
    List.map
      (fun mb ->
        (* long enough that L0 pile-up and write stalls reach steady state
           at small memtable sizes *)
        let o =
          run_point ~duration:5.0 ~memtable_bytes:(mb * 1024 * 1024)
            ~system ~threads:8 spec
        in
        kops o.Experiment.throughput)
      sizes_mb
  in
  line "%-18s %s" "memtable MB ->"
    (String.concat "" (List.map (Printf.sprintf "%10d") sizes_mb));
  List.iter
    (fun sys -> line "%-18s %s" (System.name sys)
        (String.concat ""
           (List.map (Printf.sprintf "%10.0f") (row sys))))
    [ System.Leveldb; System.Clsm ];
  line "   (Kops/s)"

(* ---------- Figure 9: read-modify-write ---------- *)

let fig9 () =
  header "Figure 9: RMW (put-if-absent) throughput"
    "cLSM Algorithm 3 vs LevelDB augmented with lock striping";
  let spec = Workload_spec.rmw_only ~space in
  throughput_table ~threads:default_threads ~label:"Kops/s"
    (List.map
       (fun (name, outs) ->
         (name, List.map (fun (o : Experiment.outcome) -> kops o.throughput) outs))
       (sweep ~duration ~threads:default_threads
          ~systems:[ System.Striped_rmw; System.Clsm ]
          spec))

(* ---------- Figure 10: production workloads ---------- *)

let fig10 () =
  let datasets =
    [ ("Dataset 1", 0.93); ("Dataset 2", 0.85); ("Dataset 3", 0.96); ("Dataset 4", 0.86) ]
  in
  List.iter
    (fun (name, read_ratio) ->
      header
        (Printf.sprintf "Figure 10 (%s): production workload, %.0f%% reads"
           name (read_ratio *. 100.))
        "40B keys, 1KB values, heavy-tail popularity";
      let spec = Workload_spec.production ~read_ratio ~space in
      let systems =
        [ System.Rocksdb; System.Leveldb; System.Hyperleveldb; System.Clsm ]
      in
      throughput_table ~threads:default_threads ~label:"Kops/s"
        (List.map
           (fun (sname, outs) ->
             ( sname,
               List.map (fun (o : Experiment.outcome) -> kops o.throughput) outs ))
           (sweep ~duration ~threads:default_threads ~systems spec)))
    datasets

(* ---------- Figure 11: heavy disk-compaction ---------- *)

let fig11 () =
  header "Figure 11: heavy disk-compaction (RocksDB benchmark)"
    "1B-item store under constant update load; disk-bound; RocksDB uses 4 compaction threads";
  let spec = Workload_spec.disk_heavy ~space:1_000_000_000 in
  let threads = default_threads in
  let point system compaction_threads n =
    (* long horizon: multi-threaded compaction needs time to drain backlog *)
    run_point ~duration:10.0 ~write_amplification:25.0 ~throttle:true
      ~initial_l0:10 ~compaction_threads ~system ~threads:n spec
  in
  throughput_table ~threads ~label:"Kops/s"
    [
      ( "RocksDB",
        List.map
          (fun n -> kops (point System.Rocksdb 4 n).Experiment.throughput)
          threads );
      ( "cLSM",
        List.map
          (fun n -> kops (point System.Clsm 1 n).Experiment.throughput)
          threads );
    ]

(* Extension beyond the paper: the YCSB core workloads through the same
   simulator, cLSM vs the LevelDB family at 8 threads. *)
let ycsb () =
  header "Extension: YCSB core workloads (8 threads)" "Zipf(0.99), 1KB values";
  let systems = [ System.Leveldb; System.Hyperleveldb; System.Clsm ] in
  line "%-26s %s" "workload"
    (String.concat "" (List.map (fun s -> Printf.sprintf "%14s" (System.name s)) systems));
  List.iter
    (fun (name, spec) ->
      let cells =
        List.map
          (fun system ->
            let o = run_point ~duration:0.3 ~system ~threads:8 spec in
            Printf.sprintf "%14.0f" (kops o.Experiment.keys_per_sec))
          systems
      in
      line "%-26s %s" name (String.concat "" cells))
    (Clsm_workload.Ycsb.all ~space:10_000_000);
  line "   (Kkeys/s; scans counted per key returned)"

let all_figures =
  [
    ("fig1", fig1);
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("ycsb", ycsb);
  ]

let run name =
  match List.assoc_opt name all_figures with
  | Some f -> f ()
  | None ->
      line "unknown figure %S; available: %s" name
        (String.concat ", " (List.map fst all_figures))

let run_all () = List.iter (fun (_, f) -> f ()) all_figures
