(* State word: 0 = free, 1 = exclusive held, 2k (k>0) = k shared holders.
   [waiting_exclusive] > 0 makes new shared lockers back off, giving the
   merge thread priority (required by the paper to avoid merge starvation). *)

type t = { state : int Atomic.t; waiting_exclusive : int Atomic.t }

let create () = { state = Atomic.make 0; waiting_exclusive = Atomic.make 0 }

let lock_shared t =
  let b = Backoff.create () in
  let rec loop () =
    if Atomic.get t.waiting_exclusive > 0 then begin
      Backoff.once b;
      loop ()
    end
    else
      let s = Atomic.get t.state in
      if s land 1 = 1 then begin
        Backoff.once b;
        loop ()
      end
      else if Atomic.compare_and_set t.state s (s + 2) then ()
      else loop ()
  in
  loop ()

let unlock_shared t =
  let old = Atomic.fetch_and_add t.state (-2) in
  assert (old >= 2 && old land 1 = 0)

let lock_exclusive t =
  Atomic.incr t.waiting_exclusive;
  let b = Backoff.create () in
  let rec loop () =
    if Atomic.compare_and_set t.state 0 1 then ()
    else begin
      Backoff.once b;
      loop ()
    end
  in
  loop ();
  Atomic.decr t.waiting_exclusive

let unlock_exclusive t =
  let ok = Atomic.compare_and_set t.state 1 0 in
  assert ok

let with_shared t f =
  lock_shared t;
  match f () with
  | v ->
      unlock_shared t;
      v
  | exception e ->
      unlock_shared t;
      raise e

let with_exclusive t f =
  lock_exclusive t;
  match f () with
  | v ->
      unlock_exclusive t;
      v
  | exception e ->
      unlock_exclusive t;
      raise e

let holders t =
  match Atomic.get t.state with
  | 0 -> `Free
  | 1 -> `Exclusive
  | s -> `Shared (s lsr 1)
