(* A web-serving partition server in miniature (§5.2): preload a keyspace,
   then serve a read-dominated production-profile workload (heavy-tail key
   popularity, 40-byte keys, 1KB values) from concurrent domains, and print
   the operational metrics a serving system watches — throughput, tail
   latency, compaction activity, cache hit rate.

   Run with:  dune exec examples/web_serving.exe *)

open Clsm_workload

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "clsm_webserving" in
  let opts =
    {
      (Clsm_core.Options.default ~dir) with
      Clsm_core.Options.memtable_bytes = 8 * 1024 * 1024;
      cache_bytes = 64 * 1024 * 1024;
    }
  in
  let db = Clsm_core.Db.open_store opts in
  let store = Store_ops.of_clsm db in
  let spec = Workload_spec.production ~read_ratio:0.93 ~space:20_000 in

  print_endline "preloading 20k items (40B keys / 1KB values)...";
  Driver.preload store spec ~count:20_000;

  print_endline "serving production workload (93% reads, heavy-tail keys)...";
  List.iter
    (fun threads ->
      let r = Driver.run ~threads ~ops_per_thread:15_000 store spec in
      Format.printf "  threads=%d  %a@." threads Driver.pp_result r)
    [ 1; 2 ];

  let st = Clsm_core.Db.stats db in
  Format.printf "@[<v>store counters:@,  %a@]@." Clsm_core.Stats.pp st;
  let cs = Clsm_core.Db.cache_stats db in
  let total = cs.Clsm_sstable.Cache.hits + cs.Clsm_sstable.Cache.misses in
  if total > 0 then
    Format.printf "block cache hit rate: %.1f%% (%d lookups)@."
      (100.0 *. float_of_int cs.Clsm_sstable.Cache.hits /. float_of_int total)
      total;
  Format.printf "files per level: %a@."
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ")
       Format.pp_print_int)
    (Clsm_core.Db.level_file_counts db);
  store.Store_ops.close ();
  print_endline "web_serving: OK"
