type 'a t = ('a -> unit) -> unit

let return x k = k x
let bind p f k = p (fun v -> (f v) k)
let ( let* ) = bind
let map f p k = p (fun v -> k (f v))

let delay engine d k = Engine.schedule_after engine d (fun () -> k ())
let spawn p = p ignore

let rec rec_loop body state = (body state) (fun state' -> rec_loop body state')

let yield engine k = Engine.schedule_after engine 0.0 (fun () -> k ())
