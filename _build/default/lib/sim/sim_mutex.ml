type t = {
  engine : Engine.t;
  mutable held : bool;
  waiters : (float * (unit -> unit)) Queue.t; (* enqueue time, continuation *)
  mutable acqs : int;
  mutable wait_time : float;
}

let create engine =
  { engine; held = false; waiters = Queue.create (); acqs = 0; wait_time = 0.0 }

let lock t k =
  if not t.held then begin
    t.held <- true;
    t.acqs <- t.acqs + 1;
    k ()
  end
  else Queue.push (Engine.now t.engine, k) t.waiters

let unlock t =
  if not t.held then invalid_arg "Sim_mutex.unlock: not held";
  if Queue.is_empty t.waiters then t.held <- false
  else begin
    let enqueued, k = Queue.pop t.waiters in
    t.acqs <- t.acqs + 1;
    t.wait_time <- t.wait_time +. (Engine.now t.engine -. enqueued);
    (* Hand-off at the current instant. *)
    Engine.schedule_after t.engine 0.0 k
  end

let acquisitions t = t.acqs
let total_wait t = t.wait_time

let waiting t = Queue.length t.waiters
