(** Framing of write-ahead-log records:

    {v record := crc32c(masked, fixed32) length(fixed32) payload v}

    The CRC covers the payload. A torn tail (crash mid-write) is detected by
    a short read or CRC mismatch and treated as end-of-log. *)

val header_length : int

val encode : Buffer.t -> string -> unit
(** Append one framed record to [buf]. *)

val decode : string -> pos:int -> [ `Record of string * int | `End | `Torn ]
(** [decode s ~pos] reads the record starting at [pos]. [`Record (payload,
    next_pos)] on success; [`End] exactly at end of input; [`Torn] on a
    truncated or corrupt record (recovery stops there). *)
