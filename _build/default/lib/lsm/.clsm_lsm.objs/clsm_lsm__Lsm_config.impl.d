lib/lsm/lsm_config.ml:
