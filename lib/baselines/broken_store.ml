module SMap = Map.Make (String)

type t = {
  map : string SMap.t Atomic.t;
  mutable stale : string SMap.t; (* racy by design: plain field *)
  reads : int Atomic.t;
  refresh_every : int;
  race_window : float;
}

let create ?(refresh_every = 4) ?(race_window = 2e-4) () =
  {
    map = Atomic.make SMap.empty;
    stale = SMap.empty;
    reads = Atomic.make 0;
    refresh_every;
    race_window;
  }

(* puts and deletes are correct (CAS loop) — the bugs live in the read and
   RMW paths, so the checker has to localize them rather than flag
   everything. *)
let rec update t f =
  let cur = Atomic.get t.map in
  if not (Atomic.compare_and_set t.map cur (f cur)) then update t f

let put t ~key ~value = update t (SMap.add key value)
let delete t ~key = update t (SMap.remove key)

let get t key =
  let n = Atomic.fetch_and_add t.reads 1 in
  if n mod t.refresh_every = 0 then t.stale <- Atomic.get t.map;
  SMap.find_opt key t.stale

type rmw_decision = Clsm_core.Db.rmw_decision = Set of string | Remove | Abort

let rmw t ~key f =
  let m = Atomic.get t.map in
  let pre = SMap.find_opt key m in
  match f pre with
  | Abort -> pre
  | decision ->
      if t.race_window > 0. then Unix.sleepf t.race_window;
      let m' =
        match decision with
        | Set v -> SMap.add key v m
        | Remove -> SMap.remove key m
        | Abort -> assert false
      in
      (* blind install: loses every update that landed since the read *)
      Atomic.set t.map m';
      pre

let put_if_absent t ~key ~value =
  let installed = ref false in
  ignore
    (rmw t ~key (function
      | Some _ ->
          installed := false;
          Abort
      | None ->
          installed := true;
          Set value));
  !installed

let scan t = SMap.bindings t.stale
