(** The standard YCSB core workloads as {!Workload_spec} values — the
    community benchmark suite for key-value stores, handy alongside the
    paper's own workloads. All use Zipf(0.99) request popularity (except D
    and E per the YCSB definitions, approximated here) with YCSB's default
    1 KB values. *)

val workload_a : space:int -> Workload_spec.t
(** Update heavy: 50 % reads / 50 % updates. *)

val workload_b : space:int -> Workload_spec.t
(** Read mostly: 95 % reads / 5 % updates. *)

val workload_c : space:int -> Workload_spec.t
(** Read only. *)

val workload_d : space:int -> Workload_spec.t
(** Read latest: 95 % reads / 5 % inserts (recency-skewed reads
    approximated with the Zipf distribution over a growing space). *)

val workload_e : space:int -> Workload_spec.t
(** Short ranges: 95 % scans (length ≤ 100) / 5 % inserts. *)

val workload_f : space:int -> Workload_spec.t
(** Read-modify-write: 50 % reads / 50 % RMW. *)

val all : space:int -> (string * Workload_spec.t) list
