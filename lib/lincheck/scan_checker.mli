(** Validator for full-range scans: every scan result must equal a
    prefix-consistent snapshot of the key space.

    The check is an interval possibility analysis over the write events of
    the history (puts, deletes, effective RMWs): for each key the reported
    value is *possible at cut [t]* iff some write of that value was invoked
    by [t] and no distinct write that started after it finished has
    completed by [t] (which would definitely supersede it). The scan passes
    iff one cut [t] makes every key's reported value — including reported
    absence — possible simultaneously:

    - [`Serializable] (the store's default [get_snap]): the cut may lie
      anywhere at or before the scan's response — the snapshot may read "in
      the past", but it must still be *some* consistent prefix, so no put
      is ever half-visible.
    - [`Linearizable] (stores opened with [linearizable_snapshots]): the
      cut must additionally lie within the scan's own invocation window.

    Independently, snapshot timestamps must be monotone: if scan A responds
    before scan B is invoked, A's [snap_ts] must not exceed B's.

    The analysis never rejects a genuinely consistent scan (for a real cut
    [t*] the superseded-write criterion holds for the last write of each
    key), so every reported violation is a real atomicity break. *)

type violation = { scan : History.scan; reason : string }

val check :
  ?mode:[ `Serializable | `Linearizable ] -> History.t -> violation list
(** Default mode: [`Serializable]. Empty list = all scans consistent. *)

val pp_violation : violation -> string
