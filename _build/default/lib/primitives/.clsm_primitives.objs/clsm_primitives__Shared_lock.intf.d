lib/primitives/shared_lock.mli:
