(** Internal keys: a user key paired with the cLSM timestamp of the write.

    Multi-versioning (paper §3.2) stores key-timestamp-value triples sorted
    in lexicographical order of the (key, timestamp) pair — user key
    ascending, timestamp {e ascending} — so that Algorithm 3 can probe
    [(k, ∞)] and find the newest version of [k] as the predecessor.

    The encoded form appends the timestamp as 8 little-endian bytes to the
    user key; ordering of encoded keys is defined by {!compare_encoded}
    (byte order is not order-preserving across different key lengths, hence
    the explicit comparator threaded through blocks and tables). *)

type t = { user_key : string; ts : int }

val ts_size : int

val max_ts : int
(** Probe sentinel standing for [∞]; real timestamps are always below it. *)

val encode : t -> string
val decode : string -> t
(** Raises [Invalid_argument] if the input is shorter than {!ts_size}. *)

val make : string -> int -> string
(** [make k ts] = [encode { user_key = k; ts }]. *)

val probe : string -> string
(** [probe k] = [make k max_ts] — the Algorithm 3 / get upper bound. *)

val user_key_of : string -> string
(** User key of an encoded internal key. *)

val ts_of : string -> int

val compare : t -> t -> int
val compare_encoded : string -> string -> int

val comparator : Clsm_sstable.Comparator.t
(** {!compare_encoded} packaged for blocks and tables. *)
