(** Uniform forward iterator interface over sorted key-value sources
    (memtable cursors, table files, merged views), as a record of closures
    so heterogeneous sources compose. *)

type t = {
  seek_to_first : unit -> unit;
  seek : string -> unit; (* first entry >= target *)
  valid : unit -> bool;
  key : unit -> string;
  value : unit -> string;
  next : unit -> unit;
}

val of_table : Clsm_sstable.Table.t -> t

val of_array : (string * string) array -> t
(** Over an array already sorted by the caller (tests, fixtures). Seek uses
    {!Internal_key.compare_encoded}-free plain binary search with the given
    comparator. *)

val of_sorted_list : cmp:(string -> string -> int) -> (string * string) list -> t

val concat : t list -> t
(** Sequential composition of disjoint sources in ascending key order (the
    files of one level). [seek] probes sources left to right; [next] falls
    through to the following source when one is exhausted. *)

val clamp :
  ?lo:string -> ?hi:string -> cmp:(string -> string -> int) -> t -> t
(** Half-open range view [\[lo, hi)] under [cmp]: [seek_to_first] lands on
    the first entry [>= lo], [seek target] never goes below [lo], and the
    view reports invalid at the first entry [>= hi]. The underlying
    iterator is not advanced past that entry. With internal keys,
    clamping to [Internal_key.make uk 0] boundaries yields an exact
    user-key partition: every version of one user key falls in exactly
    one subrange (range-partitioned subcompactions rely on this). *)

val fold : (string -> string -> 'acc -> 'acc) -> t -> 'acc -> 'acc
(** Runs [seek_to_first] then folds over every entry. *)

val to_list : t -> (string * string) list
