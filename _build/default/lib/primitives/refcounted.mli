(** Per-component reference counting (paper §3.1): components (memtables,
    disk versions) carry a reference counter so they are not released while
    a reader still holds them. The OCaml GC reclaims memory, so [release]
    is only for external resources (file descriptors, recycled buffers) and
    for test observability.

    A cell is created with one owner reference. Readers take extra
    references through {!Rcu_box.load}; the owner drops its reference with
    {!retire}. [release] runs exactly once, when the count reaches zero. *)

type 'a t

val create : ?release:('a -> unit) -> 'a -> 'a t

val value : 'a t -> 'a
(** The payload. Valid only while holding a reference. *)

val try_incr : 'a t -> bool
(** Take a reference. Returns [false] if the count had already dropped to
    zero (the component is being released) — the caller must retry via the
    enclosing {!Rcu_box} protocol. *)

val decr : 'a t -> unit
(** Drop a reference, running [release] if this was the last one. *)

val retire : 'a t -> unit
(** Drop the owner reference (alias of {!decr}, named for call-site
    clarity). *)

val count : 'a t -> int
(** Instantaneous reference count (for tests). *)
