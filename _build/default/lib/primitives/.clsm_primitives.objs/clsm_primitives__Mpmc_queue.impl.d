lib/primitives/mpmc_queue.ml: Atomic Backoff
