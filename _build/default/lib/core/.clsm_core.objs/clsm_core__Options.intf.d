lib/core/options.mli: Clsm_lsm
