module Env = Clsm_env.Env

type outcome = Clean | Torn_tail | Corrupt_tail

exception Corrupt of string

let read_records ?(env = Env.unix) ?(strict = false) ?max_bytes path =
  let contents = env.Env.read_file path in
  (* A live log may have an append in flight past [max_bytes]; bytes
     beyond it are not classified (a record cut by the limit reads as
     [Torn_tail], never [Corrupt_tail]). *)
  let contents =
    match max_bytes with
    | Some n when n >= 0 && n < String.length contents ->
        String.sub contents 0 n
    | Some _ | None -> contents
  in
  let rec go pos acc =
    match Wal_record.decode contents ~pos with
    | `End -> (List.rev acc, Clean)
    | `Torn -> (List.rev acc, Torn_tail)
    | `Corrupt -> (List.rev acc, Corrupt_tail)
    | `Record (payload, next) -> go next (payload :: acc)
  in
  let records, outcome = go 0 [] in
  (if strict then
     match outcome with
     | Clean -> ()
     | Torn_tail ->
         raise (Corrupt (path ^ ": torn record at tail (crash mid-write?)"))
     | Corrupt_tail ->
         raise (Corrupt (path ^ ": checksum mismatch in tail record")));
  (records, outcome)
