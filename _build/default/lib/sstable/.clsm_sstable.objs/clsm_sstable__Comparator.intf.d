lib/sstable/comparator.mli:
