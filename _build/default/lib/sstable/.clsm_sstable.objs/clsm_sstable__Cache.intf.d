lib/sstable/cache.mli:
