(** K-way merging iterator — the heart of the merge procedure that
    "incorporates the contents of the memory component into the disk, and
    the contents of each component into the next one" (paper §2.3), and of
    multi-component scans.

    Ties (equal keys across sources) are broken by source order: earlier
    sources (newer components) win, and the duplicate from the older source
    is still emitted afterwards — callers that need deduplication (e.g.
    compaction) skip repeated internal keys.

    Exhausted sources are remembered: a seek whose target a previously
    learned exhaustion bound proves absent skips the physical re-seek of
    that source, so repeated seeks over a merge with mostly-dead sources
    (common in wide sharded scans) touch only the sources that can still
    answer. *)

val merge : cmp:(string -> string -> int) -> Iter.t list -> Iter.t
(** Picks the engine by fan-in: a linear scan for [<= 4] sources, a binary
    heap with winner caching above that. *)

val merge_linear : cmp:(string -> string -> int) -> Iter.t list -> Iter.t
(** The O(k)-per-step linear engine, any fan-in (exposed for tests). *)

val merge_heap : cmp:(string -> string -> int) -> Iter.t list -> Iter.t
(** The O(log k)-per-step heap engine, any fan-in (exposed for tests). *)
