(** CRC-32C (Castagnoli) checksums, as used by LevelDB/RocksDB for WAL
    records and table blocks, including LevelDB's "masked" form that makes
    CRCs of CRC-bearing payloads robust. *)

val string : ?init:int -> string -> int
(** [string s] is the CRC-32C of [s] (a 32-bit value in an int).
    [init] continues a previous computation (default: fresh). *)

val sub : ?init:int -> string -> pos:int -> len:int -> int
(** CRC of the substring [s.[pos .. pos+len-1]]. *)

val mask : int -> int
(** LevelDB CRC masking: rotate right 15 bits and add a constant. *)

val unmask : int -> int
(** Inverse of {!mask}. *)
