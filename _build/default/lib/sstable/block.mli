(** Reader for blocks produced by {!Block_builder}: in-memory parse plus a
    seekable iterator that binary-searches the restart array and then scans
    forward, reconstructing prefix-compressed keys. *)

exception Corrupt of string

type t

val parse : Comparator.t -> string -> t
(** Validate the trailer and wrap the serialized block.
    Raises {!Corrupt} if the restart array is malformed. *)

val num_restarts : t -> int
val size_bytes : t -> int

module Iter : sig
  type iter

  val make : t -> iter
  (** Fresh iterator, initially invalid. *)

  val seek_to_first : iter -> unit

  val seek : iter -> string -> unit
  (** Position at the first entry with key [>= target] under the block's
      comparator (invalid if none). *)

  val seek_le : iter -> string -> unit
  (** Position at the {e last} entry with key [<= target] (invalid if
      none). Used for newest-version-not-exceeding-a-snapshot lookups when
      versions are ordered by ascending timestamp. *)

  val seek_last : iter -> unit
  (** Position at the last entry of the block (invalid if empty). *)

  val valid : iter -> bool
  val key : iter -> string
  (** Raises [Invalid_argument] if not {!valid}. *)

  val value : iter -> string
  val next : iter -> unit

  val fold : (string -> string -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  (** Fold over all entries in order. *)
end
