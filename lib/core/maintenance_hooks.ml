(* The merge hooks (paper Algorithm 1, beforeMerge/afterMerge) and the
   job layer the maintenance scheduler drives. Expensive work — merging
   sorted runs to disk — happens outside any lock, so a flush and
   several compactions on disjoint level ranges proceed in parallel
   across worker domains. The exclusive sections the paper requires
   survive unchanged: component swaps take the shared-exclusive lock in
   exclusive mode, and installs + manifest saves are additionally
   serialized by [t.install] so the manifest always describes a settled
   version and lands before the WAL it obsoletes is deleted. *)

module Make (M : Memtable_intf.S) = struct
  open Clsm_primitives
  open Clsm_lsm
  module Job = Clsm_maintenance.Job
  module Scheduler = Clsm_maintenance.Scheduler
  module Env = Clsm_env.Env
  module State = Store_state.Make (M)
  open State

  let src = Logs.Src.create "clsm.db.maintenance" ~doc:"cLSM store maintenance"

  module Log = (val Logs.src_log src : Logs.LOG)

  (* An environment failure inside maintenance (failed fsync, out of
     space) must not take down the worker domain or be retried forever:
     the store degrades to read-only — reads keep working off the
     installed components — and the error is surfaced through [health]
     and the [Degraded] exception on writes. *)
  let guard_io t ~what f =
    try f ()
    with (Env.Error _ | Env.Crashed) as e ->
      degrade t (what ^ " failed: " ^ Printexc.to_string e);
      Log.err (fun m ->
          m "%s failed, store degraded to read-only: %s" what
            (Printexc.to_string e))

  (* ---------- merge hooks ---------- *)

  (* beforeMerge: freeze Cm as C'm and open a fresh Cm (Algorithm 1 lines
     8-12). Returns false when a previous immutable component is still being
     merged. Caller holds the flush claim. *)
  let rotate t =
    match current_imm t with
    | Imm _ -> false
    | No_imm ->
        if M.is_empty (current_pm t).mem then false
        else begin
          let wal_number = alloc_file_number t () in
          let wal =
            if t.opts.Options.wal_enabled then
              Some
                (Clsm_wal.Wal_writer.create
                   ~mode:
                     (if t.opts.Options.sync_wal then Clsm_wal.Wal_writer.Sync
                      else Clsm_wal.Wal_writer.Async)
                   ~env:t.opts.Options.env
                   (Table_file.wal_path ~dir:t.opts.Options.dir wal_number))
            else None
          in
          let fresh = { mem = M.create (); wal; wal_number } in
          Shared_lock.lock_exclusive t.lock;
          (* P'm <- Pm, then Pm <- new: readers traversing Pm then P'm may see
             the old component twice but can never miss it. *)
          let old_pm_cell = Rcu_box.peek t.pm in
          let imm_cell =
            Refcounted.create (Imm (Refcounted.value old_pm_cell))
          in
          let old_imm_cell = Rcu_box.swap t.pimm imm_cell in
          let old_pm_cell' = Rcu_box.swap t.pm (Refcounted.create fresh) in
          Shared_lock.unlock_exclusive t.lock;
          assert (old_pm_cell == old_pm_cell');
          Refcounted.retire old_imm_cell;
          Refcounted.retire old_pm_cell';
          Stats.incr_rotations t.stats;
          true
        end

  (* Merge C'm into the disk component, then afterMerge: install the new
     version and clear P'm (Algorithm 1 lines 13-17). Caller holds the
     flush claim; the install section takes [t.install]. *)
  let flush_imm t =
    match current_imm t with
    | No_imm -> false
    | Imm mc ->
        let snapshots = Clock.live_snapshots t.clock ~now:(Unix.gettimeofday ()) in
        let bytes = M.approximate_bytes mc.mem in
        let outputs =
          Compaction.write_sorted_run ~cfg:t.opts.Options.lsm
            ~dir:t.opts.Options.dir ~cache:t.cache ~env:t.opts.Options.env
            ~alloc_number:(alloc_file_number t) ~snapshots
            ~drop_tombstones:false (M.iter mc.mem)
        in
        Mutex.lock t.install;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.install)
          (fun () ->
            Shared_lock.lock_exclusive t.lock;
            let cur = current_version t in
            let next =
              Version.create
                ~l0:(outputs @ cur.Version.l0)
                ~levels:cur.Version.levels
            in
            let old_pd =
              Rcu_box.swap t.pd
                (Refcounted.create ~release:Version.release next)
            in
            let old_imm = Rcu_box.swap t.pimm (Refcounted.create No_imm) in
            Shared_lock.unlock_exclusive t.lock;
            Refcounted.retire old_pd;
            Refcounted.retire old_imm;
            List.iter Refcounted.retire outputs;
            Stats.incr_flushes t.stats;
            Stats.add_bytes_flushed t.stats bytes;
            (* Durability order: the manifest that stops referencing the old
               WAL must land before the WAL disappears. *)
            save_manifest t);
        (match mc.wal with
        | Some w ->
            let env = t.opts.Options.env in
            (* The manifest no longer references this log: failure to close
               or delete it only leaves an orphan that the next recovery
               collects, so it must not degrade or kill the worker. *)
            (try Clsm_wal.Wal_writer.close w
             with Env.Error _ | Env.Crashed -> ());
            (try Env.(env.remove) (Clsm_wal.Wal_writer.path w)
             with Env.Error _ | Env.Crashed -> ())
        | None -> ());
        Log.debug (fun m ->
            m "flushed %d bytes into %d L0 file(s)" bytes (List.length outputs));
        true

  (* Run one claimed compaction: merge outside any lock, then install.
     Caller owns the claim on the task's level range. *)
  let run_claimed_compaction t { State.task; pinned } =
    let snapshots = Clock.live_snapshots t.clock ~now:(Unix.gettimeofday ()) in
    let started = Unix.gettimeofday () in
    (* The expensive merge, range-partitioned across domains when the
       knob allows: each subrange gets its own clamped merge cursor and
       table writer, and the combined output list is installed below in
       one version swap + manifest save, exactly like a sequential
       merge — a crash can only ever observe all of it or none of it. *)
    let outputs, fanout =
      Compaction.run_parallel ~cfg:t.opts.Options.lsm ~dir:t.opts.Options.dir
        ~cache:t.cache ~env:t.opts.Options.env
        ~alloc_number:(alloc_file_number t) ~snapshots
        ~fan_out:Scheduler.fan_out
        ~max_subcompactions:t.opts.Options.max_subcompactions task
    in
    let merge_duration_ns =
      int_of_float ((Unix.gettimeofday () -. started) *. 1e9)
    in
    let bytes =
      List.fold_left
        (fun a f -> a + (Refcounted.value f).Table_file.size)
        0
        (task.Compaction.inputs_lo @ task.Compaction.inputs_hi)
    in
    Mutex.lock t.install;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.install)
      (fun () ->
        Shared_lock.lock_exclusive t.lock;
        let cur = current_version t in
        let next = Compaction.apply cur task ~outputs in
        let old_pd =
          Rcu_box.swap t.pd (Refcounted.create ~release:Version.release next)
        in
        Shared_lock.unlock_exclusive t.lock;
        (if task.Compaction.src_level >= 1 then
           match Version.files_range task.Compaction.inputs_lo with
           | Some (_, largest) ->
               t.compact_pointers.(task.Compaction.src_level - 1) <- largest
           | None -> ());
        List.iter Refcounted.retire outputs;
        Stats.incr_compactions t.stats ~src_level:task.Compaction.src_level ();
        Stats.record_compaction_run t.stats ~fanout
          ~duration_ns:merge_duration_ns;
        Stats.add_bytes_compacted t.stats bytes;
        save_manifest t;
        (* Only after the manifest has stopped referencing the inputs may
           they become deletable: marking them obsolete (and dropping the
           old version's references) before a successful save could delete
           files a crash-recovered manifest still points at. *)
        List.iter
          (fun f -> Table_file.mark_obsolete (Refcounted.value f))
          (task.Compaction.inputs_lo @ task.Compaction.inputs_hi);
        Refcounted.retire old_pd);
    ignore pinned;
    Log.debug (fun m ->
        m "compacted level %d (%d bytes) into %d file(s), %d subcompaction(s)"
          task.Compaction.src_level bytes (List.length outputs) fanout)

  (* ---------- claims ---------- *)

  let flush_needed t =
    (match current_imm t with Imm _ -> true | No_imm -> false)
    || M.approximate_bytes (current_pm t).mem > t.opts.Options.memtable_bytes

  let try_claim_flush t =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        if c.flush_claimed then false
        else begin
          c.flush_claimed <- true;
          true
        end)

  let release_flush t =
    let c = t.claims in
    Mutex.protect c.cm (fun () -> c.flush_claimed <- false)

  (* Pick and claim a compaction whose level range is disjoint from every
     in-flight one. Caller must hold [c.cm]. The version the task was
     picked from is pinned so its input files cannot be released before
     the task runs. *)
  let claim_compaction_locked t =
    let c = t.claims in
    let busy l = List.exists (fun (s, tg) -> l = s || l = tg) c.busy_levels in
    let skip ~src ~target = busy src || busy target in
    let cell = Rcu_box.acquire t.pd in
    match
      Compaction.pick ~cfg:t.opts.Options.lsm
        ~level_pointers:t.compact_pointers ~skip (Refcounted.value cell)
    with
    | Some task ->
        let range = (task.Compaction.src_level, task.Compaction.target_level) in
        c.busy_levels <- range :: c.busy_levels;
        c.pending <- (range, { State.task; pinned = cell }) :: c.pending;
        Some
          (Job.Compact
             {
               src_level = task.Compaction.src_level;
               target_level = task.Compaction.target_level;
             })
    | None ->
        Refcounted.decr cell;
        None

  let release_compaction t range =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        c.busy_levels <- List.filter (fun r -> r <> range) c.busy_levels)

  let take_pending t range =
    let c = t.claims in
    Mutex.protect c.cm (fun () ->
        match List.assoc_opt range c.pending with
        | Some cc ->
            c.pending <- List.remove_assoc range c.pending;
            Some cc
        | None -> None)

  (* ---------- the scheduler's job interface ---------- *)

  (* Claim the highest-priority runnable job: a WAL-covered flush beats
     any compaction; Compaction.pick orders the rest L0→L1 first, then
     shallowest over-budget level. *)
  let next t =
    if Atomic.get t.stop || is_degraded t then None
    else begin
      let c = t.claims in
      Mutex.lock c.cm;
      let job =
        if (not c.flush_claimed) && flush_needed t then begin
          c.flush_claimed <- true;
          Some Job.Flush
        end
        else
          match claim_compaction_locked t with
          | Some job -> Some job
          | None -> None
      in
      Mutex.unlock c.cm;
      job
    end

  let run_flush t =
    Fun.protect
      ~finally:(fun () -> release_flush t)
      (fun () ->
        (* Clear a pending immutable component first, then rotate an
           over-budget memtable and flush the result. *)
        ignore (flush_imm t);
        if
          M.approximate_bytes (current_pm t).mem
          > t.opts.Options.memtable_bytes
        then if rotate t then ignore (flush_imm t))

  let rec run t (job : Job.t) =
    match job with
    (* [In_shard] is the router's tag; a single store never claims one.
       Unwrap defensively rather than crash a worker. *)
    | Job.In_shard { job; _ } -> run t job
    | Job.Flush -> guard_io t ~what:"memtable flush" (fun () -> run_flush t)
    | Job.Compact { src_level; target_level } -> (
        let range = (src_level, target_level) in
        match take_pending t range with
        | None -> release_compaction t range
        | Some cc ->
            Fun.protect
              ~finally:(fun () ->
                release_compaction t range;
                Refcounted.decr cc.State.pinned)
              (fun () ->
                guard_io t ~what:"compaction" (fun () ->
                    run_claimed_compaction t cc)))

  let make_scheduler t =
    Scheduler.create ~num_workers:t.opts.Options.maintenance_workers
      ~tick_interval:t.opts.Options.maintenance_tick
      ~next:(fun () -> next t)
      ~run:(fun job -> run t job)
      ()

  (* ---------- foreground maintenance ---------- *)

  (* Synchronously rotate, flush and compact to quiescence, cooperating
     with (not fighting) the background workers: claims are shared, and
     quiescence means no claimable work and no claim in flight. *)
  let compact_now t =
    let rec claim_flush_blocking () =
      if not (try_claim_flush t) then begin
        Unix.sleepf 0.0005;
        claim_flush_blocking ()
      end
    in
    claim_flush_blocking ();
    Fun.protect
      ~finally:(fun () -> release_flush t)
      (fun () ->
        guard_io t ~what:"foreground flush" (fun () ->
            ignore (flush_imm t);
            ignore (rotate t);
            ignore (flush_imm t)));
    let c = t.claims in
    let rec drain () =
      let claimed =
        Mutex.protect c.cm (fun () ->
            (* A degraded store must not keep re-claiming the same doomed
               task: stop draining, the directory is as compacted as it
               will get. *)
            if is_degraded t then `Idle
            else
              match claim_compaction_locked t with
              | Some job -> `Run job
              | None ->
                  if c.busy_levels <> [] || c.flush_claimed then `Wait
                  else `Idle)
      in
      match claimed with
      | `Run job ->
          run t job;
          drain ()
      | `Wait ->
          Unix.sleepf 0.0005;
          drain ()
      | `Idle -> ()
    in
    drain ()
end
