(** The merge procedure (paper §2.3): memtable flushes and background level
    compactions, with snapshot-aware garbage collection of obsolete
    versions — "for every key and every snapshot, the latest version of the
    key that does not exceed the snapshot's timestamp is kept" (§3.2.1). *)

type task = {
  src_level : int; (** 0 for an L0→L1 merge *)
  inputs_lo : Version.file list;
  inputs_hi : Version.file list; (** overlapping files of [target_level] *)
  target_level : int;
  drop_tombstones : bool;
      (** true when no data can exist below [target_level]: deletion
          markers that are the oldest surviving entry of their key are
          elided *)
}

val pick :
  cfg:Lsm_config.t ->
  ?level_pointers:string array ->
  ?skip:(src:int -> target:int -> bool) ->
  ?pin_tombstones:bool ->
  Version.t ->
  task option
(** L0 is compacted when it accumulates [l0_compaction_trigger] files;
    otherwise the shallowest level over its byte budget contributes one
    file, chosen round-robin through the level's key space:
    [level_pointers.(i)] (level i+1's last compacted largest key, "" to
    start over) selects the first file beyond it — LevelDB's
    [compact_pointer]. [None] when nothing needs compacting.

    [skip ~src ~target] excludes a level range from consideration — used
    by the maintenance scheduler to hand parallel workers compactions on
    disjoint level ranges (a skipped candidate falls through to the next
    deeper one). Default: skip nothing.

    [pin_tombstones] forces [drop_tombstones = false] regardless of
    level emptiness. The store sets it while its quarantine ledger is
    non-empty: a quarantined table is absent from [v], so
    "no data below the target level" may be a lie — a tombstone whose
    only covered older values live in the quarantined table must
    survive until that table is readmitted or discarded, or the delete
    would resurrect on readmission. Default: [false]. *)

val filter_group :
  snapshots:int list ->
  drop_tombstones:bool ->
  (int * Entry.t) list ->
  int list
(** Pure core of the GC: given the ascending timestamps (with decoded
    entries) of one user key's versions and the ascending active-snapshot
    timestamps, return the timestamps to {e keep}. Exposed for direct
    property testing. *)

val write_sorted_run :
  cfg:Lsm_config.t ->
  dir:string ->
  ?cache:Clsm_sstable.Block.t Clsm_sstable.Cache.t ->
  ?env:Clsm_env.Env.t ->
  alloc_number:(unit -> int) ->
  snapshots:int list ->
  drop_tombstones:bool ->
  Iter.t ->
  Version.file list
(** Stream a sorted (by internal key) iterator through GC into one or more
    table files cut at [target_file_size]. Duplicate internal keys (ties
    across merge inputs) are deduplicated keeping the first. Returns the
    new files (each with one owning reference), sorted, possibly empty.
    On IO failure the partial outputs (in-flight temp file and any
    finished tables) are deleted best-effort before the exception
    propagates. *)

val run :
  cfg:Lsm_config.t ->
  dir:string ->
  ?cache:Clsm_sstable.Block.t Clsm_sstable.Cache.t ->
  ?env:Clsm_env.Env.t ->
  alloc_number:(unit -> int) ->
  snapshots:int list ->
  task ->
  Version.file list
(** Merge the task's inputs and write the target-level output run. *)

val plan_subranges :
  max_subcompactions:int -> task -> (string option * string option) list
(** Split the task's key space into at most [max_subcompactions] disjoint
    half-open {e user-key} subranges [(lo, hi)] ([None] = unbounded)
    covering everything, byte-balanced using the inputs' per-data-block
    index anchors (no data IO). Returns [[(None, None)]] — one subrange,
    the whole space — when [max_subcompactions <= 1] or the inputs are
    too small to split. Exposed for testing. *)

val run_parallel :
  cfg:Lsm_config.t ->
  dir:string ->
  ?cache:Clsm_sstable.Block.t Clsm_sstable.Cache.t ->
  ?env:Clsm_env.Env.t ->
  alloc_number:(unit -> int) ->
  snapshots:int list ->
  ?fan_out:((unit -> Version.file list) list ->
           (Version.file list, exn) result list) ->
  max_subcompactions:int ->
  task ->
  Version.file list * int
(** RocksDB-style subcompactions: run each planned subrange through its
    own clamped merge + {!write_sorted_run} via [fan_out] (default:
    sequential in the calling domain; pass
    [Clsm_maintenance.Scheduler.fan_out] to use one domain per subrange),
    then concatenate the per-subrange outputs in key order. Returns the
    combined output files and the fan-out actually used; the caller
    commits them in {e one} manifest edit exactly as with {!run}, so
    crash atomicity and snapshot semantics are unchanged. If any
    subrange fails, the outputs of every other subrange are deleted
    (best-effort) and the first exception is re-raised.

    [alloc_number] must be safe to call from multiple domains. *)

val apply : Version.t -> task -> outputs:Version.file list -> Version.t
(** Build the successor version: inputs removed, outputs installed at
    [target_level]. The base version may have gained L0 files since the
    task was picked; they are preserved. The caller retires the old
    version and marks input files obsolete. *)
