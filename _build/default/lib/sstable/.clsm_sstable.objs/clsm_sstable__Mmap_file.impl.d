lib/sstable/mmap_file.ml: Bigarray Bytes Unix
