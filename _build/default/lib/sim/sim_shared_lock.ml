type t = {
  engine : Engine.t;
  mutable shared_holders : int;
  mutable exclusive_held : bool;
  mutable exclusive_waiting : int;
  shared_waiters : (float * (unit -> unit)) Queue.t;
  exclusive_waiters : (unit -> unit) Queue.t;
  mutable shared_wait : float;
}

let create engine =
  {
    engine;
    shared_holders = 0;
    exclusive_held = false;
    exclusive_waiting = 0;
    shared_waiters = Queue.create ();
    exclusive_waiters = Queue.create ();
    shared_wait = 0.0;
  }

let grant_exclusive t k =
  t.exclusive_held <- true;
  Engine.schedule_after t.engine 0.0 k

let drain_shared t =
  while not (Queue.is_empty t.shared_waiters) do
    let enqueued, k = Queue.pop t.shared_waiters in
    t.shared_wait <- t.shared_wait +. (Engine.now t.engine -. enqueued);
    t.shared_holders <- t.shared_holders + 1;
    Engine.schedule_after t.engine 0.0 k
  done

let lock_shared t k =
  if (not t.exclusive_held) && t.exclusive_waiting = 0 then begin
    t.shared_holders <- t.shared_holders + 1;
    k ()
  end
  else Queue.push (Engine.now t.engine, k) t.shared_waiters

let unlock_shared t =
  if t.shared_holders <= 0 then invalid_arg "Sim_shared_lock.unlock_shared";
  t.shared_holders <- t.shared_holders - 1;
  if t.shared_holders = 0 && not (Queue.is_empty t.exclusive_waiters) then begin
    t.exclusive_waiting <- t.exclusive_waiting - 1;
    grant_exclusive t (Queue.pop t.exclusive_waiters)
  end

let lock_exclusive t k =
  if (not t.exclusive_held) && t.shared_holders = 0 then begin
    t.exclusive_held <- true;
    k ()
  end
  else begin
    t.exclusive_waiting <- t.exclusive_waiting + 1;
    Queue.push k t.exclusive_waiters
  end

let unlock_exclusive t =
  if not t.exclusive_held then invalid_arg "Sim_shared_lock.unlock_exclusive";
  t.exclusive_held <- false;
  if not (Queue.is_empty t.exclusive_waiters) then begin
    t.exclusive_waiting <- t.exclusive_waiting - 1;
    grant_exclusive t (Queue.pop t.exclusive_waiters)
  end
  else drain_shared t

let shared_wait_time t = t.shared_wait
