lib/lsm/compaction.mli: Clsm_sstable Entry Iter Lsm_config Version
