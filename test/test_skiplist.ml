module SL = Clsm_skiplist.Skiplist.Make (String)
module IntMap = Map.Make (String)

let spawn_all fns = List.map Domain.spawn fns |> List.map Domain.join

let check_sorted_strings name keys =
  let rec go = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (name ^ ": strictly sorted") true (a < b);
        go rest
    | [ _ ] | [] -> ()
  in
  go keys

(* ---------- Sequential semantics ---------- *)

let empty_behaviour () =
  let sl = SL.create () in
  Alcotest.(check bool) "is_empty" true (SL.is_empty sl);
  Alcotest.(check int) "length" 0 (SL.length sl);
  Alcotest.(check (option int)) "find" None (SL.find sl "a");
  Alcotest.(check bool) "find_le" true (SL.find_le sl "a" = None);
  Alcotest.(check bool) "find_ge" true (SL.find_ge sl "a" = None)

let insert_find () =
  let sl = SL.create ~seed:7 () in
  Alcotest.(check bool) "insert b" true (SL.insert sl "b" 2);
  Alcotest.(check bool) "insert a" true (SL.insert sl "a" 1);
  Alcotest.(check bool) "insert c" true (SL.insert sl "c" 3);
  Alcotest.(check bool) "duplicate rejected" false (SL.insert sl "b" 99);
  Alcotest.(check (option int)) "find a" (Some 1) (SL.find sl "a");
  Alcotest.(check (option int)) "find b keeps first" (Some 2) (SL.find sl "b");
  Alcotest.(check (option int)) "find missing" None (SL.find sl "bb");
  Alcotest.(check int) "length" 3 (SL.length sl);
  Alcotest.(check bool) "not empty" false (SL.is_empty sl)

let ordered_iteration () =
  let sl = SL.create ~seed:3 () in
  let keys = [ "delta"; "alpha"; "echo"; "bravo"; "charlie" ] in
  List.iteri (fun i k -> ignore (SL.insert sl k i)) keys;
  let got = List.map fst (SL.to_list sl) in
  Alcotest.(check (list string)) "sorted"
    [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ]
    got

let find_le_ge () =
  let sl = SL.create ~seed:11 () in
  List.iter (fun k -> ignore (SL.insert sl k (String.length k))) [ "b"; "d"; "f" ];
  let fst_opt = Option.map fst in
  Alcotest.(check (option string)) "le below all" None (fst_opt (SL.find_le sl "a"));
  Alcotest.(check (option string)) "le exact" (Some "b") (fst_opt (SL.find_le sl "b"));
  Alcotest.(check (option string)) "le between" (Some "b") (fst_opt (SL.find_le sl "c"));
  Alcotest.(check (option string)) "le above all" (Some "f") (fst_opt (SL.find_le sl "z"));
  Alcotest.(check (option string)) "ge below all" (Some "b") (fst_opt (SL.find_ge sl "a"));
  Alcotest.(check (option string)) "ge exact" (Some "d") (fst_opt (SL.find_ge sl "d"));
  Alcotest.(check (option string)) "ge between" (Some "f") (fst_opt (SL.find_ge sl "e"));
  Alcotest.(check (option string)) "ge above all" None (fst_opt (SL.find_ge sl "z"))

let cursor_walk () =
  let sl = SL.create ~seed:5 () in
  List.iter (fun k -> ignore (SL.insert sl k ())) [ "a"; "c"; "e" ];
  let c = SL.Cursor.make sl in
  Alcotest.(check bool) "fresh invalid" false (SL.Cursor.valid c);
  SL.Cursor.seek_first c;
  Alcotest.(check (option string)) "first" (Some "a")
    (Option.map fst (SL.Cursor.current c));
  SL.Cursor.next c;
  Alcotest.(check (option string)) "second" (Some "c")
    (Option.map fst (SL.Cursor.current c));
  SL.Cursor.seek c "d";
  Alcotest.(check (option string)) "seek between" (Some "e")
    (Option.map fst (SL.Cursor.current c));
  SL.Cursor.next c;
  Alcotest.(check bool) "exhausted" false (SL.Cursor.valid c);
  SL.Cursor.next c;
  Alcotest.(check bool) "next past end is no-op" false (SL.Cursor.valid c)

let fold_and_iter_agree () =
  let sl = SL.create ~seed:13 () in
  for i = 0 to 99 do
    ignore (SL.insert sl (Printf.sprintf "k%04d" i) i)
  done;
  let via_fold = SL.fold (fun _ v acc -> acc + v) sl 0 in
  let via_iter = ref 0 in
  SL.iter (fun _ v -> via_iter := !via_iter + v) sl;
  Alcotest.(check int) "sums agree" via_fold !via_iter;
  Alcotest.(check int) "sum value" (99 * 100 / 2) via_fold

(* ---------- Model-based property ---------- *)

let prop_model_based =
  let gen_ops =
    QCheck.(
      list
        (pair (string_of_size Gen.(1 -- 6)) small_int))
  in
  QCheck.Test.make ~name:"skiplist matches Map model" ~count:200 gen_ops
    (fun ops ->
      let sl = SL.create () in
      let model =
        List.fold_left
          (fun m (k, v) ->
            let added = SL.insert sl k v in
            if IntMap.mem k m then (
              if added then raise Exit;
              m)
            else if not added then raise Exit
            else IntMap.add k v m)
          IntMap.empty ops
      in
      (* contents agree *)
      let sl_list = SL.to_list sl in
      let model_list = IntMap.bindings model in
      sl_list = model_list
      && List.for_all
           (fun (k, v) -> SL.find sl k = Some v)
           model_list
      && SL.find sl "\xff\xff\xff\xff\xff\xff\xff" = None)

let prop_find_le_matches_model =
  let gen =
    QCheck.(
      pair
        (list (string_of_size Gen.(1 -- 4)))
        (string_of_size Gen.(1 -- 4)))
  in
  QCheck.Test.make ~name:"find_le/find_ge match Map model" ~count:300 gen
    (fun (keys, probe) ->
      let sl = SL.create () in
      let model =
        List.fold_left
          (fun m k ->
            ignore (SL.insert sl k (String.length k));
            if IntMap.mem k m then m else IntMap.add k (String.length k) m)
          IntMap.empty keys
      in
      let model_le =
        IntMap.fold
          (fun k v acc -> if k <= probe then Some (k, v) else acc)
          model None
      in
      let model_ge =
        IntMap.fold
          (fun k v acc ->
            if k >= probe && acc = None then Some (k, v) else acc)
          model None
      in
      SL.find_le sl probe = model_le && SL.find_ge sl probe = model_ge)

(* Random mixed workloads driving the Raw locate/try_insert substrate the
   store's rmw (Algorithm 3) is built on: each user key holds a chain of
   versioned entries "key#%08d"; an upsert locates the insertion point at
   (key, +inf), reads the newest version off [prev_binding] and
   CAS-installs the successor version, retrying on conflict. *)

let versioned_upsert sl key v =
  let rec attempt () =
    let loc = SL.Raw.locate sl (key ^ "#\xff") in
    let plen = String.length key + 1 in
    let next_version =
      match SL.Raw.prev_binding loc with
      | Some (pk, _)
        when String.length pk > plen && String.sub pk 0 plen = key ^ "#" ->
          1 + int_of_string (String.sub pk plen 8)
      | Some _ | None -> 1
    in
    let new_key = Printf.sprintf "%s#%08d" key next_version in
    if not (SL.Raw.try_insert sl loc new_key v) then attempt ()
    else new_key
  in
  attempt ()

let newest_version sl key =
  let plen = String.length key + 1 in
  match SL.Raw.prev_binding (SL.Raw.locate sl (key ^ "#\xff")) with
  | Some (pk, v)
    when String.length pk > plen && String.sub pk 0 plen = key ^ "#" ->
      Some (pk, v)
  | Some _ | None -> None

let prop_raw_upsert_vs_model =
  (* ops over a small keyspace: [Some v] = upsert through the Algorithm-3
     path, [None] = read newest version; both checked against a Map model
     of every version ever installed *)
  let gen_ops =
    QCheck.(
      list_of_size Gen.(1 -- 120) (pair (int_range 0 7) (option small_int)))
  in
  QCheck.Test.make ~name:"raw versioned upsert matches Map model" ~count:150
    gen_ops (fun ops ->
      let sl = SL.create () in
      let model =
        List.fold_left
          (fun m (ki, op) ->
            let key = Printf.sprintf "k%d" ki in
            match op with
            | Some v ->
                let vk = versioned_upsert sl key v in
                if IntMap.mem vk m then raise Exit;
                IntMap.add vk v m
            | None ->
                let model_newest =
                  IntMap.fold
                    (fun k v acc ->
                      if
                        String.length k > String.length key
                        && String.sub k 0 (String.length key + 1) = key ^ "#"
                      then Some (k, v)
                      else acc)
                    m None
                in
                if newest_version sl key <> model_newest then raise Exit;
                m)
          IntMap.empty ops
      in
      SL.to_list sl = IntMap.bindings model)

let prop_raw_upsert_concurrent =
  (* 2-3 domains replay the same random key script through the CAS-retry
     loop; every increment must survive, so each key's newest version is
     exactly domains x occurrences *)
  let gen =
    QCheck.(pair (int_range 2 3) (list_of_size Gen.(5 -- 60) (int_range 0 4)))
  in
  QCheck.Test.make ~name:"raw upsert CAS path under domains" ~count:10 gen
    (fun (domains, script) ->
      let sl = SL.create () in
      let worker () =
        List.iter
          (fun ki ->
            ignore (versioned_upsert sl (Printf.sprintf "k%d" ki) ki))
          script;
        0
      in
      ignore (spawn_all (List.init domains (fun _ -> worker)));
      List.for_all
        (fun ki ->
          let key = Printf.sprintf "k%d" ki in
          let occurrences =
            List.length (List.filter (fun k -> k = ki) script)
          in
          match newest_version sl key with
          | Some (vk, _) ->
              int_of_string (String.sub vk (String.length key + 1) 8)
              = domains * occurrences
          | None -> occurrences = 0)
        (List.init 5 Fun.id))

(* ---------- Concurrency ---------- *)

let concurrent_disjoint_inserts () =
  let sl = SL.create () in
  let n = 3_000 in
  let writer tag () =
    for i = 0 to n - 1 do
      let ok = SL.insert sl (Printf.sprintf "%c%06d" tag i) i in
      assert ok
    done;
    0
  in
  ignore (spawn_all [ writer 'a'; writer 'b'; writer 'c'; writer 'd' ]);
  Alcotest.(check int) "all present" (4 * n) (SL.length sl);
  let keys = List.map fst (SL.to_list sl) in
  check_sorted_strings "concurrent" keys;
  for i = 0 to n - 1 do
    assert (SL.find sl (Printf.sprintf "a%06d" i) = Some i)
  done

let concurrent_same_keys () =
  (* All domains race to insert the same key set; exactly one wins each key. *)
  let sl = SL.create () in
  let n = 2_000 in
  let writer tag () =
    let wins = ref 0 in
    for i = 0 to n - 1 do
      if SL.insert sl (Printf.sprintf "k%06d" i) tag then incr wins
    done;
    !wins
  in
  let wins = spawn_all [ writer 1; writer 2; writer 3 ] in
  Alcotest.(check int) "every key won exactly once" n
    (List.fold_left ( + ) 0 wins);
  Alcotest.(check int) "length" n (SL.length sl);
  check_sorted_strings "same-keys" (List.map fst (SL.to_list sl))

let weak_consistency_scan_during_inserts () =
  (* Keys inserted before the scan starts and never removed must all be
     observed; concurrently inserted keys may or may not appear. *)
  let sl = SL.create () in
  let base = 2_000 in
  for i = 0 to base - 1 do
    ignore (SL.insert sl (Printf.sprintf "base%06d" i) (-1))
  done;
  let stop = Atomic.make false in
  let inserter () =
    let i = ref 0 in
    while not (Atomic.get stop) do
      ignore (SL.insert sl (Printf.sprintf "extra%06d" !i) !i);
      incr i
    done;
    0
  in
  let scanner () =
    let seen_base = ref 0 in
    let prev = ref "" in
    let sorted = ref true in
    SL.iter
      (fun k _ ->
        if !prev >= k then sorted := false;
        prev := k;
        if String.length k >= 4 && String.sub k 0 4 = "base" then
          incr seen_base)
      sl;
    Atomic.set stop true;
    if !sorted then !seen_base else -1
  in
  let results = spawn_all [ inserter; scanner ] in
  match results with
  | [ _; seen ] -> Alcotest.(check int) "scan saw all base keys, sorted" base seen
  | _ -> Alcotest.fail "unexpected results"

(* ---------- Raw interface (Algorithm 3 substrate) ---------- *)

let raw_locate_and_insert () =
  let sl = SL.create ~seed:17 () in
  ignore (SL.insert sl "b" 1);
  ignore (SL.insert sl "f" 2);
  let loc = SL.Raw.locate sl "d" in
  Alcotest.(check (option string)) "prev" (Some "b")
    (Option.map fst (SL.Raw.prev_binding loc));
  Alcotest.(check (option string)) "succ" (Some "f")
    (Option.map fst (SL.Raw.succ_binding loc));
  Alcotest.(check bool) "insert succeeds" true (SL.Raw.try_insert sl loc "d" 9);
  Alcotest.(check (option int)) "visible" (Some 9) (SL.find sl "d");
  check_sorted_strings "raw" (List.map fst (SL.to_list sl))

let raw_stale_location_fails () =
  let sl = SL.create ~seed:19 () in
  ignore (SL.insert sl "b" 1);
  let loc = SL.Raw.locate sl "d" in
  (* Concurrent insert lands between prev and succ: the CAS must fail. *)
  ignore (SL.insert sl "c" 7);
  Alcotest.(check bool) "stale location rejected" false
    (SL.Raw.try_insert sl loc "d" 9);
  Alcotest.(check (option int)) "d not inserted" None (SL.find sl "d")

let raw_locate_exact_hits_prev () =
  let sl = SL.create ~seed:23 () in
  ignore (SL.insert sl "d" 4);
  let loc = SL.Raw.locate sl "d" in
  (* locate on an existing key: prev is the node itself (greatest <= key). *)
  Alcotest.(check (option string)) "prev is the key" (Some "d")
    (Option.map fst (SL.Raw.prev_binding loc))

let raw_concurrent_counter () =
  (* Emulates Algorithm 3: each domain repeatedly locates (k, +inf) for its
     slot, reads the newest version, and appends an incremented version; on
     CAS failure it retries. All increments must survive. *)
  let sl = SL.create () in
  let incr_key key =
    let rec attempt () =
      let probe = key ^ "\xff" in
      let loc = SL.Raw.locate sl probe in
      let current, next_version =
        match SL.Raw.prev_binding loc with
        | Some (k, v) when String.length k > String.length key
                           && String.sub k 0 (String.length key) = key ->
            (v, v + 1)
        | Some _ | None -> (0, 1)
      in
      let new_key = Printf.sprintf "%s%08d" key next_version in
      if not (SL.Raw.try_insert sl loc new_key next_version) then attempt ()
      else current + 1
    in
    ignore (attempt ())
  in
  let n = 1_500 in
  let worker () =
    for _ = 1 to n do incr_key "ctr-" done;
    0
  in
  ignore (spawn_all [ worker; worker; worker ]);
  (* The newest version must equal the total number of increments. *)
  let loc = SL.Raw.locate sl "ctr-\xff" in
  match SL.Raw.prev_binding loc with
  | Some (_, v) -> Alcotest.(check int) "no lost updates" (3 * n) v
  | None -> Alcotest.fail "counter missing"

let suites =
  [
    ( "skiplist.sequential",
      [
        Alcotest.test_case "empty behaviour" `Quick empty_behaviour;
        Alcotest.test_case "insert/find/duplicates" `Quick insert_find;
        Alcotest.test_case "ordered iteration" `Quick ordered_iteration;
        Alcotest.test_case "find_le/find_ge" `Quick find_le_ge;
        Alcotest.test_case "cursor" `Quick cursor_walk;
        Alcotest.test_case "fold/iter agree" `Quick fold_and_iter_agree;
      ] );
    ( "skiplist.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_model_based; prop_find_le_matches_model;
          prop_raw_upsert_vs_model; prop_raw_upsert_concurrent;
        ] );
    ( "skiplist.concurrent",
      [
        Alcotest.test_case "disjoint inserts" `Quick concurrent_disjoint_inserts;
        Alcotest.test_case "racing same keys" `Quick concurrent_same_keys;
        Alcotest.test_case "weakly-consistent scan" `Quick
          weak_consistency_scan_during_inserts;
      ] );
    ( "skiplist.raw",
      [
        Alcotest.test_case "locate and insert" `Quick raw_locate_and_insert;
        Alcotest.test_case "stale location fails" `Quick raw_stale_location_fails;
        Alcotest.test_case "locate exact key" `Quick raw_locate_exact_hits_prev;
        Alcotest.test_case "concurrent RMW counter" `Quick raw_concurrent_counter;
      ] );
  ]
