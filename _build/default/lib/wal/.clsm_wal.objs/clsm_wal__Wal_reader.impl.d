lib/wal/wal_reader.ml: List Wal_record
