lib/baselines/striped_rmw.ml: Array Clsm_core Clsm_util Mutex Single_writer_store
