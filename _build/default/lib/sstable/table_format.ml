open Clsm_util

let magic = 0x1db4775c7fba9e57
let footer_length = 70
let block_trailer_length = 5

type footer = {
  filter_handle : Block_handle.t;
  props_handle : Block_handle.t;
  index_handle : Block_handle.t;
}

let encode_footer f =
  let buf = Buffer.create footer_length in
  Block_handle.encode buf f.filter_handle;
  Block_handle.encode buf f.props_handle;
  Block_handle.encode buf f.index_handle;
  if Buffer.length buf > footer_length - 8 then failwith "footer overflow";
  Buffer.add_string buf (String.make (footer_length - 8 - Buffer.length buf) '\000');
  Binary.write_fixed64 buf magic;
  Buffer.contents buf

let decode_footer s =
  if String.length s <> footer_length then failwith "footer: bad length";
  if Binary.get_fixed64 s ~pos:(footer_length - 8) <> magic then
    failwith "footer: bad magic";
  let filter_handle, pos = Block_handle.decode s ~pos:0 in
  let props_handle, pos = Block_handle.decode s ~pos in
  let index_handle, _ = Block_handle.decode s ~pos in
  { filter_handle; props_handle; index_handle }

type properties = {
  num_entries : int;
  data_bytes : int;
  smallest : string;
  largest : string;
}

let encode_properties p =
  let buf = Buffer.create 64 in
  Varint.write buf p.num_entries;
  Varint.write buf p.data_bytes;
  Varint.write buf (String.length p.smallest);
  Buffer.add_string buf p.smallest;
  Varint.write buf (String.length p.largest);
  Buffer.add_string buf p.largest;
  Buffer.contents buf

let decode_properties s =
  let num_entries, pos = Varint.read s ~pos:0 in
  let data_bytes, pos = Varint.read s ~pos in
  let slen, pos = Varint.read s ~pos in
  let smallest = String.sub s pos slen in
  let pos = pos + slen in
  let llen, pos = Varint.read s ~pos in
  let largest = String.sub s pos llen in
  { num_entries; data_bytes; smallest; largest }
