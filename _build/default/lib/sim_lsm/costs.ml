type t = {
  hw_threads : int;
  physical_cores : int;
  ht_factor : float;
  cross_chip_factor : float;
  mem_read : float;
  mem_write : float;
  scan_next : float;
  snapshot_overhead : float;
  mem_write_log_factor : float;
  bus_fixed_write : float;
  bus_fixed_read : float;
  bus_per_byte : float;
  leveldb_read_cs : float;
  leveldb_write_extra : float;
  hyper_write_cs : float;
  rocksdb_write_cost : float;
  rocksdb_read_factor : float;
  blsm_write_cost : float;
  handoff_penalty : float;
  clsm_cas_retry : float;
  clsm_mv_per_byte : float;
  merge_cs : float;
  disk_read : float;
  disk_write_bw : float;
  write_amplification : float;
  throttle_delay : float;
  debt_threshold : float;
}

(* Fitted to the paper's single-thread rates: ~160K writes/s and ~150K
   reads/s for the LevelDB family, 65K writes/s for RocksDB, 40K for bLSM
   (Figures 5a/6a, leftmost points). *)
let default =
  {
    hw_threads = 16;
    physical_cores = 8;
    ht_factor = 1.4;
    cross_chip_factor = 1.2;
    mem_read = 5.4e-6;
    mem_write = 4.6e-6;
    scan_next = 0.7e-6;
    snapshot_overhead = 1.2e-6;
    mem_write_log_factor = 0.25e-6;
    bus_fixed_write = 0.7e-6;
    bus_fixed_read = 0.35e-6;
    bus_per_byte = 1.2e-9;
    leveldb_read_cs = 1.15e-6;
    leveldb_write_extra = 0.6e-6;
    hyper_write_cs = 4.1e-6;
    rocksdb_write_cost = 14.5e-6;
    rocksdb_read_factor = 1.9;
    blsm_write_cost = 24.0e-6;
    handoff_penalty = 0.12e-6;
    clsm_cas_retry = 1.9e-6;
    clsm_mv_per_byte = 2.0e-9;
    merge_cs = 12.0e-6;
    disk_read = 80.0e-6;
    disk_write_bw = 420.0e6;
    write_amplification = 10.0;
    throttle_delay = 330.0e-6;
    debt_threshold = 512.0 *. 1024.0 *. 1024.0;
  }
