(* The storage environment: every byte the store persists or reads back
   flows through one of these records. The indirection buys a unified
   failure model — all IO failures surface as {!Error} — and lets tests
   substitute {!Faulty_env}, which injects fsync/ENOSPC/torn-write faults
   and hard crash points on a deterministic seeded schedule. *)

exception Error of { op : string; path : string; message : string }
(** Any IO failure: the operation that failed, the path it failed on, and
    the underlying system message. *)

exception Crashed
(** Raised by every operation of an environment that has hit a crash
    point. The directory image is frozen; a simulated restart reopens it
    with a fresh environment. *)

let error ~op ~path message = raise (Error { op; path; message })

let () =
  Printexc.register_printer (function
    | Error { op; path; message } ->
        Some (Printf.sprintf "Env.Error(%s %s: %s)" op path message)
    | Crashed -> Some "Env.Crashed"
    | _ -> None)

let wrap ~op ~path f =
  try f () with
  | Unix.Unix_error (e, _, _) -> error ~op ~path (Unix.error_message e)
  | Sys_error m -> error ~op ~path m
  | End_of_file -> error ~op ~path "unexpected end of file"

(* An append-only output file. [w_close] releases the descriptor without
   syncing and never raises; durability comes only from [w_fsync]. *)
type writer = {
  w_append : string -> unit;
  w_fsync : unit -> unit;
  w_close : unit -> unit;
}

(* A random-access input file (table reads). [rf_read] raises
   [Invalid_argument] on out-of-bounds requests — corruption handling in
   the table reader keys off that, not off {!Error}. *)
type random_file = {
  rf_length : int;
  rf_read : pos:int -> len:int -> string;
  rf_close : unit -> unit;
}

type t = {
  create_writer : string -> writer;  (** create or truncate *)
  open_random : string -> random_file;
  read_file : string -> string;  (** whole file *)
  rename : src:string -> dst:string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  file_exists : string -> bool;
  list_dir : string -> string list;
}

(* ---------- the default implementation: plain Unix IO ---------- *)

let really_write fd s ~pos ~len =
  let b = Bytes.unsafe_of_string s in
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd b off remaining in
      go (off + n) (remaining - n)
    end
  in
  go pos len

let unix_create_writer path =
  let fd =
    wrap ~op:"create" ~path (fun () ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
  in
  let closed = ref false in
  {
    w_append =
      (fun s ->
        wrap ~op:"append" ~path (fun () ->
            really_write fd s ~pos:0 ~len:(String.length s)));
    w_fsync = (fun () -> wrap ~op:"fsync" ~path (fun () -> Unix.fsync fd));
    w_close =
      (fun () ->
        if not !closed then begin
          closed := true;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end);
  }

let unix_open_random path =
  wrap ~op:"open" ~path (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let len = (Unix.fstat fd).Unix.st_size in
      if len = 0 then begin
        Unix.close fd;
        {
          rf_length = 0;
          rf_read =
            (fun ~pos ~len ->
              if pos = 0 && len = 0 then ""
              else invalid_arg "Env.rf_read: out of bounds");
          rf_close = ignore;
        }
      end
      else begin
        let ga =
          Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |]
        in
        let map = Bigarray.array1_of_genarray ga in
        Unix.close fd;
        let closed = ref false in
        {
          rf_length = len;
          rf_read =
            (fun ~pos ~len:n ->
              if !closed then invalid_arg "Env.rf_read: closed";
              if pos < 0 || n < 0 || pos + n > len then
                invalid_arg "Env.rf_read: out of bounds";
              let b = Bytes.create n in
              for i = 0 to n - 1 do
                Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get map (pos + i))
              done;
              Bytes.unsafe_to_string b);
          rf_close = (fun () -> closed := true);
        }
      end)

let unix_read_file path =
  wrap ~op:"read" ~path (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let unix : t =
  {
    create_writer = unix_create_writer;
    open_random = unix_open_random;
    read_file = unix_read_file;
    rename =
      (fun ~src ~dst -> wrap ~op:"rename" ~path:src (fun () -> Unix.rename src dst));
    remove = (fun path -> wrap ~op:"remove" ~path (fun () -> Unix.unlink path));
    mkdir = (fun path -> wrap ~op:"mkdir" ~path (fun () -> Unix.mkdir path 0o755));
    file_exists = (fun path -> Sys.file_exists path);
    list_dir =
      (fun path ->
        wrap ~op:"list_dir" ~path (fun () -> Array.to_list (Sys.readdir path)));
  }
