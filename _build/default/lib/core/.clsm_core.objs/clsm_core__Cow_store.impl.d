lib/core/cow_store.ml: Cow_memtable Store
