let zipf ~space = Key_dist.zipf space
let value_len = 1024 (* YCSB default: 10 fields x 100 bytes, rounded *)
let key_len = 23 (* "user" + 19-digit hash in YCSB; width only *)

let make ~name ?(read = 0.0) ?(write = 0.0) ?(scan = 0.0) ?(rmw = 0.0)
    ?(scan_min = 1) ?(scan_max = 100) dist =
  Workload_spec.make ~name ~read ~write ~scan ~rmw ~key_len ~value_len
    ~scan_min ~scan_max dist

let workload_a ~space = make ~name:"ycsb-a" ~read:0.5 ~write:0.5 (zipf ~space)
let workload_b ~space = make ~name:"ycsb-b" ~read:0.95 ~write:0.05 (zipf ~space)
let workload_c ~space = make ~name:"ycsb-c" ~read:1.0 (zipf ~space)
let workload_d ~space = make ~name:"ycsb-d" ~read:0.95 ~write:0.05 (zipf ~space)

let workload_e ~space =
  make ~name:"ycsb-e" ~scan:0.95 ~write:0.05 (zipf ~space)

let workload_f ~space = make ~name:"ycsb-f" ~read:0.5 ~rmw:0.5 (zipf ~space)

let all ~space =
  [
    ("A (update heavy)", workload_a ~space);
    ("B (read mostly)", workload_b ~space);
    ("C (read only)", workload_c ~space);
    ("D (read latest)", workload_d ~space);
    ("E (short ranges)", workload_e ~space);
    ("F (read-modify-write)", workload_f ~space);
  ]
