type op = Read | Write | Scan | Rmw

type t = {
  name : string;
  read_ratio : float;
  write_ratio : float;
  scan_ratio : float;
  rmw_ratio : float;
  keys : Key_dist.t;
  key_len : int;
  value_len : int;
  scan_min : int;
  scan_max : int;
}

let make ?(read = 1.0) ?(write = 0.0) ?(scan = 0.0) ?(rmw = 0.0) ?(key_len = 8)
    ?(value_len = 256) ?(scan_min = 10) ?(scan_max = 20) ~name keys =
  let total = read +. write +. scan +. rmw in
  if total <= 0.0 then invalid_arg "Workload_spec.make";
  {
    name;
    read_ratio = read /. total;
    write_ratio = write /. total;
    scan_ratio = scan /. total;
    rmw_ratio = rmw /. total;
    keys;
    key_len;
    value_len;
    scan_min;
    scan_max;
  }

let next_op t rng =
  let r = Rng.float rng in
  if r < t.read_ratio then Read
  else if r < t.read_ratio +. t.write_ratio then Write
  else if r < t.read_ratio +. t.write_ratio +. t.scan_ratio then Scan
  else Rmw

let next_key t rng = Key_dist.next_key ~key_len:t.key_len t.keys rng

(* Values are incompressible-ish pseudo-random bytes of the configured
   size; content does not affect the systems under test beyond length. *)
let value_for t rng =
  let b = Bytes.create t.value_len in
  let r = ref (Rng.next rng) in
  for i = 0 to t.value_len - 1 do
    if i land 7 = 0 then r := Rng.next rng;
    Bytes.unsafe_set b i (Char.unsafe_chr (!r lsr (8 * (i land 7)) land 0x7f lor 0x20))
  done;
  Bytes.unsafe_to_string b

let scan_len t rng =
  if t.scan_max <= t.scan_min then t.scan_min
  else t.scan_min + Rng.int rng (t.scan_max - t.scan_min + 1)

(* §5.1: 8-byte keys, 256-byte values. *)
let write_only ~space =
  make ~name:"write-only" ~read:0.0 ~write:1.0 (Key_dist.uniform space)

let read_only_skewed ~space =
  make ~name:"read-only-skewed" (Key_dist.skewed_blocks space)

let mixed_read_write ~space =
  make ~name:"mixed-50-50" ~read:0.5 ~write:0.5 (Key_dist.skewed_blocks space)

let mixed_scan_write ~space =
  (* Scans touch 10-20 keys, so one scan balances ~15 writes; the paper
     keeps the number of keys written and scanned balanced. *)
  make ~name:"scan-write" ~read:0.0 ~write:(15.0 /. 16.0) ~scan:(1.0 /. 16.0)
    (Key_dist.skewed_blocks space)

let rmw_only ~space =
  make ~name:"rmw-only" ~read:0.0 ~rmw:1.0 (Key_dist.skewed_blocks space)

(* §5.2: 40-byte keys, 1KB values, heavy-tail popularity. *)
let production ~read_ratio ~space =
  make
    ~name:(Printf.sprintf "production-%d" (int_of_float (read_ratio *. 100.)))
    ~read:read_ratio ~write:(1.0 -. read_ratio) ~key_len:40 ~value_len:1024
    (Key_dist.heavy_tail space)

(* §5.3: 10-byte keys, 400-byte values, uniform updates. *)
let disk_heavy ~space =
  make ~name:"disk-heavy" ~read:0.0 ~write:1.0 ~key_len:10 ~value_len:400
    (Key_dist.uniform space)
