(** RCU-like protected global pointer (paper §3.1).

    The paper protects the pointers to the memory components ([Pm], [P'm])
    and the disk component ([Pd]) with an RCU-like mechanism: a reader loads
    the pointer, increments the component's reference counter, and
    re-validates that the pointer has not been switched in between; if it
    has, it releases and retries. Writers (the merge hooks) swap the pointer
    and retire the old component, which is released once the last reader
    drops its reference. *)

type 'a t

val create : 'a Refcounted.t -> 'a t

val acquire : 'a t -> 'a Refcounted.t
(** Take a validated reference to the current component. The caller must
    eventually call [Refcounted.decr] on the result. Never blocks; retries
    (with backoff) across concurrent pointer switches. *)

val peek : 'a t -> 'a Refcounted.t
(** The current component without taking a reference. The payload may be
    released at any moment; use only where an external lock (e.g. the
    shared-exclusive lock held in exclusive mode) already pins it. *)

val swap : 'a t -> 'a Refcounted.t -> 'a Refcounted.t
(** Install a new component and return the previous one (not retired;
    the caller decides when to [Refcounted.retire] it). *)

val with_ref : 'a t -> ('a -> 'b) -> 'b
(** [with_ref t f] acquires, applies [f] to the payload, and releases. *)
