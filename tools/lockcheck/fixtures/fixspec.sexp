; Spec for the analyzer fixture suite. Small on purpose: just enough
; declared locks to exercise every rule class.

(locks
 (gm (fields gm))
 (io_mutex (fields io_mutex))
 (cm (fields cm))
 (a (fields a))
 (b (fields b))
 (other (fields other)))

(order
 (a b))

(no_block_while_holding gm cm)

(blocking
 (calls Unix.sleepf)
 (fields w_append w_fsync))

(condvars
 ((field gcond) (module Good_group_commit) (lock gm))
 ((field cond) (module Bad_wait_foreign) (lock gm)))

(atomics_allowed Good_group_commit)

(allow_bare Good_group_commit.lead_round)
