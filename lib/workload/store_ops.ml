type t = {
  name : string;
  put : key:string -> value:string -> unit;
  get : string -> string option;
  delete : key:string -> unit;
  scan : start:string -> limit:int -> (string * string) list;
  put_if_absent : key:string -> value:string -> bool;
  compact : unit -> unit;
  close : unit -> unit;
  stats_json : unit -> string option;
}

let of_clsm db =
  let module Db = Clsm_core.Db in
  {
    name = "clsm";
    put = (fun ~key ~value -> Db.put db ~key ~value);
    get = (fun key -> Db.get db key);
    delete = (fun ~key -> Db.delete db ~key);
    scan = (fun ~start ~limit -> Db.range ~start ~limit db);
    put_if_absent = (fun ~key ~value -> Db.put_if_absent db ~key ~value);
    compact = (fun () -> Db.compact_now db);
    close = (fun () -> Db.close db);
    stats_json = (fun () -> Some (Clsm_core.Stats.to_json (Db.stats db)));
  }

let of_single_writer st =
  let module S = Clsm_baselines.Single_writer_store in
  (* The single-writer baseline has no native RMW; emulate LevelDB's
     "atomic" flavor by holding no extra lock — callers wanting the
     Figure 9 baseline use {!of_striped}. *)
  let mutex = Mutex.create () in
  {
    name = "single-writer";
    put = (fun ~key ~value -> S.put st ~key ~value);
    get = (fun key -> S.get st key);
    delete = (fun ~key -> S.delete st ~key);
    scan = (fun ~start ~limit -> S.range ~start ~limit st);
    put_if_absent =
      (fun ~key ~value ->
        Mutex.protect mutex (fun () ->
            match S.get st key with
            | Some _ -> false
            | None ->
                S.put st ~key ~value;
                true));
    compact = (fun () -> S.compact_now st);
    close = (fun () -> S.close st);
    stats_json = (fun () -> Some (Clsm_core.Stats.to_json (S.stats st)));
  }

let of_striped striped =
  let module R = Clsm_baselines.Striped_rmw in
  let st = R.store striped in
  let module S = Clsm_baselines.Single_writer_store in
  {
    name = "striped-rmw";
    put = (fun ~key ~value -> R.put striped ~key ~value);
    get = (fun key -> R.get striped key);
    delete = (fun ~key -> R.delete striped ~key);
    scan = (fun ~start ~limit -> S.range ~start ~limit st);
    put_if_absent = (fun ~key ~value -> R.put_if_absent striped ~key ~value);
    compact = (fun () -> S.compact_now st);
    close = (fun () -> S.close st);
    stats_json = (fun () -> Some (Clsm_core.Stats.to_json (S.stats st)));
  }

let open_clsm opts = of_clsm (Clsm_core.Db.open_store opts)

let open_single_writer opts =
  of_single_writer (Clsm_baselines.Single_writer_store.open_store opts)

let open_striped opts =
  of_striped
    (Clsm_baselines.Striped_rmw.create
       (Clsm_baselines.Single_writer_store.open_store opts))
