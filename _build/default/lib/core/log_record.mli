(** Payload encoding of WAL records.

    A payload carries one or more writes; each write is self-delimiting
    (timestamp, key, entry, all length-prefixed) so an atomic batch (paper
    §4) can be logged as a single WAL record — the batch becomes durable
    all-or-nothing. Every write carries its cLSM timestamp so recovery can
    restore the global order even though relaxed logging may emit records
    out of order (paper §4). *)

open Clsm_lsm

type t = { ts : int; user_key : string; entry : Entry.t }

val encode : t -> string

val encode_batch : t list -> string
(** Concatenation of {!encode}; decodes back as the same list. *)

val decode_all : string -> t list
(** Raises [Clsm_util.Varint.Corrupt] or [Invalid_argument] on malformed
    input (recovery treats the whole payload as lost). *)

val decode : string -> t
(** Single-record payloads only; raises [Invalid_argument] when the
    payload holds zero or several records. *)
