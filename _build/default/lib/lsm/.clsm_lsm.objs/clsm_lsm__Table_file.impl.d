lib/lsm/table_file.ml: Atomic Clsm_sstable Filename Internal_key Printf Sys
