lib/sim_lsm/system.mli:
