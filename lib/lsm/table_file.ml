module Env = Clsm_env.Env

exception
  Corruption of {
    number : int;
    path : string;
    detail : string;
  }

type t = {
  number : int;
  table : Clsm_sstable.Table.t;
  size : int;
  smallest : string;
  largest : string;
  obsolete : bool Atomic.t;
  env : Env.t;
}

let table_path ~dir number = Filename.concat dir (Printf.sprintf "%06d.sst" number)
let wal_path ~dir number = Filename.concat dir (Printf.sprintf "%06d.log" number)
let manifest_path ~dir = Filename.concat dir "MANIFEST"

let open_number ?cache ?(env = Env.unix) ~dir number =
  let path = table_path ~dir number in
  let table =
    Clsm_sstable.Table.open_file ?cache ~env ~cmp:Internal_key.comparator path
  in
  let props = Clsm_sstable.Table.properties table in
  {
    number;
    table;
    size = Clsm_sstable.Table.file_size table;
    smallest = props.Clsm_sstable.Table_format.smallest;
    largest = props.Clsm_sstable.Table_format.largest;
    obsolete = Atomic.make false;
    env;
  }

let typed_corruption t detail =
  Corruption { number = t.number; path = Clsm_sstable.Table.path t.table; detail }

(* Run [f] on the table, translating the sstable layer's stringly
   [Table.Corrupt] into the typed {!Corruption} that names the file — the
   unit the store can contain (quarantine) without guessing. *)
let with_table t f =
  try f t.table
  with Clsm_sstable.Table.Corrupt m -> raise (typed_corruption t m)

let mark_obsolete t = Atomic.set t.obsolete true

let release t =
  let path = Clsm_sstable.Table.path t.table in
  Clsm_sstable.Table.close t.table;
  if Atomic.get t.obsolete then
    (* Best effort: the file is already unreferenced by any manifest, so a
       failed delete only leaves an orphan for recovery to collect. *)
    try t.env.Env.remove path with _ -> ()
