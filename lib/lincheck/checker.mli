(** Wing–Gong-style linearizability checker specialized for key-value
    histories.

    Point operations on distinct keys commute, so the history is
    P-compositional: it is linearizable iff its projection onto every key is
    linearizable as a single register history (Herlihy & Wing's locality,
    applied per key). Each per-key subhistory is decided by an exhaustive
    search over linearization orders in the style of Wing & Gong, with
    Lowe's two refinements: only operations minimal in the real-time order
    may be linearized next, and visited (pending-set, register-value)
    configurations are memoized so the search runs in seconds on the
    contended histories the stress driver produces.

    Register semantics per operation: [Get r] is legal iff the register
    holds [r]; [Put]/[Delete] are always legal; [Rmw {pre; decision}] is
    legal iff the register holds [pre] (so a lost update — two RMWs
    observing the same pre-image — is caught); [Put_if_absent] is legal iff
    [won] matches the register's emptiness. *)

type violation = {
  vkey : string;
  witness : History.event list;
      (** minimized: greedy delta-reduction keeps only events whose removal
          would make the subhistory linearizable again *)
  total_events : int;  (** size of the full per-key subhistory *)
}

type result = {
  keys_checked : int;
  events_checked : int;
  violations : violation list;
  inconclusive : string list;
      (** keys whose search exceeded the state budget — treat as failures *)
}

val check_key_events :
  ?max_states:int ->
  History.event list ->
  [ `Linearizable | `Non_linearizable | `Inconclusive ]
(** Decide one per-key subhistory. [max_states] bounds the number of
    distinct search configurations (default 1,000,000). *)

val check : ?max_states:int -> History.t -> result
(** Split the history by key and decide each subhistory. Violations carry a
    minimized witness. *)

val ok : result -> bool
val pp_violation : violation -> string
val pp_result : result -> string
