lib/sstable/block.mli: Comparator
