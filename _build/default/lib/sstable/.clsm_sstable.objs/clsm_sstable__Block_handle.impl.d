lib/sstable/block_handle.ml: Clsm_util Varint
