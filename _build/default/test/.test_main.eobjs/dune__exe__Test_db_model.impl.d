test/test_db_model.ml: Alcotest Clsm_core Clsm_lsm Clsm_workload Db Filename List Map Options Printf String Unix
