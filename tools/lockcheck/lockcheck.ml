(* lockcheck — static lock-discipline checker for the store.

   Usage:
     lockcheck --spec tools/lockcheck/lockspec.sexp --root lib [--root dir]...
     lockcheck --spec SPEC file.ml ...
     lockcheck --spec SPEC --cmt file.cmt ...

   Sources are parsed with compiler-libs; with --cmt, dune's binary
   annotation files are read instead (Cmt_format) and untyped back to
   the Parsetree the analyzer consumes, so the same checks run over the
   typed build artifacts. Exit status: 0 clean, 1 findings, 2 usage or
   spec errors. *)

let usage = "lockcheck --spec SPEC [--root DIR]... [--cmt] [FILE]..."

let rec scan_dir ~ext acc dir =
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || name.[0] = '_' then acc
      else
        let path = Filename.concat dir name in
        if Sys.is_directory path then scan_dir ~ext acc path
        else if Filename.check_suffix name ext then path :: acc
        else acc)
    acc (Sys.readdir dir)

let parse_source file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf file;
      Parse.implementation lexbuf)

let parse_cmt file =
  let infos = Cmt_format.read_cmt file in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation tt ->
      let name =
        match infos.Cmt_format.cmt_sourcefile with
        | Some s -> s
        | None -> file
      in
      Some (name, Untypeast.untype_structure tt)
  | _ -> None

let () =
  let spec_path = ref "" in
  let roots = ref [] in
  let files = ref [] in
  let cmt_mode = ref false in
  let specl =
    [
      ("--spec", Arg.Set_string spec_path, "PATH lock spec (lockspec.sexp)");
      ("--root", Arg.String (fun d -> roots := d :: !roots), "DIR scan DIR recursively");
      ("--cmt", Arg.Set cmt_mode, " inputs are .cmt binary annotation files");
    ]
  in
  Arg.parse specl (fun f -> files := f :: !files) usage;
  if !spec_path = "" then begin
    prerr_endline "lockcheck: --spec is required";
    exit 2
  end;
  let spec =
    try Lockspec.load !spec_path with
    | Lockspec.Spec_error msg ->
        Printf.eprintf "lockcheck: spec error in %s: %s\n" !spec_path msg;
        exit 2
    | Sexp.Parse_error msg ->
        Printf.eprintf "lockcheck: cannot parse %s: %s\n" !spec_path msg;
        exit 2
  in
  let ext = if !cmt_mode then ".cmt" else ".ml" in
  let inputs =
    List.rev !files
    @ List.concat_map
        (fun d -> List.sort String.compare (scan_dir ~ext [] d))
        (List.rev !roots)
  in
  if inputs = [] then begin
    prerr_endline "lockcheck: no input files";
    exit 2
  end;
  let units =
    List.filter_map
      (fun file ->
        try
          if !cmt_mode then parse_cmt file
          else Some (file, parse_source file)
        with exn ->
          Printf.eprintf "lockcheck: cannot read %s: %s\n" file
            (Printexc.to_string exn);
          exit 2)
      inputs
  in
  let diags = Analyze.run spec units in
  List.iter (fun d -> print_endline (Diag.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf "lockcheck: %d finding(s)\n" (List.length diags);
    exit 1
  end
