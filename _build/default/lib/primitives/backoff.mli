(** Bounded exponential backoff for CAS retry loops.

    Each failed attempt doubles the number of [Domain.cpu_relax] spins up to
    a cap, reducing cache-line ping-pong under contention. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Fresh backoff state. Defaults: [min_spins = 1], [max_spins = 1024]. *)

val once : t -> unit
(** Spin for the current budget, then double it (up to the cap). *)

val reset : t -> unit
(** Return to the minimum budget (after a successful operation). *)
