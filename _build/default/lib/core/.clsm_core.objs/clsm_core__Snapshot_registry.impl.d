lib/core/snapshot_registry.ml: Int List Mutex Option
